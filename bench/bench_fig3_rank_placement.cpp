// Figure 3 — Effect of rank reordering.
//
// Paper: for n = 196,608 vertices, sweep node counts and, per node count,
// the placement parameters (P_r, P_c, K_r, K_c). Measured metric:
// effective per-node bandwidth (GB/s). Finding: for a given node count
// the maximum is always achieved when K_r ≈ K_c; the worst cases have
// K_r, K_c far apart; the single-node point exceeds the 25 GB/s NIC limit
// because its traffic is intranode.
//
// Reproduction: the same sweep through the discrete-event simulator with
// the Summit machine model, pipelined schedule (placement is orthogonal
// to pipelining; the paper's sweep uses the reordered binary).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  bench::header(
      "Figure 3: effective per-node bandwidth vs rank placement",
      "paper: n=196,608; per node count the best placement has Kr ~= Kc\n"
      "(e.g. 4 nodes -> Kr=Kc=2); worst when Kr,Kc are far apart; the\n"
      "1-node case exceeds the 25 GB/s NIC limit (all intranode).");

  const MachineConfig m = MachineConfig::summit();
  const double n = 196608, b = 768;
  bench::FigTrace trace;  // PARFW_TRACE=<file> records the first placement

  Table t({"nodes", "(Pr,Pc,Kr,Kc,Qr,Qc)", "eff.BW GB/s", "best?"});

  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    struct Entry {
      std::string label;
      double bw;
      int kdiff;
    };
    std::vector<Entry> entries;
    // Sweep node-grid factorisations x intranode factorisations of Q=12.
    for (int kr = 1; kr <= nodes; ++kr) {
      if (nodes % kr != 0) continue;
      const int kc = nodes / kr;
      for (const auto [qr, qc] :
           {std::pair{1, 12}, std::pair{2, 6}, std::pair{3, 4},
            std::pair{4, 3}, std::pair{6, 2}, std::pair{12, 1}}) {
        const int pr = kr * qr, pc = kc * qc;
        if (static_cast<double>(std::max(pr, pc)) > n / b) continue;
        const GridSetup setup = make_grid_explicit(kr, kc, qr, qc, true);
        // comm_only: Figure 3 measures communication efficiency (its
        // 1-node point exceeds the NIC limit, so t_FW there is comm time).
        const RunPoint p = simulate_fw_placement(
            m, dist::Variant::kPipelined, setup, nodes, n, b,
            /*comm_only=*/true, trace.sink());
        char label[64];
        std::snprintf(label, sizeof(label), "(%d,%d,%d,%d,%d,%d)", pr, pc, kr,
                      kc, qr, qc);
        entries.push_back({label, p.eff_bw / 1e9, std::abs(kr - kc)});
      }
    }
    double best = 0;
    for (const auto& e : entries) best = std::max(best, e.bw);
    for (const auto& e : entries)
      t.add_row({std::to_string(nodes), e.label, Table::num(e.bw, 2),
                 e.bw == best ? "<== best" : ""});
  }
  std::printf("%s", t.str().c_str());

  bench::footer(
      "expect: per node count, the starred best row has Kr ~= Kc (and\n"
      "Qr ~= Qc); 1-node bandwidth exceeds 25 GB/s; skewed Kr/Kc rows\n"
      "trail the balanced ones — matching the paper's Figure 3 ordering.");
  return 0;
}
