// Synthetic query-traffic generator for the serving tier.
//
// Real path-query traffic is skewed: a few hub vertices (city centres,
// popular POIs) dominate both ends of the requests. The generator models
// that with independent Zipf(s) draws for source and target — s = 0
// degenerates to uniform. Sampling is a binary search over the
// precomputed harmonic CDF, driven by the repo's deterministic Rng, so a
// (spec) value names ONE request stream forever — which is what makes the
// cache-determinism tests and the BENCH_serve hit-rate gate meaningful.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/query.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace parfw::serve {

struct WorkloadSpec {
  std::int64_t n = 0;        ///< vertex id space [0, n)
  std::size_t queries = 0;   ///< number of point-to-point pairs
  double zipf_s = 0.0;       ///< 0 = uniform; > 0 = Zipf skew exponent
  std::uint64_t seed = 1;
  bool want_paths = true;
};

/// Draws from {0..n-1} with popularity rank i weighted (i+1)^-s.
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double s) : cdf_(static_cast<std::size_t>(n)) {
    PARFW_CHECK_MSG(n > 0 && s >= 0.0, "bad Zipf parameters");
    double cum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      cum += std::pow(static_cast<double>(i + 1), -s);
      cdf_[static_cast<std::size_t>(i)] = cum;
    }
    for (double& c : cdf_) c /= cum;
  }
  std::int64_t operator()(Rng& rng) const {
    const double u = rng.next_double();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) --it;
    return static_cast<std::int64_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Materialise the request stream for `spec` as a QueryBatch.
inline QueryBatch make_workload(const WorkloadSpec& spec) {
  PARFW_CHECK_MSG(spec.n > 0, "workload over an empty vertex set");
  QueryBatch batch;
  batch.want_paths = spec.want_paths;
  batch.pairs.reserve(spec.queries);
  Rng src_rng = Rng::split(spec.seed, 0x5ecull);
  Rng dst_rng = Rng::split(spec.seed, 0xd57ull);
  if (spec.zipf_s <= 0.0) {
    const auto n = static_cast<std::uint64_t>(spec.n);
    for (std::size_t q = 0; q < spec.queries; ++q)
      batch.pairs.push_back(
          {static_cast<std::int64_t>(src_rng.next_below(n)),
           static_cast<std::int64_t>(dst_rng.next_below(n))});
  } else {
    const ZipfSampler zipf(spec.n, spec.zipf_s);
    for (std::size_t q = 0; q < spec.queries; ++q)
      batch.pairs.push_back({zipf(src_rng), zipf(dst_rng)});
  }
  return batch;
}

}  // namespace parfw::serve
