file(REMOVE_RECURSE
  "../bench/bench_sparse_fw"
  "../bench/bench_sparse_fw.pdb"
  "CMakeFiles/bench_sparse_fw.dir/bench_sparse_fw.cpp.o"
  "CMakeFiles/bench_sparse_fw.dir/bench_sparse_fw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparse_fw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
