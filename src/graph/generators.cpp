#include "graph/generators.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace parfw::gen {

Graph erdos_renyi(vertex_t n, double p, std::uint64_t seed, double w_min,
                  double w_max, bool integral) {
  PARFW_CHECK(n >= 0 && p >= 0.0 && p <= 1.0);
  Graph g(n);
  for (vertex_t i = 0; i < n; ++i) {
    Rng rng = Rng::split(seed, static_cast<std::uint64_t>(i));
    for (vertex_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (rng.next_double() < p) {
        double w = w_min + rng.next_double() * (w_max - w_min);
        if (integral) w = static_cast<double>(static_cast<long long>(w));
        g.add_edge(i, j, w);
      } else {
        (void)rng.next_double();  // keep the stream aligned across p values
      }
    }
  }
  return g;
}

Graph dense_uniform(vertex_t n, std::uint64_t seed, double w_min, double w_max,
                    bool integral) {
  return erdos_renyi(n, 1.0, seed, w_min, w_max, integral);
}

Graph grid2d(vertex_t rows, vertex_t cols, std::uint64_t seed, double w_min,
             double w_max) {
  PARFW_CHECK(rows > 0 && cols > 0);
  Graph g(rows * cols);
  Rng rng(seed);
  auto id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        g.add_undirected_edge(id(r, c), id(r, c + 1),
                              w_min + rng.next_double() * (w_max - w_min));
      if (r + 1 < rows)
        g.add_undirected_edge(id(r, c), id(r + 1, c),
                              w_min + rng.next_double() * (w_max - w_min));
    }
  }
  return g;
}

Graph ring(vertex_t n) {
  PARFW_CHECK(n > 0);
  Graph g(n);
  for (vertex_t i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n, 1.0);
  return g;
}

Graph multi_component(vertex_t parts, vertex_t per_part, double p,
                      std::uint64_t seed) {
  PARFW_CHECK(parts > 0 && per_part > 0);
  Graph g(parts * per_part);
  for (vertex_t c = 0; c < parts; ++c) {
    Graph part = erdos_renyi(per_part, p, seed + static_cast<std::uint64_t>(c));
    const vertex_t base = c * per_part;
    for (const Edge& e : part.edges())
      g.add_edge(base + e.src, base + e.dst, e.weight);
  }
  return g;
}

Graph preferential_attachment(vertex_t n, vertex_t out_degree,
                              std::uint64_t seed, double w_min, double w_max) {
  PARFW_CHECK(n > 0 && out_degree > 0);
  Graph g(n);
  Rng rng(seed);
  // Repeated-endpoint list: sampling uniformly from it is degree-biased.
  std::vector<vertex_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(out_degree) * 2);
  endpoints.push_back(0);
  for (vertex_t v = 1; v < n; ++v) {
    const vertex_t d = std::min<vertex_t>(out_degree, v);
    for (vertex_t e = 0; e < d; ++e) {
      const vertex_t target =
          endpoints[rng.next_below(endpoints.size())];
      if (target == v) continue;
      const double w = w_min + rng.next_double() * (w_max - w_min);
      g.add_undirected_edge(v, target, w);
      endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }
  return g;
}

}  // namespace parfw::gen
