file(REMOVE_RECURSE
  "libparfw_perf.a"
)
