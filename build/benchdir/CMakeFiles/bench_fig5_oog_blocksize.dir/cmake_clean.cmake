file(REMOVE_RECURSE
  "../bench/bench_fig5_oog_blocksize"
  "../bench/bench_fig5_oog_blocksize.pdb"
  "CMakeFiles/bench_fig5_oog_blocksize.dir/bench_fig5_oog_blocksize.cpp.o"
  "CMakeFiles/bench_fig5_oog_blocksize.dir/bench_fig5_oog_blocksize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_oog_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
