// Ablation — block-sparse FW on structured sparse inputs (paper §7:
// "add support of structured sparse graphs, where exploiting sparsity
// becomes paramount").
//
// Sweeps edge density and reports the fraction of outer-product block
// pairs the occupancy bitmap skips, plus the wall-clock effect. Sparse,
// clustered inputs (road-network-like) skip most of the early-iteration
// work; dense inputs reduce to plain blocked FW with bitmap overhead.
#include <cstdio>

#include "core/block_sparse_fw.hpp"
#include "core/blocked_fw.hpp"
#include "fig_common.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

using namespace parfw;
using S = MinPlus<float>;

int main() {
  bench::header(
      "Block-sparse FW ablation (paper §7 future work)",
      "n = 512, b = 32; outer products skipped via the per-block\n"
      "occupancy bitmap, against plain blocked FW on the same input.");

  const vertex_t n = 512;
  const std::size_t b = 32;

  Table t({"density", "skip %", "sparse ms", "blocked ms", "speedup",
           "valid"});
  for (double p : {0.001, 0.004, 0.016, 0.064, 0.25}) {
    const auto g = gen::erdos_renyi(n, p, 4242, 1.0, 80.0, /*integral=*/true);

    auto dense_m = g.distance_matrix<S>();
    Timer t_dense;
    blocked_floyd_warshall<S>(dense_m.view(), {{.block_size = b}});
    const double ms_dense = t_dense.millis();

    auto sparse_m = g.distance_matrix<S>();
    Timer t_sparse;
    const auto stats = block_sparse_floyd_warshall<S>(sparse_m.view(), b);
    const double ms_sparse = t_sparse.millis();

    const bool ok =
        max_abs_diff<float>(dense_m.view(), sparse_m.view()) == 0.0;
    t.add_row({Table::num(p, 3), Table::num(100 * stats.skip_fraction(), 1),
               Table::num(ms_sparse, 0), Table::num(ms_dense, 0),
               Table::num(ms_dense / ms_sparse, 2), ok ? "yes" : "NO"});
  }
  std::printf("%s", t.str().c_str());

  // Structured sparsity: disconnected chain clusters never mix, so the
  // bitmap stays sparse through ALL iterations (the supernodal best case).
  Graph chains(n);
  for (vertex_t c = 0; c < 16; ++c)
    for (vertex_t i = 0; i + 1 < 32; ++i)
      chains.add_edge(c * 32 + i, c * 32 + i + 1, 1.0);
  auto m1 = chains.distance_matrix<S>();
  Timer t1;
  blocked_floyd_warshall<S>(m1.view(), {{.block_size = b}});
  const double ms1 = t1.millis();
  auto m2 = chains.distance_matrix<S>();
  Timer t2;
  const auto cs = block_sparse_floyd_warshall<S>(m2.view(), b);
  std::printf("\nstructured case (16 disjoint chains): skip %.1f%%, "
              "%.0f ms vs %.0f ms blocked (%.1fx), valid: %s\n",
              100 * cs.skip_fraction(), t2.millis(), ms1, ms1 / t2.millis(),
              max_abs_diff<float>(m1.view(), m2.view()) == 0.0 ? "yes" : "NO");

  bench::footer(
      "expect: skip%% and speedup fall as density rises (once the closure\n"
      "densifies, nothing is skippable); the structured case keeps its\n"
      "block sparsity through every iteration and wins the most.");
  return 0;
}
