# Empty compiler generated dependencies file for bench_fig7_64node_perf.
# This may be replaced when dependencies are built.
