// High-level APSP front door.
//
// apsp() picks an execution strategy (sequential FW, blocked FW, blocked +
// thread parallel, device-offload) over a chosen semiring and returns the
// closed distance matrix, optionally with predecessors for path queries.
// This is the API the examples use; the distributed driver in src/dist/
// has its own entry point because it needs a runtime handle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/blocked_fw.hpp"
#include "core/blocked_fw_paths.hpp"
#include "core/floyd_warshall.hpp"
#include "graph/graph.hpp"

namespace parfw {

enum class ApspAlgorithm {
  kSequential,       ///< Algorithm 1
  kBlocked,          ///< Algorithm 2, single thread
  kBlockedParallel,  ///< Algorithm 2, SRGEMM over the global thread pool
};

struct ApspOptions {
  ApspAlgorithm algorithm = ApspAlgorithm::kBlockedParallel;
  std::size_t block_size = 64;
  DiagStrategy diag = DiagStrategy::kClassic;
  bool track_paths = false;
  /// Refuse to produce results containing a negative cycle (min-plus only);
  /// throws check_error instead.
  bool reject_negative_cycles = false;
};

/// Result of an APSP solve. dist(i,j) is the closed semiring distance;
/// pred is present iff track_paths was set.
template <typename T>
struct ApspResult {
  Matrix<T> dist;
  std::optional<Matrix<std::int64_t>> pred;

  /// Shortest path src→dst (vertex ids, inclusive); empty if unreachable
  /// or paths were not tracked.
  std::vector<std::int64_t> path(std::int64_t src, std::int64_t dst) const;
};

/// Solve APSP on a graph over semiring S (default: the paper's min-plus).
template <typename S>
ApspResult<typename S::value_type> apsp(const Graph& g,
                                        const ApspOptions& opt = {}) {
  using T = typename S::value_type;
  ApspResult<T> result;
  result.dist = g.distance_matrix<S>();
  auto d = result.dist.view();

  if (opt.track_paths) {
    result.pred.emplace(d.rows(), d.cols());
    init_predecessors<S>(d, result.pred->view());
    if (opt.algorithm == ApspAlgorithm::kSequential)
      floyd_warshall_paths<S>(d, result.pred->view());
    else
      blocked_floyd_warshall_paths<S>(d, result.pred->view(), opt.block_size);
  } else {
    switch (opt.algorithm) {
      case ApspAlgorithm::kSequential:
        floyd_warshall<S>(d);
        break;
      case ApspAlgorithm::kBlocked: {
        BlockedFwOptions bopt;
        bopt.block_size = opt.block_size;
        bopt.diag = opt.diag;
        blocked_floyd_warshall<S>(d, bopt);
        break;
      }
      case ApspAlgorithm::kBlockedParallel: {
        BlockedFwOptions bopt;
        bopt.block_size = opt.block_size;
        bopt.diag = opt.diag;
        bopt.pool = &ThreadPool::global();
        blocked_floyd_warshall<S>(d, bopt);
        break;
      }
    }
  }

  if (opt.reject_negative_cycles) {
    PARFW_CHECK_MSG(!has_negative_cycle<S>(d),
                    "input graph contains a negative cycle");
  }
  return result;
}

template <typename T>
std::vector<std::int64_t> ApspResult<T>::path(std::int64_t src,
                                              std::int64_t dst) const {
  if (!pred.has_value()) return {};
  return reconstruct_path(pred->view(), src, dst);
}

}  // namespace parfw
