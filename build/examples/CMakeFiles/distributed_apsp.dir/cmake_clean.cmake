file(REMOVE_RECURSE
  "CMakeFiles/distributed_apsp.dir/distributed_apsp.cpp.o"
  "CMakeFiles/distributed_apsp.dir/distributed_apsp.cpp.o.d"
  "distributed_apsp"
  "distributed_apsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_apsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
