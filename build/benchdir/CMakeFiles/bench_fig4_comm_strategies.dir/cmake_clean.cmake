file(REMOVE_RECURSE
  "../bench/bench_fig4_comm_strategies"
  "../bench/bench_fig4_comm_strategies.pdb"
  "CMakeFiles/bench_fig4_comm_strategies.dir/bench_fig4_comm_strategies.cpp.o"
  "CMakeFiles/bench_fig4_comm_strategies.dir/bench_fig4_comm_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_comm_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
