// TraceSink — the shared observability seam of the schedule IR
// (DESIGN.md §2 system #15).
//
// Both interpreters of the schedule IR — the data-carrying distributed
// runtime (dist::parallel_fw over mpisim) and the metadata-costing DES
// (perf::simulate) — report every executed op through this interface, so
// a real run and a simulated run of the same schedule emit directly
// comparable traces. The mpisim runtime and the ooGSrGemm engine report
// through the same seam (message deliveries, offload pipeline stages).
//
// Sinks must be thread-safe: mpisim ranks are OS threads and call
// record() concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace parfw::sched {

/// Causal role of an event — what the trace-analysis layer (src/causal/)
/// may join it against. kSend/kRecv pairs carry a channel coordinate
/// (ctx, src, dst, tag, seq) that identifies the handoff uniquely: mpisim
/// stamps per-flow sequence numbers on every delivery, the DES counts
/// per-(src, dst, tag) sends in execution order, and the offload pipeline
/// reuses the same mechanism for device-chunk completions (ctx encodes
/// the stream). Everything else is kSpan: an executed op, a phase, or a
/// zero-duration marker (fault instants).
enum class EventKind : std::uint8_t {
  kSpan = 0,  ///< executed op / phase / instant marker
  kSend = 1,  ///< handoff produced: rank = producer, peer = consumer
  kRecv = 2,  ///< handoff consumed: rank = consumer, peer = producer
};

/// ctx namespace for device-pipeline channels (ooGSrGemm stream
/// completions), kept disjoint from communicator context ids (small
/// integers) so a device chunk can never join a network message.
constexpr std::uint64_t kDeviceChannelCtx = 1ull << 48;

/// One executed op. `name` must point to a string with static storage
/// duration (op names, phase names) — sinks keep the pointer, not a copy.
struct TraceEvent {
  int rank = 0;               ///< world rank (or DES process id)
  const char* name = "";      ///< op / phase name
  std::uint32_t k = 0;        ///< FW iteration (0 when not applicable)
  double t_begin = 0.0;       ///< seconds since the run's local epoch
  double t_end = 0.0;         ///< >= t_begin; == t_begin for instants
  std::int64_t bytes = 0;     ///< payload bytes (comm ops, transfers)
  double flops = 0.0;         ///< arithmetic work (compute ops)

  // --- causal annotations (defaulted: plain spans need none) -------------
  EventKind ek = EventKind::kSpan;
  std::int32_t peer = -1;     ///< kSend: consumer rank; kRecv: producer rank
  std::int32_t tag = 0;       ///< match tag (sched::tag_of space for FW ops)
  std::uint64_t seq = 0;      ///< per-channel FIFO sequence number
  std::uint64_t ctx = 0;      ///< channel namespace (communicator context /
                              ///< device-stream id); disambiguates tags
  std::uint32_t attempt = 0;  ///< kRecv: >0 if the consumed message was a
                              ///< retransmission (PR 3 reliability layer)
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& e) = 0;
};

/// Seconds since a process-wide monotonic epoch — the shared time base of
/// every real-execution recorder (dist interpreter, mpisim deliveries,
/// offload pipeline), so their events land on one coherent timeline. DES
/// events use virtual clocks instead; ChromeTraceSink::write normalises
/// either to t = 0.
///
/// Monotonicity guarantee: the epoch is a single steady_clock time point
/// captured at static initialisation (before any rank thread starts), and
/// steady_clock is monotonic and consistent across threads, so
/// now_seconds() is non-decreasing along any thread AND two reads ordered
/// by a happens-before edge (mutex, atomic, message delivery) never go
/// backwards relative to each other. Call sites may therefore re-read it
/// per event — the three recorder families do exactly that (the dist
/// interpreter's per-op begin/end pair, the mpisim runtime's delivery and
/// fault instants, the ooGSrGemm hostUpdate spans) and their timestamps
/// interleave correctly on one timeline with no cached clock state.
double now_seconds();

/// Discards everything (the default when no sink is plumbed in).
class NullTraceSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

/// Aggregates per-op-name totals — the cheap always-on statistics sink.
class StatsTraceSink final : public TraceSink {
 public:
  struct OpStats {
    std::uint64_t count = 0;
    std::int64_t bytes = 0;
    double flops = 0.0;
    double seconds = 0.0;  ///< Σ (t_end - t_begin)
  };

  void record(const TraceEvent& e) override;

  /// Totals for one op name (zeros when the name never fired).
  OpStats of(const std::string& name) const;
  /// Grand totals over every op name.
  OpStats total() const;
  /// Snapshot of the whole per-name table.
  std::map<std::string, OpStats> table() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, OpStats> stats_;
};

/// Serialise a batch of events as a Chrome trace-event JSON document
/// (load in chrome://tracing or https://ui.perfetto.dev). Events render
/// one row per rank; zero-duration events become instants. Matched
/// kSend/kRecv pairs additionally emit flow events (ph "s"/"f") so
/// Perfetto draws the send→recv arrows, and causal annotations are
/// serialised into args so src/causal/trace_io.hpp can load the document
/// back losslessly. Timestamps are normalised so the earliest event sits
/// at t = 0. Shared by ChromeTraceSink::write and the flight-recorder
/// snapshots (RingTraceSink / incident dumps).
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os);

/// Marker event appended to a capped / windowed capture: an instant named
/// kTruncatedMarker whose `bytes` field carries the number of events that
/// are MISSING from the document (dropped new events for capped sinks,
/// overwritten old events for the ring). The causal loader reads it back
/// like any other instant, so analysis can tell a complete trace from a
/// cut one.
inline constexpr const char* kTruncatedMarker = "truncated";
TraceEvent make_truncated_marker(int rank, double t, std::uint64_t missing);

/// Records every event and serialises them via write_chrome_trace.
///
/// `max_events` bounds the buffer: once full, NEW events are counted but
/// dropped (the head of the run is usually what a capped capture is for),
/// and write() appends a kTruncatedMarker instant carrying the dropped
/// count. 0 = unbounded (the historical behaviour).
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void record(const TraceEvent& e) override;

  /// Write the JSON document. Timestamps are normalised so the earliest
  /// recorded event sits at t = 0.
  void write(std::ostream& os) const;

  std::size_t size() const;
  /// Events rejected because the cap was hit.
  std::uint64_t truncated() const;

 private:
  const std::size_t max_events_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t truncated_ = 0;
};

/// Keeps every raw event — the capture sink for the causal analysis layer
/// (src/causal/) and for tests that inspect individual events rather than
/// per-name aggregates. `max_events` caps the buffer like ChromeTraceSink
/// (drop-new, counted); 0 = unbounded.
class CollectTraceSink final : public TraceSink {
 public:
  explicit CollectTraceSink(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void record(const TraceEvent& e) override;

  /// Snapshot of everything recorded so far.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  /// Events rejected because the cap was hit.
  std::uint64_t truncated() const;

 private:
  const std::size_t max_events_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t truncated_ = 0;
};

/// Flight recorder: a fixed-capacity drop-OLDEST ring buffer. Always-on
/// bounded tracing — memory is capacity_bytes regardless of run length,
/// record() is a spinlock + struct copy into preallocated storage (a few
/// ns; bench_monitor gates the end-to-end overhead under 3%), and the
/// window (the most recent events, in arrival order) can be snapshotted
/// or flushed to Chrome-trace JSON at any moment — which is exactly what
/// an incident dump does. Overwritten events are counted; the monitor
/// layer exports the count as the `trace.ring.dropped` series.
///
/// The spinlock is the right primitive here: the critical section is a
/// ~100-byte copy, writers (rank threads) arrive far apart relative to
/// that, and readers (incident dumps, final flush) are rare.
class RingTraceSink final : public TraceSink {
 public:
  /// Default window: 1 MiB of events (~15k events) — enough to hold the
  /// last few schedule iterations of a large run.
  static constexpr std::size_t kDefaultBytes = std::size_t{1} << 20;

  explicit RingTraceSink(std::size_t capacity_bytes = kDefaultBytes);

  void record(const TraceEvent& e) override;

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const;
  /// Events overwritten by newer ones (total recorded - window size).
  std::uint64_t dropped() const;

  /// The current window, oldest first.
  std::vector<TraceEvent> window() const;

  /// Snapshot the window as a Chrome-trace JSON document. When events
  /// were dropped, a kTruncatedMarker instant at the window's start
  /// carries the count.
  void write_chrome(std::ostream& os) const;

 private:
  void lock() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() const { lock_.clear(std::memory_order_release); }

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::vector<TraceEvent> buf_;  ///< preallocated ring storage
  std::size_t next_ = 0;         ///< insertion cursor
  std::size_t count_ = 0;        ///< valid entries (<= buf_.size())
  std::uint64_t total_ = 0;      ///< events ever recorded
};

/// Fan-out: forwards every event to each attached sink. Lets one run feed
/// the flight recorder AND a full Chrome capture (or a RunMonitor)
/// without the recorders knowing about each other.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink() = default;
  explicit TeeTraceSink(std::vector<TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}

  /// Attach another sink (not thread-safe; do this before the run).
  void add(TraceSink* s) {
    if (s != nullptr) sinks_.push_back(s);
  }

  void record(const TraceEvent& e) override {
    for (TraceSink* s : sinks_) s->record(e);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace parfw::sched
