#include "perf/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace parfw::perf {

std::vector<Legend> paper_legends() {
  return {
      {"baseline", dist::Variant::kBaseline, false},
      {"pipelined", dist::Variant::kPipelined, false},
      {"+reordering", dist::Variant::kPipelined, true},
      {"+async", dist::Variant::kAsync, true},
      {"offload", dist::Variant::kOffload, true},
  };
}

std::pair<int, int> balanced_factors(int x) {
  PARFW_CHECK(x >= 1);
  int a = static_cast<int>(std::sqrt(static_cast<double>(x)));
  while (a > 1 && x % a != 0) --a;
  return {a, x / a};
}

GridSetup make_grid_explicit(int kr, int kc, int qr, int qc, bool reordered) {
  GridSetup s;
  const int q = qr * qc;
  if (reordered) {
    s.grid = dist::GridSpec::tiled(kr, kc, qr, qc);
  } else {
    s.grid = dist::GridSpec::row_major(kr * qr, kc * qc);
  }
  const int P = s.grid.size();
  s.node_of.resize(static_cast<std::size_t>(P));
  for (int w = 0; w < P; ++w) s.node_of[static_cast<std::size_t>(w)] = w / q;
  return s;
}

GridSetup make_grid(const MachineConfig& m, int nodes, bool reordered) {
  const auto [kr, kc] = balanced_factors(nodes);
  if (reordered) {
    // Square-ish intranode grid for Summit's 12 ranks/node: 3 x 4 (§3.4.2).
    const auto [qr, qc] = balanced_factors(m.ranks_per_node());
    return make_grid_explicit(kr, kc, qr, qc, /*reordered=*/true);
  }
  // Naive: balanced global grid, contiguous rank packing (the "typical
  // 1 x Q" configuration of §3.4.1).
  const auto [pr, pc] = balanced_factors(nodes * m.ranks_per_node());
  GridSetup s;
  s.grid = dist::GridSpec::row_major(pr, pc);
  const int P = s.grid.size();
  s.node_of.resize(static_cast<std::size_t>(P));
  for (int w = 0; w < P; ++w)
    s.node_of[static_cast<std::size_t>(w)] = w / m.ranks_per_node();
  return s;
}

RunPoint simulate_fw_placement(const MachineConfig& m, dist::Variant variant,
                               const GridSetup& setup, int nodes, double n,
                               double b, bool comm_only,
                               sched::TraceSink* trace) {
  FwProblem prob;
  prob.variant = variant;
  prob.b = b;
  prob.comm_only = comm_only;
  // The schedule builder needs n as a whole number of blocks, with at
  // least one block per process row/column.
  const double min_nb =
      static_cast<double>(std::max(setup.grid.rows(), setup.grid.cols()));
  const double nb = std::max(std::ceil(n / b), min_nb);
  prob.n = nb * b;

  const BuiltProgram built = build_fw_program(m, prob, setup.grid, setup.node_of);
  const SimStats sim = simulate(built.programs, built.node_of, m, trace);

  RunPoint p;
  p.seconds = sim.makespan;
  p.pflops = fw_flops(n) / sim.makespan / 1e15;
  const double peak =
      static_cast<double>(nodes) * m.gpus_per_node * m.srgemm_peak_flops;
  p.frac_peak = p.pflops * 1e15 / peak;
  p.eff_bw = effective_bandwidth(m, n, nodes, sim.makespan);
  p.internode_bytes = sim.internode_bytes;
  p.max_nic_bytes = sim.max_nic_bytes;
  return p;
}

RunPoint simulate_fw(const MachineConfig& m, const Legend& legend, int nodes,
                     double n, double b, sched::TraceSink* trace) {
  const GridSetup setup = make_grid(m, nodes, legend.reordered);
  return simulate_fw_placement(m, legend.variant, setup, nodes, n, b,
                               /*comm_only=*/false, trace);
}

}  // namespace parfw::perf
