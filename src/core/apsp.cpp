#include "core/apsp.hpp"

#include <algorithm>

namespace parfw {

std::vector<std::int64_t> reconstruct_path(MatrixView<const std::int64_t> pred,
                                           std::int64_t src, std::int64_t dst) {
  PARFW_CHECK(src >= 0 && dst >= 0 &&
              static_cast<std::size_t>(src) < pred.rows() &&
              static_cast<std::size_t>(dst) < pred.cols());
  if (src == dst) return {src};
  std::vector<std::int64_t> rev;
  std::int64_t cur = dst;
  // The predecessor chain has at most n hops; a longer walk means the
  // matrix is inconsistent (defensive bound, not a normal exit).
  const std::size_t limit = pred.rows() + 1;
  while (cur != src) {
    if (cur < 0) return {};  // unreachable
    rev.push_back(cur);
    PARFW_CHECK_MSG(rev.size() <= limit, "predecessor chain has a cycle");
    cur = pred(src, cur);
  }
  rev.push_back(src);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace parfw
