// Distributed divide-and-conquer APSP (paper §6: "Solomonik et al.
// proposed a communication avoiding parallel APSP which uses the divide
// and conquer approach" [37]).
//
// The R-Kleene recursion (core/rkleene.hpp) executed on the 2-D
// block-cyclic layout: every matrix product becomes a SUMMA sweep —
// for each inner block-step k, the owners of A(:,k) broadcast their
// column strip along the process rows and the owners of B(k,:) broadcast
// their row strip along the process columns; every rank then updates its
// owned C blocks. Base case: a single diagonal block, closed locally by
// its owner with sequential FW (no communication).
//
// Compared with ParallelFw, DC-APSP trades the n_b bulk-synchronous
// iterations for O(log n_b) recursion levels whose products are large
// SUMMA sweeps — fewer, bigger messages (the communication-avoiding
// argument). The functional bench compares both on the same runtime.
#pragma once

#include <cstdint>

#include "core/floyd_warshall.hpp"
#include "dist/block_cyclic.hpp"
#include "dist/parallel_fw.hpp"

namespace parfw::dist {

namespace detail {

/// Half-open range of global block indices.
struct BlockRange {
  std::size_t lo = 0, hi = 0;
  std::size_t len() const { return hi - lo; }
};

/// SUMMA: C[R x Cc] ⊕= A[R x K] ⊗ B[K x Cc], all sub-ranges of the same
/// block-cyclic matrix. In-place aliasing (C overlapping A or B) is safe
/// for idempotent semirings when the diagonal operand ranges are closed —
/// the Kleene recursion only calls it that way.
template <typename S>
void summa_multiply(mpi::Comm& row_comm, mpi::Comm& col_comm,
                    BlockCyclicMatrix<typename S::value_type>& m,
                    BlockRange R, BlockRange K, BlockRange Cc,
                    std::int32_t& tag, const srgemm::Config& gemm) {
  using T = typename S::value_type;
  const GridSpec& grid = m.grid();
  const int pr = grid.rows(), pc = grid.cols();
  const GridCoord me = m.coord();
  const std::size_t b = m.block_size();

  // Owned block indices within each range.
  std::vector<std::size_t> rows_R, cols_C;
  for (std::size_t i = R.lo; i < R.hi; ++i)
    if (m.owns_block_row(i)) rows_R.push_back(i);
  for (std::size_t j = Cc.lo; j < Cc.hi; ++j)
    if (m.owns_block_col(j)) cols_C.push_back(j);

  Matrix<T> colbuf(rows_R.size() * b, b);   // A(:,k) strip, my rows of R
  Matrix<T> rowbuf(b, cols_C.size() * b);   // B(k,:) strip, my cols of Cc

  for (std::size_t kb = K.lo; kb < K.hi; ++kb) {
    const int kcol = static_cast<int>(kb % static_cast<std::size_t>(pc));
    const int krow = static_cast<int>(kb % static_cast<std::size_t>(pr));
    const std::int32_t t0 = tag;
    tag += 2;

    // Column strip A(rows_R, kb): owned by grid column kcol; broadcast
    // along the process rows.
    if (me.col == kcol) {
      for (std::size_t ii = 0; ii < rows_R.size(); ++ii)
        colbuf.sub(ii * b, 0, b, b)
            .copy_from(MatrixView<const T>(
                m.block(m.local_row(rows_R[ii]), m.local_col(kb))));
    }
    if (!rows_R.empty())
      row_comm.bcast_bytes(
          {reinterpret_cast<std::uint8_t*>(colbuf.data()),
           colbuf.size() * sizeof(T)},
          kcol, t0);

    // Row strip B(kb, cols_C): owned by grid row krow; broadcast along
    // the process columns.
    if (me.row == krow) {
      for (std::size_t jj = 0; jj < cols_C.size(); ++jj)
        rowbuf.sub(0, jj * b, b, b)
            .copy_from(MatrixView<const T>(
                m.block(m.local_row(kb), m.local_col(cols_C[jj]))));
    }
    if (!cols_C.empty())
      col_comm.bcast_bytes(
          {reinterpret_cast<std::uint8_t*>(rowbuf.data()),
           rowbuf.size() * sizeof(T)},
          krow, t0 + 1);

    // Local rank-b update of every owned C block.
    for (std::size_t ii = 0; ii < rows_R.size(); ++ii)
      for (std::size_t jj = 0; jj < cols_C.size(); ++jj)
        srgemm::multiply<S>(
            MatrixView<const T>(colbuf.sub(ii * b, 0, b, b)),
            MatrixView<const T>(rowbuf.sub(0, jj * b, b, b)),
            m.block(m.local_row(rows_R[ii]), m.local_col(cols_C[jj])), gemm);
  }
}

template <typename S>
void dc_kleene(mpi::Comm& row_comm, mpi::Comm& col_comm,
               BlockCyclicMatrix<typename S::value_type>& m, BlockRange r,
               std::int32_t& tag, const srgemm::Config& gemm) {
  if (r.len() == 1) {
    if (m.owns_block(r.lo, r.lo))
      floyd_warshall<S>(m.block(m.local_row(r.lo), m.local_col(r.lo)));
    return;
  }
  const std::size_t mid = r.lo + r.len() / 2;
  const BlockRange r1{r.lo, mid}, r2{mid, r.hi};

  dc_kleene<S>(row_comm, col_comm, m, r1, tag, gemm);       // A11*
  summa_multiply<S>(row_comm, col_comm, m, r1, r1, r2, tag, gemm);  // A12
  summa_multiply<S>(row_comm, col_comm, m, r2, r1, r1, tag, gemm);  // A21
  summa_multiply<S>(row_comm, col_comm, m, r2, r1, r2, tag, gemm);  // A22 ⊕=
  dc_kleene<S>(row_comm, col_comm, m, r2, tag, gemm);       // A22*
  summa_multiply<S>(row_comm, col_comm, m, r1, r2, r2, tag, gemm);  // A12 ← A12⊗A22
  summa_multiply<S>(row_comm, col_comm, m, r2, r2, r1, tag, gemm);  // A21 ← A22⊗A21
  summa_multiply<S>(row_comm, col_comm, m, r1, r2, r1, tag, gemm);  // A11 ⊕= A12⊗A21
}

}  // namespace detail

/// Distributed divide-and-conquer APSP over the block-cyclic layout.
/// Collective over `world`; on return the local blocks hold the closure.
template <typename S>
void dc_apsp(mpi::Comm& world, BlockCyclicMatrix<typename S::value_type>& m,
             const srgemm::Config& gemm = {}) {
  static_assert(is_idempotent<S>(), "DC-APSP requires an idempotent semiring");
  const GridSpec& grid = m.grid();
  PARFW_CHECK(world.size() == grid.size());
  const GridCoord me = grid.coord_of(world.rank());
  PARFW_CHECK(me == m.coord());
  PARFW_CHECK_MSG(m.num_blocks() >=
                      static_cast<std::size_t>(
                          std::max(grid.rows(), grid.cols())),
                  "need >= 1 block per process row/column");

  mpi::Comm row_comm = world.split(me.row, me.col);
  mpi::Comm col_comm = world.split(me.col + grid.rows() + 7, me.row);

  std::int32_t tag = 1000;
  detail::dc_kleene<S>(row_comm, col_comm, m,
                       detail::BlockRange{0, m.num_blocks()}, tag, gemm);
}

}  // namespace parfw::dist
