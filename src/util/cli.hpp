// Minimal command-line flag parser for the tools.
//
// Supports --flag value, --flag=value and boolean --flag. Unknown flags
// are an error (fail fast beats silent typos in batch jobs). Every
// occurrence of a repeated flag is kept, in order: get() answers with the
// last one (the usual override-wins convention), get_all() with the whole
// list — which is how the apsp tool's repeatable --query builds its batch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace parfw {

class CliArgs {
 public:
  /// Parse argv. `allowed` lists every legal flag name (without --).
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed);

  bool has(const std::string& flag) const { return values_.count(flag) > 0; }
  /// Last occurrence wins (override convention).
  std::string get(const std::string& flag, const std::string& fallback) const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  bool get_bool(const std::string& flag) const { return has(flag); }
  /// Every occurrence of a repeatable flag, in command-line order; empty
  /// when the flag was not given.
  std::vector<std::string> get_all(const std::string& flag) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
};

}  // namespace parfw
