#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "sssp/sssp.hpp"
#include "util/check.hpp"

namespace parfw::sssp {

SsspResult delta_stepping(const Graph& g, vertex_t source, double delta) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PARFW_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);
  const Graph::Csr& csr = g.csr();

  if (delta <= 0.0) {
    // Meyer–Sanders heuristic: Δ = max weight / average out-degree.
    double wmax = 1.0;
    for (const Edge& e : g.edges()) {
      PARFW_CHECK_MSG(e.weight >= 0.0, "delta-stepping requires non-negative weights");
      wmax = std::max(wmax, e.weight);
    }
    const double avg_deg =
        n > 0 ? std::max(1.0, static_cast<double>(g.num_edges()) /
                                  static_cast<double>(n))
              : 1.0;
    delta = wmax / avg_deg;
  }

  SsspResult r;
  r.dist.assign(n, kInf);
  r.parent.assign(n, -1);
  r.dist[static_cast<std::size_t>(source)] = 0.0;

  std::vector<std::deque<vertex_t>> buckets(1);
  std::vector<std::size_t> in_bucket(n, SIZE_MAX);
  auto place = [&](vertex_t v, double d) {
    const std::size_t b = static_cast<std::size_t>(d / delta);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
    in_bucket[static_cast<std::size_t>(v)] = b;
  };
  place(source, 0.0);

  auto relax = [&](vertex_t v, double d, vertex_t via) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (d < r.dist[vi]) {
      r.dist[vi] = d;
      r.parent[vi] = via;
      place(v, d);
    }
  };

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    // Light-edge phases: settle the bucket to a fixpoint.
    std::vector<vertex_t> settled;
    while (!buckets[b].empty()) {
      std::deque<vertex_t> frontier;
      frontier.swap(buckets[b]);
      for (vertex_t u : frontier) {
        const std::size_t ui = static_cast<std::size_t>(u);
        if (in_bucket[ui] != b) continue;  // moved to a lighter bucket
        if (static_cast<std::size_t>(r.dist[ui] / delta) != b) continue;
        in_bucket[ui] = SIZE_MAX;
        settled.push_back(u);
        for (std::size_t e = csr.offsets[ui]; e < csr.offsets[ui + 1]; ++e) {
          if (csr.weights[e] <= delta)  // light edge
            relax(csr.targets[e], r.dist[ui] + csr.weights[e], u);
        }
      }
    }
    // Heavy-edge phase: relax once from every vertex settled in bucket b.
    for (vertex_t u : settled) {
      const std::size_t ui = static_cast<std::size_t>(u);
      for (std::size_t e = csr.offsets[ui]; e < csr.offsets[ui + 1]; ++e) {
        if (csr.weights[e] > delta)
          relax(csr.targets[e], r.dist[ui] + csr.weights[e], u);
      }
    }
  }
  return r;
}

}  // namespace parfw::sssp
