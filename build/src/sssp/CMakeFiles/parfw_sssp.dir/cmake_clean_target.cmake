file(REMOVE_RECURSE
  "libparfw_sssp.a"
)
