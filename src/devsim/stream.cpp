#include "devsim/stream.hpp"

namespace parfw::dev {

Stream::Stream() : worker_([this] { worker_loop(); }) {}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fifo_.push_back(std::move(op));
    idle_ = false;
  }
  cv_.notify_one();
}

Event Stream::record() {
  Event e;
  enqueue([e] { e.signal(); });
  return e;
}

void Stream::synchronize() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return idle_ && fifo_.empty(); });
}

std::uint64_t Stream::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void Stream::worker_loop() {
  for (;;) {
    std::function<void()> op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (fifo_.empty()) {
        idle_ = true;
        drained_.notify_all();
        cv_.wait(lock, [this] { return stop_ || !fifo_.empty(); });
        if (stop_ && fifo_.empty()) return;
      }
      op = std::move(fifo_.front());
      fifo_.pop_front();
      idle_ = false;
    }
    op();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    }
  }
}

}  // namespace parfw::dev
