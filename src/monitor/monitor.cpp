#include "monitor/monitor.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace parfw::monitor {

namespace {

constexpr double kCostFloor = 1e-12;

/// Schedule-op kinds by trace-event name (the interpreter records each
/// executed op under op_name(kind)). Runtime events ("msg", "recv",
/// "retry", "oog*", ...) return nullptr.
const sched::OpKind* op_kind_of(const char* name) {
  static constexpr sched::OpKind kKinds[] = {
      sched::OpKind::kDiagUpdate,     sched::OpKind::kDiagBcastRow,
      sched::OpKind::kDiagBcastCol,   sched::OpKind::kPanelUpdateRow,
      sched::OpKind::kPanelUpdateCol, sched::OpKind::kRowPanelBcast,
      sched::OpKind::kColPanelBcast,  sched::OpKind::kLookaheadRow,
      sched::OpKind::kLookaheadCol,   sched::OpKind::kOuterUpdate,
      sched::OpKind::kCheckpoint,
  };
  for (const sched::OpKind& k : kKinds)
    if (std::strcmp(name, sched::op_name(k)) == 0) return &k;
  return nullptr;
}

int ceil_log2(int n) {
  int levels = 0;
  for (int span = 1; span < n; span *= 2) ++levels;
  return levels;
}

/// First-order predicted cost of one schedule op — the same models the
/// DES uses at its coarsest: flops over the per-rank SRGEMM rate, a
/// log-depth latency+payload tree or a (members-1)-hop ring for the
/// collectives. Scope membership: the diag block crosses the owner's row
/// (pc members) / column (pr); the row panel travels DOWN the columns
/// (pr members), the col panel ACROSS the rows (pc).
double pred_cost(const sched::Op& op, const perf::MachineConfig& m, int pr,
                 int pc) {
  if (sched::is_comm(op.kind)) {
    int members = 0;
    switch (op.kind) {
      case sched::OpKind::kDiagBcastRow: members = pc; break;
      case sched::OpKind::kDiagBcastCol: members = pr; break;
      case sched::OpKind::kRowPanelBcast: members = pr; break;
      case sched::OpKind::kColPanelBcast: members = pc; break;
      default: break;
    }
    if (members < 2) return kCostFloor;
    const double transfer =
        static_cast<double>(op.bytes) / m.nic_bw;
    const double cost = op.coll == sched::CollKind::kRing
                            ? (members - 1) * m.wire_latency + transfer
                            : ceil_log2(members) * (m.wire_latency + transfer);
    return std::max(cost, kCostFloor);
  }
  if (op.kind == sched::OpKind::kCheckpoint) return kCostFloor;
  return std::max(op.flops / m.rank_flops(), kCostFloor);
}

}  // namespace

RunMonitor::RunMonitor(MonitorConfig cfg, sched::RingTraceSink* ring,
                       IncidentLog* incidents)
    : cfg_(cfg), ring_(ring), incidents_(incidents) {}

void RunMonitor::on_schedule(const sched::Schedule& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (have_schedule_ && s.variant == variant_ && s.nb == sched_nb_ &&
      s.b == sched_b_ && s.pr == pr_ && s.pc == pc_ &&
      s.steps.size() == sched_steps_)
    return;  // every rank hands over the identical schedule — first wins
  adopt_locked(s);
  have_schedule_ = true;
}

void RunMonitor::adopt_locked(const sched::Schedule& s) {
  variant_ = s.variant;
  sched_nb_ = s.nb;
  sched_b_ = s.b;
  sched_steps_ = s.steps.size();
  pr_ = s.pr;
  pc_ = s.pc;
  const int nranks = s.pr * s.pc;
  program_.assign(static_cast<std::size_t>(nranks), {});
  total_cost_.assign(static_cast<std::size_t>(nranks), 0.0);
  state_.assign(static_cast<std::size_t>(nranks), {});
  drift_.clear();
  ops_total_ = s.steps.size();
  for (const sched::Step& st : s.steps) {
    if (st.rank < 0 || st.rank >= nranks) continue;
    const double c = pred_cost(st.op, cfg_.machine, pr_, pc_);
    program_[static_cast<std::size_t>(st.rank)].push_back({st.op.kind, c});
    total_cost_[static_cast<std::size_t>(st.rank)] += c;
  }
}

void RunMonitor::record(const sched::TraceEvent& e) {
  if (ring_ != nullptr) ring_->record(e);  // recorder first: an incident
                                           // window includes its trigger
  std::lock_guard<std::mutex> lock(mu_);
  if (!saw_event_) {
    saw_event_ = true;
    t0_ = e.t_begin;
    last_report_t_ = e.t_begin;
  }
  t_last_ = std::max(t_last_, e.t_end);

  if (std::strcmp(e.name, "retry") == 0) {
    retries_.push_back(e.t_end);
    while (!retries_.empty() &&
           retries_.front() < e.t_end - cfg_.retransmit_window_s)
      retries_.pop_front();
    if (incidents_ != nullptr && retries_.size() >= cfg_.retransmit_threshold) {
      std::ostringstream d;
      d << retries_.size() << " retransmissions in "
        << cfg_.retransmit_window_s << "s";
      incidents_->fire("retransmit_storm", e.t_end, e.rank, d.str());
      retries_.clear();
    }
    return;
  }

  const sched::OpKind* kind = op_kind_of(e.name);
  if (kind == nullptr || !have_schedule_) return;  // runtime event
  if (e.rank < 0 || e.rank >= static_cast<int>(program_.size())) return;

  RankState& rs = state_[static_cast<std::size_t>(e.rank)];
  const std::vector<PredOp>& prog = program_[static_cast<std::size_t>(e.rank)];
  std::size_t i = rs.cursor;
  while (i < prog.size() && prog[i].kind != *kind) ++i;
  if (i == prog.size()) return;  // not in this rank's remaining program
  // Credit everything up to the matched op: ops between cursor and i
  // produced no event (untraced in this configuration) but are done.
  for (std::size_t j = rs.cursor; j <= i; ++j) rs.done_cost += prog[j].cost;
  rs.ops_done += i - rs.cursor + 1;
  rs.cursor = i + 1;
  const double pred = prog[i].cost;
  const double dur = e.t_end - e.t_begin;
  rs.actual_s += dur;

  Drift& dr = drift_[e.name];
  dr.pred += pred;
  dr.actual += dur;
  dr.ops += 1;

  if (incidents_ != nullptr && *kind != sched::OpKind::kCheckpoint) {
    const double limit =
        std::max(cfg_.overrun_factor * pred, cfg_.min_overrun_s);
    if (dur > limit) {
      std::ostringstream d;
      d << e.name << " k=" << e.k << " took " << dur << "s, predicted "
        << pred << "s";
      incidents_->fire("op_overrun", e.t_end, e.rank, d.str());
    }
  }

  if (incidents_ != nullptr && cfg_.skew_threshold > 0.0) {
    bool warmed = true;
    double min_p = 1.0, max_p = 0.0;
    int slowest = -1;
    for (std::size_t w = 0; w < total_cost_.size(); ++w) {
      if (total_cost_[w] <= 0.0) continue;
      if (state_[w].ops_done < cfg_.min_ops_per_rank) warmed = false;
      const double p = state_[w].done_cost / total_cost_[w];
      if (p < min_p) {
        min_p = p;
        slowest = static_cast<int>(w);
      }
      max_p = std::max(max_p, p);
    }
    if (warmed && slowest >= 0 && max_p - min_p > cfg_.skew_threshold) {
      std::ostringstream d;
      d << "rank " << slowest << " at " << 100.0 * min_p
        << "% while the front rank is at " << 100.0 * max_p << "%";
      incidents_->fire("straggler", e.t_end, slowest, d.str());
    }
  }

  maybe_report_locked(e.t_end);
}

ProgressReport RunMonitor::snapshot_locked(double t) const {
  ProgressReport r;
  r.t = t;
  r.elapsed_s = saw_event_ ? t - t0_ : 0.0;
  r.ops_total = ops_total_;
  double min_p = 1.0, max_p = 0.0;
  double sum_done = 0.0, sum_actual = 0.0;
  bool any = false;
  for (std::size_t w = 0; w < total_cost_.size(); ++w) {
    if (total_cost_[w] <= 0.0) continue;
    any = true;
    const double p = state_[w].done_cost / total_cost_[w];
    if (p < min_p) {
      min_p = p;
      r.slowest_rank = static_cast<int>(w);
    }
    max_p = std::max(max_p, p);
    sum_done += state_[w].done_cost;
    sum_actual += state_[w].actual_s;
    r.ops_done += state_[w].ops_done;
  }
  if (!any) return r;
  r.progress = min_p;
  r.skew = max_p - min_p;
  const double global_slowdown = sum_done > 0.0 ? sum_actual / sum_done : 1.0;
  r.slowdown = global_slowdown;
  for (std::size_t w = 0; w < total_cost_.size(); ++w) {
    if (total_cost_[w] <= 0.0) continue;
    const double slow_w = state_[w].done_cost > 0.0
                              ? state_[w].actual_s / state_[w].done_cost
                              : global_slowdown;
    r.eta_s = std::max(r.eta_s, (total_cost_[w] - state_[w].done_cost) *
                                    slow_w);
    r.predicted_total_s = std::max(r.predicted_total_s, total_cost_[w]);
  }
  return r;
}

void RunMonitor::maybe_report_locked(double t) {
  if (!have_schedule_) return;
  if (t - last_report_t_ < cfg_.progress_interval_s) return;
  last_report_t_ = t;
  const ProgressReport r = snapshot_locked(t);
  history_.push_back(r);
  if (cfg_.progress_out != nullptr) {
    std::fprintf(cfg_.progress_out, "%s\n", format_progress(r).c_str());
    std::fflush(cfg_.progress_out);
  }
}

ProgressReport RunMonitor::progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_locked(t_last_);
}

std::vector<ProgressReport> RunMonitor::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::string RunMonitor::format_summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[monitor] drift (predicted vs actual, per op kind):";
  for (const auto& [name, d] : drift_) {
    os << "\n[monitor]   " << name << ": pred " << d.pred << "s actual "
       << d.actual << "s";
    if (d.pred > 0.0) os << " (x" << d.actual / d.pred << ")";
    os << " over " << d.ops << " ops";
  }
  return os.str();
}

void RunMonitor::finish() {
  ProgressReport r;
  {
    std::lock_guard<std::mutex> lock(mu_);
    r = snapshot_locked(t_last_);
  }
  if (cfg_.progress_out != nullptr) {
    std::fprintf(cfg_.progress_out, "%s\n%s\n", format_progress(r).c_str(),
                 format_summary().c_str());
    std::fflush(cfg_.progress_out);
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->gauge("monitor.progress").set(r.progress);
    cfg_.metrics->gauge("monitor.eta_seconds").set(r.eta_s);
    cfg_.metrics->gauge("monitor.slowdown").set(r.slowdown);
    if (ring_ != nullptr)
      cfg_.metrics->gauge("trace.ring.dropped")
          .set(static_cast<double>(ring_->dropped()));
  }
}

std::string format_progress(const ProgressReport& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "[monitor] %5.1f%% | elapsed %.3fs | eta %.3fs | "
                "slowdown %.2fx | slowest rank %d | skew %.2f | ops %zu/%zu",
                100.0 * r.progress, r.elapsed_s, r.eta_s, r.slowdown,
                r.slowest_rank, r.skew, r.ops_done, r.ops_total);
  return buf;
}

}  // namespace parfw::monitor
