// Tests for the extension features: component-wise APSP, Seidel's
// algorithm, checkpoint/restart, bit-packed transitive closure.
#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "core/bitset_closure.hpp"
#include "core/block_sparse_fw.hpp"
#include "core/checkpoint.hpp"
#include "core/component_apsp.hpp"
#include "core/floyd_warshall.hpp"
#include "core/incremental.hpp"
#include "core/seidel.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"

namespace parfw {
namespace {

using S = MinPlus<double>;

// --- component_apsp -----------------------------------------------------------

TEST(ComponentApsp, MatchesDenseSolveOnMultiComponentGraph) {
  // Integral weights keep min-plus sums order-independent (exact).
  const auto g = gen::multi_component(4, 20, 0.3, 11);
  auto dense = g.distance_matrix<S>();
  floyd_warshall<S>(dense.view());
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kBlocked;
  opt.block_size = 8;
  const auto split = component_apsp<S>(g, opt);
  // Blocked vs sequential sum orders differ; double rounding only.
  EXPECT_LT(max_abs_diff<double>(dense.view(), split.dist.view()), 1e-9);
}

TEST(ComponentApsp, SingleComponentDegeneratesToPlainApsp) {
  const auto g = gen::erdos_renyi(50, 0.2, 12);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kSequential;
  const auto a = apsp<S>(g, opt);
  const auto b = component_apsp<S>(g, opt);
  // Same algorithm, same order (single component is an identity remap).
  EXPECT_EQ(max_abs_diff<double>(a.dist.view(), b.dist.view()), 0.0);
}

TEST(ComponentApsp, PathsRemapToOriginalIds) {
  const auto g = gen::multi_component(3, 12, 0.5, 13);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kSequential;
  opt.track_paths = true;
  const auto r = component_apsp<S>(g, opt);
  const auto w = g.distance_matrix<S>();
  for (vertex_t s = 0; s < g.num_vertices(); ++s)
    for (vertex_t t = 0; t < g.num_vertices(); ++t) {
      if (s == t || value_traits<double>::is_inf(r.dist(s, t))) continue;
      const auto p = r.query(s, t).path;
      ASSERT_FALSE(p.empty());
      double len = 0;
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        ASSERT_FALSE(value_traits<double>::is_inf(w(p[i], p[i + 1])));
        len += w(p[i], p[i + 1]);
      }
      EXPECT_NEAR(len, r.dist(s, t), 1e-9);
    }
}

TEST(ComponentApsp, IsolatedVerticesStayUnreachable) {
  Graph g(5);
  g.add_edge(0, 1, 2.0);
  const auto r = component_apsp<S>(g);
  EXPECT_EQ(r.dist(0, 1), 2.0);
  EXPECT_TRUE(value_traits<double>::is_inf(r.dist(0, 2)));
  EXPECT_EQ(r.dist(3, 3), 0.0);
}

TEST(ComponentApsp, FlopSavingsEstimate) {
  // 4 balanced components of size m: flops = 4·2m³ vs dense 2(4m)³ = 128m³:
  // a 16x saving.
  std::vector<vertex_t> labels;
  for (vertex_t c = 0; c < 4; ++c)
    for (int i = 0; i < 10; ++i) labels.push_back(c);
  const double split = component_apsp_flops(labels);
  const double dense = 2.0 * 40.0 * 40.0 * 40.0;
  EXPECT_DOUBLE_EQ(dense / split, 16.0);
}

// --- Seidel ----------------------------------------------------------------

TEST(Seidel, MatchesBfsDistancesOnConnectedGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    // Connected undirected graph: grid plus random chords.
    Graph g = gen::grid2d(5, 6, seed);
    Rng rng(seed * 7 + 1);
    Graph uw(g.num_vertices());
    for (const Edge& e : g.edges()) uw.add_edge(e.src, e.dst, 1.0);
    for (int extra = 0; extra < 10; ++extra) {
      const auto a = static_cast<vertex_t>(rng.next_below(30));
      const auto b = static_cast<vertex_t>(rng.next_below(30));
      if (a != b) uw.add_undirected_edge(a, b, 1.0);
    }
    auto fw = uw.distance_matrix<S>();
    floyd_warshall<S>(fw.view());
    const auto sd = seidel_apsp(uw);
    EXPECT_EQ(max_abs_diff<double>(fw.view(), sd.view()), 0.0) << "seed " << seed;
  }
}

TEST(Seidel, CompleteGraphBaseCase) {
  Graph g(6);
  for (vertex_t i = 0; i < 6; ++i)
    for (vertex_t j = 0; j < 6; ++j)
      if (i != j) g.add_edge(i, j, 1.0);
  const auto d = seidel_apsp(g);
  for (vertex_t i = 0; i < 6; ++i)
    for (vertex_t j = 0; j < 6; ++j)
      EXPECT_EQ(d(i, j), i == j ? 0.0 : 1.0);
}

TEST(Seidel, RingDiameter) {
  // Undirected ring of 16: max distance 8, dist(i,j) = cyclic distance.
  Graph g(16);
  for (vertex_t i = 0; i < 16; ++i) g.add_undirected_edge(i, (i + 1) % 16, 1.0);
  const auto d = seidel_apsp(g);
  for (vertex_t i = 0; i < 16; ++i)
    for (vertex_t j = 0; j < 16; ++j) {
      const vertex_t fwd = (j - i + 16) % 16;
      EXPECT_EQ(d(i, j), static_cast<double>(std::min(fwd, 16 - fwd)));
    }
}

TEST(Seidel, RejectsDirectedGraph) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);  // one-directional
  g.add_undirected_edge(1, 2, 1.0);
  EXPECT_THROW(seidel_apsp(g), check_error);
}

TEST(Seidel, RejectsDisconnectedGraph) {
  Graph g(4);
  g.add_undirected_edge(0, 1, 1.0);
  g.add_undirected_edge(2, 3, 1.0);
  EXPECT_THROW(seidel_apsp(g), check_error);
}

// --- checkpoint/restart -----------------------------------------------------

TEST(Checkpoint, SaveLoadRoundTrip) {
  DenseEntryGen<float> gen(31, 0.8);
  auto m = gen.full(24);
  std::stringstream ss;
  save_checkpoint<float>(ss, m.view(), /*next_block=*/3, /*block_size=*/8);
  const auto loaded = load_checkpoint<float>(ss);
  EXPECT_EQ(loaded.next_block, 3u);
  EXPECT_EQ(loaded.block_size, 8u);
  EXPECT_EQ(max_abs_diff<float>(m.view(), loaded.dist.view()), 0.0);
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream ss("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint<float>(ss), check_error);
}

TEST(Checkpoint, RejectsWrongElementType) {
  Matrix<float> m(4, 4, 1.0f);
  std::stringstream ss;
  save_checkpoint<float>(ss, m.view(), 0, 2);
  EXPECT_THROW(load_checkpoint<double>(ss), check_error);
}

TEST(Checkpoint, ResumeReproducesUninterruptedRun) {
  using Sf = MinPlus<float>;
  DenseEntryGen<float> gen(32, 0.9, 1.0f, 50.0f, /*integral=*/true);
  const std::size_t n = 64, b = 8;

  // Uninterrupted run.
  auto full = gen.full(static_cast<vertex_t>(n));
  blocked_floyd_warshall<Sf>(full.view(), {{.block_size = b}});

  // Interrupted run: checkpoint at every iteration, "crash" after 3.
  auto crashing = gen.full(static_cast<vertex_t>(n));
  std::stringstream ckpt;
  blocked_floyd_warshall_range<Sf>(
      crashing.view(), 0, {{.block_size = b}},
      [&](std::size_t k_done, MatrixView<float> view) {
        if (k_done == 3) {
          ckpt.str("");
          save_checkpoint<float>(ckpt, MatrixView<const float>(view), k_done, b);
        }
      });
  // (the run above actually completed; simulate the crash by reloading the
  // snapshot taken at k=3 and resuming from there)
  auto restored = load_checkpoint<float>(ckpt);
  EXPECT_EQ(restored.next_block, 3u);
  blocked_floyd_warshall_range<Sf>(restored.dist.view(), restored.next_block,
                                   {{.block_size = restored.block_size}});
  EXPECT_EQ(max_abs_diff<float>(full.view(), restored.dist.view()), 0.0);
}

TEST(Checkpoint, ResumeFromEveryIteration) {
  // For every possible interruption point: snapshot the state there, load
  // it back, resume, and compare against the uninterrupted run.
  using Sf = MinPlus<float>;
  DenseEntryGen<float> gen(33, 1.0, 1.0f, 30.0f, /*integral=*/true);
  const std::size_t n = 40, b = 8, nb = n / b;
  auto full = gen.full(static_cast<vertex_t>(n));
  blocked_floyd_warshall<Sf>(full.view(), {{.block_size = b}});

  for (std::size_t stop = 1; stop <= nb; ++stop) {
    std::stringstream ss;
    auto scratch = gen.full(static_cast<vertex_t>(n));
    blocked_floyd_warshall_range<Sf>(
        scratch.view(), 0, {{.block_size = b}},
        [&](std::size_t k_done, MatrixView<float> v) {
          if (k_done == stop)
            save_checkpoint<float>(ss, MatrixView<const float>(v), k_done, b);
        });
    auto loaded = load_checkpoint<float>(ss);
    EXPECT_EQ(loaded.next_block, stop);
    blocked_floyd_warshall_range<Sf>(loaded.dist.view(), loaded.next_block,
                                     {{.block_size = loaded.block_size}});
    EXPECT_EQ(max_abs_diff<float>(full.view(), loaded.dist.view()), 0.0)
        << "resume from " << stop;
  }
}

// --- incremental vertex insertion ---------------------------------------------

TEST(InsertVertex, MatchesRecomputeFromScratch) {
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    const vertex_t n = 30;
    auto g = gen::erdos_renyi(n, 0.2, seed, 1.0, 100.0, /*integral=*/true);
    auto closed = g.distance_matrix<S>();
    floyd_warshall<S>(closed.view());

    // New vertex with a handful of integral-weight edges each way.
    Rng rng(seed + 99);
    std::vector<double> in_e(static_cast<std::size_t>(n), S::zero());
    std::vector<double> out_e(static_cast<std::size_t>(n), S::zero());
    Graph g2(n + 1);
    for (const Edge& e : g.edges()) g2.add_edge(e.src, e.dst, e.weight);
    for (int k = 0; k < 6; ++k) {
      const auto u = static_cast<vertex_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      const double w1 = static_cast<double>(1 + rng.next_below(50));
      const double w2 = static_cast<double>(1 + rng.next_below(50));
      out_e[static_cast<std::size_t>(u)] =
          std::min(out_e[static_cast<std::size_t>(u)], w1);
      in_e[static_cast<std::size_t>(u)] =
          std::min(in_e[static_cast<std::size_t>(u)], w2);
      g2.add_edge(n, u, w1);
      g2.add_edge(u, n, w2);
    }
    const auto grown = insert_vertex<S>(
        closed.view(), std::span<const double>(in_e),
        std::span<const double>(out_e));

    auto expected = g2.distance_matrix<S>();
    floyd_warshall<S>(expected.view());
    EXPECT_EQ(max_abs_diff<double>(expected.view(), grown.view()), 0.0)
        << "seed " << seed;
  }
}

TEST(InsertVertex, IsolatedVertexLeavesMatrixUntouched) {
  const auto g = gen::erdos_renyi(15, 0.3, 50, 1.0, 100.0, true);
  auto closed = g.distance_matrix<S>();
  floyd_warshall<S>(closed.view());
  std::vector<double> none(15, S::zero());
  const auto grown =
      insert_vertex<S>(closed.view(), std::span<const double>(none),
                       std::span<const double>(none));
  EXPECT_EQ(grown.rows(), 16u);
  EXPECT_EQ(max_abs_diff<double>(closed.view(), grown.sub(0, 0, 15, 15)), 0.0);
  EXPECT_TRUE(value_traits<double>::is_inf(grown(15, 0)));
  EXPECT_TRUE(value_traits<double>::is_inf(grown(0, 15)));
  EXPECT_EQ(grown(15, 15), 0.0);
}

TEST(InsertVertex, NewShortcutImprovesOldPairs) {
  // Two chains joined only through the new hub vertex.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  auto closed = g.distance_matrix<S>();
  floyd_warshall<S>(closed.view());
  ASSERT_TRUE(value_traits<double>::is_inf(closed(0, 3)));
  std::vector<double> in_e(4, S::zero()), out_e(4, S::zero());
  in_e[1] = 2.0;   // 1 -> v
  out_e[2] = 3.0;  // v -> 2
  const auto grown = insert_vertex<S>(closed.view(),
                                      std::span<const double>(in_e),
                                      std::span<const double>(out_e));
  EXPECT_EQ(grown(0, 3), 1.0 + 2.0 + 3.0 + 1.0);  // 0-1-v-2-3
  EXPECT_EQ(grown(1, 2), 5.0);
}

// --- bit-packed transitive closure ----------------------------------------------

TEST(BitsetClosure, MatchesBooleanFloydWarshall) {
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto g = gen::erdos_renyi(70, 0.04, seed);
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    // Oracle: byte-matrix or-and FW.
    Matrix<std::uint8_t> m(n, n, 0);
    for (std::size_t v = 0; v < n; ++v) m(v, v) = 1;
    for (const Edge& e : g.edges()) m(e.src, e.dst) = 1;
    floyd_warshall<BoolOrAnd>(m.view());

    const BitMatrix reach = transitive_closure(g);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(reach.get(i, j), m(i, j) == 1)
            << "(" << i << "," << j << ") seed " << seed;
  }
}

TEST(BitsetClosure, CountAndBasicShapes) {
  const auto ring = gen::ring(65);  // crosses the 64-bit word boundary
  const BitMatrix r = transitive_closure(ring);
  EXPECT_EQ(r.count(), 65u * 65u);  // a cycle reaches everything

  Graph chain(65);
  for (vertex_t i = 0; i + 1 < 65; ++i) chain.add_edge(i, i + 1, 1.0);
  const BitMatrix c = transitive_closure(chain);
  EXPECT_EQ(c.count(), 65u * 66u / 2u);  // upper triangle incl. diagonal
  EXPECT_TRUE(c.get(0, 64));
  EXPECT_FALSE(c.get(64, 0));
}

TEST(BitsetClosure, AgreesWithConnectedComponentsOnSymmetricGraphs) {
  const auto g = gen::multi_component(3, 21, 0.3, 44);
  // Symmetrise.
  Graph sym(g.num_vertices());
  for (const Edge& e : g.edges()) sym.add_undirected_edge(e.src, e.dst, 1.0);
  const BitMatrix reach = transitive_closure(sym);
  const auto labels = connected_components(sym);
  for (vertex_t i = 0; i < sym.num_vertices(); ++i)
    for (vertex_t j = 0; j < sym.num_vertices(); ++j)
      EXPECT_EQ(reach.get(static_cast<std::size_t>(i),
                          static_cast<std::size_t>(j)),
                labels[static_cast<std::size_t>(i)] ==
                    labels[static_cast<std::size_t>(j)]);
}

// --- block-sparse FW ----------------------------------------------------------

class BlockSparseParam
    : public ::testing::TestWithParam<std::tuple<double, int>> {};
// (edge probability, block size)

TEST_P(BlockSparseParam, MatchesSequentialFw) {
  const auto [p, b] = GetParam();
  const auto g = gen::erdos_renyi(72, p, 808 + static_cast<std::uint64_t>(b),
                                  1.0, 60.0, /*integral=*/true);
  auto expected = g.distance_matrix<S>();
  floyd_warshall<S>(expected.view());
  auto got = g.distance_matrix<S>();
  const auto stats = block_sparse_floyd_warshall<S>(
      got.view(), static_cast<std::size_t>(b));
  EXPECT_EQ(max_abs_diff<double>(expected.view(), got.view()), 0.0)
      << "p=" << p << " b=" << b;
  EXPECT_LE(stats.products_skipped, stats.products_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockSparseParam,
    ::testing::Combine(::testing::Values(0.002, 0.01, 0.05, 0.3),
                       ::testing::Values(8, 12, 24)));

TEST(BlockSparseFw, SkipsMostProductsOnVerySparseInput) {
  // A few disjoint short chains: almost every block pair stays empty.
  Graph g(96);
  for (vertex_t c = 0; c < 4; ++c)
    for (vertex_t i = 0; i < 10; ++i)
      g.add_edge(c * 24 + i, c * 24 + i + 1, 1.0);
  auto expected = g.distance_matrix<S>();
  floyd_warshall<S>(expected.view());
  auto got = g.distance_matrix<S>();
  const auto stats = block_sparse_floyd_warshall<S>(got.view(), 8);
  EXPECT_EQ(max_abs_diff<double>(expected.view(), got.view()), 0.0);
  EXPECT_GT(stats.skip_fraction(), 0.5);
}

TEST(BlockSparseFw, DenseInputSkipsNothing) {
  const auto g = gen::dense_uniform(40, 3, 1.0, 50.0, true);
  auto expected = g.distance_matrix<S>();
  floyd_warshall<S>(expected.view());
  auto got = g.distance_matrix<S>();
  const auto stats = block_sparse_floyd_warshall<S>(got.view(), 8);
  EXPECT_EQ(max_abs_diff<double>(expected.view(), got.view()), 0.0);
  EXPECT_EQ(stats.products_skipped, 0u);
}

TEST(BlockSparseFw, RaggedLastBlock) {
  const auto g = gen::erdos_renyi(50, 0.1, 909, 1.0, 40.0, true);
  auto expected = g.distance_matrix<S>();
  floyd_warshall<S>(expected.view());
  auto got = g.distance_matrix<S>();
  block_sparse_floyd_warshall<S>(got.view(), 16);  // 50 = 3*16 + 2
  EXPECT_EQ(max_abs_diff<double>(expected.view(), got.view()), 0.0);
}

}  // namespace
}  // namespace parfw
