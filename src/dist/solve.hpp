// parfw::solve — the ONE front door over every execution strategy.
//
// core/apsp.hpp's apsp() covers the single-node strategies but cannot see
// the distributed engine (core must not depend on the runtime); this
// header closes the loop: solve() dispatches kDistributed to the dist
// driver (materialising the GridSpec from ApspOptions::dist and threading
// the shared SolveCommon + ResilienceOptions through) and everything else
// to apsp(). Examples/tools/tests call this and pick a strategy with an
// enum instead of choosing between two entry points with different shapes.
#pragma once

#include "core/apsp.hpp"
#include "dist/driver.hpp"

namespace parfw {

/// Materialise the process grid described by a DistStrategy.
inline dist::GridSpec grid_of(const DistStrategy& ds) {
  if (!ds.tiled) return dist::GridSpec::row_major(ds.grid_rows, ds.grid_cols);
  PARFW_CHECK_MSG(ds.node_rows > 0 && ds.node_cols > 0 &&
                      ds.grid_rows % ds.node_rows == 0 &&
                      ds.grid_cols % ds.node_cols == 0,
                  "tiled placement: node grid must divide the process grid");
  return dist::GridSpec::tiled(ds.node_rows, ds.node_cols,
                               ds.grid_rows / ds.node_rows,
                               ds.grid_cols / ds.node_cols);
}

/// Solve APSP on a graph over semiring S with any strategy, including the
/// distributed ones. Back-compat: apsp() and dist::run_parallel_fw keep
/// working; this is sugar gluing them behind one option struct.
template <typename S>
ApspResult<typename S::value_type> solve(const Graph& g,
                                         const ApspOptions& opt = {}) {
  if (opt.algorithm != ApspAlgorithm::kDistributed) return apsp<S>(g, opt);

  const DistStrategy& ds = opt.dist;
  const dist::GridSpec grid = grid_of(ds);
  const int rpn = ds.tiled ? grid.qr() * grid.qc() : ds.ranks_per_node;

  dist::DistFwOptions dopt;
  static_cast<SolveCommon&>(dopt) = opt;  // block_size / diag, verbatim
  dopt.variant = ds.variant;
  dopt.resilience = ds.resilience;

  ApspResult<typename S::value_type> result = dist::run_parallel_fw<S>(
      g, grid, rpn, dopt, opt.track_paths);
  if (opt.reject_negative_cycles) {
    PARFW_CHECK_MSG(!has_negative_cycle<S>(result.dist.view()),
                    "input graph contains a negative cycle");
  }
  return result;
}

}  // namespace parfw
