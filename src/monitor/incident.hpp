// incident — anomaly-triggered flight-recorder dumps (DESIGN.md §4.14).
//
// An IncidentLog turns a trigger ("this op overran", "retransmit storm",
// "SLO budget burning") into a durable incident: the flight recorder's
// current window is flushed to disk as a Chrome trace, the causal blame
// split over that window is computed on the spot (causal::build_graph +
// analyze), and one structured JSONL record ties it all together — kind,
// event-time, the rank the trigger named, the rank the CAUSAL analysis
// blames, the per-category/per-rank on-path seconds, and the trace path.
// The postmortem arrives with the incident instead of being reconstructed
// after it.
//
// Firing is rate-limited (cooldown between dumps, hard cap on dumps per
// run) so a persistent fault produces one actionable incident, not a
// dump per op. Thread-safe: triggers arrive from rank threads.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "causal/analysis.hpp"
#include "sched/trace.hpp"

namespace parfw::monitor {

struct IncidentConfig {
  /// Incident files land at `<path_prefix>.incident-<N>.trace.json` and
  /// the JSONL report at `<path_prefix>.incidents.jsonl` (appended).
  /// Empty = keep incidents in memory only (no files).
  std::string path_prefix;
  /// Minimum event-time between dumps — a persistent fault fires ONE
  /// incident, not one per affected op.
  double cooldown_s = 30.0;
  /// Hard cap on incidents per run.
  std::size_t max_incidents = 8;
  /// When set, each fired incident prints a one-line notice here.
  std::FILE* log_out = nullptr;
};

struct Incident {
  std::string kind;         ///< op_overrun | straggler | retransmit_storm |
                            ///< slo_burn | (caller-defined)
  double t = 0.0;           ///< event-time of the trigger
  int hint_rank = -1;       ///< rank named by the trigger (-1: none)
  int blamed_rank = -1;     ///< argmax on-path seconds over the window
  std::string detail;       ///< human-readable trigger description
  std::string trace_path;   ///< Chrome trace of the window ("" = not written)
  double window_span = 0.0; ///< causal span of the window, seconds
  std::size_t window_events = 0;
  std::uint64_t ring_dropped = 0;  ///< events lost before the window starts
  causal::CategoryTotals blame;    ///< on-path seconds per category
  std::map<int, double> rank_seconds;  ///< on-path seconds per rank
};

class IncidentLog {
 public:
  /// `ring` is the flight recorder whose window gets dumped and blamed;
  /// nullptr records incident metadata only. Not owned.
  explicit IncidentLog(IncidentConfig cfg = {},
                       sched::RingTraceSink* ring = nullptr);

  /// Fire a trigger. Returns true when an incident was actually recorded
  /// (false: cooldown, cap reached, or a concurrent fire won the race).
  bool fire(const std::string& kind, double t, int hint_rank,
            const std::string& detail);

  std::vector<Incident> incidents() const;
  std::size_t count() const;

  /// Path of the JSONL report ("" when path_prefix is empty).
  std::string report_path() const;

  const IncidentConfig& config() const { return cfg_; }

 private:
  IncidentConfig cfg_;
  sched::RingTraceSink* ring_;
  mutable std::mutex mu_;
  std::vector<Incident> incidents_;
  bool fired_once_ = false;
  double last_fire_t_ = 0.0;
};

/// One-line human-readable incident notice.
std::string format_incident(const Incident& inc);

}  // namespace parfw::monitor
