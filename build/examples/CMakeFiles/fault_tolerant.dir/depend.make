# Empty dependencies file for fault_tolerant.
# This may be replaced when dependencies are built.
