// Options shared by every solver entry point.
//
// ApspOptions (core front door), BlockedFwOptions (single-node engine) and
// DistFwOptions (distributed engine) used to repeat block_size / diag with
// independently drifting defaults; they now all carry this base, so the
// knobs exist once and a higher layer can slice-assign them down to the
// engine it dispatches to (e.g. parfw::solve copies the SolveCommon
// subobject of ApspOptions into the engine options verbatim).
//
// NOTE for initialisation style: C++20 designated initialisers cannot name
// inherited members, so `{.block_size = b}` on a derived options struct
// becomes `{{.block_size = b}}` (brace-initialising the SolveCommon base
// subobject), and mixed base/derived designations need statement form.
#pragma once

#include <cstddef>

#include "core/diag_update.hpp"

namespace parfw {

struct SolveCommon {
  std::size_t block_size = 64;  ///< blocked/block-cyclic block size b
  DiagStrategy diag = DiagStrategy::kClassic;
};

}  // namespace parfw
