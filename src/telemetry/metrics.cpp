#include "telemetry/metrics.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace parfw::telemetry {

Histogram::Histogram(int sub_per_octave) {
  PARFW_CHECK_MSG(sub_per_octave >= 1 && sub_per_octave <= 64,
                  "histogram sub_per_octave out of range: " << sub_per_octave);
  sub_ = sub_per_octave;
  buckets_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>((kMaxExp - kMinExp) * sub_));
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q <= 0.0) return min_.load(std::memory_order_relaxed);
  if (q >= 1.0) return max_.load(std::memory_order_relaxed);
  // Rank of the target observation (1-based, ceil): the smallest bucket
  // whose cumulative count reaches it covers the quantile.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (int i = 0; i < bucket_count(); ++i) {
    cum += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (cum >= target) {
      // Geometric midpoint of the bucket, clamped into the observed range
      // so tiny histograms do not report values they never saw.
      const double mid = std::exp2(
          kMinExp + (static_cast<double>(i) + 0.5) / sub_);
      const double lo = min_.load(std::memory_order_relaxed);
      const double hi = max_.load(std::memory_order_relaxed);
      return std::min(std::max(mid, lo), hi);
    }
  }
  return max_.load(std::memory_order_relaxed);
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count();
  if (s.count == 0) return s;
  s.sum = sum();
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

Registry::Entry& Registry::entry(const std::string& name,
                                 const std::string& labels, MetricKind kind,
                                 int hist_sub) {
  const std::string key = name + '\x1f' + labels;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case MetricKind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case MetricKind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case MetricKind::kHistogram:
        e.hist = std::make_unique<Histogram>(hist_sub);
        break;
    }
    it = entries_.emplace(key, std::move(e)).first;
  }
  PARFW_CHECK_MSG(it->second.kind == kind,
                  "metric '" << name << "{" << labels
                             << "}' re-registered with a different kind");
  return it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  return *entry(name, labels, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  return *entry(name, labels, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels) {
  return *entry(name, labels, MetricKind::kHistogram).hist;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels, int sub_per_octave) {
  return *entry(name, labels, MetricKind::kHistogram, sub_per_octave).hist;
}

std::vector<MetricRow> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricRow row;
    const std::size_t sep = key.find('\x1f');
    row.name = key.substr(0, sep);
    row.labels = key.substr(sep + 1);
    row.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        row.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge: row.value = e.gauge->value(); break;
      case MetricKind::kHistogram: row.hist = e.hist->summary(); break;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

Registry& Registry::global() {
  static Registry* r = new Registry;  // leaked: outlive static destructors
  return *r;
}

namespace {
std::atomic<bool> g_enabled{[] {
  const char* e = std::getenv("PARFW_METRICS");
  return e != nullptr && e[0] != '\0';
}()};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace parfw::telemetry
