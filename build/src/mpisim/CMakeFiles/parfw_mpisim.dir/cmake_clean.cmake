file(REMOVE_RECURSE
  "CMakeFiles/parfw_mpisim.dir/collectives.cpp.o"
  "CMakeFiles/parfw_mpisim.dir/collectives.cpp.o.d"
  "CMakeFiles/parfw_mpisim.dir/communicator.cpp.o"
  "CMakeFiles/parfw_mpisim.dir/communicator.cpp.o.d"
  "CMakeFiles/parfw_mpisim.dir/runtime.cpp.o"
  "CMakeFiles/parfw_mpisim.dir/runtime.cpp.o.d"
  "libparfw_mpisim.a"
  "libparfw_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
