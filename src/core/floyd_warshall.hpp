// Sequential Floyd-Warshall (paper Algorithm 1), generic over semirings,
// with optional predecessor tracking and negative-cycle detection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "semiring/semiring.hpp"
#include "util/matrix.hpp"

namespace parfw {

/// In-place Floyd-Warshall on an n x n distance matrix:
///   Dist[i,j] ← Dist[i,j] ⊕ (Dist[i,k] ⊗ Dist[k,j])  for k = 0..n-1.
/// The matrix must be initialised per Graph::distance_matrix (diagonal at
/// the semiring one). Requires an idempotent ⊕ (shortest-path-like
/// semirings); checked at compile time.
template <typename S>
void floyd_warshall(MatrixView<typename S::value_type> dist) {
  static_assert(is_idempotent<S>(), "FW requires an idempotent semiring");
  using T = typename S::value_type;
  PARFW_CHECK(dist.rows() == dist.cols());
  const std::size_t n = dist.rows();
  for (std::size_t k = 0; k < n; ++k) {
    const T* rowk = dist.data() + k * dist.ld();
    for (std::size_t i = 0; i < n; ++i) {
      T* rowi = dist.data() + i * dist.ld();
      const T dik = rowi[k];
      if (dik == S::zero()) continue;  // no i→k path: no updates via k
      for (std::size_t j = 0; j < n; ++j)
        rowi[j] = S::add(rowi[j], S::mul(dik, rowk[j]));
    }
  }
}

/// Floyd-Warshall that additionally maintains the predecessor matrix:
/// pred(i,j) = the vertex preceding j on the current best i→j path
/// (pred(i,i) = i; -1 when j is unreachable from i). Enables O(path)
/// reconstruction (paper §7 lists path generation as planned work).
template <typename S>
void floyd_warshall_paths(MatrixView<typename S::value_type> dist,
                          MatrixView<std::int64_t> pred) {
  static_assert(is_idempotent<S>(), "FW requires an idempotent semiring");
  using T = typename S::value_type;
  PARFW_CHECK(dist.rows() == dist.cols());
  PARFW_CHECK(pred.rows() == dist.rows() && pred.cols() == dist.cols());
  const std::size_t n = dist.rows();
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const T dik = dist(i, k);
      if (dik == S::zero()) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const T cand = S::mul(dik, dist(k, j));
        if (S::less_add(cand, dist(i, j))) {
          dist(i, j) = cand;
          pred(i, j) = pred(k, j);
        }
      }
    }
  }
}

/// Initialise the predecessor matrix from an edge-initialised distance
/// matrix (before running floyd_warshall_paths).
template <typename S>
void init_predecessors(MatrixView<const typename S::value_type> dist,
                       MatrixView<std::int64_t> pred) {
  const std::size_t n = dist.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j)
        pred(i, j) = static_cast<std::int64_t>(i);
      else
        pred(i, j) = (dist(i, j) != S::zero()) ? static_cast<std::int64_t>(i)
                                               : std::int64_t{-1};
    }
}

/// True iff the closed matrix witnesses a negative cycle: some diagonal
/// entry strictly better than the semiring one (min-plus: dist(v,v) < 0).
template <typename S>
bool has_negative_cycle(MatrixView<const typename S::value_type> dist) {
  for (std::size_t v = 0; v < dist.rows(); ++v)
    if (S::less_add(dist(v, v), S::one())) return true;
  return false;
}

/// Reconstruct the shortest path src→dst from a predecessor matrix.
/// Empty vector when dst is unreachable; {src} when src == dst.
std::vector<std::int64_t> reconstruct_path(MatrixView<const std::int64_t> pred,
                                           std::int64_t src, std::int64_t dst);

}  // namespace parfw
