// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace parfw {

/// Monotonic stopwatch. Starts on construction; seconds() reads elapsed time.
class Timer {
  using clock = std::chrono::steady_clock;

 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

}  // namespace parfw
