# Empty dependencies file for parfw_core.
# This may be replaced when dependencies are built.
