#include "telemetry/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace parfw::telemetry {

namespace {

/// Deterministic double formatting: up to 9 significant digits, no
/// locale dependence ("%.9g" prints integers as integers).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_u64(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<std::uint64_t>(v));
  return buf;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Split "k=v,k=v" into pairs (empty string -> empty list).
std::vector<std::pair<std::string, std::string>> parse_labels(
    const std::string& labels) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < labels.size()) {
    std::size_t comma = labels.find(',', pos);
    if (comma == std::string::npos) comma = labels.size();
    const std::string kv = labels.substr(pos, comma - pos);
    const std::size_t eq = kv.find('=');
    if (eq != std::string::npos)
      out.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    else if (!kv.empty())
      out.emplace_back(kv, "");
    pos = comma + 1;
  }
  return out;
}

std::string prom_name(const std::string& name) {
  std::string out = "parfw_";
  for (char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

std::string prom_labels(const std::string& labels,
                        const std::string& extra = "") {
  const auto kv = parse_labels(labels);
  if (kv.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

void json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void to_json(const Registry& r, std::ostream& os) {
  const std::vector<MetricRow> rows = r.snapshot();
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricRow& row : rows) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":";
    json_escaped(os, row.name);
    os << ",\"labels\":{";
    bool lf = true;
    for (const auto& [k, v] : parse_labels(row.labels)) {
      if (!lf) os << ",";
      lf = false;
      json_escaped(os, k);
      os << ":";
      json_escaped(os, v);
    }
    os << "},\"type\":\"" << kind_name(row.kind) << "\",";
    switch (row.kind) {
      case MetricKind::kCounter:
        os << "\"value\":" << fmt_u64(row.value);
        break;
      case MetricKind::kGauge:
        os << "\"value\":" << fmt(row.value);
        break;
      case MetricKind::kHistogram:
        os << "\"count\":" << row.hist.count << ",\"sum\":" << fmt(row.hist.sum)
           << ",\"min\":" << fmt(row.hist.min)
           << ",\"max\":" << fmt(row.hist.max)
           << ",\"p50\":" << fmt(row.hist.p50)
           << ",\"p95\":" << fmt(row.hist.p95)
           << ",\"p99\":" << fmt(row.hist.p99);
        break;
    }
    os << "}";
  }
  os << "\n]}\n";
}

void to_prometheus(const Registry& r, std::ostream& os) {
  const std::vector<MetricRow> rows = r.snapshot();
  std::string last_name;
  for (const MetricRow& row : rows) {
    const std::string pn = prom_name(row.name);
    if (row.name != last_name) {
      os << "# TYPE " << pn << " "
         << (row.kind == MetricKind::kHistogram ? "summary"
                                                : kind_name(row.kind))
         << "\n";
      last_name = row.name;
    }
    switch (row.kind) {
      case MetricKind::kCounter:
        os << pn << prom_labels(row.labels) << " " << fmt_u64(row.value)
           << "\n";
        break;
      case MetricKind::kGauge:
        os << pn << prom_labels(row.labels) << " " << fmt(row.value) << "\n";
        break;
      case MetricKind::kHistogram:
        for (const auto& [q, v] :
             {std::pair<const char*, double>{"0.5", row.hist.p50},
              {"0.95", row.hist.p95},
              {"0.99", row.hist.p99}})
          os << pn << prom_labels(row.labels, std::string("quantile=\"") + q +
                                                  "\"")
             << " " << fmt(v) << "\n";
        os << pn << "_sum" << prom_labels(row.labels) << " "
           << fmt(row.hist.sum) << "\n";
        os << pn << "_count" << prom_labels(row.labels) << " "
           << row.hist.count << "\n";
        break;
    }
  }
}

std::string to_table(const Registry& r) {
  Table t({"metric", "labels", "type", "count", "value/sum", "p50", "p95",
           "p99"});
  for (const MetricRow& row : r.snapshot()) {
    switch (row.kind) {
      case MetricKind::kCounter:
        t.add_row({row.name, row.labels, "counter", "", fmt_u64(row.value), "",
                   "", ""});
        break;
      case MetricKind::kGauge:
        t.add_row(
            {row.name, row.labels, "gauge", "", fmt(row.value), "", "", ""});
        break;
      case MetricKind::kHistogram:
        t.add_row({row.name, row.labels, "hist",
                   fmt_u64(static_cast<double>(row.hist.count)),
                   fmt(row.hist.sum), fmt(row.hist.p50), fmt(row.hist.p95),
                   fmt(row.hist.p99)});
        break;
    }
  }
  return t.str();
}

ExportFormat env_format() {
  const char* e = std::getenv("PARFW_METRICS");
  if (e == nullptr || e[0] == '\0') return ExportFormat::kNone;
  const std::string v(e);
  if (v == "json") return ExportFormat::kJson;
  if (v == "prom") return ExportFormat::kProm;
  return ExportFormat::kTable;  // "table" and any other truthy value
}

void dump(const Registry& r, ExportFormat f, std::ostream& os) {
  switch (f) {
    case ExportFormat::kNone: break;
    case ExportFormat::kJson: to_json(r, os); break;
    case ExportFormat::kProm: to_prometheus(r, os); break;
    case ExportFormat::kTable: os << to_table(r); break;
  }
}

bool dump_env(std::ostream& os) {
  const ExportFormat f = env_format();
  if (f == ExportFormat::kNone) return false;
  dump(Registry::global(), f, os);
  return true;
}

}  // namespace parfw::telemetry
