// Capacity planner: answer "what would this APSP cost on a Summit-class
// machine?" with the paper's performance models (§2.7, §3.4, §4.5).
//
// For a problem size, sweeps node counts and reports, per count: the
// recommended grid/placement, whether the problem fits in GPU memory or
// needs the offload path, the predicted runtime and PFLOP/s for the
// fully-optimised schedule, and the block-size advice from Eq. (5).
#include <cstdio>

#include "perf/cost_model.hpp"
#include "perf/experiments.hpp"
#include "util/table.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  const MachineConfig m = MachineConfig::summit();
  const double n = 5.0e5;  // half-million-vertex knowledge graph
  const double b = 768;

  std::printf("capacity plan for APSP on n = %.0f vertices "
              "(%.2f TB distance matrix)\n",
              n, n * n * m.word_bytes / 1e12);
  std::printf("machine: Summit-class (6 GPUs/node, %.1f TF/s SRGEMM, "
              "%.0f GB/s NIC)\n",
              m.srgemm_flops / 1e12, m.nic_bw / 1e9);
  std::printf("Eq.(5) minimum offload block size: %.0f (using b = %.0f)\n\n",
              min_offload_block(m), b);

  Table t({"nodes", "grid (KrxKc,QrxQc)", "mode", "time", "PF/s",
           "% of peak"});
  const auto legends = paper_legends();
  for (int nodes : {16, 32, 64, 128, 256}) {
    const double gpu_wall = max_in_gpu_vertices(m, nodes);
    const bool offload = n > gpu_wall;
    const Legend& legend = offload ? legends[4] : legends[3];
    const RunPoint p = simulate_fw(m, legend, nodes, n, b);
    const auto [kr, kc] = balanced_factors(nodes);
    char grid[48];
    std::snprintf(grid, sizeof(grid), "%dx%d, 3x4", kr, kc);
    char when[32];
    if (p.seconds >= 3600)
      std::snprintf(when, sizeof(when), "%.1f h", p.seconds / 3600);
    else
      std::snprintf(when, sizeof(when), "%.0f s", p.seconds);
    t.add_row({std::to_string(nodes), grid,
               offload ? "offload (beyond GPU mem)" : "in-GPU (+async)", when,
               Table::num(p.pflops, 2), Table::num(100 * p.frac_peak, 0)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nGPU-memory feasibility: n <= %.0f on 64 nodes, n <= %.0f on "
              "256 nodes\n",
              max_in_gpu_vertices(m, 64), max_in_gpu_vertices(m, 256));
  return 0;
}
