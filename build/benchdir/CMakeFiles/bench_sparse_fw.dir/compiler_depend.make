# Empty compiler generated dependencies file for bench_sparse_fw.
# This may be replaced when dependencies are built.
