#include "causal/analysis.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

namespace parfw::causal {

namespace {

bool is(const char* name, const char* want) {
  return std::strcmp(name, want) == 0;
}

bool starts_with(const char* name, const char* prefix) {
  return std::strncmp(name, prefix, std::strlen(prefix)) == 0;
}

/// Preference when two predecessors carry the same timestamp: attribute
/// to real work over pure ordering.
int edge_preference(EdgeType t) {
  switch (t) {
    case EdgeType::kSpan: return 3;
    case EdgeType::kMessage: return 2;
    case EdgeType::kJoin: return 1;
    case EdgeType::kProgram: return 0;
  }
  return 0;
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute: return "compute";
    case Category::kComm: return "comm";
    case Category::kStall: return "stall";
    case Category::kRetransmit: return "retransmit";
    case Category::kCheckpoint: return "checkpoint";
    case Category::kIo: return "io";
  }
  return "?";
}

Category category_of(const sched::TraceEvent& e) {
  const char* n = e.name;
  // Serve-trace spans (qtrace.hpp): store IO is its own category; the
  // pred-walk and cache probe are compute; routing and the rank-0 gather
  // (plus its send/recv flow events) are comm.
  if (starts_with(n, "serve")) {
    if (is(n, "serveIO")) return Category::kIo;
    if (is(n, "serveRoute") || is(n, "serveGather") || is(n, "serveSend") ||
        is(n, "serveRecv"))
      return Category::kComm;
    return Category::kCompute;  // serveQuery, serveCache, serveWalk, instants
  }
  if (is(n, "Checkpoint")) return Category::kCheckpoint;
  if (is(n, "retry") || is(n, "drop") || is(n, "dup") || is(n, "delay") ||
      is(n, "dup_discard"))
    return Category::kRetransmit;
  if (is(n, "DiagUpdate") || starts_with(n, "PanelUpdate") ||
      starts_with(n, "Lookahead") || is(n, "OuterUpdate") ||
      is(n, "oogHost") || is(n, "comp"))
    return Category::kCompute;
  if (starts_with(n, "DiagBcast") || is(n, "RowPanelBcast") ||
      is(n, "ColPanelBcast") || is(n, "msg") || is(n, "send") ||
      is(n, "recv"))
    return Category::kComm;
  // Device-pipeline waits behave like communication with the device.
  if (is(n, "oogDev") || is(n, "oogWait")) return Category::kComm;
  return Category::kStall;
}

const char* phase_of(const sched::TraceEvent& e) {
  const char* n = e.name;
  if (starts_with(n, "serve")) {
    if (is(n, "serveRoute")) return "route";
    if (is(n, "serveCache")) return "cache";
    if (is(n, "serveIO")) return "io";
    if (is(n, "serveWalk")) return "walk";
    if (is(n, "serveGather") || is(n, "serveSend") || is(n, "serveRecv"))
      return "gather";
    return "query";  // serveQuery parent span, admit/bypass instants
  }
  if (starts_with(n, "Diag")) return "diag";
  if (starts_with(n, "PanelUpdate") || is(n, "RowPanelBcast") ||
      is(n, "ColPanelBcast"))
    return "panel";
  if (starts_with(n, "Lookahead") || is(n, "OuterUpdate") ||
      starts_with(n, "oog"))
    return "update";
  if (is(n, "Checkpoint")) return "checkpoint";
  return "other";
}

bool analyze(const Graph& g, const AnalysisOptions& opt, BlameReport* out,
             std::string* error) {
  *out = BlameReport{};
  out->slack.assign(g.events.size(), 0.0);
  if (g.events.empty()) return true;

  std::vector<int> order;
  if (!topo_order(g, &order)) {
    *error = "happens-before graph is cyclic (malformed or skewed trace)";
    return false;
  }
  out->span = g.t_max - g.t_min;

  // --- critical path: backward binding-predecessor walk ------------------
  // Start from the latest node (prefer an end node so the terminal op is
  // attributed, not just timed).
  int cur = 0;
  for (int v = 1; v < g.num_nodes(); ++v) {
    const double tv = g.node_time[static_cast<std::size_t>(v)];
    const double tc = g.node_time[static_cast<std::size_t>(cur)];
    if (tv > tc || (tv == tc && Graph::is_end(v) && !Graph::is_end(cur)))
      cur = v;
  }

  std::vector<PathSegment> path;
  double cursor = g.t_max;
  while (cursor > g.t_min) {
    const auto& pe = g.preds[static_cast<std::size_t>(cur)];
    if (pe.empty()) {
      // No cause recorded: the remaining head of the window is stall
      // before this node's event (trace startup, untraced dependency).
      PathSegment s;
      s.t_lo = g.t_min;
      s.t_hi = cursor;
      s.event = g.event_of(cur);
      s.rank = s.event >= 0
                   ? g.events[static_cast<std::size_t>(s.event)].rank
                   : -1;
      s.cat = Category::kStall;
      path.push_back(s);
      cursor = g.t_min;
      break;
    }
    int best = pe[0];
    for (std::size_t i = 1; i < pe.size(); ++i) {
      const Edge& a = g.edges[static_cast<std::size_t>(pe[i])];
      const Edge& b = g.edges[static_cast<std::size_t>(best)];
      const double ta = g.node_time[static_cast<std::size_t>(a.from)];
      const double tb = g.node_time[static_cast<std::size_t>(b.from)];
      if (ta > tb ||
          (ta == tb &&
           edge_preference(a.type) > edge_preference(b.type)))
        best = pe[i];
    }
    const Edge& e = g.edges[static_cast<std::size_t>(best)];
    const double t_from = g.node_time[static_cast<std::size_t>(e.from)];
    const double lo = std::max(g.t_min, std::min(cursor, t_from));
    if (cursor > lo) {
      PathSegment s;
      s.t_lo = lo;
      s.t_hi = cursor;
      const int ev = g.event_of(cur);
      s.event = ev;
      s.rank = ev >= 0 ? g.events[static_cast<std::size_t>(ev)].rank : -1;
      if (ev < 0) {
        s.cat = Category::kCheckpoint;  // waiting at a barrier join node
      } else if (!Graph::is_end(cur)) {
        s.cat = Category::kStall;  // waiting for this op to start
      } else {
        const sched::TraceEvent& tev = g.events[static_cast<std::size_t>(ev)];
        switch (e.type) {
          case EdgeType::kMessage:
            s.cat = tev.attempt > 0 ? Category::kRetransmit : Category::kComm;
            break;
          case EdgeType::kJoin: s.cat = Category::kCheckpoint; break;
          case EdgeType::kSpan:
          case EdgeType::kProgram: s.cat = category_of(tev); break;
        }
      }
      path.push_back(s);
    }
    cursor = std::min(cursor, lo);
    cur = e.from;
  }
  std::reverse(path.begin(), path.end());
  out->path = std::move(path);

  // --- aggregate the partition -------------------------------------------
  std::map<int, double> on_path;
  for (const PathSegment& s : out->path) {
    const double d = s.t_hi - s.t_lo;
    out->by_category[static_cast<std::size_t>(s.cat)] += d;
    if (s.rank >= 0)
      out->by_rank[s.rank][static_cast<std::size_t>(s.cat)] += d;
    const char* phase =
        s.event >= 0
            ? phase_of(g.events[static_cast<std::size_t>(s.event)])
            : "checkpoint";
    out->by_phase[phase][static_cast<std::size_t>(s.cat)] += d;
    if (s.event >= 0) on_path[s.event] += d;
  }

  // --- slack via weighted longest paths ----------------------------------
  // Edge weights: an op's own duration on its span edge, the transit time
  // on message edges, 0 on pure ordering edges. Every weight is bounded
  // by the time delta along its (time-monotone) edge, so no path exceeds
  // the span and slack is non-negative.
  auto weight = [&](const Edge& e) -> double {
    switch (e.type) {
      case EdgeType::kSpan:
      case EdgeType::kMessage:
        return std::max(0.0, g.node_time[static_cast<std::size_t>(e.to)] -
                                 g.node_time[static_cast<std::size_t>(e.from)]);
      case EdgeType::kProgram:
      case EdgeType::kJoin: return 0.0;
    }
    return 0.0;
  };
  std::vector<double> up(static_cast<std::size_t>(g.num_nodes()), 0.0);
  std::vector<double> down(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (int v : order)
    for (int ei : g.preds[static_cast<std::size_t>(v)]) {
      const Edge& e = g.edges[static_cast<std::size_t>(ei)];
      up[static_cast<std::size_t>(v)] =
          std::max(up[static_cast<std::size_t>(v)],
                   up[static_cast<std::size_t>(e.from)] + weight(e));
    }
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    for (int ei : g.succs[static_cast<std::size_t>(*it)]) {
      const Edge& e = g.edges[static_cast<std::size_t>(ei)];
      down[static_cast<std::size_t>(*it)] =
          std::max(down[static_cast<std::size_t>(*it)],
                   down[static_cast<std::size_t>(e.to)] + weight(e));
    }
  for (std::size_t ev = 0; ev < g.events.size(); ++ev) {
    const int b = Graph::begin_node(static_cast<int>(ev));
    const int en = Graph::end_node(static_cast<int>(ev));
    const double through = up[static_cast<std::size_t>(b)] +
                           (g.events[ev].t_end - g.events[ev].t_begin) +
                           down[static_cast<std::size_t>(en)];
    out->slack[ev] = std::max(0.0, out->span - through);
  }

  // --- straggler table -----------------------------------------------------
  std::vector<Straggler> top;
  top.reserve(on_path.size());
  for (const auto& [ev, secs] : on_path) {
    Straggler s;
    s.event = ev;
    s.on_path_seconds = secs;
    s.duration = g.events[static_cast<std::size_t>(ev)].t_end -
                 g.events[static_cast<std::size_t>(ev)].t_begin;
    top.push_back(s);
  }
  std::sort(top.begin(), top.end(), [](const Straggler& a, const Straggler& b) {
    return a.on_path_seconds > b.on_path_seconds;
  });
  if (static_cast<int>(top.size()) > opt.top_k)
    top.resize(static_cast<std::size_t>(opt.top_k));
  out->top = std::move(top);
  return true;
}

std::string format_report(const Graph& g, const BlameReport& r) {
  std::ostringstream os;
  os.precision(6);
  os << "critical path: " << r.span << " s over " << r.path.size()
     << " segments (" << g.events.size() << " events)\n\nblame by category:\n";
  for (int c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    os << "  " << category_name(cat) << ": " << r.category(cat) << " s ("
       << 100.0 * r.share(cat) << "%)\n";
  }
  os << "\nblame by rank (on-path seconds):\n";
  for (const auto& [rank, totals] : r.by_rank) {
    double sum = 0.0;
    for (double v : totals) sum += v;
    os << "  rank " << rank << ": " << sum << " s\n";
  }
  os << "\nblame by FW phase:\n";
  for (const auto& [phase, totals] : r.by_phase) {
    double sum = 0.0;
    for (double v : totals) sum += v;
    os << "  " << phase << ": " << sum << " s\n";
  }
  os << "\ntop blocking ops (on-path seconds / own duration / slack):\n";
  for (const Straggler& s : r.top) {
    const sched::TraceEvent& e = g.events[static_cast<std::size_t>(s.event)];
    os << "  " << e.name << " k=" << e.k << " rank=" << e.rank << ": "
       << s.on_path_seconds << " / " << s.duration << " / "
       << r.slack[static_cast<std::size_t>(s.event)] << "\n";
  }
  return os.str();
}

double structural_floor(const BlameReport& r) {
  return r.category(Category::kStall) + r.category(Category::kRetransmit) +
         r.category(Category::kCheckpoint);
}

double recost(const BlameReport& r, const WhatIf& w) {
  double total = 0.0;
  for (const PathSegment& s : r.path) {
    const double d = s.t_hi - s.t_lo;
    switch (s.cat) {
      case Category::kComm: total += d / w.comm_speedup; break;
      case Category::kCompute: total += d / w.compute_speedup; break;
      case Category::kIo: total += d / w.io_speedup; break;
      case Category::kStall:
      case Category::kRetransmit:
      case Category::kCheckpoint: total += d; break;
    }
  }
  return total;
}

void publish_blame(const BlameReport& r, telemetry::Registry& reg) {
  reg.gauge("cp.length").set(r.span);
  reg.gauge("cp.segments").set(static_cast<double>(r.path.size()));
  for (int c = 0; c < kNumCategories; ++c) {
    const auto cat = static_cast<Category>(c);
    const std::string labels = std::string("category=") + category_name(cat);
    reg.gauge("cp.share", labels).set(r.share(cat));
    reg.gauge("cp.seconds", labels).set(r.category(cat));
  }
}

void write_dot(const Graph& g, const BlameReport& r, std::ostream& os) {
  os << "digraph critical_path {\n  rankdir=LR;\n  node [shape=box];\n";
  int prev = -1;
  int id = 0;
  for (const PathSegment& s : r.path) {
    os << "  n" << id << " [label=\"";
    if (s.event >= 0) {
      const sched::TraceEvent& e = g.events[static_cast<std::size_t>(s.event)];
      os << e.name << "\\nk=" << e.k << " rank=" << e.rank;
    } else {
      os << "(origin)";
    }
    os << "\\n" << category_name(s.cat) << " " << (s.t_hi - s.t_lo)
       << "s\"];\n";
    if (prev >= 0) os << "  n" << prev << " -> n" << id << ";\n";
    prev = id;
    ++id;
  }
  os << "}\n";
}

}  // namespace parfw::causal
