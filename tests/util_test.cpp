// Unit tests for util: thread pool, aligned buffers, matrix views, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/aligned_buffer.hpp"
#include "util/check.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace parfw {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i)
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsExecutesInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  bool ran = false;
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(AlignedBuffer, SixtyFourByteAlignment) {
  for (std::size_t n : {1, 7, 64, 1000}) {
    AlignedBuffer<float> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    EXPECT_EQ(buf.size(), n);
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[3] = 42;
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b[3], 42);
  EXPECT_TRUE(a.empty());
}

TEST(Matrix, SubViewAddressesParentStorage) {
  Matrix<int> m(6, 8, 0);
  auto sub = m.sub(2, 3, 2, 2);
  sub(0, 0) = 7;
  sub(1, 1) = 9;
  EXPECT_EQ(m(2, 3), 7);
  EXPECT_EQ(m(3, 4), 9);
  EXPECT_EQ(sub.ld(), 8u);
}

TEST(Matrix, CopyFromRespectsLeadingDimension) {
  Matrix<int> src(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) src(i, j) = static_cast<int>(10 * i + j);
  Matrix<int> dst(8, 8, -1);
  dst.sub(2, 2, 4, 4).copy_from(src.view());
  EXPECT_EQ(dst(2, 2), 0);
  EXPECT_EQ(dst(5, 5), 33);
  EXPECT_EQ(dst(0, 0), -1);  // outside the target region untouched
}

TEST(Matrix, CloneIsDeep) {
  Matrix<float> a(3, 3, 1.0f);
  Matrix<float> b = a.clone();
  b(1, 1) = 99.0f;
  EXPECT_EQ(a(1, 1), 1.0f);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix<double> a(2, 2, 1.0);
  Matrix<double> b = a.clone();
  b(1, 0) = 4.5;
  EXPECT_DOUBLE_EQ(max_abs_diff<double>(a.view(), b.view()), 3.5);
}

TEST(Check, ThrowsCheckError) {
  EXPECT_THROW(PARFW_CHECK(1 == 2), check_error);
  EXPECT_NO_THROW(PARFW_CHECK(1 == 1));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a = Rng::split(1, 0);
  Rng b = Rng::split(1, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer_name", "2.5"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("longer_name"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), check_error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace parfw
