#include "serve/qtrace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace parfw::serve {

namespace {

constexpr const char* kStageNames[kNumStages] = {"route", "cache", "io",
                                                 "walk", "gather"};
constexpr const char* kStageSpanNames[kNumStages] = {
    "serveRoute", "serveCache", "serveIO", "serveWalk", "serveGather"};

bool is(const char* name, const char* want) {
  return std::strcmp(name, want) == 0;
}

/// Stage of a span name, or -1 when it is not a stage interval.
int stage_of_name(const char* name) {
  for (int s = 0; s < kNumStages; ++s)
    if (is(name, kStageSpanNames[s])) return s;
  return -1;
}

}  // namespace

const char* stage_name(Stage s) {
  return kStageNames[static_cast<std::size_t>(s)];
}
const char* stage_span_name(Stage s) {
  return kStageSpanNames[static_cast<std::size_t>(s)];
}

QueryTracer::QueryTracer(const Config& cfg)
    : cfg_(cfg), sink_(cfg.sink), metrics_(cfg.metrics) {
  if (metrics_ == nullptr) return;
  latency_ = &metrics_->histogram("serve.query.latency", cfg_.labels,
                                  kServeHistSub);
  queue_wait_ =
      &metrics_->histogram("serve.queue.wait", cfg_.labels, kServeHistSub);
  for (int s = 0; s < kNumStages; ++s) {
    const std::string name = std::string("serve.stage.") +
                             kStageNames[s] + ".latency";
    stage_hist_[static_cast<std::size_t>(s)] =
        &metrics_->histogram(name, cfg_.labels, kServeHistSub);
  }
}

void QueryTracer::begin_batch() {
  if (!active()) return;
  batch_begin_ = sched::now_seconds();
}

void QueryTracer::begin_query(std::int64_t qid) {
  if (!active()) return;
  const double t = sched::now_seconds();
  if (batch_begin_ >= 0.0 && queue_wait_ != nullptr)
    queue_wait_->observe(t - batch_begin_);
  in_query_ = true;
  qid_ = qid;
  q_begin_ = t;
  cur_ = Stage::kRoute;
  seg_begin_ = t;
  stage_seconds_.fill(0.0);
  pending_.clear();
}

Stage QueryTracer::switch_stage(Stage s) {
  const Stage prev = cur_;
  if (!active() || !in_query_ || s == cur_) {
    cur_ = s;
    return prev;
  }
  const double t = sched::now_seconds();
  close_segment(t);
  cur_ = s;
  seg_begin_ = t;
  return prev;
}

void QueryTracer::close_segment(double t) {
  const double d = t - seg_begin_;
  if (d <= 0.0) return;  // zero-length segments contribute nothing
  stage_seconds_[static_cast<std::size_t>(cur_)] += d;
  if (sink_ != nullptr) {
    sched::TraceEvent e;
    e.rank = cfg_.rank;
    e.name = stage_span_name(cur_);
    e.k = static_cast<std::uint32_t>(qid_);
    e.t_begin = seg_begin_;
    e.t_end = t;
    pending_.push_back(e);
  }
}

void QueryTracer::record_miss(const TileKey& key, double io_seconds,
                              std::uint64_t bytes) {
  if (!active()) return;
  TileMissCost& c = tile_costs_[key];
  ++c.fetches;
  c.io_seconds += io_seconds;
  c.bytes += bytes;
}

void QueryTracer::note_admission(bool admitted) {
  if (sink_ == nullptr || !in_query_) return;
  const double t = sched::now_seconds();
  sched::TraceEvent e;
  e.rank = cfg_.rank;
  e.name = admitted ? "serveAdmit" : "serveBypass";
  e.k = static_cast<std::uint32_t>(qid_);
  e.t_begin = t;
  e.t_end = t;  // instant
  pending_.push_back(e);
}

QueryStats QueryTracer::end_query(bool ok) {
  if (!active() || !in_query_) return {};
  const double t = sched::now_seconds();
  close_segment(t);
  in_query_ = false;

  QueryStats q;
  q.qid = qid_;
  q.t_begin = q_begin_;
  q.total = t - q_begin_;
  q.stage = stage_seconds_;
  q.ok = ok;

  if (sink_ != nullptr) {
    // Parent first: the causal nesting forest breaks same-t_begin ties by
    // record order, so the query span must precede its stage intervals.
    sched::TraceEvent parent;
    parent.rank = cfg_.rank;
    parent.name = "serveQuery";
    parent.k = static_cast<std::uint32_t>(qid_);
    parent.t_begin = q_begin_;
    parent.t_end = t;
    sink_->record(parent);
    for (const sched::TraceEvent& e : pending_) sink_->record(e);
  }
  pending_.clear();

  if (latency_ != nullptr) latency_->observe(q.total);
  if (metrics_ != nullptr) {
    // Every stage observes every query (zeros included) so the stage
    // histogram counts equal the query count and the sums reconcile with
    // serve.query.latency by construction.
    for (int s = 0; s < kNumStages - 1; ++s)  // kGather is batch-level
      stage_hist_[static_cast<std::size_t>(s)]->observe(
          q.stage[static_cast<std::size_t>(s)]);
  }
  return q;
}

void QueryTracer::record_gather(double t_begin, double t_end,
                                std::int64_t bytes) {
  if (!active()) return;
  if (sink_ != nullptr) {
    sched::TraceEvent e;
    e.rank = cfg_.rank;
    e.name = stage_span_name(Stage::kGather);
    e.t_begin = t_begin;
    e.t_end = t_end;
    e.bytes = bytes;
    sink_->record(e);
  }
  auto* h = stage_hist_[static_cast<std::size_t>(Stage::kGather)];
  if (h != nullptr) h->observe(t_end - t_begin);
}

void QueryTracer::emit_handoff(sched::EventKind ek, int peer,
                               std::int64_t bytes, double t_begin,
                               double t_end) {
  if (sink_ == nullptr) return;
  sched::TraceEvent e;
  e.rank = cfg_.rank;
  e.name = ek == sched::EventKind::kSend ? "serveSend" : "serveRecv";
  e.t_begin = t_begin;
  e.t_end = t_end;
  e.bytes = bytes;
  e.ek = ek;
  e.peer = peer;
  e.tag = kServeGatherTag;
  // One handoff per worker rank: the producer's rank is the sequence
  // number, so send/recv join uniquely on (ctx, src, dst, tag, seq).
  e.seq = static_cast<std::uint64_t>(
      ek == sched::EventKind::kSend ? cfg_.rank : peer);
  e.ctx = kServeChannelCtx;
  sink_->record(e);
}

void QueryTracer::publish_tile_costs() {
  if (metrics_ == nullptr) return;
  for (const auto& [key, cost] : tile_costs_) {
    std::ostringstream labels;
    if (!cfg_.labels.empty()) labels << cfg_.labels << ',';
    labels << "kind=" << (key.kind == TileKind::kValue ? "value" : "pred")
           << ",row=" << key.block_row << ",col=" << key.block_col;
    const std::string l = labels.str();
    metrics_->gauge("serve.tile.miss.fetches", l)
        .set(static_cast<double>(cost.fetches));
    metrics_->gauge("serve.tile.miss.seconds", l).set(cost.io_seconds);
    metrics_->gauge("serve.tile.miss.bytes", l)
        .set(static_cast<double>(cost.bytes));
  }
}

// --- trace aggregation -------------------------------------------------------

ServeTraceReport analyze_serve_trace(
    const std::vector<sched::TraceEvent>& events, double tolerance) {
  ServeTraceReport r;

  // Reassemble: (rank, qid) -> parent span + stage intervals.
  struct Tree {
    const sched::TraceEvent* parent = nullptr;
    std::vector<const sched::TraceEvent*> stages;
  };
  std::map<std::pair<int, std::uint32_t>, Tree> trees;
  for (const sched::TraceEvent& e : events) {
    if (is(e.name, "serveQuery")) {
      trees[{e.rank, e.k}].parent = &e;
    } else if (is(e.name, stage_span_name(Stage::kGather))) {
      r.gather_seconds += e.t_end - e.t_begin;
    } else if (stage_of_name(e.name) >= 0) {
      trees[{e.rank, e.k}].stages.push_back(&e);
    }
  }

  for (auto& [id, tree] : trees) {
    if (tree.parent == nullptr) {
      r.error = "stage intervals without a serveQuery parent (rank " +
                std::to_string(id.first) + ", qid " +
                std::to_string(id.second) + ")";
      return r;
    }
    ServeQueryBreakdown q;
    q.rank = id.first;
    q.qid = id.second;
    q.t_begin = tree.parent->t_begin;
    q.total = tree.parent->t_end - tree.parent->t_begin;

    std::sort(tree.stages.begin(), tree.stages.end(),
              [](const sched::TraceEvent* a, const sched::TraceEvent* b) {
                return a->t_begin < b->t_begin;
              });
    double covered = 0.0;
    double cursor = tree.parent->t_begin;
    for (const sched::TraceEvent* s : tree.stages) {
      const int st = stage_of_name(s->name);
      q.stage[static_cast<std::size_t>(st)] += s->t_end - s->t_begin;
      covered += s->t_end - s->t_begin;
      // Gap (positive) or overlap (negative) against the running cursor;
      // both break the tiling invariant.
      q.max_gap = std::max(q.max_gap, std::abs(s->t_begin - cursor));
      cursor = s->t_end;
    }
    q.max_gap = std::max(q.max_gap, std::abs(tree.parent->t_end - cursor));
    q.coverage = q.total > 0.0 ? covered / q.total : 1.0;
    r.queries.push_back(q);
  }

  r.num_queries = static_cast<int>(r.queries.size());
  if (r.num_queries == 0) {
    r.error = "no serve query spans in trace";
    return r;
  }

  std::vector<double> totals;
  totals.reserve(r.queries.size());
  r.min_coverage = 1e300;
  for (const ServeQueryBreakdown& q : r.queries) {
    totals.push_back(q.total);
    r.total_seconds += q.total;
    for (int s = 0; s < kNumStages; ++s)
      r.stage_seconds[static_cast<std::size_t>(s)] +=
          q.stage[static_cast<std::size_t>(s)];
    r.min_coverage = std::min(r.min_coverage, q.coverage);
    r.max_gap = std::max(r.max_gap, q.max_gap);
  }
  r.stage_seconds[static_cast<std::size_t>(Stage::kGather)] +=
      r.gather_seconds;

  std::sort(totals.begin(), totals.end());
  auto quant = [&](double p) {
    auto i = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(totals.size())));
    if (i > 0) --i;
    return totals[std::min(i, totals.size() - 1)];
  };
  r.p50 = quant(0.50);
  r.p99 = quant(0.99);

  const double wall = r.total_seconds + r.gather_seconds;
  if (wall > 0.0)
    for (int s = 0; s < kNumStages; ++s)
      r.stage_share[static_cast<std::size_t>(s)] =
          r.stage_seconds[static_cast<std::size_t>(s)] / wall;

  // Tail attribution: mean per-query stage shares among queries at or
  // above p99 (kGather excluded — it is batch-level, not per-query).
  int tail_n = 0;
  for (const ServeQueryBreakdown& q : r.queries) {
    if (q.total < r.p99 || q.total <= 0.0) continue;
    ++tail_n;
    for (int s = 0; s < kNumStages - 1; ++s)
      r.tail_share[static_cast<std::size_t>(s)] +=
          q.stage[static_cast<std::size_t>(s)] / q.total;
  }
  if (tail_n > 0)
    for (int s = 0; s < kNumStages - 1; ++s)
      r.tail_share[static_cast<std::size_t>(s)] /= tail_n;

  std::sort(r.queries.begin(), r.queries.end(),
            [](const ServeQueryBreakdown& a, const ServeQueryBreakdown& b) {
              return a.total > b.total;
            });

  if (r.max_gap > tolerance) {
    r.error = "span tree not tiled: max gap/overlap " +
              std::to_string(r.max_gap) + " s exceeds tolerance " +
              std::to_string(tolerance) + " s";
    return r;
  }
  r.ok = true;
  return r;
}

std::string format_serve_report(const ServeTraceReport& r, int top_k) {
  std::ostringstream os;
  os << "serve trace: " << r.num_queries << " queries";
  if (!r.ok) {
    os << "\nERROR: " << r.error << "\n";
    return os.str();
  }
  os << ", p50 " << r.p50 * 1e6 << " us, p99 " << r.p99 * 1e6
     << " us, min coverage " << r.min_coverage << ", max gap "
     << r.max_gap * 1e9 << " ns\n";
  os << "\nstage split (share of wall time):\n";
  for (int s = 0; s < kNumStages; ++s) {
    os << "  " << kStageNames[s] << ": "
       << r.stage_seconds[static_cast<std::size_t>(s)] << " s ("
       << r.stage_share[static_cast<std::size_t>(s)] * 100.0 << "%)\n";
  }
  os << "\ntail attribution (mean stage share of queries >= p99):\n";
  for (int s = 0; s < kNumStages - 1; ++s) {
    os << "  " << kStageNames[s] << ": "
       << r.tail_share[static_cast<std::size_t>(s)] * 100.0 << "%\n";
  }
  os << "\nslowest queries (rank/qid: total | route cache io walk, us):\n";
  const int n = std::min<int>(top_k, static_cast<int>(r.queries.size()));
  for (int i = 0; i < n; ++i) {
    const ServeQueryBreakdown& q = r.queries[static_cast<std::size_t>(i)];
    os << "  " << q.rank << "/" << q.qid << ": " << q.total * 1e6 << " | ";
    for (int s = 0; s < kNumStages - 1; ++s)
      os << q.stage[static_cast<std::size_t>(s)] * 1e6
         << (s + 1 < kNumStages - 1 ? " " : "\n");
  }
  return os.str();
}

}  // namespace parfw::serve
