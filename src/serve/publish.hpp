// Publish an in-memory APSP result as a served tile manifest.
//
// The solver's checkpoint cuts fire only MID-run (k % every == 0, k > 0),
// so a finished solve leaves no loadable final state — serving needs an
// explicit publish. Distributed runs publish in situ (driver.hpp honours
// DistFwOptions::publish_store: every rank snapshots its final tiles with
// k0 = nb, then rank 0 commits). This header covers the other direction:
// take a full in-memory result — any ApspAlgorithm, or a gathered
// distributed run — shard it over a chosen serving grid, and write the
// same per-rank checkpoint-v2 blobs + commit record. Both paths produce
// stores that ServeManifest::open accepts interchangeably.
#pragma once

#include <cstdint>

#include "core/apsp.hpp"
#include "core/checkpoint_store.hpp"
#include "dist/checkpoint.hpp"
#include "sched/variant.hpp"
#include "util/matrix.hpp"

namespace parfw::serve {

/// Shard `dist` (and `pred`, when non-null) over a grid_rows x grid_cols
/// row-major serving grid with the given block size and publish the
/// result into `store` as a completed-run manifest (commit k0 = n / b).
template <typename T>
void publish_matrix(CheckpointStore& store, MatrixView<const T> distv,
                    const Matrix<std::int64_t>* pred, std::size_t block_size,
                    int grid_rows = 1, int grid_cols = 1,
                    sched::Variant variant = sched::Variant::kBaseline) {
  const std::size_t n = distv.rows();
  PARFW_CHECK_MSG(n == distv.cols(), "publish needs a square matrix");
  PARFW_CHECK_MSG(block_size > 0 && n % block_size == 0,
                  "n=" << n << " is not a multiple of the serving block size "
                       << block_size);
  PARFW_CHECK_MSG(grid_rows > 0 && grid_cols > 0, "bad serving grid");
  const dist::GridSpec grid = dist::GridSpec::row_major(grid_rows, grid_cols);
  dist::SchedulePosition pos;
  pos.variant = variant;
  pos.k0 = n / block_size;  // every pivot round done: a completed solve
  pos.sched_op_index = 0;
  for (int w = 0; w < grid.size(); ++w) {
    const dist::GridCoord c = grid.coord_of(w);
    dist::BlockCyclicMatrix<T> local(n, block_size, grid, c);
    local.load(distv);
    if (pred != nullptr) {
      dist::BlockCyclicMatrix<std::int64_t> plocal(n, block_size, grid, c);
      plocal.load(pred->view());
      dist::save_rank_checkpoint(store, local, pos, &plocal);
    } else {
      dist::save_rank_checkpoint(store, local, pos, nullptr);
    }
  }
  dist::CommitRecord rec;
  rec.k0 = pos.k0;
  rec.variant = static_cast<std::uint32_t>(variant);
  rec.world_size = static_cast<std::uint32_t>(grid.size());
  rec.n = n;
  rec.block_size = block_size;
  rec.sched_op_index = 0;
  dist::write_commit(store, rec);
}

/// Publish an ApspResult (pred payload included iff the solve tracked
/// paths).
template <typename T>
void publish_result(CheckpointStore& store, const ApspResult<T>& result,
                    std::size_t block_size, int grid_rows = 1,
                    int grid_cols = 1,
                    sched::Variant variant = sched::Variant::kBaseline) {
  publish_matrix<T>(store, result.dist.view(),
                    result.pred.has_value() ? &*result.pred : nullptr,
                    block_size, grid_rows, grid_cols, variant);
}

}  // namespace parfw::serve
