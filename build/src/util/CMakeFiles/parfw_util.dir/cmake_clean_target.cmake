file(REMOVE_RECURSE
  "libparfw_util.a"
)
