// CLI parser tests.
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace parfw {
namespace {

CliArgs parse(std::initializer_list<const char*> argv,
              std::vector<std::string> allowed) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(full.size()), full.data(), allowed);
}

TEST(Cli, SpaceSeparatedValues) {
  const auto a = parse({"--n", "100", "--p", "0.5"}, {"n", "p"});
  EXPECT_EQ(a.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(a.get_double("p", 0), 0.5);
}

TEST(Cli, EqualsSeparatedValues) {
  const auto a = parse({"--seed=42", "--name=x"}, {"seed", "name"});
  EXPECT_EQ(a.get_int("seed", 0), 42);
  EXPECT_EQ(a.get("name", ""), "x");
}

TEST(Cli, BooleanFlags) {
  const auto a = parse({"--verbose", "--n", "5"}, {"verbose", "n"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_FALSE(a.get_bool("missing"));
  EXPECT_EQ(a.get_int("n", 0), 5);
}

TEST(Cli, BooleanFlagFollowedByFlag) {
  const auto a = parse({"--paths", "--block", "32"}, {"paths", "block"});
  EXPECT_TRUE(a.get_bool("paths"));
  EXPECT_EQ(a.get_int("block", 0), 32);
}

TEST(Cli, Fallbacks) {
  const auto a = parse({}, {"x"});
  EXPECT_EQ(a.get("x", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
}

TEST(Cli, PositionalArguments) {
  const auto a = parse({"file1", "--n", "3", "file2"}, {"n"});
  EXPECT_EQ(a.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"n"}), check_error);
}

TEST(Cli, RepeatableFlagKeepsEveryOccurrence) {
  // The apsp tool's --query is documented as repeatable; every occurrence
  // must survive parsing, in command-line order.
  const auto a = parse({"--query", "0,5", "--query=3,7", "--query", "9,2"},
                       {"query"});
  EXPECT_EQ(a.get_all("query"),
            (std::vector<std::string>{"0,5", "3,7", "9,2"}));
  EXPECT_EQ(a.get("query", ""), "9,2") << "get() answers the last occurrence";
  EXPECT_TRUE(a.get_all("missing").empty());
}

TEST(Cli, RepeatedScalarFlagLastWins) {
  const auto a = parse({"--n", "10", "--n", "20"}, {"n"});
  EXPECT_EQ(a.get_int("n", 0), 20);
  EXPECT_EQ(a.get_all("n"), (std::vector<std::string>{"10", "20"}));
}

// Malformed numeric values must be rejected loudly (exit 2 with a clear
// message), never silently parsed as 0 — "--block 8O" (typo'd letter O)
// once dissolved into block_size=0 downstream.
using CliDeath = ::testing::Test;

TEST(CliDeath, MalformedIntExitsWithDiagnostic) {
  EXPECT_EXIT(parse({"--block", "8O"}, {"block"}).get_int("block", 0),
              ::testing::ExitedWithCode(2), "--block expects an integer");
  EXPECT_EXIT(parse({"--n", ""}, {"n"}).get_int("n", 0),
              ::testing::ExitedWithCode(2), "--n expects an integer");
  EXPECT_EXIT(parse({"--n", "12x"}, {"n"}).get_int("n", 0),
              ::testing::ExitedWithCode(2), "--n expects an integer");
  EXPECT_EXIT(
      parse({"--n", "999999999999999999999"}, {"n"}).get_int("n", 0),
      ::testing::ExitedWithCode(2), "--n expects an integer");
}

TEST(CliDeath, MalformedDoubleExitsWithDiagnostic) {
  EXPECT_EXIT(parse({"--p", "0.5oops"}, {"p"}).get_double("p", 0),
              ::testing::ExitedWithCode(2), "--p expects a number");
  EXPECT_EXIT(parse({"--p", "zero"}, {"p"}).get_double("p", 0),
              ::testing::ExitedWithCode(2), "--p expects a number");
}

TEST(Cli, WellFormedNumbersStillParse) {
  const auto a = parse({"--n", "-12", "--p", "1e-3"}, {"n", "p"});
  EXPECT_EQ(a.get_int("n", 0), -12);
  EXPECT_DOUBLE_EQ(a.get_double("p", 0), 1e-3);
}

}  // namespace
}  // namespace parfw
