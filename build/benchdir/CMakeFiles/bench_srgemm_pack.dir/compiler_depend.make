# Empty compiler generated dependencies file for bench_srgemm_pack.
# This may be replaced when dependencies are built.
