file(REMOVE_RECURSE
  "CMakeFiles/test_semiring.dir/semiring_test.cpp.o"
  "CMakeFiles/test_semiring.dir/semiring_test.cpp.o.d"
  "test_semiring"
  "test_semiring.pdb"
  "test_semiring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
