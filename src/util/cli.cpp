#include "util/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace parfw {

namespace {

/// A malformed numeric flag is an operator error, not a condition the
/// program can proceed from — before this check, "--block 48x" silently
/// parsed as 48 and "--p abc" as 0. Usage errors exit 2 (distinct from
/// exit 1, the runtime-failure code the tools map exceptions to).
[[noreturn]] void reject(const std::string& flag, const std::string& value,
                         const char* what) {
  std::fprintf(stderr, "error: --%s expects %s, got '%s'\n", flag.c_str(),
               what, value.c_str());
  std::exit(2);
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& allowed) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    PARFW_CHECK_MSG(std::find(allowed.begin(), allowed.end(), arg) !=
                        allowed.end(),
                    "unknown flag --" << arg);
    values_[arg].push_back(std::move(value));
  }
}

std::string CliArgs::get(const std::string& flag,
                         const std::string& fallback) const {
  auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second.back();
}

std::int64_t CliArgs::get_int(const std::string& flag,
                              std::int64_t fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second.back();
  char* end = nullptr;
  errno = 0;
  const std::int64_t out = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE)
    reject(flag, v, "an integer");
  return out;
}

double CliArgs::get_double(const std::string& flag, double fallback) const {
  auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second.back();
  char* end = nullptr;
  errno = 0;
  const double out = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE)
    reject(flag, v, "a number");
  return out;
}

std::vector<std::string> CliArgs::get_all(const std::string& flag) const {
  auto it = values_.find(flag);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

}  // namespace parfw
