// Semiring algebra underlying the Floyd-Warshall family (paper §2.3).
//
// APSP is matrix closure over the tropical (min,+) semiring:
//     x ⊕ y = min(x, y)         additive op, identity +∞
//     x ⊗ y = x + y             multiplicative op, identity 0
//
// Everything downstream (SRGEMM kernels, blocked FW, the distributed
// pipeline, the offload engine) is templated on a Semiring type, so the
// same machinery computes shortest paths (MinPlus), widest paths /
// bottleneck capacities (MaxMin), transitive closure (BoolOrAnd), and
// ordinary linear algebra (PlusTimes, used to cross-check the kernels
// against textbook GEMM).
//
// A Semiring S over value type S::value_type provides:
//   zero()  — ⊕-identity and ⊗-annihilator (the "no path" value)
//   one()   — ⊗-identity (the "empty path" value)
//   add(x,y), mul(x,y) — the two operators
//   less_add(x,y) — true iff add(x,y) == x strictly improves on y's slot;
//                   used by argmin-tracking kernels for path reconstruction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/simd.hpp"

namespace parfw {

/// Infinity handling: IEEE types use real infinity; integral types use a
/// large sentinel with saturating ⊗ so that INF + w does not wrap around.
template <typename T>
struct value_traits {
  static_assert(std::is_floating_point_v<T>,
                "specialise value_traits for non-IEEE types");
  static constexpr T infinity() { return std::numeric_limits<T>::infinity(); }
  /// Saturating add is a plain add for IEEE types (inf + x == inf).
  static constexpr T sat_add(T a, T b) { return a + b; }
  static constexpr bool is_inf(T x) {
    return x == std::numeric_limits<T>::infinity();
  }
};

template <>
struct value_traits<std::int32_t> {
  // Half of max so that sentinel + sentinel still compares as "infinite"
  // without signed overflow (UB).
  static constexpr std::int32_t infinity() {
    return std::numeric_limits<std::int32_t>::max() / 2;
  }
  static constexpr std::int32_t sat_add(std::int32_t a, std::int32_t b) {
    // "No path" is absorbing even with negative weights: inf + w == inf.
    if (is_inf(a) || is_inf(b)) return infinity();
    const std::int64_t s = std::int64_t{a} + std::int64_t{b};
    return s >= infinity() ? infinity() : static_cast<std::int32_t>(s);
  }
  static constexpr bool is_inf(std::int32_t x) { return x >= infinity(); }
};

template <>
struct value_traits<std::int64_t> {
  static constexpr std::int64_t infinity() {
    return std::numeric_limits<std::int64_t>::max() / 2;
  }
  static constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b) {
    if (is_inf(a) || is_inf(b)) return infinity();
    // Both operands are now below infinity(); the sum cannot overflow.
    const std::int64_t s = a + b;
    return s >= infinity() ? infinity() : s;
  }
  static constexpr bool is_inf(std::int64_t x) { return x >= infinity(); }
};

/// Tropical (min, +) semiring — shortest paths. The paper's semiring.
template <typename T>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() { return value_traits<T>::infinity(); }
  static constexpr T one() { return T{0}; }
  static constexpr T add(T x, T y) { return x < y ? x : y; }
  static constexpr T mul(T x, T y) { return value_traits<T>::sat_add(x, y); }
  /// x strictly better than y in the ⊕ order.
  static constexpr bool less_add(T x, T y) { return x < y; }
};

/// (max, min) semiring — widest path / bottleneck capacity.
template <typename T>
struct MaxMin {
  using value_type = T;
  static constexpr T zero() { return T{0}; }  // no path: zero capacity
  static constexpr T one() { return value_traits<T>::infinity(); }
  static constexpr T add(T x, T y) { return x > y ? x : y; }
  static constexpr T mul(T x, T y) { return x < y ? x : y; }
  static constexpr bool less_add(T x, T y) { return x > y; }
};

/// Boolean (or, and) semiring — transitive closure / reachability.
struct BoolOrAnd {
  using value_type = std::uint8_t;
  static constexpr std::uint8_t zero() { return 0; }
  static constexpr std::uint8_t one() { return 1; }
  static constexpr std::uint8_t add(std::uint8_t x, std::uint8_t y) {
    return x | y;
  }
  static constexpr std::uint8_t mul(std::uint8_t x, std::uint8_t y) {
    return x & y;
  }
  static constexpr bool less_add(std::uint8_t x, std::uint8_t y) {
    return x > y;  // 1 "improves" 0
  }
};

/// Ordinary (+, ×) — lets the SRGEMM kernels be validated against classical
/// GEMM identities in the tests.
template <typename T>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() { return T{0}; }
  static constexpr T one() { return T{1}; }
  static constexpr T add(T x, T y) { return x + y; }
  static constexpr T mul(T x, T y) { return x * y; }
  static constexpr bool less_add(T, T) { return false; }
};

// ---------------------------------------------------------------------------
// SIMD traits — the lane-wise forms of ⊕ and ⊗ for the vectorized SRGEMM
// micro-kernels (the CPU analogue of the paper's per-semiring CUTLASS
// operator specializations in cuASR). A semiring is SIMD-capable when both
// operators have a branch-free vector form; the primary template says "no"
// so exotic semirings silently fall back to the scalar kernels.
//
// The ops take and return simd::Vec<value_type, W> for any width W, so one
// micro-kernel template serves every vector ISA (and the scalar fallback).
// ---------------------------------------------------------------------------

template <typename S>
struct simd_ops {
  static constexpr bool available = false;
};

/// MinPlus over IEEE types: ⊕ = min, ⊗ = plain add (inf + x == inf holds
/// natively, so no sentinel handling is needed).
template <typename T>
  requires std::is_floating_point_v<T>
struct simd_ops<MinPlus<T>> {
  static constexpr bool available = true;
  template <std::size_t W>
  static simd::Vec<T, W> vadd(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vmin(x, y);
  }
  template <std::size_t W>
  static simd::Vec<T, W> vmul(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vadd(x, y);
  }
  template <std::size_t W>
  static simd::Vec<simd::mask_t<T>, W> vimproves(simd::Vec<T, W> cand,
                                                 simd::Vec<T, W> best) {
    return simd::vcmp_lt(cand, best);  // less_add: x < y
  }
};

/// MinPlus over integral types: ⊕ = min, ⊗ = saturating add against the
/// "no path" sentinel (vsat_add clamps both inputs to the sentinel first,
/// so the lane sum cannot overflow — the vector form of sat_add above).
template <typename T>
  requires std::is_integral_v<T>
struct simd_ops<MinPlus<T>> {
  static constexpr bool available = true;
  template <std::size_t W>
  static simd::Vec<T, W> vadd(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vmin(x, y);
  }
  template <std::size_t W>
  static simd::Vec<T, W> vmul(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vsat_add(
        x, y, simd::broadcast<T, W>(value_traits<T>::infinity()));
  }
  template <std::size_t W>
  static simd::Vec<simd::mask_t<T>, W> vimproves(simd::Vec<T, W> cand,
                                                 simd::Vec<T, W> best) {
    return simd::vcmp_lt(cand, best);
  }
};

/// MaxMin: ⊕ = max, ⊗ = min — both are single instructions everywhere.
template <typename T>
struct simd_ops<MaxMin<T>> {
  static constexpr bool available = true;
  template <std::size_t W>
  static simd::Vec<T, W> vadd(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vmax(x, y);
  }
  template <std::size_t W>
  static simd::Vec<T, W> vmul(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vmin(x, y);
  }
  template <std::size_t W>
  static simd::Vec<simd::mask_t<T>, W> vimproves(simd::Vec<T, W> cand,
                                                 simd::Vec<T, W> best) {
    return simd::vcmp_gt(cand, best);  // less_add: x > y
  }
};

/// BoolOrAnd: ⊕ = bitwise or, ⊗ = bitwise and (values are 0/1 bytes, so
/// the bitwise forms coincide with the logical ones, 64 lanes per AVX-512
/// vector).
template <>
struct simd_ops<BoolOrAnd> {
  static constexpr bool available = true;
  using T = std::uint8_t;
  template <std::size_t W>
  static simd::Vec<T, W> vadd(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vor(x, y);
  }
  template <std::size_t W>
  static simd::Vec<T, W> vmul(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vand(x, y);
  }
  template <std::size_t W>
  static simd::Vec<simd::mask_t<T>, W> vimproves(simd::Vec<T, W> cand,
                                                 simd::Vec<T, W> best) {
    return simd::vcmp_gt(cand, best);  // 1 "improves" 0
  }
};

/// PlusTimes: ordinary GEMM lanes. ⊕ reassociates under vectorization, so
/// floating-point results may differ from the scalar oracle in the last
/// ulp — exact for the integral instantiations the tests cross-check.
template <typename T>
struct simd_ops<PlusTimes<T>> {
  static constexpr bool available = true;
  template <std::size_t W>
  static simd::Vec<T, W> vadd(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vadd(x, y);
  }
  template <std::size_t W>
  static simd::Vec<T, W> vmul(simd::Vec<T, W> x, simd::Vec<T, W> y) {
    return simd::vmul(x, y);
  }
  template <std::size_t W>
  static simd::Vec<simd::mask_t<T>, W> vimproves(simd::Vec<T, W>,
                                                 simd::Vec<T, W>) {
    return simd::broadcast<simd::mask_t<T>, W>(0);  // less_add: never
  }
};

/// True if the semiring's ⊕ is idempotent (x ⊕ x == x). Idempotence is what
/// makes in-place blocked FW correct and makes repeating an update harmless —
/// the property the asynchronous pipeline relies on.
template <typename S>
constexpr bool is_idempotent() {
  using T = typename S::value_type;
  const T a = S::one();
  return S::add(a, a) == a;
}

}  // namespace parfw
