// Convenience driver: spin up the in-process runtime, distribute a
// matrix, run a ParallelFw variant, gather the result, and report traffic
// statistics. This is the entry point the tests, benches and the
// distributed example use.
//
// Supervision (DESIGN.md "Resilience"): any RankFailure — an injected
// crash, an exhausted retry budget, or a peer observed dying — tears the
// whole world down (Runtime::run joins all threads, then rethrows). The
// loop here restarts the run: from the last committed checkpoint cut when
// the options carry a CheckpointStore, from scratch otherwise. Injected
// one-shot crashes are disarmed on restart; message faults stay active
// (the environment is still flaky after a restart). Under the idempotent
// min-plus ⊕, the replayed suffix reproduces the uninterrupted run's
// result bit-identically — the crash-restart property tests pin it down.
#pragma once

#include <cstdint>
#include <optional>

#include "core/apsp.hpp"
#include "dist/checkpoint.hpp"
#include "dist/parallel_fw.hpp"
#include "graph/graph.hpp"
#include "mpisim/runtime.hpp"
#include "util/timer.hpp"

namespace parfw::dist {

template <typename T>
struct DistRunResult {
  Matrix<T> dist;             ///< gathered closed matrix (at the caller)
  Matrix<std::int64_t> pred;  ///< gathered predecessors (paths runs only)
  /// Whole-run communication statistics: every supervised attempt merged,
  /// crashed ones included, so checkpoint/retry work is never hidden.
  mpi::TrafficStats traffic;
  double seconds = 0.0;       ///< wall time of the parallel section
  int restarts = 0;           ///< supervision-loop world restarts
};

namespace detail {

/// Supervised execution shared by every driver entry point. `fill` is
/// called (with the rank's layout and world) to produce the INITIAL local
/// tiles of a fresh run; restarts load the committed checkpoint instead.
/// With track_paths the payload-generic interpreter carries a predecessor
/// matrix through the SAME supervision loop: fresh attempts initialise it
/// from the filled distances, restarts restore it from the committed
/// blob's pred payload — so crash + resume reproduces the uninterrupted
/// paths run bit-identically, pred matrix included.
template <typename S, typename Fill>
DistRunResult<typename S::value_type> supervised_run(
    std::size_t n, const Fill& fill, const GridSpec& grid, int ranks_per_node,
    const DistFwOptions& opt, bool track_paths = false) {
  using T = typename S::value_type;
  DistRunResult<T> result;

  // run_opt is this attempt's view of the options: the interpreter reads
  // the crash coordinate from it, so restarts disarm it here (and in the
  // runtime's copy below).
  DistFwOptions run_opt = opt;

  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);
  ropt.trace = opt.trace;
  ropt.faults = opt.faults;
  ropt.max_retries = opt.resilience.max_retries;
  ropt.send_timeout = opt.resilience.send_timeout;
  mpi::TrafficStats attempt;
  ropt.stats_out = &attempt;  // survives the throw on a crashed attempt

  CheckpointStore* store = opt.resilience.store;
  Timer timer;
  for (;;) {
    // Restart from a checkpoint only if a cut was committed by a PREVIOUS
    // attempt of this run (the caller is responsible for handing a fresh
    // store per logical run).
    std::uint64_t resume_k = 0;
    bool resume = false;
    if (result.restarts > 0 && store != nullptr) {
      if (auto commit = read_commit(*store)) {
        PARFW_CHECK_MSG(commit->n == n &&
                            commit->block_size == opt.block_size &&
                            commit->world_size ==
                                static_cast<std::uint32_t>(grid.size()),
                        "committed checkpoint does not match this run");
        resume = true;
        resume_k = commit->k0;
      }
    }
    try {
      mpi::Runtime::run(
          grid.size(),
          [&](mpi::Comm& world) {
            BlockCyclicMatrix<T> local(n, opt.block_size, grid,
                                       grid.coord_of(world.rank()));
            std::optional<BlockCyclicMatrix<std::int64_t>> plocal;
            if (track_paths)
              plocal.emplace(n, opt.block_size, grid,
                             grid.coord_of(world.rank()));
            BlockCyclicMatrix<std::int64_t>* pp =
                track_paths ? &*plocal : nullptr;
            if (resume) {
              load_rank_checkpoint<T>(*store, resume_k, local, pp);
            } else {
              fill(local, world);
              if (track_paths) init_predecessors_dist<S>(local, *plocal);
            }
            world.barrier();
            parallel_fw_resume<S>(world, local, pp,
                                  static_cast<std::size_t>(resume_k), run_opt);
            world.barrier();
            if (opt.publish_store != nullptr) {
              // Publish the finished run for the serving tier: final tiles
              // under k0 = nb (all pivot rounds done), committed by rank 0
              // only after every rank's blob is in the store — the same
              // commit discipline as a checkpoint cut.
              SchedulePosition pos;
              pos.variant = opt.variant;
              pos.k0 = local.num_blocks();
              pos.sched_op_index = 0;
              save_rank_checkpoint<T>(*opt.publish_store, local, pos, pp);
              world.barrier();
              if (world.rank() == 0) {
                CommitRecord rec;
                rec.k0 = pos.k0;
                rec.variant = static_cast<std::uint32_t>(opt.variant);
                rec.world_size = static_cast<std::uint32_t>(world.size());
                rec.n = n;
                rec.block_size = opt.block_size;
                rec.sched_op_index = 0;
                write_commit(*opt.publish_store, rec);
              }
            }
            Matrix<T> gathered = local.gather(world);
            Matrix<std::int64_t> pgathered;
            if (track_paths) pgathered = plocal->gather(world);
            if (world.rank() == 0) {
              result.dist = std::move(gathered);
              if (track_paths) result.pred = std::move(pgathered);
            }
          },
          ropt);
      result.traffic.merge(attempt);
      break;
    } catch (const mpi::RankFailure&) {
      result.traffic.merge(attempt);  // crashed attempt's work stays visible
      attempt = {};
      PARFW_CHECK_MSG(result.restarts < opt.resilience.max_restarts,
                      "giving up after " << result.restarts
                                         << " world restarts");
      ++result.restarts;
      // Injected crashes are one-shot: disarm both the interpreter's and
      // the runtime's copy; message faults stay armed.
      run_opt.faults.crash_rank = -1;
      run_opt.faults.crash_at_op = -1;
      ropt.faults.crash_rank = -1;
      ropt.faults.crash_at_op = -1;
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace detail

/// Run one distributed APSP end to end on a deterministically-generated
/// matrix. `ranks_per_node` controls the NIC accounting (paper §3.4.1);
/// use grid.qr()*grid.qc() for placements built with GridSpec::tiled.
template <typename S>
DistRunResult<typename S::value_type> run_parallel_fw(
    std::size_t n, const DenseEntryGen<typename S::value_type>& gen,
    const GridSpec& grid, int ranks_per_node, const DistFwOptions& opt = {},
    bool track_paths = false) {
  using T = typename S::value_type;
  return detail::supervised_run<S>(
      n,
      [&gen](BlockCyclicMatrix<T>& local, mpi::Comm&) { local.fill(gen); },
      grid, ranks_per_node, opt, track_paths);
}

/// Graph front door: solve APSP for `g` distributed, returning the same
/// ApspResult the core apsp() returns — this is what parfw::solve
/// (dist/solve.hpp) dispatches to for ApspAlgorithm::kDistributed.
/// Requires g.num_vertices() % opt.block_size == 0 (block-cyclic layout).
/// track_paths runs the SAME payload-generic interpreter under the SAME
/// supervision loop — every variant, placement, checkpoint cut and crash
/// injection applies to paths runs exactly as to value runs.
template <typename S>
ApspResult<typename S::value_type> run_parallel_fw(
    const Graph& g, const GridSpec& grid, int ranks_per_node,
    const DistFwOptions& opt = {}, bool track_paths = false) {
  using T = typename S::value_type;
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Matrix<T> full = g.distance_matrix<S>();
  ApspResult<T> out;

  auto res = detail::supervised_run<S>(
      n,
      [&full](BlockCyclicMatrix<T>& local, mpi::Comm&) {
        local.load(full.view());
      },
      grid, ranks_per_node, opt, track_paths);
  out.dist = std::move(res.dist);
  if (track_paths) out.pred = std::move(res.pred);
  return out;
}

}  // namespace parfw::dist
