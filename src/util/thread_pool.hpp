// A fixed-size work-stealing-free thread pool with a shared queue.
//
// Used as the execution engine behind the CPU SRGEMM kernels, the simulated
// accelerator worker, and the mpisim rank threads' helpers. The pool is
// deliberately simple: tasks are type-erased std::function<void()> pushed to
// a mutex-protected deque. For the kernel sizes this library runs (tiles of
// >= 64x64), enqueue overhead is negligible relative to task cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace parfw {

/// Fixed-size thread pool. Threads are created in the constructor and
/// joined in the destructor (RAII); submit() is thread-safe.
class ThreadPool {
 public:
  /// Create a pool with `n_threads` workers. n_threads == 0 creates a pool
  /// that executes submitted tasks inline on the caller's thread, which is
  /// useful for deterministic unit tests.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means inline execution).
  std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    if (threads_.empty()) {
      (*task)();
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Work is divided into contiguous chunks, one per worker, which matches
  /// the row-panel decomposition the SRGEMM driver uses.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// A process-wide default pool sized to the hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace parfw
