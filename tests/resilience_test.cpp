// Resilience subsystem tests (DESIGN.md "Resilience"): CheckpointStore
// round-trips, checkpoint v1/v2 format compatibility, crash-restart
// bit-identity for every ParallelFw variant on both placements, retry
// completion under seeded message drops, and the parfw::solve front door.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "core/floyd_warshall.hpp"
#include "dist/checkpoint.hpp"
#include "dist/driver.hpp"
#include "dist/solve.hpp"
#include "graph/generators.hpp"
#include "sched/trace.hpp"

namespace parfw {
namespace {

using S = MinPlus<float>;

// --- CheckpointStore ----------------------------------------------------------

TEST(CheckpointStore, MemoryRoundTrip) {
  MemoryCheckpointStore store;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255, 0, 42};
  store.put("alpha", blob);
  store.put("beta", std::vector<std::uint8_t>{9});

  const auto got = store.get("alpha");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, blob);
  EXPECT_FALSE(store.get("missing").has_value());

  EXPECT_EQ(store.keys(), (std::vector<std::string>{"alpha", "beta"}));
  store.erase("alpha");
  EXPECT_FALSE(store.get("alpha").has_value());
  EXPECT_EQ(store.keys(), (std::vector<std::string>{"beta"}));

  // Overwrite replaces, not appends.
  store.put("beta", blob);
  EXPECT_EQ(*store.get("beta"), blob);
}

TEST(CheckpointStore, FileRoundTripAndPersistence) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "parfw_resilience_store_test";
  std::filesystem::remove_all(dir);
  {
    FileCheckpointStore store(dir);
    store.put("ckpt-k2-rank-0", std::vector<std::uint8_t>{7, 7, 7});
    store.put("commit", std::vector<std::uint8_t>{1});
    EXPECT_EQ(store.keys(),
              (std::vector<std::string>{"ckpt-k2-rank-0", "commit"}));
  }
  {
    // A fresh instance over the same directory sees the previous blobs —
    // this is the restart-after-process-death story.
    FileCheckpointStore store(dir);
    const auto got = store.get("ckpt-k2-rank-0");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, (std::vector<std::uint8_t>{7, 7, 7}));
    store.erase("commit");
    EXPECT_FALSE(store.get("commit").has_value());
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, FileStoreRejectsPathTraversalKeys) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "parfw_resilience_store_keys";
  std::filesystem::remove_all(dir);
  FileCheckpointStore store(dir);
  EXPECT_THROW(store.put("../escape", std::vector<std::uint8_t>{1}),
               std::exception);
  EXPECT_THROW(store.put("a/b", std::vector<std::uint8_t>{1}), std::exception);
  std::filesystem::remove_all(dir);
}

// --- Checkpoint format: v1 compatibility, v2 round trip -------------------------

TEST(CheckpointFormat, V1StreamsStillLoad) {
  // Hand-assemble a version-1 checkpoint (the pre-resilience 40-byte
  // header followed immediately by row-major payload) and load it.
  const std::size_t n = 4, next_block = 1, b = 2;
  Matrix<float> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = static_cast<float>(i * n + j);

  CheckpointHeader h;
  h.version = 1;
  h.elem_size = sizeof(float);
  h.n = n;
  h.next_block = next_block;
  h.block_size = b;
  std::ostringstream os(std::ios::binary);
  os.write(reinterpret_cast<const char*>(&h), sizeof h);
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(n * n * sizeof(float)));

  std::istringstream is(os.str(), std::ios::binary);
  const auto loaded = load_checkpoint<float>(is);
  EXPECT_EQ(loaded.next_block, next_block);
  EXPECT_EQ(loaded.block_size, b);
  EXPECT_EQ(loaded.ext.tile_count, 0u);  // v1 carries no extension
  EXPECT_EQ(max_abs_diff<float>(m.view(), loaded.dist.view()), 0.0);
}

TEST(CheckpointFormat, V2RoundTripThroughStore) {
  const std::size_t n = 6, b = 3;
  Matrix<double> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = 0.5 * static_cast<double>(i) - static_cast<double>(j);

  MemoryCheckpointStore store;
  const std::size_t bytes = save_checkpoint<double>(
      store, "snap", MatrixView<const double>(m.view()), /*next_block=*/2, b);
  EXPECT_GT(bytes, n * n * sizeof(double));  // header + payload

  const auto loaded = load_checkpoint<double>(store, "snap");
  EXPECT_EQ(loaded.next_block, 2u);
  EXPECT_EQ(loaded.block_size, b);
  EXPECT_EQ(max_abs_diff<double>(m.view(), loaded.dist.view()), 0.0);
}

TEST(CheckpointFormat, PredPayloadRoundTripAndValueOnlyCompat) {
  // Per-rank blobs carry the pred tiles after the value payload, keyed by
  // the repurposed (formerly always-zero) reserved word — so old blobs
  // read as "values only" and a values reader can skip a pred payload.
  const std::size_t n = 24, b = 4;
  const auto grid = dist::GridSpec::row_major(2, 2);
  DenseEntryGen<float> gen(303, 0.8, 1.0f, 50.0f, /*integral=*/true);

  for (int w = 0; w < grid.size(); ++w) {
    const auto me = grid.coord_of(w);
    dist::BlockCyclicMatrix<float> a(n, b, grid, me);
    dist::BlockCyclicMatrix<std::int64_t> p(n, b, grid, me);
    a.fill(gen);
    dist::init_predecessors_dist<S>(a, p);

    MemoryCheckpointStore store;
    dist::SchedulePosition pos;
    pos.k0 = 3;
    pos.sched_op_index = 17;
    dist::save_rank_checkpoint<float>(store, a, pos, &p);

    // Paths round trip: both payloads restored bit-identically.
    dist::BlockCyclicMatrix<float> a2(n, b, grid, me);
    dist::BlockCyclicMatrix<std::int64_t> p2(n, b, grid, me);
    const auto got = dist::load_rank_checkpoint<float>(store, 3, a2, &p2);
    EXPECT_EQ(got.k0, 3u);
    EXPECT_EQ(got.sched_op_index, 17u);
    EXPECT_EQ(max_abs_diff<float>(a.local().view(), a2.local().view()), 0.0);
    std::size_t mism = 0;
    for (std::size_t i = 0; i < p.local().rows(); ++i)
      for (std::size_t j = 0; j < p.local().cols(); ++j)
        if (p.local()(i, j) != p2.local()(i, j)) ++mism;
    EXPECT_EQ(mism, 0u) << "rank " << w;

    // A values-only reader may consume a pred-carrying blob (trailing
    // payload unread)...
    dist::BlockCyclicMatrix<float> a3(n, b, grid, me);
    dist::load_rank_checkpoint<float>(store, 3, a3);
    EXPECT_EQ(max_abs_diff<float>(a.local().view(), a3.local().view()), 0.0);

    // ...but a paths resume from a values-only blob must be a hard error:
    // predecessors cannot be reconstructed from distances.
    MemoryCheckpointStore vstore;
    dist::save_rank_checkpoint<float>(vstore, a, pos);
    dist::BlockCyclicMatrix<float> a4(n, b, grid, me);
    dist::BlockCyclicMatrix<std::int64_t> p4(n, b, grid, me);
    EXPECT_THROW(dist::load_rank_checkpoint<float>(vstore, 3, a4, &p4),
                 std::exception);
  }
}

TEST(CheckpointFormat, CommitRecordRoundTrip) {
  MemoryCheckpointStore store;
  EXPECT_FALSE(dist::read_commit(store).has_value());

  dist::CommitRecord rec;
  rec.k0 = 4;
  rec.variant = 2;
  rec.world_size = 4;
  rec.n = 96;
  rec.block_size = 16;
  rec.sched_op_index = 123;
  dist::write_commit(store, rec);

  const auto got = dist::read_commit(store);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->k0, 4u);
  EXPECT_EQ(got->n, 96u);
  EXPECT_EQ(got->sched_op_index, 123u);

  // Corrupt blobs are rejected, not misread.
  store.put(dist::kCommitKey, std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_FALSE(dist::read_commit(store).has_value());
}

// --- Crash-restart property -----------------------------------------------------

Matrix<float> oracle(std::size_t n, const DenseEntryGen<float>& gen) {
  auto m = gen.full(static_cast<vertex_t>(n));
  floyd_warshall<S>(m.view());
  return m;
}

struct CrashCase {
  sched::Variant variant;
  bool tiled;
};

class CrashRestart : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRestart, BitIdenticalAfterRestartFromCheckpoint) {
  const CrashCase c = GetParam();
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(4242 + static_cast<std::uint64_t>(c.variant),
                           0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);

  const auto grid = c.tiled ? dist::GridSpec::tiled(1, 2, 2, 1)
                            : dist::GridSpec::row_major(2, 2);
  const int rpn = c.tiled ? grid.qr() * grid.qc() : 2;

  dist::DistFwOptions opt;
  opt.variant = c.variant;
  opt.block_size = b;
  if (c.variant == sched::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 16;
    opt.oog.num_streams = 2;
  }

  // Crash coordinate: 60% through the global schedule — past at least one
  // committed checkpoint cut (every 2 of 6 iterations) for every variant.
  sched::ScheduleParams sp;
  sp.variant = c.variant;
  sp.nb = n / b;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.checkpoint_every = 2;
  const auto schedule = sched::build_schedule(grid, sp);
  const auto crash_at =
      static_cast<std::int64_t>(schedule.steps.size() * 6 / 10);

  MemoryCheckpointStore store;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  opt.faults.seed = 99;  // crash injection alone; no message faults
  opt.faults.crash_rank = 1;
  opt.faults.crash_at_op = crash_at;

  const auto result = dist::run_parallel_fw<S>(n, gen, grid, rpn, opt);
  EXPECT_GE(result.restarts, 1) << "the injected crash must have fired";
  EXPECT_GT(result.traffic.checkpoints, 0u);
  EXPECT_GT(result.traffic.checkpoint_bytes, 0u);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0)
      << "variant=" << sched::variant_name(c.variant)
      << " tiled=" << c.tiled << " crash_at=" << crash_at;

  // The committed cut the restart consumed is still present and sane.
  const auto commit = dist::read_commit(store);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->n, n);
  EXPECT_EQ(commit->block_size, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, CrashRestart,
    ::testing::Values(CrashCase{sched::Variant::kBaseline, false},
                      CrashCase{sched::Variant::kPipelined, false},
                      CrashCase{sched::Variant::kAsync, false},
                      CrashCase{sched::Variant::kOffload, false},
                      CrashCase{sched::Variant::kBaseline, true},
                      CrashCase{sched::Variant::kPipelined, true},
                      CrashCase{sched::Variant::kAsync, true},
                      CrashCase{sched::Variant::kOffload, true}));

class CrashRestartPaths : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRestartPaths, PredMatrixBitIdenticalAfterRestart) {
  // Paths runs go through the SAME supervision loop: a crash past a
  // committed cut restores distances AND predecessors from the blob, and
  // the finished pred matrix must match the single-node blocked oracle
  // bit-for-bit — exactly as an uninterrupted paths run does.
  const CrashCase c = GetParam();
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(5242 + static_cast<std::uint64_t>(c.variant),
                           0.85, 1.0f, 90.0f, /*integral=*/true);
  auto exp_dist = gen.full(static_cast<vertex_t>(n));
  Matrix<std::int64_t> exp_pred(n, n);
  init_predecessors<S>(exp_dist.view(), exp_pred.view());
  blocked_floyd_warshall_paths<S>(exp_dist.view(), exp_pred.view(), b);

  const auto grid = c.tiled ? dist::GridSpec::tiled(1, 2, 2, 1)
                            : dist::GridSpec::row_major(2, 2);
  const int rpn = c.tiled ? grid.qr() * grid.qc() : 2;

  dist::DistFwOptions opt;
  opt.variant = c.variant;
  opt.block_size = b;
  if (c.variant == sched::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 16;
    opt.oog.num_streams = 2;
  }

  // The crash coordinate indexes the PATHS schedule (pred companion ops
  // included), so build it with pred_word_bytes set.
  sched::ScheduleParams sp;
  sp.variant = c.variant;
  sp.nb = n / b;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.pred_word_bytes = sizeof(std::int64_t);
  sp.checkpoint_every = 2;
  const auto schedule = sched::build_schedule(grid, sp);
  const auto crash_at =
      static_cast<std::int64_t>(schedule.steps.size() * 6 / 10);

  MemoryCheckpointStore store;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  opt.faults.seed = 99;
  opt.faults.crash_rank = 1;
  opt.faults.crash_at_op = crash_at;

  const auto result = dist::run_parallel_fw<S>(n, gen, grid, rpn, opt,
                                               /*track_paths=*/true);
  EXPECT_GE(result.restarts, 1) << "the injected crash must have fired";
  EXPECT_EQ(max_abs_diff<float>(exp_dist.view(), result.dist.view()), 0.0);
  ASSERT_EQ(result.pred.rows(), n);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (result.pred(i, j) != exp_pred(i, j)) ++mismatches;
  EXPECT_EQ(mismatches, 0u)
      << "variant=" << sched::variant_name(c.variant) << " tiled=" << c.tiled
      << " crash_at=" << crash_at;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, CrashRestartPaths,
    ::testing::Values(CrashCase{sched::Variant::kBaseline, false},
                      CrashCase{sched::Variant::kPipelined, false},
                      CrashCase{sched::Variant::kAsync, false},
                      CrashCase{sched::Variant::kOffload, false},
                      CrashCase{sched::Variant::kBaseline, true},
                      CrashCase{sched::Variant::kPipelined, true},
                      CrashCase{sched::Variant::kAsync, true},
                      CrashCase{sched::Variant::kOffload, true}));

TEST(CrashRestartSweep, BitIdenticalFromEveryCrashPoint) {
  // Sweep the crash op across the schedule: wherever the crash lands —
  // before the first cut, between cuts, mid-snapshot — the restart must
  // reproduce the uninterrupted answer bit-identically.
  const std::size_t n = 64, b = 16;
  DenseEntryGen<float> gen(777, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);
  const auto grid = dist::GridSpec::row_major(2, 2);

  sched::ScheduleParams sp;
  sp.variant = sched::Variant::kAsync;
  sp.nb = n / b;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.checkpoint_every = 1;
  const auto len =
      static_cast<std::int64_t>(sched::build_schedule(grid, sp).steps.size());

  for (std::int64_t frac = 1; frac <= 4; ++frac) {
    MemoryCheckpointStore store;
    dist::DistFwOptions opt;
    opt.variant = sched::Variant::kAsync;
    opt.block_size = b;
    opt.resilience.checkpoint_every = 1;
    opt.resilience.store = &store;
    opt.faults.seed = 5;
    opt.faults.crash_rank = static_cast<int>(frac % 4);
    opt.faults.crash_at_op = len * frac / 5;
    const auto result = dist::run_parallel_fw<S>(n, gen, grid, 2, opt);
    EXPECT_GE(result.restarts, 1) << "crash_at=" << opt.faults.crash_at_op;
    EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0)
        << "crash_at=" << opt.faults.crash_at_op;
  }
}

TEST(CrashRestart, NoStoreRestartsFromScratch) {
  // Without a store the supervision loop still recovers — by re-running
  // the whole solve from the original input.
  const std::size_t n = 64, b = 16;
  DenseEntryGen<float> gen(31, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);

  dist::DistFwOptions opt;
  opt.block_size = b;
  opt.faults.seed = 3;
  opt.faults.crash_rank = 2;
  opt.faults.crash_at_op = 20;
  const auto result = dist::run_parallel_fw<S>(
      n, gen, dist::GridSpec::row_major(2, 2), 2, opt);
  EXPECT_GE(result.restarts, 1);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0);
}

// --- Message-fault completion ----------------------------------------------------

TEST(MessageFaults, FivePercentDropRunCompletesWithinRetryBudget) {
  // ISSUE acceptance: a 5% seeded drop run completes within the retry
  // budget, with retries visible in both TrafficStats and the Chrome
  // trace.
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(2024, 0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);

  sched::ChromeTraceSink trace;
  dist::DistFwOptions opt;
  opt.variant = sched::Variant::kAsync;
  opt.block_size = b;
  opt.trace = &trace;
  opt.faults.seed = 1234;
  opt.faults.drop_prob = 0.05;
  opt.resilience.send_timeout = 0.002;  // fast retransmission for the test

  const auto result = dist::run_parallel_fw<S>(
      n, gen, dist::GridSpec::row_major(2, 2), 2, opt);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0);
  EXPECT_GT(result.traffic.drops_injected, 0u);
  EXPECT_GT(result.traffic.retries, 0u);
  EXPECT_GT(result.traffic.retry_bytes, 0u);
  EXPECT_EQ(result.restarts, 0) << "drops must be absorbed by retries";

  std::ostringstream os;
  trace.write(os);
  EXPECT_NE(os.str().find("\"retry\""), std::string::npos)
      << "retransmissions must appear as instants in the Chrome trace";
  EXPECT_NE(os.str().find("\"drop\""), std::string::npos);
}

TEST(MessageFaults, RetryBytesStayOutOfLogicalTotals) {
  // Logical accounting (messages, bytes_total) must be identical with and
  // without faults — that is what keeps the DES byte cross-validation
  // exact; retransmissions land in retry_bytes only.
  const std::size_t n = 64, b = 16;
  DenseEntryGen<float> gen(808, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const auto grid = dist::GridSpec::row_major(2, 2);

  dist::DistFwOptions clean;
  clean.block_size = b;
  const auto r0 = dist::run_parallel_fw<S>(n, gen, grid, 2, clean);

  dist::DistFwOptions faulty = clean;
  faulty.faults.seed = 17;
  faulty.faults.drop_prob = 0.05;
  faulty.faults.dup_prob = 0.05;
  faulty.faults.delay_prob = 0.1;
  faulty.faults.delay_seconds = 0.0005;
  faulty.resilience.send_timeout = 0.002;
  const auto r1 = dist::run_parallel_fw<S>(n, gen, grid, 2, faulty);

  EXPECT_EQ(r0.traffic.messages, r1.traffic.messages);
  EXPECT_EQ(r0.traffic.bytes_total, r1.traffic.bytes_total);
  EXPECT_EQ(r0.traffic.nic_bytes, r1.traffic.nic_bytes);
  EXPECT_GT(r1.traffic.drops_injected + r1.traffic.dups_injected +
                r1.traffic.delays_injected,
            0u);
  EXPECT_EQ(max_abs_diff<float>(r0.dist.view(), r1.dist.view()), 0.0);
}

// --- parfw::solve front door ------------------------------------------------------

TEST(SolveFrontDoor, DistributedMatchesBlocked) {
  const auto g = gen::erdos_renyi(96, 0.2, 51, 1.0, 90.0, true);

  ApspOptions blocked;
  blocked.algorithm = ApspAlgorithm::kBlocked;
  blocked.block_size = 16;
  const auto ref = solve<S>(g, blocked);

  ApspOptions distributed;
  distributed.algorithm = ApspAlgorithm::kDistributed;
  distributed.block_size = 16;
  distributed.dist.variant = sched::Variant::kAsync;
  distributed.dist.grid_rows = 2;
  distributed.dist.grid_cols = 2;
  const auto got = solve<S>(g, distributed);
  EXPECT_EQ(max_abs_diff<float>(ref.dist.view(), got.dist.view()), 0.0);
}

TEST(SolveFrontDoor, DistributedTiledWithResilience) {
  const auto g = gen::erdos_renyi(96, 0.2, 52, 1.0, 90.0, true);
  ApspOptions ref_opt;
  ref_opt.algorithm = ApspAlgorithm::kBlockedParallel;
  ref_opt.block_size = 16;
  const auto ref = solve<S>(g, ref_opt);

  MemoryCheckpointStore store;
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kDistributed;
  opt.block_size = 16;
  opt.dist.variant = sched::Variant::kPipelined;
  opt.dist.tiled = true;
  opt.dist.grid_rows = 2;
  opt.dist.grid_cols = 2;
  opt.dist.node_rows = 1;
  opt.dist.node_cols = 2;
  opt.dist.resilience.checkpoint_every = 2;
  opt.dist.resilience.store = &store;
  const auto got = solve<S>(g, opt);
  EXPECT_EQ(max_abs_diff<float>(ref.dist.view(), got.dist.view()), 0.0);
  EXPECT_FALSE(store.keys().empty()) << "cuts must land in the store";
}

TEST(SolveFrontDoor, DistributedTrackPaths) {
  const auto g = gen::erdos_renyi(64, 0.25, 53, 1.0, 80.0, true);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kDistributed;
  opt.track_paths = true;
  opt.block_size = 16;
  const auto r = solve<S>(g, opt);
  ASSERT_TRUE(r.pred.has_value());

  // Every finite path must replay to its reported distance.
  const std::size_t n = 64;
  for (std::size_t i = 0; i < n; i += 7)
    for (std::size_t j = 0; j < n; j += 5) {
      if (value_traits<float>::is_inf(r.dist(i, j))) continue;
      const auto p =
          r.query(static_cast<vertex_t>(i), static_cast<vertex_t>(j)).path;
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), static_cast<std::int64_t>(i));
      EXPECT_EQ(p.back(), static_cast<std::int64_t>(j));
    }
}

TEST(SolveFrontDoor, ApspRejectsDistributedDirectly) {
  // core apsp() cannot see the runtime; the error must point at solve().
  const auto g = gen::erdos_renyi(16, 0.3, 54);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kDistributed;
  EXPECT_THROW(apsp<S>(g, opt), std::exception);
}

}  // namespace
}  // namespace parfw
