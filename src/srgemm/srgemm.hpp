// SRGEMM — semiring general matrix-matrix multiply (paper §2.6, §4.1).
//
// Computes the accumulating product
//     C ← C ⊕ (A ⊗ B),   C: m x n,  A: m x k,  B: k x n
// over an arbitrary semiring. For MinPlus this is the min-plus product
//     C[i,j] = min(C[i,j], min_k (A[i,k] + B[k,j]))
// which is the workhorse of blocked Floyd-Warshall: PanelUpdate and
// OuterUpdate are both SRGEMM calls.
//
// The paper's kernel is a CUTLASS-derived CUDA kernel (6.8 TF/s on V100);
// this is its CPU substitute with the same blocked structure: an L2-sized
// macro tile, a k-panel loop, and a register-blocked micro-kernel. The
// kernel hierarchy (DESIGN.md §4.1a) is
//     naive → tiled (scalar) → packed (scalar) → SIMD (packed) → prepacked
// selected at runtime by Config::kernel; kAuto resolves to the explicit
// SIMD kernel whenever the semiring has simd_ops (MinPlus/MaxMin/BoolOr/
// PlusTimes) and falls back to the scalar tiled kernel otherwise. The
// multi-threaded driver partitions C by row panels across a thread pool,
// mirroring how a GPU partitions C across thread blocks.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "semiring/semiring.hpp"
#include "srgemm/srgemm_kernels.hpp"
#include "telemetry/metrics.hpp"
#include "util/matrix.hpp"
#include "util/thread_pool.hpp"

namespace parfw::srgemm {

/// Which kernel body services a multiply() call.
enum class Kernel {
  kAuto,    ///< SIMD if the semiring has simd_ops, else scalar tiled
  kNaive,   ///< triple loop (the oracle)
  kTiled,   ///< scalar register-blocked kernel on the raw views
  kPacked,  ///< scalar kernel + GotoBLAS operand packing
  kSimd,    ///< explicit-SIMD micro-kernel + operand packing
};

inline const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kAuto: return "auto";
    case Kernel::kNaive: return "naive";
    case Kernel::kTiled: return "tiled";
    case Kernel::kPacked: return "packed";
    case Kernel::kSimd: return "simd";
  }
  return "?";
}

/// Register-fragment shape of the SIMD micro-kernel: MR rows x NV native
/// vectors of C accumulators (NR = NV * lanes columns).
enum class MicroShape {
  kAuto,  ///< pick from the vector ISA width
  k4x4,   ///< 4 rows x 4 vectors — fewest B reloads, 21 live registers
  k8x2,   ///< 8 rows x 2 vectors — deepest broadcast reuse
  k4x2,   ///< 4 rows x 2 vectors — fits 16-register ISAs (AVX2/SSE)
};

inline const char* micro_name(MicroShape m) {
  switch (m) {
    case MicroShape::kAuto: return "auto";
    case MicroShape::k4x4: return "4x4";
    case MicroShape::k8x2: return "8x2";
    case MicroShape::k4x2: return "4x2";
  }
  return "?";
}

/// Kernel selection and tiling parameters. Defaults are tuned for a
/// ~1 MiB L2: 64x256 C macro-tiles with 256-deep k panels. Config::tuned()
/// derives tile sizes from the actual cache geometry instead. The PARFW_*
/// environment pins (see README) are applied inside the multiply driver,
/// so they take effect for every Config, tuned or default-constructed.
struct Config {
  std::size_t tile_m = 64;
  std::size_t tile_n = 256;
  std::size_t tile_k = 256;
  Kernel kernel = Kernel::kAuto;
  MicroShape micro = MicroShape::kAuto;
  /// Legacy switch: force the scalar packed kernel (same as kernel =
  /// kPacked; kept for the pre-dispatch call sites and benches).
  bool pack = false;
  /// Pool used to parallelise over C row panels; nullptr = sequential.
  ThreadPool* pool = nullptr;

  /// Cache-geometry-derived configuration. Deterministic for a fixed
  /// machine profile (computed once, then cached).
  static Config tuned();
};

namespace detail {

/// L1/L2 data-cache sizes in bytes, with conservative fallbacks when the
/// OS does not report them (sysconf returns 0/-1 in some containers).
struct CacheGeometry {
  std::size_t l1 = 32 * 1024;
  std::size_t l2 = 1024 * 1024;
};

inline CacheGeometry detect_cache() {
  CacheGeometry g;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const long l1 = ::sysconf(_SC_LEVEL1_DCACHE_SIZE);
  if (l1 > 0) g.l1 = static_cast<std::size_t>(l1);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  const long l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) g.l2 = static_cast<std::size_t>(l2);
#endif
  return g;
}

inline std::size_t round_down(std::size_t x, std::size_t mult,
                              std::size_t lo) {
  const std::size_t r = x / mult * mult;
  return r < lo ? lo : r;
}

inline Config tuned_uncached() {
  Config cfg;
  const CacheGeometry cache = detect_cache();
  // GotoBLAS sizing against a nominal 4-byte element and 64-wide NR:
  //  * tile_k: a kk x NR B micro-panel should fill at most half of L1.
  //  * tile_m: the packed tile_m x tile_k A tile at most half of L2.
  //  * tile_n: bounded so the packed B row panel stays a few MiB.
  constexpr std::size_t elem = 4, nr = 64;
  cfg.tile_k = std::clamp<std::size_t>(
      round_down(cache.l1 / (2 * nr * elem), 32, 32), 32, 512);
  cfg.tile_m = std::clamp<std::size_t>(
      round_down(cache.l2 / (2 * cfg.tile_k * elem), 8, 32), 32, 512);
  cfg.tile_n = 512;

  return cfg;
}

inline Kernel parse_kernel(const char* e, Kernel fallback) {
  if (e == nullptr) return fallback;
  const std::string v(e);
  if (v == "naive") return Kernel::kNaive;
  if (v == "tiled") return Kernel::kTiled;
  if (v == "packed") return Kernel::kPacked;
  if (v == "simd") return Kernel::kSimd;
  if (v == "auto") return Kernel::kAuto;
  return fallback;  // unrecognised values are ignored
}

inline MicroShape parse_micro(const char* e, MicroShape fallback) {
  if (e == nullptr) return fallback;
  const std::string v(e);
  if (v == "4x4") return MicroShape::k4x4;
  if (v == "8x2") return MicroShape::k8x2;
  if (v == "4x2") return MicroShape::k4x2;
  if (v == "auto") return MicroShape::kAuto;
  return fallback;
}

/// PARFW_* environment pins, read once per process so every resolution is
/// deterministic. Applied inside multiply_impl so they reach EVERY driver
/// (blocked FW, distributed, offload, benches) no matter which options
/// struct the Config travelled through — not only Config::tuned() callers.
struct EnvPins {
  Kernel kernel = Kernel::kAuto;
  MicroShape micro = MicroShape::kAuto;
  std::size_t tile_m = 0, tile_n = 0, tile_k = 0;  // 0 = not pinned
};

inline const EnvPins& env_pins() {
  static const EnvPins pins = [] {
    EnvPins p;
    p.kernel = parse_kernel(std::getenv("PARFW_KERNEL"), Kernel::kAuto);
    p.micro = parse_micro(std::getenv("PARFW_MICRO"), MicroShape::kAuto);
    if (const char* e = std::getenv("PARFW_TILE_M"))
      p.tile_m = std::max<std::size_t>(1, std::strtoull(e, nullptr, 10));
    if (const char* e = std::getenv("PARFW_TILE_N"))
      p.tile_n = std::max<std::size_t>(1, std::strtoull(e, nullptr, 10));
    if (const char* e = std::getenv("PARFW_TILE_K"))
      p.tile_k = std::max<std::size_t>(1, std::strtoull(e, nullptr, 10));
    return p;
  }();
  return pins;
}

/// Fold the env pins into a caller-supplied config. Kernel/micro pins only
/// fill fields left at kAuto (an explicit programmatic choice wins); tile
/// pins always win — that is what "pin" means for an ablation run.
inline Config apply_env_pins(Config cfg) {
  const EnvPins& p = env_pins();
  if (cfg.kernel == Kernel::kAuto) cfg.kernel = p.kernel;
  if (cfg.micro == MicroShape::kAuto) cfg.micro = p.micro;
  if (p.tile_m != 0) cfg.tile_m = p.tile_m;
  if (p.tile_n != 0) cfg.tile_n = p.tile_n;
  if (p.tile_k != 0) cfg.tile_k = p.tile_k;
  return cfg;
}

/// kAuto → concrete kernel for semiring S on this build's ISA. The SIMD
/// kernel is only picked when the semiring has lane-wise operator forms;
/// with no vector ISA the Vec fallback is plain scalar arrays, so prefer
/// the tuned scalar kernel there.
template <typename S>
inline Kernel resolve_kernel(Kernel k) {
  if (k == Kernel::kAuto) {
    if (simd_ops<S>::available && simd::kNativeBytes > 0) return Kernel::kSimd;
    return Kernel::kTiled;
  }
  if (k == Kernel::kSimd && !simd_ops<S>::available) return Kernel::kPacked;
  return k;
}

inline MicroShape resolve_micro(MicroShape m) {
  if (m != MicroShape::kAuto) return m;
  // 32-register ISAs take the wide fragments; 16-register ISAs the narrow.
  return simd::kNativeBytes >= 64 ? MicroShape::k4x4 : MicroShape::k4x2;
}

/// Stamp out the SIMD macro-kernel for the resolved fragment shape.
template <typename S>
inline void run_simd(MatrixView<const typename S::value_type> A,
                     MatrixView<const typename S::value_type> B,
                     MatrixView<typename S::value_type> C, const Config& cfg,
                     bool pack) {
  if constexpr (simd_ops<S>::available) {
    switch (resolve_micro(cfg.micro)) {
      case MicroShape::k8x2:
        tiled_kernel_simd<S, 8, 2>(A, B, C, cfg.tile_m, cfg.tile_n,
                                   cfg.tile_k, pack);
        break;
      case MicroShape::k4x2:
        tiled_kernel_simd<S, 4, 2>(A, B, C, cfg.tile_m, cfg.tile_n,
                                   cfg.tile_k, pack);
        break;
      case MicroShape::k4x4:
      default:
        tiled_kernel_simd<S, 4, 4>(A, B, C, cfg.tile_m, cfg.tile_n,
                                   cfg.tile_k, pack);
        break;
    }
  } else {
    (void)A; (void)B; (void)C; (void)cfg; (void)pack;
    PARFW_CHECK_MSG(false, "SIMD kernel requested for a semiring without "
                           "simd_ops");
  }
}

/// Kernel body on one (possibly row-partitioned) slice of the product.
/// `prepacked` suppresses operand packing — the operands are promised to
/// be panel-resident already.
template <typename S>
inline void run_slice(MatrixView<const typename S::value_type> A,
                      MatrixView<const typename S::value_type> B,
                      MatrixView<typename S::value_type> C, const Config& cfg,
                      Kernel kernel, bool prepacked) {
  switch (kernel) {
    case Kernel::kNaive:
      naive_kernel<S>(A, B, C);
      break;
    case Kernel::kPacked:
      tiled_kernel_packed<S>(A, B, C, cfg.tile_m, cfg.tile_n, cfg.tile_k);
      break;
    case Kernel::kSimd:
      run_simd<S>(A, B, C, cfg, /*pack=*/!prepacked);
      break;
    case Kernel::kTiled:
    case Kernel::kAuto:
    default:
      tiled_kernel<S>(A, B, C, cfg.tile_m, cfg.tile_n, cfg.tile_k);
      break;
  }
}

/// Ambient dispatch-level metrics (PARFW_METRICS gate): one set of series
/// per resolved {kernel, micro} pair in the global registry. Recording
/// costs two atomic adds + two histogram observes per multiply() call —
/// measured at the dispatch granularity, not per tile, so the kernels
/// themselves stay untouched.
template <typename S>
inline void record_dispatch_metrics(Kernel kernel, const Config& cfg,
                                    std::size_t m, std::size_t n,
                                    std::size_t k, bool prepacked,
                                    double seconds) {
  telemetry::Registry& reg = telemetry::Registry::global();
  std::string labels = std::string("kernel=") + kernel_name(kernel);
  if (kernel == Kernel::kSimd)
    labels += std::string(",micro=") + micro_name(resolve_micro(cfg.micro));
  const double fl = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                    static_cast<double>(k);
  reg.counter("srgemm.calls", labels).inc();
  reg.counter("srgemm.flops", labels).add(static_cast<std::uint64_t>(fl));
  if (!prepacked && (kernel == Kernel::kPacked || kernel == Kernel::kSimd)) {
    // Operand footprint staged through the pack buffers (A and B panels).
    reg.counter("srgemm.bytes_packed", labels)
        .add(static_cast<std::uint64_t>((m * k + k * n) *
                                        sizeof(typename S::value_type)));
  }
  reg.histogram("srgemm.seconds", labels).observe(seconds);
  if (seconds > 0.0)
    reg.histogram("srgemm.gflops", labels).observe(fl / seconds / 1e9);
}

template <typename S>
inline void multiply_impl(MatrixView<const typename S::value_type> A,
                          MatrixView<const typename S::value_type> B,
                          MatrixView<typename S::value_type> C,
                          const Config& caller_cfg, bool prepacked) {
  const Config cfg = apply_env_pins(caller_cfg);
  Kernel kernel = resolve_kernel<S>(cfg.pack && cfg.kernel == Kernel::kAuto
                                        ? Kernel::kPacked
                                        : cfg.kernel);
  const std::size_t m = C.rows();
  const auto dispatch = [&] {
    if (cfg.pool != nullptr && cfg.pool->size() > 1 && m >= 2 * cfg.tile_m) {
      // Row-panel parallelism: each worker owns disjoint rows of C, so no
      // synchronisation is needed inside the kernel.
      const std::size_t panels = (m + cfg.tile_m - 1) / cfg.tile_m;
      cfg.pool->parallel_for(panels, [&](std::size_t p) {
        const std::size_t r0 = p * cfg.tile_m;
        const std::size_t nr = std::min(cfg.tile_m, m - r0);
        run_slice<S>(A.sub(r0, 0, nr, A.cols()), B,
                     C.sub(r0, 0, nr, C.cols()), cfg, kernel, prepacked);
      });
    } else {
      run_slice<S>(A, B, C, cfg, kernel, prepacked);
    }
  };
  if (!telemetry::enabled()) {
    dispatch();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  dispatch();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  record_dispatch_metrics<S>(kernel, cfg, m, C.cols(), A.cols(), prepacked,
                             secs);
}

}  // namespace detail

inline Config Config::tuned() {
  static const Config cached = detail::tuned_uncached();
  return cached;
}

/// C ← C ⊕ A ⊗ B. Dimensions are validated; views may alias only if
/// the semiring is idempotent AND the caller understands blocked-FW
/// in-place semantics (PanelUpdate aliases A or B with C deliberately,
/// exactly as Algorithm 2 does).
template <typename S>
void multiply(MatrixView<const typename S::value_type> A,
              MatrixView<const typename S::value_type> B,
              MatrixView<typename S::value_type> C, const Config& cfg = {}) {
  PARFW_CHECK_MSG(A.rows() == C.rows() && B.cols() == C.cols() &&
                      A.cols() == B.rows(),
                  "srgemm shape mismatch: C(" << C.rows() << "x" << C.cols()
                      << ") += A(" << A.rows() << "x" << A.cols() << ") * B("
                      << B.rows() << "x" << B.cols() << ")");
  if (C.empty() || A.cols() == 0) return;
  detail::multiply_impl<S>(A, B, C, cfg, /*prepacked=*/false);
}

/// C ← C ⊕ A ⊗ B where A and B are already panel-resident: dense (or
/// near-dense) operands the caller packed once and reuses across many
/// products — blocked FW's pivot panels, the distributed drivers' received
/// panel buffers, the offload engine's device-resident panels. Skips the
/// per-call operand packing the kernels would otherwise do; everything
/// else (dispatch, tiling, row-panel threading) matches multiply().
template <typename S>
void multiply_prepacked(MatrixView<const typename S::value_type> A,
                        MatrixView<const typename S::value_type> B,
                        MatrixView<typename S::value_type> C,
                        const Config& cfg = {}) {
  PARFW_CHECK_MSG(A.rows() == C.rows() && B.cols() == C.cols() &&
                      A.cols() == B.rows(),
                  "srgemm shape mismatch: C(" << C.rows() << "x" << C.cols()
                      << ") += A(" << A.rows() << "x" << A.cols() << ") * B("
                      << B.rows() << "x" << B.cols() << ")");
  if (C.empty() || A.cols() == 0) return;
  detail::multiply_impl<S>(A, B, C, cfg, /*prepacked=*/true);
}

/// Reference implementation (naive triple loop) — the oracle the tiled
/// kernel is validated against, and the fallback for exotic semirings.
template <typename S>
void multiply_reference(MatrixView<const typename S::value_type> A,
                        MatrixView<const typename S::value_type> B,
                        MatrixView<typename S::value_type> C) {
  PARFW_CHECK(A.rows() == C.rows() && B.cols() == C.cols() &&
              A.cols() == B.rows());
  detail::naive_kernel<S>(A, B, C);
}

/// Argmin-tracking SRGEMM for path reconstruction:
///     where C[i,j] improves via index t, set Arg[i,j] = t + arg_offset.
/// `arg_offset` converts the local k index into a global vertex id.
/// Used by the predecessor-tracking blocked FW (DESIGN.md §6).
template <typename S>
void multiply_argmin(MatrixView<const typename S::value_type> A,
                     MatrixView<const typename S::value_type> B,
                     MatrixView<typename S::value_type> C,
                     MatrixView<std::int64_t> Arg, std::int64_t arg_offset) {
  PARFW_CHECK(A.rows() == C.rows() && B.cols() == C.cols() &&
              A.cols() == B.rows());
  PARFW_CHECK(Arg.rows() == C.rows() && Arg.cols() == C.cols());
  detail::argmin_kernel<S>(A, B, C, Arg, arg_offset);
}

/// Fused predecessor-tracking SRGEMM:
///     where C[i,j] improves through row t of B, predC[i,j] ← predB[t,j]
/// (the blocked-FW pred rule: pred(i,j) ← pred(t,j), with predB carrying
/// global vertex ids). One deterministic kernel — detail::pred_sweep_rows,
/// SIMD when the semiring has lane-wise forms — services every call site,
/// which is what makes the distributed pred matrices bit-identical to the
/// single-node blocked_floyd_warshall_paths result.
///
/// Aliasing: the blocked-FW panel updates deliberately alias (row panel
/// B ≡ C, column panel A ≡ C); both are well-defined under the kernel's
/// row-buffered order. Row-panel aliasing carries cross-row dependencies,
/// so the pool split is only applied when B does not alias C (rows of C
/// are then independent sub-problems and the split cannot change results).
template <typename S>
void multiply_with_pred(MatrixView<const typename S::value_type> A,
                        MatrixView<const typename S::value_type> B,
                        MatrixView<typename S::value_type> C,
                        MatrixView<const std::int64_t> predB,
                        MatrixView<std::int64_t> predC,
                        const Config& caller_cfg = {}) {
  PARFW_CHECK_MSG(A.rows() == C.rows() && B.cols() == C.cols() &&
                      A.cols() == B.rows(),
                  "srgemm shape mismatch: C(" << C.rows() << "x" << C.cols()
                      << ") += A(" << A.rows() << "x" << A.cols() << ") * B("
                      << B.rows() << "x" << B.cols() << ")");
  PARFW_CHECK(predB.rows() == B.rows() && predB.cols() == B.cols());
  PARFW_CHECK(predC.rows() == C.rows() && predC.cols() == C.cols());
  if (C.empty() || A.cols() == 0) return;
  const Config cfg = detail::apply_env_pins(caller_cfg);
  const std::size_t m = C.rows();
  const bool rows_independent = B.data() != C.data();
  if (rows_independent && cfg.pool != nullptr && cfg.pool->size() > 1 &&
      m >= 2 * cfg.tile_m) {
    const std::size_t panels = (m + cfg.tile_m - 1) / cfg.tile_m;
    cfg.pool->parallel_for(panels, [&](std::size_t p) {
      const std::size_t lo = p * cfg.tile_m;
      detail::pred_sweep_rows<S>(A, B, C, predB, predC, lo,
                                 std::min(m, lo + cfg.tile_m));
    });
  } else {
    detail::pred_sweep_rows<S>(A, B, C, predB, predC, 0, m);
  }
}

/// Element-wise accumulate with predecessor attachment (the offload
/// engine's hostUpdate in paths mode): where X strictly improves C, take
/// X's value and its predecessor. When (X, Xpred) is a chunk product
/// computed by multiply_with_pred on a zero()-filled X, this merge is
/// bit-identical to running the fused kernel directly on C — the chunk's
/// first-t-attaining argmin composes with the strict-improvement merge.
template <typename S>
void ewise_add_with_pred(MatrixView<const typename S::value_type> X,
                         MatrixView<const std::int64_t> Xpred,
                         MatrixView<typename S::value_type> C,
                         MatrixView<std::int64_t> predC,
                         ThreadPool* pool = nullptr) {
  PARFW_CHECK(X.rows() == C.rows() && X.cols() == C.cols());
  PARFW_CHECK(Xpred.rows() == C.rows() && Xpred.cols() == C.cols());
  PARFW_CHECK(predC.rows() == C.rows() && predC.cols() == C.cols());
  using T = typename S::value_type;
  const std::size_t rows = C.rows(), cols = C.cols();
  auto run_rows = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const T* x = X.data() + i * X.ld();
      const std::int64_t* xp = Xpred.data() + i * Xpred.ld();
      T* c = C.data() + i * C.ld();
      std::int64_t* pc = predC.data() + i * predC.ld();
      std::size_t j = 0;
      if constexpr (simd_ops<S>::available) {
        if constexpr (simd::kNativeBytes > 0) {
          constexpr std::size_t W = simd::native_lanes<T>();
          for (; j + W <= cols; j += W) {
            const auto xv = simd::load<T, W>(x + j);
            const auto cv = simd::load<T, W>(c + j);
            const auto imp = simd_ops<S>::vimproves(xv, cv);
            if (simd::vany(imp)) {
              simd::store<T, W>(c + j, simd::vselect(imp, xv, cv));
              simd::vblend_ids(imp, xp + j, pc + j);
            }
          }
        }
      }
      for (; j < cols; ++j) {
        if (S::less_add(x[j], c[j])) {
          c[j] = x[j];
          pc[j] = xp[j];
        }
      }
    }
  };
  if (pool != nullptr && pool->size() > 1 && rows >= 2 * pool->size()) {
    const std::size_t nw = pool->size();
    const std::size_t chunk = (rows + nw - 1) / nw;
    pool->parallel_for(nw, [&](std::size_t w) {
      const std::size_t r0 = w * chunk;
      run_rows(r0, std::min(rows, r0 + chunk));
    });
  } else {
    run_rows(0, rows);
  }
}

/// Element-wise accumulate C ← C ⊕ X (the offload engine's hostUpdate).
/// Rows stream through the SIMD ⊕ when the semiring has lane-wise forms;
/// a pool spreads row ranges across workers (each worker owns disjoint
/// rows, so no synchronisation) — this path is DRAM-bandwidth bound and
/// sits on the offload engine's critical path (§4.3's hostUpdate).
template <typename S>
void ewise_add(MatrixView<const typename S::value_type> X,
               MatrixView<typename S::value_type> C,
               ThreadPool* pool = nullptr) {
  PARFW_CHECK(X.rows() == C.rows() && X.cols() == C.cols());
  using T = typename S::value_type;
  const std::size_t rows = C.rows(), cols = C.cols();
  auto run_rows = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const T* x = X.data() + i * X.ld();
      T* c = C.data() + i * C.ld();
      std::size_t j = 0;
      if constexpr (simd_ops<S>::available) {
        constexpr std::size_t W = simd::native_lanes<T>();
        for (; j + W <= cols; j += W)
          simd::store<T, W>(
              c + j, simd_ops<S>::vadd(simd::load<T, W>(c + j),
                                       simd::load<T, W>(x + j)));
      }
      for (; j < cols; ++j) c[j] = S::add(c[j], x[j]);
    }
  };
  if (pool != nullptr && pool->size() > 1 && rows >= 2 * pool->size()) {
    const std::size_t nw = pool->size();
    const std::size_t chunk = (rows + nw - 1) / nw;
    pool->parallel_for(nw, [&](std::size_t w) {
      const std::size_t r0 = w * chunk;
      run_rows(r0, std::min(rows, r0 + chunk));
    });
  } else {
    run_rows(0, rows);
  }
}

/// FLOP count convention used throughout (matches the paper): an SRGEMM of
/// shape (m,n,k) performs 2·m·n·k flops (one ⊕ and one ⊗ per MAC).
inline double flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace parfw::srgemm
