// Component-wise APSP (paper §2.1 note and §6: "On graphs with multiple
// components one may use a graph connected-components algorithm, and
// perform APSP on each connected component").
//
// Edges never cross weakly-connected components, so the distance matrix
// is block diagonal under the component permutation: solving each
// component independently costs Σ n_c³ instead of n³ — a large win when
// components are balanced (k components ⇒ k²× fewer flops).
#pragma once

#include <vector>

#include "core/apsp.hpp"
#include "graph/connected_components.hpp"

namespace parfw {

/// APSP via per-component solves. Results are reported in the ORIGINAL
/// vertex numbering; cross-component distances are the semiring zero and
/// cross-component predecessors are -1.
template <typename S>
ApspResult<typename S::value_type> component_apsp(const Graph& g,
                                                  const ApspOptions& opt = {}) {
  using T = typename S::value_type;
  const vertex_t n = g.num_vertices();
  const std::vector<vertex_t> labels = connected_components(g);
  const vertex_t k = num_components(labels);

  // Vertex lists per component and original->local index maps.
  std::vector<std::vector<vertex_t>> members(static_cast<std::size_t>(k));
  std::vector<vertex_t> local_of(static_cast<std::size_t>(n));
  for (vertex_t v = 0; v < n; ++v) {
    auto& m = members[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])];
    local_of[static_cast<std::size_t>(v)] = static_cast<vertex_t>(m.size());
    m.push_back(v);
  }

  ApspResult<T> out;
  out.dist = Matrix<T>(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                       S::zero());
  for (vertex_t v = 0; v < n; ++v) out.dist(v, v) = S::one();
  if (opt.track_paths) {
    out.pred.emplace(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                     std::int64_t{-1});
    for (vertex_t v = 0; v < n; ++v) (*out.pred)(v, v) = v;
  }

  // Per-component subgraphs, solved independently.
  std::vector<Graph> subs;
  subs.reserve(static_cast<std::size_t>(k));
  for (vertex_t c = 0; c < k; ++c)
    subs.emplace_back(static_cast<vertex_t>(members[static_cast<std::size_t>(c)].size()));
  for (const Edge& e : g.edges()) {
    const vertex_t c = labels[static_cast<std::size_t>(e.src)];
    PARFW_DCHECK(c == labels[static_cast<std::size_t>(e.dst)]);
    subs[static_cast<std::size_t>(c)].add_edge(
        local_of[static_cast<std::size_t>(e.src)],
        local_of[static_cast<std::size_t>(e.dst)], e.weight);
  }

  for (vertex_t c = 0; c < k; ++c) {
    const auto& m = members[static_cast<std::size_t>(c)];
    const auto r = apsp<S>(subs[static_cast<std::size_t>(c)], opt);
    for (std::size_t i = 0; i < m.size(); ++i)
      for (std::size_t j = 0; j < m.size(); ++j) {
        out.dist(m[i], m[j]) = r.dist(i, j);
        if (opt.track_paths) {
          const std::int64_t lp = (*r.pred)(i, j);
          (*out.pred)(m[i], m[j]) =
              lp < 0 ? -1 : m[static_cast<std::size_t>(lp)];
        }
      }
  }
  return out;
}

/// Flop estimate for the component solve vs the dense solve — used by the
/// examples and the component ablation bench.
inline double component_apsp_flops(const std::vector<vertex_t>& labels) {
  const vertex_t k = num_components(labels);
  std::vector<double> sizes(static_cast<std::size_t>(k), 0.0);
  for (vertex_t l : labels) sizes[static_cast<std::size_t>(l)] += 1.0;
  double flops = 0.0;
  for (double s : sizes) flops += 2.0 * s * s * s;
  return flops;
}

}  // namespace parfw
