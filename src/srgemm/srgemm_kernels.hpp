// Kernel bodies for SRGEMM: naive oracle, cache-tiled + register-blocked
// kernel, and the argmin-tracking variant.
//
// The tiled kernel follows the canonical GotoBLAS decomposition adapted to
// semirings: C is walked in tile_m x tile_n macro tiles; for each macro
// tile the k dimension is consumed in tile_k panels; inside a panel a
// 4 x 16 register micro-kernel keeps 64 accumulators live across the
// k loop. min/+ has no FMA, matching the paper's observation that SRGEMM
// peak is half the FMA peak (§4.1).
// The SIMD kernels below lift the same structure onto explicit vectors
// (util/simd.hpp + per-semiring simd_ops traits): an MR x (NV*W) register
// fragment of C updated with one broadcast per A element and NV vector
// ops per ⊕/⊗ — the CPU rendition of the CUTLASS warp-fragment loop the
// paper's kernel uses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "semiring/semiring.hpp"
#include "util/matrix.hpp"
#include "util/simd.hpp"

namespace parfw::srgemm::detail {

template <typename S>
void naive_kernel(MatrixView<const typename S::value_type> A,
                  MatrixView<const typename S::value_type> B,
                  MatrixView<typename S::value_type> C) {
  using T = typename S::value_type;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T acc = S::zero();
      for (std::size_t t = 0; t < k; ++t)
        acc = S::add(acc, S::mul(A(i, t), B(t, j)));
      C(i, j) = S::add(C(i, j), acc);
    }
  }
}

/// Micro-kernel: accumulate a MR x NR block of C over k in [0, kk).
/// MR*NR accumulators stay in registers; A is walked down a column strip
/// and B across a row strip. Plain scalar code — the compiler vectorises
/// the NR-wide inner statements (min/add map to vminps/vaddps).
template <typename S, std::size_t MR, std::size_t NR>
inline void micro_kernel(const typename S::value_type* a, std::size_t lda,
                         const typename S::value_type* b, std::size_t ldb,
                         typename S::value_type* c, std::size_t ldc,
                         std::size_t kk) {
  using T = typename S::value_type;
  T acc[MR][NR];
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t j = 0; j < NR; ++j) acc[i][j] = c[i * ldc + j];
  for (std::size_t t = 0; t < kk; ++t) {
    const T* brow = b + t * ldb;
    for (std::size_t i = 0; i < MR; ++i) {
      const T av = a[i * lda + t];
      for (std::size_t j = 0; j < NR; ++j)
        acc[i][j] = S::add(acc[i][j], S::mul(av, brow[j]));
    }
  }
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] = acc[i][j];
}

/// Edge handler for fringe blocks smaller than the register tile.
template <typename S>
inline void edge_kernel(const typename S::value_type* a, std::size_t lda,
                        const typename S::value_type* b, std::size_t ldb,
                        typename S::value_type* c, std::size_t ldc,
                        std::size_t mm, std::size_t nn, std::size_t kk) {
  using T = typename S::value_type;
  for (std::size_t i = 0; i < mm; ++i) {
    for (std::size_t j = 0; j < nn; ++j) {
      T acc = c[i * ldc + j];
      for (std::size_t t = 0; t < kk; ++t)
        acc = S::add(acc, S::mul(a[i * lda + t], b[t * ldb + j]));
      c[i * ldc + j] = acc;
    }
  }
}

/// Register-tiled sweep of an mm x nn macro tile: scalar MR x NR
/// micro-kernels over the interior, scalar edge kernels on the fringe.
template <typename S, std::size_t MR, std::size_t NR>
inline void scalar_sweep(const typename S::value_type* a, std::size_t lda,
                         const typename S::value_type* b, std::size_t ldb,
                         typename S::value_type* c, std::size_t ldc,
                         std::size_t mm, std::size_t nn, std::size_t kk) {
  std::size_t i = 0;
  for (; i + MR <= mm; i += MR) {
    std::size_t j = 0;
    for (; j + NR <= nn; j += NR)
      micro_kernel<S, MR, NR>(a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                              ldc, kk);
    if (j < nn)
      edge_kernel<S>(a + i * lda, lda, b + j, ldb, c + i * ldc + j, ldc, MR,
                     nn - j, kk);
  }
  if (i < mm)
    edge_kernel<S>(a + i * lda, lda, b, ldb, c + i * ldc, ldc, mm - i, nn, kk);
}

/// Packing variant: A macro-tiles and B panels are copied into contiguous
/// scratch before the register sweep (GotoBLAS-style). Wins when the
/// operands are strided views of a much wider matrix — the blocked-FW
/// panel shapes — by keeping the k-loop streams inside one page each.
///
/// Loop order is k0 → i0 → j0: the whole kk x n row panel of B is packed
/// once per k0 and every A macro-tile is packed exactly once per (i0, k0).
/// (The original k0 → j0 → i0 order repacked each A tile once per column
/// panel, i.e. n/tile_n times — measured at ~25% of runtime on panel
/// shapes; see bench_srgemm_pack.)
template <typename S>
void tiled_kernel_packed(MatrixView<const typename S::value_type> A,
                         MatrixView<const typename S::value_type> B,
                         MatrixView<typename S::value_type> C,
                         std::size_t tile_m, std::size_t tile_n,
                         std::size_t tile_k) {
  using T = typename S::value_type;
  constexpr std::size_t MR = 4, NR = 16;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  AlignedBuffer<T> a_pack(tile_m * tile_k);
  AlignedBuffer<T> b_pack(std::min(tile_k, k) * n);

  for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
    const std::size_t kk = std::min(tile_k, k - k0);
    // Pack B(k0:k0+kk, :) contiguous (ldb = n), shared by every (i0, j0).
    for (std::size_t t = 0; t < kk; ++t)
      std::copy_n(B.data() + (k0 + t) * B.ld(), n, b_pack.data() + t * n);
    for (std::size_t i0 = 0; i0 < m; i0 += tile_m) {
      const std::size_t mi = std::min(tile_m, m - i0);
      // Pack A(i0:i0+mi, k0:k0+kk) contiguous (lda = kk) — once per tile.
      for (std::size_t i = 0; i < mi; ++i)
        std::copy_n(A.data() + (i0 + i) * A.ld() + k0, kk,
                    a_pack.data() + i * kk);
      for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
        const std::size_t nj = std::min(tile_n, n - j0);
        scalar_sweep<S, MR, NR>(a_pack.data(), kk, b_pack.data() + j0, n,
                                C.data() + i0 * C.ld() + j0, C.ld(), mi, nj,
                                kk);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Explicit-SIMD kernels.
// ---------------------------------------------------------------------------

/// SIMD micro-kernel: an MR x (NV*W) fragment of C held in MR*NV vector
/// accumulators across the k loop (W = native lanes for the value type).
/// Per k step: NV vector loads of the B row, MR broadcasts of A, and one
/// vadd(vmul(...)) pair per accumulator — min/+ maps to vminps/vaddps.
template <typename S, std::size_t MR, std::size_t NV>
inline void micro_kernel_simd(const typename S::value_type* a,
                              std::size_t lda,
                              const typename S::value_type* b,
                              std::size_t ldb, typename S::value_type* c,
                              std::size_t ldc, std::size_t kk) {
  using T = typename S::value_type;
  using Ops = simd_ops<S>;
  constexpr std::size_t W = simd::native_lanes<T>();
  using V = simd::Vec<T, W>;
  V acc[MR][NV];
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t v = 0; v < NV; ++v)
      acc[i][v] = simd::load<T, W>(c + i * ldc + v * W);
  for (std::size_t t = 0; t < kk; ++t) {
    const T* brow = b + t * ldb;
    V bv[NV];
    for (std::size_t v = 0; v < NV; ++v)
      bv[v] = simd::load<T, W>(brow + v * W);
    for (std::size_t i = 0; i < MR; ++i) {
      const V av = simd::broadcast<T, W>(a[i * lda + t]);
      for (std::size_t v = 0; v < NV; ++v)
        acc[i][v] = Ops::vadd(acc[i][v], Ops::vmul(av, bv[v]));
    }
  }
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t v = 0; v < NV; ++v)
      simd::store<T, W>(c + i * ldc + v * W, acc[i][v]);
}

/// Register-tiled sweep with the SIMD micro-kernel; scalar edge kernels
/// mop up rows/columns beyond the last full MR x (NV*W) fragment.
template <typename S, std::size_t MR, std::size_t NV>
inline void simd_sweep(const typename S::value_type* a, std::size_t lda,
                       const typename S::value_type* b, std::size_t ldb,
                       typename S::value_type* c, std::size_t ldc,
                       std::size_t mm, std::size_t nn, std::size_t kk) {
  constexpr std::size_t NR = NV * simd::native_lanes<typename S::value_type>();
  std::size_t i = 0;
  for (; i + MR <= mm; i += MR) {
    std::size_t j = 0;
    for (; j + NR <= nn; j += NR)
      micro_kernel_simd<S, MR, NV>(a + i * lda, lda, b + j, ldb,
                                   c + i * ldc + j, ldc, kk);
    if (j < nn)
      edge_kernel<S>(a + i * lda, lda, b + j, ldb, c + i * ldc + j, ldc, MR,
                     nn - j, kk);
  }
  if (i < mm)
    edge_kernel<S>(a + i * lda, lda, b, ldb, c + i * ldc, ldc, mm - i, nn, kk);
}

/// SIMD macro-kernel. With `pack` set, operands stream through the same
/// k0 → i0 → j0 pack schedule as tiled_kernel_packed (B row panel packed
/// once per k0, A tile once per (i0, k0)); without it the sweep runs
/// directly on the views — the path multiply_prepacked uses when the
/// caller already owns contiguous panels.
template <typename S, std::size_t MR, std::size_t NV>
void tiled_kernel_simd(MatrixView<const typename S::value_type> A,
                       MatrixView<const typename S::value_type> B,
                       MatrixView<typename S::value_type> C,
                       std::size_t tile_m, std::size_t tile_n,
                       std::size_t tile_k, bool pack) {
  using T = typename S::value_type;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();

  if (!pack) {
    for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
      const std::size_t kk = std::min(tile_k, k - k0);
      for (std::size_t i0 = 0; i0 < m; i0 += tile_m) {
        const std::size_t mi = std::min(tile_m, m - i0);
        for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
          const std::size_t nj = std::min(tile_n, n - j0);
          simd_sweep<S, MR, NV>(A.data() + i0 * A.ld() + k0, A.ld(),
                                B.data() + k0 * B.ld() + j0, B.ld(),
                                C.data() + i0 * C.ld() + j0, C.ld(), mi, nj,
                                kk);
        }
      }
    }
    return;
  }

  AlignedBuffer<T> a_pack(tile_m * tile_k);
  AlignedBuffer<T> b_pack(std::min(tile_k, k) * n);
  for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
    const std::size_t kk = std::min(tile_k, k - k0);
    for (std::size_t t = 0; t < kk; ++t)
      std::copy_n(B.data() + (k0 + t) * B.ld(), n, b_pack.data() + t * n);
    for (std::size_t i0 = 0; i0 < m; i0 += tile_m) {
      const std::size_t mi = std::min(tile_m, m - i0);
      for (std::size_t i = 0; i < mi; ++i)
        std::copy_n(A.data() + (i0 + i) * A.ld() + k0, kk,
                    a_pack.data() + i * kk);
      for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
        const std::size_t nj = std::min(tile_n, n - j0);
        simd_sweep<S, MR, NV>(a_pack.data(), kk, b_pack.data() + j0, n,
                              C.data() + i0 * C.ld() + j0, C.ld(), mi, nj,
                              kk);
      }
    }
  }
}

template <typename S>
void tiled_kernel(MatrixView<const typename S::value_type> A,
                  MatrixView<const typename S::value_type> B,
                  MatrixView<typename S::value_type> C, std::size_t tile_m,
                  std::size_t tile_n, std::size_t tile_k) {
  using T = typename S::value_type;
  constexpr std::size_t MR = 4, NR = 16;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();

  for (std::size_t i0 = 0; i0 < m; i0 += tile_m) {
    const std::size_t mi = std::min(tile_m, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
      const std::size_t nj = std::min(tile_n, n - j0);
      for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
        const std::size_t kk = std::min(tile_k, k - k0);
        // Register-tiled sweep of the (mi x nj) macro tile.
        std::size_t i = 0;
        for (; i + MR <= mi; i += MR) {
          const T* a = A.data() + (i0 + i) * A.ld() + k0;
          std::size_t j = 0;
          for (; j + NR <= nj; j += NR) {
            micro_kernel<S, MR, NR>(a, A.ld(),
                                    B.data() + k0 * B.ld() + (j0 + j), B.ld(),
                                    C.data() + (i0 + i) * C.ld() + (j0 + j),
                                    C.ld(), kk);
          }
          if (j < nj)
            edge_kernel<S>(a, A.ld(), B.data() + k0 * B.ld() + (j0 + j),
                           B.ld(), C.data() + (i0 + i) * C.ld() + (j0 + j),
                           C.ld(), MR, nj - j, kk);
        }
        if (i < mi)
          edge_kernel<S>(A.data() + (i0 + i) * A.ld() + k0, A.ld(),
                         B.data() + k0 * B.ld() + j0, B.ld(),
                         C.data() + (i0 + i) * C.ld() + j0, C.ld(), mi - i,
                         nj, kk);
      }
    }
  }
}

/// Fused predecessor-tracking SRGEMM over rows [r0, r1) of C:
///     C(i,j) ← best over t of A(i,t) ⊗ B(t,j) vs the incumbent C(i,j),
///     predC(i,j) ← predB(t*, j) for the first t* attaining that best.
/// Row-buffered: each row's new values/preds are computed into scratch
/// from the current operand state and committed only after the full
/// ascending-t scan — Jacobi within a row, Gauss-Seidel across rows. The
/// aliased blocked-FW panel updates (B ≡ C in the row panel, A ≡ C in the
/// column panel) are therefore deterministic and independent of the vector
/// width and of how a strip is cut into per-block calls.
///
/// The inner loop is the vector chain  cand = va ⊗ B-row,
/// mask = vimproves(cand, best), blend values, widen the mask to int64
/// lanes and blend the predB row — one branch-free pass per (t, j-vector).
template <typename S>
void pred_sweep_rows(MatrixView<const typename S::value_type> A,
                     MatrixView<const typename S::value_type> B,
                     MatrixView<typename S::value_type> C,
                     MatrixView<const std::int64_t> predB,
                     MatrixView<std::int64_t> predC, std::size_t r0,
                     std::size_t r1) {
  using T = typename S::value_type;
  const std::size_t n = C.cols(), k = A.cols();
  AlignedBuffer<T> best_buf(n);
  AlignedBuffer<std::int64_t> bp_buf(n);
  T* best = best_buf.data();
  std::int64_t* bp = bp_buf.data();
  for (std::size_t i = r0; i < r1; ++i) {
    std::copy_n(C.data() + i * C.ld(), n, best);
    std::copy_n(predC.data() + i * predC.ld(), n, bp);
    for (std::size_t t = 0; t < k; ++t) {
      const T av = A(i, t);
      const T* brow = B.data() + t * B.ld();
      const std::int64_t* prow = predB.data() + t * predB.ld();
      std::size_t j = 0;
      if constexpr (simd_ops<S>::available) {
        if constexpr (simd::kNativeBytes > 0) {
          constexpr std::size_t W = simd::native_lanes<T>();
          const auto va = simd::broadcast<T, W>(av);
          for (; j + W <= n; j += W) {
            const auto cand = simd_ops<S>::vmul(va, simd::load<T, W>(brow + j));
            const auto bv = simd::load<T, W>(best + j);
            const auto imp = simd_ops<S>::vimproves(cand, bv);
            // Most (t, j-group) pairs improve nothing once the running min
            // settles; skipping them keeps the predB row out of the memory
            // stream entirely, which is where a paths sweep spends its time.
            if (simd::vany(imp)) {
              simd::store<T, W>(best + j, simd::vselect(imp, cand, bv));
              simd::vblend_ids(imp, prow + j, bp + j);
            }
          }
        }
      }
      for (; j < n; ++j) {
        const T cand = S::mul(av, brow[j]);
        if (S::less_add(cand, best[j])) {
          best[j] = cand;
          bp[j] = prow[j];
        }
      }
    }
    std::copy_n(best, n, C.data() + i * C.ld());
    std::copy_n(bp, n, predC.data() + i * predC.ld());
  }
}

template <typename S>
void argmin_kernel(MatrixView<const typename S::value_type> A,
                   MatrixView<const typename S::value_type> B,
                   MatrixView<typename S::value_type> C,
                   MatrixView<std::int64_t> Arg, std::int64_t arg_offset) {
  using T = typename S::value_type;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T best = C(i, j);
      std::int64_t arg = -1;
      for (std::size_t t = 0; t < k; ++t) {
        const T cand = S::mul(A(i, t), B(t, j));
        if (S::less_add(cand, best)) {
          best = cand;
          arg = static_cast<std::int64_t>(t) + arg_offset;
        }
      }
      C(i, j) = best;
      if (arg >= 0) Arg(i, j) = arg;
    }
  }
}

}  // namespace parfw::srgemm::detail
