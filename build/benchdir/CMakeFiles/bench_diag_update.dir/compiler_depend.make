# Empty compiler generated dependencies file for bench_diag_update.
# This may be replaced when dependencies are built.
