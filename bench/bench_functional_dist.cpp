// §5.1 validation claim — end-to-end functional distributed runs.
//
// Paper: "In all cases, we experimentally confirmed that the output of
// our revised implementations match outputs of the sequential
// Floyd-Warshall baseline." This bench runs every variant for real on
// the in-process runtime (threads as ranks, actual data), validates the
// output against sequential FW, and reports wall time plus communication
// volume. On this 1-core host the times show overheads, not speedups;
// the cross-variant volume identity and correctness are the point.
#include <cstdio>

#include "core/floyd_warshall.hpp"
#include "dist/dc_apsp.hpp"
#include "dist/driver.hpp"
#include "fig_common.hpp"
#include "util/timer.hpp"

using namespace parfw;
using namespace parfw::dist;

int main() {
  bench::header(
      "Functional distributed runs (paper §5.1 output validation)",
      "all variants on a real 3x3-rank runtime, n=144, b=16, validated\n"
      "against sequential Floyd-Warshall bit for bit.");

  const std::size_t n = 144, b = 16;
  DenseEntryGen<float> gen(7777, 0.9, 1.0f, 90.0f, /*integral=*/true);
  auto expected = gen.full(static_cast<vertex_t>(n));
  floyd_warshall<MinPlus<float>>(expected.view());

  const auto grid = GridSpec::tiled(1, 3, 3, 1);  // 3x3 ranks, 3 nodes
  Table t({"variant", "wall ms", "messages", "MB total", "MB internode",
           "output == sequential"});
  for (Variant v : {Variant::kBaseline, Variant::kPipelined, Variant::kAsync,
                    Variant::kOffload}) {
    DistFwOptions opt;
    opt.variant = v;
    opt.block_size = b;
    if (v == Variant::kOffload) {
      opt.oog.mx = opt.oog.nx = 16;
      opt.oog.num_streams = 2;
    }
    const auto r = run_parallel_fw<MinPlus<float>>(n, gen, grid, 3, opt);
    const bool ok =
        max_abs_diff<float>(expected.view(), r.dist.view()) == 0.0;
    t.add_row({variant_name(v), Table::num(r.seconds * 1e3, 1),
               std::to_string(r.traffic.messages),
               Table::num(r.traffic.bytes_total / 1e6, 2),
               Table::num(r.traffic.bytes_internode / 1e6, 2),
               ok ? "yes" : "NO (BUG)"});
  }
  // The divide-and-conquer engine on the same runtime and input.
  {
    Matrix<float> gathered;
    Timer timer;
    const auto traffic = mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
      BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
      local.fill(gen);
      dc_apsp<MinPlus<float>>(world, local);
      auto out = local.gather(world);
      if (world.rank() == 0) gathered = std::move(out);
    }, {grid.node_model(3)});
    const bool ok =
        max_abs_diff<float>(expected.view(), gathered.view()) == 0.0;
    t.add_row({"dc-apsp [37]", Table::num(timer.seconds() * 1e3, 1),
               std::to_string(traffic.messages),
               Table::num(traffic.bytes_total / 1e6, 2),
               Table::num(traffic.bytes_internode / 1e6, 2),
               ok ? "yes" : "NO (BUG)"});
  }
  std::printf("%s", t.str().c_str());

  bench::footer(
      "expect: every row validates; the ParallelFw variants move the same\n"
      "total volume (tree and ring broadcasts are both volume-minimal);\n"
      "dc-apsp trades message count against volume (SUMMA sweeps).");
  return 0;
}
