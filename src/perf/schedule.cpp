#include "perf/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/diag_update.hpp"
#include "sched/ir.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace parfw::perf {

namespace {

/// Lowers single schedule-IR steps into per-rank op lists with the same
/// collective expansions (including node-aware relay order) as the
/// functional mpisim runtime. Unlike the runtime, which executes a
/// member's part of a collective when that member reaches it, lowering
/// emits exactly the ops of the one member whose step is being lowered —
/// so the IR's step order fully determines every process's program.
class ProgramBuilder {
 public:
  ProgramBuilder(const std::vector<int>& node_of, int ranks)
      : node_of_(node_of), progs_(static_cast<std::size_t>(ranks)) {}

  std::vector<RankProgram> take() { return std::move(progs_); }

  void comp(int w, double seconds, std::uint32_t k = 0,
            std::int16_t kind_src = -1, double flops = 0.0) {
    progs_[static_cast<std::size_t>(w)].push_back(
        Op{Op::Kind::kComp, seconds, -1, 0, 0, k, kind_src, flops});
  }
  void send(int src, int dst, std::int64_t bytes, std::int32_t tag,
            std::uint32_t k = 0, std::int16_t kind_src = -1) {
    progs_[static_cast<std::size_t>(src)].push_back(
        Op{Op::Kind::kSend, 0.0, dst, bytes, tag, k, kind_src});
  }
  void recv(int dst, int src, std::int32_t tag, std::uint32_t k = 0,
            std::int16_t kind_src = -1) {
    progs_[static_cast<std::size_t>(dst)].push_back(
        Op{Op::Kind::kRecv, 0.0, src, 0, tag, k, kind_src});
  }

  /// Node-aware member order — MUST match mpisim's Comm::relay_order.
  std::vector<int> relay_order(const std::vector<int>& members,
                               int root_idx) const {
    const int p = static_cast<int>(members.size());
    int max_node = 0;
    for (int w : members)
      max_node = std::max(max_node, node_of_[static_cast<std::size_t>(w)]);
    const long long nnodes = max_node + 1;
    const int root_node = node_of_[static_cast<std::size_t>(
        members[static_cast<std::size_t>(root_idx)])];
    std::vector<int> order{root_idx};
    std::vector<std::pair<long long, int>> rest;
    for (int i = 0; i < p; ++i) {
      if (i == root_idx) continue;
      const long long nd =
          (node_of_[static_cast<std::size_t>(
               members[static_cast<std::size_t>(i)])] -
           root_node + nnodes) %
          nnodes;
      rest.emplace_back(nd * p + i, i);
    }
    std::sort(rest.begin(), rest.end());
    for (const auto& [key, i] : rest) order.push_back(i);
    return order;
  }

  /// Binomial-tree broadcast: the ops of member `me_idx` only.
  void tree_member(const std::vector<int>& members, int root_idx, int me_idx,
                   std::int64_t bytes, std::int32_t tag, std::uint32_t k,
                   std::int16_t kind_src) {
    const int p = static_cast<int>(members.size());
    if (p <= 1 || bytes == 0) return;
    const std::vector<int> order = relay_order(members, root_idx);
    const int v = virtual_rank(order, me_idx);
    const int w = members[static_cast<std::size_t>(me_idx)];
    int mask = 1;
    while (mask < p) {
      if ((v & mask) != 0) {
        recv(w,
             members[static_cast<std::size_t>(
                 order[static_cast<std::size_t>(v ^ mask)])],
             tag, k, kind_src);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (v + mask < p)
        send(w,
             members[static_cast<std::size_t>(
                 order[static_cast<std::size_t>(v + mask)])],
             bytes, tag, k, kind_src);
      mask >>= 1;
    }
  }

  /// Segmented ring broadcast: the ops of member `me_idx` only. Few,
  /// large segments keep op counts tractable at 3072 ranks while still
  /// modelling the relay pipelining.
  void ring_member(const std::vector<int>& members, int root_idx, int me_idx,
                   std::int64_t bytes, std::int32_t tag, std::uint32_t k,
                   std::int16_t kind_src) {
    const int p = static_cast<int>(members.size());
    if (p <= 1 || bytes == 0) return;
    const std::vector<int> order = relay_order(members, root_idx);
    const int v = virtual_rank(order, me_idx);
    const int w = members[static_cast<std::size_t>(me_idx)];
    const std::int64_t nseg = std::clamp<std::int64_t>(bytes / (1 << 20), 1, 8);
    const std::int64_t seg = (bytes + nseg - 1) / nseg;
    for (std::int64_t s = 0; s < nseg; ++s) {
      const std::int64_t len = std::min(seg, bytes - s * seg);
      if (v > 0)
        recv(w,
             members[static_cast<std::size_t>(
                 order[static_cast<std::size_t>(v - 1)])],
             tag, k, kind_src);
      if (v + 1 < p)
        send(w,
             members[static_cast<std::size_t>(
                 order[static_cast<std::size_t>(v + 1)])],
             len, tag, k, kind_src);
    }
  }

  /// Segmented ring broadcast with BACKGROUND relays: the payload flows
  /// along per-rank NIC agents (process ids agent_of(r)), decoupled from
  /// the ranks' own programs. Rank-side ops: the root posts a zero-byte
  /// "ready" to its agent once the data exists; every other member waits
  /// for a zero-byte "done" from its agent at its own program point. The
  /// whole agent dataflow is emitted at the ROOT member's step (the
  /// collective's initiation point in the schedule), once.
  void ring_bg_member(const std::vector<int>& members, int root_idx,
                      int me_idx, std::int64_t bytes, std::int32_t tag,
                      const std::function<int(int)>& agent_of, std::uint32_t k,
                      std::int16_t kind_src) {
    const int p = static_cast<int>(members.size());
    if (p <= 1 || bytes == 0) return;
    const std::vector<int> order = relay_order(members, root_idx);
    const std::int64_t nseg = std::clamp<std::int64_t>(bytes / (1 << 20), 1, 8);
    const std::int64_t seg = (bytes + nseg - 1) / nseg;
    const std::int32_t ready_tag = tag + (1 << 22);
    const std::int32_t done_tag = tag + (1 << 23);

    const int w = members[static_cast<std::size_t>(me_idx)];
    if (me_idx != root_idx) {
      recv(w, agent_of(w), done_tag, k, kind_src);
      return;
    }
    send(w, agent_of(w), 0, ready_tag, k, kind_src);
    // Agent-side dataflow, in relay order.
    for (int v = 0; v < p; ++v) {
      const int wv = members[static_cast<std::size_t>(
          order[static_cast<std::size_t>(v)])];
      const int agent = agent_of(wv);
      const int succ_agent =
          v + 1 < p ? agent_of(members[static_cast<std::size_t>(
                          order[static_cast<std::size_t>(v + 1)])])
                    : -1;
      const int pred_agent =
          v > 0 ? agent_of(members[static_cast<std::size_t>(
                      order[static_cast<std::size_t>(v - 1)])])
                : -1;
      if (v == 0) {
        recv(agent, wv, ready_tag, k, kind_src);
        for (std::int64_t s2 = 0; s2 < nseg; ++s2)
          send(agent, succ_agent, std::min(seg, bytes - s2 * seg), tag, k,
               kind_src);
      } else {
        for (std::int64_t s2 = 0; s2 < nseg; ++s2) {
          recv(agent, pred_agent, tag, k, kind_src);
          if (succ_agent >= 0)
            send(agent, succ_agent, std::min(seg, bytes - s2 * seg), tag, k,
                 kind_src);
        }
        send(agent, wv, 0, done_tag, k, kind_src);
      }
    }
  }

 private:
  static int virtual_rank(const std::vector<int>& order, int me_idx) {
    for (int v = 0; v < static_cast<int>(order.size()); ++v)
      if (order[static_cast<std::size_t>(v)] == me_idx) return v;
    PARFW_CHECK_MSG(false, "member not in its own collective");
    return -1;
  }

  const std::vector<int>& node_of_;
  std::vector<RankProgram> progs_;
};

}  // namespace

BuiltProgram build_fw_program(const MachineConfig& m, const FwProblem& prob,
                              const dist::GridSpec& grid,
                              const std::vector<int>& node_of) {
  using dist::Variant;
  const int pr = grid.rows(), pc = grid.cols();
  const int P = grid.size();
  PARFW_CHECK(static_cast<int>(node_of.size()) == P);
  const bool bg_relays =
      prob.background_relays && prob.variant == Variant::kAsync;
  // Background relays add two NIC-agent processes per rank (row-panel and
  // col-panel chains get separate agents so their op streams never
  // interleave — provably deadlock-free FIFO chains).
  const int total_procs = bg_relays ? 3 * P : P;
  std::vector<int> full_node_of(static_cast<std::size_t>(total_procs));
  for (int i = 0; i < total_procs; ++i)
    full_node_of[static_cast<std::size_t>(i)] =
        node_of[static_cast<std::size_t>(i % P)];
  auto row_agent = [P](int w) { return P + w; };
  auto col_agent = [P](int w) { return 2 * P + w; };
  const double b = prob.b;
  const std::size_t nb = static_cast<std::size_t>(prob.n / prob.b);

  // The variant's schedule — the same IR dist::parallel_fw executes.
  sched::ScheduleParams sp;
  sp.variant = prob.variant;
  sp.nb = nb;
  sp.b = static_cast<std::size_t>(b);
  sp.word_bytes = static_cast<std::size_t>(m.word_bytes);
  sp.pred_word_bytes = prob.track_paths ? sizeof(std::int64_t) : 0;
  // Paths mode pins the diagonal to classic FW (log-squaring loses the
  // argmin chain structure), exactly as the data interpreter does.
  sp.diag_flops = diag_update_flops(
      static_cast<std::size_t>(b),
      prob.track_paths ? DiagStrategy::kClassic : DiagStrategy::kLogSquaring);
  const sched::Schedule schedule = sched::build_schedule(grid, sp);

  ProgramBuilder builder(full_node_of, total_procs);
  const double comp_scale = prob.comm_only ? 0.0 : 1.0;
  // Deterministic straggler jitter: factor in [1, 1 + comp_jitter],
  // hashed from (rank, per-rank op ordinal).
  std::vector<std::uint64_t> jitter_ctr(static_cast<std::size_t>(P), 0);
  auto jittered = [&](int w, double secs) {
    if (prob.comp_jitter <= 0.0 || secs <= 0.0) return secs;
    std::uint64_t h = 0x9e3779b97f4a7c15ull *
                      (static_cast<std::uint64_t>(w) * 1000003 +
                       ++jitter_ctr[static_cast<std::size_t>(w)]);
    const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    return secs * (1.0 + prob.comp_jitter * u);
  };

  // Communicator member lists (world ranks).
  std::vector<std::vector<int>> col_members(static_cast<std::size_t>(pc));
  std::vector<std::vector<int>> row_members(static_cast<std::size_t>(pr));
  for (int r = 0; r < pr; ++r)
    for (int c = 0; c < pc; ++c) {
      const int w = grid.world_rank({r, c});
      col_members[static_cast<std::size_t>(c)].push_back(w);  // index r
      row_members[static_cast<std::size_t>(r)].push_back(w);  // index c
    }

  // Compute ops run at the full GPU rate; the DES serialises the two
  // ranks sharing a GPU on the device resource, which yields the
  // effective per-rank half rate without double counting.
  const double rate = m.srgemm_flops;
  auto owned = [nb](int mine, int p) {
    const std::size_t ms = static_cast<std::size_t>(mine);
    return ms >= nb ? 0.0
                    : static_cast<double>((nb - ms - 1) /
                                              static_cast<std::size_t>(p) +
                                          1);
  };
  // Offloaded OuterUpdate: the IR's flop count does not model the
  // streaming pipeline, so cost it with the §4.5 model instead — chunked
  // through the device, hostUpdate at the contended per-rank DRAM share.
  auto offload_outer_secs = [&](int r, int c) {
    const double mloc = owned(r, pr) * b;
    const double nloc = owned(c, pc) * b;
    MachineConfig shared = m;
    shared.dram_bw = m.dram_bw_shared;
    const double mx = std::min(prob.offload_mx, std::max(mloc, 1.0));
    const double nx = std::min(prob.offload_mx, std::max(nloc, 1.0));
    // Whole-strip phase totals (panels uploaded once, §4.4); fill/drain
    // adds roughly one chunk's worth of the non-overlapped phases.
    const int s = std::clamp(prob.offload_streams, 1, 3);
    OogCost whole = model_oog_cost(shared, mloc, nloc, b);
    if (prob.track_paths) {
      // Paths: Xpred chunks come back alongside every X chunk, the
      // row-panel pred tiles ride the B upload (the col panel has no pred
      // sibling), and hostUpdate makes the same three passes over the
      // int64 pred arrays as over the values.
      const double pw = static_cast<double>(sizeof(std::int64_t));
      whole.t1 += (mloc * nloc + nloc * b) * pw / m.hd_bw;
      whole.t2 += 3.0 * mloc * nloc * pw / shared.dram_bw;
    }
    const double chunk_frac = (mx * nx) / (mloc * nloc);
    const double fill =
        (whole.t0 + whole.t1 + whole.t2 - whole.total(s)) * chunk_frac;
    return whole.total(s) + fill;
  };

  for (const sched::Step& step : schedule.steps) {
    const int w = step.rank;
    const sched::Op& op = step.op;
    const auto kind_src = static_cast<std::int16_t>(op.kind);

    if (sched::is_comp(op.kind)) {
      double secs;
      if (op.offload) {
        const dist::GridCoord c = grid.coord_of(w);
        secs = offload_outer_secs(c.row, c.col);
      } else {
        secs = op.flops / rate;
      }
      builder.comp(w, jittered(w, comp_scale * secs), op.k, kind_src,
                   op.flops);
      continue;
    }

    // Comm step: resolve the collective's member list and this member's
    // index within it from the op kind and the rank's grid coordinate.
    const dist::GridCoord me = grid.coord_of(w);
    const std::size_t k = op.k;
    const std::vector<int>* members = nullptr;
    int me_idx = -1;
    bool row_chain = false;  // which NIC-agent family (background relays)
    switch (op.kind) {
      case sched::OpKind::kDiagBcastRow:
        members = &row_members[k % static_cast<std::size_t>(pr)];
        me_idx = me.col;
        break;
      case sched::OpKind::kDiagBcastCol:
        members = &col_members[k % static_cast<std::size_t>(pc)];
        me_idx = me.row;
        break;
      case sched::OpKind::kRowPanelBcast:
        members = &col_members[static_cast<std::size_t>(me.col)];
        me_idx = me.row;
        row_chain = true;
        break;
      case sched::OpKind::kColPanelBcast:
        members = &row_members[static_cast<std::size_t>(me.row)];
        me_idx = me.col;
        break;
      default: PARFW_CHECK_MSG(false, "unexpected comm op kind");
    }

    if (op.coll == sched::CollKind::kRing && bg_relays) {
      builder.ring_bg_member(*members, op.root, me_idx, op.bytes, op.tag,
                             row_chain ? std::function<int(int)>(row_agent)
                                       : std::function<int(int)>(col_agent),
                             op.k, kind_src);
    } else if (op.coll == sched::CollKind::kRing) {
      builder.ring_member(*members, op.root, me_idx, op.bytes, op.tag, op.k,
                          kind_src);
    } else {
      builder.tree_member(*members, op.root, me_idx, op.bytes, op.tag, op.k,
                          kind_src);
    }
  }
  return BuiltProgram{builder.take(), std::move(full_node_of)};
}

std::vector<RankProgram> build_bcast_program(const MachineConfig& m, int ranks,
                                             std::int64_t bytes, bool ring,
                                             const std::vector<int>& node_of) {
  (void)m;
  ProgramBuilder builder(node_of, ranks);
  std::vector<int> members(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) members[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < ranks; ++i) {
    if (ring)
      builder.ring_member(members, 0, i, bytes, 1, 0, -1);
    else
      builder.tree_member(members, 0, i, bytes, 1, 0, -1);
  }
  return builder.take();
}

WireTotals program_traffic(const std::vector<RankProgram>& programs,
                           const std::vector<int>& node_of) {
  PARFW_CHECK(programs.size() == node_of.size());
  WireTotals t;
  for (std::size_t w = 0; w < programs.size(); ++w)
    for (const Op& op : programs[w]) {
      if (op.kind != Op::Kind::kSend) continue;
      ++t.sends;
      t.bytes_total += op.bytes;
      if (node_of[w] != node_of[static_cast<std::size_t>(op.peer)])
        t.bytes_internode += op.bytes;
    }
  return t;
}

}  // namespace parfw::perf
