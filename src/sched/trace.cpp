#include "sched/trace.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include <chrono>

namespace parfw::sched {

namespace {
// One process-wide epoch, captured during static initialisation — BEFORE
// any rank thread exists — so every thread measures against the same
// origin. (The previous function-local static was initialised by whichever
// thread called first; init is thread-safe, but an epoch captured
// mid-run would sit later than events other threads had already
// timestamped relative to their own expectations.)
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();
}  // namespace

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_epoch)
      .count();
}

void StatsTraceSink::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[e.name];
  ++s.count;
  s.bytes += e.bytes;
  s.flops += e.flops;
  s.seconds += e.t_end - e.t_begin;
}

StatsTraceSink::OpStats StatsTraceSink::of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  return it == stats_.end() ? OpStats{} : it->second;
}

StatsTraceSink::OpStats StatsTraceSink::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats out;
  for (const auto& [name, s] : stats_) {
    out.count += s.count;
    out.bytes += s.bytes;
    out.flops += s.flops;
    out.seconds += s.seconds;
  }
  return out;
}

std::map<std::string, StatsTraceSink::OpStats> StatsTraceSink::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChromeTraceSink::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(e);
}

std::size_t ChromeTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ChromeTraceSink::write(std::ostream& os) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  double epoch = std::numeric_limits<double>::max();
  for (const TraceEvent& e : events) epoch = std::min(epoch, e.t_begin);
  if (events.empty()) epoch = 0.0;

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    const double us = (e.t_begin - epoch) * 1e6;
    const double dur = (e.t_end - e.t_begin) * 1e6;
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"sched\",";
    if (dur > 0.0)
      os << "\"ph\":\"X\",\"dur\":" << dur << ",";
    else
      os << "\"ph\":\"i\",\"s\":\"t\",";
    os << "\"ts\":" << us << ",\"pid\":0,\"tid\":" << e.rank
       << ",\"args\":{\"k\":" << e.k << ",\"bytes\":" << e.bytes
       << ",\"flops\":" << e.flops << "}}";
  }
  os << "]}\n";
}

}  // namespace parfw::sched
