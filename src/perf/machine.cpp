#include "perf/machine.hpp"

namespace parfw::perf {

MachineConfig MachineConfig::summit() {
  return MachineConfig{};  // defaults are the Summit numbers
}

}  // namespace parfw::perf
