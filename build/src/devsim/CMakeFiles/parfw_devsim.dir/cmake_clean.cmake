file(REMOVE_RECURSE
  "CMakeFiles/parfw_devsim.dir/device.cpp.o"
  "CMakeFiles/parfw_devsim.dir/device.cpp.o.d"
  "CMakeFiles/parfw_devsim.dir/stream.cpp.o"
  "CMakeFiles/parfw_devsim.dir/stream.cpp.o.d"
  "libparfw_devsim.a"
  "libparfw_devsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_devsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
