// Distributed checkpoint/restart (DESIGN.md "Resilience").
//
// At a coordinated kCheckpoint cut (a barrier in dist::parallel_fw) every
// rank writes one v2 blob — its BlockCyclicMatrix local tiles plus the
// schedule position (variant, k0, sched op index) — to the run's
// CheckpointStore under a key derived from (k0, world rank). Once ALL
// ranks' blobs are stored (second barrier), rank 0 writes a small commit
// record naming k0; a checkpoint without a commit record does not exist
// as far as restart is concerned, so a crash mid-snapshot falls back to
// the previous committed cut (whose blobs live under different keys).
//
// Restart (driver.hpp supervision loop): every rank reads the committed
// k0's blob back into a freshly laid-out BlockCyclicMatrix and re-enters
// parallel_fw_resume at start_k = k0. The resumed schedule re-derives the
// panel buffers from the tiles (sched::ScheduleParams::start_k), so tiles
// are the ONLY state a blob needs to carry.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "dist/block_cyclic.hpp"
#include "sched/variant.hpp"

namespace parfw::dist {

/// Where in the generated schedule a checkpoint cut sits.
struct SchedulePosition {
  sched::Variant variant = sched::Variant::kBaseline;
  std::uint64_t k0 = 0;              ///< first unfinished pivot iteration
  std::uint64_t sched_op_index = 0;  ///< global step index of the cut
};

inline std::string rank_checkpoint_key(std::uint64_t k0, int world_rank) {
  return "ckpt-k" + std::to_string(k0) + "-rank-" + std::to_string(world_rank);
}
inline constexpr const char* kCommitKey = "commit";

/// Coordinated-cut commit record: written by rank 0 AFTER every rank's
/// blob for k0 is in the store. Restart trusts only committed cuts.
struct CommitRecord {
  static constexpr std::uint64_t kMagic = 0x50464b43'434d5431ull;  // "..CMT1"
  std::uint64_t magic = kMagic;
  std::uint64_t k0 = 0;
  std::uint32_t variant = 0;
  std::uint32_t world_size = 0;
  std::uint64_t n = 0;
  std::uint64_t block_size = 0;
  std::uint64_t sched_op_index = 0;
};

inline void write_commit(CheckpointStore& store, const CommitRecord& rec) {
  store.put(kCommitKey,
            std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(&rec), sizeof(rec)));
}

inline std::optional<CommitRecord> read_commit(const CheckpointStore& store) {
  auto blob = store.get(kCommitKey);
  if (!blob.has_value() || blob->size() != sizeof(CommitRecord))
    return std::nullopt;
  CommitRecord rec;
  std::memcpy(&rec, blob->data(), sizeof(rec));
  if (rec.magic != CommitRecord::kMagic) return std::nullopt;
  return rec;
}

/// Snapshot this rank's local tiles + schedule position. Returns the blob
/// size in bytes (for TrafficStats::checkpoint_bytes). When `pred` is set
/// (a paths run) its local tiles follow the value payload row-for-row and
/// ext.pred_elem_size records their element width — the checkpoint-v2
/// pred extension. Value-only blobs are byte-identical to what older
/// producers wrote.
template <typename T>
std::size_t save_rank_checkpoint(
    CheckpointStore& store, const BlockCyclicMatrix<T>& a,
    const SchedulePosition& pos,
    const BlockCyclicMatrix<std::int64_t>* pred = nullptr) {
  const std::size_t b = a.block_size();
  const std::size_t nlr = a.local_block_rows(), nlc = a.local_block_cols();

  CheckpointHeader h;
  h.elem_size = sizeof(T);
  h.n = a.n();
  h.next_block = pos.k0;
  h.block_size = b;

  CheckpointExtV2 ext;
  ext.variant = static_cast<std::uint32_t>(pos.variant);
  ext.grid_rows = static_cast<std::uint32_t>(a.grid().rows());
  ext.grid_cols = static_cast<std::uint32_t>(a.grid().cols());
  ext.coord_row = a.coord().row;
  ext.coord_col = a.coord().col;
  ext.pred_elem_size =
      pred != nullptr ? static_cast<std::uint32_t>(sizeof(std::int64_t)) : 0;
  ext.sched_op_index = pos.sched_op_index;
  ext.tile_count = nlr * nlc;

  std::ostringstream out(std::ios::binary);
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(&ext), sizeof(ext));
  for (std::size_t il = 0; il < nlr; ++il)
    for (std::size_t jl = 0; jl < nlc; ++jl) {
      CheckpointTileRef ref{a.global_row(il), a.global_col(jl)};
      out.write(reinterpret_cast<const char*>(&ref), sizeof(ref));
    }
  const Matrix<T>& local = a.local();
  auto lv = local.view();
  for (std::size_t i = 0; i < lv.rows(); ++i)
    out.write(reinterpret_cast<const char*>(lv.data() + i * lv.ld()),
              static_cast<std::streamsize>(lv.cols() * sizeof(T)));
  if (pred != nullptr) {
    PARFW_CHECK_MSG(pred->block_size() == b && pred->n() == a.n(),
                    "pred layout does not match the value matrix");
    auto pv = pred->local().view();
    for (std::size_t i = 0; i < pv.rows(); ++i)
      out.write(reinterpret_cast<const char*>(pv.data() + i * pv.ld()),
                static_cast<std::streamsize>(pv.cols() *
                                             sizeof(std::int64_t)));
  }
  PARFW_CHECK_MSG(out.good(), "rank checkpoint serialisation failed");

  const int w = a.grid().world_rank(a.coord());
  return put_blob(store, rank_checkpoint_key(pos.k0, w), std::move(out).str());
}

/// Restore this rank's tiles from the blob committed for iteration k0.
/// `a` must already have the run's layout (n, b, grid, coord); the blob's
/// geometry and tile manifest are validated against it. Pass `pred` to
/// restore a paths run: the blob must then carry the pred payload
/// (ext.pred_elem_size = 8) — a resumed paths run cannot reconstruct
/// predecessors from distances, so a value-only blob is an error. The
/// reverse (blob has preds, caller wants values only) is allowed; the
/// pred payload trails the value rows and is simply not read.
template <typename T>
SchedulePosition load_rank_checkpoint(
    const CheckpointStore& store, std::uint64_t k0, BlockCyclicMatrix<T>& a,
    BlockCyclicMatrix<std::int64_t>* pred = nullptr) {
  const int w = a.grid().world_rank(a.coord());
  const std::string key = rank_checkpoint_key(k0, w);
  auto blob = store.get(key);
  PARFW_CHECK_MSG(blob.has_value(), "no rank checkpoint under '" << key << "'");
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob->data()), blob->size()),
      std::ios::binary);

  CheckpointExtV2 ext;
  const CheckpointHeader h = read_checkpoint_header<T>(in, ext);
  PARFW_CHECK_MSG(h.version >= 2 && ext.tile_count > 0,
                  "not a per-rank tile checkpoint: '" << key << "'");
  PARFW_CHECK_MSG(h.n == a.n() && h.block_size == a.block_size(),
                  "checkpoint geometry mismatch (n=" << h.n << " b="
                                                     << h.block_size << ")");
  PARFW_CHECK_MSG(ext.grid_rows == static_cast<std::uint32_t>(a.grid().rows()) &&
                      ext.grid_cols ==
                          static_cast<std::uint32_t>(a.grid().cols()) &&
                      ext.coord_row == a.coord().row &&
                      ext.coord_col == a.coord().col,
                  "checkpoint grid/coordinate mismatch for rank " << w);

  const std::size_t nlr = a.local_block_rows(), nlc = a.local_block_cols();
  PARFW_CHECK_MSG(ext.tile_count == nlr * nlc, "tile manifest length mismatch");
  for (std::size_t il = 0; il < nlr; ++il)
    for (std::size_t jl = 0; jl < nlc; ++jl) {
      CheckpointTileRef ref;
      in.read(reinterpret_cast<char*>(&ref), sizeof(ref));
      PARFW_CHECK_MSG(in.good() && ref.block_row == a.global_row(il) &&
                          ref.block_col == a.global_col(jl),
                      "tile manifest entry mismatch at (" << il << "," << jl
                                                          << ")");
    }
  auto lv = a.local().view();
  for (std::size_t i = 0; i < lv.rows(); ++i)
    in.read(reinterpret_cast<char*>(lv.data() + i * lv.ld()),
            static_cast<std::streamsize>(lv.cols() * sizeof(T)));
  PARFW_CHECK_MSG(in.good(), "rank checkpoint payload truncated");
  if (pred != nullptr) {
    PARFW_CHECK_MSG(ext.pred_elem_size == sizeof(std::int64_t),
                    "checkpoint '" << key << "' carries no pred payload "
                                   << "(pred_elem_size="
                                   << ext.pred_elem_size << ")");
    PARFW_CHECK_MSG(pred->block_size() == a.block_size() &&
                        pred->n() == a.n(),
                    "pred layout does not match the value matrix");
    auto pv = pred->local().view();
    for (std::size_t i = 0; i < pv.rows(); ++i)
      in.read(reinterpret_cast<char*>(pv.data() + i * pv.ld()),
              static_cast<std::streamsize>(pv.cols() * sizeof(std::int64_t)));
    PARFW_CHECK_MSG(in.good(), "rank checkpoint pred payload truncated");
  }

  SchedulePosition pos;
  pos.variant = static_cast<sched::Variant>(ext.variant);
  pos.k0 = h.next_block;
  pos.sched_op_index = ext.sched_op_index;
  return pos;
}

}  // namespace parfw::dist
