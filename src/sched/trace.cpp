#include "sched/trace.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <tuple>

#include <chrono>

namespace parfw::sched {

namespace {
// One process-wide epoch, captured during static initialisation — BEFORE
// any rank thread exists — so every thread measures against the same
// origin. (The previous function-local static was initialised by whichever
// thread called first; init is thread-safe, but an epoch captured
// mid-run would sit later than events other threads had already
// timestamped relative to their own expectations.)
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();
}  // namespace

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_epoch)
      .count();
}

void StatsTraceSink::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[e.name];
  ++s.count;
  s.bytes += e.bytes;
  s.flops += e.flops;
  s.seconds += e.t_end - e.t_begin;
}

StatsTraceSink::OpStats StatsTraceSink::of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  return it == stats_.end() ? OpStats{} : it->second;
}

StatsTraceSink::OpStats StatsTraceSink::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  OpStats out;
  for (const auto& [name, s] : stats_) {
    out.count += s.count;
    out.bytes += s.bytes;
    out.flops += s.flops;
    out.seconds += s.seconds;
  }
  return out;
}

std::map<std::string, StatsTraceSink::OpStats> StatsTraceSink::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ChromeTraceSink::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++truncated_;
    return;
  }
  events_.push_back(e);
}

std::size_t ChromeTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t ChromeTraceSink::truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_;
}

TraceEvent make_truncated_marker(int rank, double t, std::uint64_t missing) {
  TraceEvent m;
  m.rank = rank;
  m.name = kTruncatedMarker;
  m.t_begin = t;
  m.t_end = t;
  m.bytes = static_cast<std::int64_t>(missing);
  return m;
}

namespace {
// Join key of a kSend/kRecv pair: the channel coordinate. The send's
// (rank, peer) is the recv's (peer, rank).
struct FlowKey {
  std::uint64_t ctx;
  int src;
  int dst;
  std::int32_t tag;
  std::uint64_t seq;
  bool operator<(const FlowKey& o) const {
    return std::tie(ctx, src, dst, tag, seq) <
           std::tie(o.ctx, o.src, o.dst, o.tag, o.seq);
  }
};

FlowKey flow_key_of(const TraceEvent& e) {
  if (e.ek == EventKind::kSend)
    return FlowKey{e.ctx, e.rank, static_cast<int>(e.peer), e.tag, e.seq};
  return FlowKey{e.ctx, static_cast<int>(e.peer), e.rank, e.tag, e.seq};
}
}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& os) {
  double epoch = std::numeric_limits<double>::max();
  for (const TraceEvent& e : events) epoch = std::min(epoch, e.t_begin);
  if (events.empty()) epoch = 0.0;

  // Pair sends with recvs so each matched handoff gets one flow id. A
  // send whose recv was never recorded (dropped message, trace cut short)
  // simply gets no arrow.
  std::map<FlowKey, std::size_t> send_of;
  std::vector<long long> flow_id(events.size(), -1);
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i].ek == EventKind::kSend) send_of[flow_key_of(events[i])] = i;
  long long next_id = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].ek != EventKind::kRecv) continue;
    auto it = send_of.find(flow_key_of(events[i]));
    if (it == send_of.end()) continue;
    flow_id[it->second] = next_id;
    flow_id[i] = next_id;
    ++next_id;
  }

  // Default stream precision (6 significant digits) truncates microsecond
  // timestamps once a trace is ~1 s long; the causal loader needs the
  // round trip to stay faithful.
  const auto old_precision = os.precision(15);

  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (!first) os << ",";
    first = false;
    const double us = (e.t_begin - epoch) * 1e6;
    const double dur = (e.t_end - e.t_begin) * 1e6;
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"sched\",";
    if (dur > 0.0)
      os << "\"ph\":\"X\",\"dur\":" << dur << ",";
    else
      os << "\"ph\":\"i\",\"s\":\"t\",";
    os << "\"ts\":" << us << ",\"pid\":0,\"tid\":" << e.rank
       << ",\"args\":{\"k\":" << e.k << ",\"bytes\":" << e.bytes
       << ",\"flops\":" << e.flops;
    if (e.ek != EventKind::kSpan) {
      os << ",\"ek\":" << static_cast<int>(e.ek) << ",\"peer\":" << e.peer
         << ",\"tag\":" << e.tag << ",\"seq\":" << e.seq
         << ",\"ctx\":" << e.ctx;
      if (e.attempt != 0) os << ",\"att\":" << e.attempt;
    } else if (e.tag != 0) {
      os << ",\"tag\":" << e.tag;
    }
    os << "}}";
    if (flow_id[i] >= 0) {
      // Flow arrows: "s" anchors inside the send slice, "f" (binding
      // point "e": enclosing slice end) inside the recv slice. Same
      // cat/name/id on both halves joins them.
      if (e.ek == EventKind::kSend)
        os << ",{\"name\":\"msgflow\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
           << flow_id[i] << ",\"ts\":" << us << ",\"pid\":0,\"tid\":" << e.rank
           << "}";
      else
        os << ",{\"name\":\"msgflow\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":"
           << "\"e\",\"id\":" << flow_id[i] << ",\"ts\":"
           << (e.t_end - epoch) * 1e6 << ",\"pid\":0,\"tid\":" << e.rank
           << "}";
    }
  }
  os << "]}\n";
  os.precision(old_precision);
}

void ChromeTraceSink::write(std::ostream& os) const {
  std::vector<TraceEvent> events;
  std::uint64_t truncated = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    truncated = truncated_;
  }
  if (truncated > 0) {
    // The TAIL is missing (drop-new cap): the marker sits at the last
    // recorded timestamp.
    const double t = events.empty() ? 0.0 : events.back().t_end;
    events.push_back(make_truncated_marker(0, t, truncated));
  }
  write_chrome_trace(events, os);
}

void CollectTraceSink::record(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++truncated_;
    return;
  }
  events_.push_back(e);
}

std::vector<TraceEvent> CollectTraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t CollectTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t CollectTraceSink::truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_;
}

RingTraceSink::RingTraceSink(std::size_t capacity_bytes)
    : buf_(std::max<std::size_t>(1, capacity_bytes / sizeof(TraceEvent))) {}

void RingTraceSink::record(const TraceEvent& e) {
  lock();
  buf_[next_] = e;
  ++next_;
  if (next_ == buf_.size()) next_ = 0;
  if (count_ < buf_.size()) ++count_;
  ++total_;
  unlock();
}

std::size_t RingTraceSink::size() const {
  lock();
  const std::size_t out = count_;
  unlock();
  return out;
}

std::uint64_t RingTraceSink::dropped() const {
  lock();
  const std::uint64_t out = total_ - count_;
  unlock();
  return out;
}

std::vector<TraceEvent> RingTraceSink::window() const {
  lock();
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest entry sits at the cursor once the ring has wrapped.
  const std::size_t start = count_ < buf_.size() ? 0 : next_;
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(buf_[(start + i) % buf_.size()]);
  unlock();
  return out;
}

void RingTraceSink::write_chrome(std::ostream& os) const {
  std::vector<TraceEvent> events = window();
  const std::uint64_t missing = dropped();
  if (missing > 0) {
    // The HEAD is missing (drop-oldest ring): the marker sits at the
    // window's first timestamp.
    const double t = events.empty() ? 0.0 : events.front().t_begin;
    events.insert(events.begin(), make_truncated_marker(0, t, missing));
  }
  write_chrome_trace(events, os);
}

}  // namespace parfw::sched
