// High-level APSP front door.
//
// apsp() picks an execution strategy (sequential FW, blocked FW, blocked +
// thread parallel) over a chosen semiring and returns the closed distance
// matrix, optionally with predecessors for path queries. The distributed
// strategy (kDistributed) is declared here but dispatched by parfw::solve
// in dist/solve.hpp — the ONE front door covering every strategy — so that
// core stays free of the runtime/grid machinery; calling apsp() directly
// with kDistributed is an error pointing there.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/blocked_fw.hpp"
#include "core/blocked_fw_paths.hpp"
#include "core/checkpoint_store.hpp"
#include "core/floyd_warshall.hpp"
#include "core/query.hpp"
#include "core/solve_options.hpp"
#include "graph/graph.hpp"
#include "sched/variant.hpp"

namespace parfw {

namespace telemetry {
class Registry;  // fwd: core carries the pointer, never the dependency
}

namespace sched {
class TraceSink;          // fwd: sched/trace.hpp
class ScheduleObserver;   // fwd: sched/ir.hpp
}

enum class ApspAlgorithm {
  kSequential,       ///< Algorithm 1
  kBlocked,          ///< Algorithm 2, single thread
  kBlockedParallel,  ///< Algorithm 2, SRGEMM over the global thread pool
  kDistributed,      ///< ParallelFw over mpisim (dispatched by parfw::solve)
};

/// Distributed execution strategy (ApspAlgorithm::kDistributed). The grid
/// is described by shape here and materialised as a dist::GridSpec by
/// solve(), so this header needs no dist dependency.
struct DistStrategy {
  /// kAuto asks solve() to pick the whole schedule configuration —
  /// variant, placement, block size, offload depth — through the causal
  /// autotuner (src/tune/): grid_rows·grid_cols then only fixes the RANK
  /// COUNT and ranks_per_node the node size; the winner (searched, or
  /// loaded from the PARFW_TUNE_CACHE manifest) overrides the shape knobs
  /// below and SolveCommon::block_size before the run.
  sched::Variant variant = sched::Variant::kAsync;
  int grid_rows = 2, grid_cols = 2;  ///< process grid P_r x P_c
  /// NIC accounting (paper §3.4.1): ranks sharing a node.
  int ranks_per_node = 1;
  /// Paper Figure 1 +Reordering placement: node grid of
  /// (grid_rows/node_rows) x (grid_cols/node_cols) tiles. When set,
  /// ranks_per_node is implied by the tile size.
  bool tiled = false;
  int node_rows = 1, node_cols = 1;
  /// Checkpoint/restart + runtime reliability envelope.
  ResilienceOptions resilience{};
  /// kOffload ooGSrGemm X-buffer depth s ∈ 1..3 (offload::OogConfig::
  /// num_streams); ignored by the other variants. kAuto sets it from the
  /// winning candidate.
  std::size_t oog_streams = 3;
  /// kAuto objective: makespan + tune_stall_weight · critical-path stall
  /// seconds (tune::TuneOptions::stall_weight; 0 = pure makespan).
  double tune_stall_weight = 1.0;
  /// When set, solve() threads this registry into the distributed
  /// interpreter (fw.phase.* series) and kAuto publishes the tune.*
  /// series — predicted vs achieved seconds included — into it.
  telemetry::Registry* metrics = nullptr;
  /// When set, solve() threads this sink into the distributed interpreter
  /// AND the mpisim runtime: every executed schedule op, message delivery,
  /// retransmission and offload pipeline stage is recorded into it. This
  /// is how the flight recorder (sched::RingTraceSink) and the live run
  /// monitor (monitor::RunMonitor) observe a front-door run. Must be
  /// thread-safe. Not owned.
  sched::TraceSink* trace = nullptr;
  /// When set, every rank thread hands over the materialised Schedule
  /// before executing (see dist::DistFwOptions::schedule_observer) — with
  /// --variant auto this is the RESOLVED winner's schedule, so a monitor
  /// wired here tracks whatever the tuner actually picked. Not owned.
  sched::ScheduleObserver* schedule_observer = nullptr;
  /// When set, the finished run is published into this store as a served
  /// tile manifest (per-rank final tiles + commit, k0 = nb) that the
  /// serving tier (serve::PathService) opens directly. Not owned.
  CheckpointStore* publish_store = nullptr;
};

struct ApspOptions : SolveCommon {
  ApspAlgorithm algorithm = ApspAlgorithm::kBlockedParallel;
  bool track_paths = false;
  /// Refuse to produce results containing a negative cycle (min-plus only);
  /// throws check_error instead.
  bool reject_negative_cycles = false;
  /// Used iff algorithm == kDistributed.
  DistStrategy dist{};
};

/// Result of an APSP solve. dist(i,j) is the closed semiring distance;
/// pred is present iff track_paths was set.
template <typename T>
struct ApspResult {
  Matrix<T> dist;
  std::optional<Matrix<std::int64_t>> pred;

  /// Answer one point-to-point query. The result always carries the
  /// distance; status distinguishes found / unreachable / paths-not-
  /// tracked, and the path is reconstructed only when `want_path` and
  /// status == kFound. This is the in-memory oracle the serving tier
  /// (serve::PathService) must match bit for bit.
  QueryResult<T> query(std::int64_t src, std::int64_t dst,
                       bool want_path = true) const;

  /// Answer a batch through the shared query API (core/query.hpp).
  std::vector<QueryResult<T>> answer(const QueryBatch& batch) const;

  /// Shortest path src→dst (vertex ids, inclusive); empty if unreachable
  /// or paths were not tracked — callers cannot tell which.
  [[deprecated("returns {} for both 'unreachable' and 'paths not tracked'; "
               "use query()/answer() which carry an explicit PathStatus")]]
  std::vector<std::int64_t> path(std::int64_t src, std::int64_t dst) const;
};

/// Solve APSP on a graph over semiring S (default: the paper's min-plus).
template <typename S>
ApspResult<typename S::value_type> apsp(const Graph& g,
                                        const ApspOptions& opt = {}) {
  using T = typename S::value_type;
  PARFW_CHECK_MSG(opt.algorithm != ApspAlgorithm::kDistributed,
                  "kDistributed dispatches through parfw::solve "
                  "(dist/solve.hpp), which owns the runtime");
  ApspResult<T> result;
  result.dist = g.distance_matrix<S>();
  auto d = result.dist.view();

  if (opt.track_paths) {
    result.pred.emplace(d.rows(), d.cols());
    init_predecessors<S>(d, result.pred->view());
    if (opt.algorithm == ApspAlgorithm::kSequential)
      floyd_warshall_paths<S>(d, result.pred->view());
    else
      blocked_floyd_warshall_paths<S>(d, result.pred->view(), opt.block_size);
  } else {
    switch (opt.algorithm) {
      case ApspAlgorithm::kSequential:
        floyd_warshall<S>(d);
        break;
      case ApspAlgorithm::kBlocked: {
        BlockedFwOptions bopt;
        static_cast<SolveCommon&>(bopt) = opt;  // shared knobs, verbatim
        blocked_floyd_warshall<S>(d, bopt);
        break;
      }
      case ApspAlgorithm::kBlockedParallel: {
        BlockedFwOptions bopt;
        static_cast<SolveCommon&>(bopt) = opt;
        bopt.pool = &ThreadPool::global();
        blocked_floyd_warshall<S>(d, bopt);
        break;
      }
      case ApspAlgorithm::kDistributed: break;  // rejected above
    }
  }

  if (opt.reject_negative_cycles) {
    PARFW_CHECK_MSG(!has_negative_cycle<S>(d),
                    "input graph contains a negative cycle");
  }
  return result;
}

template <typename T>
QueryResult<T> ApspResult<T>::query(std::int64_t src, std::int64_t dst,
                                    bool want_path) const {
  const auto n = static_cast<std::int64_t>(dist.view().rows());
  PARFW_CHECK_MSG(src >= 0 && src < n && dst >= 0 && dst < n,
                  "query (" << src << ", " << dst << ") out of range for n="
                            << n);
  QueryResult<T> r;
  r.distance = dist.view()(static_cast<std::size_t>(src),
                           static_cast<std::size_t>(dst));
  if (!pred.has_value()) {
    r.status = PathStatus::kNotTracked;
    return r;
  }
  auto pv = pred->view();
  if (src != dst && pv(static_cast<std::size_t>(src),
                       static_cast<std::size_t>(dst)) < 0) {
    r.status = PathStatus::kUnreachable;
    return r;
  }
  r.status = PathStatus::kFound;
  if (want_path) r.path = reconstruct_path(pv, src, dst);
  return r;
}

template <typename T>
std::vector<QueryResult<T>> ApspResult<T>::answer(
    const QueryBatch& batch) const {
  std::vector<QueryResult<T>> out;
  out.reserve(batch.pairs.size());
  for (const PathQuery& q : batch.pairs)
    out.push_back(query(q.src, q.dst, batch.want_paths));
  return out;
}

template <typename T>
std::vector<std::int64_t> ApspResult<T>::path(std::int64_t src,
                                              std::int64_t dst) const {
  if (!pred.has_value()) return {};
  return reconstruct_path(pred->view(), src, dst);
}

}  // namespace parfw
