file(REMOVE_RECURSE
  "libparfw_graph.a"
)
