file(REMOVE_RECURSE
  "CMakeFiles/parfw_sssp.dir/bellman_ford.cpp.o"
  "CMakeFiles/parfw_sssp.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/parfw_sssp.dir/delta_stepping.cpp.o"
  "CMakeFiles/parfw_sssp.dir/delta_stepping.cpp.o.d"
  "CMakeFiles/parfw_sssp.dir/dijkstra.cpp.o"
  "CMakeFiles/parfw_sssp.dir/dijkstra.cpp.o.d"
  "CMakeFiles/parfw_sssp.dir/dijkstra_heap.cpp.o"
  "CMakeFiles/parfw_sssp.dir/dijkstra_heap.cpp.o.d"
  "CMakeFiles/parfw_sssp.dir/johnson.cpp.o"
  "CMakeFiles/parfw_sssp.dir/johnson.cpp.o.d"
  "libparfw_sssp.a"
  "libparfw_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
