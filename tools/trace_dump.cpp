// trace_dump — execute one ParallelFw variant, real or simulated, and
// write the run's Chrome-trace JSON (load it in chrome://tracing or
// https://ui.perfetto.dev; see README "Tracing").
//
// Both modes interpret the SAME schedule IR (src/sched/ir.hpp):
//   --mode real   runs dist::parallel_fw over the in-process mpisim
//                 runtime (threads as ranks) and records wall-clock op
//                 events plus per-message delivery instants;
//   --mode des    lowers the schedule for a Summit-scale cluster and
//                 records the discrete-event simulator's virtual
//                 timeline.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "dist/block_cyclic.hpp"
#include "dist/driver.hpp"
#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/experiments.hpp"
#include "sched/trace.hpp"
#include "util/cli.hpp"

using namespace parfw;

namespace {

void print_usage() {
  std::puts(
      "trace_dump - write a Chrome-trace JSON of one ParallelFw run\n"
      "  --mode real|des     real mpisim execution or DES replay (default real)\n"
      "  --variant V         baseline|pipelined|async|offload (default async)\n"
      "  --out FILE          output path (default trace.json)\n"
      "real mode:\n"
      "  --pr R --pc C       process grid (default 2x2)\n"
      "  --n N --block B     matrix size / block size (default 96 / 8)\n"
      "des mode:\n"
      "  --nodes N           cluster nodes (default 4)\n"
      "  --n N --block B     vertices / block size (default 65536 / 768)\n"
      "  --reordered         tiled (Figure 1) placement\n");
}

int parse_variant(const std::string& name, dist::Variant* out) {
  for (dist::Variant v :
       {dist::Variant::kBaseline, dist::Variant::kPipelined,
        dist::Variant::kAsync, dist::Variant::kOffload}) {
    if (name == dist::variant_name(v)) {
      *out = v;
      return 0;
    }
  }
  std::fprintf(stderr, "unknown --variant '%s'\n", name.c_str());
  return 2;
}

int run_real(const CliArgs& args, dist::Variant variant,
             sched::ChromeTraceSink& sink) {
  using S = MinPlus<float>;
  const int pr = static_cast<int>(args.get_int("pr", 2));
  const int pc = static_cast<int>(args.get_int("pc", 2));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 96));
  const std::size_t b = static_cast<std::size_t>(args.get_int("block", 8));
  const auto grid = dist::GridSpec::row_major(pr, pc);

  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  opt.trace = &sink;
  if (variant == dist::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }

  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(std::max(1, grid.size() / 2));
  ropt.trace = &sink;

  DenseEntryGen<float> gen(7, 0.85, 1.0f, 90.0f, /*integral=*/true);
  mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        world.barrier();
        dist::parallel_fw<S>(world, local, opt);
      },
      ropt);
  return 0;
}

int run_des(const CliArgs& args, dist::Variant variant,
            sched::ChromeTraceSink& sink) {
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const double n = static_cast<double>(args.get_int("n", 65536));
  const double b = static_cast<double>(args.get_int("block", 768));
  const perf::GridSetup setup =
      perf::make_grid(m, nodes, args.get_bool("reordered"));
  const perf::RunPoint p = perf::simulate_fw_placement(
      m, variant, setup, nodes, n, b, /*comm_only=*/false, &sink);
  std::fprintf(stderr, "simulated %.3f s makespan, %.2f PFLOP/s\n", p.seconds,
               p.pflops);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"mode", "variant", "out", "pr", "pc", "n", "block",
                      "nodes", "reordered", "help"});
  if (args.get_bool("help")) {
    print_usage();
    return 0;
  }
  dist::Variant variant = dist::Variant::kAsync;
  if (int rc = parse_variant(args.get("variant", "async"), &variant)) return rc;
  const std::string mode = args.get("mode", "real");

  sched::ChromeTraceSink sink;
  int rc;
  if (mode == "real")
    rc = run_real(args, variant, sink);
  else if (mode == "des")
    rc = run_des(args, variant, sink);
  else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }
  if (rc != 0) return rc;

  const std::string out = args.get("out", "trace.json");
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
    return 1;
  }
  sink.write(os);
  std::fprintf(stderr, "wrote %zu events to %s\n", sink.size(), out.c_str());
  return 0;
}
