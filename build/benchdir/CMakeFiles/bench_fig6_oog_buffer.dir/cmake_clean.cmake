file(REMOVE_RECURSE
  "../bench/bench_fig6_oog_buffer"
  "../bench/bench_fig6_oog_buffer.pdb"
  "CMakeFiles/bench_fig6_oog_buffer.dir/bench_fig6_oog_buffer.cpp.o"
  "CMakeFiles/bench_fig6_oog_buffer.dir/bench_fig6_oog_buffer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_oog_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
