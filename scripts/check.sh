#!/usr/bin/env bash
# Tier-1 verification + SRGEMM bench smoke — the gate every PR must pass.
#
#   scripts/check.sh [build-dir]
#   scripts/check.sh --san address|thread|undefined [build-dir]
#   scripts/check.sh --faults [build-dir]
#
# 1. Configure + build (Release, all warnings).
# 2. Run the full ctest suite.
# 3. Run a ~2 s SRGEMM micro-bench smoke so kernel-dispatch regressions
#    (e.g. SIMD silently falling back to scalar) show up as a number, not
#    just as green tests.
#
# --san builds a separate instrumented tree (-DPARFW_SAN=<san>) and runs
# the concurrency-heavy suites under it — mpisim ranks are real OS
# threads, so `--san thread` is the data-race gate for the runtime and
# the trace sinks.
#
# --faults is the resilience gate: the fault-injection matrix and the
# crash-restart suites under AddressSanitizer, so recovery paths
# (retransmission, world abort/unwind, checkpoint replay) are exercised
# with full leak/overflow checking.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

san=""
faults=0
if [[ "${1:-}" == "--faults" ]]; then
  faults=1
  shift
elif [[ "${1:-}" == "--san" ]]; then
  san="${2:?usage: check.sh --san address|thread|undefined [build-dir]}"
  shift 2
fi

if [[ "$faults" == 1 ]]; then
  build_dir="${1:-$repo_root/build-faults}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARFW_SAN=address -DPARFW_BUILD_BENCH=OFF -DPARFW_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j"$(nproc)" \
    --target test_mpisim_stress test_resilience
  "$build_dir/tests/test_mpisim_stress" --gtest_filter='FaultMatrix.*'
  "$build_dir/tests/test_resilience"
  echo "check.sh --faults: OK"
  exit 0
fi

if [[ -n "$san" ]]; then
  build_dir="${1:-$repo_root/build-san-$san}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARFW_SAN="$san" -DPARFW_BUILD_BENCH=OFF -DPARFW_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j"$(nproc)" \
    --target test_mpisim_stress test_mpisim test_sched
  "$build_dir/tests/test_mpisim_stress"
  "$build_dir/tests/test_mpisim"
  "$build_dir/tests/test_sched"
  echo "check.sh --san $san: OK"
  exit 0
fi

build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "== SRGEMM bench smoke (scalar tiled vs SIMD, n=512) =="
"$build_dir/bench/bench_srgemm_micro" \
  --benchmark_filter='BM_Srgemm(TiledScalar|Simd)/512$' \
  --benchmark_min_time=0.2s

echo "check.sh: OK"
