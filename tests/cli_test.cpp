// CLI parser tests.
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/cli.hpp"

namespace parfw {
namespace {

CliArgs parse(std::initializer_list<const char*> argv,
              std::vector<std::string> allowed) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(full.size()), full.data(), allowed);
}

TEST(Cli, SpaceSeparatedValues) {
  const auto a = parse({"--n", "100", "--p", "0.5"}, {"n", "p"});
  EXPECT_EQ(a.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(a.get_double("p", 0), 0.5);
}

TEST(Cli, EqualsSeparatedValues) {
  const auto a = parse({"--seed=42", "--name=x"}, {"seed", "name"});
  EXPECT_EQ(a.get_int("seed", 0), 42);
  EXPECT_EQ(a.get("name", ""), "x");
}

TEST(Cli, BooleanFlags) {
  const auto a = parse({"--verbose", "--n", "5"}, {"verbose", "n"});
  EXPECT_TRUE(a.get_bool("verbose"));
  EXPECT_FALSE(a.get_bool("missing"));
  EXPECT_EQ(a.get_int("n", 0), 5);
}

TEST(Cli, BooleanFlagFollowedByFlag) {
  const auto a = parse({"--paths", "--block", "32"}, {"paths", "block"});
  EXPECT_TRUE(a.get_bool("paths"));
  EXPECT_EQ(a.get_int("block", 0), 32);
}

TEST(Cli, Fallbacks) {
  const auto a = parse({}, {"x"});
  EXPECT_EQ(a.get("x", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("x", 1.5), 1.5);
}

TEST(Cli, PositionalArguments) {
  const auto a = parse({"file1", "--n", "3", "file2"}, {"n"});
  EXPECT_EQ(a.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}, {"n"}), check_error);
}

}  // namespace
}  // namespace parfw
