// 2-D process grid and rank placement (paper §2.5.1, §3.4).
//
// The grid maps logical coordinates (r, c) with 0 ≤ r < P_r, 0 ≤ c < P_c
// onto world ranks. Placement matters because all ranks on a node share
// one NIC: the paper shows per-node traffic is minimised when the NODE
// grid is square (K_r ≈ K_c) with a square intranode grid (Q_r ≈ Q_c),
// Figure 1. Two placements are provided:
//
//  * row_major — the naive default (consecutive world ranks fill grid
//    rows), equivalent to a 1 x Q intranode grid;
//  * tiled — the paper's optimal placement: each node owns a Q_r x Q_c
//    sub-tile of the grid, nodes tile the K_r x K_c node grid.
#pragma once

#include <vector>

#include "mpisim/runtime.hpp"
#include "util/check.hpp"

namespace parfw::dist {

struct GridCoord {
  int row = 0;
  int col = 0;
  bool operator==(const GridCoord&) const = default;
};

class GridSpec {
 public:
  GridSpec() = default;

  int rows() const { return pr_; }
  int cols() const { return pc_; }
  int size() const { return pr_ * pc_; }
  /// Intranode grid dimensions this placement was built with (1x1 when
  /// placement ignores nodes).
  int qr() const { return qr_; }
  int qc() const { return qc_; }

  int world_rank(GridCoord c) const {
    PARFW_DCHECK(c.row >= 0 && c.row < pr_ && c.col >= 0 && c.col < pc_);
    return coord_to_world_[static_cast<std::size_t>(c.row * pc_ + c.col)];
  }
  GridCoord coord_of(int world_rank) const {
    PARFW_DCHECK(world_rank >= 0 && world_rank < size());
    return world_to_coord_[static_cast<std::size_t>(world_rank)];
  }

  /// Naive placement: world rank r sits at grid (r / P_c, r % P_c).
  static GridSpec row_major(int pr, int pc);

  /// Paper-optimal placement (Figure 1): node grid K_r x K_c, intranode
  /// grid Q_r x Q_c, with P_r = K_r·Q_r and P_c = K_c·Q_c. World ranks are
  /// numbered contiguously within a node (matching how jsrun/mpirun fill
  /// nodes), and each node's Q ranks form a Q_r x Q_c tile of the grid.
  static GridSpec tiled(int kr, int kc, int qr, int qc);

  /// Node model for this run: ranks are packed onto nodes contiguously by
  /// world rank (how jsrun fills nodes). ranks_per_node is a machine
  /// property; pass qr()*qc() to match a tiled placement's assumption.
  mpi::NodeModel node_model(int ranks_per_node) const {
    return mpi::NodeModel::contiguous(size(), ranks_per_node);
  }

 private:
  int pr_ = 1, pc_ = 1, qr_ = 1, qc_ = 1;
  std::vector<int> coord_to_world_;
  std::vector<GridCoord> world_to_coord_;

  void build_inverse();
};

}  // namespace parfw::dist
