// Graph substrate tests: containers, generators, I/O round trips,
// connected components, deterministic distributed-safe entry generation.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/connected_components.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace parfw {
namespace {

TEST(Graph, DistanceMatrixInit) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 1, 3.0);  // duplicate keeps the minimum
  auto d = g.distance_matrix<MinPlus<double>>();
  EXPECT_EQ(d(0, 1), 3.0);
  EXPECT_EQ(d(1, 2), 2.0);
  EXPECT_EQ(d(0, 0), 0.0);
  EXPECT_EQ(d(0, 2), value_traits<double>::infinity());
}

TEST(Graph, CsrStructure) {
  Graph g(4);
  g.add_edge(2, 0, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 3, 3.0);
  const auto& csr = g.csr();
  EXPECT_EQ(csr.offsets.size(), 5u);
  EXPECT_EQ(csr.offsets[1] - csr.offsets[0], 2u);  // vertex 0 has 2 out-edges
  EXPECT_EQ(csr.offsets[3] - csr.offsets[2], 1u);  // vertex 2 has 1
}

TEST(Graph, EdgeOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), check_error);
  EXPECT_THROW(g.add_edge(-1, 0, 1.0), check_error);
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  const auto g = gen::erdos_renyi(200, 0.1, 7);
  const double expected = 200.0 * 199.0 * 0.1;
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.8);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.2);
}

TEST(Generators, DenseUniformIsComplete) {
  const auto g = gen::dense_uniform(30, 3);
  EXPECT_EQ(g.num_edges(), 30u * 29u);
}

TEST(Generators, Deterministic) {
  const auto a = gen::erdos_renyi(50, 0.3, 99);
  const auto b = gen::erdos_renyi(50, 0.3, 99);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
    EXPECT_EQ(a.edges()[i].weight, b.edges()[i].weight);
  }
}

TEST(Generators, RingClosedForm) {
  const auto g = gen::ring(10);
  EXPECT_EQ(g.num_edges(), 10u);
  for (const Edge& e : g.edges()) EXPECT_EQ(e.weight, 1.0);
}

TEST(Generators, Grid2dDegrees) {
  const auto g = gen::grid2d(4, 5, 11);
  // Undirected grid: 4*(5-1) + 5*(4-1) = 31 undirected edges = 62 directed.
  EXPECT_EQ(g.num_edges(), 62u);
  EXPECT_EQ(g.num_vertices(), 20);
}

TEST(Generators, PreferentialAttachmentConnected) {
  const auto g = gen::preferential_attachment(100, 2, 13);
  const auto labels = connected_components(g);
  EXPECT_EQ(num_components(labels), 1);
}

TEST(ConnectedComponents, MultiComponentLabels) {
  const auto g = gen::multi_component(4, 25, 0.5, 17);
  const auto labels = connected_components(g);
  // With p=0.5 on 25 vertices each part is almost surely connected.
  EXPECT_EQ(num_components(labels), 4);
  // Vertices in different parts never share a label.
  EXPECT_NE(labels[0], labels[25]);
  EXPECT_NE(labels[25], labels[50]);
}

TEST(ConnectedComponents, IsolatedVertices) {
  Graph g(5);
  g.add_edge(1, 2, 1.0);
  const auto labels = connected_components(g);
  EXPECT_EQ(num_components(labels), 4);
  EXPECT_EQ(labels[1], labels[2]);
}

TEST(Io, EdgeListRoundTrip) {
  const auto g = gen::erdos_renyi(20, 0.2, 5);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(h.edges()[i].src, g.edges()[i].src);
    EXPECT_EQ(h.edges()[i].dst, g.edges()[i].dst);
    EXPECT_NEAR(h.edges()[i].weight, g.edges()[i].weight, 1e-9);
  }
}

TEST(Io, EdgeListCommentsAndBlanks) {
  std::stringstream ss("# a comment\n\n3 2\n0 1 1.5\n# mid comment\n1 2 2.5\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges()[1].weight, 2.5);
}

TEST(Io, EdgeListTruncatedThrows) {
  std::stringstream ss("3 5\n0 1 1.0\n");
  EXPECT_THROW(io::read_edge_list(ss), check_error);
}

TEST(Io, DimacsRoundTrip) {
  const auto g = gen::erdos_renyi(15, 0.3, 23);
  std::stringstream ss;
  io::write_dimacs(g, ss);
  const Graph h = io::read_dimacs(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.edges()[0].src, g.edges()[0].src);
}

TEST(DenseEntryGen, RankIndependentDeterminism) {
  // Any block materialised anywhere must equal the same region of full().
  DenseEntryGen<float> gen(777, 0.9, 1.0f, 50.0f);
  auto full = gen.full(40);
  Matrix<float> block(8, 8);
  gen.fill_block(16, 24, block.view());
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_EQ(block(i, j), full(16 + i, 24 + j));
}

TEST(DenseEntryGen, DiagonalIsZeroAndWeightsInRange) {
  DenseEntryGen<float> gen(3, 1.0, 2.0f, 9.0f);
  auto m = gen.full(25);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(m(i, i), 0.0f);
    for (std::size_t j = 0; j < 25; ++j) {
      if (i == j) continue;
      EXPECT_GE(m(i, j), 2.0f);
      EXPECT_LT(m(i, j), 9.0f);
    }
  }
}

TEST(DenseEntryGen, DensityControlsInfinities) {
  DenseEntryGen<float> gen(5, 0.3);
  auto m = gen.full(60);
  std::size_t finite = 0, total = 0;
  for (std::size_t i = 0; i < 60; ++i)
    for (std::size_t j = 0; j < 60; ++j) {
      if (i == j) continue;
      ++total;
      if (!value_traits<float>::is_inf(m(i, j))) ++finite;
    }
  const double frac = static_cast<double>(finite) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.3, 0.05);
}

}  // namespace
}  // namespace parfw
