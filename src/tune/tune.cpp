#include "tune/tune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "causal/analysis.hpp"
#include "causal/graph.hpp"
#include "core/diag_update.hpp"
#include "perf/cost_model.hpp"
#include "perf/des.hpp"
#include "perf/experiments.hpp"
#include "perf/schedule.hpp"
#include "sched/ir.hpp"
#include "sched/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace parfw::tune {

// --- placement ---------------------------------------------------------------

dist::GridSpec Placement::grid() const {
  if (!tiled) return dist::GridSpec::row_major(pr, pc);
  PARFW_CHECK_MSG(kr > 0 && kc > 0 && pr % kr == 0 && pc % kc == 0,
                  "tiled placement: node grid must divide the process grid");
  return dist::GridSpec::tiled(kr, kc, pr / kr, pc / kc);
}

std::vector<int> Placement::node_of(int ranks_per_node) const {
  PARFW_CHECK_MSG(ranks_per_node > 0 && ranks() % ranks_per_node == 0,
                  "ranks_per_node must divide the rank count");
  std::vector<int> out(static_cast<std::size_t>(ranks()));
  for (int w = 0; w < ranks(); ++w)
    out[static_cast<std::size_t>(w)] = w / ranks_per_node;
  return out;
}

std::string Placement::name() const {
  char buf[64];
  if (tiled)
    std::snprintf(buf, sizeof buf, "%dx%d/%dx%d", kr, kc, qr(), qc());
  else
    std::snprintf(buf, sizeof buf, "%dx%d", pr, pc);
  return buf;
}

std::string Candidate::name() const {
  char buf[128];
  if (variant == sched::Variant::kOffload)
    std::snprintf(buf, sizeof buf, "%s %s b=%zu s=%d",
                  sched::variant_name(variant), placement.name().c_str(),
                  block, streams);
  else
    std::snprintf(buf, sizeof buf, "%s %s b=%zu",
                  sched::variant_name(variant), placement.name().c_str(),
                  block);
  return buf;
}

// --- candidate-space derivation ----------------------------------------------

namespace {

std::vector<std::pair<int, int>> factor_pairs(int x) {
  std::vector<std::pair<int, int>> out;
  for (int a = 1; a <= x; ++a)
    if (x % a == 0) out.emplace_back(a, x / a);
  return out;
}

/// Keep at most `cap` values, evenly spaced over the sorted input (the
/// endpoints always survive) — deterministic geometric-ish thinning.
std::vector<std::size_t> thin(std::vector<std::size_t> v, std::size_t cap) {
  if (v.size() <= cap || cap < 2) return v;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cap; ++i) {
    const std::size_t j = i * (v.size() - 1) / (cap - 1);
    if (out.empty() || out.back() != v[j]) out.push_back(v[j]);
  }
  return out;
}

}  // namespace

std::vector<Placement> enumerate_placements(const Workload& w) {
  std::vector<Placement> out;
  for (const auto& [pr, pc] : factor_pairs(w.ranks)) {
    Placement p;
    p.pr = pr;
    p.pc = pc;
    out.push_back(p);
  }
  // Tiled (+Reordering) placements: node grid × intranode grid, with the
  // intranode tile holding exactly the node's ranks. Meaningless on one
  // node or with one rank per node (they coincide with naive shapes).
  if (w.nodes() > 1 && w.ranks_per_node > 1) {
    for (const auto& [kr, kc] : factor_pairs(w.nodes()))
      for (const auto& [qr, qc] : factor_pairs(w.ranks_per_node)) {
        Placement p;
        p.tiled = true;
        p.kr = kr;
        p.kc = kc;
        p.pr = kr * qr;
        p.pc = kc * qc;
        out.push_back(p);
      }
  }
  return out;
}

std::vector<std::size_t> derive_blocks(const Workload& w) {
  std::vector<std::size_t> out;
  for (std::size_t b = 8; b <= w.n / 2; ++b) {
    if (w.n % b != 0) continue;
    const std::size_t nb = w.n / b;
    // nb beyond the ceiling makes DES evaluation cost (∝ nb·P) explode;
    // nb < 2 is not a blocked run at all.
    if (nb >= 2 && nb <= kMaxBlocksPerDim) out.push_back(b);
  }
  return thin(std::move(out), 10);
}

// --- tuner -------------------------------------------------------------------

Tuner::Tuner(const Workload& w, const TuneOptions& opt)
    : workload_(w), opt_(opt) {
  PARFW_CHECK_MSG(w.n > 0 && w.ranks > 0 && w.ranks_per_node > 0 &&
                      w.word_bytes > 0,
                  "tuner workload must be fully specified");
  PARFW_CHECK_MSG(w.ranks % w.ranks_per_node == 0,
                  "ranks_per_node must divide the rank count");
  PARFW_CHECK_MSG(opt_.stall_weight >= 0.0,
                  "stall_weight must be non-negative");
  variants_ = opt.variants;
  if (variants_.empty())
    variants_.assign(std::begin(sched::kConcreteVariants),
                     std::end(sched::kConcreteVariants));
  for (sched::Variant v : variants_)
    PARFW_CHECK_MSG(v != sched::Variant::kAuto,
                    "kAuto cannot be a search-space member");
  placements_ = opt.placements.empty() ? enumerate_placements(w)
                                       : opt.placements;
  blocks_ = opt.blocks.empty() ? derive_blocks(w) : opt.blocks;
  PARFW_CHECK_MSG(!blocks_.empty(),
                  "no feasible block sizes for n=" << w.n
                                                   << " (need a divisor)");
  streams_ = opt.streams.empty() ? std::vector<int>{1, 2, 3} : opt.streams;
  for (int s : streams_)
    PARFW_CHECK_MSG(s >= 1 && s <= 3, "offload depth must be 1..3");
}

Candidate Tuner::default_candidate() const {
  Candidate c;
  c.variant = sched::Variant::kAsync;
  const auto [a, b] = perf::balanced_factors(workload_.ranks);
  c.placement.tiled = false;
  c.placement.pr = a;
  c.placement.pc = b;
  // The repo-default block size is the paper's 768; pick the nearest
  // value the workload admits (ties to the larger block) among blocks
  // this grid can actually schedule — a block per process row/column.
  const std::size_t dim = static_cast<std::size_t>(std::max(a, b));
  std::size_t best = 0;
  for (std::size_t blk : blocks_) {
    if (workload_.n / blk < dim) continue;
    const auto d = [](std::size_t x, std::size_t t) {
      return x > t ? x - t : t - x;
    };
    if (best == 0 || d(blk, 768) < d(best, 768) ||
        (d(blk, 768) == d(best, 768) && blk > best))
      best = blk;
  }
  c.block = best;
  PARFW_CHECK_MSG(feasible(c),
                  "no default-grid-feasible block size for n=" << workload_.n);
  return c.canonical();
}

bool Tuner::feasible(const Candidate& c, std::string* why) const {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (c.placement.ranks() != workload_.ranks)
    return fail("placement rank count != workload ranks");
  if (c.placement.tiled) {
    if (c.placement.kr <= 0 || c.placement.kc <= 0 ||
        c.placement.pr % c.placement.kr != 0 ||
        c.placement.pc % c.placement.kc != 0)
      return fail("node grid does not divide the process grid");
    if (c.placement.qr() * c.placement.qc() != workload_.ranks_per_node)
      return fail("intranode tile != ranks_per_node");
    if (c.placement.kr * c.placement.kc != workload_.nodes())
      return fail("node grid != node count");
  }
  if (c.block == 0 || workload_.n % c.block != 0)
    return fail("block size must divide n");
  const std::size_t nb = workload_.n / c.block;
  if (nb < static_cast<std::size_t>(std::max(c.placement.pr, c.placement.pc)))
    return fail("need at least one block per process row/column");
  if (c.variant == sched::Variant::kOffload && (c.streams < 1 || c.streams > 3))
    return fail("offload depth must be 1..3");
  return true;
}

double Tuner::lower_bound(const Candidate& c) const {
  (void)c;  // both floors are shape-independent; see below
  const double n = static_cast<double>(workload_.n);
  // Compute floor: total modelled flops over all GPUs (ranks sharing a
  // GPU serialise in the DES, so the per-rank rate is rank_flops).
  const double compute =
      perf::model_compute_time(opt_.machine, n, workload_.ranks);
  // NIC floor: no placement moves less than W_min per node (§5.1.3), and
  // a node cannot ingest faster than nic_bw. Using the min over ALL node
  // grids keeps the bound sound for every candidate placement.
  double comm = 0.0;
  if (workload_.nodes() > 1)
    comm = perf::min_node_volume(opt_.machine, n, workload_.nodes()) /
           opt_.machine.nic_bw;
  return std::max(compute, comm);
}

std::uint64_t Tuner::key_of(const Candidate& cand) const {
  const Candidate c = cand.canonical();
  sched::ScheduleParams p;
  p.variant = c.variant;
  p.nb = workload_.n / c.block;
  p.b = c.block;
  p.word_bytes = workload_.word_bytes;
  // pred_word_bytes participates in hash_of, which is what keys paths
  // workloads into their own cache universe.
  p.pred_word_bytes =
      workload_.track_paths ? sizeof(std::int64_t) : std::size_t{0};
  p.diag_flops = diag_update_flops(
      c.block, workload_.track_paths ? DiagStrategy::kClassic
                                     : DiagStrategy::kLogSquaring);
  std::uint64_t h = sched::hash_of(p);
  h = sched::hash_combine(h, static_cast<std::uint64_t>(c.placement.tiled));
  h = sched::hash_combine(h, static_cast<std::uint64_t>(c.placement.pr));
  h = sched::hash_combine(h, static_cast<std::uint64_t>(c.placement.pc));
  h = sched::hash_combine(h, static_cast<std::uint64_t>(c.placement.kr));
  h = sched::hash_combine(h, static_cast<std::uint64_t>(c.placement.kc));
  h = sched::hash_combine(h, static_cast<std::uint64_t>(c.streams));
  h = sched::hash_combine(h,
                          static_cast<std::uint64_t>(workload_.ranks_per_node));
  return h;
}

const Eval& Tuner::evaluate(const Candidate& cand) {
  const Candidate c = cand.canonical();
  std::string why;
  PARFW_CHECK_MSG(feasible(c, &why),
                  "cannot evaluate infeasible candidate " << c.name() << ": "
                                                          << why);
  const std::uint64_t key = key_of(c);
  if (auto it = cache_.find(key); it != cache_.end()) {
    PARFW_CHECK_MSG(it->second.candidate == c, "evaluation-cache key collision");
    ++cache_hits_;
    return it->second.eval;
  }

  Timer timer;
  perf::FwProblem prob;
  prob.n = static_cast<double>(workload_.n);
  prob.b = static_cast<double>(c.block);
  prob.variant = c.variant;
  prob.offload_streams = c.streams;
  prob.track_paths = workload_.track_paths;
  const dist::GridSpec grid = c.placement.grid();
  const std::vector<int> node_of =
      c.placement.node_of(workload_.ranks_per_node);

  const perf::BuiltProgram built =
      perf::build_fw_program(opt_.machine, prob, grid, node_of);
  const perf::WireTotals wire =
      perf::program_traffic(built.programs, built.node_of);
  sched::CollectTraceSink sink;
  const perf::SimStats sim =
      perf::simulate(built.programs, built.node_of, opt_.machine, &sink);

  causal::BuildStats bstats;
  const causal::Graph g = causal::build_graph(sink.events(), &bstats);
  causal::BlameReport blame;
  std::string err;
  causal::AnalysisOptions aopt;
  aopt.top_k = 0;
  PARFW_CHECK_MSG(causal::analyze(g, aopt, &blame, &err),
                  "blame analysis failed for " << c.name() << ": " << err);
  PARFW_CHECK_MSG(blame.span == sim.makespan,
                  "critical-path length diverges from the DES makespan");

  Eval e;
  e.makespan = sim.makespan;
  e.stall_seconds = blame.category(causal::Category::kStall);
  e.stall_share = blame.share(causal::Category::kStall);
  e.comm_share = blame.share(causal::Category::kComm);
  e.compute_share = blame.share(causal::Category::kCompute);
  e.structural_floor = causal::structural_floor(blame);
  e.objective = e.makespan + opt_.stall_weight * e.stall_seconds;
  e.wire_bytes = wire.bytes_total;
  e.internode_bytes = static_cast<std::int64_t>(sim.internode_bytes);
  des_seconds_ += timer.seconds();

  auto [it, inserted] = cache_.emplace(key, CacheEntry{c, e});
  PARFW_CHECK(inserted);
  return it->second.eval;
}

namespace {

enum class Dim { kVariant, kPlacement, kBlock, kStreams };

const char* dim_name(Dim d) {
  switch (d) {
    case Dim::kVariant: return "variant";
    case Dim::kPlacement: return "placement";
    case Dim::kBlock: return "block";
    case Dim::kStreams: return "streams";
  }
  return "?";
}

/// Blame-guided sweep order: each category's relief comes from different
/// dimensions (stall = the schedule's shape: variant, then placement;
/// comm = where the bytes flow: placement, then block; compute = the
/// granularity: block, then variant). Categories are visited by
/// descending share and their dimensions appended, deduplicated.
std::vector<Dim> dimension_order(const Eval& seed) {
  struct Cat {
    double share;
    Dim dims[2];
  };
  std::vector<Cat> cats = {
      {seed.stall_share, {Dim::kVariant, Dim::kPlacement}},
      {seed.comm_share, {Dim::kPlacement, Dim::kBlock}},
      {seed.compute_share, {Dim::kBlock, Dim::kVariant}},
  };
  std::stable_sort(cats.begin(), cats.end(),
                   [](const Cat& a, const Cat& b) { return a.share > b.share; });
  std::vector<Dim> order;
  const auto push = [&order](Dim d) {
    if (std::find(order.begin(), order.end(), d) == order.end())
      order.push_back(d);
  };
  for (const Cat& c : cats)
    for (Dim d : c.dims) push(d);
  for (Dim d : {Dim::kVariant, Dim::kPlacement, Dim::kBlock, Dim::kStreams})
    push(d);
  return order;
}

}  // namespace

TuneReport Tuner::run() { return run(default_candidate()); }

TuneReport Tuner::run(const Candidate& seed_in) {
  TuneReport r;
  r.workload = workload_;
  r.seed = seed_in.canonical();

  const std::size_t hits0 = cache_hits_;
  const std::size_t size0 = cache_.size();
  const double des0 = des_seconds_;

  // Full product size (offload multiplies by the depth dimension).
  const bool has_offload =
      std::find(variants_.begin(), variants_.end(),
                sched::Variant::kOffload) != variants_.end();
  const std::size_t non_offload = variants_.size() - (has_offload ? 1 : 0);
  r.space_size = placements_.size() * blocks_.size() *
                 (non_offload + (has_offload ? streams_.size() : 0));

  r.seed_eval = evaluate(r.seed);
  Candidate best = r.seed;
  Eval best_eval = r.seed_eval;

  const std::vector<Dim> order = dimension_order(r.seed_eval);
  for (Dim d : order) {
    if (!r.dimension_order.empty()) r.dimension_order += ',';
    r.dimension_order += dim_name(d);
  }

  const auto consider = [&](Candidate c) {
    c = c.canonical();
    if (c == best) return;
    if (!feasible(c)) {
      ++r.infeasible;
      return;
    }
    if (lower_bound(c) > best_eval.objective) {
      ++r.pruned;
      return;
    }
    const Eval& e = evaluate(c);
    if (e.objective < best_eval.objective) {
      best = c;
      best_eval = e;
    }
  };

  for (int round = 0; round <= opt_.refine_rounds; ++round) {
    const Candidate round_start = best;
    for (Dim d : order) {
      switch (d) {
        case Dim::kVariant:
          for (sched::Variant v : variants_) {
            Candidate c = best;
            c.variant = v;
            consider(c);
          }
          break;
        case Dim::kPlacement:
          for (const Placement& p : placements_) {
            Candidate c = best;
            c.placement = p;
            consider(c);
          }
          break;
        case Dim::kBlock:
          for (std::size_t blk : blocks_) {
            Candidate c = best;
            c.block = blk;
            consider(c);
          }
          break;
        case Dim::kStreams:
          if (best.variant == sched::Variant::kOffload) {
            for (int s : streams_) {
              Candidate c = best;
              c.streams = s;
              consider(c);
            }
          }
          break;
      }
    }
    if (best == round_start) break;  // converged: a full round changed nothing
  }

  r.winner = best;
  r.winner_eval = best_eval;
  r.cache_hits = cache_hits_ - hits0;
  r.evaluated = cache_.size() - size0;
  r.des_seconds = des_seconds_ - des0;

  if (opt_.metrics != nullptr) publish_tune(r, *opt_.metrics);
  return r;
}

std::string TuneReport::summary() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "sched_tune: n=%zu ranks=%d (%d/node)\n"
      "  sweep order    %s (blame-guided)\n"
      "  space %zu candidates: %zu evaluated, %zu pruned (lower bound), "
      "%zu infeasible, %zu cache hits, %.2f s in the DES\n"
      "  default  %-28s makespan %.6f s  stall %5.1f%%  floor %.6f s\n"
      "  tuned    %-28s makespan %.6f s  stall %5.1f%%  floor %.6f s\n"
      "  predicted speedup x%.3f, stall share cut %.1f%% relative\n",
      workload.n, workload.ranks, workload.ranks_per_node,
      dimension_order.c_str(), space_size, evaluated, pruned, infeasible,
      cache_hits, des_seconds, seed.name().c_str(), seed_eval.makespan,
      100.0 * seed_eval.stall_share, seed_eval.structural_floor,
      winner.name().c_str(), winner_eval.makespan,
      100.0 * winner_eval.stall_share, winner_eval.structural_floor,
      winner_eval.makespan > 0.0 ? seed_eval.makespan / winner_eval.makespan
                                 : 0.0,
      seed_eval.stall_share > 0.0
          ? 100.0 * (1.0 - winner_eval.stall_share / seed_eval.stall_share)
          : 0.0);
  return buf;
}

void publish_tune(const TuneReport& r, telemetry::Registry& reg) {
  reg.gauge("tune.predicted_makespan").set(r.winner_eval.makespan);
  reg.gauge("tune.default_makespan").set(r.seed_eval.makespan);
  reg.gauge("tune.stall_share", "schedule=default").set(r.seed_eval.stall_share);
  reg.gauge("tune.stall_share", "schedule=tuned").set(r.winner_eval.stall_share);
  reg.gauge("tune.des_seconds").set(r.des_seconds);
  reg.gauge("tune.space_size").set(static_cast<double>(r.space_size));
  reg.counter("tune.candidates_evaluated").add(r.evaluated);
  reg.counter("tune.pruned").add(r.pruned);
  reg.counter("tune.cache_hits").add(r.cache_hits);
}

}  // namespace parfw::tune
