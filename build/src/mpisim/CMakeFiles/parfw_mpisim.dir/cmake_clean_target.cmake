file(REMOVE_RECURSE
  "libparfw_mpisim.a"
)
