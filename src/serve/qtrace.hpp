// qtrace — per-query span tracing for the serving tier (DESIGN.md §4.13).
//
// Every query a PathService answers is decomposed into a contiguous
// sequence of STAGE intervals — route (dispatch + answer assembly), cache
// (probe + admission), io (get_ranges store reads), walk (pred-walk
// arithmetic) — that tile the query's span EXACTLY, by construction: the
// tracer keeps one stage clock, and every stage switch closes the current
// interval at timestamp t and opens the next at the same t. No gaps, no
// overlaps, and the per-stage sums reconcile with the query total up to
// FP rounding — which is what makes the serve blame split an accounting
// identity rather than a sampling estimate.
//
// Spans go out through the same sched::TraceSink seam the solve pipeline
// uses (one track per rank in the Chrome trace; k carries the query id),
// so causal::build_graph / analyze work on serve traces unchanged —
// Category::kIo splits store reads from walk compute and shard-hop comm.
// Aggregates land in telemetry as serve.stage.*.latency histograms (at a
// finer bucket resolution than the default — the cache-hit path is ~µs)
// and per-tile miss-cost gauges keyed by block coordinate: exactly the
// signal the admission-tuning feedback loop needs.
//
// The tracer is single-threaded per PathService (one service per rank in
// the sharded tier) and inert — zero clock reads — when neither a sink
// nor a registry is configured.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/trace.hpp"
#include "serve/tile_cache.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::serve {

/// ctx namespace for serve gather handoffs, disjoint from communicator
/// context ids and from sched::kDeviceChannelCtx (1 << 48) so a serve
/// flow event can never join a solve message in the causal graph.
inline constexpr std::uint64_t kServeChannelCtx = std::uint64_t{1} << 49;
/// Match tag of the worker → rank-0 gather handoff flow events.
inline constexpr std::int32_t kServeGatherTag = 7310;

/// Sub-buckets per octave for serve.* latency histograms: 8 bounds the
/// quantile error at 2^(1/8) ≈ 1.09x, enough to separate a ~2 µs cache
/// hit from a ~4 µs one — the default 4 (≈ 1.19x) was verified too coarse
/// for sub-millisecond tails (telemetry_test FineResolution).
inline constexpr int kServeHistSub = 8;

/// Latency attribution stages. kRoute..kWalk partition a query's span;
/// kGather is the batch-level rank-0 reassembly (sharded tier only).
enum class Stage : std::uint8_t {
  kRoute = 0,  ///< shard routing, dispatch, answer assembly
  kCache = 1,  ///< tile-cache probe + admission
  kIo = 2,     ///< get_ranges store reads on a cache miss
  kWalk = 3,   ///< pred-walk arithmetic
  kGather = 4, ///< rank-0 gather of sharded results
};
inline constexpr int kNumStages = 5;

/// "route", "cache", "io", "walk", "gather" — metric-name fragments.
const char* stage_name(Stage s);
/// "serveRoute", ... — span names (static storage, as TraceSink requires).
const char* stage_span_name(Stage s);

/// One answered query's breakdown, as the tracer measured it. This is
/// what the SLO monitor records and the slow-query log stores.
struct QueryStats {
  std::int64_t qid = -1;
  double t_begin = 0.0;  ///< sched::now_seconds() at query start
  double total = 0.0;    ///< end - begin, seconds
  std::array<double, kNumStages> stage{};  ///< seconds per stage
  bool ok = true;
};

/// Accumulated cost of misses on one tile — the per-tile series the
/// admission tuner consumes.
struct TileMissCost {
  std::uint64_t fetches = 0;  ///< cache misses that re-read this tile
  double io_seconds = 0.0;    ///< Σ get_ranges time spent on it
  std::uint64_t bytes = 0;    ///< Σ bytes read for it
};

struct TileKeyLess {
  bool operator()(const TileKey& a, const TileKey& b) const {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.block_row != b.block_row) return a.block_row < b.block_row;
    return a.block_col < b.block_col;
  }
};
using TileCostMap = std::map<TileKey, TileMissCost, TileKeyLess>;

/// Per-query span tracer. Stage intervals are buffered per query and
/// flushed at end_query with the parent "serveQuery" span FIRST — the
/// causal nesting forest resolves same-t_begin ties by record order, so
/// the parent must precede its children in the stream.
class QueryTracer {
 public:
  struct Config {
    sched::TraceSink* sink = nullptr;       ///< span stream (may be null)
    telemetry::Registry* metrics = nullptr; ///< histogram home (may be null)
    std::string labels;                     ///< e.g. "rank=3"
    int rank = 0;                           ///< trace track
    /// Measure even without a sink or registry (an SLO monitor alone
    /// still needs the per-query breakdowns end_query returns).
    bool force = false;
  };

  QueryTracer() = default;  // inert
  explicit QueryTracer(const Config& cfg);

  /// True when any output (sink, registry, or a forced consumer of the
  /// end_query stats) is configured; when false every method is a no-op
  /// and the tracer never reads the clock.
  bool active() const {
    return sink_ != nullptr || metrics_ != nullptr || cfg_.force;
  }
  int rank() const { return cfg_.rank; }

  /// Mark the submission instant of a batch: subsequent begin_query calls
  /// observe (query start - batch start) into serve.queue.wait.
  void begin_batch();

  /// Open a query span (stage clock starts in kRoute). Resets any state a
  /// previous query left behind (e.g. after a hard-error unwind), so the
  /// tracer is always reusable.
  void begin_query(std::int64_t qid);

  /// Switch the stage clock; returns the previous stage so scopes can
  /// restore it. Same-stage switches merge (no interval is closed).
  Stage switch_stage(Stage s);

  /// Attribute one cache-miss store read to its tile.
  void record_miss(const TileKey& key, double io_seconds, std::uint64_t bytes);

  /// Note the admission outcome of a miss (zero-duration instant event).
  void note_admission(bool admitted);

  /// Close the query span, flush its events, observe the histograms, and
  /// return the measured breakdown. No-op ({}) when inactive or no query
  /// is open.
  QueryStats end_query(bool ok = true);

  /// Record the batch-level rank-0 gather span (+ histogram).
  void record_gather(double t_begin, double t_end, std::int64_t bytes);

  /// Emit one side of a worker → rank-0 gather handoff as a flow event on
  /// channel (kServeChannelCtx, kServeGatherTag, seq = worker rank).
  void emit_handoff(sched::EventKind ek, int peer, std::int64_t bytes,
                    double t_begin, double t_end);

  /// Write the accumulated per-tile miss costs into the registry as
  /// serve.tile.miss.{fetches,seconds,bytes} gauges labelled by tile
  /// coordinate. Gauges are set to cumulative values, so re-publishing is
  /// idempotent. Cheap enough per batch, not per query.
  void publish_tile_costs();

  const TileCostMap& tile_costs() const { return tile_costs_; }

 private:
  void close_segment(double t);
  telemetry::Histogram* hist(const std::string& name) const;

  Config cfg_;
  sched::TraceSink* sink_ = nullptr;
  telemetry::Registry* metrics_ = nullptr;

  // Resolved histogram handles (null when metrics_ is null).
  telemetry::Histogram* latency_ = nullptr;
  telemetry::Histogram* queue_wait_ = nullptr;
  std::array<telemetry::Histogram*, kNumStages> stage_hist_{};

  // Active-query state.
  bool in_query_ = false;
  std::int64_t qid_ = -1;
  double q_begin_ = 0.0;
  double batch_begin_ = -1.0;
  Stage cur_ = Stage::kRoute;
  double seg_begin_ = 0.0;
  std::array<double, kNumStages> stage_seconds_{};
  std::vector<sched::TraceEvent> pending_;  ///< stage intervals + instants

  TileCostMap tile_costs_;
};

/// RAII stage scope: switches the tracer's stage clock on entry and
/// restores the previous stage on exit, so nested scopes (walk → cache →
/// io) attribute every instant to the innermost stage.
class StageScope {
 public:
  StageScope(QueryTracer& t, Stage s) : t_(&t), prev_(t.switch_stage(s)) {}
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;
  ~StageScope() { t_->switch_stage(prev_); }

 private:
  QueryTracer* t_;
  Stage prev_;
};

// --- trace aggregation -------------------------------------------------------

/// One query reassembled from a captured trace.
struct ServeQueryBreakdown {
  int rank = 0;
  std::uint32_t qid = 0;
  double t_begin = 0.0;
  double total = 0.0;
  std::array<double, kNumStages> stage{};
  double coverage = 0.0;  ///< Σ stage intervals / total (≈ 1 when tiled)
  double max_gap = 0.0;   ///< worst gap OR overlap between intervals, s
};

/// Aggregate view of a serve trace: per-query breakdowns, latency
/// quantiles, overall + tail stage attribution, and the tiling check the
/// acceptance criteria gate on.
struct ServeTraceReport {
  bool ok = false;           ///< queries found and every span tree tiles
  std::string error;         ///< why not, when !ok
  int num_queries = 0;
  double p50 = 0.0;          ///< of per-query totals, seconds
  double p99 = 0.0;
  double total_seconds = 0.0;               ///< Σ query totals
  std::array<double, kNumStages> stage_seconds{};  ///< Σ per stage
  std::array<double, kNumStages> stage_share{};    ///< / total_seconds
  /// Mean stage shares among queries with total >= p99 — the tail
  /// attribution ("where do the slow queries spend their time").
  std::array<double, kNumStages> tail_share{};
  double gather_seconds = 0.0;  ///< Σ serveGather spans (batch level)
  double min_coverage = 0.0;    ///< worst per-query coverage
  double max_gap = 0.0;         ///< worst per-query gap/overlap, s
  std::vector<ServeQueryBreakdown> queries;  ///< sorted slowest first
};

/// Reassemble per-query span trees from a raw event stream (a
/// CollectTraceSink snapshot or a re-loaded Chrome trace). `tolerance` is
/// the max gap/overlap (seconds) a query may show and still count as
/// tiled — 0 exactness holds for in-memory captures; round-tripped Chrome
/// traces carry µs-rounding, so callers pass ~2e-6.
ServeTraceReport analyze_serve_trace(const std::vector<sched::TraceEvent>& events,
                                     double tolerance = 2e-6);

/// Human-readable report: quantiles, stage split, tail attribution and
/// the top-k slowest queries with their full breakdowns.
std::string format_serve_report(const ServeTraceReport& r, int top_k = 10);

}  // namespace parfw::serve
