// Memory-efficient blocked Floyd-Warshall (single-node Me-ParallelFw core).
//
// The full distance matrix stays on the HOST; only the k-th panels and the
// diagonal block visit the device each iteration (paper §4's offload
// model):
//   1. DiagUpdate on device: upload A(k,k), close it with log-squaring
//      SRGEMM launches (§4.2 / Eq. 4), download.
//   2. PanelUpdate on device: upload the k-th row/column panels, multiply
//      by the closed diagonal block, download.
//   3. OuterUpdate via ooGSrGemm on the four off-panel quadrants, with the
//      result streamed back and folded into host memory (hostUpdate).
//
// The feasible problem size is bounded by HOST memory (n² elements) plus
// a device working set of O(b·n + s·m_x·n_x) — the paper's "2.5× larger
// graphs" headline. Device capacity violations throw DeviceOutOfMemory.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "core/diag_update.hpp"
#include "devsim/device.hpp"
#include "offload/oog_srgemm.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "util/matrix.hpp"

namespace parfw::offload {

struct OffloadFwOptions {
  std::size_t block_size = 256;
  OogConfig oog{};
  DiagStrategy diag = DiagStrategy::kLogSquaring;
  srgemm::Config gemm{};
};

/// Aggregate statistics across all iterations.
struct OffloadFwStats {
  std::size_t iterations = 0;
  std::size_t oog_blocks = 0;
  std::size_t elems_h2d = 0;
  std::size_t elems_d2h = 0;
};

namespace detail {

/// Upload an arbitrary host sub-matrix into a packed (contiguous) device
/// image, row by row. Returns element count moved.
template <typename T>
std::size_t upload_packed(dev::Device& device, dev::Stream& st,
                          MatrixView<T> src, std::remove_const_t<T>* dst) {
  for (std::size_t i = 0; i < src.rows(); ++i)
    device.memcpy_h2d(st, dst + i * src.cols(), src.data() + i * src.ld(),
                      src.cols() * sizeof(T));
  return src.rows() * src.cols();
}

/// Download a packed device image back into a host sub-matrix.
template <typename T>
std::size_t download_packed(dev::Device& device, dev::Stream& st,
                            const T* src, MatrixView<T> dst) {
  for (std::size_t i = 0; i < dst.rows(); ++i)
    device.memcpy_d2h(st, dst.data() + i * dst.ld(), src + i * dst.cols(),
                      dst.cols() * sizeof(T));
  return dst.rows() * dst.cols();
}

}  // namespace detail

template <typename S>
OffloadFwStats offload_blocked_fw(dev::Device& device,
                                  MatrixView<typename S::value_type> a,
                                  const OffloadFwOptions& opt = {}) {
  static_assert(is_idempotent<S>(), "offload FW requires idempotent semiring");
  using T = typename S::value_type;
  PARFW_CHECK(a.rows() == a.cols());
  PARFW_CHECK(opt.block_size > 0);
  const std::size_t n = a.rows();
  const std::size_t b = opt.block_size;
  const std::size_t nb = (n + b - 1) / b;
  OffloadFwStats stats;

  // Device working set for the diagonal/panel phases.
  dev::DeviceBuffer<T> d_diag = device.alloc<T>(b * b);
  dev::DeviceBuffer<T> d_scr = device.alloc<T>(b * b);
  dev::DeviceBuffer<T> d_row = device.alloc<T>(b * n);  // row panel A(k,:)
  dev::DeviceBuffer<T> d_col = device.alloc<T>(n * b);  // col panel A(:,k)
  auto stream = device.create_stream();

  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t k0 = k * b;
    const std::size_t bk = std::min(n, k0 + b) - k0;
    ++stats.iterations;

    // --- 1. DiagUpdate on device ---------------------------------------
    stats.elems_h2d +=
        detail::upload_packed(device, *stream, a.sub(k0, k0, bk, bk),
                              d_diag.data());
    {
      T* diag = d_diag.data();
      T* scr = d_scr.data();
      const DiagStrategy strat = opt.diag;
      const srgemm::Config gemm = opt.gemm;
      device.launch(*stream, [diag, scr, bk, strat, gemm] {
        diag_update<S>(MatrixView<T>(diag, bk, bk, bk), strat,
                       MatrixView<T>(scr, bk, bk, bk), gemm);
      });
    }
    stats.elems_d2h += detail::download_packed(device, *stream, d_diag.data(),
                                               a.sub(k0, k0, bk, bk));

    // --- 2. PanelUpdate on device ---------------------------------------
    // Row panel: A(k, :) ← A(k,:) ⊕ A(k,k) ⊗ A(k,:)  (left multiply).
    stats.elems_h2d += detail::upload_packed(device, *stream,
                                             a.sub(k0, 0, bk, n), d_row.data());
    {
      T* diag = d_diag.data();
      T* row = d_row.data();
      const srgemm::Config gemm = opt.gemm;
      device.launch(*stream, [diag, row, bk, n, gemm] {
        srgemm::multiply<S>(MatrixView<const T>(diag, bk, bk, bk),
                            MatrixView<const T>(row, bk, n, n),
                            MatrixView<T>(row, bk, n, n), gemm);
      });
    }
    stats.elems_d2h += detail::download_packed(device, *stream, d_row.data(),
                                               a.sub(k0, 0, bk, n));

    // Column panel: A(:, k) ← A(:,k) ⊕ A(:,k) ⊗ A(k,k) (right multiply).
    stats.elems_h2d += detail::upload_packed(device, *stream,
                                             a.sub(0, k0, n, bk), d_col.data());
    {
      T* diag = d_diag.data();
      T* col = d_col.data();
      const srgemm::Config gemm = opt.gemm;
      device.launch(*stream, [diag, col, bk, n, gemm] {
        srgemm::multiply<S>(MatrixView<const T>(col, n, bk, bk),
                            MatrixView<const T>(diag, bk, bk, bk),
                            MatrixView<T>(col, n, bk, bk), gemm);
      });
    }
    stats.elems_d2h += detail::download_packed(device, *stream, d_col.data(),
                                               a.sub(0, k0, n, bk));
    stream->synchronize();

    // --- 3. OuterUpdate on the four quadrants via ooGSrGemm -------------
    // The operand panels are still resident on the device from the
    // PanelUpdate phase (d_col holds A(:,k) packed n x b, d_row holds
    // A(k,:) packed b x n), so the outer product streams only the RESULT
    // chunks — the panels are "sent only once" per iteration (§4.4).
    auto quadrant = [&](std::size_t r0, std::size_t nr, std::size_t c0,
                        std::size_t nc) {
      if (nr == 0 || nc == 0) return;
      const OogStats qs = oog_srgemm_device<S>(
          device, d_col.data() + r0 * bk, bk, d_row.data() + c0, n, nr, nc,
          bk, a.sub(r0, c0, nr, nc), opt.oog);
      stats.oog_blocks += qs.blocks;
      stats.elems_h2d += qs.elems_h2d;
      stats.elems_d2h += qs.elems_d2h;
    };
    const std::size_t after0 = k0 + bk;
    const std::size_t after_n = n - after0;
    quadrant(0, k0, 0, k0);
    quadrant(0, k0, after0, after_n);
    quadrant(after0, after_n, 0, k0);
    quadrant(after0, after_n, after0, after_n);
  }
  return stats;
}

}  // namespace parfw::offload
