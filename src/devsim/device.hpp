// Simulated accelerator device — the CUDA runtime substitute (DESIGN.md §1).
//
// Reproduces the CUDA semantics the paper's offload engine (§4.3–4.4)
// depends on:
//   * a device memory pool with a hard capacity — allocating past it
//     throws DeviceOutOfMemory, which is what makes the "beyond GPU
//     memory" regime of Figure 7 real in this reproduction;
//   * asynchronous streams: ops enqueued on one stream execute in order;
//     distinct streams execute concurrently and asynchronously to the
//     host (each stream owns a worker thread, like a HW queue);
//   * events for host↔stream synchronisation;
//   * async H2D/D2H copies and kernel launches.
//
// "Device memory" is ordinary host memory behind an accounting arena: the
// simulation is about *capacity, ordering and overlap*, not about a
// separate address space. An optional TransferModel throttles copies to a
// modelled link bandwidth (sleeping the stream worker), which makes
// compute/transfer overlap observable in wall-clock measurements.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "devsim/stream.hpp"
#include "util/check.hpp"

namespace parfw::dev {

/// Thrown when a device allocation exceeds the configured capacity —
/// the analogue of cudaErrorMemoryAllocation.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t free_bytes)
      : std::runtime_error("device out of memory: requested " +
                           std::to_string(requested) + " B, free " +
                           std::to_string(free_bytes) + " B") {}
};

/// Link throttling: when bytes_per_sec > 0, each copy occupies its stream
/// for bytes / bytes_per_sec seconds (plus latency), so transfers contend
/// with kernels on the same stream but overlap across streams — the exact
/// behaviour ooGSrGemm's pipeline exploits.
struct TransferModel {
  double bytes_per_sec = 0.0;  ///< 0 = untimed (functional only)
  double latency_sec = 0.0;
};

struct DeviceConfig {
  std::size_t memory_bytes = std::size_t{512} << 20;  ///< default 512 MiB
  TransferModel h2d{};
  TransferModel d2h{};
};

/// Traffic/usage counters, readable at any time (atomics). The transfer
/// busy-seconds measure the stream workers' wall time inside copies
/// (throttle sleep + memcpy), so bytes / seconds is the achieved link
/// utilisation when a TransferModel is active. Exported through the
/// telemetry adapter (telemetry/adapters.hpp) — one export path; this
/// struct stays as the cheap back-compat view.
struct DeviceCounters {
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t kernels_launched = 0;
  std::uint64_t allocs = 0;
  std::uint64_t peak_bytes_in_use = 0;
  double h2d_seconds = 0.0;  ///< stream-worker busy time in H2D copies
  double d2h_seconds = 0.0;  ///< stream-worker busy time in D2H copies
};

class Device;

/// RAII device allocation of `count` elements of T. Freeing returns the
/// bytes to the device pool. Move-only.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* device, T* data, std::size_t count)
      : device_(device), data_(data), count_(count) {}
  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      device_ = std::exchange(o.device_, nullptr);
      data_ = std::exchange(o.data_, nullptr);
      count_ = std::exchange(o.count_, 0);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  T* data() const noexcept { return data_; }
  std::size_t count() const noexcept { return count_; }
  std::size_t bytes() const noexcept { return count_ * sizeof(T); }
  bool valid() const noexcept { return data_ != nullptr; }

 private:
  void release() noexcept;
  Device* device_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

/// The simulated device. Thread-safe; streams are created on demand.
class Device {
 public:
  explicit Device(const DeviceConfig& cfg = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocate count elements of T from the device pool.
  /// Throws DeviceOutOfMemory when the pool cannot satisfy the request.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count) {
    void* p = raw_alloc(count * sizeof(T), alignof(T));
    return DeviceBuffer<T>(this, static_cast<T*>(p), count);
  }

  /// Deleter used by StreamPtr: drains the stream, deregisters it from
  /// the device, then destroys it.
  struct StreamDeleter {
    Device* device = nullptr;
    void operator()(Stream* s) const;
  };
  using StreamPtr = std::unique_ptr<Stream, StreamDeleter>;

  /// Create an asynchronous stream (the cudaStreamCreate analogue).
  /// The returned handle must not outlive the device.
  StreamPtr create_stream();

  /// Enqueue an async host→device copy of `bytes` on `s`.
  void memcpy_h2d(Stream& s, void* dst_dev, const void* src_host,
                  std::size_t bytes);
  /// Enqueue an async device→host copy of `bytes` on `s`.
  void memcpy_d2h(Stream& s, void* dst_host, const void* src_dev,
                  std::size_t bytes);
  /// Enqueue a kernel (arbitrary functor executed by the stream worker).
  void launch(Stream& s, std::function<void()> kernel);

  /// Block until every stream created from this device has drained
  /// (cudaDeviceSynchronize analogue).
  void synchronize();

  std::size_t memory_bytes() const { return cfg_.memory_bytes; }
  std::size_t bytes_in_use() const { return bytes_in_use_.load(); }
  std::size_t bytes_free() const { return cfg_.memory_bytes - bytes_in_use(); }
  DeviceCounters counters() const;
  void reset_counters();

 private:
  template <typename T>
  friend class DeviceBuffer;

  void* raw_alloc(std::size_t bytes, std::size_t align);
  void raw_free(void* p, std::size_t bytes) noexcept;
  static void throttle(const TransferModel& m, std::size_t bytes);
  static void accumulate_seconds(std::atomic<double>& acc, double s);

  DeviceConfig cfg_;
  std::atomic<std::size_t> bytes_in_use_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> bytes_h2d_{0}, bytes_d2h_{0}, kernels_{0},
      allocs_{0};
  std::atomic<double> h2d_seconds_{0.0}, d2h_seconds_{0.0};

  std::mutex streams_mu_;
  std::vector<Stream*> streams_;  // registry for synchronize(); not owning
};

template <typename T>
void DeviceBuffer<T>::release() noexcept {
  if (device_ != nullptr && data_ != nullptr)
    device_->raw_free(data_, count_ * sizeof(T));
  device_ = nullptr;
  data_ = nullptr;
  count_ = 0;
}

}  // namespace parfw::dev
