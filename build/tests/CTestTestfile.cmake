# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_semiring[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_srgemm[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sssp[1]_include.cmake")
include("/root/repo/build/tests/test_devsim[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_core_ext[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim_stress[1]_include.cmake")
