// Ablation — operand packing in the SRGEMM kernel (DESIGN.md §4).
//
// The blocked-FW hot shape multiplies thin panels that are strided views
// of a much larger matrix (ld >> cols). Packing copies each macro tile
// into contiguous scratch before the register sweep, trading O(mn+nk)
// copies for dense streaming in the O(mnk) loop — the GotoBLAS recipe the
// paper's CUTLASS kernel applies on the GPU side via shared-memory tiles.
#include <benchmark/benchmark.h>

#include "graph/graph.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"

namespace {

using S = parfw::MinPlus<float>;

/// Panels carved out of a big matrix (ld = 2048 regardless of panel size).
struct StridedOperands {
  parfw::Matrix<float> backing;
  parfw::MatrixView<const float> a, b;
  parfw::MatrixView<float> c;

  StridedOperands(std::size_t m, std::size_t n, std::size_t k)
      : backing(2048, 2048) {
    parfw::DenseEntryGen<float> gen(7, 1.0, 1.0f, 99.0f);
    gen.fill_block(0, 0, backing.view());
    a = backing.sub(0, 0, m, k);
    b = backing.sub(0, 512, k, n);
    c = backing.sub(512, 512, m, n);
  }
};

void BM_PanelShapeUnpacked(benchmark::State& state) {
  const std::size_t m = 1024, n = 1024, k = static_cast<std::size_t>(state.range(0));
  StridedOperands ops(m, n, k);
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(ops.a, ops.b, ops.c);
    benchmark::DoNotOptimize(ops.c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(m, n, k) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PanelShapeUnpacked)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_PanelShapePacked(benchmark::State& state) {
  const std::size_t m = 1024, n = 1024, k = static_cast<std::size_t>(state.range(0));
  StridedOperands ops(m, n, k);
  parfw::srgemm::Config cfg;
  cfg.pack = true;
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(ops.a, ops.b, ops.c, cfg);
    benchmark::DoNotOptimize(ops.c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(m, n, k) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PanelShapePacked)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
