// Serving-tier tests (DESIGN.md §4.12): tile cache policy (budget
// invariant, determinism, admission), manifest validation, and the
// central contract — served distances, statuses and paths bit-identical
// to the in-memory ApspResult oracle, across all distributed variants,
// both placements, crashed-and-resumed producers, the solve() front door
// (auto included), and the sharded mpisim serving tier.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "causal/analysis.hpp"
#include "causal/graph.hpp"
#include "causal/trace_io.hpp"
#include "core/apsp.hpp"
#include "core/checkpoint_store.hpp"
#include "core/floyd_warshall.hpp"
#include "core/query.hpp"
#include "dist/driver.hpp"
#include "dist/solve.hpp"
#include "graph/generators.hpp"
#include "mpisim/runtime.hpp"
#include "sched/trace.hpp"
#include "serve/manifest.hpp"
#include "serve/path_service.hpp"
#include "serve/publish.hpp"
#include "serve/qtrace.hpp"
#include "serve/sharded.hpp"
#include "serve/slo.hpp"
#include "serve/tile_cache.hpp"
#include "serve/workload.hpp"
#include "telemetry/metrics.hpp"

namespace parfw {
namespace {

using S = MinPlus<float>;
using serve::CacheAdmission;
using serve::TileCache;
using serve::TileCacheConfig;
using serve::TileKey;
using serve::TileKind;

std::vector<std::uint8_t> tile_bytes(std::size_t size, std::uint8_t fill) {
  return std::vector<std::uint8_t>(size, fill);
}

// --- TileCache ---------------------------------------------------------------

TEST(TileCache, HitMissAccountingAndBudgetInvariant) {
  TileCache cache(TileCacheConfig{/*budget_bytes=*/1000});
  // Deterministic stream of 40 distinct 300-byte tiles, re-touched in a
  // cycle: budget holds 3 tiles, so the sweep thrashes. The invariant —
  // bytes_resident <= budget — must hold after EVERY operation.
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t i = 0; i < 40; ++i) {
      const TileKey key{TileKind::kValue, i, 0};
      if (cache.find(key) == nullptr) {
        auto bytes = tile_bytes(300, static_cast<std::uint8_t>(i));
        cache.insert(key, bytes);
      }
      ASSERT_LE(cache.stats().bytes_resident, cache.budget_bytes());
      ASSERT_LE(cache.stats().bytes_peak, cache.budget_bytes());
    }
  }
  const auto& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 200u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.bytes_resident, 900u);  // 3 resident 300-byte tiles
}

TEST(TileCache, DeterministicUnderFixedStream) {
  // Two caches fed the identical request stream must agree on every
  // statistic — the property the BENCH_serve hit-rate gate stands on.
  const TileCacheConfig cfg{/*budget_bytes=*/4096,
                            CacheAdmission::kSecondTouch,
                            /*ghost_capacity=*/16};
  TileCache a(cfg), b(cfg);
  Rng rng = Rng::split(42, 7);
  std::vector<TileKey> stream;
  for (int i = 0; i < 2000; ++i)
    stream.push_back(TileKey{TileKind::kValue,
                             static_cast<std::uint32_t>(rng.next_below(24)),
                             static_cast<std::uint32_t>(rng.next_below(24))});
  for (const TileKey& key : stream) {
    const bool ha = a.find(key) != nullptr;
    const bool hb = b.find(key) != nullptr;
    ASSERT_EQ(ha, hb);
    if (!ha) {
      auto ba = tile_bytes(256, 1), bb = tile_bytes(256, 1);
      ASSERT_EQ(a.insert(key, ba) != nullptr, b.insert(key, bb) != nullptr);
    }
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.stats().admitted, b.stats().admitted);
  EXPECT_EQ(a.stats().bypassed, b.stats().bypassed);
  EXPECT_EQ(a.stats().bytes_resident, b.stats().bytes_resident);
}

TEST(TileCache, SecondTouchAdmission) {
  TileCache cache(TileCacheConfig{/*budget_bytes=*/4096,
                                  CacheAdmission::kSecondTouch});
  const TileKey key{TileKind::kPred, 3, 4};
  auto bytes = tile_bytes(128, 9);
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.insert(key, bytes), nullptr);  // first touch: ghost only
  EXPECT_EQ(cache.stats().bypassed, 1u);
  EXPECT_EQ(cache.find(key), nullptr);
  const auto* stored = cache.insert(key, bytes);  // second touch: admitted
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->size(), 128u);
  EXPECT_NE(cache.find(key), nullptr);
  EXPECT_EQ(cache.stats().admitted, 1u);
}

TEST(TileCache, OversizedTileNeverAdmitted) {
  TileCache cache(TileCacheConfig{/*budget_bytes=*/100});
  const TileKey key{TileKind::kValue, 0, 0};
  auto bytes = tile_bytes(101, 1);
  EXPECT_EQ(cache.insert(key, bytes), nullptr);
  EXPECT_EQ(bytes.size(), 101u);  // caller keeps its buffer
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
}

TEST(TileCache, ClockGivesSecondChanceToTouchedTiles) {
  // Budget = 2 tiles. Touch A so its reference bit is set; inserting C
  // must evict B (A gets its second chance), the defining CLOCK move.
  TileCache cache(TileCacheConfig{/*budget_bytes=*/200});
  const TileKey ka{TileKind::kValue, 0, 0}, kb{TileKind::kValue, 1, 0},
      kc{TileKind::kValue, 2, 0};
  auto bytes = tile_bytes(100, 1);
  cache.insert(ka, bytes);
  bytes = tile_bytes(100, 2);
  cache.insert(kb, bytes);
  ASSERT_NE(cache.find(ka), nullptr);  // sets A's reference bit
  bytes = tile_bytes(100, 3);
  cache.insert(kc, bytes);
  EXPECT_NE(cache.find(ka), nullptr) << "referenced tile was evicted";
  EXPECT_EQ(cache.find(kb), nullptr) << "unreferenced tile survived";
  EXPECT_NE(cache.find(kc), nullptr);
}

// --- Workload generator ------------------------------------------------------

TEST(Workload, DeterministicAndSkewed) {
  serve::WorkloadSpec spec;
  spec.n = 1000;
  spec.queries = 5000;
  spec.zipf_s = 1.2;
  spec.seed = 9;
  const QueryBatch a = serve::make_workload(spec);
  const QueryBatch b = serve::make_workload(spec);
  ASSERT_EQ(a.size(), 5000u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pairs[i].src, b.pairs[i].src);
    EXPECT_EQ(a.pairs[i].dst, b.pairs[i].dst);
  }
  // Zipf(1.2): the top-10 ids must dominate; uniform would give ~1%.
  std::size_t top = 0;
  for (const PathQuery& q : a.pairs) top += q.src < 10 ? 1 : 0;
  EXPECT_GT(top, a.size() / 3);

  spec.zipf_s = 0.0;
  const QueryBatch u = serve::make_workload(spec);
  std::size_t utop = 0;
  for (const PathQuery& q : u.pairs) utop += q.src < 10 ? 1 : 0;
  EXPECT_LT(utop, a.size() / 20);
}

// --- ApspResult query API ----------------------------------------------------

TEST(QueryApi, StatusDistinguishesUnreachableFromNotTracked) {
  // 0 -> 1 -> 2, vertex 3 isolated.
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  ApspOptions opt;
  opt.track_paths = true;
  const auto tracked = apsp<MinPlus<double>>(g, opt);

  auto r = tracked.query(0, 2);
  EXPECT_EQ(r.status, PathStatus::kFound);
  EXPECT_EQ(r.distance, 5.0);
  EXPECT_EQ(r.path, (std::vector<std::int64_t>{0, 1, 2}));
  r = tracked.query(0, 3);
  EXPECT_EQ(r.status, PathStatus::kUnreachable);
  EXPECT_EQ(r.distance, value_traits<double>::infinity());
  EXPECT_TRUE(r.path.empty());
  r = tracked.query(3, 3);  // self-query is found even on an isolate
  EXPECT_EQ(r.status, PathStatus::kFound);
  EXPECT_EQ(r.path, (std::vector<std::int64_t>{3}));
  r = tracked.query(0, 2, /*want_path=*/false);
  EXPECT_EQ(r.status, PathStatus::kFound);
  EXPECT_TRUE(r.path.empty());

  const auto untracked = apsp<MinPlus<double>>(g, {});
  r = untracked.query(0, 2);
  EXPECT_EQ(r.status, PathStatus::kNotTracked);
  EXPECT_EQ(r.distance, 5.0);
  r = untracked.query(0, 3);
  EXPECT_EQ(r.status, PathStatus::kNotTracked) << "distance-only results "
                                                  "cannot claim unreachable";

  QueryBatch batch;
  batch.add(0, 2);
  batch.add_one_to_many(1, std::vector<std::int64_t>{0, 2, 3});
  const auto results = tracked.answer(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[1].status, PathStatus::kUnreachable);  // 1 -> 0
  EXPECT_EQ(results[2].path, (std::vector<std::int64_t>{1, 2}));

  // The deprecated shim still answers (ambiguously) for old callers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(tracked.path(0, 2), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_TRUE(tracked.path(0, 3).empty());
  EXPECT_TRUE(untracked.path(0, 2).empty());
#pragma GCC diagnostic pop
}

// --- Publish + serve round trip ---------------------------------------------

/// In-memory oracle + a store holding its published manifest. The store
/// lives behind a unique_ptr because MemoryCheckpointStore owns a mutex
/// and is therefore immovable.
struct Published {
  ApspResult<float> oracle;
  std::unique_ptr<MemoryCheckpointStore> store_ptr =
      std::make_unique<MemoryCheckpointStore>();
  MemoryCheckpointStore& store() { return *store_ptr; }
};

Published publish_case(std::size_t n, std::size_t b, int pr, int pc,
                       bool paths, std::uint64_t seed = 11,
                       double density = 0.35) {
  Published p;
  const Graph g = gen::erdos_renyi(static_cast<vertex_t>(n), density, seed);
  ApspOptions opt;
  opt.block_size = b;
  opt.track_paths = paths;
  p.oracle = apsp<S>(g, opt);
  serve::publish_result(p.store(), p.oracle, b, pr, pc);
  return p;
}

void expect_all_pairs_match(serve::PathService<S>& service,
                            const ApspResult<float>& oracle, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const auto want = oracle.query(static_cast<std::int64_t>(i),
                                     static_cast<std::int64_t>(j));
      const auto got = service.query(static_cast<std::int64_t>(i),
                                     static_cast<std::int64_t>(j));
      ASSERT_EQ(got.status, want.status) << i << " -> " << j;
      ASSERT_EQ(got.distance, want.distance) << i << " -> " << j;
      ASSERT_EQ(got.path, want.path) << i << " -> " << j;
    }
}

TEST(PathService, AllPairsBitIdenticalUnderTinyCache) {
  // n=60, b=12: paths cross tile boundaries constantly. The budget holds
  // just two tiles, so the walk evicts mid-path — correctness must not
  // depend on residency.
  Published p = publish_case(60, 12, 2, 2, /*paths=*/true);
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 2 * 12 * 12 * sizeof(std::int64_t);
  serve::PathService<S> service(p.store(), sopt);
  expect_all_pairs_match(service, p.oracle, 60);
  EXPECT_GT(service.cache_stats().evictions, 0u);
  EXPECT_LE(service.cache_stats().bytes_peak, sopt.cache_budget_bytes);
}

TEST(PathService, ServiceCacheDeterministicAcrossInstances) {
  Published p = publish_case(48, 8, 1, 2, /*paths=*/true);
  serve::WorkloadSpec wspec;
  wspec.n = 48;
  wspec.queries = 600;
  wspec.zipf_s = 0.9;
  wspec.seed = 4;
  const QueryBatch batch = serve::make_workload(wspec);
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 6 * 8 * 8 * sizeof(std::int64_t);
  sopt.admission = CacheAdmission::kSecondTouch;
  serve::PathService<S> s1(p.store(), sopt), s2(p.store(), sopt);
  const auto r1 = s1.answer(batch);
  const auto r2 = s2.answer(batch);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) ASSERT_EQ(r1[i].path, r2[i].path);
  EXPECT_EQ(s1.cache_stats().hits, s2.cache_stats().hits);
  EXPECT_EQ(s1.cache_stats().misses, s2.cache_stats().misses);
  EXPECT_EQ(s1.cache_stats().evictions, s2.cache_stats().evictions);
  EXPECT_LE(s1.cache_stats().bytes_peak, sopt.cache_budget_bytes);
}

TEST(PathService, ValuesOnlyManifestHardErrorsOnPathQueries) {
  Published p = publish_case(40, 8, 1, 1, /*paths=*/false);
  serve::PathService<S> service(p.store());
  // Distance-only batches are fine...
  auto r = service.query(0, 7, /*want_path=*/false);
  EXPECT_EQ(r.status, PathStatus::kNotTracked);
  EXPECT_EQ(r.distance, p.oracle.dist(0, 7));
  // ...but asking for a path must fail loudly, mirroring the PR 7 resume
  // rule for value-only blobs.
  try {
    service.query(0, 7, /*want_path=*/true);
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("values-only manifest"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("track_paths"), std::string::npos);
  }
}

TEST(ServeManifest, RejectsMidRunCheckpointStores) {
  // A checkpointed run that NEVER published: the store holds a mid-run
  // committed cut (k0 < nb). Serving it would answer half-closed
  // distances — open() must refuse.
  const std::size_t n = 64, b = 16;
  DenseEntryGen<float> gen(321, 0.8, 1.0f, 50.0f, /*integral=*/true);
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.block_size = b;
  MemoryCheckpointStore store;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  (void)dist::run_parallel_fw<S>(n, gen, grid, 2, opt);
  ASSERT_TRUE(dist::read_commit(store).has_value());
  EXPECT_THROW(serve::ServeManifest::open(store), check_error);
  try {
    serve::ServeManifest::open(store);
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("mid-run"), std::string::npos)
        << e.what();
  }
}

TEST(ServeManifest, RejectsEmptyStore) {
  MemoryCheckpointStore store;
  EXPECT_THROW(serve::ServeManifest::open(store), check_error);
}

// --- Served == oracle across the distributed matrix --------------------------

struct ServeCase {
  sched::Variant variant;
  bool tiled;
};

class ServedCrashResume : public ::testing::TestWithParam<ServeCase> {};

TEST_P(ServedCrashResume, ServedBitIdenticalToGatheredOracle) {
  // The manifest under test is written by a run that CRASHED, resumed
  // from a committed cut, finished, and then published in situ — the
  // full production lifecycle. Every served answer must match the
  // in-memory oracle built from the gathered matrices bit for bit.
  const ServeCase c = GetParam();
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(6100 + static_cast<std::uint64_t>(c.variant),
                           0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto grid = c.tiled ? dist::GridSpec::tiled(1, 2, 2, 1)
                            : dist::GridSpec::row_major(2, 2);
  const int rpn = c.tiled ? grid.qr() * grid.qc() : 2;

  dist::DistFwOptions opt;
  opt.variant = c.variant;
  opt.block_size = b;
  if (c.variant == sched::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 16;
    opt.oog.num_streams = 2;
  }
  sched::ScheduleParams sp;
  sp.variant = c.variant;
  sp.nb = n / b;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.pred_word_bytes = sizeof(std::int64_t);
  sp.checkpoint_every = 2;
  const auto schedule = sched::build_schedule(grid, sp);

  MemoryCheckpointStore store;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  opt.publish_store = &store;  // aliasing the resilience store is legal
  opt.faults.seed = 17;
  opt.faults.crash_rank = 1;
  opt.faults.crash_at_op =
      static_cast<std::int64_t>(schedule.steps.size() * 6 / 10);

  const auto run = dist::run_parallel_fw<S>(n, gen, grid, rpn, opt,
                                            /*track_paths=*/true);
  ASSERT_GE(run.restarts, 1) << "the injected crash must have fired";

  ApspResult<float> oracle;
  oracle.dist = run.dist.clone();
  oracle.pred.emplace(run.pred.clone());

  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 24 * b * b * sizeof(std::int64_t);
  serve::PathService<S> service(store, sopt);
  EXPECT_EQ(service.manifest().world_size(), 4u);
  expect_all_pairs_match(service, oracle, n);
  EXPECT_LE(service.cache_stats().bytes_peak, sopt.cache_budget_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, ServedCrashResume,
    ::testing::Values(ServeCase{sched::Variant::kBaseline, false},
                      ServeCase{sched::Variant::kPipelined, false},
                      ServeCase{sched::Variant::kAsync, false},
                      ServeCase{sched::Variant::kOffload, false},
                      ServeCase{sched::Variant::kBaseline, true},
                      ServeCase{sched::Variant::kPipelined, true},
                      ServeCase{sched::Variant::kAsync, true},
                      ServeCase{sched::Variant::kOffload, true}));

TEST(ServeFrontDoor, SolvePublishesThroughDistStrategyIncludingAuto) {
  // The solve() front door: DistStrategy::publish_store flows into the
  // driver; the served answers match the returned result — with an
  // explicit variant and with kAuto (tuner-resolved schedule).
  const Graph g = gen::erdos_renyi(96, 0.3, 23);
  for (const bool use_auto : {false, true}) {
    ApspOptions opt;
    opt.algorithm = ApspAlgorithm::kDistributed;
    opt.block_size = 16;
    opt.track_paths = true;
    opt.dist.grid_rows = opt.dist.grid_cols = 2;
    opt.dist.variant =
        use_auto ? sched::Variant::kAuto : sched::Variant::kPipelined;
    MemoryCheckpointStore store;
    opt.dist.publish_store = &store;
    const auto result = solve<MinPlus<double>>(g, opt);

    serve::PathService<MinPlus<double>> service(store);
    serve::WorkloadSpec wspec;
    wspec.n = 96;
    wspec.queries = 400;
    wspec.zipf_s = 1.1;
    wspec.seed = 31;
    const QueryBatch batch = serve::make_workload(wspec);
    const auto want = result.answer(batch);
    const auto got = service.answer(batch);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].status, want[i].status) << "auto=" << use_auto;
      ASSERT_EQ(got[i].distance, want[i].distance) << "auto=" << use_auto;
      ASSERT_EQ(got[i].path, want[i].path) << "auto=" << use_auto;
    }
  }
}

TEST(ServeFrontDoor, FileStoreServesPublishedManifest) {
  // End-to-end through FileCheckpointStore: exercises the positioned-read
  // get_ranges override against real files.
  const auto dir =
      std::filesystem::temp_directory_path() / "parfw_serve_file_store";
  std::filesystem::remove_all(dir);
  FileCheckpointStore store(dir);
  const Graph g = gen::erdos_renyi(48, 0.3, 5);
  ApspOptions opt;
  opt.block_size = 8;
  opt.track_paths = true;
  const auto oracle = apsp<S>(g, opt);
  serve::publish_result(store, oracle, 8, 2, 2);

  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 4 * 8 * 8 * sizeof(std::int64_t);
  serve::PathService<S> service(store, sopt);
  expect_all_pairs_match(service, oracle, 48);
  std::filesystem::remove_all(dir);
}

// --- Sharded serving ---------------------------------------------------------

TEST(ShardedServe, RoutedResultsMatchLocalService) {
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(777, 0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.block_size = b;
  MemoryCheckpointStore store;
  opt.publish_store = &store;
  const auto run = dist::run_parallel_fw<S>(n, gen, grid, 2, opt,
                                            /*track_paths=*/true);
  ApspResult<float> oracle;
  oracle.dist = run.dist.clone();
  oracle.pred.emplace(run.pred.clone());

  serve::WorkloadSpec wspec;
  wspec.n = static_cast<std::int64_t>(n);
  wspec.queries = 500;
  wspec.zipf_s = 1.0;
  wspec.seed = 13;
  const QueryBatch batch = serve::make_workload(wspec);
  const auto want = oracle.answer(batch);

  std::vector<QueryResult<float>> got;
  mpi::Runtime::run(4, [&](mpi::Comm& world) {
    serve::ServeOptions sopt;
    sopt.cache_budget_bytes = 16 * b * b * sizeof(std::int64_t);
    auto results = serve::sharded_answer<S>(world, store, batch, sopt);
    if (world.rank() == 0) got = std::move(results);
  });
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].status, want[i].status) << "query " << i;
    ASSERT_EQ(got[i].distance, want[i].distance) << "query " << i;
    ASSERT_EQ(got[i].path, want[i].path) << "query " << i;
  }
}

TEST(ShardedServe, WorldSizeMustMatchManifest) {
  Published p = publish_case(32, 8, 2, 2, /*paths=*/true);
  mpi::Runtime::run(2, [&](mpi::Comm& world) {
    QueryBatch batch;
    batch.add(0, 1);
    EXPECT_THROW(serve::sharded_answer<S>(world, p.store(), batch),
                 check_error);
  });
}

// --- Serving observability (DESIGN.md §4.13) ---------------------------------

TEST(TileCache, GhostHitsCounted) {
  // Only a ghost-window second touch bumps ghost_hits; kAlways admissions
  // never do — that distinction is the signal the admission tuner reads.
  TileCache cache(TileCacheConfig{/*budget_bytes=*/4096,
                                  CacheAdmission::kSecondTouch});
  const TileKey key{TileKind::kValue, 1, 2};
  auto bytes = tile_bytes(64, 5);
  EXPECT_EQ(cache.insert(key, bytes), nullptr);  // first touch: ghost only
  EXPECT_EQ(cache.stats().ghost_hits, 0u);
  EXPECT_NE(cache.insert(key, bytes), nullptr);  // second touch: admitted
  EXPECT_EQ(cache.stats().ghost_hits, 1u);
  EXPECT_EQ(cache.stats().admitted, 1u);

  TileCache always(TileCacheConfig{/*budget_bytes=*/4096,
                                   CacheAdmission::kAlways});
  auto more = tile_bytes(64, 6);
  EXPECT_NE(always.insert(key, more), nullptr);
  EXPECT_EQ(always.stats().ghost_hits, 0u);
}

TEST(QTrace, SpanTreeTilesQueryWindow) {
  // The acceptance gate of §4.13: every query's stage intervals tile its
  // span exactly (in-memory capture, so ZERO tolerance up to FP identity),
  // and the serve.stage.* histograms reconcile with serve.query.latency.
  Published p = publish_case(60, 12, 2, 2, /*paths=*/true);
  sched::CollectTraceSink sink;
  telemetry::Registry reg;
  serve::ServeOptions sopt;
  // Two pred tiles: the walk thrashes, so route/cache/io/walk all appear.
  sopt.cache_budget_bytes = 2 * 12 * 12 * sizeof(std::int64_t);
  sopt.trace = &sink;
  sopt.metrics = &reg;
  serve::PathService<S> service(p.store(), sopt);

  serve::WorkloadSpec wspec;
  wspec.n = 60;
  wspec.queries = 300;
  wspec.zipf_s = 0.8;
  wspec.seed = 3;
  const QueryBatch batch = serve::make_workload(wspec);
  ASSERT_EQ(service.answer(batch).size(), batch.size());

  const serve::ServeTraceReport r =
      serve::analyze_serve_trace(sink.events(), /*tolerance=*/1e-9);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.num_queries, 300);
  EXPECT_GT(r.min_coverage, 0.9999);
  EXPECT_LE(r.max_gap, 1e-9);

  telemetry::Histogram& lat = reg.histogram("serve.query.latency");
  EXPECT_EQ(lat.count(), 300u);
  EXPECT_EQ(reg.histogram("serve.queue.wait").count(), 300u);
  double stage_sum = 0.0;
  for (int s = 0; s + 1 < serve::kNumStages; ++s) {
    telemetry::Histogram& h = reg.histogram(
        std::string("serve.stage.") +
        serve::stage_name(static_cast<serve::Stage>(s)) + ".latency");
    // Zero stage times are observed too, so per-stage counts match the
    // query count and rates stay comparable across stages.
    EXPECT_EQ(h.count(), 300u);
    stage_sum += h.sum();
  }
  EXPECT_NEAR(stage_sum, lat.sum(), 0.01 * lat.sum());
  EXPECT_NEAR(r.total_seconds, lat.sum(), 1e-12 + 1e-9 * lat.sum());
}

TEST(QTrace, TileMissCostsPublished) {
  // Every cache miss is attributed to its tile: the published
  // serve.tile.miss.fetches gauges (and the tracer's in-memory map) sum
  // to exactly the cache's miss count.
  Published p = publish_case(48, 8, 1, 1, /*paths=*/true);
  telemetry::Registry reg;
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 4 * 8 * 8 * sizeof(std::int64_t);
  sopt.metrics = &reg;
  serve::PathService<S> service(p.store(), sopt);

  serve::WorkloadSpec wspec;
  wspec.n = 48;
  wspec.queries = 400;
  wspec.zipf_s = 1.0;
  wspec.seed = 7;
  const QueryBatch batch = serve::make_workload(wspec);
  ASSERT_EQ(service.answer(batch).size(), batch.size());
  ASSERT_GT(service.cache_stats().misses, 0u);

  double gauge_fetches = 0.0;
  for (const telemetry::MetricRow& row : reg.snapshot())
    if (row.name == "serve.tile.miss.fetches") gauge_fetches += row.value;
  EXPECT_EQ(static_cast<std::uint64_t>(gauge_fetches),
            service.cache_stats().misses);

  std::uint64_t map_fetches = 0;
  for (const auto& [key, cost] : service.tracer().tile_costs()) {
    (void)key;
    map_fetches += cost.fetches;
    EXPECT_GT(cost.bytes, 0u);
    EXPECT_GT(cost.io_seconds, 0.0);
  }
  EXPECT_EQ(map_fetches, service.cache_stats().misses);
}

TEST(QTrace, ChromeTraceRoundTrip) {
  // Serve spans written as a Chrome trace survive the causal loader: the
  // reassembled span trees still tile (within the µs-rounding tolerance)
  // and causal::build_graph/analyze consume them unchanged.
  Published p = publish_case(48, 8, 1, 2, /*paths=*/true);
  sched::ChromeTraceSink sink;
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 4 * 8 * 8 * sizeof(std::int64_t);
  sopt.trace = &sink;
  serve::PathService<S> service(p.store(), sopt);

  serve::WorkloadSpec wspec;
  wspec.n = 48;
  wspec.queries = 150;
  wspec.zipf_s = 0.0;
  wspec.seed = 19;
  const QueryBatch batch = serve::make_workload(wspec);
  ASSERT_EQ(service.answer(batch).size(), batch.size());

  std::ostringstream os;
  sink.write(os);
  const causal::LoadResult loaded = causal::load_chrome_trace(os.str());
  ASSERT_TRUE(loaded.ok) << loaded.error;

  const serve::ServeTraceReport r = serve::analyze_serve_trace(loaded.events);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.num_queries, 150);
  EXPECT_GT(r.min_coverage, 0.99);
  EXPECT_FALSE(format_serve_report(r).empty());

  causal::Graph g = causal::build_graph(loaded.events);
  causal::BlameReport blame;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &blame, &err)) << err;
  EXPECT_GT(blame.span, 0.0);
  ASSERT_FALSE(blame.by_phase.empty());
  for (const auto& [phase, totals] : blame.by_phase) {
    (void)totals;
    EXPECT_TRUE(phase == "route" || phase == "cache" || phase == "io" ||
                phase == "walk" || phase == "gather" || phase == "query")
        << "unexpected serve phase: " << phase;
  }
}

/// Wraps a published store and adds a fixed delay to every ranged read —
/// the injected slow-IO stage of the tail-attribution test.
class SlowRangeStore final : public CheckpointStore {
 public:
  SlowRangeStore(const CheckpointStore& inner, std::chrono::microseconds d)
      : inner_(inner), delay_(d) {}
  void put(const std::string&, std::span<const std::uint8_t>) override {
    PARFW_CHECK_MSG(false, "SlowRangeStore is read-only");
  }
  std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const override {
    return inner_.get(key);
  }
  void erase(const std::string&) override {
    PARFW_CHECK_MSG(false, "SlowRangeStore is read-only");
  }
  std::vector<std::string> keys() const override { return inner_.keys(); }
  bool get_ranges(const std::string& key, std::span<const ByteRange> ranges,
                  std::uint8_t* out) const override {
    std::this_thread::sleep_for(delay_);
    return inner_.get_ranges(key, ranges, out);
  }

 private:
  const CheckpointStore& inner_;
  std::chrono::microseconds delay_;
};

TEST(QTrace, SlowIoDominatesTailAttribution) {
  // Inject a 200 µs penalty on every store read under a two-tile cache:
  // the p99 tail attribution must blame the io stage — the property the
  // trace_analyze --mode serve blame split stands on.
  Published p = publish_case(48, 8, 2, 2, /*paths=*/true);
  SlowRangeStore slow(p.store(), std::chrono::microseconds(200));
  sched::CollectTraceSink sink;
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 2 * 8 * 8 * sizeof(std::int64_t);
  sopt.trace = &sink;
  serve::PathService<S> service(slow, sopt);

  serve::WorkloadSpec wspec;
  wspec.n = 48;
  wspec.queries = 200;
  wspec.zipf_s = 0.0;
  wspec.seed = 29;
  const QueryBatch batch = serve::make_workload(wspec);
  ASSERT_EQ(service.answer(batch).size(), batch.size());
  ASSERT_GT(service.cache_stats().misses, 0u);

  const serve::ServeTraceReport r =
      serve::analyze_serve_trace(sink.events(), /*tolerance=*/1e-9);
  ASSERT_TRUE(r.ok) << r.error;
  const int io = static_cast<int>(serve::Stage::kIo);
  EXPECT_GT(r.tail_share[static_cast<std::size_t>(io)], 0.5);
  for (int s = 0; s + 1 < serve::kNumStages; ++s) {
    if (s == io) continue;
    EXPECT_GT(r.tail_share[static_cast<std::size_t>(io)],
              r.tail_share[static_cast<std::size_t>(s)])
        << "stage " << serve::stage_name(static_cast<serve::Stage>(s));
  }
}

TEST(ShardedServe, MetricsSumAcrossRanksAndGatherRecorded) {
  // Each query is answered exactly once on exactly one rank, so the
  // per-rank serve.query.count counters sum to the batch size; rank 0
  // records the gather span and the worker handoffs appear as matched
  // send/recv flow events on the serve channel.
  Published p = publish_case(64, 16, 2, 2, /*paths=*/true);
  serve::WorkloadSpec wspec;
  wspec.n = 64;
  wspec.queries = 200;
  wspec.zipf_s = 0.0;
  wspec.seed = 21;
  const QueryBatch batch = serve::make_workload(wspec);

  telemetry::Registry reg;  // shared across ranks — handles are thread-safe
  sched::CollectTraceSink sink;
  std::vector<QueryResult<float>> got;
  mpi::Runtime::run(4, [&](mpi::Comm& world) {
    serve::ServeOptions sopt;
    sopt.cache_budget_bytes = 16 * 16 * 16 * sizeof(std::int64_t);
    sopt.metrics = &reg;
    sopt.trace = &sink;
    auto results = serve::sharded_answer<S>(world, p.store(), batch, sopt);
    if (world.rank() == 0) got = std::move(results);
  });
  ASSERT_EQ(got.size(), batch.size());

  std::uint64_t answered = 0;
  for (int r = 0; r < 4; ++r)
    answered +=
        reg.counter("serve.query.count", "rank=" + std::to_string(r)).value();
  EXPECT_EQ(answered, batch.size());
  EXPECT_GE(reg.histogram("serve.stage.gather.latency", "rank=0").count(), 1u);

  int sends = 0, recvs = 0, gathers = 0;
  for (const sched::TraceEvent& e : sink.events()) {
    if (e.ctx == serve::kServeChannelCtx) {
      sends += e.ek == sched::EventKind::kSend ? 1 : 0;
      recvs += e.ek == sched::EventKind::kRecv ? 1 : 0;
    }
    gathers += std::string_view(e.name) == "serveGather" ? 1 : 0;
  }
  EXPECT_EQ(sends, 3);
  EXPECT_EQ(recvs, 3);
  EXPECT_EQ(gathers, 1);

  // The merged multi-rank capture still reassembles per-query span trees.
  const serve::ServeTraceReport r =
      serve::analyze_serve_trace(sink.events(), /*tolerance=*/1e-9);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.num_queries, static_cast<int>(batch.size()));
  EXPECT_GT(r.gather_seconds, 0.0);
}

TEST(Slo, MonitorReportsAndSlowLog) {
  serve::SloConfig cfg;
  cfg.p99_target_s = 0.010;
  cfg.window = 256;
  cfg.slow_log_capacity = 3;
  serve::SloMonitor mon(cfg);
  auto q = [](std::int64_t id, double total) {
    serve::QueryStats s;
    s.qid = id;
    s.total = total;
    s.stage[static_cast<std::size_t>(serve::Stage::kIo)] = total * 0.8;
    s.stage[static_cast<std::size_t>(serve::Stage::kWalk)] = total * 0.2;
    return s;
  };
  for (int i = 0; i < 100; ++i) mon.record(q(i, 0.001));
  for (int i = 0; i < 5; ++i) mon.record(q(100 + i, 0.050));

  const serve::SloReport r = mon.report();
  EXPECT_EQ(r.total, 105u);
  EXPECT_EQ(r.window_count, 105u);
  EXPECT_EQ(r.violations, 5u);
  EXPECT_TRUE(r.p50_ok);  // no p50 target configured
  EXPECT_FALSE(r.p99_ok) << "5/105 > 1% must push the window p99 over "
                            "the 10 ms target";
  EXPECT_NEAR(r.burn_rate, (5.0 / 105.0) / 0.01, 1e-9);

  // The slow log is capacity-bounded and keeps the most recent entries,
  // each with its full stage breakdown.
  ASSERT_EQ(mon.slow_log().size(), 3u);
  EXPECT_EQ(mon.slow_log().front().qid, 102);
  EXPECT_EQ(mon.slow_log().back().qid, 104);
  EXPECT_GT(mon.slow_log().back().stage[static_cast<std::size_t>(
                serve::Stage::kIo)],
            0.0);

  telemetry::Registry reg;
  mon.publish(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("serve.slo.violations").value(), 5.0);
  EXPECT_GT(reg.gauge("serve.slo.burn_rate").value(), 1.0);

  EXPECT_NE(format_slo_report(r).find("VIOLATED"), std::string::npos);
  EXPECT_NE(format_slow_log(mon).find("qid 104"), std::string::npos);
}

TEST(Slo, BurnAlertFiresOnceOnUpwardCrossing) {
  // The alert is edge-triggered: one callback when the window burn rate
  // crosses the threshold upward, silence while it stays high, re-armed
  // only after the burn drops back under.
  serve::SloConfig cfg;
  cfg.p99_target_s = 0.010;
  cfg.budget = 0.01;
  cfg.window = 64;
  int alerts = 0;
  serve::SloReport last;
  cfg.on_burn_alert = [&](const serve::SloReport& r) {
    ++alerts;
    last = r;
  };
  serve::SloMonitor mon(cfg);
  auto q = [](std::int64_t id, double total) {
    serve::QueryStats s;
    s.qid = id;
    s.total = total;
    return s;
  };
  for (int i = 0; i < 32; ++i) mon.record(q(i, 0.001));
  EXPECT_EQ(alerts, 0);
  // A burst of violations pushes the burn over 1.0 — exactly one alert
  // even though every later violation keeps it there.
  for (int i = 0; i < 8; ++i) mon.record(q(100 + i, 0.050));
  EXPECT_EQ(alerts, 1);
  EXPECT_GT(last.burn_rate, cfg.burn_alert_threshold);
  // Fast queries push the violations out of the window: burn drops,
  // the alert re-arms, and a fresh burst fires again.
  for (int i = 0; i < 128; ++i) mon.record(q(200 + i, 0.001));
  EXPECT_EQ(alerts, 1);
  for (int i = 0; i < 8; ++i) mon.record(q(400 + i, 0.050));
  EXPECT_EQ(alerts, 2);
}

TEST(Slo, SloOnlyConfigStillMeasures) {
  // An SLO monitor without a sink or registry must still see real
  // breakdowns: the force flag keeps the tracer measuring.
  Published p = publish_case(32, 8, 1, 1, /*paths=*/true);
  serve::SloConfig slo_cfg;
  slo_cfg.p99_target_s = 10.0;
  serve::SloMonitor mon(slo_cfg);
  serve::ServeOptions sopt;
  sopt.slo = &mon;
  serve::PathService<S> service(p.store(), sopt);
  QueryBatch batch;
  for (int i = 0; i < 8; ++i) batch.add(i, 31 - i);
  ASSERT_EQ(service.answer(batch).size(), batch.size());
  const serve::SloReport r = mon.report();
  EXPECT_EQ(r.total, 8u);
  EXPECT_GT(r.p50, 0.0);
  EXPECT_TRUE(r.p99_ok);
  EXPECT_EQ(r.violations, 0u);
}

}  // namespace
}  // namespace parfw
