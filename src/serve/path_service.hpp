// PathService — answer path queries straight from a published tile
// manifest, never materialising the matrix (DESIGN.md §4.12).
//
// The service opens a ServeManifest over a CheckpointStore and answers
// QueryBatch requests (core/query.hpp): each distance read fetches one
// b x b value tile, each predecessor-walk step one pred tile, all through
// a byte-budgeted TileCache. A cross-tile path walk is the interesting
// case: pred(src, cur) hops along block row src/b, touching a different
// pred tile every time cur crosses a block-column boundary — exactly the
// access pattern the cache's admission policy is shaped for.
//
// Semantics are pinned to the in-memory oracle: for every (src, dst),
// status, distance and path are bit-identical to what
// ApspResult::query(src, dst) returns on the gathered matrices. That
// equivalence — across variants, placements and crashed-and-resumed
// producers — is the serve_test contract.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "core/query.hpp"
#include "serve/manifest.hpp"
#include "serve/qtrace.hpp"
#include "serve/slo.hpp"
#include "serve/tile_cache.hpp"
#include "telemetry/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace parfw::serve {

struct ServeOptions {
  std::size_t cache_budget_bytes = std::size_t{64} << 20;
  CacheAdmission admission = CacheAdmission::kAlways;
  std::size_t ghost_capacity = 4096;
  /// When set, the service publishes serve.query.latency and the
  /// per-stage serve.stage.*.latency histograms (seconds, at the finer
  /// serve bucket resolution), serve.query.count,
  /// serve.cache.{hits,misses,evictions,ghost_hits} counters,
  /// serve.cache.bytes_{resident,peak} gauges and per-tile
  /// serve.tile.miss.* gauges into it.
  telemetry::Registry* metrics = nullptr;
  /// Label set for the metric series, e.g. "rank=3" in the sharded tier.
  std::string metric_labels;
  /// When set, every query emits a span tree (serveQuery over
  /// route/cache/io/walk stage intervals, query id in `k`) through the
  /// shared trace seam — load the capture in trace_analyze --mode serve.
  sched::TraceSink* trace = nullptr;
  /// Trace track / rank id for emitted spans (the shard rank).
  int trace_rank = 0;
  /// When set, every answered query's breakdown is fed to the monitor
  /// (rolling p50/p99 vs targets, burn rate, slow-query log).
  SloMonitor* slo = nullptr;
};

template <typename S>
class PathService {
 public:
  using T = typename S::value_type;

  explicit PathService(const CheckpointStore& store, ServeOptions opt = {})
      : store_(store),
        manifest_(ServeManifest::open(store)),
        opt_(opt),
        cache_(TileCacheConfig{opt.cache_budget_bytes, opt.admission,
                               opt.ghost_capacity}) {
    PARFW_CHECK_MSG(manifest_.elem_size() == sizeof(T),
                    "manifest stores " << manifest_.elem_size()
                                       << "-byte values, semiring wants "
                                       << sizeof(T));
    PARFW_CHECK_MSG(!manifest_.has_pred() ||
                        manifest_.pred_elem_size() == sizeof(std::int64_t),
                    "unsupported pred element size "
                        << manifest_.pred_elem_size());
    tracer_ = QueryTracer(QueryTracer::Config{
        opt_.trace, opt_.metrics, opt_.metric_labels, opt_.trace_rank,
        /*force=*/opt_.slo != nullptr});
    if (opt_.metrics != nullptr) {
      queries_ = &opt_.metrics->counter("serve.query.count",
                                        opt_.metric_labels);
      hits_ = &opt_.metrics->counter("serve.cache.hits", opt_.metric_labels);
      misses_ =
          &opt_.metrics->counter("serve.cache.misses", opt_.metric_labels);
      evictions_ =
          &opt_.metrics->counter("serve.cache.evictions", opt_.metric_labels);
      ghost_hits_ = &opt_.metrics->counter("serve.cache.ghost_hits",
                                           opt_.metric_labels);
      resident_ = &opt_.metrics->gauge("serve.cache.bytes_resident",
                                       opt_.metric_labels);
      peak_ = &opt_.metrics->gauge("serve.cache.bytes_peak",
                                   opt_.metric_labels);
    }
  }

  const ServeManifest& manifest() const { return manifest_; }
  const TileCacheStats& cache_stats() const { return cache_.stats(); }

  /// Answer one query; bit-identical to ApspResult::query on the gathered
  /// matrices. A path request against a values-only manifest hard-errors
  /// (mirroring the resume rule in dist/checkpoint.hpp): predecessors
  /// cannot be reconstructed from distances after the fact.
  ///
  /// `qid` names the query in the trace (`k` on its spans) and the slow
  /// log; -1 auto-assigns from a per-service counter. On the hard-error
  /// path the open span is abandoned — begin_query resets unconditionally,
  /// so the tracer stays usable after an unwind.
  QueryResult<T> query(std::int64_t src, std::int64_t dst,
                       bool want_path = true, std::int64_t qid = -1) {
    tracer_.begin_query(qid >= 0 ? qid : next_qid_++);
    QueryResult<T> r = query_impl(src, dst, want_path);
    finish_query();
    const QueryStats qs = tracer_.end_query();
    if (opt_.slo != nullptr && tracer_.active()) opt_.slo->record(qs);
    return r;
  }

  /// Answer a batch through the shared query API. Query i is traced as
  /// qid i; the batch instant anchors the serve.queue.wait series, and
  /// the accumulated per-tile miss costs are published at the end.
  std::vector<QueryResult<T>> answer(const QueryBatch& batch) {
    tracer_.begin_batch();
    std::vector<QueryResult<T>> out;
    out.reserve(batch.pairs.size());
    for (std::size_t i = 0; i < batch.pairs.size(); ++i) {
      const PathQuery& q = batch.pairs[i];
      out.push_back(query(q.src, q.dst, batch.want_paths,
                          static_cast<std::int64_t>(i)));
    }
    tracer_.publish_tile_costs();
    return out;
  }

  /// The per-query tracer (sharded_answer emits gather spans through it).
  QueryTracer& tracer() { return tracer_; }

 private:
  QueryResult<T> query_impl(std::int64_t src, std::int64_t dst,
                            bool want_path) {
    const auto n = static_cast<std::int64_t>(manifest_.n());
    PARFW_CHECK_MSG(src >= 0 && src < n && dst >= 0 && dst < n,
                    "query (" << src << ", " << dst << ") out of range for n="
                              << n);
    QueryResult<T> r;
    r.distance = value_at(src, dst);
    if (!manifest_.has_pred()) {
      PARFW_CHECK_MSG(
          !want_path,
          "path query (" << src << " -> " << dst
                         << ") against a values-only manifest "
                         << "(pred_elem_size == 0): the producing run did "
                         << "not set track_paths — re-solve with paths "
                         << "enabled, or ask for distances only");
      r.status = PathStatus::kNotTracked;
      return r;
    }
    if (src != dst && pred_at(src, dst) < 0) {
      r.status = PathStatus::kUnreachable;
      return r;
    }
    r.status = PathStatus::kFound;
    if (want_path) r.path = walk_path(src, dst);
    return r;
  }
  T value_at(std::int64_t i, std::int64_t j) {
    T v;
    std::memcpy(&v, entry_ptr(TileKind::kValue, i, j, sizeof(T)), sizeof(T));
    return v;
  }
  std::int64_t pred_at(std::int64_t i, std::int64_t j) {
    std::int64_t p;
    std::memcpy(&p, entry_ptr(TileKind::kPred, i, j, sizeof(p)), sizeof(p));
    return p;
  }

  /// Pointer to entry (i, j) inside its (cached or scratch) tile. Valid
  /// only until the next fetch.
  const std::uint8_t* entry_ptr(TileKind kind, std::int64_t i, std::int64_t j,
                                std::size_t es) {
    const std::uint64_t b = manifest_.block_size();
    const auto gi = static_cast<std::uint64_t>(i);
    const auto gj = static_cast<std::uint64_t>(j);
    const std::vector<std::uint8_t>& tile = fetch(kind, gi / b, gj / b);
    return tile.data() + ((gi % b) * b + (gj % b)) * es;
  }

  const std::vector<std::uint8_t>& fetch(TileKind kind, std::uint64_t I,
                                         std::uint64_t J) {
    const TileKey key{kind, static_cast<std::uint32_t>(I),
                      static_cast<std::uint32_t>(J)};
    StageScope cache_scope(tracer_, Stage::kCache);
    if (const auto* hit = cache_.find(key)) return *hit;
    manifest_.tile_ranges(I, J, kind, range_scratch_);
    const int owner = manifest_.owner_of(I, J);
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(manifest_.tile_bytes(kind)));
    bool ok = false;
    double io_seconds = 0.0;
    {
      StageScope io_scope(tracer_, Stage::kIo);
      const Timer io_timer;
      ok = store_.get_ranges(manifest_.rank(owner).key,
                             std::span<const ByteRange>(range_scratch_),
                             buf.data());
      io_seconds = io_timer.seconds();
    }
    PARFW_CHECK_MSG(ok, "rank blob '" << manifest_.rank(owner).key
                                      << "' vanished while serving");
    tracer_.record_miss(key, io_seconds,
                        static_cast<std::uint64_t>(buf.size()));
    const auto* stored = cache_.insert(key, buf);
    tracer_.note_admission(stored != nullptr);
    if (stored != nullptr) return *stored;
    // Not admitted: serve this one read from the scratch buffer.
    scratch_tile_ = std::move(buf);
    return scratch_tile_;
  }

  /// Pred-walk src -> dst, bit-identical to core reconstruct_path but
  /// pulling each pred entry through the tile cache. Reachability was
  /// already established via pred(src, dst).
  std::vector<std::int64_t> walk_path(std::int64_t src, std::int64_t dst) {
    StageScope walk_scope(tracer_, Stage::kWalk);
    if (src == dst) return {src};
    const auto n = static_cast<std::int64_t>(manifest_.n());
    std::vector<std::int64_t> rev;
    std::int64_t cur = dst;
    while (cur != src) {
      rev.push_back(cur);
      PARFW_CHECK_MSG(static_cast<std::int64_t>(rev.size()) <= n,
                      "pred cycle while reconstructing " << src << " -> "
                                                         << dst);
      cur = pred_at(src, cur);
      PARFW_CHECK_MSG(cur >= 0, "pred chain broke while reconstructing "
                                    << src << " -> " << dst);
    }
    rev.push_back(src);
    return {rev.rbegin(), rev.rend()};
  }

  void finish_query() {
    if (opt_.metrics == nullptr) return;
    queries_->inc();
    const TileCacheStats& s = cache_.stats();
    hits_->add(s.hits - published_.hits);
    misses_->add(s.misses - published_.misses);
    evictions_->add(s.evictions - published_.evictions);
    ghost_hits_->add(s.ghost_hits - published_.ghost_hits);
    resident_->set(static_cast<double>(s.bytes_resident));
    peak_->update_max(static_cast<double>(s.bytes_peak));
    published_ = s;
  }

  const CheckpointStore& store_;
  ServeManifest manifest_;
  ServeOptions opt_;
  TileCache cache_;
  std::vector<ByteRange> range_scratch_;
  std::vector<std::uint8_t> scratch_tile_;
  TileCacheStats published_;  ///< last stats synced into the registry
  QueryTracer tracer_;
  std::int64_t next_qid_ = 0;  ///< auto qids for untracked single queries
  telemetry::Counter* queries_ = nullptr;
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
  telemetry::Counter* evictions_ = nullptr;
  telemetry::Counter* ghost_hits_ = nullptr;
  telemetry::Gauge* resident_ = nullptr;
  telemetry::Gauge* peak_ = nullptr;
};

}  // namespace parfw::serve
