// §3.3 ablation — straggler / network-noise tolerance of the schedules.
//
// Paper: bulk-synchronous broadcasts mean "in the cases where some
// network links are slower due to network contention or if there are
// straggler processes then its impact propagates to all the processes";
// the pipelined/asynchronous schedules decouple ranks.
//
// Two noise sources, injected deterministically into the DES:
//   [a] COMPUTE jitter (straggler ranks) — absorbed by the slack the
//       look-ahead schedule creates; the bulk-synchronous baseline pays
//       the per-iteration maximum of the noise.
//   [b] NETWORK jitter (contended / slow links) — the paper's headline
//       scenario for the ring: panel transfers ride background NIC-agent
//       relays that overlap the bulk compute, so inflated transfers hide
//       under OuterUpdate instead of extending a synchronous broadcast.
//   [c] REAL execution under message LOSS (not DES): a seeded drop-rate
//       sweep through the mpisim reliability envelope — the run must
//       complete exactly, paying only retransmissions. PARFW_FAULT_SEED
//       overrides the fault seed.
#include <cstdio>
#include <cstdlib>

#include "core/floyd_warshall.hpp"
#include "dist/driver.hpp"
#include "fig_common.hpp"
#include "util/timer.hpp"

using namespace parfw;
using namespace parfw::perf;

namespace {

double run_one(const MachineConfig& m, const Legend& legend, double n,
               double b, int nodes, double comp_jitter, double net_jitter) {
  MachineConfig noisy = m;
  noisy.net_jitter = net_jitter;
  const GridSetup setup = make_grid(m, nodes, legend.reordered);
  FwProblem prob;
  prob.variant = legend.variant;
  prob.b = b;
  prob.n = std::ceil(n / b) * b;
  prob.comp_jitter = comp_jitter;
  const BuiltProgram built =
      build_fw_program(noisy, prob, setup.grid, setup.node_of);
  return simulate(built.programs, built.node_of, noisy).makespan;
}

}  // namespace

int main() {
  bench::header(
      "Straggler / network-noise tolerance (paper §3.3 claim)",
      "64 nodes, n = 196,608; seconds ADDED to each variant's makespan\n"
      "under injected noise, relative to its own noise-free run.");

  const MachineConfig m = MachineConfig::summit();
  const double n = 196608, b = 768;
  const int nodes = 64;
  const auto legends = paper_legends();
  const std::size_t pick[3] = {0, 1, 3};  // baseline, pipelined, +async

  double clean[3];
  for (int i = 0; i < 3; ++i)
    clean[i] = run_one(m, legends[pick[i]], n, b, nodes, 0.0, 0.0);
  std::printf("noise-free makespans: baseline %.2fs, pipelined %.2fs, "
              "+async %.2fs\n",
              clean[0], clean[1], clean[2]);

  std::printf("\n[a] compute jitter (straggler ranks)\n\n");
  Table ta({"jitter", "baseline +s", "pipelined +s", "+async +s",
            "pipelined absorbs"});
  for (double j : {0.1, 0.3, 0.6, 1.0}) {
    double added[3];
    for (int i = 0; i < 3; ++i)
      added[i] = run_one(m, legends[pick[i]], n, b, nodes, j, 0.0) - clean[i];
    ta.add_row({Table::num(j, 1), Table::num(added[0], 2),
                Table::num(added[1], 2), Table::num(added[2], 2),
                Table::num(added[0] / std::max(added[1], 1e-9), 2)});
  }
  std::printf("%s", ta.str().c_str());

  std::printf("\n[b] network jitter (contended links — the ring's case)\n\n");
  Table tb({"jitter", "baseline +s", "pipelined +s", "+async +s",
            "async absorbs"});
  for (double j : {0.25, 0.5, 1.0, 2.0}) {
    double added[3];
    for (int i = 0; i < 3; ++i)
      added[i] = run_one(m, legends[pick[i]], n, b, nodes, 0.0, j) - clean[i];
    tb.add_row({Table::num(j, 2), Table::num(added[0], 2),
                Table::num(added[1], 2), Table::num(added[2], 2),
                Table::num(added[0] / std::max(added[2], 1e-9), 2)});
  }
  std::printf("%s", tb.str().c_str());

  // [c] Real execution (mpisim, not DES): seeded message loss absorbed by
  // the retry envelope. Small problem — this measures the recovery
  // machinery, not Summit-scale makespans.
  std::uint64_t fault_seed = 20240806;
  if (const char* env = std::getenv("PARFW_FAULT_SEED"))
    fault_seed = std::strtoull(env, nullptr, 10);
  const std::size_t rn = 256, rb = 32;
  DenseEntryGen<float> gen(4711, 0.9, 1.0f, 90.0f, /*integral=*/true);
  auto expected = gen.full(static_cast<vertex_t>(rn));
  floyd_warshall<MinPlus<float>>(expected.view());

  std::printf("\n[c] real execution under message loss (n=%zu, 2x2 grid, "
              "seed=%llu)\n\n",
              rn, static_cast<unsigned long long>(fault_seed));
  Table tc({"drop rate", "wall ms", "drops", "retries", "resent KiB",
            "result ok"});
  for (double rate : {0.0, 0.02, 0.05}) {
    dist::DistFwOptions opt;
    opt.variant = sched::Variant::kAsync;
    opt.block_size = rb;
    opt.faults.seed = rate > 0 ? fault_seed : 0;
    opt.faults.drop_prob = rate;
    opt.resilience.send_timeout = 0.002;
    Timer t;
    const auto res = dist::run_parallel_fw<MinPlus<float>>(
        rn, gen, dist::GridSpec::row_major(2, 2), /*ranks_per_node=*/2, opt);
    const bool ok =
        max_abs_diff<float>(expected.view(), res.dist.view()) == 0.0;
    tc.add_row({Table::num(rate, 2), Table::num(t.millis(), 0),
                Table::num(static_cast<double>(res.traffic.drops_injected), 0),
                Table::num(static_cast<double>(res.traffic.retries), 0),
                Table::num(static_cast<double>(res.traffic.retry_bytes) / 1024,
                           1),
                ok ? "yes" : "NO"});
  }
  std::printf("%s", tc.str().c_str());

  bench::footer(
      "expect: [a] pipelined adds the fewest seconds (overlap slack absorbs\n"
      "compute noise the synchronous baseline propagates); [b] +async adds\n"
      "the fewest seconds under link noise (background ring relays hide\n"
      "slow transfers under compute) — the paper's §3.3 asynchrony claim;\n"
      "[c] every drop rate completes exactly, wall time growing with the\n"
      "retransmission volume (DESIGN.md \"Resilience\").");
  return 0;
}
