// Blocked Floyd-Warshall (paper Algorithm 2).
//
// The n x n matrix is processed in nb = ⌈n/b⌉ block iterations. Iteration k:
//   1. DiagUpdate  — close A(k,k)
//   2. PanelUpdate — A(k,j) ← A(k,j) ⊕ A(k,k) ⊗ A(k,j)   (block row)
//                    A(i,k) ← A(i,k) ⊕ A(i,k) ⊗ A(k,k)   (block column)
//   3. MinPlusOuter — A(i,j) ← A(i,j) ⊕ A(i,k) ⊗ A(k,j)  ∀ i,j ≠ k
//
// PanelUpdate runs in place (C aliases an SRGEMM operand). That is safe
// here because ⊕ is idempotent and A(k,k) is closed: any prematurely
// updated entry only substitutes a candidate that is itself a ⊕-sum of
// valid path candidates, so the fixpoint is unchanged. This is exactly
// the property the paper's asynchronous pipeline also relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

#include "core/diag_update.hpp"
#include "core/solve_options.hpp"
#include "srgemm/srgemm.hpp"
#include "util/matrix.hpp"
#include "util/thread_pool.hpp"

namespace parfw {

/// block_size / diag live in the shared SolveCommon base (one source of
/// defaults for all three option structs — see core/solve_options.hpp).
struct BlockedFwOptions : SolveCommon {
  /// Thread pool for the SRGEMM driver; nullptr = sequential.
  ThreadPool* pool = nullptr;
  srgemm::Config gemm{};
  /// Persistent panel packing: in round k the pivot row panel A(k,·) and
  /// column panel A(·,k) feed all four MinPlusOuter quadrants, so pack
  /// each exactly once into reusable aligned scratch and run the quadrant
  /// updates through multiply_prepacked — instead of letting every
  /// quadrant's kernel re-pack its own strided slice of the same panels
  /// (4x the panel traffic). Costs 2·n·b scratch elements.
  bool prepack_panels = true;
};

/// Blocked FW over block iterations [start_block, nb) — the restartable
/// core. With start_block = 0 this is the full Algorithm 2; resuming from
/// a checkpoint's next_block continues an interrupted run exactly
/// (in-place FW state after iteration k fully determines the rest).
/// `on_block(k_done, view)` fires after each completed iteration — the
/// hook periodic checkpointing uses (see core/checkpoint.hpp).
template <typename S>
void blocked_floyd_warshall_range(
    MatrixView<typename S::value_type> a, std::size_t start_block,
    const BlockedFwOptions& opt = {},
    const std::function<void(std::size_t, MatrixView<typename S::value_type>)>&
        on_block = {}) {
  static_assert(is_idempotent<S>(), "blocked FW requires idempotent semiring");
  using T = typename S::value_type;
  PARFW_CHECK(a.rows() == a.cols());
  PARFW_CHECK_MSG(opt.block_size > 0, "block size must be positive");
  const std::size_t n = a.rows();
  const std::size_t b = opt.block_size;
  const std::size_t nb = (n + b - 1) / b;
  PARFW_CHECK_MSG(start_block <= nb, "resume point beyond the last block");

  srgemm::Config cfg = opt.gemm;
  cfg.pool = opt.pool;
  Matrix<T> scratch(b, b);
  // Reusable pivot-panel scratch for the prepacked quadrant updates.
  Matrix<T> row_panel, col_panel;
  if (opt.prepack_panels && n > b) {
    row_panel = Matrix<T>(b, n);
    col_panel = Matrix<T>(n, b);
  }

  auto block_range = [&](std::size_t blk) {
    const std::size_t lo = blk * b;
    return std::pair<std::size_t, std::size_t>{lo, std::min(n, lo + b) - lo};
  };

  for (std::size_t k = start_block; k < nb; ++k) {
    const auto [k0, bk] = block_range(k);
    auto akk = a.sub(k0, k0, bk, bk);

    // 1. DiagUpdate
    diag_update<S>(akk, opt.diag, scratch.view(), cfg);

    // 2. PanelUpdate — row panel (left-multiply by closed A(k,k)) and
    //    column panel (right-multiply), both in place.
    if (k0 > 0) {
      srgemm::multiply<S>(akk, a.sub(k0, 0, bk, k0), a.sub(k0, 0, bk, k0), cfg);
      srgemm::multiply<S>(a.sub(0, k0, k0, bk), akk, a.sub(0, k0, k0, bk), cfg);
    }
    if (k0 + bk < n) {
      const std::size_t rest = n - (k0 + bk);
      srgemm::multiply<S>(akk, a.sub(k0, k0 + bk, bk, rest),
                          a.sub(k0, k0 + bk, bk, rest), cfg);
      srgemm::multiply<S>(a.sub(k0 + bk, k0, rest, bk), akk,
                          a.sub(k0 + bk, k0, rest, bk), cfg);
    }

    // 3. MinPlusOuter on the four off-panel quadrants. With persistent
    //    panel packing the pivot row/column panels are snapshotted into
    //    contiguous scratch once and every quadrant runs prepacked; the
    //    fallback lets each quadrant's kernel pack (and re-pack) strided
    //    panel views itself.
    const std::size_t after0 = k0 + bk;
    const std::size_t after_n = n - after0;
    const bool prepack = opt.prepack_panels && n > b;
    if (prepack) {
      row_panel.sub(0, 0, bk, n).copy_from(a.sub(k0, 0, bk, n));
      col_panel.sub(0, 0, n, bk).copy_from(a.sub(0, k0, n, bk));
    }
    auto outer = [&](std::size_t r0, std::size_t nr, std::size_t c0,
                     std::size_t nc) {
      if (nr == 0 || nc == 0) return;
      if (prepack)
        srgemm::multiply_prepacked<S>(col_panel.sub(r0, 0, nr, bk),
                                      row_panel.sub(0, c0, bk, nc),
                                      a.sub(r0, c0, nr, nc), cfg);
      else
        srgemm::multiply<S>(a.sub(r0, k0, nr, bk), a.sub(k0, c0, bk, nc),
                            a.sub(r0, c0, nr, nc), cfg);
    };
    outer(0, k0, 0, k0);
    outer(0, k0, after0, after_n);
    outer(after0, after_n, 0, k0);
    outer(after0, after_n, after0, after_n);
    if (on_block) on_block(k + 1, a);
  }
}

/// In-place blocked FW over any idempotent semiring (paper Algorithm 2).
template <typename S>
void blocked_floyd_warshall(MatrixView<typename S::value_type> a,
                            const BlockedFwOptions& opt = {}) {
  blocked_floyd_warshall_range<S>(a, 0, opt);
}

/// FLOP count of blocked FW under the 2·n³ convention (paper §2.7.1).
inline double blocked_fw_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return 2.0 * nd * nd * nd;
}

}  // namespace parfw
