// RunMonitor — live progress/ETA and anomaly detection over a running
// solve (DESIGN.md §4.14).
//
// The monitor sits on the two observation seams the interpreter already
// has: it is a sched::TraceSink (every executed op, message and offload
// stage flows through record) and a sched::ScheduleObserver (every rank
// thread hands over the materialised Schedule before its first step). From
// the schedule it precomputes each rank's program and a DES-style
// predicted cost per op (flops / rank rate for compute, tree/ring
// collective models for comm — the same first-order models perf/ uses);
// from the trace it tracks each rank's cursor through that program. The
// quotient is live state no log line gives you:
//
//   progress   min over ranks of predicted-cost-weighted completion
//   ETA        max over ranks of remaining predicted cost x that rank's
//              observed slowdown (actual/predicted so far)
//   drift      per-op-kind predicted vs actual seconds
//   skew       progress spread across ranks (straggler signal)
//
// Anomaly triggers — an op overrunning its prediction, a retransmit storm,
// rank progress skew — fire into a monitor::IncidentLog, which dumps the
// flight-recorder window and computes causal blame (incident.hpp).
//
// Everything is computed from EVENT timestamps, never wall-clock reads, so
// feeding the same event sequence twice yields byte-identical progress
// history (the determinism test pins this).
//
// Thread-safe: record arrives concurrently from every rank thread.
#pragma once

#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "monitor/incident.hpp"
#include "perf/machine.hpp"
#include "sched/ir.hpp"
#include "sched/trace.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::monitor {

struct MonitorConfig {
  /// Machine model pricing the predicted per-op costs. The ABSOLUTE scale
  /// cancels out of progress (a ratio) and is corrected by the observed
  /// slowdown in the ETA; only relative op weights matter.
  perf::MachineConfig machine = perf::MachineConfig::summit();
  /// Minimum event-time between progress lines.
  double progress_interval_s = 1.0;
  /// op_overrun trigger: an op whose duration exceeds
  /// max(overrun_factor x predicted, min_overrun_s). The floor keeps
  /// micro-ops (whose prediction is ~us) from tripping on scheduler noise.
  double overrun_factor = 8.0;
  double min_overrun_s = 0.05;
  /// straggler trigger: progress spread (max - min over ranks) above this
  /// fraction, once every rank has reported min_ops_per_rank ops.
  double skew_threshold = 0.5;
  std::size_t min_ops_per_rank = 2;
  /// retransmit_storm trigger: this many "retry" events inside a sliding
  /// retransmit_window_s window.
  std::size_t retransmit_threshold = 32;
  double retransmit_window_s = 1.0;
  /// When set, progress lines and the final summary print here (the CLI
  /// passes stderr — stdout stays byte-identical to an unmonitored run).
  std::FILE* progress_out = nullptr;
  /// When set, finish() exports monitor.progress / monitor.eta_seconds /
  /// trace.ring.dropped gauges.
  telemetry::Registry* metrics = nullptr;
};

/// One progress sample. All times are event-time seconds.
struct ProgressReport {
  double t = 0.0;            ///< event time of the sample
  double progress = 0.0;     ///< 0..1, predicted-cost-weighted
  double eta_s = 0.0;        ///< predicted remaining seconds
  double elapsed_s = 0.0;    ///< since the first observed event
  double predicted_total_s = 0.0;  ///< model total for the slowest rank
  double slowdown = 1.0;     ///< observed actual / predicted, global
  int slowest_rank = -1;     ///< rank with the least progress
  double skew = 0.0;         ///< max - min progress over ranks
  std::size_t ops_done = 0;
  std::size_t ops_total = 0;
};

class RunMonitor : public sched::TraceSink, public sched::ScheduleObserver {
 public:
  /// `ring` (optional, not owned) is forwarded EVERY event before any
  /// processing, making the monitor a drop-in sink that feeds the flight
  /// recorder; `incidents` (optional, not owned) receives the anomaly
  /// triggers.
  explicit RunMonitor(MonitorConfig cfg = {},
                      sched::RingTraceSink* ring = nullptr,
                      IncidentLog* incidents = nullptr);

  void record(const sched::TraceEvent& e) override;
  void on_schedule(const sched::Schedule& s) override;

  /// Current progress snapshot (computed on demand, event-time `t` is the
  /// latest event seen).
  ProgressReport progress() const;

  /// Every progress sample emitted so far, in order.
  std::vector<ProgressReport> history() const;

  /// Final line + per-op-kind drift summary to progress_out, gauges to
  /// metrics. Call after the solve returns; idempotent inputs give
  /// idempotent output (it does not mutate tracking state).
  void finish();

  /// The per-op-kind predicted-vs-actual drift table finish() prints.
  std::string format_summary() const;

  const MonitorConfig& config() const { return cfg_; }

 private:
  struct PredOp {
    sched::OpKind kind;
    double cost;  ///< predicted seconds, floored at 1e-12
  };
  struct RankState {
    std::size_t cursor = 0;   ///< next unmatched op in the program
    double done_cost = 0.0;   ///< predicted seconds of completed ops
    double actual_s = 0.0;    ///< measured seconds of completed ops
    std::size_t ops_done = 0;
  };
  struct Drift {
    double pred = 0.0;
    double actual = 0.0;
    std::size_t ops = 0;
  };

  ProgressReport snapshot_locked(double t) const;
  void maybe_report_locked(double t);
  void adopt_locked(const sched::Schedule& s);

  const MonitorConfig cfg_;
  sched::RingTraceSink* ring_;
  IncidentLog* incidents_;

  mutable std::mutex mu_;
  bool have_schedule_ = false;
  sched::Variant variant_ = sched::Variant::kBaseline;
  std::size_t sched_nb_ = 0, sched_b_ = 0, sched_steps_ = 0;
  int pr_ = 0, pc_ = 0;
  std::vector<std::vector<PredOp>> program_;  ///< per rank
  std::vector<double> total_cost_;            ///< per rank
  std::vector<RankState> state_;              ///< per rank
  std::size_t ops_total_ = 0;
  std::map<std::string, Drift> drift_;        ///< per op kind
  bool saw_event_ = false;
  double t0_ = 0.0;            ///< first observed event begin
  double t_last_ = 0.0;        ///< latest observed event end
  double last_report_t_ = 0.0;
  std::deque<double> retries_;  ///< recent "retry" event times
  std::vector<ProgressReport> history_;
};

/// One progress line: "[monitor] 42.3% | elapsed ... | eta ...".
std::string format_progress(const ProgressReport& r);

}  // namespace parfw::monitor
