// ThreadPool metrics adapter — closes the loop the library graph forbids
// util from closing itself: telemetry links util, so util's ThreadPool can
// only expose the PoolObserver seam, and this header implements it against
// the metrics registry.
//
// Series produced (all under the caller's label set):
//   pool.queue_depth       gauge      depth after the latest push/pop
//   pool.queue_depth_max   gauge      high-water mark of the above
//   pool.task_wait_seconds histogram  time a task sat queued
//   pool.task_run_seconds  histogram  time a task spent executing
//
// The observer must outlive the pool it watches (or be detached first);
// ScopedPoolMetrics handles the detach for the common scoped case.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace parfw::telemetry {

class PoolMetrics final : public PoolObserver {
 public:
  explicit PoolMetrics(Registry& reg, const std::string& labels = "")
      : depth_(&reg.gauge("pool.queue_depth", labels)),
        depth_max_(&reg.gauge("pool.queue_depth_max", labels)),
        wait_(&reg.histogram("pool.task_wait_seconds", labels)),
        run_(&reg.histogram("pool.task_run_seconds", labels)) {}

  void on_queue_depth(std::size_t depth) override {
    const double d = static_cast<double>(depth);
    depth_->set(d);
    depth_max_->update_max(d);
  }

  void on_task(double wait_seconds, double run_seconds) override {
    wait_->observe(wait_seconds);
    run_->observe(run_seconds);
  }

 private:
  Gauge* depth_;
  Gauge* depth_max_;
  Histogram* wait_;
  Histogram* run_;
};

/// RAII attach/detach: installs a PoolMetrics on `pool` for the current
/// scope and restores the previous observer on destruction.
class ScopedPoolMetrics {
 public:
  ScopedPoolMetrics(ThreadPool& pool, Registry& reg,
                    const std::string& labels = "")
      : pool_(&pool), prev_(pool.observer()), metrics_(reg, labels) {
    pool.set_observer(&metrics_);
  }
  ~ScopedPoolMetrics() { pool_->set_observer(prev_); }

  ScopedPoolMetrics(const ScopedPoolMetrics&) = delete;
  ScopedPoolMetrics& operator=(const ScopedPoolMetrics&) = delete;

 private:
  ThreadPool* pool_;
  PoolObserver* prev_;
  PoolMetrics metrics_;
};

}  // namespace parfw::telemetry
