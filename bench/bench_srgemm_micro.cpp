// SRGEMM micro-benchmark (paper §2.6 / §4.1 claim: the SRGEMM kernel
// reaches 6.8 TF/s on a V100, ~87% of the no-FMA peak).
//
// Here the kernel is the CPU substitute, so the comparable claim is each
// rung of the kernel hierarchy's fraction of what this host can do:
//   naive → tiled (scalar) → packed (scalar) → SIMD (explicit vectors)
// with the SIMD rung dispatched through srgemm::Config (DESIGN.md §4.1a).
// "Auto" is what every caller gets by default. The paper-scale V100
// number is reproduced by the performance model in the figure benches.
//
// Baseline numbers live in BENCH_srgemm.json (regenerate with
//   bench_srgemm_micro --benchmark_out=BENCH_srgemm.json
//                      --benchmark_out_format=json).
#include <benchmark/benchmark.h>

#include <iostream>

#include "graph/graph.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "telemetry/export.hpp"

namespace {

using S = parfw::MinPlus<float>;

parfw::Matrix<float> make(std::size_t r, std::size_t c, std::uint64_t seed) {
  parfw::DenseEntryGen<float> gen(seed, 1.0, 1.0f, 100.0f);
  parfw::Matrix<float> m(r, c);
  gen.fill_block(0, 0, m.view());
  return m;
}

void run_square(benchmark::State& state, const parfw::srgemm::Config& cfg) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto A = make(n, n, 1), B = make(n, n, 2), C = make(n, n, 3);
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(A.view(), B.view(), C.view(), cfg);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}

parfw::srgemm::Config with_kernel(parfw::srgemm::Kernel k) {
  parfw::srgemm::Config cfg = parfw::srgemm::Config::tuned();
  cfg.kernel = k;
  return cfg;
}

void BM_SrgemmNaive(benchmark::State& state) {
  run_square(state, with_kernel(parfw::srgemm::Kernel::kNaive));
}
BENCHMARK(BM_SrgemmNaive)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SrgemmTiledScalar(benchmark::State& state) {
  run_square(state, with_kernel(parfw::srgemm::Kernel::kTiled));
}
BENCHMARK(BM_SrgemmTiledScalar)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SrgemmPackedScalar(benchmark::State& state) {
  run_square(state, with_kernel(parfw::srgemm::Kernel::kPacked));
}
BENCHMARK(BM_SrgemmPackedScalar)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SrgemmSimd(benchmark::State& state) {
  run_square(state, with_kernel(parfw::srgemm::Kernel::kSimd));
}
BENCHMARK(BM_SrgemmSimd)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// What a caller with a default Config{} gets (kAuto dispatch).
void BM_SrgemmAuto(benchmark::State& state) {
  run_square(state, parfw::srgemm::Config{});
}
BENCHMARK(BM_SrgemmAuto)->Arg(512)->Unit(benchmark::kMillisecond);

/// Dense, caller-owned operands through the prepacked entry point (no
/// operand copies at all — blocked FW's quadrant-update fast path).
void BM_SrgemmSimdPrepacked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto A = make(n, n, 1), B = make(n, n, 2), C = make(n, n, 3);
  auto cfg = parfw::srgemm::Config::tuned();
  for (auto _ : state) {
    parfw::srgemm::multiply_prepacked<S>(A.view(), B.view(), C.view(), cfg);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SrgemmSimdPrepacked)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void run_panel(benchmark::State& state, const parfw::srgemm::Config& cfg) {
  // The blocked-FW hot shape: (m, n, k) = (local, local, b).
  const std::size_t m = 1024, k = static_cast<std::size_t>(state.range(0));
  auto A = make(m, k, 1), B = make(k, m, 2), C = make(m, m, 3);
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(A.view(), B.view(), C.view(), cfg);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(m, m, k) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}

void BM_SrgemmPanelShapeScalar(benchmark::State& state) {
  run_panel(state, with_kernel(parfw::srgemm::Kernel::kTiled));
}
BENCHMARK(BM_SrgemmPanelShapeScalar)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SrgemmPanelShapeSimd(benchmark::State& state) {
  run_panel(state, with_kernel(parfw::srgemm::Kernel::kSimd));
}
BENCHMARK(BM_SrgemmPanelShapeSimd)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// PARFW_METRICS=json|prom|table dumps the ambient kernel-dispatch series
// (calls, flops, GF/s per kernel×micro-shape) after the run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  parfw::telemetry::dump_env(std::cerr);
  return 0;
}
