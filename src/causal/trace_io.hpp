// trace_io — load a Chrome-trace JSON document (the format
// sched::ChromeTraceSink writes) back into sched::TraceEvent records, so
// the causal analysis layer can consume traces from disk as well as from
// an in-process CollectTraceSink.
//
// The loader is a strict, self-contained JSON-subset parser (no external
// dependencies): a syntax error, truncated document, or a trace event
// missing its required fields produces a clear diagnostic with the byte
// offset (or event index) of the failure instead of a partial result —
// tools/trace_dump and tools/trace_analyze turn that into a nonzero exit.
//
// Flow events (ph "s"/"f") and metadata rows (ph "M") are presentation
// artifacts and are skipped; duration ("X") and instant ("i") rows map
// back to TraceEvents, with the causal annotations (ek/peer/tag/seq/ctx/
// att) recovered from args. Timestamps are converted back to seconds
// (relative to the document's own epoch — analysis only uses deltas).
#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sched/trace.hpp"

namespace parfw::causal {

/// Outcome of a load. When !ok, `error` describes the failure (with a
/// byte offset for syntax errors or an event index for semantic ones)
/// and `events` is empty. Event name pointers refer to strings owned by
/// `names` — keep the LoadResult alive as long as the events.
struct LoadResult {
  bool ok = false;
  std::string error;
  std::vector<sched::TraceEvent> events;
  std::deque<std::string> names;  ///< interned name storage (stable addrs)
};

/// Parse a Chrome-trace JSON document from a string.
LoadResult load_chrome_trace(const std::string& text);

/// Read and parse `path`. Unreadable files report through `error` too.
LoadResult load_chrome_trace_file(const std::string& path);

/// Minimal JSON value — exposed for small auxiliary documents (the blame
/// band files checked in for CI gating reuse this parser).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  /// Object member lookup (nullptr when absent or not an object).
  const JsonValue* find(const std::string& key) const;
};

/// Parse an arbitrary JSON document. On failure returns false and sets
/// `error` to "message at byte N".
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

}  // namespace parfw::causal
