// trace_analyze — turn a captured trace into a causal story (DESIGN.md
// §4.9): happens-before DAG, critical path, per-rank/per-phase blame,
// top-k blocking ops, and what-if re-costing under perturbed machine
// speeds.
//
// Input is either a Chrome-trace JSON file written by trace_dump /
// PARFW_TRACE (--trace FILE) or a fresh in-process DES replay (--des,
// with the same sizing flags as trace_dump's des mode). In --des mode
// the tool additionally cross-checks the acceptance invariant: the
// critical-path length must equal the DES makespan EXACTLY (the path
// segments partition the trace span by construction), and --what-if
// re-runs the DES on the scaled MachineConfig to confirm the analytic
// prediction end-to-end.
//
// Exit status: 0 ok; 1 analysis failure, band violation or broken
// invariant; 2 usage error.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "causal/analysis.hpp"
#include "causal/graph.hpp"
#include "causal/trace_io.hpp"
#include "perf/des.hpp"
#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "sched/trace.hpp"
#include "serve/qtrace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/cli.hpp"

using namespace parfw;

namespace {

void print_usage() {
  std::puts(
      "trace_analyze - causal analysis of a ParallelFw trace\n"
      "input (one of):\n"
      "  --trace FILE        Chrome-trace JSON (trace_dump --out / PARFW_TRACE)\n"
      "  --incidents FILE    flight-recorder incident report (the\n"
      "                      *.incidents.jsonl apsp --flight-recorder writes):\n"
      "                      prints each incident and re-runs the causal\n"
      "                      analysis over its dumped trace window\n"
      "  --des               replay the DES in-process:\n"
      "    --variant V       baseline|pipelined|async|offload (default async)\n"
      "    --nodes N         cluster nodes (default 4)\n"
      "    --n N --block B   vertices / block size (default 49152 / 768)\n"
      "    --reordered       tiled (Figure 1) placement\n"
      "  --mode M            solve (default) | serve: serve mode expects a\n"
      "                      query trace (apsp_cli --serve-trace), checks the\n"
      "                      per-query span trees tile, and prints latency\n"
      "                      quantiles + stage/tail attribution\n"
      "analyses:\n"
      "  --critical-path     print the critical path summary\n"
      "  --blame             print the blame report (per category/rank/phase)\n"
      "  --top K             straggler table size (default 10)\n"
      "  --what-if SPEC      re-cost the path, e.g. comm=2 or comm=2,compute=1.5\n"
      "                      (nic=, gemm= aliases; io= scales serve store reads;\n"
      "                      values are speedups)\n"
      "  --dot FILE          write the critical path as Graphviz\n"
      "outputs/gates:\n"
      "  --metrics-json FILE cp.* series as registry JSON\n"
      "  --bench-json FILE   cp shares in google-benchmark JSON layout\n"
      "  --band-file FILE    blame-share band document (JSON)\n"
      "  --band-set NAME     band set inside the file (default des)\n");
}

int parse_variant(const std::string& name, dist::Variant* out) {
  // auto is a front-door request (parfw::solve resolves it through the
  // tuner); this tool replays one CONCRETE schedule.
  if (sched::variant_from_name(name, out, /*allow_auto=*/false)) return 0;
  std::fprintf(stderr, "unknown --variant '%s' (valid: %s)\n", name.c_str(),
               sched::variant_names().c_str());
  return 2;
}

bool parse_what_if(const std::string& spec, causal::WhatIf* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    char* end = nullptr;
    const double v = std::strtod(item.c_str() + eq + 1, &end);
    if (end == item.c_str() + eq + 1 || v <= 0.0) return false;
    if (key == "comm" || key == "nic" || key == "link")
      out->comm_speedup = v;
    else if (key == "compute" || key == "gemm" || key == "kernel")
      out->compute_speedup = v;
    else if (key == "io" || key == "store")
      out->io_speedup = v;
    else
      return false;
    pos = comma + 1;
  }
  return true;
}

/// cp share rows in the google-benchmark layout bench_compare.py reads.
bool write_bench_json(const std::string& path, const causal::BlameReport& r) {
  std::ofstream os(path);
  if (!os) return false;
  os.precision(15);
  os << "{\"benchmarks\":[";
  for (int c = 0; c < causal::kNumCategories; ++c) {
    const auto cat = static_cast<causal::Category>(c);
    if (c != 0) os << ",";
    os << "{\"name\":\"cp/" << causal::category_name(cat)
       << "\",\"run_type\":\"iteration\",\"share\":" << r.share(cat)
       << ",\"real_time\":" << r.category(cat) * 1e9 << "}";
  }
  os << "]}\n";
  return static_cast<bool>(os);
}

/// Gate the blame shares against a checked-in band document:
///   {"des": {"compute": [lo, hi], ...}, "real": {...}}
/// Categories absent from the band are unconstrained.
int check_band(const std::string& path, const std::string& set,
               const causal::BlameReport& r) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open band file '%s'\n", path.c_str());
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  causal::JsonValue doc;
  std::string err;
  if (!causal::parse_json(text, &doc, &err)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  const causal::JsonValue* bands = doc.find(set);
  if (bands == nullptr) {
    std::fprintf(stderr, "%s: no band set '%s'\n", path.c_str(), set.c_str());
    return 2;
  }
  int violations = 0;
  for (int c = 0; c < causal::kNumCategories; ++c) {
    const auto cat = static_cast<causal::Category>(c);
    const causal::JsonValue* band = bands->find(causal::category_name(cat));
    if (band == nullptr || band->arr.size() != 2) continue;
    const double lo = band->arr[0].number, hi = band->arr[1].number;
    const double share = r.share(cat);
    const bool ok = share >= lo && share <= hi;
    std::printf("band %-10s share %.4f in [%.4f, %.4f] %s\n",
                causal::category_name(cat), share, lo, hi,
                ok ? "ok" : "VIOLATION");
    if (!ok) ++violations;
  }
  if (violations > 0) {
    std::fprintf(stderr,
                 "trace_analyze: %d blame share(s) outside the '%s' band\n",
                 violations, set.c_str());
    return 1;
  }
  return 0;
}

/// Load, verify and summarise a flight-recorder incident report: every
/// JSONL record prints, and every referenced trace window (paths resolve
/// relative to the report file) must load and re-analyze cleanly — this
/// is the gate proving an incident dump is a self-contained postmortem.
int analyze_incidents(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "cannot open incident report '%s'\n", path.c_str());
    return 1;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "" : path.substr(0, slash + 1);

  std::string line;
  std::size_t count = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++count;
    causal::JsonValue rec;
    std::string err;
    if (!causal::parse_json(line, &rec, &err)) {
      std::fprintf(stderr, "%s: incident %zu: %s\n", path.c_str(), count,
                   err.c_str());
      return 1;
    }
    const causal::JsonValue* kind = rec.find("kind");
    const causal::JsonValue* t = rec.find("t");
    const causal::JsonValue* hint = rec.find("hint_rank");
    const causal::JsonValue* blamed = rec.find("blamed_rank");
    const causal::JsonValue* detail = rec.find("detail");
    const causal::JsonValue* trace = rec.find("trace");
    if (kind == nullptr || t == nullptr || trace == nullptr) {
      std::fprintf(stderr, "%s: incident %zu: missing kind/t/trace fields\n",
                   path.c_str(), count);
      return 1;
    }
    std::printf("incident %zu: %s at t=%.6fs, trigger rank %d, blamed rank "
                "%d\n  %s\n",
                count, kind->str.c_str(), t->number,
                hint != nullptr ? static_cast<int>(hint->number) : -1,
                blamed != nullptr ? static_cast<int>(blamed->number) : -1,
                detail != nullptr ? detail->str.c_str() : "");
    if (trace->str.empty()) continue;  // in-memory incident, no dump
    const std::string tpath =
        trace->str.front() == '/' ? trace->str : dir + trace->str;
    causal::LoadResult loaded = causal::load_chrome_trace_file(tpath);
    if (!loaded.ok) {
      std::fprintf(stderr, "%s: incident %zu window: %s\n", path.c_str(),
                   count, loaded.error.c_str());
      return 1;
    }
    causal::BuildStats bstats;
    const causal::Graph g = causal::build_graph(loaded.events, &bstats);
    causal::BlameReport report;
    if (!causal::analyze(g, {}, &report, &err)) {
      std::fprintf(stderr, "%s: incident %zu window: %s\n", path.c_str(),
                   count, err.c_str());
      return 1;
    }
    std::printf("  window: %zu events, span %.6fs |", g.events.size(),
                report.span);
    for (int c = 0; c < causal::kNumCategories; ++c) {
      const auto cat = static_cast<causal::Category>(c);
      if (report.category(cat) > 0.0)
        std::printf(" %s %.1f%%", causal::category_name(cat),
                    100.0 * report.share(cat));
    }
    std::printf("\n");
  }
  if (count == 0) {
    std::fprintf(stderr, "%s: no incidents recorded\n", path.c_str());
    return 1;
  }
  std::printf("%zu incident(s), all windows load and analyze cleanly\n",
              count);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(
      argc, argv,
      {"trace", "des", "incidents", "variant", "nodes", "n", "block",
       "reordered", "mode", "critical-path", "blame", "top", "what-if", "dot",
       "metrics-json", "bench-json", "band-file", "band-set", "help"});
  if (args.get_bool("help")) {
    print_usage();
    return 0;
  }
  if (args.has("incidents")) return analyze_incidents(args.get("incidents", ""));
  const std::string mode = args.get("mode", "solve");
  if (mode != "solve" && mode != "serve") {
    std::fprintf(stderr, "unknown --mode '%s' (valid: solve, serve)\n",
                 mode.c_str());
    return 2;
  }
  const bool serve_mode = mode == "serve";
  const bool use_des = args.get_bool("des");
  const bool use_file = args.has("trace");
  if (use_des == use_file) {
    std::fprintf(stderr, "need exactly one of --trace FILE or --des\n");
    print_usage();
    return 2;
  }
  if (serve_mode && !use_file) {
    std::fprintf(stderr, "--mode serve needs --trace FILE (a query trace)\n");
    return 2;
  }

  // --- obtain the events ---------------------------------------------------
  causal::LoadResult loaded;  // owns name storage for file traces
  std::vector<sched::TraceEvent> events;
  double des_makespan = -1.0;
  dist::Variant variant = dist::Variant::kAsync;
  const perf::MachineConfig machine = perf::MachineConfig::summit();
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const double n = static_cast<double>(args.get_int("n", 49152));
  const double b = static_cast<double>(args.get_int("block", 768));
  const bool reordered = args.get_bool("reordered");

  if (use_file) {
    loaded = causal::load_chrome_trace_file(args.get("trace", ""));
    if (!loaded.ok) {
      std::fprintf(stderr, "trace_analyze: %s\n", loaded.error.c_str());
      return 1;
    }
    events = loaded.events;
  } else {
    if (int rc = parse_variant(args.get("variant", "async"), &variant))
      return rc;
    sched::CollectTraceSink sink;
    const perf::GridSetup setup = perf::make_grid(machine, nodes, reordered);
    const perf::RunPoint p = perf::simulate_fw_placement(
        machine, variant, setup, nodes, n, b, /*comm_only=*/false, &sink);
    des_makespan = p.seconds;
    events = sink.events();
  }

  // --- serve mode: per-query span-tree aggregation -------------------------
  // Runs BEFORE build_graph consumes the event vector. The causal analysis
  // still runs afterwards — its category split (io vs compute vs comm via
  // Category::kIo) is the serve blame report.
  if (serve_mode) {
    const serve::ServeTraceReport sr = serve::analyze_serve_trace(events);
    std::fputs(
        serve::format_serve_report(sr, static_cast<int>(args.get_int("top", 10)))
            .c_str(),
        stdout);
    if (!sr.ok) {
      std::fprintf(stderr, "trace_analyze: serve trace check failed: %s\n",
                   sr.error.c_str());
      return 1;
    }
  }

  // --- build + analyze -----------------------------------------------------
  causal::BuildStats bstats;
  const causal::Graph g = causal::build_graph(std::move(events), &bstats);
  causal::AnalysisOptions aopt;
  aopt.top_k = static_cast<int>(args.get_int("top", 10));
  causal::BlameReport report;
  std::string err;
  if (!causal::analyze(g, aopt, &report, &err)) {
    std::fprintf(stderr, "trace_analyze: %s\n", err.c_str());
    return 1;
  }

  std::printf(
      "%zu events, %zu edges, %zu matched messages "
      "(%zu unmatched sends, %zu unmatched recvs), %zu barrier joins\n",
      g.events.size(), g.edges.size(), bstats.matched_messages,
      bstats.unmatched_sends, bstats.unmatched_recvs, bstats.joins);

  if (args.get_bool("critical-path") || args.get_bool("blame")) {
    std::printf("critical-path length: %.9f s\n", report.span);
    if (des_makespan >= 0.0) {
      std::printf("DES makespan:         %.9f s\n", des_makespan);
      if (report.span != des_makespan) {
        std::fprintf(stderr,
                     "trace_analyze: critical-path length diverges from the "
                     "DES makespan (%.17g vs %.17g)\n",
                     report.span, des_makespan);
        return 1;
      }
    }
  }
  if (args.get_bool("blame"))
    std::fputs(causal::format_report(g, report).c_str(), stdout);

  if (args.has("what-if")) {
    causal::WhatIf w;
    if (!parse_what_if(args.get("what-if", ""), &w)) {
      std::fprintf(stderr, "bad --what-if spec '%s'\n",
                   args.get("what-if", "").c_str());
      return 2;
    }
    const double predicted = causal::recost(report, w);
    std::printf("what-if (comm x%.3g, compute x%.3g, io x%.3g): predicted "
                "%.9f s (%.2f%% of observed)\n",
                w.comm_speedup, w.compute_speedup, w.io_speedup, predicted,
                report.span > 0.0 ? 100.0 * predicted / report.span : 0.0);
    if (use_des) {
      // Confirm end-to-end: re-run the DES on the scaled machine.
      perf::MachineConfig scaled = machine;
      scaled.nic_bw *= w.comm_speedup;
      scaled.intranode_bw *= w.comm_speedup;
      scaled.srgemm_flops *= w.compute_speedup;
      const perf::GridSetup setup = perf::make_grid(scaled, nodes, reordered);
      const perf::RunPoint p = perf::simulate_fw_placement(
          scaled, variant, setup, nodes, n, b, /*comm_only=*/false, nullptr);
      std::printf("what-if DES confirmation: %.9f s (prediction off by "
                  "%+.2f%%)\n",
                  p.seconds,
                  p.seconds > 0.0 ? 100.0 * (predicted - p.seconds) / p.seconds
                                  : 0.0);
    }
  }

  if (args.has("dot")) {
    std::ofstream os(args.get("dot", ""));
    if (!os) {
      std::fprintf(stderr, "cannot open '%s'\n", args.get("dot", "").c_str());
      return 1;
    }
    causal::write_dot(g, report, os);
    if (!os) {
      std::fprintf(stderr, "write failed on '%s'\n",
                   args.get("dot", "").c_str());
      return 1;
    }
  }

  telemetry::Registry reg;
  causal::publish_blame(report, reg);
  if (args.has("metrics-json")) {
    std::ofstream os(args.get("metrics-json", ""));
    if (!os) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   args.get("metrics-json", "").c_str());
      return 1;
    }
    telemetry::to_json(reg, os);
    if (!os) {
      std::fprintf(stderr, "write failed on '%s'\n",
                   args.get("metrics-json", "").c_str());
      return 1;
    }
  }
  if (args.has("bench-json") &&
      !write_bench_json(args.get("bench-json", ""), report)) {
    std::fprintf(stderr, "cannot write '%s'\n",
                 args.get("bench-json", "").c_str());
    return 1;
  }
  if (args.has("band-file"))
    return check_band(args.get("band-file", ""), args.get("band-set", "des"),
                      report);
  return 0;
}
