file(REMOVE_RECURSE
  "CMakeFiles/test_srgemm.dir/srgemm_test.cpp.o"
  "CMakeFiles/test_srgemm.dir/srgemm_test.cpp.o.d"
  "test_srgemm"
  "test_srgemm.pdb"
  "test_srgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
