// Path-tracking benchmarks: the argmin-SIMD fused kernel vs the scalar
// reference, and the end-to-end overhead a paths run adds to a value run
// of the distributed solver.
//
// Acceptance claims this binary measures:
//   * srgemm::multiply_with_pred (SIMD argmin tracking) is >= 5x the
//     scalar detail::srgemm_with_pred oracle at n = 512 — check.sh
//     --paths enforces the ratio from the emitted JSON;
//   * the paths overhead of the distributed solve stays a small constant
//     factor (pred companion broadcasts roughly triple the row-panel
//     volume; compute roughly doubles per improving element).
//
// Baseline numbers live in BENCH_paths.json (regenerate with
//   bench_paths --benchmark_out=BENCH_paths.json
//               --benchmark_out_format=json).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/blocked_fw_paths.hpp"
#include "dist/driver.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"

namespace {

using S = parfw::MinPlus<float>;

parfw::Matrix<float> make(std::size_t r, std::size_t c, std::uint64_t seed) {
  parfw::DenseEntryGen<float> gen(seed, 1.0, 1.0f, 100.0f);
  parfw::Matrix<float> m(r, c);
  gen.fill_block(0, 0, m.view());
  return m;
}

parfw::Matrix<std::int64_t> make_pred(std::size_t r, std::size_t c) {
  parfw::Matrix<std::int64_t> p(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      p(i, j) = static_cast<std::int64_t>((i * 31 + j * 7) % (r * c));
  return p;
}

/// Scalar reference: the triple loop blocked_floyd_warshall_paths used
/// before the fused kernel existed.
void BM_PredScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto A = make(n, n, 1), B = make(n, n, 2), C = make(n, n, 3);
  auto predB = make_pred(n, n);
  parfw::Matrix<std::int64_t> predC(n, n, -1);
  for (auto _ : state) {
    parfw::detail::srgemm_with_pred<S>(A.view(), B.view(), C.view(),
                                       predB.view(), predC.view());
    benchmark::DoNotOptimize(C.data());
    benchmark::DoNotOptimize(predC.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredScalar)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// The production fused kernel (SIMD argmin tracking, single thread —
/// same work division as the scalar loop so the ratio is kernel-only).
void BM_PredFused(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto A = make(n, n, 1), B = make(n, n, 2), C = make(n, n, 3);
  auto predB = make_pred(n, n);
  parfw::Matrix<std::int64_t> predC(n, n, -1);
  for (auto _ : state) {
    parfw::srgemm::multiply_with_pred<S>(A.view(), B.view(), C.view(),
                                         predB.view(), predC.view());
    benchmark::DoNotOptimize(C.data());
    benchmark::DoNotOptimize(predC.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PredFused)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

/// End-to-end distributed solve, values only — the denominator of the
/// paths-overhead claim.
void run_dist(benchmark::State& state, bool track_paths) {
  const std::size_t n = 256, b = 32;
  const auto grid = parfw::dist::GridSpec::row_major(2, 2);
  parfw::DenseEntryGen<float> gen(7, 0.85, 1.0f, 90.0f, /*integral=*/true);
  parfw::dist::DistFwOptions opt;
  opt.variant = parfw::sched::Variant::kAsync;
  opt.block_size = b;
  for (auto _ : state) {
    const auto r = parfw::dist::run_parallel_fw<S>(n, gen, grid, 2, opt,
                                                   track_paths);
    benchmark::DoNotOptimize(r.dist.data());
  }
}

void BM_DistValue(benchmark::State& state) { run_dist(state, false); }
BENCHMARK(BM_DistValue)->Unit(benchmark::kMillisecond);

void BM_DistPaths(benchmark::State& state) { run_dist(state, true); }
BENCHMARK(BM_DistPaths)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
