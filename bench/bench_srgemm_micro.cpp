// SRGEMM micro-benchmark (paper §2.6 / §4.1 claim: the SRGEMM kernel
// reaches 6.8 TF/s on a V100, ~87% of the no-FMA peak).
//
// Here the kernel is the CPU substitute, so the comparable claim is the
// tiled kernel's fraction of what this host can do, reported against the
// naive triple loop. The paper-scale V100 number is reproduced by the
// performance model in the figure benches.
#include <benchmark/benchmark.h>

#include "graph/graph.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"

namespace {

using S = parfw::MinPlus<float>;

parfw::Matrix<float> make(std::size_t r, std::size_t c, std::uint64_t seed) {
  parfw::DenseEntryGen<float> gen(seed, 1.0, 1.0f, 100.0f);
  parfw::Matrix<float> m(r, c);
  gen.fill_block(0, 0, m.view());
  return m;
}

void BM_SrgemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto A = make(n, n, 1), B = make(n, n, 2), C = make(n, n, 3);
  for (auto _ : state) {
    parfw::srgemm::multiply_reference<S>(A.view(), B.view(), C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SrgemmNaive)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SrgemmTiled(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto A = make(n, n, 1), B = make(n, n, 2), C = make(n, n, 3);
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(A.view(), B.view(), C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SrgemmTiled)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_SrgemmPanelShape(benchmark::State& state) {
  // The blocked-FW hot shape: (m, n, k) = (local, local, b).
  const std::size_t m = 1024, k = static_cast<std::size_t>(state.range(0));
  auto A = make(m, k, 1), B = make(k, m, 2), C = make(m, m, 3);
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(A.view(), B.view(), C.view());
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(m, m, k) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SrgemmPanelShape)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
