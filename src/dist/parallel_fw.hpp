// Distributed Floyd-Warshall on a 2-D process grid — all paper variants.
//
//   kBaseline   Algorithm 3: bulk-synchronous Diag/Panel/Outer with tree
//               broadcasts.
//   kPipelined  Algorithm 4: look-ahead — the (k+1) panels receive their
//               OuterUpdate(k) first, so DiagUpdate(k+1), PanelUpdate(k+1)
//               and PanelBcast(k+1) proceed while everyone else is still
//               busy with OuterUpdate(k).
//   kAsync      kPipelined with the bandwidth-optimal ring broadcast for
//               PanelBcast (§3.3); DiagBcast stays on the latency-optimal
//               tree. Ring relays let PanelBcast(k+1) start before
//               PanelBcast(k) has fully drained.
//   kOffload    Me-ParallelFw: the local matrix lives on the host and the
//               OuterUpdate streams through a capacity-limited device via
//               ooGSrGemm (§4.3-4.4). Baseline schedule otherwise.
//
// The control flow of every variant lives in sched::build_schedule
// (src/sched/ir.hpp); this file is the DATA-CARRYING interpreter of that
// IR. It walks the generated Schedule, executes the steps addressed to
// this rank, and binds each op kind to real work: SRGEMM kernels for the
// compute ops, mpisim collectives for the broadcast ops, and the
// devsim/ooGSrGemm streaming path for offloaded OuterUpdates. The DES in
// src/perf/ interprets the SAME Schedule as cost metadata, so the two
// sides cannot drift apart.
//
// The interpreter is PAYLOAD-GENERIC: attach a predecessor matrix and
// every schedule op moves/updates a tile PAYLOAD — distances, or
// distances + predecessor tiles — instead of a bare value tile. The
// schedule itself grows kPred companion broadcasts (sched::Payload), the
// compute ops bind the argmin-tracking SRGEMM kernels, checkpoints
// persist both tiles, and everything layered on the interpreter — trace
// sinks, telemetry, fault injection, retransmits, checkpoint/restart,
// every variant × placement — works for paths runs with no code of its
// own. The former dedicated paths solver (one variant, no resilience, no
// telemetry) is gone; this is the one true interpreter.
//
// +Reordering (the paper's third legend) is not a code variant: it is the
// same kPipelined/kAsync schedule generated for GridSpec::tiled placement
// instead of GridSpec::row_major — the placement changes which messages
// cross a NIC.
//
// All variants produce bit-identical results to the sequential blocked FW
// (validated in tests, as the paper validates against sequential FW §5.1).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>

#include "core/blocked_fw_paths.hpp"
#include "core/checkpoint_store.hpp"
#include "core/diag_update.hpp"
#include "core/solve_options.hpp"
#include "devsim/device.hpp"
#include "dist/block_cyclic.hpp"
#include "dist/checkpoint.hpp"
#include "dist/grid.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/fault.hpp"
#include "offload/oog_srgemm.hpp"
#include "sched/ir.hpp"
#include "sched/trace.hpp"
#include "srgemm/srgemm.hpp"
#include "telemetry/metrics.hpp"
#include "util/timer.hpp"

namespace parfw::dist {

/// The variants are an IR concept now; re-exported so existing callers
/// keep writing dist::Variant / dist::variant_name.
using Variant = sched::Variant;
using sched::variant_name;

/// block_size / diag live in the shared SolveCommon base (see
/// core/solve_options.hpp).
struct DistFwOptions : SolveCommon {
  Variant variant = Variant::kAsync;
  srgemm::Config gemm{};
  /// kOffload: per-rank simulated device capacity and chunking.
  std::size_t device_memory_bytes = std::size_t{256} << 20;
  offload::OogConfig oog{};
  /// When set, every executed schedule op is recorded (begin/end on the
  /// sched::now_seconds() timeline). Must be thread-safe: mpisim ranks
  /// are threads and all record into the same sink.
  sched::TraceSink* trace = nullptr;
  /// When set, every rank thread hands over its freshly built Schedule
  /// (sched::ScheduleObserver::on_schedule) before executing any step —
  /// the seam the live run monitor (src/monitor/) uses to track schedule
  /// position, progress and ETA against the same IR both interpreters
  /// share. Must tolerate the repeated concurrent calls.
  sched::ScheduleObserver* schedule_observer = nullptr;
  /// When set, the interpreter lands per-phase series into this registry:
  /// a fw.phase.seconds{phase=...,variant=...} histogram (one observation
  /// per executed op — i.e. per k-round instance of that phase, across
  /// all ranks) plus fw.phase.count / fw.phase.bytes / fw.phase.flops
  /// counters carrying the schedule's modelled per-op metadata. The
  /// registry is shared by all rank threads; recording is lock-free.
  telemetry::Registry* metrics = nullptr;
  /// Checkpoint/restart knobs. Checkpoint cuts are emitted into the
  /// schedule iff resilience.store is set and checkpoint_every > 0; the
  /// driver's supervision loop (driver.hpp) also reads max_retries /
  /// send_timeout / max_restarts from here.
  ResilienceOptions resilience{};
  /// Deterministic fault injection, installed into RuntimeOptions by the
  /// driver. The interpreter itself only consumes the crash coordinate
  /// (crash_rank throws RankFailure at its first own step with global
  /// index >= crash_at_op); message faults live in the runtime.
  mpi::FaultPlan faults{};
  /// When set, the driver publishes the FINISHED run as a served tile
  /// manifest into this store: after the last pivot round every rank
  /// snapshots its final tiles (pred payload included on paths runs)
  /// under k0 = nb, then rank 0 writes the commit record. Checkpoint
  /// cuts never fire after the final round, so without this step a
  /// completed run leaves nothing the serving tier (src/serve/) can
  /// open. May alias resilience.store. Not owned; must outlive the run.
  CheckpointStore* publish_store = nullptr;
};

/// Row and column communicators of the 2-D grid: `row` spans my grid row
/// ranked by grid column (size P_c); `col` spans my grid column ranked by
/// grid row (size P_r). Split off `world` collectively — shared by the
/// value solver, the paths solver, and tests that must reproduce the
/// split's traffic in isolation.
struct RowColComms {
  mpi::Comm row;
  mpi::Comm col;
};

inline RowColComms make_row_col_comms(mpi::Comm& world, const GridSpec& grid) {
  const GridCoord me = grid.coord_of(world.rank());
  mpi::Comm row = world.split(me.row, me.col);
  mpi::Comm col = world.split(me.col + grid.rows() + 7, me.row);
  PARFW_CHECK(row.size() == grid.cols() && col.size() == grid.rows());
  PARFW_CHECK(row.rank() == me.col && col.rank() == me.row);
  return RowColComms{std::move(row), std::move(col)};
}

/// Execute distributed FW on this rank's share of the matrix, starting at
/// pivot iteration `start_k` — the resume entry point. The matrix must
/// already hold the state of a run whose iterations < start_k completed
/// (a restored checkpoint; start_k = 0 = fresh input). Collective over
/// `world`, which must have exactly grid.size() ranks. On return the
/// local matrix holds this rank's blocks of the closed distance matrix.
///
/// `pred`, when non-null, turns the run into a PATHS run: same layout as
/// `a`, initialised with init_predecessors_dist (or restored from a
/// checkpoint whose blob carries preds). The schedule grows kPred
/// companion broadcasts, every compute op binds the argmin-tracking
/// kernel, the diagonal is pinned to classic FW (log-squaring loses the
/// argmin chain), and checkpoints persist both tiles. The bulk
/// OuterUpdate still covers the whole local matrix: re-applying a closed
/// panel's update can never STRICTLY improve a distance, and the pred
/// rewrite fires only on strict improvement, so panel preds are never
/// clobbered — no skip-strips special case.
template <typename S>
void parallel_fw_resume(mpi::Comm& world,
                        BlockCyclicMatrix<typename S::value_type>& a,
                        BlockCyclicMatrix<std::int64_t>* pred,
                        std::size_t start_k, const DistFwOptions& opt = {}) {
  static_assert(is_idempotent<S>(), "distributed FW requires idempotent ⊕");
  using T = typename S::value_type;
  const GridSpec& grid = a.grid();
  PARFW_CHECK(world.size() == grid.size());
  const GridCoord me = grid.coord_of(world.rank());
  PARFW_CHECK(me == a.coord());
  const std::size_t b = a.block_size();
  const std::size_t nb = a.num_blocks();
  const std::size_t nlr = a.local_block_rows(), nlc = a.local_block_cols();
  auto local = a.local().view();

  const bool paths = pred != nullptr;
  MatrixView<std::int64_t> plocal;
  if (paths) {
    PARFW_CHECK(pred->block_size() == b && pred->num_blocks() == nb &&
                pred->coord() == a.coord());
    plocal = pred->local().view();
  }

  RowColComms comms = make_row_col_comms(world, grid);
  mpi::Comm& row_comm = comms.row;
  mpi::Comm& col_comm = comms.col;

  // Generate this run's schedule. The generator validates the geometry
  // (at least one block per process row/column). Checkpoint cuts are
  // emitted only when there is a store to receive the snapshots.
  sched::ScheduleParams sp;
  sp.variant = opt.variant;
  sp.nb = nb;
  sp.b = b;
  sp.word_bytes = sizeof(T);
  sp.pred_word_bytes = paths ? sizeof(std::int64_t) : 0;
  sp.diag_flops =
      diag_update_flops(b, paths ? DiagStrategy::kClassic : opt.diag);
  sp.start_k = start_k;
  if (opt.resilience.store != nullptr)
    sp.checkpoint_every = opt.resilience.checkpoint_every;
  const sched::Schedule schedule = sched::build_schedule(grid, sp);
  if (opt.schedule_observer != nullptr)
    opt.schedule_observer->on_schedule(schedule);

  Matrix<T> akk(b, b);  // closed diagonal block of iteration k
  Matrix<T> diag_scratch(b, b);
  // Panel buffers, double-buffered by iteration parity: the pipelined
  // schedule stages iteration k+1's panels (slot (k+1) & 1) while the
  // bulk OuterUpdate(k) still reads slot k & 1. The pred companions of
  // the diag block and row panel mirror the value buffers; the col panel
  // has no pred sibling (the pred rule only reads the pivot block row).
  Matrix<T> rowp_buf[2] = {Matrix<T>(b, nlc * b), Matrix<T>(b, nlc * b)};
  Matrix<T> colp_buf[2] = {Matrix<T>(nlr * b, b), Matrix<T>(nlr * b, b)};
  Matrix<std::int64_t> akk_pred(paths ? b : 0, paths ? b : 0);
  Matrix<std::int64_t> rowp_pred_buf[2] = {
      Matrix<std::int64_t>(paths ? b : 0, paths ? nlc * b : 0),
      Matrix<std::int64_t>(paths ? b : 0, paths ? nlc * b : 0)};

  // Optional per-rank device for the offload variant.
  std::unique_ptr<dev::Device> device;
  offload::OogConfig oog = opt.oog;
  if (opt.variant == Variant::kOffload) {
    dev::DeviceConfig dc;
    dc.memory_bytes = opt.device_memory_bytes;
    device = std::make_unique<dev::Device>(dc);
  }

  const int my = world.rank();
  oog.trace = opt.trace;
  oog.trace_rank = my;
  oog.metrics = opt.metrics;
  auto bytes_of = [](auto& m_) {
    using MT = std::remove_reference_t<decltype(*m_.data())>;
    return std::span<std::uint8_t>{reinterpret_cast<std::uint8_t*>(m_.data()),
                                   m_.size() * sizeof(MT)};
  };

  // Injected crash coordinate: the global step index of the generated
  // schedule — the SAME ordering the DES interprets, so "crash at op N"
  // names one point in the run across replays. One-shot: the supervision
  // loop disarms it on restart.
  const bool crash_me =
      opt.faults.crash_armed() && opt.faults.crash_rank == my;
  // Injected straggler: this rank sleeps inside every op it executes, so
  // the stretch lands in the op's traced span (the overrun watchdog's
  // signal) without touching the data path.
  const bool slow_me = opt.faults.slow_armed() && opt.faults.slow_rank == my;

  std::int64_t step_index = -1;
  for (const sched::Step& step : schedule.steps) {
    ++step_index;
    if (step.rank != my) continue;
    if (crash_me && step_index >= opt.faults.crash_at_op)
      throw mpi::RankFailure(
          my, "injected crash at schedule op " + std::to_string(step_index) +
                  " (rank " + std::to_string(my) + ")");
    const sched::Op& op = step.op;
    const std::size_t k = op.k;
    const bool timed = opt.trace != nullptr || opt.metrics != nullptr;
    const double t0 = timed ? sched::now_seconds() : 0.0;
    Matrix<T>& rowp = rowp_buf[k & 1];
    Matrix<T>& colp = colp_buf[k & 1];
    Matrix<std::int64_t>& rowp_pred = rowp_pred_buf[k & 1];

    switch (op.kind) {
      case sched::OpKind::kDiagUpdate: {
        // Owner closes A(k,k) in place and snapshots it into akk (and,
        // for paths, the block's predecessors into akk_pred).
        auto dk = a.block(a.local_row(k), a.local_col(k));
        if (paths) {
          auto pk = plocal.sub(pred->local_row(k) * b,
                               pred->local_col(k) * b, b, b);
          diag_update_with_pred<S>(dk, pk);
          akk_pred.view().copy_from(MatrixView<const std::int64_t>(pk));
        } else {
          diag_update<S>(dk, opt.diag, diag_scratch.view(), opt.gemm);
        }
        akk.view().copy_from(dk);
        break;
      }
      case sched::OpKind::kDiagBcastRow:
        if (op.payload == sched::Payload::kPred)
          row_comm.bcast_bytes(bytes_of(akk_pred), op.root, op.tag);
        else
          row_comm.bcast_bytes(bytes_of(akk), op.root, op.tag);
        break;
      case sched::OpKind::kDiagBcastCol:
        if (op.payload == sched::Payload::kPred)
          col_comm.bcast_bytes(bytes_of(akk_pred), op.root, op.tag);
        else
          col_comm.bcast_bytes(bytes_of(akk), op.root, op.tag);
        break;
      case sched::OpKind::kPanelUpdateRow: {
        // Left-multiply my row strip by akk (the strip includes the
        // diagonal block, for which the update is an idempotent no-op).
        // Paths: the pred source is the strip itself (intermediate t
        // lives in the pivot block row, i.e. in this strip).
        if (nlc == 0) break;
        auto strip = local.sub(a.local_row(k) * b, 0, b, nlc * b);
        if (paths) {
          auto pstrip = plocal.sub(pred->local_row(k) * b, 0, b, nlc * b);
          srgemm::multiply_with_pred<S>(
              akk.view(), MatrixView<const T>(strip), strip,
              MatrixView<const std::int64_t>(pstrip), pstrip, opt.gemm);
          rowp_pred.view().copy_from(MatrixView<const std::int64_t>(pstrip));
        } else {
          srgemm::multiply<S>(akk.view(), strip, strip, opt.gemm);
        }
        rowp.view().copy_from(strip);
        break;
      }
      case sched::OpKind::kPanelUpdateCol: {
        // Paths: the pred source is akk_pred (intermediate t lives in the
        // pivot block row), which is why the col panel has no pred bcast.
        if (nlr == 0) break;
        auto strip = local.sub(0, a.local_col(k) * b, nlr * b, b);
        if (paths) {
          auto pstrip = plocal.sub(0, pred->local_col(k) * b, nlr * b, b);
          srgemm::multiply_with_pred<S>(
              MatrixView<const T>(strip), akk.view(), strip,
              MatrixView<const std::int64_t>(akk_pred.view()), pstrip,
              opt.gemm);
        } else {
          srgemm::multiply<S>(strip, akk.view(), strip, opt.gemm);
        }
        colp.view().copy_from(strip);
        break;
      }
      case sched::OpKind::kRowPanelBcast:
        // Down the process columns; tree or ring per the schedule. The
        // root side and receive side of the pipelined schedule are
        // distinct steps of the SAME collective (same tag/root) — each
        // rank executes exactly one of them. The pred companion is its
        // own collective on its own tag.
        if (op.payload == sched::Payload::kPred) {
          if (op.coll == sched::CollKind::kRing)
            col_comm.ring_bcast_bytes(bytes_of(rowp_pred), op.root, op.tag);
          else
            col_comm.bcast_bytes(bytes_of(rowp_pred), op.root, op.tag);
        } else if (op.coll == sched::CollKind::kRing) {
          col_comm.ring_bcast_bytes(bytes_of(rowp), op.root, op.tag);
        } else {
          col_comm.bcast_bytes(bytes_of(rowp), op.root, op.tag);
        }
        break;
      case sched::OpKind::kColPanelBcast:
        if (op.coll == sched::CollKind::kRing)
          row_comm.ring_bcast_bytes(bytes_of(colp), op.root, op.tag);
        else
          row_comm.bcast_bytes(bytes_of(colp), op.root, op.tag);
        break;
      case sched::OpKind::kLookaheadRow: {
        // OuterUpdate(k) restricted to the (k+1) row strip, so iteration
        // k+1's phases can start before the bulk update (§3.1-3.2).
        if (nlc == 0) break;
        const std::size_t k1 = k + 1;
        auto strip = local.sub(a.local_row(k1) * b, 0, b, nlc * b);
        auto cp_blk = colp.sub(a.local_row(k1) * b, 0, b, b);
        if (paths) {
          auto pstrip = plocal.sub(pred->local_row(k1) * b, 0, b, nlc * b);
          srgemm::multiply_with_pred<S>(
              MatrixView<const T>(cp_blk), rowp.view(), strip,
              MatrixView<const std::int64_t>(rowp_pred.view()), pstrip,
              opt.gemm);
        } else {
          srgemm::multiply_prepacked<S>(cp_blk, rowp.view(), strip, opt.gemm);
        }
        break;
      }
      case sched::OpKind::kLookaheadCol: {
        if (nlr == 0) break;
        const std::size_t k1 = k + 1;
        auto strip = local.sub(0, a.local_col(k1) * b, nlr * b, b);
        auto rp_blk = rowp.sub(0, a.local_col(k1) * b, b, b);
        if (paths) {
          auto pstrip = plocal.sub(0, pred->local_col(k1) * b, nlr * b, b);
          auto prp_blk = rowp_pred.sub(0, a.local_col(k1) * b, b, b);
          srgemm::multiply_with_pred<S>(
              colp.view(), MatrixView<const T>(rp_blk), strip,
              MatrixView<const std::int64_t>(prp_blk), pstrip, opt.gemm);
        } else {
          srgemm::multiply_prepacked<S>(colp.view(), rp_blk, strip, opt.gemm);
        }
        break;
      }
      case sched::OpKind::kOuterUpdate: {
        // Bulk OuterUpdate(k) on the whole local matrix. Re-applying it
        // to panel strips (including look-ahead-updated ones) is an
        // idempotent no-op — every candidate is a valid path length, and
        // (paths) a closed strip never STRICTLY improves, so the pred
        // rewrite never fires on it. The received panel buffers are dense
        // and reused for every quadrant, so the CPU path runs prepacked.
        if (local.empty()) break;
        if (paths) {
          if (op.offload) {
            (void)offload::oog_srgemm_pred<S>(*device, colp.view(),
                                              rowp.view(), local,
                                              rowp_pred.view(), plocal, oog);
          } else {
            srgemm::multiply_with_pred<S>(colp.view(), rowp.view(), local,
                                          rowp_pred.view(), plocal, opt.gemm);
          }
        } else if (op.offload) {
          (void)offload::oog_srgemm<S>(*device, colp.view(), rowp.view(),
                                       local, oog);
        } else {
          srgemm::multiply_prepacked<S>(colp.view(), rowp.view(), local,
                                        opt.gemm);
        }
        break;
      }
      case sched::OpKind::kCheckpoint: {
        // Coordinated cut before iteration k. The offload variant first
        // drains the device so every tile is host-resident (ooGSrGemm is
        // synchronous, but the flush makes the guarantee explicit and
        // covers future async streaming). Barrier #1 aligns all ranks at
        // the cut; everyone snapshots; barrier #2 guarantees all blobs
        // are stored before rank 0 commits the cut — an uncommitted
        // checkpoint is invisible to restart.
        if (device) device->synchronize();
        world.barrier();
        SchedulePosition pos;
        pos.variant = opt.variant;
        pos.k0 = k;
        pos.sched_op_index = static_cast<std::uint64_t>(step_index);
        if (opt.resilience.store != nullptr) {
          Timer ckpt_timer;
          const std::size_t blob_bytes =
              save_rank_checkpoint<T>(*opt.resilience.store, a, pos, pred);
          world.world().add_checkpoint(blob_bytes, ckpt_timer.seconds());
        }
        world.barrier();
        if (my == 0 && opt.resilience.store != nullptr) {
          CommitRecord rec;
          rec.k0 = pos.k0;
          rec.variant = static_cast<std::uint32_t>(opt.variant);
          rec.world_size = static_cast<std::uint32_t>(world.size());
          rec.n = a.n();
          rec.block_size = b;
          rec.sched_op_index = pos.sched_op_index;
          write_commit(*opt.resilience.store, rec);
        }
        break;
      }
    }

    if (slow_me)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opt.faults.slow_op_seconds));

    if (timed) {
      const double t1 = sched::now_seconds();
      if (opt.trace) {
        sched::TraceEvent e;
        e.rank = my;
        e.name = sched::op_name(op.kind);
        e.k = op.k;
        e.t_begin = t0;
        e.t_end = t1;
        e.bytes = op.bytes;
        e.flops = op.flops;
        // The IR op's match tag ties this span to the "msg"/"recv" events
        // its collective produced (causal analysis groups them by tag).
        e.tag = static_cast<std::int32_t>(op.tag);
        opt.trace->record(e);
      }
      if (opt.metrics) {
        const std::string labels = std::string("phase=") +
                                   sched::op_name(op.kind) +
                                   ",variant=" + variant_name(opt.variant);
        opt.metrics->histogram("fw.phase.seconds", labels).observe(t1 - t0);
        opt.metrics->counter("fw.phase.count", labels).inc();
        if (op.bytes > 0)
          opt.metrics->counter("fw.phase.bytes", labels)
              .add(static_cast<std::uint64_t>(op.bytes));
        if (op.flops > 0)
          opt.metrics->counter("fw.phase.flops", labels)
              .add(static_cast<std::uint64_t>(op.flops));
      }
    }
  }
}

/// Distances-only resume — the signature every pre-paths caller uses.
template <typename S>
void parallel_fw_resume(mpi::Comm& world,
                        BlockCyclicMatrix<typename S::value_type>& a,
                        std::size_t start_k, const DistFwOptions& opt = {}) {
  parallel_fw_resume<S>(world, a, /*pred=*/nullptr, start_k, opt);
}

/// Full run from fresh input — the signature every existing caller uses.
template <typename S>
void parallel_fw(mpi::Comm& world, BlockCyclicMatrix<typename S::value_type>& a,
                 const DistFwOptions& opt = {}) {
  parallel_fw_resume<S>(world, a, /*pred=*/nullptr, /*start_k=*/0, opt);
}

/// Full paths run from fresh input: `pred` must be initialised with
/// init_predecessors_dist. Every variant, placement, checkpoint and
/// fault-injection knob of `opt` applies.
template <typename S>
void parallel_fw(mpi::Comm& world, BlockCyclicMatrix<typename S::value_type>& a,
                 BlockCyclicMatrix<std::int64_t>& pred,
                 const DistFwOptions& opt = {}) {
  parallel_fw_resume<S>(world, a, &pred, /*start_k=*/0, opt);
}

/// Initialise a distributed predecessor layout consistent with
/// init_predecessors: pred(i,j) = i when dist(i,j) is finite or i == j,
/// else -1. Operates on this rank's blocks only.
template <typename S>
void init_predecessors_dist(const BlockCyclicMatrix<typename S::value_type>& a,
                            BlockCyclicMatrix<std::int64_t>& pred) {
  const std::size_t b = a.block_size();
  const auto& local = a.local();
  auto& plocal = pred.local();
  for (std::size_t il = 0; il < a.local_block_rows(); ++il)
    for (std::size_t jl = 0; jl < a.local_block_cols(); ++jl) {
      const std::size_t gi0 = a.global_row(il) * b;
      const std::size_t gj0 = a.global_col(jl) * b;
      for (std::size_t i = 0; i < b; ++i)
        for (std::size_t j = 0; j < b; ++j) {
          const std::size_t gi = gi0 + i, gj = gj0 + j;
          const auto v = local(il * b + i, jl * b + j);
          if (gi == gj)
            plocal(il * b + i, jl * b + j) = static_cast<std::int64_t>(gi);
          else
            plocal(il * b + i, jl * b + j) =
                v != S::zero() ? static_cast<std::int64_t>(gi) : -1;
        }
    }
}

}  // namespace parfw::dist
