// Connected components over the undirected skeleton of a graph.
//
// Paper §2.1 / §6: on multi-component graphs one labels components first
// and runs APSP per component; unreachable pairs stay at semiring zero.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace parfw {

/// Component labels in [0, k) for each vertex, treating every edge as
/// undirected (weakly connected components). Labels are dense and
/// assigned in order of first appearance.
std::vector<vertex_t> connected_components(const Graph& g);

/// Number of distinct labels.
vertex_t num_components(const std::vector<vertex_t>& labels);

}  // namespace parfw
