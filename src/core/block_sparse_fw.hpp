// Block-sparse Floyd-Warshall — a first step toward the paper's §7
// "support of structured sparse graphs, where exploiting sparsity
// becomes paramount" (their reference [31], the supernodal APSP).
//
// Observation: on sparse inputs, most b x b blocks start entirely at the
// semiring zero ("no path"). An SRGEMM whose A-block or B-block is all
// zero() cannot change C (zero is the ⊗-annihilator and the ⊕-identity),
// so the outer product can skip it. The matrix fills in as closures
// propagate, so savings concentrate in early iterations — exactly the
// supernodal observation at block granularity.
//
// Implementation: a per-block occupancy bitmap, maintained incrementally:
//   * a block becomes occupied when a panel update or outer product
//     writes into it with occupied operands;
//   * occupancy never reverts (values only improve).
// The update rule is conservative (a block flagged occupied may still be
// all-zero if the product produced no finite entries), which preserves
// correctness unconditionally.
#pragma once

#include <cstddef>
#include <vector>

#include "core/diag_update.hpp"
#include "srgemm/srgemm.hpp"
#include "util/matrix.hpp"

namespace parfw {

struct BlockSparseStats {
  std::size_t products_total = 0;    ///< outer-product block pairs visited
  std::size_t products_skipped = 0;  ///< skipped via the occupancy bitmap
  double skip_fraction() const {
    return products_total == 0
               ? 0.0
               : static_cast<double>(products_skipped) /
                     static_cast<double>(products_total);
  }
};

/// Blocked FW that skips structurally-empty block products.
template <typename S>
BlockSparseStats block_sparse_floyd_warshall(
    MatrixView<typename S::value_type> a, std::size_t block_size = 64,
    const srgemm::Config& gemm = {}) {
  static_assert(is_idempotent<S>(), "FW requires an idempotent semiring");
  using T = typename S::value_type;
  PARFW_CHECK(a.rows() == a.cols());
  PARFW_CHECK(block_size > 0);
  const std::size_t n = a.rows();
  const std::size_t b = block_size;
  const std::size_t nb = (n + b - 1) / b;
  BlockSparseStats stats;

  auto extent = [&](std::size_t blk) {
    return std::min(n, (blk + 1) * b) - blk * b;
  };

  // Initial occupancy scan.
  std::vector<std::uint8_t> occ(nb * nb, 0);
  for (std::size_t bi = 0; bi < nb; ++bi)
    for (std::size_t bj = 0; bj < nb; ++bj) {
      const auto blk = a.sub(bi * b, bj * b, extent(bi), extent(bj));
      bool any = false;
      for (std::size_t i = 0; i < blk.rows() && !any; ++i)
        for (std::size_t j = 0; j < blk.cols(); ++j)
          if (blk(i, j) != S::zero()) {
            any = true;
            break;
          }
      occ[bi * nb + bj] = any ? 1 : 0;
    }

  Matrix<T> scratch(b, b);
  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t k0 = k * b, bk = extent(k);
    auto akk = a.sub(k0, k0, bk, bk);
    diag_update<S>(akk, DiagStrategy::kClassic, scratch.view(), gemm);
    occ[k * nb + k] = 1;  // unit diagonal makes the block occupied

    // Panel updates (occupancy: row/col blocks stay occupied or become
    // occupied only if they already were — left/right multiply by akk
    // cannot create entries in an all-zero block).
    for (std::size_t j = 0; j < nb; ++j) {
      if (j == k || !occ[k * nb + j]) continue;
      auto blk = a.sub(k0, j * b, bk, extent(j));
      srgemm::multiply<S>(akk, MatrixView<const T>(blk), blk, gemm);
    }
    for (std::size_t i = 0; i < nb; ++i) {
      if (i == k || !occ[i * nb + k]) continue;
      auto blk = a.sub(i * b, k0, extent(i), bk);
      srgemm::multiply<S>(MatrixView<const T>(blk), akk, blk, gemm);
    }

    // Outer products, skipping structurally-empty operand pairs.
    for (std::size_t i = 0; i < nb; ++i) {
      if (i == k) continue;
      for (std::size_t j = 0; j < nb; ++j) {
        if (j == k) continue;
        ++stats.products_total;
        if (!occ[i * nb + k] || !occ[k * nb + j]) {
          ++stats.products_skipped;
          continue;
        }
        srgemm::multiply<S>(a.sub(i * b, k0, extent(i), bk),
                            a.sub(k0, j * b, bk, extent(j)),
                            a.sub(i * b, j * b, extent(i), extent(j)), gemm);
        occ[i * nb + j] = 1;
      }
    }
  }
  return stats;
}

}  // namespace parfw
