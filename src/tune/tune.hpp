// Schedule autotuner — closing the causal-feedback loop (DESIGN.md §4.10).
//
// BENCH_cp.json's headline finding is that ~80% of the distributed FW
// critical path is STALL: the schedule, not the kernels, is the
// bottleneck. This module searches the schedule-configuration space —
// variant × rank placement × block size × offload buffer depth — the way
// the paper itself chooses variant/placement/block size: by MODEL, not by
// exhaustive real runs. Each candidate is evaluated cheaply in the
// discrete-event simulator (perf::build_fw_program + perf::simulate), its
// critical path is blame-attributed through src/causal/, and the search
// is seeded and pruned by that attribution:
//
//   * the seed candidate's blame split decides which dimension is swept
//     first (stall-dominant → reshape the schedule: variant, then
//     placement; comm-dominant → placement, then block size;
//     compute-dominant → block size first);
//   * candidates whose closed-form lower bound (compute floor, W_min NIC
//     floor — cost_model.hpp) already exceeds the best objective are
//     discarded without running the DES;
//   * every DES evaluation is memoized in a cache keyed on the candidate's
//     full schedule configuration (sched::hash_of(ScheduleParams) +
//     placement + buffer depth), so greedy re-visits and repeated runs
//     never rebuild a program or re-cost its perf::Op metadata.
//
// The objective is makespan + stall_weight · critical-path stall seconds:
// among near-equally-fast schedules, prefer the one that is fast because
// it OVERLAPS, not because it gambles — stall on the critical path is
// time that buys nothing and that any model error, OS noise or network
// jitter inflates first (the straggler ablation measures exactly that).
// stall_weight = 0 recovers pure-makespan tuning.
//
// parfw::solve consumes this through resolve_auto() when
// DistStrategy::variant == sched::Variant::kAuto; tools/sched_tune is the
// standalone CLI; manifest.hpp persists winners (PARFW_TUNE_CACHE).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/grid.hpp"
#include "perf/machine.hpp"
#include "sched/variant.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::tune {

/// Rank placement: process-grid shape plus how ranks map onto nodes.
/// Naive = contiguous row-major packing; tiled = the paper's Figure 1
/// +Reordering placement (node grid kr × kc of qr × qc intranode tiles).
struct Placement {
  bool tiled = false;
  int pr = 2, pc = 2;  ///< process grid; tiled: pr = kr·qr, pc = kc·qc
  int kr = 1, kc = 1;  ///< node grid (meaningful iff tiled)

  int qr() const { return tiled ? pr / kr : 1; }
  int qc() const { return tiled ? pc / kc : 1; }
  int ranks() const { return pr * pc; }

  dist::GridSpec grid() const;
  /// Node map under contiguous rank→node packing (how jsrun fills nodes;
  /// both GridSpec placements assume it).
  std::vector<int> node_of(int ranks_per_node) const;
  std::string name() const;  ///< "6x8" (naive) / "2x2/3x4" (tiled)

  friend bool operator==(const Placement& a, const Placement& b) {
    return a.tiled == b.tiled && a.pr == b.pr && a.pc == b.pc &&
           (!a.tiled || (a.kr == b.kr && a.kc == b.kc));
  }
};

/// One point of the search space. `streams` is the ooGSrGemm X-buffer
/// depth (§4.5); it only shapes the kOffload schedule cost, so candidates
/// for the other variants are canonicalised to streams = 3 before hashing
/// (one cache entry per distinct schedule, not per don't-care knob).
struct Candidate {
  sched::Variant variant = sched::Variant::kAsync;
  Placement placement{};
  std::size_t block = 768;
  int streams = 3;

  Candidate canonical() const {
    Candidate c = *this;
    if (c.variant != sched::Variant::kOffload) c.streams = 3;
    return c;
  }
  std::string name() const;  ///< "async 6x8 b=768" / "offload 2x2/3x4 b=768 s=2"

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.variant == b.variant && a.placement == b.placement &&
           a.block == b.block &&
           (a.variant != sched::Variant::kOffload || a.streams == b.streams);
  }
};

/// What the schedule is tuned FOR: the problem and the cluster slice.
struct Workload {
  std::size_t n = 0;        ///< vertices
  int ranks = 0;            ///< total processes P
  int ranks_per_node = 1;   ///< NIC-domain size (paper §3.4.1)
  std::size_t word_bytes = 4;
  /// Tune for the paths schedule: pred companion broadcasts, classic
  /// diagonal, the offload pipeline's pred transfers. A winner tuned for
  /// the value schedule is NOT automatically right with the row-panel
  /// volume roughly tripled, so paths workloads are a distinct tuning
  /// (and manifest-cache) universe.
  bool track_paths = false;

  int nodes() const { return ranks / ranks_per_node; }
  friend bool operator==(const Workload& a, const Workload& b) {
    return a.n == b.n && a.ranks == b.ranks &&
           a.ranks_per_node == b.ranks_per_node &&
           a.word_bytes == b.word_bytes && a.track_paths == b.track_paths;
  }
};

/// One memoized DES evaluation of a candidate. All fields are
/// deterministic functions of (machine, workload, candidate) — a cache
/// hit returns them bit-identically.
struct Eval {
  double makespan = 0.0;        ///< DES-predicted run time, s
  double stall_seconds = 0.0;   ///< critical-path stall (causal blame)
  double stall_share = 0.0;     ///< stall_seconds / makespan
  double comm_share = 0.0;
  double compute_share = 0.0;
  /// recost() limit under infinite comm+compute speedups: the part of the
  /// path only a RESHAPED schedule can remove (causal::structural_floor).
  double structural_floor = 0.0;
  double objective = 0.0;       ///< makespan + stall_weight · stall_seconds
  std::int64_t wire_bytes = 0;  ///< Σ send payloads — exact vs real mpisim
  std::int64_t internode_bytes = 0;
};

struct TuneOptions {
  perf::MachineConfig machine = perf::MachineConfig::summit();
  /// Weight of critical-path stall seconds in the objective (see header
  /// comment). 0 = pure makespan.
  double stall_weight = 1.0;
  /// Candidate-space overrides; empty = derive defaults (all concrete
  /// variants; every grid factorisation, naive and tiled; divisors of n
  /// geometrically thinned with n/b capped at kMaxBlocksPerDim; depths
  /// 1..3).
  std::vector<sched::Variant> variants;
  std::vector<Placement> placements;
  std::vector<std::size_t> blocks;
  std::vector<int> streams;
  /// Greedy refinement rounds after the first blame-ordered pass. The
  /// loop also stops as soon as a full round improves nothing.
  int refine_rounds = 2;
  /// When set, run() publishes the tune.* series here.
  telemetry::Registry* metrics = nullptr;
};

/// Search-space ceiling on blocks-per-dimension (n/b): DES cost grows
/// with nb·P, so default block derivation refuses nb beyond this.
inline constexpr std::size_t kMaxBlocksPerDim = 384;

struct TuneReport {
  Workload workload{};
  Candidate seed{}, winner{};
  Eval seed_eval{}, winner_eval{};
  std::string dimension_order;  ///< blame-chosen sweep order, e.g.
                                ///< "variant,placement,block,streams"
  std::size_t space_size = 0;   ///< candidates the full product contains
  std::size_t evaluated = 0;    ///< DES evaluations actually run
  std::size_t pruned = 0;       ///< skipped on the closed-form lower bound
  std::size_t infeasible = 0;   ///< skipped on feasibility
  std::size_t cache_hits = 0;   ///< evaluations answered from the cache
  double des_seconds = 0.0;     ///< wall time spent building + simulating

  std::string summary() const;  ///< human-readable report
};

class Tuner {
 public:
  Tuner(const Workload& w, const TuneOptions& opt = {});

  const Workload& workload() const { return workload_; }
  const TuneOptions& options() const { return opt_; }

  /// The candidate space actually searched (after defaults/overrides).
  const std::vector<sched::Variant>& variants() const { return variants_; }
  const std::vector<Placement>& placements() const { return placements_; }
  const std::vector<std::size_t>& blocks() const { return blocks_; }
  const std::vector<int>& streams() const { return streams_; }

  /// The schedule the untuned solver would run: the repo-default variant
  /// (async), balanced naive grid, block closest to 768 among blocks().
  Candidate default_candidate() const;

  /// True iff the candidate can be scheduled for this workload (block
  /// divides n, at least one block per process row/column, grid matches
  /// the workload's rank count and node shape). `why` gets a diagnostic.
  bool feasible(const Candidate& c, std::string* why = nullptr) const;

  /// Closed-form lower bound on any feasible candidate's DES makespan:
  /// max(compute floor 2n³/(P·rank_flops), W_min/nic_bw). Candidates with
  /// lower_bound > best objective are pruned without a DES run (objective
  /// ≥ makespan ≥ bound for stall_weight ≥ 0).
  double lower_bound(const Candidate& c) const;

  /// Memoized DES evaluation (builds the program, simulates, attributes
  /// blame). A repeat call — same canonical candidate — is a cache hit:
  /// the program is NOT rebuilt and the returned Eval is bit-identical.
  const Eval& evaluate(const Candidate& c);

  /// Run the search from the default seed / an explicit seed.
  TuneReport run();
  TuneReport run(const Candidate& seed);

  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_hits() const { return cache_hits_; }

 private:
  struct CacheEntry {
    Candidate candidate;  ///< collision guard: key must match exactly
    Eval eval;
  };
  std::uint64_t key_of(const Candidate& c) const;

  Workload workload_;
  TuneOptions opt_;
  std::vector<sched::Variant> variants_;
  std::vector<Placement> placements_;
  std::vector<std::size_t> blocks_;
  std::vector<int> streams_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::size_t cache_hits_ = 0;
  double des_seconds_ = 0.0;
};

/// Default candidate-space derivations (exposed for tests and the CLI).
std::vector<Placement> enumerate_placements(const Workload& w);
std::vector<std::size_t> derive_blocks(const Workload& w);

/// Publish the tune.* series: tune.predicted_makespan / tune.default_-
/// makespan / tune.stall_share{schedule=default|tuned} gauges plus the
/// tune.candidates_evaluated / tune.pruned / tune.cache_hits counters and
/// the tune.des_seconds gauge.
void publish_tune(const TuneReport& r, telemetry::Registry& reg);

}  // namespace parfw::tune
