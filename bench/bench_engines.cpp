// Ablation — the APSP engine family on one host.
//
// Compares every solver in the library on identical inputs: sequential FW
// (Algorithm 1), blocked FW (Algorithm 2) with two block sizes, R-Kleene
// divide-and-conquer, Johnson's algorithm (sparse comparator, §6), and
// component-wise solving on a multi-component input. All outputs are
// cross-validated before timing is reported.
#include <cstdio>

#include "core/apsp.hpp"
#include "core/component_apsp.hpp"
#include "core/rkleene.hpp"
#include "fig_common.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"
#include "util/timer.hpp"

using namespace parfw;
using S = MinPlus<float>;  // single precision, as in the paper

namespace {

double time_it(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.millis();
}

}  // namespace

int main() {
  bench::header(
      "APSP engine comparison (single host)",
      "same 768-vertex graph through every solver; Johnson included as the\n"
      "paper's §6 sparse-graph comparator. Multi-component case shows the\n"
      "component decomposition's Σn_c³ advantage.");

  const vertex_t n = 768;
  const auto dense_g = gen::erdos_renyi(n, 0.08, 1234, 1.0, 100.0, true);
  std::printf("graph: %lld vertices, %zu edges (8%% dense)\n\n",
              static_cast<long long>(n), dense_g.num_edges());

  Matrix<float> reference = dense_g.distance_matrix<S>();
  const double t_seq = time_it([&] { floyd_warshall<S>(reference.view()); });

  Table t({"engine", "ms", "vs sequential", "output ok"});
  t.add_row({"sequential FW (Alg 1)", Table::num(t_seq, 0), "1.00", "ref"});

  auto report = [&](const char* name, Matrix<float>&& result, double ms) {
    const bool ok =
        max_abs_diff<float>(reference.view(), result.view()) == 0.0;
    t.add_row({name, Table::num(ms, 0), Table::num(t_seq / ms, 2),
               ok ? "yes" : "NO"});
  };

  {
    auto m = dense_g.distance_matrix<S>();
    const double ms = time_it(
        [&] { blocked_floyd_warshall<S>(m.view(), {{.block_size = 64}}); });
    report("blocked FW b=64", std::move(m), ms);
  }
  {
    auto m = dense_g.distance_matrix<S>();
    const double ms = time_it(
        [&] { blocked_floyd_warshall<S>(m.view(), {{.block_size = 192}}); });
    report("blocked FW b=192", std::move(m), ms);
  }
  {
    auto m = dense_g.distance_matrix<S>();
    const double ms =
        time_it([&] { rkleene_apsp<S>(m.view(), {.base_size = 64}); });
    report("R-Kleene", std::move(m), ms);
  }
  {
    Matrix<double> jd;
    const double ms = time_it([&] { jd = sssp::johnson_apsp(dense_g); });
    Matrix<float> m(jd.rows(), jd.cols());
    for (std::size_t i = 0; i < jd.rows(); ++i)
      for (std::size_t j = 0; j < jd.cols(); ++j)
        m(i, j) = static_cast<float>(jd(i, j));
    report("Johnson (n x Dijkstra)", std::move(m), ms);
  }
  std::printf("%s", t.str().c_str());

  // Multi-component input: 4 x 192-vertex components.
  const auto multi = gen::multi_component(4, 192, 0.2, 99);
  auto dense_solve = multi.distance_matrix<S>();
  const double t_dense = time_it(
      [&] { blocked_floyd_warshall<S>(dense_solve.view(), {{.block_size = 64}}); });
  Matrix<float> comp_result;
  ApspOptions comp_opt;
  comp_opt.algorithm = ApspAlgorithm::kBlocked;
  comp_opt.block_size = 64;
  const double t_comp = time_it(
      [&] { comp_result = component_apsp<S>(multi, comp_opt).dist; });
  std::printf("\nmulti-component (4 x 192): dense solve %.0f ms, "
              "component solve %.0f ms (%.1fx; ideal 16x by flops), "
              "outputs match: %s\n",
              t_dense, t_comp, t_dense / t_comp,
              max_abs_diff<float>(dense_solve.view(), comp_result.view()) ==
                      0.0
                  ? "yes"
                  : "NO");

  bench::footer(
      "expect: every engine validates bit-for-bit; relative speeds are\n"
      "host-dependent (the scalar FW's infinity-skip helps it on sparse\n"
      "inputs at this scale — on GPUs the SRGEMM engines dominate, §2.6);\n"
      "the component solve approaches its 16x flop advantage.");
  return 0;
}
