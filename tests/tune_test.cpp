// Tests for the causal-feedback schedule autotuner (src/tune/,
// DESIGN.md §4.10): candidate-space derivation, the memoized DES
// evaluation cache, blame-guided search, the PARFW_TUNE_CACHE manifest,
// the solve() front door's kAuto resolution — and the headline regression
// on the BENCH_cp.json reference workload: the tuned schedule must be no
// slower than the default AND cut the critical-path stall share by at
// least 20% relative.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/solve.hpp"
#include "graph/generators.hpp"
#include "sched/ir.hpp"
#include "sched/variant.hpp"
#include "semiring/semiring.hpp"
#include "telemetry/metrics.hpp"
#include "tune/manifest.hpp"
#include "tune/tune.hpp"
#include "util/check.hpp"

namespace parfw {
namespace {

// --- sched seam: names, hashing, kAuto gating --------------------------------

TEST(VariantNames, RoundTripAndAutoGating) {
  for (sched::Variant v : sched::kConcreteVariants) {
    sched::Variant back = sched::Variant::kAuto;
    EXPECT_TRUE(sched::variant_from_name(sched::variant_name(v), &back));
    EXPECT_EQ(back, v);
  }
  sched::Variant out = sched::Variant::kBaseline;
  EXPECT_FALSE(sched::variant_from_name("auto", &out, /*allow_auto=*/false));
  EXPECT_TRUE(sched::variant_from_name("auto", &out, /*allow_auto=*/true));
  EXPECT_EQ(out, sched::Variant::kAuto);
  EXPECT_FALSE(sched::variant_from_name("bogus", &out, /*allow_auto=*/true));
  EXPECT_EQ(sched::variant_names(), "baseline|pipelined|async|offload");
  EXPECT_EQ(sched::variant_names(/*with_auto=*/true),
            "baseline|pipelined|async|offload|auto");
}

TEST(ScheduleParamsHash, EqualityAndSensitivity) {
  sched::ScheduleParams a;
  a.variant = sched::Variant::kPipelined;
  a.nb = 8;
  a.b = 32;
  sched::ScheduleParams b = a;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(sched::hash_of(a), sched::hash_of(b));

  // Every field participates: flipping any one changes == (and, for this
  // non-adversarial corpus, the hash).
  b = a;
  b.variant = sched::Variant::kAsync;
  EXPECT_TRUE(a != b);
  EXPECT_NE(sched::hash_of(a), sched::hash_of(b));
  b = a;
  b.b = 64;
  EXPECT_TRUE(a != b);
  EXPECT_NE(sched::hash_of(a), sched::hash_of(b));
  b = a;
  b.checkpoint_every = 2;
  EXPECT_TRUE(a != b);
  EXPECT_NE(sched::hash_of(a), sched::hash_of(b));
  b = a;
  b.diag_flops = 123.0;
  EXPECT_TRUE(a != b);
  EXPECT_NE(sched::hash_of(a), sched::hash_of(b));
}

TEST(BuildSchedule, RejectsAutoPseudoVariant) {
  sched::ScheduleParams p;
  p.variant = sched::Variant::kAuto;
  p.nb = 4;
  p.b = 16;
  const dist::GridSpec grid = dist::GridSpec::row_major(2, 2);
  EXPECT_THROW(sched::build_schedule(grid, p), check_error);
}

// --- candidate-space derivation ----------------------------------------------

TEST(TuneSpace, DeriveBlocksDivisorsBoundedAndThinned) {
  tune::Workload w;
  w.n = 49152;
  w.ranks = 48;
  w.ranks_per_node = 12;
  const std::vector<std::size_t> blocks = tune::derive_blocks(w);
  ASSERT_FALSE(blocks.empty());
  EXPECT_LE(blocks.size(), 10u);
  for (std::size_t b : blocks) {
    EXPECT_EQ(w.n % b, 0u);
    EXPECT_GE(b, 8u);
    const std::size_t nb = w.n / b;
    EXPECT_GE(nb, 2u);
    EXPECT_LE(nb, tune::kMaxBlocksPerDim);
  }
}

TEST(TuneSpace, EnumeratePlacementsCoversNaiveAndTiled) {
  tune::Workload w;
  w.n = 1024;
  w.ranks = 8;
  w.ranks_per_node = 4;  // 2 nodes
  const std::vector<tune::Placement> ps = tune::enumerate_placements(w);
  bool saw_naive = false, saw_tiled = false;
  for (const tune::Placement& p : ps) {
    EXPECT_EQ(p.ranks(), w.ranks);
    if (p.tiled) {
      saw_tiled = true;
      EXPECT_EQ(p.kr * p.kc, w.nodes());
      EXPECT_EQ(p.qr() * p.qc(), w.ranks_per_node);
    } else {
      saw_naive = true;
    }
  }
  EXPECT_TRUE(saw_naive);
  EXPECT_TRUE(saw_tiled);

  // Single node: tiled placements coincide with naive ones, so none.
  w.ranks_per_node = 8;
  for (const tune::Placement& p : tune::enumerate_placements(w))
    EXPECT_FALSE(p.tiled);
}

TEST(TuneSpace, FeasibilityRejectsBadShapes) {
  tune::Workload w;
  w.n = 96;
  w.ranks = 4;
  w.ranks_per_node = 2;
  tune::Tuner tuner(w);
  tune::Candidate c = tuner.default_candidate();
  std::string why;
  EXPECT_TRUE(tuner.feasible(c, &why)) << why;
  c.block = 7;  // does not divide 96
  EXPECT_FALSE(tuner.feasible(c, &why));
  c = tuner.default_candidate();
  c.placement.pr = 8;  // 8x2 = 16 ranks != 4
  EXPECT_FALSE(tuner.feasible(c, &why));
}

// --- DES evaluation cache (satellite: memoized program builds) ---------------

TEST(TuneCache, HitIsBitIdenticalAndSkipsRebuild) {
  tune::Workload w;
  w.n = 192;
  w.ranks = 4;
  w.ranks_per_node = 2;
  tune::Tuner tuner(w);
  tune::Candidate c = tuner.default_candidate();

  const tune::Eval& first = tuner.evaluate(c);
  const std::size_t evals = tuner.cache_size();
  const double makespan = first.makespan;
  const double stall = first.stall_seconds;
  const std::int64_t wire = first.wire_bytes;

  const tune::Eval& again = tuner.evaluate(c);
  EXPECT_EQ(tuner.cache_size(), evals);  // no new DES evaluation
  EXPECT_EQ(tuner.cache_hits(), 1u);
  EXPECT_EQ(&first, &again);  // literally the same stored object
  EXPECT_EQ(again.makespan, makespan);
  EXPECT_EQ(again.stall_seconds, stall);
  EXPECT_EQ(again.wire_bytes, wire);

  // Canonicalisation: for non-offload variants the streams knob is
  // don't-care, so it must not split cache entries.
  ASSERT_NE(c.variant, sched::Variant::kOffload);
  tune::Candidate c2 = c;
  c2.streams = 1;
  (void)tuner.evaluate(c2);
  EXPECT_EQ(tuner.cache_size(), evals);
  EXPECT_EQ(tuner.cache_hits(), 2u);
}

TEST(TuneCache, DistinctConfigurationsDistinctEntries) {
  tune::Workload w;
  w.n = 192;
  w.ranks = 4;
  w.ranks_per_node = 2;
  tune::Tuner tuner(w);
  tune::Candidate c = tuner.default_candidate();
  (void)tuner.evaluate(c);
  tune::Candidate c2 = c;
  c2.variant = sched::Variant::kOffload;
  c2.streams = 1;
  (void)tuner.evaluate(c2);
  tune::Candidate c3 = c2;
  c3.streams = 3;  // offload: depth is load-bearing
  (void)tuner.evaluate(c3);
  EXPECT_EQ(tuner.cache_size(), 3u);
  EXPECT_EQ(tuner.cache_hits(), 0u);
  // Deeper X-buffering can only help the offload outer phase.
  EXPECT_LE(tuner.evaluate(c3).makespan, tuner.evaluate(c2).makespan);
}

// --- search ------------------------------------------------------------------

TEST(TuneSearch, DeterministicAcrossRuns) {
  tune::Workload w;
  w.n = 384;
  w.ranks = 8;
  w.ranks_per_node = 4;
  tune::Tuner t1(w), t2(w);
  const tune::TuneReport r1 = t1.run();
  const tune::TuneReport r2 = t2.run();
  EXPECT_TRUE(r1.winner == r2.winner);
  EXPECT_EQ(r1.winner_eval.makespan, r2.winner_eval.makespan);
  EXPECT_EQ(r1.winner_eval.stall_seconds, r2.winner_eval.stall_seconds);
  EXPECT_EQ(r1.evaluated, r2.evaluated);
  EXPECT_EQ(r1.dimension_order, r2.dimension_order);
  EXPECT_FALSE(r1.dimension_order.empty());
  EXPECT_GT(r1.space_size, r1.evaluated);
}

TEST(TuneSearch, WinnerPredictionMatchesFreshDes) {
  tune::Workload w;
  w.n = 384;
  w.ranks = 8;
  w.ranks_per_node = 4;
  tune::Tuner tuner(w);
  const tune::TuneReport r = tuner.run();
  // The winner's stored Eval must equal a from-scratch DES evaluation of
  // the same candidate EXACTLY — the report's prediction is the DES, not
  // an extrapolation.
  tune::Tuner fresh(w);
  const tune::Eval& e = fresh.evaluate(r.winner);
  EXPECT_EQ(e.makespan, r.winner_eval.makespan);
  EXPECT_EQ(e.stall_seconds, r.winner_eval.stall_seconds);
  EXPECT_EQ(e.wire_bytes, r.winner_eval.wire_bytes);
  EXPECT_EQ(e.objective, r.winner_eval.objective);
}

TEST(TuneSearch, LowerBoundNeverExceedsDesMakespan) {
  tune::Workload w;
  w.n = 256;
  w.ranks = 4;
  w.ranks_per_node = 2;
  tune::Tuner tuner(w);
  // Pruning soundness: the closed-form bound must under-estimate every
  // candidate the DES actually costs, else the search could discard the
  // true optimum.
  for (sched::Variant v : tuner.variants()) {
    for (std::size_t b : tuner.blocks()) {
      tune::Candidate c;
      c.variant = v;
      c.placement.pr = 2;
      c.placement.pc = 2;
      c.block = b;
      if (!tuner.feasible(c)) continue;
      EXPECT_LE(tuner.lower_bound(c), tuner.evaluate(c).makespan)
          << c.name();
    }
  }
}

TEST(TuneSearch, SeedIsNeverBeatenByItself) {
  tune::Workload w;
  w.n = 384;
  w.ranks = 8;
  w.ranks_per_node = 4;
  tune::Tuner tuner(w);
  const tune::TuneReport r = tuner.run();
  // Greedy descent only ever replaces the incumbent with a strictly
  // better objective, so the winner is at least as good as the seed.
  EXPECT_LE(r.winner_eval.objective, r.seed_eval.objective);
}

TEST(TuneTelemetry, PublishesTuneSeries) {
  tune::Workload w;
  w.n = 192;
  w.ranks = 4;
  w.ranks_per_node = 2;
  tune::TuneOptions topt;
  telemetry::Registry reg;
  topt.metrics = &reg;
  tune::Tuner tuner(w, topt);
  const tune::TuneReport r = tuner.run();
  EXPECT_EQ(reg.gauge("tune.predicted_makespan").value(),
            r.winner_eval.makespan);
  EXPECT_EQ(reg.gauge("tune.stall_share", "schedule=default").value(),
            r.seed_eval.stall_share);
  EXPECT_EQ(reg.counter("tune.candidates_evaluated").value(), r.evaluated);
  EXPECT_EQ(reg.counter("tune.cache_hits").value(), r.cache_hits);
}

// --- manifest ----------------------------------------------------------------

TEST(Manifest, RoundTripsThroughJson) {
  tune::Manifest m;
  tune::ManifestEntry e;
  e.workload.n = 49152;
  e.workload.ranks = 48;
  e.workload.ranks_per_node = 12;
  e.stall_weight = 1.0;
  e.winner.variant = sched::Variant::kPipelined;
  e.winner.placement.tiled = true;
  e.winner.placement.pr = 4;
  e.winner.placement.pc = 6;
  e.winner.placement.kr = 2;
  e.winner.placement.kc = 2;
  e.winner.block = 256;
  e.predicted_makespan = 1.5;
  e.predicted_stall_share = 0.54;
  e.default_makespan = 1.62;
  e.default_stall_share = 0.80;
  m.put(e);
  tune::ManifestEntry e2 = e;
  e2.stall_weight = 0.0;  // same workload, different objective: own row
  e2.winner.variant = sched::Variant::kAsync;
  e2.winner.placement.tiled = false;
  m.put(e2);

  tune::Manifest back;
  std::string err;
  ASSERT_TRUE(tune::read_manifest(tune::write_manifest(m), &back, &err))
      << err;
  ASSERT_EQ(back.entries.size(), 2u);
  const tune::ManifestEntry* hit = back.find(e.workload, 1.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->winner == e.winner);
  EXPECT_EQ(hit->predicted_makespan, e.predicted_makespan);
  EXPECT_EQ(hit->default_stall_share, e.default_stall_share);
  const tune::ManifestEntry* hit0 = back.find(e.workload, 0.0);
  ASSERT_NE(hit0, nullptr);
  EXPECT_TRUE(hit0->winner == e2.winner);
  EXPECT_EQ(back.find(e.workload, 0.5), nullptr);

  // put() overwrites on key match rather than duplicating.
  tune::ManifestEntry e3 = e;
  e3.winner.block = 512;
  back.put(e3);
  EXPECT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.find(e.workload, 1.0)->winner.block, 512u);
}

TEST(Manifest, RejectsMalformedDocuments) {
  tune::Manifest m;
  std::string err;
  EXPECT_FALSE(tune::read_manifest("{", &m, &err));
  EXPECT_FALSE(tune::read_manifest("[]", &m, &err));
  EXPECT_FALSE(tune::read_manifest("{\"version\": 2, \"entries\": []}", &m,
                                   &err));
  EXPECT_FALSE(tune::read_manifest(
      "{\"version\": 1, \"entries\": [{\"n\": 4}]}", &m, &err));
  // Unknown variant names must fail loudly, not default.
  EXPECT_FALSE(tune::read_manifest(
      "{\"version\": 1, \"entries\": [{\"n\": 96, \"ranks\": 4, "
      "\"ranks_per_node\": 2, \"word_bytes\": 4, \"stall_weight\": 1, "
      "\"variant\": \"warp\", \"tiled\": false, \"pr\": 2, \"pc\": 2, "
      "\"kr\": 1, \"kc\": 1, \"block\": 16, \"streams\": 3, "
      "\"predicted_makespan\": 1, \"predicted_stall_share\": 0, "
      "\"default_makespan\": 1, \"default_stall_share\": 0}]}",
      &m, &err));
  EXPECT_NE(err.find("variant"), std::string::npos);
}

// --- solve() front door: kAuto -----------------------------------------------

class AutoSolve : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_ = std::getenv("PARFW_TUNE_CACHE") != nullptr
                ? std::string(std::getenv("PARFW_TUNE_CACHE"))
                : std::string();
    had_prev_ = std::getenv("PARFW_TUNE_CACHE") != nullptr;
    unsetenv("PARFW_TUNE_CACHE");
  }
  void TearDown() override {
    if (had_prev_)
      setenv("PARFW_TUNE_CACHE", prev_.c_str(), 1);
    else
      unsetenv("PARFW_TUNE_CACHE");
  }

  static ApspOptions auto_options() {
    ApspOptions opt;
    opt.algorithm = ApspAlgorithm::kDistributed;
    opt.dist.variant = sched::Variant::kAuto;
    opt.dist.grid_rows = 2;
    opt.dist.grid_cols = 2;
    opt.dist.ranks_per_node = 2;
    return opt;
  }

 private:
  std::string prev_;
  bool had_prev_ = false;
};

TEST_F(AutoSolve, BitIdenticalToExplicitWinningVariant) {
  const Graph g = gen::erdos_renyi(96, 0.15, 11);
  const ApspOptions opt = auto_options();
  const auto auto_result = solve<MinPlus<double>>(g, opt);

  // Resolve the same workload through the tuner directly and run the
  // winner EXPLICITLY: the auto path must be pure sugar over it.
  const tune::ManifestEntry entry =
      resolve_auto(opt.dist, 96, sizeof(double));
  ApspOptions explicit_opt = opt;
  explicit_opt.dist = apply_winner(opt.dist, entry.winner);
  explicit_opt.block_size = entry.winner.block;
  explicit_opt.dist.oog_streams =
      static_cast<std::size_t>(entry.winner.streams);
  ASSERT_NE(explicit_opt.dist.variant, sched::Variant::kAuto);
  const auto explicit_result = solve<MinPlus<double>>(g, explicit_opt);

  ASSERT_EQ(auto_result.dist.rows(), explicit_result.dist.rows());
  for (std::size_t i = 0; i < auto_result.dist.rows(); ++i)
    for (std::size_t j = 0; j < auto_result.dist.cols(); ++j)
      ASSERT_EQ(std::memcmp(&auto_result.dist(i, j),
                            &explicit_result.dist(i, j), sizeof(double)),
                0)
          << "auto diverged from the explicit winner at (" << i << "," << j
          << ")";
}

TEST_F(AutoSolve, ManifestCacheFillAndReuse) {
  const std::string path =
      ::testing::TempDir() + "/parfw_tune_cache_test.json";
  std::remove(path.c_str());
  setenv("PARFW_TUNE_CACHE", path.c_str(), 1);

  const Graph g = gen::erdos_renyi(96, 0.15, 11);
  ApspOptions opt = auto_options();
  telemetry::Registry reg;
  opt.dist.metrics = &reg;

  // First run searches and persists.
  const auto first = solve<MinPlus<double>>(g, opt);
  EXPECT_EQ(reg.counter("tune.manifest_hits").value(), 0u);
  EXPECT_GT(reg.counter("tune.candidates_evaluated").value(), 0u);
  EXPECT_GT(reg.gauge("tune.achieved_seconds").value(), 0.0);
  tune::Manifest m;
  std::string err;
  ASSERT_TRUE(tune::read_manifest_file(path, &m, &err)) << err;
  ASSERT_EQ(m.entries.size(), 1u);

  // Second run answers from the manifest — no fresh search — and the
  // result is bit-identical.
  telemetry::Registry reg2;
  opt.dist.metrics = &reg2;
  const auto second = solve<MinPlus<double>>(g, opt);
  EXPECT_EQ(reg2.counter("tune.manifest_hits").value(), 1u);
  EXPECT_EQ(reg2.counter("tune.candidates_evaluated").value(), 0u);
  for (std::size_t i = 0; i < first.dist.rows(); ++i)
    for (std::size_t j = 0; j < first.dist.cols(); ++j)
      ASSERT_EQ(first.dist(i, j), second.dist(i, j));

  // A corrupt cache must be a hard error, not a silent re-tune.
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"version\": 1, \"entries\": ", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)solve<MinPlus<double>>(g, opt), check_error);
  std::remove(path.c_str());
}

// --- the headline regression (BENCH_cp.json workload) ------------------------

TEST(TuneRegression, ReferenceWorkloadStallShareCut) {
  // The BENCH_cp.json reference workload: n=49152 on 4 Summit nodes (48
  // ranks, 12 per node), default schedule async naive 6x8 b=768. The
  // candidate space is restricted to the decisive block sizes to keep
  // the test fast; bench_tune runs the full space (same winner family).
  tune::Workload w;
  w.n = 49152;
  w.ranks = 48;
  w.ranks_per_node = 12;
  tune::TuneOptions topt;
  topt.blocks = {128, 256, 768};
  tune::Tuner tuner(w, topt);
  const tune::TuneReport r = tuner.run();

  // Default reproduces the committed BENCH_cp baseline.
  EXPECT_TRUE(r.seed.variant == sched::Variant::kAsync);
  EXPECT_NEAR(r.seed_eval.makespan, 1.623833, 1e-5);
  EXPECT_NEAR(r.seed_eval.stall_share, 0.797348, 1e-5);

  // Acceptance: no slower, and >= 20% relative stall-share cut.
  EXPECT_LE(r.winner_eval.makespan, r.seed_eval.makespan);
  EXPECT_LE(r.winner_eval.stall_share, 0.80 * r.seed_eval.stall_share);
}

}  // namespace
}  // namespace parfw
