// ServeManifest — the read-side view of a published checkpoint-v2 run.
//
// A completed solve publishes one checkpoint-v2 blob per rank (its packed
// block-cyclic local matrix, plus the optional pred payload) and a commit
// record with k0 == nb, i.e. "every pivot iteration done" (driver.hpp's
// publish step, or serve::publish_result for in-memory results). Opening
// a manifest reads ONLY the commit record and each rank blob's 80-byte
// header — never a payload — and derives:
//
//   * the geometry (n, b, grid shape, element widths), cross-validated
//     across ranks;
//   * the owner map: global block (I, J) -> world rank, reconstructed
//     from the coordinates each blob states for itself, so any placement
//     (row-major or tiled) that the producing GridSpec used round-trips
//     without the manifest knowing placement existed;
//   * the byte ranges inside a rank blob where tile (I, J)'s rows live,
//     which PathService hands to CheckpointStore::get_ranges.
//
// A store holding only mid-run cuts (k0 < nb — the normal state after a
// crash-resume run that never published) is rejected with a hard error:
// serving half-closed distances would be silently wrong.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "serve/tile_cache.hpp"

namespace parfw::serve {

/// Per-rank blob facts needed to address tiles inside it.
struct RankBlob {
  std::string key;  ///< store key of this rank's published blob
  std::int32_t coord_row = 0, coord_col = 0;
  std::uint64_t local_block_rows = 0, local_block_cols = 0;
  std::uint64_t payload_offset = 0;  ///< first byte of the value payload
};

class ServeManifest {
 public:
  /// Open + validate the published manifest in `store`. Throws check_error
  /// on: no commit record, a mid-run (k0 < nb) commit, missing rank blobs,
  /// or cross-rank geometry disagreement.
  static ServeManifest open(const CheckpointStore& store);

  std::uint64_t n() const { return n_; }
  std::uint64_t block_size() const { return block_size_; }
  std::uint64_t num_blocks() const { return nb_; }  ///< per dimension
  std::uint32_t grid_rows() const { return grid_rows_; }
  std::uint32_t grid_cols() const { return grid_cols_; }
  std::uint32_t world_size() const { return world_size_; }
  std::uint32_t elem_size() const { return elem_size_; }
  std::uint32_t pred_elem_size() const { return pred_elem_size_; }
  std::uint32_t variant() const { return variant_; }
  bool has_pred() const { return pred_elem_size_ != 0; }

  /// World rank owning global block (I, J) under the block-cyclic map.
  int owner_of(std::uint64_t block_row, std::uint64_t block_col) const;
  const RankBlob& rank(int world_rank) const;

  std::uint64_t tile_bytes(TileKind kind) const;

  /// The b byte ranges (one per tile row) of tile (I, J) inside its
  /// owner's blob, appended to `out` (cleared first).
  void tile_ranges(std::uint64_t block_row, std::uint64_t block_col,
                   TileKind kind, std::vector<ByteRange>& out) const;

 private:
  std::uint64_t n_ = 0, block_size_ = 0, nb_ = 0;
  std::uint32_t grid_rows_ = 0, grid_cols_ = 0, world_size_ = 0;
  std::uint32_t elem_size_ = 0, pred_elem_size_ = 0, variant_ = 0;
  std::vector<RankBlob> ranks_;       ///< indexed by world rank
  std::vector<int> rank_of_coord_;    ///< grid_rows x grid_cols, row-major
};

}  // namespace parfw::serve
