// Figure 5 — ooGSrGemm performance vs block size.
//
// Paper: single GPU, buffer sizes m_x in {512, 1k, 2k, 4k}, block size b
// swept over {128, 256, 512, 768, 1024, 2048}; GFLOP/s against the
// 7800 GF/s no-FMA peak. Finding: for b > 768 the offload kernel runs
// close to the in-core rate for every m_x; the Eq. (5) estimate of the
// minimum block size (~624 with their accounting) matches.
//
// Reproduction in two parts:
//  (1) the Summit-model rates via the §4.5 cost model (the paper-scale
//      numbers), and
//  (2) a REAL measurement of our offload engine on the simulated device
//      with throttled transfers, showing the same transfer-bound ->
//      compute-bound transition on this host.
#include <cstdio>

#include "devsim/device.hpp"
#include "fig_common.hpp"
#include "graph/graph.hpp"
#include "offload/oog_srgemm.hpp"
#include "srgemm/srgemm.hpp"
#include "util/timer.hpp"

using namespace parfw;
using namespace parfw::perf;

namespace {

/// Measured GFLOP/s of the real offload engine for one (k, mx) point.
double measured_oog_rate(std::size_t k, std::size_t mx, double link_bw,
                         sched::TraceSink* trace = nullptr) {
  const std::size_t n = 4 * mx;  // 4x4 chunk grid
  DenseEntryGen<float> gen(99, 1.0, 1.0f, 50.0f);
  Matrix<float> A(n, k), B(k, n), C(n, n, value_traits<float>::infinity());
  gen.fill_block(0, 0, A.view());
  gen.fill_block(0, 0, B.view());

  dev::DeviceConfig dc;
  dc.memory_bytes = (n * k * 2 + 3 * mx * mx) * sizeof(float) + (1 << 20);
  dc.d2h.bytes_per_sec = link_bw;
  dc.h2d.bytes_per_sec = link_bw;
  dev::Device device(dc);

  offload::OogConfig cfg;
  cfg.mx = cfg.nx = mx;
  cfg.num_streams = 3;
  cfg.trace = trace;
  Timer t;
  offload::oog_srgemm<MinPlus<float>>(device, A.view(), B.view(), C.view(),
                                      cfg);
  device.synchronize();
  return srgemm::flops(n, n, k) / t.seconds() / 1e9;
}

}  // namespace

int main() {
  bench::header(
      "Figure 5: out-of-GPU SRGEMM performance vs block size",
      "paper: single V100; for block size > 768 the offload pipeline runs\n"
      "near the 6.8 TF/s in-core SRGEMM rate for every buffer size m_x;\n"
      "small blocks are transfer-bound. Eq. (5) predicts the threshold.");

  const MachineConfig m = MachineConfig::summit();

  std::printf("[a] Summit model (§4.5), GFLOP/s; peak = %.0f, in-core = %.0f\n\n",
              m.srgemm_peak_flops / 1e9, m.srgemm_flops / 1e9);
  Table model({"block", "mx=512", "mx=1k", "mx=2k", "mx=4k", "frac of in-core"});
  for (double blk : {128.0, 256.0, 512.0, 768.0, 1024.0, 2048.0}) {
    std::vector<std::string> row{Table::num(blk, 0)};
    double frac = 0;
    for (double mx : {512.0, 1024.0, 2048.0, 4096.0}) {
      const double rate = model_oog_rate(m, 8 * mx, mx, blk, 3);
      frac = rate / m.srgemm_flops;
      row.push_back(Table::num(rate / 1e9, 0));
    }
    row.push_back(Table::num(frac, 2));
    model.add_row(row);
  }
  std::printf("%s", model.str().c_str());
  std::printf("\nEq.(5) minimum block size on this model: %.0f "
              "(paper's estimate with its accounting: 624)\n\n",
              min_offload_block(m));

  // Real measurement: throttle the device link so the compute/transfer
  // balance point (Eq. 5: k* = rate·word/(2·link)) falls at k* = 256,
  // inside the sweep — the same experiment at this host's scale.
  const double host_rate =
      measured_oog_rate(256, 256, /*link_bw=*/0.0) * 1e9;  // flops/s, untimed
  const double link_bw = host_rate * m.word_bytes / (2.0 * 256.0);
  std::printf("[b] measured on the CPU substrate (in-core rate %.1f GF/s,\n"
              "    device link throttled to %.3f GB/s => balance at k*~256)\n\n",
              host_rate / 1e9, link_bw / 1e9);
  bench::FigTrace trace;  // PARFW_TRACE=<file> records the first real run
  Table meas({"block", "mx=128 GF/s", "mx=256 GF/s", "mx256 / in-core"});
  for (std::size_t blk : {64u, 128u, 256u, 512u, 1024u}) {
    const double r128 = measured_oog_rate(blk, 128, link_bw, trace.sink());
    const double r256 = measured_oog_rate(blk, 256, link_bw);
    meas.add_row({std::to_string(blk), Table::num(r128, 1),
                  Table::num(r256, 1),
                  Table::num(r256 * 1e9 / host_rate, 2)});
  }
  std::printf("%s", meas.str().c_str());

  bench::footer(
      "expect: [a] rates rise with block size and plateau near the in-core\n"
      "rate from b ~= 768 for all m_x (paper Figure 5); [b] the measured\n"
      "engine shows the same transfer-bound -> compute-bound transition.");
  return 0;
}
