file(REMOVE_RECURSE
  "CMakeFiles/parfw_dist.dir/grid.cpp.o"
  "CMakeFiles/parfw_dist.dir/grid.cpp.o.d"
  "libparfw_dist.a"
  "libparfw_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
