// Figure 7 — end-to-end ParallelFw performance on 64 nodes.
//
// Paper: vertices 16,384 .. 1,664,511 on 64 nodes; log2 PFLOP/s for
// Baseline / Pipelined / Async / Offload against the 3 PF/s theoretical
// peak. Findings: below ~208k the run is bandwidth-bound and the
// communication-optimised variants win big; at large n all in-GPU
// variants converge near peak; only Offload continues past the
// 524k-vertex GPU-memory wall, reaching 1.66M vertices at ~50% of peak
// — "2.5x larger graphs with a ~20% increase in overall running time".
#include <cstdio>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  bench::header(
      "Figure 7: ParallelFw performance on 64 nodes vs problem size",
      "paper: peak 3 PF/s; in-GPU variants stop at 524,288 vertices\n"
      "(aggregate GPU memory); offload extends to 1,664,511 at ~50% of\n"
      "peak; comm-optimised variants dominate below ~208k vertices.");

  const MachineConfig m = MachineConfig::summit();
  const int nodes = 64;
  const double b = 768;
  const auto legends = paper_legends();
  bench::FigTrace trace;  // PARFW_TRACE=<file> records the first run
  bench::BenchJson bj;    // PARFW_BENCH_JSON=<file> emits the datapoints
  const double gpu_wall = max_in_gpu_vertices(m, nodes);
  const double peak_pf =
      nodes * m.gpus_per_node * m.srgemm_peak_flops / 1e15;

  Table t({"vertices", "baseline", "pipelined", "+async", "offload",
           "note"});
  for (double n : bench::paper_vertex_sweep(16384, 1664511)) {
    std::vector<std::string> row{Table::num(n, 0)};
    const bool fits = n <= gpu_wall;
    for (const auto* name : {"baseline", "pipelined", "+async"}) {
      if (!fits) {
        row.push_back("-");
        continue;
      }
      for (const auto& l : legends)
        if (l.name == name) {
          const RunPoint p = simulate_fw(m, l, nodes, n, b, trace.sink());
          row.push_back(Table::num(p.pflops, 3));
          bj.add("Fig7/" + std::string(name) + "/" + Table::num(n, 0),
                 p.seconds, "PFLOP/s", p.pflops);
        }
    }
    const RunPoint off = simulate_fw(m, legends[4], nodes, n, b);
    row.push_back(Table::num(off.pflops, 3));
    bj.add("Fig7/offload/" + Table::num(n, 0), off.seconds, "PFLOP/s",
           off.pflops);
    row.push_back(fits ? "" : "beyond GPU memory");
    t.add_row(row);
  }
  std::printf("%s", t.str().c_str());
  std::printf("\ntheoretical peak: %.2f PF/s; GPU-memory wall: n = %.0f "
              "(paper: 524,288)\n",
              peak_pf, gpu_wall);

  // Headline ratios.
  const RunPoint async_524k = simulate_fw(m, legends[3], nodes, 524288, b);
  const RunPoint off_166m = simulate_fw(m, legends[4], nodes, 1664511, b);
  std::printf("+async @524k: %.2f PF/s (%.0f%% of peak); offload @1.66M: "
              "%.2f PF/s (%.0f%% of peak; paper: ~50%%)\n",
              async_524k.pflops, 100 * async_524k.frac_peak, off_166m.pflops,
              100 * off_166m.frac_peak);

  bench::footer(
      "expect: +async >> baseline at small n, convergence near peak at\n"
      "large n, and a nonempty offload column past the GPU-memory wall\n"
      "running at roughly half of peak — the paper's Figure 7 shape.");
  return 0;
}
