# Empty dependencies file for parfw_util.
# This may be replaced when dependencies are built.
