// §3.3 ablation — straggler / network-noise tolerance of the schedules.
//
// Paper: bulk-synchronous broadcasts mean "in the cases where some
// network links are slower due to network contention or if there are
// straggler processes then its impact propagates to all the processes";
// the pipelined/asynchronous schedules decouple ranks.
//
// Two noise sources, injected deterministically into the DES:
//   [a] COMPUTE jitter (straggler ranks) — absorbed by the slack the
//       look-ahead schedule creates; the bulk-synchronous baseline pays
//       the per-iteration maximum of the noise.
//   [b] NETWORK jitter (contended / slow links) — the paper's headline
//       scenario for the ring: panel transfers ride background NIC-agent
//       relays that overlap the bulk compute, so inflated transfers hide
//       under OuterUpdate instead of extending a synchronous broadcast.
#include <cstdio>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

namespace {

double run_one(const MachineConfig& m, const Legend& legend, double n,
               double b, int nodes, double comp_jitter, double net_jitter) {
  MachineConfig noisy = m;
  noisy.net_jitter = net_jitter;
  const GridSetup setup = make_grid(m, nodes, legend.reordered);
  FwProblem prob;
  prob.variant = legend.variant;
  prob.b = b;
  prob.n = std::ceil(n / b) * b;
  prob.comp_jitter = comp_jitter;
  const BuiltProgram built =
      build_fw_program(noisy, prob, setup.grid, setup.node_of);
  return simulate(built.programs, built.node_of, noisy).makespan;
}

}  // namespace

int main() {
  bench::header(
      "Straggler / network-noise tolerance (paper §3.3 claim)",
      "64 nodes, n = 196,608; seconds ADDED to each variant's makespan\n"
      "under injected noise, relative to its own noise-free run.");

  const MachineConfig m = MachineConfig::summit();
  const double n = 196608, b = 768;
  const int nodes = 64;
  const auto legends = paper_legends();
  const std::size_t pick[3] = {0, 1, 3};  // baseline, pipelined, +async

  double clean[3];
  for (int i = 0; i < 3; ++i)
    clean[i] = run_one(m, legends[pick[i]], n, b, nodes, 0.0, 0.0);
  std::printf("noise-free makespans: baseline %.2fs, pipelined %.2fs, "
              "+async %.2fs\n",
              clean[0], clean[1], clean[2]);

  std::printf("\n[a] compute jitter (straggler ranks)\n\n");
  Table ta({"jitter", "baseline +s", "pipelined +s", "+async +s",
            "pipelined absorbs"});
  for (double j : {0.1, 0.3, 0.6, 1.0}) {
    double added[3];
    for (int i = 0; i < 3; ++i)
      added[i] = run_one(m, legends[pick[i]], n, b, nodes, j, 0.0) - clean[i];
    ta.add_row({Table::num(j, 1), Table::num(added[0], 2),
                Table::num(added[1], 2), Table::num(added[2], 2),
                Table::num(added[0] / std::max(added[1], 1e-9), 2)});
  }
  std::printf("%s", ta.str().c_str());

  std::printf("\n[b] network jitter (contended links — the ring's case)\n\n");
  Table tb({"jitter", "baseline +s", "pipelined +s", "+async +s",
            "async absorbs"});
  for (double j : {0.25, 0.5, 1.0, 2.0}) {
    double added[3];
    for (int i = 0; i < 3; ++i)
      added[i] = run_one(m, legends[pick[i]], n, b, nodes, 0.0, j) - clean[i];
    tb.add_row({Table::num(j, 2), Table::num(added[0], 2),
                Table::num(added[1], 2), Table::num(added[2], 2),
                Table::num(added[0] / std::max(added[2], 1e-9), 2)});
  }
  std::printf("%s", tb.str().c_str());

  bench::footer(
      "expect: [a] pipelined adds the fewest seconds (overlap slack absorbs\n"
      "compute noise the synchronous baseline propagates); [b] +async adds\n"
      "the fewest seconds under link noise (background ring relays hide\n"
      "slow transfers under compute) — the paper's §3.3 asynchrony claim.");
  return 0;
}
