// DiagUpdate strategies (paper §2.4 step 1 and §4.2).
//
// The diagonal block A(k,k) must be *closed* (all-pairs within the block)
// before it can be applied to the panels. Two strategies:
//
//  * Classic: run sequential FW on the block — O(b³) flops, scalar code.
//  * LogSquaring (Eq. 4): A* = ⊕_i A^i computed by ⌈log₂(b-1)⌉ repeated
//    min-plus squarings. Costs O(b³ log b) flops but every flop is an
//    SRGEMM flop, so on a device whose SRGEMM rate far exceeds its scalar
//    rate it wins — the paper's argument for doing DiagUpdate on the GPU.
#pragma once

#include <cstddef>

#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "core/floyd_warshall.hpp"
#include "util/matrix.hpp"

namespace parfw {

enum class DiagStrategy {
  kClassic,      ///< sequential FW on the block
  kLogSquaring,  ///< repeated SRGEMM squaring (Eq. 4)
};

/// Number of squarings needed to close a b x b block: paths inside the
/// block have at most b-1 hops, and t squarings cover 2^t hops.
inline std::size_t log_squaring_steps(std::size_t b) {
  if (b <= 2) return b >= 2 ? 1 : 0;
  std::size_t steps = 0, reach = 1;
  while (reach < b - 1) {
    reach *= 2;
    ++steps;
  }
  return steps;
}

/// Close a diagonal block in place with the chosen strategy.
/// `scratch` must be at least b*b elements when using kLogSquaring
/// (pass {} to allocate internally).
template <typename S>
void diag_update(MatrixView<typename S::value_type> block,
                 DiagStrategy strategy = DiagStrategy::kClassic,
                 MatrixView<typename S::value_type> scratch = {},
                 const srgemm::Config& cfg = {}) {
  static_assert(is_idempotent<S>(), "DiagUpdate requires idempotent semiring");
  using T = typename S::value_type;
  PARFW_CHECK(block.rows() == block.cols());
  const std::size_t b = block.rows();
  if (b == 0) return;

  if (strategy == DiagStrategy::kClassic) {
    floyd_warshall<S>(block);
    return;
  }

  // Log-squaring: ensure the diagonal carries the ⊗-identity so that
  // A ⊗ A ⊇ A (the Neumann-series inclusion), then square repeatedly.
  for (std::size_t v = 0; v < b; ++v)
    block(v, v) = S::add(block(v, v), S::one());

  Matrix<T> owned;
  MatrixView<T> tmp = scratch;
  if (tmp.rows() < b || tmp.cols() < b) {
    owned = Matrix<T>(b, b);
    tmp = owned.view();
  } else {
    tmp = tmp.sub(0, 0, b, b);
  }

  const std::size_t steps = log_squaring_steps(b);
  for (std::size_t s = 0; s < steps; ++s) {
    tmp.copy_from(block);
    // block ← block ⊕ tmp ⊗ tmp ( = A ⊕ A² ; with unit diagonal A² ⊇ A )
    srgemm::multiply<S>(tmp, tmp, block, cfg);
  }
}

/// Flop count of each strategy, used by the performance model and the
/// bench_diag_update ablation.
inline double diag_update_flops(std::size_t b, DiagStrategy strategy) {
  const double bd = static_cast<double>(b);
  if (strategy == DiagStrategy::kClassic) return 2.0 * bd * bd * bd;
  return 2.0 * bd * bd * bd * static_cast<double>(log_squaring_steps(b));
}

}  // namespace parfw
