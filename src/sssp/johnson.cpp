#include <vector>

#include "sssp/sssp.hpp"
#include "util/check.hpp"

namespace parfw::sssp {

Matrix<double> johnson_apsp(const Graph& g) {
  const vertex_t n = g.num_vertices();
  const std::size_t ns = static_cast<std::size_t>(n);

  // Augment with a virtual source q connected to every vertex at weight 0,
  // run Bellman-Ford from q to get the potential h(v).
  Graph aug(n + 1);
  for (const Edge& e : g.edges()) aug.add_edge(e.src, e.dst, e.weight);
  for (vertex_t v = 0; v < n; ++v) aug.add_edge(n, v, 0.0);

  bool neg_cycle = false;
  const SsspResult h = bellman_ford(aug, n, &neg_cycle);
  PARFW_CHECK_MSG(!neg_cycle, "Johnson: graph has a negative cycle");

  // Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0 by the potential property.
  Graph rw(n);
  for (const Edge& e : g.edges()) {
    const double w2 = e.weight + h.dist[static_cast<std::size_t>(e.src)] -
                      h.dist[static_cast<std::size_t>(e.dst)];
    rw.add_edge(e.src, e.dst, w2 < 0.0 && w2 > -1e-9 ? 0.0 : w2);
  }

  Matrix<double> out(ns, ns);
  for (vertex_t s = 0; s < n; ++s) {
    const SsspResult r = dijkstra(rw, s);
    for (vertex_t v = 0; v < n; ++v) {
      const double d = r.dist[static_cast<std::size_t>(v)];
      // Undo the reweighting: d(s,v) = d'(s,v) - h(s) + h(v).
      out(s, v) = d == kInf ? kInf
                            : d - h.dist[static_cast<std::size_t>(s)] +
                                  h.dist[static_cast<std::size_t>(v)];
    }
  }
  return out;
}

}  // namespace parfw::sssp
