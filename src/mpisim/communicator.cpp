#include "mpisim/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace parfw::mpi {

Comm::Comm(World* world, rank_t my_global_rank)
    : world_(world), context_(0), my_rank_(my_global_rank) {
  group_.resize(static_cast<std::size_t>(world->size()));
  std::iota(group_.begin(), group_.end(), 0);
}

Comm::Comm(World* world, std::uint64_t context, std::vector<rank_t> group,
           rank_t my_rank)
    : world_(world), context_(context), group_(std::move(group)),
      my_rank_(my_rank) {}

void Comm::send_bytes(std::span<const std::uint8_t> data, rank_t dst,
                      tag_t tag) {
  PARFW_CHECK_MSG(dst >= 0 && dst < size(), "send to invalid rank " << dst);
  Message msg;
  msg.payload.assign(data.begin(), data.end());
  world_->deliver(key_for(global_rank(my_rank_), tag), global_rank(dst),
                  std::move(msg));
}

void Comm::recv_bytes(std::span<std::uint8_t> data, rank_t src, tag_t tag) {
  PARFW_CHECK_MSG(src >= 0 && src < size(), "recv from invalid rank " << src);
  const Message msg =
      world_->await(key_for(global_rank(src), tag), global_rank(my_rank_));
  PARFW_CHECK_MSG(msg.payload.size() == data.size(),
                  "recv size mismatch: got " << msg.payload.size()
                                             << " B, expected " << data.size()
                                             << " B (src=" << src
                                             << ", tag=" << tag << ")");
  std::memcpy(data.data(), msg.payload.data(), msg.payload.size());
}

Request Comm::isend_bytes(std::span<const std::uint8_t> data, rank_t dst,
                          tag_t tag) {
  send_bytes(data, dst, tag);  // eager: copied, complete immediately
  return Request{};
}

Request Comm::irecv_bytes(std::span<std::uint8_t> data, rank_t src,
                          tag_t tag) {
  PARFW_CHECK_MSG(src >= 0 && src < size(), "irecv from invalid rank " << src);
  // Progress happens at wait(): legal under the MPI progress model and
  // sufficient for the overlap patterns the FW pipeline uses (the matching
  // send is eager, so the payload is already buffered at the receiver).
  World* world = world_;
  const MatchKey key = key_for(global_rank(src), tag);
  const rank_t me = global_rank(my_rank_);
  return Request([world, key, me, data] {
    const Message msg = world->await(key, me);
    PARFW_CHECK_MSG(msg.payload.size() == data.size(),
                    "irecv size mismatch: got " << msg.payload.size()
                                                << " B, expected "
                                                << data.size() << " B");
    std::memcpy(data.data(), msg.payload.data(), msg.payload.size());
  });
}

void Comm::barrier() { world_->group_barrier(context_, size()); }

Comm Comm::split(int color, int key) {
  struct Entry {
    int color, key;
    rank_t old_local;
  };
  const tag_t kSplitTag = -6;
  const Entry mine{color, key, my_rank_};

  if (my_rank_ == 0) {
    std::vector<Entry> all(static_cast<std::size_t>(size()));
    all[0] = mine;
    for (int r = 1; r < size(); ++r) {
      all[static_cast<std::size_t>(r)] = recv_value<Entry>(r, kSplitTag);
    }
    // Group by color, order by (key, old rank); allocate one fresh
    // context per color in ascending color order (deterministic).
    std::vector<int> colors;
    for (const Entry& e : all)
      if (std::find(colors.begin(), colors.end(), e.color) == colors.end())
        colors.push_back(e.color);
    std::sort(colors.begin(), colors.end());

    struct Assignment {
      std::uint64_t context;
      std::vector<rank_t> group;  // global ranks
      std::vector<rank_t> old_local;
    };
    std::vector<Assignment> assignments;
    for (int c : colors) {
      Assignment a;
      a.context = world_->next_context();
      std::vector<Entry> members;
      for (const Entry& e : all)
        if (e.color == c) members.push_back(e);
      std::sort(members.begin(), members.end(), [](const Entry& x, const Entry& y) {
        return x.key != y.key ? x.key < y.key : x.old_local < y.old_local;
      });
      for (const Entry& e : members) {
        a.group.push_back(global_rank(e.old_local));
        a.old_local.push_back(e.old_local);
      }
      assignments.push_back(std::move(a));
    }

    // Distribute each member's (context, new local rank, group).
    std::uint64_t my_context = 0;
    std::vector<rank_t> my_group;
    rank_t my_new_rank = 0;
    for (const Assignment& a : assignments) {
      for (std::size_t idx = 0; idx < a.group.size(); ++idx) {
        const rank_t target = a.old_local[idx];
        if (target == 0) {
          my_context = a.context;
          my_group = a.group;
          my_new_rank = static_cast<rank_t>(idx);
          continue;
        }
        const std::uint64_t header[3] = {a.context, a.group.size(), idx};
        send(std::span<const std::uint64_t>(header, 3), target, kSplitTag);
        send(std::span<const rank_t>(a.group.data(), a.group.size()),
             target, kSplitTag);
      }
    }
    return Comm(world_, my_context, std::move(my_group), my_new_rank);
  }

  send_value(mine, 0, kSplitTag);
  std::uint64_t header[3];
  recv(std::span<std::uint64_t>(header, 3), 0, kSplitTag);
  std::vector<rank_t> group(static_cast<std::size_t>(header[1]));
  recv(std::span<rank_t>(group.data(), group.size()), 0, kSplitTag);
  return Comm(world_, header[0], std::move(group),
              static_cast<rank_t>(header[2]));
}

}  // namespace parfw::mpi
