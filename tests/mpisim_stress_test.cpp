// Stress/property tests for the in-process message-passing runtime:
// randomised traffic patterns, nested communicator splits, concurrent
// collectives on disjoint communicators, and ordering guarantees under
// contention.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/floyd_warshall.hpp"
#include "dist/driver.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/runtime.hpp"
#include "util/rng.hpp"

namespace parfw::mpi {
namespace {

TEST(Stress, RandomisedP2pTrafficKeepsPerPairFifo) {
  // Every rank sends a deterministic pseudo-random sequence to every
  // other rank; receivers verify per-(src,tag) FIFO and payload content.
  const int p = 6;
  const int msgs_per_pair = 40;
  Runtime::run(p, [&](Comm& c) {
    // Send phase: interleave destinations pseudo-randomly.
    Rng order(static_cast<std::uint64_t>(c.rank()) + 1);
    std::vector<int> seq(static_cast<std::size_t>(p), 0);
    for (int total = 0; total < msgs_per_pair * (p - 1);) {
      const int dst = static_cast<int>(order.next_below(static_cast<std::uint64_t>(p)));
      if (dst == c.rank() || seq[static_cast<std::size_t>(dst)] >= msgs_per_pair)
        continue;
      const int s = seq[static_cast<std::size_t>(dst)]++;
      const std::uint64_t payload =
          static_cast<std::uint64_t>(c.rank()) * 1000000 +
          static_cast<std::uint64_t>(dst) * 1000 + static_cast<std::uint64_t>(s);
      c.send_value(payload, dst, /*tag=*/50);
      ++total;
    }
    // Receive phase: drain each source, expecting its sequence in order.
    for (int src = 0; src < p; ++src) {
      if (src == c.rank()) continue;
      for (int s = 0; s < msgs_per_pair; ++s) {
        const auto got = c.recv_value<std::uint64_t>(src, 50);
        EXPECT_EQ(got, static_cast<std::uint64_t>(src) * 1000000 +
                           static_cast<std::uint64_t>(c.rank()) * 1000 +
                           static_cast<std::uint64_t>(s));
      }
    }
  });
}

TEST(Stress, NestedSplits) {
  // world(12) -> thirds(4) -> pairs(2); collectives at every level.
  Runtime::run(12, [](Comm& world) {
    Comm third = world.split(world.rank() / 4, world.rank());
    ASSERT_EQ(third.size(), 4);
    Comm pair = third.split(third.rank() / 2, third.rank());
    ASSERT_EQ(pair.size(), 2);

    int v = world.rank();
    pair.allreduce(std::span<int>(&v, 1), [](int a, int b) { return a + b; });
    // Partner is the adjacent world rank within the pair.
    const int base = (world.rank() / 2) * 2;
    EXPECT_EQ(v, base + (base + 1));

    int w = third.rank() == 0 ? world.rank() : -1;
    third.bcast(std::span<int>(&w, 1), 0);
    EXPECT_EQ(w, (world.rank() / 4) * 4);

    world.barrier();
  });
}

TEST(Stress, ConcurrentCollectivesOnDisjointComms) {
  // Row and column communicators of a 4x4 grid run broadcasts with the
  // SAME tag concurrently; context isolation must keep them apart.
  Runtime::run(16, [](Comm& world) {
    const int row = world.rank() / 4, col = world.rank() % 4;
    Comm row_comm = world.split(row, col);
    Comm col_comm = world.split(100 + col, row);
    for (int iter = 0; iter < 10; ++iter) {
      std::uint64_t rv = row_comm.rank() == iter % 4
                             ? static_cast<std::uint64_t>(1000 + row)
                             : 0;
      std::uint64_t cv = col_comm.rank() == iter % 4
                             ? static_cast<std::uint64_t>(2000 + col)
                             : 0;
      row_comm.bcast(std::span<std::uint64_t>(&rv, 1), iter % 4);
      col_comm.ring_bcast(std::span<std::uint64_t>(&cv, 1), iter % 4);
      ASSERT_EQ(rv, static_cast<std::uint64_t>(1000 + row));
      ASSERT_EQ(cv, static_cast<std::uint64_t>(2000 + col));
    }
  });
}

TEST(Stress, ManyRanksBarrierStorm) {
  const int p = 32;
  Runtime::run(p, [](Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
  SUCCEED();
}

TEST(Stress, LargePayloadsThroughBothBroadcasts) {
  const std::size_t mb = 4u << 20;
  Runtime::run(5, [&](Comm& c) {
    std::vector<std::uint8_t> buf(mb);
    if (c.rank() == 2)
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
    c.bcast_bytes(buf, 2, 7);
    for (std::size_t i = 0; i < buf.size(); i += 4097)
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 2654435761u >> 24));
    std::vector<std::uint8_t> buf2(mb);
    if (c.rank() == 4)
      for (std::size_t i = 0; i < buf2.size(); ++i)
        buf2[i] = static_cast<std::uint8_t>(i * 40503u >> 16);
    c.ring_bcast_bytes(buf2, 4, 8);
    for (std::size_t i = 0; i < buf2.size(); i += 4097)
      ASSERT_EQ(buf2[i], static_cast<std::uint8_t>(i * 40503u >> 16));
  });
}

TEST(Stress, TrafficTotalsAreDeterministic) {
  auto run_once = [] {
    RuntimeOptions opt;
    opt.node_model = NodeModel::contiguous(8, 2);
    return Runtime::run(8, [](Comm& c) {
      std::vector<std::uint8_t> buf(10000, 3);
      for (int root = 0; root < 3; ++root)
        c.ring_bcast_bytes(buf, root, 11 + root);
      c.barrier();
      if (c.rank() > 0) c.send_bytes(buf, 0, 12);
      if (c.rank() == 0) {
        std::vector<std::uint8_t> sink(10000);
        for (int r = 1; r < 8; ++r) c.recv_bytes(sink, r, 12);
      }
    }, opt);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.bytes_internode, b.bytes_internode);
  EXPECT_EQ(a.messages, b.messages);
}

// --- seeded fault-matrix sweep (DESIGN.md "Resilience") ------------------------

using S = MinPlus<float>;

Matrix<float> fault_oracle(std::size_t n, const DenseEntryGen<float>& gen) {
  auto m = gen.full(static_cast<vertex_t>(n));
  floyd_warshall<S>(m.view());
  return m;
}

struct FaultKind {
  const char* name;
  double drop, dup, delay;
};

constexpr FaultKind kFaultKinds[] = {
    {"drop", 0.05, 0.0, 0.0},
    {"dup", 0.0, 0.08, 0.0},
    {"delay", 0.0, 0.0, 0.15},
};

constexpr dist::Variant kVariants[] = {
    dist::Variant::kBaseline, dist::Variant::kPipelined,
    dist::Variant::kAsync, dist::Variant::kOffload};

TEST(FaultMatrix, EveryKindVariantAndPlacementCompletesExactly) {
  // drop / delay / dup x all 4 variants x both placements: the run must
  // complete within the retry budget, match the sequential oracle
  // bit-for-bit, and keep the LOGICAL byte accounting identical to the
  // fault-free run — that identity is what keeps the DES-vs-real wire
  // cross-validation (sched_test DesVsReal) exact under faults.
  const std::size_t n = 48, b = 8;
  DenseEntryGen<float> gen(606, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const auto expected = fault_oracle(n, gen);

  for (const bool tiled : {false, true}) {
    const auto grid = tiled ? dist::GridSpec::tiled(2, 1, 1, 2)
                            : dist::GridSpec::row_major(2, 2);
    for (const auto variant : kVariants) {
      dist::DistFwOptions opt;
      opt.variant = variant;
      opt.block_size = b;
      if (variant == dist::Variant::kOffload) {
        opt.oog.mx = opt.oog.nx = 2 * b;
        opt.oog.num_streams = 2;
      }
      const auto clean = dist::run_parallel_fw<S>(n, gen, grid, 2, opt);

      for (const FaultKind& kind : kFaultKinds) {
        dist::DistFwOptions fopt = opt;
        fopt.faults.seed = 321;
        fopt.faults.drop_prob = kind.drop;
        fopt.faults.dup_prob = kind.dup;
        fopt.faults.delay_prob = kind.delay;
        fopt.faults.delay_seconds = 0.0005;
        fopt.resilience.send_timeout = 0.002;
        const auto faulty = dist::run_parallel_fw<S>(n, gen, grid, 2, fopt);

        const std::string where = std::string(kind.name) + " x " +
                                  dist::variant_name(variant) +
                                  (tiled ? " x tiled" : " x row_major");
        EXPECT_EQ(max_abs_diff<float>(expected.view(), faulty.dist.view()),
                  0.0)
            << where;
        EXPECT_EQ(faulty.traffic.messages, clean.traffic.messages) << where;
        EXPECT_EQ(faulty.traffic.bytes_total, clean.traffic.bytes_total)
            << where;
        EXPECT_EQ(faulty.traffic.bytes_internode,
                  clean.traffic.bytes_internode)
            << where;
        EXPECT_EQ(faulty.restarts, 0) << where;
        const auto injected = faulty.traffic.drops_injected +
                              faulty.traffic.dups_injected +
                              faulty.traffic.delays_injected;
        EXPECT_GT(injected, 0u) << where;
        if (kind.drop > 0) {
          EXPECT_GT(faulty.traffic.retries, 0u) << where;
          EXPECT_GT(faulty.traffic.retry_bytes, 0u) << where;
        }
        if (kind.dup > 0)
          EXPECT_GT(faulty.traffic.dup_discarded, 0u) << where;
      }
    }
  }
}

TEST(FaultMatrix, CountersAreDeterministicAcrossReplays) {
  // fault_roll is a pure function of (seed, flow, seq, attempt), so two
  // identical runs must inject the identical fault set regardless of
  // thread interleaving.
  const std::size_t n = 48, b = 8;
  DenseEntryGen<float> gen(607, 0.9, 1.0f, 80.0f, /*integral=*/true);
  auto run_once = [&] {
    dist::DistFwOptions opt;
    opt.variant = dist::Variant::kAsync;
    opt.block_size = b;
    opt.faults.seed = 98765;
    opt.faults.drop_prob = 0.04;
    opt.faults.dup_prob = 0.04;
    opt.faults.delay_prob = 0.1;
    opt.faults.delay_seconds = 0.0005;
    opt.resilience.send_timeout = 0.002;
    return dist::run_parallel_fw<S>(n, gen,
                                    dist::GridSpec::row_major(2, 2), 2, opt);
  };
  const auto a = run_once();
  const auto b2 = run_once();
  EXPECT_EQ(a.traffic.drops_injected, b2.traffic.drops_injected);
  EXPECT_EQ(a.traffic.dups_injected, b2.traffic.dups_injected);
  EXPECT_EQ(a.traffic.delays_injected, b2.traffic.delays_injected);
  EXPECT_EQ(a.traffic.dup_discarded, b2.traffic.dup_discarded);
  EXPECT_EQ(max_abs_diff<float>(a.dist.view(), b2.dist.view()), 0.0);
}

TEST(FaultMatrix, P2pFifoAndContentSurviveEveryFaultKind) {
  // The reliability envelope must hand application code the exact
  // fault-free stream: per-(src,tag) FIFO order and payload content,
  // whichever fault kind is active underneath.
  const int p = 4;
  const int msgs_per_pair = 30;
  for (const FaultKind& kind : kFaultKinds) {
    RuntimeOptions opt;
    opt.node_model = NodeModel::contiguous(p, 2);
    opt.faults.seed = 11 + static_cast<std::uint64_t>(kind.drop * 100);
    opt.faults.drop_prob = kind.drop;
    opt.faults.dup_prob = kind.dup;
    opt.faults.delay_prob = kind.delay;
    opt.faults.delay_seconds = 0.0005;
    opt.send_timeout = 0.002;
    Runtime::run(
        p,
        [&](Comm& c) {
          for (int dst = 0; dst < p; ++dst) {
            if (dst == c.rank()) continue;
            for (int s = 0; s < msgs_per_pair; ++s) {
              const std::uint64_t payload =
                  static_cast<std::uint64_t>(c.rank()) * 1000000 +
                  static_cast<std::uint64_t>(dst) * 1000 +
                  static_cast<std::uint64_t>(s);
              c.send_value(payload, dst, /*tag=*/60);
            }
          }
          for (int src = 0; src < p; ++src) {
            if (src == c.rank()) continue;
            for (int s = 0; s < msgs_per_pair; ++s) {
              const auto got = c.recv_value<std::uint64_t>(src, 60);
              EXPECT_EQ(got, static_cast<std::uint64_t>(src) * 1000000 +
                                 static_cast<std::uint64_t>(c.rank()) * 1000 +
                                 static_cast<std::uint64_t>(s))
                  << kind.name;
            }
          }
          c.barrier();
        },
        opt);
  }
}

}  // namespace
}  // namespace parfw::mpi
