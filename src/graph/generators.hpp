// Workload generators (paper §5.1.4 plus extras for examples/tests).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace parfw::gen {

/// Erdős–Rényi G(n, p) digraph with uniform weights in [w_min, w_max).
/// `integral` floors weights to whole numbers, making path sums exact in
/// IEEE arithmetic (for bitwise cross-algorithm validation).
Graph erdos_renyi(vertex_t n, double p, std::uint64_t seed, double w_min = 1.0,
                  double w_max = 100.0, bool integral = false);

/// Fully dense uniform random digraph — the paper's test workload
/// ("dense uniform random matrix", §5.1.4).
Graph dense_uniform(vertex_t n, std::uint64_t seed, double w_min = 1.0,
                    double w_max = 100.0, bool integral = false);

/// rows x cols 4-neighbour grid with undirected edges, weights uniform in
/// [w_min, w_max) — a road-network-like workload for the routing example.
Graph grid2d(vertex_t rows, vertex_t cols, std::uint64_t seed,
             double w_min = 1.0, double w_max = 10.0);

/// Directed cycle 0→1→…→n-1→0 with unit weights; shortest distances are
/// known in closed form, which makes it a test oracle.
Graph ring(vertex_t n);

/// `parts` disjoint Erdős–Rényi components of `per_part` vertices each —
/// exercises the multiple-connected-component path (paper §2.1 note).
Graph multi_component(vertex_t parts, vertex_t per_part, double p,
                      std::uint64_t seed);

/// Scale-free-ish preferential-attachment digraph for the knowledge-graph
/// example (hubs + long tail, like entity co-occurrence graphs).
Graph preferential_attachment(vertex_t n, vertex_t out_degree,
                              std::uint64_t seed, double w_min = 1.0,
                              double w_max = 10.0);

}  // namespace parfw::gen
