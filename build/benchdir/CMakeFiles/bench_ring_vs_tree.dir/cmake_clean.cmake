file(REMOVE_RECURSE
  "../bench/bench_ring_vs_tree"
  "../bench/bench_ring_vs_tree.pdb"
  "CMakeFiles/bench_ring_vs_tree.dir/bench_ring_vs_tree.cpp.o"
  "CMakeFiles/bench_ring_vs_tree.dir/bench_ring_vs_tree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ring_vs_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
