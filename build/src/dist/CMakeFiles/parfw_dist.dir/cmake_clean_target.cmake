file(REMOVE_RECURSE
  "libparfw_dist.a"
)
