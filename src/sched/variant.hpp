// The ParallelFw schedule variants (paper §3: Algorithms 3-4, §4:
// Me-ParallelFw), split out of ir.hpp so layers that only need to NAME a
// variant (e.g. the core front-door options in core/apsp.hpp, checkpoint
// headers) can do so without pulling in the grid/IR machinery.
//
// +Reordering is not a variant: it is the same schedule generated for a
// GridSpec::tiled placement instead of row_major.
#pragma once

namespace parfw::sched {

enum class Variant {
  kBaseline,   ///< Algorithm 3: bulk-synchronous, tree broadcasts
  kPipelined,  ///< Algorithm 4: (k+1) look-ahead
  kAsync,      ///< kPipelined + ring PanelBcast (§3.3)
  kOffload,    ///< Me-ParallelFw: baseline schedule, OuterUpdate via ooGSrGemm
};

inline const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kPipelined: return "pipelined";
    case Variant::kAsync: return "async";
    case Variant::kOffload: return "offload";
  }
  return "?";
}

}  // namespace parfw::sched
