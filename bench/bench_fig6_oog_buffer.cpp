// Figure 6 — ooGSrGemm performance heatmap: operand size vs buffer size.
//
// Paper: single GPU, block size fixed at 768; GFLOP/s for vertices
// (operand size m = n) in {4k, 8k, 16k, 32k, 64k} x buffer dimension
// m_x = n_x in {1k, 2k, 4k, 8k}. Finding: performance is near peak even
// for 2k x 2k buffers if n is large; it collapses (to ~2.2 TF/s) when the
// buffer is large relative to the operand (pipeline too short to hide the
// fills) — the bottom-right corner of their heatmap.
#include <cstdio>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  bench::header(
      "Figure 6: out-of-GPU SRGEMM GFLOP/s heatmap (vertices x buffer size)",
      "paper: b=768; near-peak (~6.3 TF/s) across the top rows (large n),\n"
      "degrading toward large m_x with small n (bottom-right ~2.2 TF/s).");

  const MachineConfig m = MachineConfig::summit();
  const double b = 768;

  Table t({"vertices\\mx", "1k", "2k", "4k", "8k"});
  for (double n : {65536.0, 32768.0, 16384.0, 8192.0, 4096.0}) {
    std::vector<std::string> row{Table::num(n / 1024, 0) + "k"};
    for (double mx : {1024.0, 2048.0, 4096.0, 8192.0}) {
      double rate;
      if (mx > n) {
        rate = 0.0;  // buffer larger than the operand: not meaningful
        row.push_back("-");
        continue;
      }
      rate = model_oog_rate(m, n, mx, b, 3);
      row.push_back(Table::num(rate / 1e9, 0));
    }
    t.add_row(row);
  }
  std::printf("%s", t.str().c_str());
  std::printf("\n(in-core SRGEMM rate: %.0f GF/s)\n", m.srgemm_flops / 1e9);

  // The heatmap itself is analytic; when tracing is requested, emit the
  // DES timeline of the offload variant this figure characterises.
  bench::FigTrace trace;
  if (sched::TraceSink* sink = trace.sink())
    simulate_fw(m, paper_legends()[4], /*nodes=*/4, 65536.0, b, sink);

  bench::footer(
      "expect: values near the in-core rate in the top-left region; each\n"
      "row degrades as m_x approaches the operand size, and small-n rows\n"
      "degrade fastest — the paper's heatmap gradient (top-left high,\n"
      "bottom-right low).");
  return 0;
}
