# Empty compiler generated dependencies file for parfw_perf.
# This may be replaced when dependencies are built.
