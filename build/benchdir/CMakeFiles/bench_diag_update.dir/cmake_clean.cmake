file(REMOVE_RECURSE
  "../bench/bench_diag_update"
  "../bench/bench_diag_update.pdb"
  "CMakeFiles/bench_diag_update.dir/bench_diag_update.cpp.o"
  "CMakeFiles/bench_diag_update.dir/bench_diag_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diag_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
