// Unit tests for the semiring algebra layer: identities, annihilators,
// associativity/distributivity spot checks, saturating integer arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "semiring/semiring.hpp"
#include "util/rng.hpp"

namespace parfw {
namespace {

TEST(MinPlus, Identities) {
  using S = MinPlus<float>;
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(S::zero(), inf);
  EXPECT_EQ(S::one(), 0.0f);
  EXPECT_EQ(S::add(3.0f, 5.0f), 3.0f);
  EXPECT_EQ(S::mul(3.0f, 5.0f), 8.0f);
  // zero is the ⊕ identity and the ⊗ annihilator
  EXPECT_EQ(S::add(S::zero(), 7.0f), 7.0f);
  EXPECT_EQ(S::mul(S::zero(), 7.0f), inf);
  // one is the ⊗ identity
  EXPECT_EQ(S::mul(S::one(), 7.0f), 7.0f);
}

TEST(MinPlus, IsIdempotent) {
  EXPECT_TRUE((is_idempotent<MinPlus<float>>()));
  EXPECT_TRUE((is_idempotent<MinPlus<double>>()));
  EXPECT_TRUE((is_idempotent<MinPlus<std::int32_t>>()));
  EXPECT_TRUE((is_idempotent<MaxMin<float>>()));
  EXPECT_TRUE(is_idempotent<BoolOrAnd>());
  EXPECT_FALSE((is_idempotent<PlusTimes<double>>()));
}

TEST(MinPlus, LessAddMatchesAdd) {
  using S = MinPlus<double>;
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const double x = rng.next_double() * 100 - 50;
    const double y = rng.next_double() * 100 - 50;
    EXPECT_EQ(S::less_add(x, y), S::add(x, y) == x && x != y);
  }
}

TEST(MinPlusInt32, SaturatingAddDoesNotOverflow) {
  using S = MinPlus<std::int32_t>;
  const std::int32_t inf = value_traits<std::int32_t>::infinity();
  EXPECT_EQ(S::mul(inf, inf), inf);
  EXPECT_EQ(S::mul(inf, 1000), inf);
  EXPECT_EQ(S::mul(inf - 1, inf - 1), inf);  // would wrap without saturation
  EXPECT_TRUE(value_traits<std::int32_t>::is_inf(S::mul(inf, -5)));
  EXPECT_EQ(S::mul(3, 4), 7);
}

TEST(MinPlusInt64, SaturatingAdd) {
  using S = MinPlus<std::int64_t>;
  const std::int64_t inf = value_traits<std::int64_t>::infinity();
  EXPECT_EQ(S::mul(inf, inf), inf);
  EXPECT_EQ(S::mul(inf, 12345), inf);
  EXPECT_EQ(S::mul(std::int64_t{1} << 40, std::int64_t{1} << 40),
            (std::int64_t{1} << 41));
}

TEST(MaxMin, WidestPathAlgebra) {
  using S = MaxMin<float>;
  EXPECT_EQ(S::zero(), 0.0f);
  EXPECT_EQ(S::add(3.0f, 5.0f), 5.0f);   // max
  EXPECT_EQ(S::mul(3.0f, 5.0f), 3.0f);   // min (bottleneck)
  EXPECT_EQ(S::mul(S::one(), 7.0f), 7.0f);
  EXPECT_EQ(S::add(S::zero(), 7.0f), 7.0f);
}

TEST(BoolOrAnd, ReachabilityAlgebra) {
  using S = BoolOrAnd;
  EXPECT_EQ(S::add(0, 0), 0);
  EXPECT_EQ(S::add(0, 1), 1);
  EXPECT_EQ(S::mul(1, 1), 1);
  EXPECT_EQ(S::mul(1, 0), 0);
}

/// Distributivity x⊗(y⊕z) == (x⊗y)⊕(x⊗z) — the semiring law blocked FW
/// silently relies on when it reorders updates.
template <typename S>
void check_distributivity(double lo, double hi) {
  using T = typename S::value_type;
  Rng rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    // Integral values keep ⊗ (addition) exact in IEEE arithmetic, so the
    // laws can be checked with equality rather than tolerances.
    const T x = static_cast<T>(static_cast<long long>(lo + rng.next_double() * (hi - lo)));
    const T y = static_cast<T>(static_cast<long long>(lo + rng.next_double() * (hi - lo)));
    const T z = static_cast<T>(static_cast<long long>(lo + rng.next_double() * (hi - lo)));
    EXPECT_EQ(S::mul(x, S::add(y, z)), S::add(S::mul(x, y), S::mul(x, z)));
    EXPECT_EQ(S::mul(S::add(y, z), x), S::add(S::mul(y, x), S::mul(z, x)));
    EXPECT_EQ(S::add(S::add(x, y), z), S::add(x, S::add(y, z)));
    EXPECT_EQ(S::mul(S::mul(x, y), z), S::mul(x, S::mul(y, z)));
  }
}

TEST(SemiringLaws, MinPlusFloat) { check_distributivity<MinPlus<float>>(-100, 100); }
TEST(SemiringLaws, MinPlusDouble) { check_distributivity<MinPlus<double>>(-1e6, 1e6); }
TEST(SemiringLaws, MaxMinFloat) { check_distributivity<MaxMin<float>>(0, 100); }

}  // namespace
}  // namespace parfw
