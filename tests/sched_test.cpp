// Tests for the schedule IR (src/sched/) and its two interpreters.
//
// The headline suite is the DES-vs-real cross-validation: for every
// variant x placement, the wire bytes the metadata-costing interpreter
// (perf::build_fw_program) derives from the IR must equal the traffic the
// mpisim runtime actually accounts while the data-carrying interpreter
// (dist::parallel_fw) executes the SAME schedule.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/diag_update.hpp"
#include "dist/driver.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "perf/schedule.hpp"
#include "sched/ir.hpp"
#include "sched/trace.hpp"

namespace parfw {
namespace {

using sched::OpKind;
using sched::Variant;

constexpr OpKind kAllOpKinds[] = {
    OpKind::kDiagUpdate,     OpKind::kDiagBcastRow,  OpKind::kDiagBcastCol,
    OpKind::kPanelUpdateRow, OpKind::kPanelUpdateCol, OpKind::kRowPanelBcast,
    OpKind::kColPanelBcast,  OpKind::kLookaheadRow,  OpKind::kLookaheadCol,
    OpKind::kOuterUpdate};

constexpr Variant kAllVariants[] = {Variant::kBaseline, Variant::kPipelined,
                                    Variant::kAsync, Variant::kOffload};

sched::Schedule small_schedule(Variant v, const dist::GridSpec& grid,
                               std::size_t nb, std::size_t b) {
  sched::ScheduleParams sp;
  sp.variant = v;
  sp.nb = nb;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.diag_flops = diag_update_flops(b, DiagStrategy::kClassic);
  return sched::build_schedule(grid, sp);
}

// ---------------------------------------------------------------------------
// Tag space (owned by the IR; dist and DES both draw from sched::tag_of).

TEST(TagSpace, InjectiveAcrossIterationsAndPhases) {
  std::set<std::int32_t> seen;
  for (std::size_t k = 0; k < 2048; ++k) {
    for (int phase = 0; phase < sched::kTagsPerIter; ++phase) {
      const std::int32_t tag = sched::tag_of(k, phase);
      EXPECT_GE(tag, sched::kTagBase);
      EXPECT_TRUE(seen.insert(tag).second)
          << "tag " << tag << " reused at k=" << k << " phase=" << phase;
    }
  }
}

TEST(TagSpace, ConcurrentIterationsNeverAlias) {
  // The pipelined/async schedules keep the collectives of iterations k and
  // k+1 in flight at once; their tag ranges must be disjoint for every k.
  for (std::size_t k = 0; k + 1 < 100000; ++k) {
    ASSERT_LT(sched::tag_of(k, sched::kTagsPerIter - 1),
              sched::tag_of(k + 1, 0));
  }
}

TEST(TagSpace, PhaseConstantsStayInsideTheIterationBlock) {
  for (int phase :
       {sched::kTagDiagRow, sched::kTagDiagCol, sched::kTagRowPanel,
        sched::kTagColPanel, sched::kTagDiagPredRow, sched::kTagDiagPredCol,
        sched::kTagRowPanelPred}) {
    EXPECT_GE(phase, 0);
    EXPECT_LT(phase, sched::kTagsPerIter);
  }
  EXPECT_EQ(sched::tag_of(0, sched::kTagDiagRow), sched::kTagBase);
}

TEST(TagSpace, PathsScheduleTagsIdentifyOneCollective) {
  // Injectivity extended from the raw (k, phase) map to the GENERATED
  // pred-carrying schedules: in every variant's paths schedule a tag
  // names exactly one logical collective — all steps sharing a tag agree
  // on (k, kind, payload, coll, bytes) — so a value broadcast can never
  // cross-match its kPred companion even when both are in flight.
  const auto grid = dist::GridSpec::row_major(2, 3);
  const std::size_t nb = 6, b = 4;
  for (Variant v : kAllVariants) {
    sched::ScheduleParams sp;
    sp.variant = v;
    sp.nb = nb;
    sp.b = b;
    sp.word_bytes = sizeof(float);
    sp.pred_word_bytes = sizeof(std::int64_t);
    sp.diag_flops = diag_update_flops(b, DiagStrategy::kClassic);
    const sched::Schedule s = sched::build_schedule(grid, sp);

    using Key = std::tuple<std::uint32_t, int, int, int, std::int64_t>;
    std::map<std::int32_t, Key> owner;
    std::map<OpKind, std::size_t> value_comm, pred_comm;
    for (const sched::Step& step : s.steps) {
      const sched::Op& op = step.op;
      if (!sched::is_comm(op.kind)) continue;
      const bool pred = op.payload == sched::Payload::kPred;
      (pred ? pred_comm : value_comm)[op.kind]++;
      if (pred) {
        // The pred phase space: companion tags, never the value phases.
        const int phase = op.kind == OpKind::kDiagBcastRow
                              ? sched::kTagDiagPredRow
                          : op.kind == OpKind::kDiagBcastCol
                              ? sched::kTagDiagPredCol
                              : sched::kTagRowPanelPred;
        EXPECT_NE(op.kind, OpKind::kColPanelBcast) << variant_name(v);
        EXPECT_EQ(op.tag, sched::tag_of(op.k, phase)) << variant_name(v);
        EXPECT_EQ(op.bytes % static_cast<std::int64_t>(sizeof(std::int64_t)),
                  0);
      }
      const Key key{op.k, static_cast<int>(op.kind),
                    static_cast<int>(op.payload), static_cast<int>(op.coll),
                    op.bytes};
      auto [it, fresh] = owner.emplace(op.tag, key);
      if (!fresh) {
        EXPECT_EQ(it->second, key)
            << variant_name(v) << ": tag " << op.tag
            << " shared by two distinct collectives";
      }
    }
    // Every value broadcast with a pred sibling has exactly one companion
    // per member; the column panel has none (the pred rule never reads it).
    EXPECT_EQ(pred_comm[OpKind::kDiagBcastRow],
              value_comm[OpKind::kDiagBcastRow]) << variant_name(v);
    EXPECT_EQ(pred_comm[OpKind::kDiagBcastCol],
              value_comm[OpKind::kDiagBcastCol]) << variant_name(v);
    EXPECT_EQ(pred_comm[OpKind::kRowPanelBcast],
              value_comm[OpKind::kRowPanelBcast]) << variant_name(v);
    EXPECT_EQ(pred_comm[OpKind::kColPanelBcast], 0u) << variant_name(v);
    EXPECT_GT(pred_comm[OpKind::kRowPanelBcast], 0u) << variant_name(v);
  }
}

TEST(TagSpace, RelayHandshakeOffsetsFitTheMatchKey) {
  // The DES background-relay agents derive ready/done tags as
  // tag + (1 << 22) and tag + (1 << 23). Plain tags must stay below
  // 1 << 22 so the three ranges never collide and everything fits the
  // simulator's 24-bit match-key tag field. That holds up to
  // k = 524161 — n ≈ 400M vertices at b = 768, two orders of magnitude
  // past the paper's largest run.
  const std::size_t max_k = ((std::size_t{1} << 22) - sched::kTagBase) /
                                sched::kTagsPerIter -
                            1;
  EXPECT_GE(max_k, 524161u);
  const std::int32_t tag = sched::tag_of(max_k, sched::kTagsPerIter - 1);
  EXPECT_LT(tag, 1 << 22);
  EXPECT_LT(tag + (1 << 23), 1 << 24);
}

// ---------------------------------------------------------------------------
// Generator structure.

TEST(Generators, EveryVariantCoversAllIterationsOnAllRanks) {
  const auto grid = dist::GridSpec::row_major(2, 3);
  const std::size_t nb = 6, b = 4;
  for (Variant v : kAllVariants) {
    const sched::Schedule s = small_schedule(v, grid, nb, b);
    std::set<std::uint32_t> diag_k;
    std::vector<std::set<std::uint32_t>> outer_k(
        static_cast<std::size_t>(grid.size()));
    for (const sched::Step& step : s.steps) {
      ASSERT_GE(step.rank, 0);
      ASSERT_LT(step.rank, grid.size());
      ASSERT_LT(step.op.k, nb);
      if (step.op.kind == OpKind::kDiagUpdate) {
        EXPECT_TRUE(diag_k.insert(step.op.k).second)
            << "duplicate DiagUpdate k=" << step.op.k;
      }
      if (step.op.kind == OpKind::kOuterUpdate) {
        EXPECT_TRUE(
            outer_k[static_cast<std::size_t>(step.rank)].insert(step.op.k)
                .second);
      }
    }
    EXPECT_EQ(diag_k.size(), nb) << variant_name(v);
    for (const auto& per_rank : outer_k)
      EXPECT_EQ(per_rank.size(), nb) << variant_name(v);
  }
}

TEST(Generators, CollectiveKindsFollowTheVariant) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  for (Variant v : kAllVariants) {
    const sched::Schedule s = small_schedule(v, grid, 4, 4);
    for (const sched::Step& step : s.steps) {
      const sched::Op& op = step.op;
      if (op.kind == OpKind::kDiagBcastRow ||
          op.kind == OpKind::kDiagBcastCol) {
        EXPECT_EQ(op.coll, sched::CollKind::kTree);
      }
      if (op.kind == OpKind::kRowPanelBcast ||
          op.kind == OpKind::kColPanelBcast) {
        EXPECT_EQ(op.coll, v == Variant::kAsync ? sched::CollKind::kRing
                                                : sched::CollKind::kTree);
      }
      if (sched::is_comm(op.kind)) {
        EXPECT_GT(op.bytes, 0);
        EXPECT_GE(op.tag, sched::kTagBase);
        EXPECT_GE(op.root, 0);
      }
      EXPECT_EQ(op.offload,
                v == Variant::kOffload && op.kind == OpKind::kOuterUpdate);
    }
  }
}

TEST(Generators, LookaheadOnlyInPipelinedSchedules) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  for (Variant v : kAllVariants) {
    const sched::Schedule s = small_schedule(v, grid, 4, 4);
    bool has_lookahead = false;
    for (const sched::Step& step : s.steps)
      has_lookahead |= step.op.kind == OpKind::kLookaheadRow ||
                       step.op.kind == OpKind::kLookaheadCol;
    EXPECT_EQ(has_lookahead,
              v == Variant::kPipelined || v == Variant::kAsync)
        << variant_name(v);
  }
}

TEST(Generators, DeterministicAndRankProgramIsTheRankRestriction) {
  const auto grid = dist::GridSpec::tiled(2, 1, 1, 2);
  const sched::Schedule a = small_schedule(Variant::kAsync, grid, 4, 4);
  const sched::Schedule b = small_schedule(Variant::kAsync, grid, 4, 4);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].rank, b.steps[i].rank);
    EXPECT_EQ(a.steps[i].op.kind, b.steps[i].op.kind);
    EXPECT_EQ(a.steps[i].op.k, b.steps[i].op.k);
    EXPECT_EQ(a.steps[i].op.tag, b.steps[i].op.tag);
  }
  for (int w = 0; w < grid.size(); ++w) {
    const std::vector<sched::Op> prog = a.rank_program(w);
    std::size_t i = 0;
    for (const sched::Step& step : a.steps) {
      if (step.rank != w) continue;
      ASSERT_LT(i, prog.size());
      EXPECT_EQ(prog[i].kind, step.op.kind);
      EXPECT_EQ(prog[i].k, step.op.k);
      ++i;
    }
    EXPECT_EQ(i, prog.size());
  }
}

TEST(Generators, BaselineTotalsMatchClosedForm) {
  const auto grid = dist::GridSpec::row_major(2, 3);
  const std::size_t nb = 6, b = 4;
  const sched::Schedule s = small_schedule(Variant::kBaseline, grid, nb, b);
  const sched::ScheduleTotals t = sched::totals(s);

  const double db = static_cast<double>(b), dnb = static_cast<double>(nb);
  const double diag = diag_update_flops(b, DiagStrategy::kClassic);
  // Per iteration: panels update all nb row blocks and all nb column
  // blocks (2b^3 each), the outer update covers the full nb x nb grid.
  const double expect_flops =
      dnb * (diag + 4 * dnb * db * db * db + 2 * dnb * dnb * db * db * db);
  EXPECT_DOUBLE_EQ(t.flops, expect_flops);

  // Payload bytes summed over per-member comm ops: each iteration posts a
  // b^2 diagonal to pc row members and pr column members, a full block row
  // to the pr members of each column chain, and a full block column to the
  // pc members of each row chain.
  const std::int64_t w = sizeof(float);
  const std::int64_t bb = static_cast<std::int64_t>(b * b) * w;
  const std::int64_t per_iter =
      (grid.cols() + grid.rows()) * bb +
      grid.rows() * static_cast<std::int64_t>(nb) * bb +
      grid.cols() * static_cast<std::int64_t>(nb) * bb;
  EXPECT_EQ(t.payload_bytes, static_cast<std::int64_t>(nb) * per_iter);
}

TEST(Generators, SharedCompWorkIsVariantInvariant) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  const auto base = sched::totals(small_schedule(Variant::kBaseline, grid, 4, 4));
  const auto off = sched::totals(small_schedule(Variant::kOffload, grid, 4, 4));
  const auto pipe = sched::totals(small_schedule(Variant::kPipelined, grid, 4, 4));
  const auto async = sched::totals(small_schedule(Variant::kAsync, grid, 4, 4));
  // Offload only re-binds the outer update; async only re-binds the
  // collective algorithm. The arithmetic schedule is unchanged.
  EXPECT_DOUBLE_EQ(base.flops, off.flops);
  EXPECT_DOUBLE_EQ(pipe.flops, async.flops);
  EXPECT_EQ(base.payload_bytes, off.payload_bytes);
  EXPECT_EQ(pipe.payload_bytes, async.payload_bytes);
  // Look-ahead re-derives the next iteration's panels early: extra flops.
  EXPECT_GT(pipe.flops, base.flops);
}

// ---------------------------------------------------------------------------
// Resume / checkpoint schedules (DESIGN.md "Resilience").

TEST(ResumeSchedule, DefaultParamsEmitNoCheckpointOps) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  for (const Variant v : kAllVariants)
    for (const sched::Step& s : small_schedule(v, grid, 6, 8).steps)
      EXPECT_NE(s.op.kind, OpKind::kCheckpoint) << variant_name(v);
}

TEST(ResumeSchedule, CheckpointCutsLandEveryNthIteration) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  for (const Variant v : kAllVariants) {
    sched::ScheduleParams sp;
    sp.variant = v;
    sp.nb = 6;
    sp.b = 8;
    sp.word_bytes = sizeof(float);
    sp.checkpoint_every = 2;
    const auto s = sched::build_schedule(grid, sp);
    std::set<std::size_t> cut_iters;
    std::size_t cut_ops = 0;
    for (const sched::Step& step : s.steps)
      if (step.op.kind == OpKind::kCheckpoint) {
        cut_iters.insert(step.op.k);
        ++cut_ops;
      }
    // Cuts at k = 2 and 4 (never at the start), one op per rank per cut.
    EXPECT_EQ(cut_iters, (std::set<std::size_t>{2, 4})) << variant_name(v);
    EXPECT_EQ(cut_ops, cut_iters.size() * static_cast<std::size_t>(grid.size()))
        << variant_name(v);
  }
}

TEST(ResumeSchedule, StartKReplaysExactlyTheSuffix) {
  // The resume schedule must cover iterations start_k..nb-1 and nothing
  // earlier; a start at nb is a valid empty program.
  const auto grid = dist::GridSpec::row_major(2, 2);
  for (const Variant v : kAllVariants) {
    sched::ScheduleParams sp;
    sp.variant = v;
    sp.nb = 6;
    sp.b = 8;
    sp.word_bytes = sizeof(float);
    sp.start_k = 3;
    const auto s = sched::build_schedule(grid, sp);
    std::set<std::size_t> iters;
    for (const sched::Step& step : s.steps) iters.insert(step.op.k);
    EXPECT_EQ(*iters.begin(), 3u) << variant_name(v);
    EXPECT_EQ(*iters.rbegin(), 5u) << variant_name(v);
    EXPECT_EQ(iters.size(), 3u) << variant_name(v);

    sp.start_k = 6;
    EXPECT_TRUE(sched::build_schedule(grid, sp).steps.empty())
        << variant_name(v);
  }
}

TEST(ResumeSchedule, SuffixOpsMatchTheFullScheduleTail) {
  // Replay correctness leans on the resume schedule emitting the SAME ops
  // (modulo the pipelined prologue re-staging start_k's panels) the full
  // schedule would run from start_k on — spot-check the baseline variant,
  // whose loop body has no cross-iteration staging.
  const auto grid = dist::GridSpec::row_major(2, 2);
  sched::ScheduleParams sp;
  sp.variant = Variant::kBaseline;
  sp.nb = 5;
  sp.b = 8;
  sp.word_bytes = sizeof(float);
  const auto full = sched::build_schedule(grid, sp);
  sp.start_k = 2;
  const auto resumed = sched::build_schedule(grid, sp);

  std::vector<sched::Step> tail;
  for (const sched::Step& step : full.steps)
    if (step.op.k >= 2) tail.push_back(step);
  ASSERT_EQ(tail.size(), resumed.steps.size());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].rank, resumed.steps[i].rank) << i;
    EXPECT_EQ(tail[i].op.kind, resumed.steps[i].op.kind) << i;
    EXPECT_EQ(tail[i].op.k, resumed.steps[i].op.k) << i;
    EXPECT_EQ(tail[i].op.tag, resumed.steps[i].op.tag) << i;
  }
}

// ---------------------------------------------------------------------------
// Trace sinks.

TEST(TraceSinks, StatsAggregatesPerName) {
  sched::StatsTraceSink sink;
  sink.record({0, "OuterUpdate", 0, 1.0, 3.0, 0, 100.0});
  sink.record({1, "OuterUpdate", 1, 2.0, 2.5, 0, 50.0});
  sink.record({0, "RowPanelBcast", 0, 0.0, 1.0, 640, 0.0});
  const auto outer = sink.of("OuterUpdate");
  EXPECT_EQ(outer.count, 2u);
  EXPECT_DOUBLE_EQ(outer.flops, 150.0);
  EXPECT_DOUBLE_EQ(outer.seconds, 2.5);
  EXPECT_EQ(sink.of("RowPanelBcast").bytes, 640);
  EXPECT_EQ(sink.of("nope").count, 0u);
  EXPECT_EQ(sink.total().count, 3u);
}

TEST(TraceSinks, ChromeTraceWritesWellFormedJson) {
  sched::ChromeTraceSink sink;
  sink.record({0, "OuterUpdate", 2, 1.0, 2.0, 0, 64.0});
  sink.record({3, "msg", 0, 1.5, 1.5, 128, 0.0});
  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"OuterUpdate\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // duration event
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceSinks, CappedSinksDropNewAndMarkTruncation) {
  sched::ChromeTraceSink chrome(/*max_events=*/2);
  for (int i = 0; i < 5; ++i)
    chrome.record({0, "OuterUpdate", 0, 0.1 * i, 0.1 * i + 0.05, 0, 1.0});
  EXPECT_EQ(chrome.size(), 2u);
  EXPECT_EQ(chrome.truncated(), 3u);
  std::ostringstream os;
  chrome.write(os);
  const std::string json = os.str();
  // The truncation marker instant carries the dropped count in bytes.
  EXPECT_NE(json.find(sched::kTruncatedMarker), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":3"), std::string::npos);

  sched::CollectTraceSink collect(/*max_events=*/3);
  for (int i = 0; i < 5; ++i)
    collect.record({0, "msg", 0, 0.1 * i, 0.1 * i, 8, 0.0});
  EXPECT_EQ(collect.size(), 3u);
  EXPECT_EQ(collect.truncated(), 2u);
  // Drop-NEW: the head of the run survives.
  EXPECT_DOUBLE_EQ(collect.events().front().t_begin, 0.0);
}

TEST(TraceSinks, RingKeepsTheNewestWindowInOrder) {
  // 4-slot ring: after 10 events the window is the last 4, oldest first.
  sched::RingTraceSink ring(sizeof(sched::TraceEvent) * 4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 10; ++i)
    ring.record({i, "OuterUpdate", static_cast<std::uint32_t>(i),
                 0.1 * i, 0.1 * i + 0.05, 0, 1.0});
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto w = ring.window();
  ASSERT_EQ(w.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(w[i].k, static_cast<std::uint32_t>(6 + i));

  std::ostringstream os;
  ring.write_chrome(os);
  const std::string json = os.str();
  // Drop-OLDEST: the marker carries the overwritten count and sits at
  // the window's head.
  EXPECT_NE(json.find(sched::kTruncatedMarker), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":6"), std::string::npos);
}

TEST(TraceSinks, RingBelowCapacityDropsNothing) {
  sched::RingTraceSink ring(sizeof(sched::TraceEvent) * 8);
  for (int i = 0; i < 5; ++i)
    ring.record({0, "msg", static_cast<std::uint32_t>(i), 0.0, 0.0, 0, 0.0});
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto w = ring.window();
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w.front().k, 0u);
  EXPECT_EQ(w.back().k, 4u);
  std::ostringstream os;
  ring.write_chrome(os);
  EXPECT_EQ(os.str().find(sched::kTruncatedMarker), std::string::npos);
}

TEST(TraceSinks, TeeFansOutToEverySink) {
  sched::StatsTraceSink stats;
  sched::RingTraceSink ring;
  sched::TeeTraceSink tee;
  tee.add(&stats);
  tee.add(&ring);
  tee.add(nullptr);  // ignored
  tee.record({0, "OuterUpdate", 0, 0.0, 1.0, 0, 5.0});
  EXPECT_EQ(stats.of("OuterUpdate").count, 1u);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(TraceSinks, DesEmitsScheduleLabelledEvents) {
  const perf::MachineConfig m = perf::MachineConfig::summit();
  sched::StatsTraceSink sink;
  const perf::GridSetup setup = perf::make_grid(m, 1, /*reordered=*/true);
  perf::simulate_fw_placement(m, Variant::kAsync, setup, 1, 12 * 768.0, 768.0,
                              /*comm_only=*/false, &sink);
  EXPECT_GT(sink.of(sched::op_name(OpKind::kOuterUpdate)).count, 0u);
  EXPECT_GT(sink.of(sched::op_name(OpKind::kRowPanelBcast)).bytes, 0);
}

// ---------------------------------------------------------------------------
// Real execution vs the IR's own metadata.

TEST(CrossValidation, RealTraceMatchesScheduleTotals) {
  const std::size_t n = 64, b = 8;
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.variant = Variant::kAsync;
  opt.block_size = b;
  sched::StatsTraceSink stats;
  opt.trace = &stats;
  DenseEntryGen<float> gen(11, 0.9, 1.0f, 80.0f, /*integral=*/true);
  dist::run_parallel_fw<MinPlus<float>>(n, gen, grid, 2, opt);

  const sched::Schedule s =
      small_schedule(Variant::kAsync, grid, n / b, b);
  const sched::ScheduleTotals t = sched::totals(s);

  double flops = 0.0;
  std::int64_t bytes = 0;
  std::uint64_t comp = 0, comm = 0;
  for (OpKind kind : kAllOpKinds) {
    const auto st = stats.of(sched::op_name(kind));
    flops += st.flops;
    bytes += st.bytes;
    (sched::is_comm(kind) ? comm : comp) += st.count;
  }
  EXPECT_DOUBLE_EQ(flops, t.flops);
  EXPECT_EQ(bytes, t.payload_bytes);
  EXPECT_EQ(comp, t.comp_ops);
  EXPECT_EQ(comm, t.comm_ops);
}

TEST(CrossValidation, TracingDoesNotChangeResults) {
  const std::size_t n = 64, b = 8;
  const auto grid = dist::GridSpec::row_major(2, 2);
  DenseEntryGen<float> gen(23, 0.85, 1.0f, 90.0f, /*integral=*/true);
  dist::DistFwOptions opt;
  opt.variant = Variant::kPipelined;
  opt.block_size = b;
  const auto plain = dist::run_parallel_fw<MinPlus<float>>(n, gen, grid, 2, opt);
  sched::ChromeTraceSink sink;
  opt.trace = &sink;
  const auto traced = dist::run_parallel_fw<MinPlus<float>>(n, gen, grid, 2, opt);
  EXPECT_GT(sink.size(), 0u);
  ASSERT_EQ(plain.dist.size(), traced.dist.size());
  EXPECT_EQ(std::memcmp(plain.dist.data(), traced.dist.data(),
                        plain.dist.size() * sizeof(float)),
            0);
}

// The headline check (ISSUE satellite 1): the DES lowering of the IR must
// predict EXACTLY the wire traffic mpisim accounts when the real
// interpreter executes the same schedule. parallel_fw's only non-schedule
// traffic is the row/column communicator split, so a split-only run is
// subtracted from the full run.
class DesVsReal : public ::testing::TestWithParam<std::tuple<Variant, bool>> {};

TEST_P(DesVsReal, WireBytesMatchExactly) {
  const auto [variant, reordered] = GetParam();
  const std::size_t n = 64, b = 8;
  const dist::GridSpec grid = reordered ? dist::GridSpec::tiled(2, 1, 1, 2)
                                        : dist::GridSpec::row_major(2, 2);
  const int ranks_per_node = 2;

  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  if (variant == Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }
  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);

  DenseEntryGen<float> gen(5, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const mpi::TrafficStats full = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        dist::parallel_fw<MinPlus<float>>(world, local, opt);
      },
      ropt);
  const mpi::TrafficStats split_only = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) { (void)dist::make_row_col_comms(world, grid); },
      ropt);

  perf::FwProblem prob;
  prob.variant = variant;
  prob.n = static_cast<double>(n);
  prob.b = static_cast<double>(b);
  std::vector<int> node_of(static_cast<std::size_t>(grid.size()));
  for (int w = 0; w < grid.size(); ++w)
    node_of[static_cast<std::size_t>(w)] = ropt.node_model.node(w);
  const perf::MachineConfig m = perf::MachineConfig::summit();
  ASSERT_EQ(m.word_bytes, static_cast<int>(sizeof(float)));
  const perf::BuiltProgram built =
      perf::build_fw_program(m, prob, grid, node_of);
  const perf::WireTotals wire =
      perf::program_traffic(built.programs, built.node_of);

  EXPECT_EQ(full.bytes_total - split_only.bytes_total,
            static_cast<std::uint64_t>(wire.bytes_total));
  EXPECT_EQ(full.bytes_internode - split_only.bytes_internode,
            static_cast<std::uint64_t>(wire.bytes_internode));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, DesVsReal,
    ::testing::Combine(::testing::ValuesIn(kAllVariants),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<DesVsReal::ParamType>& info) {
      return std::string(variant_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_tiled" : "_rowmajor");
    });

// Same exactness claim with paths on: the schedule grows kPred companion
// broadcasts, and the DES lowering of those (stateless per op — members,
// root, bytes, tag) must still predict mpisim's accounting to the byte.
class DesVsRealPaths
    : public ::testing::TestWithParam<std::tuple<Variant, bool>> {};

TEST_P(DesVsRealPaths, WireBytesMatchExactly) {
  const auto [variant, reordered] = GetParam();
  const std::size_t n = 64, b = 8;
  const dist::GridSpec grid = reordered ? dist::GridSpec::tiled(2, 1, 1, 2)
                                        : dist::GridSpec::row_major(2, 2);
  const int ranks_per_node = 2;

  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  if (variant == Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }
  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);

  DenseEntryGen<float> gen(6, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const mpi::TrafficStats full = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        dist::BlockCyclicMatrix<std::int64_t> plocal(
            n, b, grid, grid.coord_of(world.rank()));
        local.fill(gen);
        dist::init_predecessors_dist<MinPlus<float>>(local, plocal);
        dist::parallel_fw<MinPlus<float>>(world, local, plocal, opt);
      },
      ropt);
  const mpi::TrafficStats split_only = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) { (void)dist::make_row_col_comms(world, grid); },
      ropt);

  perf::FwProblem prob;
  prob.variant = variant;
  prob.n = static_cast<double>(n);
  prob.b = static_cast<double>(b);
  prob.track_paths = true;
  std::vector<int> node_of(static_cast<std::size_t>(grid.size()));
  for (int w = 0; w < grid.size(); ++w)
    node_of[static_cast<std::size_t>(w)] = ropt.node_model.node(w);
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const perf::BuiltProgram built =
      perf::build_fw_program(m, prob, grid, node_of);
  const perf::WireTotals wire =
      perf::program_traffic(built.programs, built.node_of);

  EXPECT_EQ(full.bytes_total - split_only.bytes_total,
            static_cast<std::uint64_t>(wire.bytes_total));
  EXPECT_EQ(full.bytes_internode - split_only.bytes_internode,
            static_cast<std::uint64_t>(wire.bytes_internode));
  // Paths must move strictly more than a value run (the pred companions).
  perf::FwProblem vprob = prob;
  vprob.track_paths = false;
  const perf::BuiltProgram vbuilt =
      perf::build_fw_program(m, vprob, grid, node_of);
  EXPECT_GT(wire.bytes_total,
            perf::program_traffic(vbuilt.programs, vbuilt.node_of).bytes_total);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, DesVsRealPaths,
    ::testing::Combine(::testing::ValuesIn(kAllVariants),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<DesVsRealPaths::ParamType>& info) {
      return std::string(variant_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_tiled" : "_rowmajor");
    });

}  // namespace
}  // namespace parfw
