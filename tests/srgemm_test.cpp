// SRGEMM kernel tests: tiled kernel vs naive oracle across shapes and
// semirings, argmin tracking, element-wise ops, parallel driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "core/blocked_fw_paths.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "util/rng.hpp"

namespace parfw {
namespace {

template <typename T>
Matrix<T> random_matrix(std::size_t r, std::size_t c, std::uint64_t seed,
                        double inf_prob = 0.0) {
  Matrix<T> m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      m(i, j) = rng.next_double() < inf_prob
                    ? value_traits<T>::infinity()
                    : static_cast<T>(rng.next_double() * 100.0);
  return m;
}

using Shape = std::tuple<int, int, int>;  // m, n, k

class SrgemmShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(SrgemmShapes, TiledMatchesNaiveMinPlusFloat) {
  using S = MinPlus<float>;
  const auto [m, n, k] = GetParam();
  auto A = random_matrix<float>(m, k, 1, 0.1);
  auto B = random_matrix<float>(k, n, 2, 0.1);
  auto C0 = random_matrix<float>(m, n, 3, 0.2);
  auto C1 = C0.clone();
  srgemm::multiply_reference<S>(A.view(), B.view(), C0.view());
  srgemm::multiply<S>(A.view(), B.view(), C1.view());
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0)
      << "shape " << m << "x" << n << "x" << k;
}

TEST_P(SrgemmShapes, TiledMatchesNaivePlusTimesDouble) {
  // The non-idempotent semiring catches double-accumulation bugs that
  // min-plus would silently absorb.
  using S = PlusTimes<double>;
  const auto [m, n, k] = GetParam();
  auto A = random_matrix<double>(m, k, 4);
  auto B = random_matrix<double>(k, n, 5);
  auto C0 = random_matrix<double>(m, n, 6);
  auto C1 = C0.clone();
  srgemm::multiply_reference<S>(A.view(), B.view(), C0.view());
  srgemm::multiply<S>(A.view(), B.view(), C1.view());
  EXPECT_LT(max_abs_diff<double>(C0.view(), C1.view()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SrgemmShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{4, 16, 8}, Shape{5, 17, 9},
                      Shape{64, 64, 64}, Shape{63, 65, 31}, Shape{128, 40, 70},
                      Shape{3, 200, 1}, Shape{200, 3, 257}, Shape{33, 47, 129},
                      Shape{100, 100, 100}));

TEST(Srgemm, MaxMinSemiring) {
  using S = MaxMin<float>;
  auto A = random_matrix<float>(20, 30, 7);
  auto B = random_matrix<float>(30, 25, 8);
  Matrix<float> C0(20, 25, S::zero());
  auto C1 = C0.clone();
  srgemm::multiply_reference<S>(A.view(), B.view(), C0.view());
  srgemm::multiply<S>(A.view(), B.view(), C1.view());
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
}

TEST(Srgemm, MinPlusIdentityMatrix) {
  // A ⊗ I == A over min-plus: I has one() on the diagonal, zero() elsewhere.
  using S = MinPlus<float>;
  const std::size_t n = 37;
  auto A = random_matrix<float>(n, n, 11);
  Matrix<float> I(n, n, S::zero());
  for (std::size_t i = 0; i < n; ++i) I(i, i) = S::one();
  Matrix<float> C(n, n, S::zero());
  srgemm::multiply<S>(A.view(), I.view(), C.view());
  EXPECT_EQ(max_abs_diff<float>(A.view(), C.view()), 0.0);
}

TEST(Srgemm, AccumulatesIntoC) {
  // Entries of C better than any product path must survive.
  using S = MinPlus<float>;
  Matrix<float> A(2, 2, 10.0f), B(2, 2, 10.0f);
  Matrix<float> C(2, 2, 1.0f);
  srgemm::multiply<S>(A.view(), B.view(), C.view());
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(C(i, j), 1.0f);
}

TEST(Srgemm, ParallelDriverMatchesSequential) {
  using S = MinPlus<float>;
  ThreadPool pool(4);
  auto A = random_matrix<float>(300, 90, 21, 0.05);
  auto B = random_matrix<float>(90, 210, 22, 0.05);
  auto C0 = random_matrix<float>(300, 210, 23);
  auto C1 = C0.clone();
  srgemm::Config seq{};
  srgemm::Config par{};
  par.pool = &pool;
  srgemm::multiply<S>(A.view(), B.view(), C0.view(), seq);
  srgemm::multiply<S>(A.view(), B.view(), C1.view(), par);
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
}

TEST(Srgemm, PackedKernelMatchesUnpacked) {
  using S = MinPlus<float>;
  for (auto [m, n, k] : {std::tuple{65, 130, 70}, std::tuple{4, 16, 256},
                         std::tuple{129, 257, 300}}) {
    auto A = random_matrix<float>(m, k, 71, 0.05);
    auto B = random_matrix<float>(k, n, 72, 0.05);
    auto C0 = random_matrix<float>(m, n, 73);
    auto C1 = C0.clone();
    srgemm::Config packed{};
    packed.pack = true;
    srgemm::multiply<S>(A.view(), B.view(), C0.view());
    srgemm::multiply<S>(A.view(), B.view(), C1.view(), packed);
    EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0)
        << m << "x" << n << "x" << k;
  }
}

TEST(Srgemm, PackedKernelOnStridedViews) {
  using S = MinPlus<float>;
  auto big = random_matrix<float>(300, 300, 74);
  auto expected = big.clone();
  srgemm::Config packed{};
  packed.pack = true;
  srgemm::multiply<S>(expected.sub(0, 0, 100, 50), expected.sub(0, 100, 50, 80),
                      expected.sub(100, 100, 100, 80));
  srgemm::multiply<S>(big.sub(0, 0, 100, 50), big.sub(0, 100, 50, 80),
                      big.sub(100, 100, 100, 80), packed);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), big.view()), 0.0);
}

TEST(Srgemm, ShapeMismatchThrows) {
  using S = MinPlus<float>;
  Matrix<float> A(3, 4), B(5, 6), C(3, 6);
  EXPECT_THROW(srgemm::multiply<S>(A.view(), B.view(), C.view()), check_error);
}

TEST(Srgemm, StridedViewsWork) {
  // Operate on sub-blocks of larger allocations (the blocked-FW pattern).
  using S = MinPlus<float>;
  auto big = random_matrix<float>(100, 100, 31);
  auto A = big.sub(10, 10, 20, 30);
  auto B = big.sub(40, 40, 30, 25);
  Matrix<float> C0(20, 25, S::zero());
  auto C1 = C0.clone();
  srgemm::multiply_reference<S>(A, B, C0.view());
  srgemm::multiply<S>(A, B, C1.view());
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
}

TEST(Srgemm, ArgminTracksWitness) {
  using S = MinPlus<float>;
  const std::size_t m = 17, n = 19, k = 23;
  auto A = random_matrix<float>(m, k, 41);
  auto B = random_matrix<float>(k, n, 42);
  Matrix<float> C(m, n, S::zero());
  Matrix<std::int64_t> Arg(m, n, -1);
  srgemm::multiply_argmin<S>(A.view(), B.view(), C.view(), Arg.view(),
                             /*arg_offset=*/100);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t t = Arg(i, j) - 100;
      ASSERT_GE(t, 0);
      ASSERT_LT(t, static_cast<std::int64_t>(k));
      // The witness reproduces the stored value, and no index beats it.
      EXPECT_EQ(C(i, j), A(i, t) + B(t, j));
      for (std::size_t u = 0; u < k; ++u)
        EXPECT_LE(C(i, j), A(i, u) + B(u, j));
    }
}

// ---------------------------------------------------------------------------
// Fused predecessor-tracking kernel (multiply_with_pred) vs scalar oracle.
// ---------------------------------------------------------------------------

template <typename S>
void check_pred_kernel(std::uint64_t seed) {
  using T = typename S::value_type;
  for (auto [m, n, k] :
       {std::tuple{1, 1, 1}, std::tuple{3, 5, 2}, std::tuple{7, 65, 9},
        std::tuple{33, 47, 25}, std::tuple{64, 64, 64}}) {
    Rng rng(seed + static_cast<std::uint64_t>(m * 1000 + n));
    auto fill = [&](Matrix<T>& mat, double inf_prob) {
      for (std::size_t i = 0; i < mat.rows(); ++i)
        for (std::size_t j = 0; j < mat.cols(); ++j)
          mat(i, j) = rng.next_double() < inf_prob
                          ? S::zero()
                          : static_cast<T>(1 + rng.next_below(50));
    };
    Matrix<T> A(m, k), B(k, n), C(m, n);
    fill(A, 0.15);
    fill(B, 0.15);
    fill(C, 0.4);
    Matrix<std::int64_t> predB(k, n), predC(m, n, -1);
    for (std::size_t t = 0; t < static_cast<std::size_t>(k); ++t)
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
        predB(t, j) = static_cast<std::int64_t>(rng.next_below(1000));

    auto C_ref = C.clone();
    auto P_ref = predC.clone();
    parfw::detail::srgemm_with_pred<S>(A.view(), B.view(), C_ref.view(),
                                       predB.view(), P_ref.view());
    auto C_got = C.clone();
    auto P_got = predC.clone();
    srgemm::multiply_with_pred<S>(A.view(), B.view(), C_got.view(),
                                  predB.view(), P_got.view());

    EXPECT_EQ(max_abs_diff<T>(C_ref.view(), C_got.view()), 0.0)
        << m << "x" << n << "x" << k;
    std::size_t mism = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i)
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
        if (P_ref(i, j) != P_got(i, j)) ++mism;
    EXPECT_EQ(mism, 0u) << m << "x" << n << "x" << k;

    // Pool-split path: rows of C are independent when B !≡ C, so the
    // split must be bit-identical too.
    srgemm::Config pooled;
    pooled.tile_m = 8;
    pooled.pool = &ThreadPool::global();
    auto C_pool = C.clone();
    auto P_pool = predC.clone();
    srgemm::multiply_with_pred<S>(A.view(), B.view(), C_pool.view(),
                                  predB.view(), P_pool.view(), pooled);
    EXPECT_EQ(max_abs_diff<T>(C_ref.view(), C_pool.view()), 0.0);
    for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i)
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
        ASSERT_EQ(P_ref(i, j), P_pool(i, j)) << i << "," << j;
  }
}

TEST(SrgemmPred, FusedKernelMatchesScalarOracleMinPlusFloat) {
  check_pred_kernel<MinPlus<float>>(91);
}
TEST(SrgemmPred, FusedKernelMatchesScalarOracleMinPlusDouble) {
  check_pred_kernel<MinPlus<double>>(92);
}
TEST(SrgemmPred, FusedKernelMatchesScalarOracleMinPlusInt32) {
  check_pred_kernel<MinPlus<std::int32_t>>(93);
}
TEST(SrgemmPred, FusedKernelMatchesScalarOracleMaxMinFloat) {
  check_pred_kernel<MaxMin<float>>(94);
}

TEST(SrgemmPred, EwiseMergeEquivalentToFusedKernel) {
  // The offload pipeline computes the chunk product into a zero()-filled X
  // with pred attachment, then merges with ewise_add_with_pred; the result
  // must be bit-identical to running the fused kernel on C directly.
  using S = MinPlus<float>;
  const std::size_t m = 33, n = 47, k = 25;
  Rng rng(95);
  auto fill = [&](Matrix<float>& mat, double inf_prob) {
    for (std::size_t i = 0; i < mat.rows(); ++i)
      for (std::size_t j = 0; j < mat.cols(); ++j)
        mat(i, j) = rng.next_double() < inf_prob
                        ? S::zero()
                        : static_cast<float>(1 + rng.next_below(50));
  };
  Matrix<float> A(m, k), B(k, n), C(m, n);
  fill(A, 0.15);
  fill(B, 0.15);
  fill(C, 0.4);
  Matrix<std::int64_t> predB(k, n), predC(m, n, -1);
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t j = 0; j < n; ++j)
      predB(t, j) = static_cast<std::int64_t>(rng.next_below(1000));

  auto C_fused = C.clone();
  auto P_fused = predC.clone();
  srgemm::multiply_with_pred<S>(A.view(), B.view(), C_fused.view(),
                                predB.view(), P_fused.view());

  Matrix<float> X(m, n, S::zero());
  Matrix<std::int64_t> Xp(m, n, -1);
  srgemm::multiply_with_pred<S>(A.view(), B.view(), X.view(), predB.view(),
                                Xp.view());
  auto C_merged = C.clone();
  auto P_merged = predC.clone();
  srgemm::ewise_add_with_pred<S>(X.view(), Xp.view(), C_merged.view(),
                                 P_merged.view());

  EXPECT_EQ(max_abs_diff<float>(C_fused.view(), C_merged.view()), 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(P_fused(i, j), P_merged(i, j)) << i << "," << j;
}

// ---------------------------------------------------------------------------
// Kernel-variant cross-validation: every dispatchable kernel must produce a
// bit-identical distance matrix to the naive oracle, on fringe shapes (m,
// n, k not multiples of MR/NR/tile sizes) and on strided sub-views, for
// all three vectorizable FW semirings.
// ---------------------------------------------------------------------------

const srgemm::Kernel kAllKernels[] = {
    srgemm::Kernel::kNaive, srgemm::Kernel::kTiled, srgemm::Kernel::kPacked,
    srgemm::Kernel::kSimd};

srgemm::Config variant_cfg(srgemm::Kernel k) {
  // Small tiles so the test shapes cross several tile boundaries.
  srgemm::Config cfg;
  cfg.kernel = k;
  cfg.tile_m = 16;
  cfg.tile_n = 32;
  cfg.tile_k = 24;
  return cfg;
}

template <typename S>
void check_all_kernels(std::uint64_t seed, double inf_prob) {
  using T = typename S::value_type;
  // Deliberately awkward shapes: below one micro-tile, fringe in every
  // dimension, and spanning several macro tiles.
  for (auto [m, n, k] :
       {std::tuple{1, 1, 1}, std::tuple{3, 5, 2}, std::tuple{7, 65, 9},
        std::tuple{33, 47, 25}, std::tuple{65, 130, 70},
        std::tuple{100, 31, 129}}) {
    Matrix<T> A(m, k), B(k, n), C0(m, n);
    Rng rng(seed);
    auto fill = [&](Matrix<T>& mat) {
      for (std::size_t i = 0; i < mat.rows(); ++i)
        for (std::size_t j = 0; j < mat.cols(); ++j)
          mat(i, j) = rng.next_double() < inf_prob
                          ? S::zero()
                          : static_cast<T>(rng.next_double() * 60.0);
    };
    fill(A);
    fill(B);
    fill(C0);
    auto expected = C0.clone();
    srgemm::multiply_reference<S>(A.view(), B.view(), expected.view());
    for (srgemm::Kernel kern : kAllKernels) {
      auto C = C0.clone();
      srgemm::multiply<S>(A.view(), B.view(), C.view(), variant_cfg(kern));
      EXPECT_EQ(max_abs_diff<T>(expected.view(), C.view()), 0.0)
          << "kernel " << static_cast<int>(kern) << " shape " << m << "x" << n
          << "x" << k;
    }
    auto Cp = C0.clone();
    srgemm::multiply_prepacked<S>(A.view(), B.view(), Cp.view(),
                                  variant_cfg(srgemm::Kernel::kSimd));
    EXPECT_EQ(max_abs_diff<T>(expected.view(), Cp.view()), 0.0)
        << "prepacked shape " << m << "x" << n << "x" << k;
  }
}

TEST(SrgemmKernels, AllVariantsMatchReferenceMinPlusFloat) {
  check_all_kernels<MinPlus<float>>(101, 0.15);
}

TEST(SrgemmKernels, AllVariantsMatchReferenceMinPlusInt32) {
  // Integral tropical ⊗ exercises the vsat_add sentinel/overflow path.
  check_all_kernels<MinPlus<std::int32_t>>(102, 0.15);
}

TEST(SrgemmKernels, IntegralSaturationWithNegativeWeights) {
  // inf ⊗ w must stay absorbing even for negative w; the SIMD vsat_add
  // pins infinite lanes explicitly (clamping alone would yield inf + w).
  using S = MinPlus<std::int32_t>;
  const std::size_t m = 37, n = 53, k = 29;
  Matrix<std::int32_t> A(m, k), B(k, n), C0(m, n);
  Rng rng(107);
  auto fill = [&](Matrix<std::int32_t>& mat) {
    for (std::size_t i = 0; i < mat.rows(); ++i)
      for (std::size_t j = 0; j < mat.cols(); ++j) {
        const double u = rng.next_double();
        mat(i, j) = u < 0.2 ? value_traits<std::int32_t>::infinity()
                            : static_cast<std::int32_t>(u * 100.0) - 40;
      }
  };
  fill(A);
  fill(B);
  fill(C0);
  auto expected = C0.clone();
  srgemm::multiply_reference<S>(A.view(), B.view(), expected.view());
  for (srgemm::Kernel kern : kAllKernels) {
    auto C = C0.clone();
    srgemm::multiply<S>(A.view(), B.view(), C.view(), variant_cfg(kern));
    EXPECT_EQ(max_abs_diff<std::int32_t>(expected.view(), C.view()), 0.0)
        << "kernel " << static_cast<int>(kern);
  }
}

TEST(SrgemmKernels, AllVariantsMatchReferenceMaxMin) {
  check_all_kernels<MaxMin<float>>(103, 0.1);
}

TEST(SrgemmKernels, AllVariantsMatchReferenceBoolOr) {
  using S = BoolOrAnd;
  for (auto [m, n, k] : {std::tuple{5, 67, 9}, std::tuple{64, 64, 64},
                         std::tuple{77, 130, 131}}) {
    Matrix<std::uint8_t> A(m, k), B(k, n), C0(m, n);
    Rng rng(104);
    auto fill = [&](Matrix<std::uint8_t>& mat) {
      for (std::size_t i = 0; i < mat.rows(); ++i)
        for (std::size_t j = 0; j < mat.cols(); ++j)
          mat(i, j) = rng.next_double() < 0.3 ? 1 : 0;
    };
    fill(A);
    fill(B);
    fill(C0);
    auto expected = C0.clone();
    srgemm::multiply_reference<S>(A.view(), B.view(), expected.view());
    for (srgemm::Kernel kern : kAllKernels) {
      auto C = C0.clone();
      srgemm::multiply<S>(A.view(), B.view(), C.view(), variant_cfg(kern));
      EXPECT_EQ(max_abs_diff<std::uint8_t>(expected.view(), C.view()), 0.0)
          << "kernel " << static_cast<int>(kern);
    }
  }
}

TEST(SrgemmKernels, AllVariantsOnStridedSubViews) {
  // Operands carved out of one backing matrix with ld >> cols — the
  // blocked-FW panel pattern — for every kernel plus the prepacked entry.
  using S = MinPlus<float>;
  auto big = random_matrix<float>(260, 260, 105, 0.05);
  auto A = big.sub(3, 7, 60, 41);
  auto B = big.sub(70, 11, 41, 83);
  auto C0 = random_matrix<float>(60, 83, 106);
  auto expected = C0.clone();
  srgemm::multiply_reference<S>(A, B, expected.view());
  for (srgemm::Kernel kern : kAllKernels) {
    auto C = C0.clone();
    srgemm::multiply<S>(A, B, C.view(), variant_cfg(kern));
    EXPECT_EQ(max_abs_diff<float>(expected.view(), C.view()), 0.0)
        << "kernel " << static_cast<int>(kern);
  }
  auto Cp = C0.clone();
  srgemm::multiply_prepacked<S>(A, B, Cp.view(),
                                variant_cfg(srgemm::Kernel::kSimd));
  EXPECT_EQ(max_abs_diff<float>(expected.view(), Cp.view()), 0.0);
}

TEST(SrgemmKernels, SimdParallelDriverMatchesSequential) {
  using S = MinPlus<float>;
  ThreadPool pool(4);
  auto A = random_matrix<float>(300, 90, 111, 0.05);
  auto B = random_matrix<float>(90, 210, 112, 0.05);
  auto C0 = random_matrix<float>(300, 210, 113);
  auto C1 = C0.clone();
  auto seq = variant_cfg(srgemm::Kernel::kSimd);
  auto par = seq;
  par.pool = &pool;
  srgemm::multiply<S>(A.view(), B.view(), C0.view(), seq);
  srgemm::multiply<S>(A.view(), B.view(), C1.view(), par);
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
}

TEST(SrgemmConfig, AutotuneIsDeterministic) {
  // Same machine profile + environment → same configuration, every call.
  const srgemm::Config a = srgemm::Config::tuned();
  const srgemm::Config b = srgemm::Config::tuned();
  EXPECT_EQ(a.tile_m, b.tile_m);
  EXPECT_EQ(a.tile_n, b.tile_n);
  EXPECT_EQ(a.tile_k, b.tile_k);
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.micro, b.micro);
  // Tuned tiles are sane: nonzero and bounded by the clamps in tuned().
  EXPECT_GE(a.tile_k, 32u);
  EXPECT_LE(a.tile_k, 512u);
  EXPECT_GE(a.tile_m, 32u);
  EXPECT_LE(a.tile_m, 512u);
}

TEST(Srgemm, EwiseAdd) {
  using S = MinPlus<float>;
  auto X = random_matrix<float>(13, 17, 51);
  auto C = random_matrix<float>(13, 17, 52);
  auto expected = C.clone();
  for (std::size_t i = 0; i < 13; ++i)
    for (std::size_t j = 0; j < 17; ++j)
      expected(i, j) = std::min(expected(i, j), X(i, j));
  srgemm::ewise_add<S>(X.view(), C.view());
  EXPECT_EQ(max_abs_diff<float>(expected.view(), C.view()), 0.0);
}

TEST(Srgemm, EwiseAddSimdAndPooled) {
  // Width crossing several vectors plus a fringe, strided views, and the
  // thread-pooled row partition — all must match the scalar oracle.
  using S = MinPlus<float>;
  ThreadPool pool(4);
  auto backing = random_matrix<float>(120, 150, 53);
  auto X = backing.sub(2, 3, 100, 131);
  auto C0 = random_matrix<float>(100, 131, 54);
  auto C1 = C0.clone();
  auto expected = C0.clone();
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 131; ++j)
      expected(i, j) = std::min(expected(i, j), X(i, j));
  srgemm::ewise_add<S>(X, C0.view());
  srgemm::ewise_add<S>(X, C1.view(), &pool);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), C0.view()), 0.0);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), C1.view()), 0.0);
}

TEST(Srgemm, FlopCountConvention) {
  EXPECT_DOUBLE_EQ(srgemm::flops(10, 20, 30), 2.0 * 10 * 20 * 30);
}

TEST(Srgemm, EmptyProductIsNoop) {
  using S = MinPlus<float>;
  Matrix<float> A(5, 0), B(0, 7);
  auto C = random_matrix<float>(5, 7, 61);
  auto before = C.clone();
  srgemm::multiply<S>(A.view(), B.view(), C.view());
  EXPECT_EQ(max_abs_diff<float>(before.view(), C.view()), 0.0);
}

}  // namespace
}  // namespace parfw
