#include "sssp/sssp.hpp"
#include "util/check.hpp"

namespace parfw::sssp {

SsspResult bellman_ford(const Graph& g, vertex_t source, bool* negative_cycle) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PARFW_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);

  SsspResult r;
  r.dist.assign(n, kInf);
  r.parent.assign(n, -1);
  r.dist[static_cast<std::size_t>(source)] = 0.0;
  if (negative_cycle != nullptr) *negative_cycle = false;

  // n-1 relaxation rounds with early exit on a quiescent round.
  for (std::size_t round = 0; round + 1 < n || n == 1; ++round) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      const double du = r.dist[static_cast<std::size_t>(e.src)];
      if (du == kInf) continue;
      const double nd = du + e.weight;
      if (nd < r.dist[static_cast<std::size_t>(e.dst)]) {
        r.dist[static_cast<std::size_t>(e.dst)] = nd;
        r.parent[static_cast<std::size_t>(e.dst)] = e.src;
        changed = true;
      }
    }
    if (!changed) return r;
    if (round + 2 >= n) break;
  }

  // One extra round: any further improvement witnesses a negative cycle.
  for (const Edge& e : g.edges()) {
    const double du = r.dist[static_cast<std::size_t>(e.src)];
    if (du == kInf) continue;
    if (du + e.weight < r.dist[static_cast<std::size_t>(e.dst)]) {
      if (negative_cycle != nullptr) *negative_cycle = true;
      break;
    }
  }
  return r;
}

}  // namespace parfw::sssp
