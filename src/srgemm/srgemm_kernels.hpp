// Kernel bodies for SRGEMM: naive oracle, cache-tiled + register-blocked
// kernel, and the argmin-tracking variant.
//
// The tiled kernel follows the canonical GotoBLAS decomposition adapted to
// semirings: C is walked in tile_m x tile_n macro tiles; for each macro
// tile the k dimension is consumed in tile_k panels; inside a panel a
// 4 x 16 register micro-kernel keeps 64 accumulators live across the
// k loop. min/+ has no FMA, matching the paper's observation that SRGEMM
// peak is half the FMA peak (§4.1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "util/matrix.hpp"

namespace parfw::srgemm::detail {

template <typename S>
void naive_kernel(MatrixView<const typename S::value_type> A,
                  MatrixView<const typename S::value_type> B,
                  MatrixView<typename S::value_type> C) {
  using T = typename S::value_type;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T acc = S::zero();
      for (std::size_t t = 0; t < k; ++t)
        acc = S::add(acc, S::mul(A(i, t), B(t, j)));
      C(i, j) = S::add(C(i, j), acc);
    }
  }
}

/// Micro-kernel: accumulate a MR x NR block of C over k in [0, kk).
/// MR*NR accumulators stay in registers; A is walked down a column strip
/// and B across a row strip. Plain scalar code — the compiler vectorises
/// the NR-wide inner statements (min/add map to vminps/vaddps).
template <typename S, std::size_t MR, std::size_t NR>
inline void micro_kernel(const typename S::value_type* a, std::size_t lda,
                         const typename S::value_type* b, std::size_t ldb,
                         typename S::value_type* c, std::size_t ldc,
                         std::size_t kk) {
  using T = typename S::value_type;
  T acc[MR][NR];
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t j = 0; j < NR; ++j) acc[i][j] = c[i * ldc + j];
  for (std::size_t t = 0; t < kk; ++t) {
    const T* brow = b + t * ldb;
    for (std::size_t i = 0; i < MR; ++i) {
      const T av = a[i * lda + t];
      for (std::size_t j = 0; j < NR; ++j)
        acc[i][j] = S::add(acc[i][j], S::mul(av, brow[j]));
    }
  }
  for (std::size_t i = 0; i < MR; ++i)
    for (std::size_t j = 0; j < NR; ++j) c[i * ldc + j] = acc[i][j];
}

/// Edge handler for fringe blocks smaller than the register tile.
template <typename S>
inline void edge_kernel(const typename S::value_type* a, std::size_t lda,
                        const typename S::value_type* b, std::size_t ldb,
                        typename S::value_type* c, std::size_t ldc,
                        std::size_t mm, std::size_t nn, std::size_t kk) {
  using T = typename S::value_type;
  for (std::size_t i = 0; i < mm; ++i) {
    for (std::size_t j = 0; j < nn; ++j) {
      T acc = c[i * ldc + j];
      for (std::size_t t = 0; t < kk; ++t)
        acc = S::add(acc, S::mul(a[i * lda + t], b[t * ldb + j]));
      c[i * ldc + j] = acc;
    }
  }
}

/// Packing variant: A macro-tiles and B panels are copied into contiguous
/// scratch before the register sweep (GotoBLAS-style). Wins when the
/// operands are strided views of a much wider matrix — the blocked-FW
/// panel shapes — by keeping the k-loop streams inside one page each.
template <typename S>
void tiled_kernel_packed(MatrixView<const typename S::value_type> A,
                         MatrixView<const typename S::value_type> B,
                         MatrixView<typename S::value_type> C,
                         std::size_t tile_m, std::size_t tile_n,
                         std::size_t tile_k) {
  using T = typename S::value_type;
  constexpr std::size_t MR = 4, NR = 16;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  AlignedBuffer<T> a_pack(tile_m * tile_k);
  AlignedBuffer<T> b_pack(tile_k * tile_n);

  for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
    const std::size_t kk = std::min(tile_k, k - k0);
    for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
      const std::size_t nj = std::min(tile_n, n - j0);
      // Pack B(k0:k0+kk, j0:j0+nj) contiguous (ldb = nj).
      for (std::size_t t = 0; t < kk; ++t)
        std::copy_n(B.data() + (k0 + t) * B.ld() + j0, nj,
                    b_pack.data() + t * nj);
      for (std::size_t i0 = 0; i0 < m; i0 += tile_m) {
        const std::size_t mi = std::min(tile_m, m - i0);
        // Pack A(i0:i0+mi, k0:k0+kk) contiguous (lda = kk).
        for (std::size_t i = 0; i < mi; ++i)
          std::copy_n(A.data() + (i0 + i) * A.ld() + k0, kk,
                      a_pack.data() + i * kk);
        std::size_t i = 0;
        for (; i + MR <= mi; i += MR) {
          std::size_t j = 0;
          for (; j + NR <= nj; j += NR)
            micro_kernel<S, MR, NR>(a_pack.data() + i * kk, kk,
                                    b_pack.data() + j, nj,
                                    C.data() + (i0 + i) * C.ld() + (j0 + j),
                                    C.ld(), kk);
          if (j < nj)
            edge_kernel<S>(a_pack.data() + i * kk, kk, b_pack.data() + j, nj,
                           C.data() + (i0 + i) * C.ld() + (j0 + j), C.ld(),
                           MR, nj - j, kk);
        }
        if (i < mi)
          edge_kernel<S>(a_pack.data() + i * kk, kk, b_pack.data(), nj,
                         C.data() + (i0 + i) * C.ld() + j0, C.ld(), mi - i,
                         nj, kk);
      }
    }
  }
}

template <typename S>
void tiled_kernel(MatrixView<const typename S::value_type> A,
                  MatrixView<const typename S::value_type> B,
                  MatrixView<typename S::value_type> C, std::size_t tile_m,
                  std::size_t tile_n, std::size_t tile_k) {
  using T = typename S::value_type;
  constexpr std::size_t MR = 4, NR = 16;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();

  for (std::size_t i0 = 0; i0 < m; i0 += tile_m) {
    const std::size_t mi = std::min(tile_m, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += tile_n) {
      const std::size_t nj = std::min(tile_n, n - j0);
      for (std::size_t k0 = 0; k0 < k; k0 += tile_k) {
        const std::size_t kk = std::min(tile_k, k - k0);
        // Register-tiled sweep of the (mi x nj) macro tile.
        std::size_t i = 0;
        for (; i + MR <= mi; i += MR) {
          const T* a = A.data() + (i0 + i) * A.ld() + k0;
          std::size_t j = 0;
          for (; j + NR <= nj; j += NR) {
            micro_kernel<S, MR, NR>(a, A.ld(),
                                    B.data() + k0 * B.ld() + (j0 + j), B.ld(),
                                    C.data() + (i0 + i) * C.ld() + (j0 + j),
                                    C.ld(), kk);
          }
          if (j < nj)
            edge_kernel<S>(a, A.ld(), B.data() + k0 * B.ld() + (j0 + j),
                           B.ld(), C.data() + (i0 + i) * C.ld() + (j0 + j),
                           C.ld(), MR, nj - j, kk);
        }
        if (i < mi)
          edge_kernel<S>(A.data() + (i0 + i) * A.ld() + k0, A.ld(),
                         B.data() + k0 * B.ld() + j0, B.ld(),
                         C.data() + (i0 + i) * C.ld() + j0, C.ld(), mi - i,
                         nj, kk);
      }
    }
  }
}

template <typename S>
void argmin_kernel(MatrixView<const typename S::value_type> A,
                   MatrixView<const typename S::value_type> B,
                   MatrixView<typename S::value_type> C,
                   MatrixView<std::int64_t> Arg, std::int64_t arg_offset) {
  using T = typename S::value_type;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T best = C(i, j);
      std::int64_t arg = -1;
      for (std::size_t t = 0; t < k; ++t) {
        const T cand = S::mul(A(i, t), B(t, j));
        if (S::less_add(cand, best)) {
          best = cand;
          arg = static_cast<std::int64_t>(t) + arg_offset;
        }
      }
      C(i, j) = best;
      if (arg >= 0) Arg(i, j) = arg;
    }
  }
}

}  // namespace parfw::srgemm::detail
