// Graph file I/O: a simple edge-list text format and DIMACS .gr.
//
// Edge-list format: first non-comment line "n m", then m lines
// "src dst weight" (0-based). '#' starts a comment. DIMACS .gr is the
// 9th DIMACS shortest-path challenge format (1-based, 'a' arc lines).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace parfw::io {

Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

Graph read_dimacs(std::istream& in);
void write_dimacs(const Graph& g, std::ostream& out);

}  // namespace parfw::io
