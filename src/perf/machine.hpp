// Machine description for the performance models and the discrete-event
// simulator (DESIGN.md §1: the Summit-scale substitute).
//
// Numbers for Summit come from the paper's §5.1.1 plus public system
// documentation; anything calibrated rather than published is marked.
#pragma once

namespace parfw::perf {

struct MachineConfig {
  // --- compute -----------------------------------------------------------
  /// SRGEMM rate per GPU in flop/s (paper §4.1: 6.8 TF/s single precision
  /// on V100; peak without FMA is 7.85 TF/s).
  double srgemm_flops = 6.8e12;
  /// Peak no-FMA rate per GPU (used for "percent of peak" reporting).
  double srgemm_peak_flops = 7.85e12;
  /// Scalar (non-SRGEMM) FW rate per rank for a CPU-side DiagUpdate.
  double scalar_flops = 8e9;
  int gpus_per_node = 6;
  int ranks_per_gpu = 2;  ///< the paper runs 2 MPI ranks per GPU (§5.3.1)

  // --- network -----------------------------------------------------------
  /// Per-node injection bandwidth, bytes/s each direction (§5.1.1: 25 GB/s).
  double nic_bw = 25e9;
  /// Rank-to-rank bandwidth inside a node (NVLink/X-bus path), bytes/s.
  double intranode_bw = 75e9;
  double wire_latency = 1.5e-6;       ///< internode one-way latency, s
  double intranode_latency = 0.3e-6;  ///< on-node message latency, s

  // --- host-device -------------------------------------------------------
  /// Host<->GPU link per GPU, bytes/s each direction (NVLink-2: the paper
  /// assumes 50 GB/s effective in §5.3.1).
  double hd_bw = 50e9;
  /// CPU-DRAM bandwidth for a hostUpdate stream that owns a socket (the
  /// single-GPU microbenchmark regime, Figures 5-6).
  double dram_bw = 135e9;
  /// Per-rank DRAM + host-link share in the distributed offload run,
  /// where 12 ranks contend for two sockets. CALIBRATED so the tuned
  /// Me-ParallelFw lands at 70-80% of Co-ParallelFw (paper §5.4 says 80%;
  /// see EXPERIMENTS.md for the residual gap discussion).
  double dram_bw_shared = 45e9;

  // --- memory ------------------------------------------------------------
  double gpu_mem_bytes = 16e9;    ///< HBM2 per V100
  double host_mem_bytes = 512e9;  ///< DDR4 per node
  /// Fraction of aggregate GPU memory usable for the local distance matrix
  /// (the rest goes to panels, broadcast buffers, CUTLASS workspace, and
  /// the 2-ranks-per-GPU duplication). CALIBRATED so the largest feasible
  /// in-GPU problem on 64 nodes is the paper's observed 524,288 vertices.
  double gpu_mem_usable_frac = 0.18;

  int word_bytes = 4;  ///< single precision throughout (as in the paper)

  /// Network-noise model for the DES: each internode transfer's duration
  /// is inflated by a deterministic pseudo-random factor in
  /// [1, 1 + net_jitter] (congestion / slow links, §3.3's scenario).
  double net_jitter = 0.0;

  int ranks_per_node() const { return gpus_per_node * ranks_per_gpu; }
  /// SRGEMM rate available to one rank (two ranks share one GPU).
  double rank_flops() const { return srgemm_flops / ranks_per_gpu; }

  /// ORNL Summit (the paper's testbed).
  static MachineConfig summit();
};

}  // namespace parfw::perf
