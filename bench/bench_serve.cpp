// Serving-tier benchmark (DESIGN.md §4.12): publish one solved instance
// into an in-memory tile manifest, then replay synthetic query workloads
// through PathService and report tail latency and cache behaviour.
//
// Two workloads hit the same published manifest (n=768, b=64, 2x2 grid,
// paths tracked), each with a fresh service + registry so the numbers
// are per-workload:
//   * uniform  — every (src, dst) equally likely: the cache-hostile
//     floor, residency is pure capacity share;
//   * zipf-1.2 — skewed sources/destinations: the case the 2Q-style
//     second-touch admission is shaped for, hot block rows stay resident.
//
// The claims gated by BENCH_serve.json (scripts/check.sh --serve):
//   * p99 query latency does not regress (one-sided, loose tolerance —
//     wall-clock on shared CI hardware is noisy);
//   * the cache hit rates do not DRIFT (two-sided, tight tolerance —
//     cache decisions are deterministic under a fixed workload seed, so
//     any movement is a policy change, not noise);
//   * bytes_peak never exceeds the configured budget — enforced right
//     here with a hard exit, not a diffed number.
//
// PARFW_BENCH_JSON=FILE writes the serve/* rows this baseline pins.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/apsp.hpp"
#include "fig_common.hpp"
#include "graph/generators.hpp"
#include "serve/path_service.hpp"
#include "serve/publish.hpp"
#include "serve/workload.hpp"
#include "telemetry/metrics.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace parfw;

namespace {

using S = MinPlus<float>;

constexpr std::size_t kN = 768;
constexpr std::size_t kBlock = 64;
constexpr std::size_t kQueries = 30000;
// ~22% of the published footprint (144 value tiles x 16 KiB + 144 pred
// tiles x 32 KiB = 6.75 MiB): enough pressure that uniform traffic
// thrashes while the Zipf hot set fits.
constexpr std::size_t kBudget = std::size_t{3} << 19;  // 1.5 MiB

struct WorkloadResult {
  telemetry::HistogramSummary latency;
  serve::TileCacheStats cache;
  double wall_seconds = 0.0;
  // Per-stage latency attribution (qtrace): Σ seconds per stage and its
  // share of Σ query latency. route/cache/io/walk tile each query span,
  // so the shares sum to ~1 — checked below as the reconciliation gate.
  double stage_seconds[serve::kNumStages] = {};
  double stage_share[serve::kNumStages] = {};
};

WorkloadResult run_workload(const MemoryCheckpointStore& store,
                            double zipf_s) {
  serve::WorkloadSpec spec;
  spec.n = kN;
  spec.queries = kQueries;
  spec.zipf_s = zipf_s;
  spec.seed = 17;
  const QueryBatch batch = serve::make_workload(spec);

  telemetry::Registry reg;
  serve::ServeOptions opt;
  opt.cache_budget_bytes = kBudget;
  opt.admission = serve::CacheAdmission::kSecondTouch;
  opt.metrics = &reg;
  serve::PathService<S> service(store, opt);

  WorkloadResult r;
  Timer wall;
  const auto results = service.answer(batch);
  r.wall_seconds = wall.seconds();
  if (results.size() != batch.size()) {
    std::fprintf(stderr, "answer() dropped queries\n");
    std::exit(1);
  }
  r.latency = reg.histogram("serve.query.latency").summary();
  r.cache = service.cache_stats();
  for (int s = 0; s + 1 < serve::kNumStages; ++s) {  // gather: sharded only
    const std::string name =
        std::string("serve.stage.") +
        serve::stage_name(static_cast<serve::Stage>(s)) + ".latency";
    r.stage_seconds[s] = reg.histogram(name).sum();
    if (r.latency.sum > 0.0) r.stage_share[s] = r.stage_seconds[s] / r.latency.sum;
  }
  return r;
}

}  // namespace

int main() {
  bench::header(
      "serving tier: tile-backed path queries (PathService + TileCache)",
      "Not a paper figure: the serving layer answers point-to-point path\n"
      "queries from the published tile manifest without materialising the\n"
      "n x n matrices (paper §1 motivates APSP for routing services; this\n"
      "bench pins the query-side cost of that deployment mode).");

  std::printf("solving + publishing n=%zu b=%zu (2x2 grid, paths)...\n", kN,
              kBlock);
  const Graph g =
      gen::erdos_renyi(static_cast<vertex_t>(kN), /*density=*/0.05, /*seed=*/5);
  ApspOptions aopt;
  aopt.algorithm = ApspAlgorithm::kBlocked;
  aopt.block_size = kBlock;
  aopt.track_paths = true;
  Timer solve_t;
  const auto result = apsp<S>(g, aopt);
  MemoryCheckpointStore store;
  serve::publish_result(store, result, kBlock, /*grid_rows=*/2,
                        /*grid_cols=*/2);
  std::printf("solved + published in %.2f s; cache budget %.1f MiB\n\n",
              solve_t.seconds(), kBudget / (1024.0 * 1024.0));

  struct Case {
    const char* name;
    double zipf_s;
  };
  const Case cases[] = {{"uniform", 0.0}, {"zipf1.2", 1.2}};

  bench::BenchJson json;
  Table t({"workload", "queries", "p50 us", "p99 us", "hit %", "io %",
           "walk %", "evictions", "peak MiB", "qps"});
  bool budget_ok = true;
  bool reconciled = true;
  double hit_uniform = 0.0, hit_zipf = 0.0;
  for (const Case& c : cases) {
    const WorkloadResult r = run_workload(store, c.zipf_s);
    budget_ok = budget_ok && r.cache.bytes_peak <= kBudget;
    (c.zipf_s > 0.0 ? hit_zipf : hit_uniform) = r.cache.hit_rate();
    t.add_row({c.name, std::to_string(kQueries),
               Table::num(r.latency.p50 * 1e6, 2),
               Table::num(r.latency.p99 * 1e6, 2),
               Table::num(100.0 * r.cache.hit_rate(), 1),
               Table::num(100.0 * r.stage_share[static_cast<int>(
                                      serve::Stage::kIo)], 1),
               Table::num(100.0 * r.stage_share[static_cast<int>(
                                      serve::Stage::kWalk)], 1),
               std::to_string(r.cache.evictions),
               Table::num(r.cache.bytes_peak / (1024.0 * 1024.0), 2),
               Table::num(kQueries / r.wall_seconds, 0)});
    const std::string base = std::string("serve/") + c.name;
    json.add(base + "_p50", r.latency.p50, "latency_us", r.latency.p50 * 1e6);
    json.add(base + "_p99", r.latency.p99, "latency_us", r.latency.p99 * 1e6);
    json.add(base + "_hit_rate", 0.0, "hit_rate", r.cache.hit_rate());
    // Stage attribution rows: real_time 0 keeps them out of the one-sided
    // wall-clock gate; the dedicated two-sided "share" compare pins them.
    double covered = 0.0;
    for (int s = 0; s + 1 < serve::kNumStages; ++s) {
      json.add(base + "_stage_" +
                   serve::stage_name(static_cast<serve::Stage>(s)),
               0.0, "share", r.stage_share[s]);
      covered += r.stage_share[s];
    }
    // Reconciliation: the stage intervals tile each query span, so their
    // summed shares must land within 1% of the latency histogram's sum.
    reconciled = reconciled && covered > 0.99 && covered < 1.01;
    std::printf("  %s stage shares sum to %.4f of serve.query.latency\n",
                c.name, covered);
  }
  std::printf("%s", t.str().c_str());

  std::printf(
      "\nchecks:\n"
      "  bytes_peak <= budget (both workloads)  %s\n"
      "  zipf hit rate > uniform hit rate       %s (%.1f%% vs %.1f%%)\n"
      "  stage sums reconcile within 1%%         %s\n",
      budget_ok ? "yes" : "NO",
      hit_zipf > hit_uniform ? "yes" : "NO", 100.0 * hit_zipf,
      100.0 * hit_uniform, reconciled ? "yes" : "NO");
  if (!budget_ok) {
    std::fprintf(stderr, "tile cache exceeded its byte budget\n");
    return 1;
  }
  if (hit_zipf <= hit_uniform) {
    std::fprintf(stderr, "skewed workload did not beat the uniform floor\n");
    return 1;
  }
  if (!reconciled) {
    std::fprintf(stderr,
                 "per-stage latency sums do not reconcile with "
                 "serve.query.latency\n");
    return 1;
  }
  bench::footer(
      "tail latency stays flat while the Zipf hot set turns capacity misses "
      "into hits under the same byte budget");
  return 0;
}
