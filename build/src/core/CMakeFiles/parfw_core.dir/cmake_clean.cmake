file(REMOVE_RECURSE
  "CMakeFiles/parfw_core.dir/apsp.cpp.o"
  "CMakeFiles/parfw_core.dir/apsp.cpp.o.d"
  "libparfw_core.a"
  "libparfw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
