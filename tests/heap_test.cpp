// Pairing-heap tests: heap invariants, decrease-key semantics, randomised
// comparison against std::priority_queue behaviour, and the decrease-key
// Dijkstra against the lazy-deletion reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/generators.hpp"
#include "sssp/pairing_heap.hpp"
#include "sssp/sssp.hpp"
#include "util/rng.hpp"

namespace parfw::sssp {
namespace {

TEST(PairingHeap, PushPopSortedOrder) {
  PairingHeap h(10);
  const double keys[] = {5.0, 1.0, 9.0, 3.0, 7.0};
  for (std::size_t i = 0; i < 5; ++i) h.push(i, keys[i]);
  std::vector<double> out;
  while (!h.empty()) out.push_back(h.key(h.pop()));
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 5u);
}

TEST(PairingHeap, DecreaseKeyPromotes) {
  PairingHeap h(4);
  h.push(0, 10.0);
  h.push(1, 20.0);
  h.push(2, 30.0);
  h.decrease_key(2, 5.0);
  EXPECT_EQ(h.pop(), 2u);
  EXPECT_EQ(h.pop(), 0u);
  EXPECT_EQ(h.pop(), 1u);
}

TEST(PairingHeap, DecreaseKeyIgnoresIncreases) {
  PairingHeap h(2);
  h.push(0, 1.0);
  h.push(1, 2.0);
  h.decrease_key(1, 50.0);  // not a decrease: no-op
  EXPECT_EQ(h.key(1), 2.0);
  EXPECT_EQ(h.pop(), 0u);
}

TEST(PairingHeap, ContainsTracksMembership) {
  PairingHeap h(3);
  EXPECT_FALSE(h.contains(1));
  h.push(1, 4.0);
  EXPECT_TRUE(h.contains(1));
  h.pop();
  EXPECT_FALSE(h.contains(1));
}

TEST(PairingHeap, Reinsertion) {
  PairingHeap h(2);
  h.push(0, 3.0);
  h.pop();
  h.push(0, 1.0);  // ids can come back after pop
  EXPECT_EQ(h.pop(), 0u);
}

TEST(PairingHeap, GuardsMisuse) {
  PairingHeap h(2);
  EXPECT_THROW(h.pop(), check_error);
  EXPECT_THROW(h.decrease_key(0, 1.0), check_error);
  h.push(0, 1.0);
  EXPECT_THROW(h.push(0, 2.0), check_error);
}

TEST(PairingHeap, RandomisedAgainstStdPriorityQueue) {
  // Interleave pushes, pops and decrease-keys; compare pop sequences
  // against a reference that re-sorts after decreases.
  Rng rng(123);
  const std::size_t n = 300;
  PairingHeap h(n);
  std::vector<double> key(n, 0.0);
  std::vector<bool> alive(n, false);
  std::size_t next_id = 0;

  auto reference_min = [&]() {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i)
      if (alive[i] && (best == n || key[i] < key[best])) best = i;
    return best;
  };

  for (int step = 0; step < 2000; ++step) {
    const auto action = rng.next_below(3);
    if (action == 0 && next_id < n) {
      key[next_id] = rng.next_double() * 1000;
      h.push(next_id, key[next_id]);
      alive[next_id] = true;
      ++next_id;
    } else if (action == 1 && !h.empty()) {
      const std::size_t got = h.pop();
      const std::size_t want = reference_min();
      ASSERT_EQ(key[got], key[want]);  // equal keys may tie-break anyhow
      alive[got] = false;
    } else if (action == 2) {
      // decrease a random live id
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < n; ++i)
        if (alive[i]) live.push_back(i);
      if (live.empty()) continue;
      const std::size_t id = live[rng.next_below(live.size())];
      const double nk = key[id] * rng.next_double();
      h.decrease_key(id, nk);
      key[id] = std::min(key[id], nk);
    }
  }
  // Drain and verify global order.
  double last = -1;
  while (!h.empty()) {
    const double k = h.key(h.pop());
    EXPECT_GE(k, last);
    last = k;
  }
}

TEST(DijkstraDecreaseKey, MatchesLazyDijkstra) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto g = gen::erdos_renyi(150, 0.06, seed);
    for (vertex_t src : {0, 37, 149}) {
      const auto a = dijkstra(g, src);
      const auto b = dijkstra_decrease_key(g, src);
      ASSERT_EQ(a.dist.size(), b.dist.size());
      for (std::size_t v = 0; v < a.dist.size(); ++v)
        EXPECT_EQ(a.dist[v], b.dist[v]) << "v=" << v << " seed=" << seed;
    }
  }
}

TEST(DijkstraDecreaseKey, GridGraph) {
  const auto g = gen::grid2d(9, 7, 61);
  const auto a = dijkstra(g, 5);
  const auto b = dijkstra_decrease_key(g, 5);
  for (std::size_t v = 0; v < a.dist.size(); ++v)
    EXPECT_EQ(a.dist[v], b.dist[v]);
}

TEST(DijkstraDecreaseKey, NegativeWeightThrows) {
  Graph g(2);
  g.add_edge(0, 1, -0.5);
  EXPECT_THROW(dijkstra_decrease_key(g, 0), check_error);
}

}  // namespace
}  // namespace parfw::sssp
