# Empty compiler generated dependencies file for parfw_devsim.
# This may be replaced when dependencies are built.
