# Empty compiler generated dependencies file for parfw_dist.
# This may be replaced when dependencies are built.
