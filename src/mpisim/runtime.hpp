// In-process message-passing runtime — the MPI substitute (DESIGN.md §1).
//
// Ranks are OS threads sharing one World object. The World owns every
// rank's mailbox (matched by communicator context, global source rank and
// tag, FIFO within a key), a node model mapping ranks to "nodes" for NIC
// traffic accounting, and the barrier/context-id machinery that backs
// communicators.
//
// Semantics mirror the MPI subset the paper's algorithms use:
//   * eager buffered send (send returns once the payload is copied),
//   * blocking receive with (source, tag) matching,
//   * nonblocking isend/irecv + wait,
//   * communicator split (process rows/columns of the 2-D grid),
//   * tree broadcast (library bcast) and ring broadcast (the paper's
//     custom PanelBcast collective, §3.3) — see collectives.hpp.
//
// Resilience (DESIGN.md "Resilience"): when RuntimeOptions carries a
// FaultPlan, deliveries grow a reliability envelope — per-flow sequence
// numbers, receiver-side in-order delivery, duplicate discard, and a
// simulated retransmission timer (bounded exponential backoff from
// send_timeout, per-message budget max_retries) that re-drives dropped
// messages. Rank crashes propagate through World::abort: every blocked
// peer is woken and throws RankFailure instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpisim/fault.hpp"
#include "mpisim/message.hpp"
#include "sched/trace.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::mpi {

class Comm;

/// Maps ranks to nodes for traffic accounting (paper §3.4.1: all ranks on
/// a node share one NIC). Default: every rank is its own node.
struct NodeModel {
  /// node_of[r] = node id of global rank r; empty = identity.
  std::vector<int> node_of;

  int node(rank_t r) const {
    return node_of.empty() ? r : node_of[static_cast<std::size_t>(r)];
  }
  /// Contiguous packing: ranks [0..Q) on node 0, [Q..2Q) on node 1, ...
  static NodeModel contiguous(int world_size, int ranks_per_node);
};

/// Per-run communication statistics. messages / bytes_* count LOGICAL
/// sends (one per send call, at first delivery attempt) so they stay
/// exactly DES-comparable even under injected faults; the resilience
/// counters below account the fault/recovery machinery separately.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_internode = 0;  ///< crossing a node boundary
  /// max over nodes of (bytes in + bytes out through the NIC)
  std::uint64_t max_nic_bytes = 0;
  std::vector<std::uint64_t> nic_bytes;  ///< per node

  // --- resilience counters (zero unless a FaultPlan / checkpointing ran) ---
  std::uint64_t drops_injected = 0;   ///< delivery attempts lost
  std::uint64_t dups_injected = 0;    ///< extra copies delivered
  std::uint64_t delays_injected = 0;  ///< deliveries held back
  std::uint64_t retries = 0;          ///< retransmission attempts driven
  std::uint64_t dup_discarded = 0;    ///< stale duplicates dropped at recv
  std::uint64_t retry_bytes = 0;      ///< payload bytes retransmitted
  std::uint64_t checkpoints = 0;      ///< rank snapshots taken
  std::uint64_t checkpoint_bytes = 0; ///< bytes written to the store
  double checkpoint_seconds = 0.0;    ///< wall time spent snapshotting

  /// Accumulate another run's statistics (the supervision loop merges
  /// every attempt, crashed ones included, into one whole-run view).
  void merge(const TrafficStats& o);
};

struct RuntimeOptions {
  NodeModel node_model{};
  /// When set, every message delivery is recorded as an instant event
  /// ("msg", rank = source, bytes = payload size, EventKind::kSend with
  /// the flow coordinate ctx/peer/tag/seq) and every matched receive as a
  /// "recv" span (EventKind::kRecv, wait-entry to match, carrying the
  /// matched message's seq and retransmission attempt) on the shared
  /// sched::now_seconds() timeline; injected faults and retransmissions
  /// are recorded as "drop"/"dup"/"delay"/"retry" instants. The kSend /
  /// kRecv pairs are what the causal analysis layer (src/causal/) joins
  /// into happens-before message edges. Sinks must be thread-safe.
  sched::TraceSink* trace = nullptr;
  /// Seeded deterministic fault injection (off by default).
  FaultPlan faults{};
  /// Reliability envelope: per-message retransmission budget and initial
  /// timeout (doubles per retry, bounded). Only consulted when
  /// faults.message_faults() — fault-free runs keep the fast wait path.
  int max_retries = 6;
  double send_timeout = 0.01;  ///< seconds
  /// When set, Runtime::run copies the world's final TrafficStats here
  /// even when a rank failure makes it throw — a crashed attempt's
  /// retries/checkpoint counters stay observable to the supervisor.
  TrafficStats* stats_out = nullptr;
  /// When set, the world records live series into this registry:
  /// mpi.sends / mpi.send_bytes counters, mpi.msg_bytes and
  /// mpi.send_seconds / mpi.recv_wait_seconds latency histograms, and
  /// mpi.retry_msg_bytes for the reliability envelope (its count is the
  /// retry count; payload distribution per retransmission). The
  /// collectives add per-collective byte histograms (mpi.coll_bytes,
  /// labelled coll=tree|ring). TrafficStats stays the cheap back-compat
  /// aggregate; telemetry/adapters.hpp publishes it into a registry at
  /// end of run (under a distinct label set — the adapter gauges reuse
  /// the mpi.retries / mpi.retry_bytes names).
  telemetry::Registry* metrics = nullptr;
};

/// Shared state of one run. Created by Runtime::run; ranks hold a pointer.
class World {
 public:
  World(int size, NodeModel node_model, sched::TraceSink* trace = nullptr);
  World(int size, const RuntimeOptions& opt)
      : World(size, opt.node_model, opt.trace) {
    faults_ = opt.faults;
    max_retries_ = opt.max_retries;
    send_timeout_ = opt.send_timeout;
    set_metrics(opt.metrics);
  }

  int size() const { return size_; }
  const NodeModel& node_model() const { return node_model_; }
  /// Trace sink of this run (nullptr when tracing is off).
  sched::TraceSink* trace() const { return trace_; }
  /// Fault plan of this run (default-constructed = no faults).
  const FaultPlan& faults() const { return faults_; }

  /// Deliver a message (eager copy already made by the caller).
  void deliver(const MatchKey& key, rank_t dst, Message msg);
  /// Block until a message matching `key` is available at `dst`; pop it.
  /// Under an active fault plan this runs the reliability envelope:
  /// in-seq delivery, duplicate discard, delay honouring, and timeout
  /// re-drive of dropped messages. Throws RankFailure if the world is
  /// aborted while waiting or the retry budget is exhausted.
  Message await(const MatchKey& key, rank_t dst);

  /// World-wide barrier over all ranks (sense-reversing, generation count).
  void barrier();
  /// Barrier over an arbitrary subgroup, identified by the group's context
  /// id (each communicator has one) and size.
  void group_barrier(std::uint64_t context, int group_size);

  /// Allocate a fresh communicator context id (collective-safe: ids are
  /// global and allocation order is synchronised by the callers' barrier).
  std::uint64_t next_context() { return next_context_.fetch_add(1); }

  /// Kill the world: wake every rank blocked in await/group_barrier; they
  /// throw RankFailure. First abort wins. Runtime::run calls this when any
  /// rank's body throws, so one crash can never deadlock the others.
  void abort(int failed_rank, const std::string& reason);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Checkpoint accounting (surfaced through traffic()).
  void add_checkpoint(std::uint64_t bytes, double seconds);

  TrafficStats traffic() const;

  /// Metrics registry of this run (nullptr when metrics are off).
  telemetry::Registry* metrics() const { return metrics_; }
  /// Attach a registry; resolves the hot-path handles once. Call before
  /// rank threads start (Runtime::run does).
  void set_metrics(telemetry::Registry* reg);

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<MatchKey, std::deque<Message>, MatchKeyHash> queues;
    // Reliability envelope state (touched only under an active fault
    // plan). Dropped messages park in `lost` until the receiver's
    // retransmission timer re-drives them into `queues`.
    std::unordered_map<MatchKey, std::uint64_t, MatchKeyHash> next_seq;
    std::unordered_map<MatchKey, std::uint64_t, MatchKeyHash> expected;
    std::unordered_map<MatchKey, std::deque<Message>, MatchKeyHash> lost;
  };

  [[noreturn]] void throw_aborted() const;
  void count_fault(std::uint64_t TrafficStats::* counter, const char* name,
                   rank_t rank, std::int64_t bytes);
  /// Record the kRecv trace event for a matched message (no-op without a
  /// sink). t_wait0 is the receiver's wait-entry timestamp.
  void record_recv(const MatchKey& key, rank_t dst, const Message& msg,
                   double t_wait0);

  int size_;
  NodeModel node_model_;
  sched::TraceSink* trace_ = nullptr;
  FaultPlan faults_{};
  int max_retries_ = 6;
  double send_timeout_ = 0.01;
  telemetry::Registry* metrics_ = nullptr;
  // Hot-path metric handles, resolved once in set_metrics (registry
  // handles are stable, so deliveries/awaits touch only atomics).
  struct MetricHandles {
    telemetry::Counter* sends = nullptr;
    telemetry::Counter* send_bytes = nullptr;
    telemetry::Histogram* msg_bytes = nullptr;
    telemetry::Histogram* send_seconds = nullptr;
    telemetry::Histogram* recv_wait_seconds = nullptr;
    telemetry::Histogram* retry_msg_bytes = nullptr;
  };
  MetricHandles mh_{};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::atomic<bool> aborted_{false};
  std::atomic<bool> abort_claimed_{false};
  int aborted_rank_ = -1;
  std::string abort_reason_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;

  struct GroupBarrier {
    int count = 0;
    std::uint64_t gen = 0;
  };
  std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::unordered_map<std::uint64_t, GroupBarrier> group_barriers_;

  std::atomic<std::uint64_t> next_context_{1};

  mutable std::mutex traffic_mu_;
  TrafficStats traffic_{};
};

/// Entry point: spawn `world_size` rank threads, run `fn(world_comm)` on
/// each, join, and return the aggregated traffic statistics. Any exception
/// thrown by a rank aborts the world (peers blocked in receives/barriers
/// wake and throw RankFailure) and is rethrown (first one wins) after all
/// threads joined.
class Runtime {
 public:
  static TrafficStats run(int world_size,
                          const std::function<void(Comm&)>& fn,
                          const RuntimeOptions& opt = {});
};

}  // namespace parfw::mpi
