file(REMOVE_RECURSE
  "../bench/bench_functional_dist"
  "../bench/bench_functional_dist.pdb"
  "CMakeFiles/bench_functional_dist.dir/bench_functional_dist.cpp.o"
  "CMakeFiles/bench_functional_dist.dir/bench_functional_dist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
