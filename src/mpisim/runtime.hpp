// In-process message-passing runtime — the MPI substitute (DESIGN.md §1).
//
// Ranks are OS threads sharing one World object. The World owns every
// rank's mailbox (matched by communicator context, global source rank and
// tag, FIFO within a key), a node model mapping ranks to "nodes" for NIC
// traffic accounting, and the barrier/context-id machinery that backs
// communicators.
//
// Semantics mirror the MPI subset the paper's algorithms use:
//   * eager buffered send (send returns once the payload is copied),
//   * blocking receive with (source, tag) matching,
//   * nonblocking isend/irecv + wait,
//   * communicator split (process rows/columns of the 2-D grid),
//   * tree broadcast (library bcast) and ring broadcast (the paper's
//     custom PanelBcast collective, §3.3) — see collectives.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mpisim/message.hpp"
#include "sched/trace.hpp"

namespace parfw::mpi {

class Comm;

/// Maps ranks to nodes for traffic accounting (paper §3.4.1: all ranks on
/// a node share one NIC). Default: every rank is its own node.
struct NodeModel {
  /// node_of[r] = node id of global rank r; empty = identity.
  std::vector<int> node_of;

  int node(rank_t r) const {
    return node_of.empty() ? r : node_of[static_cast<std::size_t>(r)];
  }
  /// Contiguous packing: ranks [0..Q) on node 0, [Q..2Q) on node 1, ...
  static NodeModel contiguous(int world_size, int ranks_per_node);
};

/// Per-run communication statistics.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_internode = 0;  ///< crossing a node boundary
  /// max over nodes of (bytes in + bytes out through the NIC)
  std::uint64_t max_nic_bytes = 0;
  std::vector<std::uint64_t> nic_bytes;  ///< per node
};

struct RuntimeOptions {
  NodeModel node_model{};
  /// When set, every message delivery is recorded as an instant event
  /// ("msg", rank = source, bytes = payload size) on the shared
  /// sched::now_seconds() timeline. Sinks must be thread-safe.
  sched::TraceSink* trace = nullptr;
};

/// Shared state of one run. Created by Runtime::run; ranks hold a pointer.
class World {
 public:
  World(int size, NodeModel node_model, sched::TraceSink* trace = nullptr);

  int size() const { return size_; }
  const NodeModel& node_model() const { return node_model_; }
  /// Trace sink of this run (nullptr when tracing is off).
  sched::TraceSink* trace() const { return trace_; }

  /// Deliver a message (eager copy already made by the caller).
  void deliver(const MatchKey& key, rank_t dst, Message msg);
  /// Block until a message matching `key` is available at `dst`; pop it.
  Message await(const MatchKey& key, rank_t dst);

  /// World-wide barrier over all ranks (sense-reversing, generation count).
  void barrier();
  /// Barrier over an arbitrary subgroup, identified by the group's context
  /// id (each communicator has one) and size.
  void group_barrier(std::uint64_t context, int group_size);

  /// Allocate a fresh communicator context id (collective-safe: ids are
  /// global and allocation order is synchronised by the callers' barrier).
  std::uint64_t next_context() { return next_context_.fetch_add(1); }

  TrafficStats traffic() const;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<MatchKey, std::deque<Message>, MatchKeyHash> queues;
  };

  int size_;
  NodeModel node_model_;
  sched::TraceSink* trace_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;

  struct GroupBarrier {
    int count = 0;
    std::uint64_t gen = 0;
  };
  std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::unordered_map<std::uint64_t, GroupBarrier> group_barriers_;

  std::atomic<std::uint64_t> next_context_{1};

  mutable std::mutex traffic_mu_;
  TrafficStats traffic_{};
};

/// Entry point: spawn `world_size` rank threads, run `fn(world_comm)` on
/// each, join, and return the aggregated traffic statistics. Any exception
/// thrown by a rank is rethrown (first one wins) after all threads joined.
class Runtime {
 public:
  static TrafficStats run(int world_size,
                          const std::function<void(Comm&)>& fn,
                          const RuntimeOptions& opt = {});
};

}  // namespace parfw::mpi
