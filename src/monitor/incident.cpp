#include "monitor/incident.hpp"

#include <fstream>
#include <sstream>

#include "causal/graph.hpp"

namespace parfw::monitor {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

IncidentLog::IncidentLog(IncidentConfig cfg, sched::RingTraceSink* ring)
    : cfg_(std::move(cfg)), ring_(ring) {}

std::string IncidentLog::report_path() const {
  return cfg_.path_prefix.empty() ? std::string{}
                                  : cfg_.path_prefix + ".incidents.jsonl";
}

bool IncidentLog::fire(const std::string& kind, double t, int hint_rank,
                       const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (incidents_.size() >= cfg_.max_incidents) return false;
  if (fired_once_ && t - last_fire_t_ < cfg_.cooldown_s) return false;
  fired_once_ = true;
  last_fire_t_ = t;

  Incident inc;
  inc.kind = kind;
  inc.t = t;
  inc.hint_rank = hint_rank;
  inc.detail = detail;
  const std::size_t seq = incidents_.size();

  std::vector<sched::TraceEvent> window;
  if (ring_ != nullptr) {
    window = ring_->window();
    inc.window_events = window.size();
    inc.ring_dropped = ring_->dropped();
  }

  // Causal blame over the window: the blamed rank is the one holding the
  // most critical-path time in the window — the straggler test's claim
  // that the analysis names the injected slow rank rides on this.
  if (!window.empty()) {
    causal::BuildStats bstats;
    const causal::Graph g = causal::build_graph(window, &bstats);
    causal::BlameReport report;
    std::string err;
    if (causal::analyze(g, {}, &report, &err)) {
      inc.window_span = report.span;
      inc.blame = report.by_category;
      double best = -1.0;
      for (const auto& [rank, totals] : report.by_rank) {
        double sum = 0.0;
        for (double v : totals) sum += v;
        inc.rank_seconds[rank] = sum;
        if (sum > best) {
          best = sum;
          inc.blamed_rank = rank;
        }
      }
    }
  }

  if (!cfg_.path_prefix.empty() && ring_ != nullptr) {
    std::ostringstream name;
    name << cfg_.path_prefix << ".incident-" << seq << ".trace.json";
    inc.trace_path = name.str();
    std::ofstream os(inc.trace_path);
    if (os.good()) {
      std::vector<sched::TraceEvent> dump = window;
      if (inc.ring_dropped > 0) {
        const double t0 = dump.empty() ? 0.0 : dump.front().t_begin;
        dump.insert(dump.begin(),
                    sched::make_truncated_marker(0, t0, inc.ring_dropped));
      }
      sched::write_chrome_trace(dump, os);
    } else {
      inc.trace_path.clear();
    }
  }

  if (!cfg_.path_prefix.empty()) {
    std::ofstream os(report_path(), std::ios::app);
    if (os.good()) {
      os.precision(15);
      os << "{\"kind\":\"" << json_escape(inc.kind) << "\",\"seq\":" << seq
         << ",\"t\":" << inc.t << ",\"hint_rank\":" << inc.hint_rank
         << ",\"blamed_rank\":" << inc.blamed_rank << ",\"detail\":\""
         << json_escape(inc.detail) << "\",\"trace\":\""
         << json_escape(inc.trace_path) << "\",\"window_span\":"
         << inc.window_span << ",\"window_events\":" << inc.window_events
         << ",\"ring_dropped\":" << inc.ring_dropped << ",\"blame\":{";
      for (int c = 0; c < causal::kNumCategories; ++c) {
        if (c != 0) os << ",";
        os << "\"" << causal::category_name(static_cast<causal::Category>(c))
           << "\":" << inc.blame[static_cast<std::size_t>(c)];
      }
      os << "},\"rank_seconds\":{";
      bool first = true;
      for (const auto& [rank, sec] : inc.rank_seconds) {
        if (!first) os << ",";
        first = false;
        os << "\"" << rank << "\":" << sec;
      }
      os << "}}\n";
    }
  }

  if (cfg_.log_out != nullptr)
    std::fprintf(cfg_.log_out, "%s\n", format_incident(inc).c_str());

  incidents_.push_back(std::move(inc));
  return true;
}

std::vector<Incident> IncidentLog::incidents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_;
}

std::size_t IncidentLog::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_.size();
}

std::string format_incident(const Incident& inc) {
  std::ostringstream os;
  os << "[monitor] INCIDENT " << inc.kind << " at t=" << inc.t << "s";
  if (inc.hint_rank >= 0) os << " (trigger rank " << inc.hint_rank << ")";
  if (inc.blamed_rank >= 0) os << ", causal blame -> rank " << inc.blamed_rank;
  if (!inc.detail.empty()) os << ": " << inc.detail;
  if (!inc.trace_path.empty())
    os << " [window: " << inc.window_events << " events, "
       << inc.ring_dropped << " dropped -> " << inc.trace_path << "]";
  return os.str();
}

}  // namespace parfw::monitor
