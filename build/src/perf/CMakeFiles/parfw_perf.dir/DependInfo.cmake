
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/cost_model.cpp" "src/perf/CMakeFiles/parfw_perf.dir/cost_model.cpp.o" "gcc" "src/perf/CMakeFiles/parfw_perf.dir/cost_model.cpp.o.d"
  "/root/repo/src/perf/des.cpp" "src/perf/CMakeFiles/parfw_perf.dir/des.cpp.o" "gcc" "src/perf/CMakeFiles/parfw_perf.dir/des.cpp.o.d"
  "/root/repo/src/perf/experiments.cpp" "src/perf/CMakeFiles/parfw_perf.dir/experiments.cpp.o" "gcc" "src/perf/CMakeFiles/parfw_perf.dir/experiments.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/perf/CMakeFiles/parfw_perf.dir/machine.cpp.o" "gcc" "src/perf/CMakeFiles/parfw_perf.dir/machine.cpp.o.d"
  "/root/repo/src/perf/schedule.cpp" "src/perf/CMakeFiles/parfw_perf.dir/schedule.cpp.o" "gcc" "src/perf/CMakeFiles/parfw_perf.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/parfw_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parfw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/parfw_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parfw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devsim/CMakeFiles/parfw_devsim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/parfw_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
