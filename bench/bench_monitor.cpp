// bench_monitor — flight-recorder overhead on the reference DES workload.
//
// The RingTraceSink is meant to be ALWAYS ON: every schedule op and
// runtime event of a production run flows through it so an anomaly can
// dump the recent window. That is only defensible if recording is nearly
// free. This bench prices that claim on the BENCH_dist (Figure 7)
// reference workload — the 64-node async DES replay:
//
//   1. the workload runs through a NullTraceSink (min over kReps) for the
//      baseline seconds, and through a counting sink once for the exact
//      event count E (deterministic);
//   2. the marginal ring cost r is measured as ns/event over a long tight
//      record() loop (10M events — stable to fractions of a ns, unlike an
//      A/B of two multi-hundred-ms runs whose scheduler noise exceeds the
//      signal being gated);
//   3. overhead = E * r / baseline.
//
// The "monitor/ring_overhead" counter is gated < 3% by check.sh --monitor
// via bench_compare.py --ceiling.
#include <algorithm>
#include <cstdio>

#include "fig_common.hpp"
#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "sched/trace.hpp"
#include "util/timer.hpp"

using namespace parfw;

namespace {

// The BENCH_dist (Figure 7) reference point: 64 Summit nodes, the async
// schedule, one mid-sweep problem size.
constexpr int kNodes = 64;
constexpr double kN = 49152;
constexpr double kB = 768;
constexpr int kReps = 3;
constexpr int kRecordLoop = 10'000'000;

double run_once(const perf::MachineConfig& m, const perf::GridSetup& setup,
                sched::TraceSink* sink) {
  Timer t;
  perf::simulate_fw_placement(m, dist::Variant::kAsync, setup, kNodes, kN, kB,
                              /*comm_only=*/false, sink);
  return t.seconds();
}

/// Event counter with no per-name bookkeeping (StatsTraceSink's map would
/// bill its own cost to the workload).
class CountSink final : public sched::TraceSink {
 public:
  void record(const sched::TraceEvent&) override { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

}  // namespace

int main() {
  bench::header("monitor: flight-recorder overhead",
                "Always-on bounded tracing must be ~free: marginal "
                "RingTraceSink record cost, priced against the BENCH_dist "
                "64-node DES replay. Gated < 3% overhead in CI.");

  const perf::MachineConfig machine = perf::MachineConfig::summit();
  const perf::GridSetup setup = perf::make_grid(machine, kNodes, false);

  // Workload baseline + deterministic event count.
  CountSink counter;
  run_once(machine, setup, &counter);  // doubles as the warm-up run
  double t_base = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    sched::NullTraceSink null_sink;
    t_base = std::min(t_base, run_once(machine, setup, &null_sink));
  }
  const double events = static_cast<double>(counter.count());

  // Marginal per-event ring cost, through the virtual seam the
  // interpreters use. Ring state after the workload-shaped warm-up below
  // is steady (wrapped), matching always-on operation.
  sched::RingTraceSink ring;
  sched::TraceSink* sink = &ring;
  sched::TraceEvent ev{};
  ev.name = "OuterUpdate";
  for (int i = 0; i < kRecordLoop / 10; ++i) sink->record(ev);
  double ns_per_event = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer t;
    for (int i = 0; i < kRecordLoop; ++i) sink->record(ev);
    ns_per_event = std::min(ns_per_event, t.seconds() * 1e9 / kRecordLoop);
  }

  const double ring_seconds = events * ns_per_event * 1e-9;
  const double overhead = t_base > 0.0 ? ring_seconds / t_base : 0.0;

  std::printf("workload: %d-node async DES, n=%.0f b=%.0f\n", kNodes, kN, kB);
  std::printf("  baseline (null sink, min of %d)  %.6f s\n", kReps, t_base);
  std::printf("  events                           %.0f\n", events);
  std::printf("  ring record cost                 %.2f ns/event\n",
              ns_per_event);
  std::printf("  ring seconds over the workload   %.6f s\n", ring_seconds);
  std::printf("  overhead                         %+.2f%%\n",
              100.0 * overhead);

  bench::BenchJson json;
  json.add("monitor/des_null", t_base, "overhead", 0.0);
  json.add("monitor/ring_ns_per_event", ns_per_event * 1e-9, "overhead",
           overhead);
  json.add("monitor/ring_overhead", ring_seconds, "overhead", overhead);

  bench::footer(overhead < 0.03
                    ? "ring overhead under the 3% always-on budget"
                    : "WARNING: ring overhead exceeds the 3% budget");
  return 0;
}
