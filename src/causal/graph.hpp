// graph — the happens-before DAG over a captured trace (DESIGN.md §4.9).
//
// Every trace event contributes two nodes, begin(e) and end(e), placed at
// its recorded timestamps. Four edge families connect them:
//
//   kSpan     begin(e) -> end(e): the op's own execution (weight = its
//             duration in longest-path computations).
//   kProgram  per-rank program order, reconstructed as a nesting forest:
//             events on one rank are sorted by begin time; an event whose
//             span contains another is its parent (an op span contains
//             the message instants / oogHost spans it caused), siblings
//             chain end -> begin, and the last child's end feeds the
//             parent's end.
//   kMessage  end(send) -> end(recv) for every matched handoff — mpisim
//             "msg"/"recv" pairs (including retransmitted deliveries,
//             which keep their original seq), DES send/recv spans, and
//             offload "oogDev"/"oogWait" device-channel pairs — joined by
//             the channel coordinate (ctx, src, dst, tag, seq).
//   kJoin     checkpoint barrier joins: all "Checkpoint" spans of one
//             iteration meet at a synthetic join node placed at the
//             latest entry time; begin(i) -> join -> end(i) makes every
//             participant's exit depend on the slowest entrant, which is
//             exactly the barrier semantics of the checkpoint cut.
//
// On a time-consistent trace (both interpreters produce one: real events
// share the sched::now_seconds() epoch, DES events share the virtual
// clock) every edge is non-decreasing in time and the graph is acyclic;
// build_graph does not assume it, and analysis verifies it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/trace.hpp"

namespace parfw::causal {

enum class EdgeType : std::uint8_t {
  kSpan = 0,     ///< begin(e) -> end(e)
  kProgram = 1,  ///< per-rank order (sibling chain / parent-child)
  kMessage = 2,  ///< matched kSend -> kRecv handoff
  kJoin = 3,     ///< checkpoint barrier join
};

struct Edge {
  int from = 0;
  int to = 0;
  EdgeType type = EdgeType::kSpan;
};

/// Node ids: begin(e) = 2*e, end(e) = 2*e + 1 for event index e; barrier
/// join nodes are appended after 2 * events.size().
struct Graph {
  std::vector<sched::TraceEvent> events;
  std::vector<double> node_time;       ///< per node id
  std::vector<Edge> edges;
  std::vector<std::vector<int>> preds;  ///< edge indices, per node
  std::vector<std::vector<int>> succs;  ///< edge indices, per node
  double t_min = 0.0;  ///< earliest begin over all events
  double t_max = 0.0;  ///< latest end over all events (the makespan cut)

  int num_nodes() const { return static_cast<int>(node_time.size()); }
  static int begin_node(int event) { return 2 * event; }
  static int end_node(int event) { return 2 * event + 1; }
  /// Event index of a node, or -1 for synthetic join nodes.
  int event_of(int node) const {
    return node < 2 * static_cast<int>(events.size()) ? node / 2 : -1;
  }
  static bool is_end(int node) { return (node & 1) != 0; }
};

/// Join statistics — how much of the trace carried causal annotations.
struct BuildStats {
  std::size_t matched_messages = 0;
  std::size_t unmatched_sends = 0;  ///< dropped messages, truncated traces
  std::size_t unmatched_recvs = 0;
  std::size_t joins = 0;            ///< checkpoint barrier join nodes
};

/// Build the happens-before DAG. The event vector is copied into the
/// graph (name pointers must outlive it — keep the LoadResult or sink
/// alive).
Graph build_graph(std::vector<sched::TraceEvent> events,
                  BuildStats* stats = nullptr);

/// Kahn topological sort. Returns false (and leaves `order` partial)
/// when the graph has a cycle — a malformed or clock-skewed trace.
bool topo_order(const Graph& g, std::vector<int>* order);

}  // namespace parfw::causal
