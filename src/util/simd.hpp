// Portable fixed-width SIMD layer for the SRGEMM micro-kernels.
//
// The paper's kernel reaches its rate by making the min-plus inner loop
// explicitly vector-shaped (CUTLASS tile iterators over warp fragments);
// this is the CPU analogue: a Vec<T, W> wrapper over the GCC/Clang vector
// extensions with the handful of lane-wise ops the semirings need
// (load/store/broadcast, add/mul/min/max/or/and and a mask blend). Every
// op lowers to one instruction on SSE2/AVX2/AVX-512/NEON; on compilers
// without vector extensions the same API falls back to scalar arrays that
// the autovectorizer can still chew on, so kernel code is written once.
//
// Width policy: kNativeBytes is the widest vector the target ISA supports
// (64 on AVX-512, 32 on AVX, 16 on SSE2/NEON, sizeof(T) otherwise) and
// native_lanes<T>() is the lane count the micro-kernels are stamped out
// with. Loads and stores are unaligned (memcpy-based) so kernels can walk
// arbitrary leading dimensions; packing buffers are 64-byte aligned anyway.
#pragma once

#include <cstddef>
#include <cstring>

namespace parfw::simd {

#if defined(__GNUC__) || defined(__clang__)
#define PARFW_SIMD_VECTOR_EXT 1
#else
#define PARFW_SIMD_VECTOR_EXT 0
#endif

#if PARFW_SIMD_VECTOR_EXT && defined(__AVX512F__)
inline constexpr std::size_t kNativeBytes = 64;
#elif PARFW_SIMD_VECTOR_EXT && defined(__AVX__)
inline constexpr std::size_t kNativeBytes = 32;
#elif PARFW_SIMD_VECTOR_EXT && \
    (defined(__SSE2__) || defined(__ARM_NEON) || defined(__aarch64__))
inline constexpr std::size_t kNativeBytes = 16;
#else
inline constexpr std::size_t kNativeBytes = 0;  // scalar fallback
#endif

/// Lanes per native vector for element type T (>= 1; 4 in scalar fallback
/// so the micro-kernels still get an unrollable shape).
template <typename T>
constexpr std::size_t native_lanes() {
  return kNativeBytes == 0 ? 4 : kNativeBytes / sizeof(T);
}

/// Fixed-width vector of W lanes of T. Trivially copyable; all ops are
/// free functions so the type stays a plain register-sized value.
template <typename T, std::size_t W>
struct Vec {
#if PARFW_SIMD_VECTOR_EXT
  typedef T native __attribute__((vector_size(W * sizeof(T))));
  native v;
#else
  T v[W];
#endif
};

template <typename T, std::size_t W>
inline Vec<T, W> load(const T* p) {
  Vec<T, W> r;
  std::memcpy(&r.v, p, W * sizeof(T));  // unaligned load
  return r;
}

template <typename T, std::size_t W>
inline void store(T* p, Vec<T, W> a) {
  std::memcpy(p, &a.v, W * sizeof(T));  // unaligned store
}

template <typename T, std::size_t W>
inline Vec<T, W> broadcast(T x) {
  Vec<T, W> r;
#if PARFW_SIMD_VECTOR_EXT
  r.v = x - typename Vec<T, W>::native{};  // splat via vector-scalar op
#else
  for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
#endif
  return r;
}

#if PARFW_SIMD_VECTOR_EXT

template <typename T, std::size_t W>
inline Vec<T, W> vadd(Vec<T, W> a, Vec<T, W> b) {
  return {a.v + b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vmul(Vec<T, W> a, Vec<T, W> b) {
  return {a.v * b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vmin(Vec<T, W> a, Vec<T, W> b) {
  return {a.v < b.v ? a.v : b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vmax(Vec<T, W> a, Vec<T, W> b) {
  return {a.v > b.v ? a.v : b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vor(Vec<T, W> a, Vec<T, W> b) {
  return {a.v | b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vand(Vec<T, W> a, Vec<T, W> b) {
  return {a.v & b.v};
}
/// Lanes where either operand is >= limit become limit; the rest take
/// min(a + b, limit). This is the integer tropical ⊗ (saturating add with
/// an absorbing "no path" sentinel) in three vector ops: both inputs are
/// clamped to limit first, so the lane-wise sum cannot overflow even when
/// callers feed values above the sentinel.
template <typename T, std::size_t W>
inline Vec<T, W> vsat_add(Vec<T, W> a, Vec<T, W> b, Vec<T, W> limit) {
  auto ac = a.v < limit.v ? a.v : limit.v;
  auto bc = b.v < limit.v ? b.v : limit.v;
  auto s = ac + bc;
  s = s < limit.v ? s : limit.v;
  // "No path" absorbs even negative weights: any lane with an infinite
  // operand is pinned to limit regardless of the sum.
  return {((a.v >= limit.v) | (b.v >= limit.v)) ? limit.v : s};
}

#else  // scalar fallback: same API, lane loops

#define PARFW_SIMD_LANEWISE(name, expr)                     \
  template <typename T, std::size_t W>                      \
  inline Vec<T, W> name(Vec<T, W> a, Vec<T, W> b) {         \
    Vec<T, W> r;                                            \
    for (std::size_t i = 0; i < W; ++i) r.v[i] = (expr);    \
    return r;                                               \
  }
PARFW_SIMD_LANEWISE(vadd, a.v[i] + b.v[i])
PARFW_SIMD_LANEWISE(vmul, a.v[i] * b.v[i])
PARFW_SIMD_LANEWISE(vmin, a.v[i] < b.v[i] ? a.v[i] : b.v[i])
PARFW_SIMD_LANEWISE(vmax, a.v[i] > b.v[i] ? a.v[i] : b.v[i])
PARFW_SIMD_LANEWISE(vor, a.v[i] | b.v[i])
PARFW_SIMD_LANEWISE(vand, a.v[i] & b.v[i])
#undef PARFW_SIMD_LANEWISE

template <typename T, std::size_t W>
inline Vec<T, W> vsat_add(Vec<T, W> a, Vec<T, W> b, Vec<T, W> limit) {
  Vec<T, W> r;
  for (std::size_t i = 0; i < W; ++i) {
    if (a.v[i] >= limit.v[i] || b.v[i] >= limit.v[i]) {
      r.v[i] = limit.v[i];
      continue;
    }
    const T s = a.v[i] + b.v[i];
    r.v[i] = s < limit.v[i] ? s : limit.v[i];
  }
  return r;
}

#endif  // PARFW_SIMD_VECTOR_EXT

}  // namespace parfw::simd
