// Skeleton-program lowering for the discrete-event simulator.
//
// build_fw_program() is the METADATA-COSTING interpreter of the schedule
// IR: it asks sched::build_schedule (src/sched/ir.hpp) for the variant's
// schedule — the same one dist::parallel_fw executes with real data —
// and lowers each step into per-rank op lists (compute / send / recv).
// Compute steps become durations from the IR's flop metadata; collective
// steps expand into point-to-point sends/receives with the same
// node-aware relay orders as the functional mpisim runtime. This is what
// lets the simulator replay a 256-node, n = 1.6M run on one core
// (DESIGN.md §1, last row of the substitution table). There is no
// schedule logic here to keep in sync by hand any more; the IR generator
// is the single source of truth for both interpreters.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"

namespace parfw::perf {

struct Op {
  enum class Kind : std::uint8_t { kComp, kSend, kRecv };
  Kind kind = Kind::kComp;
  double seconds = 0.0;      ///< kComp: duration on this rank's GPU
  int peer = -1;             ///< kSend: dst world rank; kRecv: src world rank
  std::int64_t bytes = 0;    ///< kSend: payload size
  std::int32_t tag = 0;      ///< kSend/kRecv: match key
  std::uint32_t k = 0;       ///< FW iteration of the originating IR op
  /// sched::OpKind of the originating IR op (trace labels), -1 if none.
  std::int16_t kind_src = -1;
  /// kComp: the IR op's modelled arithmetic work. Carried into the DES
  /// trace events so a modelled run's per-phase flop totals reconcile
  /// exactly against a real run of the same schedule (telemetry/reconcile).
  double flops = 0.0;
};

using RankProgram = std::vector<Op>;

struct FwProblem {
  double n = 0;          ///< vertices
  double b = 768;        ///< block size
  dist::Variant variant = dist::Variant::kAsync;
  /// ooGSrGemm chunk size for the offload variant (m_x = n_x).
  double offload_mx = 4096;
  /// ooGSrGemm X-buffer depth s (§4.5): 1 = fully serial chunk pipeline,
  /// 2 = compute/transfer overlap, 3 = full compute/transfer/hostUpdate
  /// overlap. Mirrors offload::OogConfig::num_streams so the tuner's
  /// buffer-depth dimension is costed by the same model the real offload
  /// pipeline implements. Only affects the kOffload variant.
  int offload_streams = 3;
  /// Model MPI's asynchronous progression of the ring broadcast: panel
  /// segments are relayed by per-rank NIC "agent" processes instead of the
  /// rank's own program, so a rank busy computing does not stall the chain
  /// (§3.3's asynchrony). Only affects the kAsync variant.
  bool background_relays = true;
  /// OS-noise / straggler model: each compute op's duration is inflated
  /// by a deterministic pseudo-random factor in [0, comp_jitter]
  /// (hashed from rank and op index). §3.3 argues the asynchronous ring
  /// decouples ranks so one straggler's delay does not propagate; the
  /// straggler ablation bench measures exactly that.
  double comp_jitter = 0.0;
  /// Zero out all compute durations: isolates the communication schedule
  /// (the paper's Figure 3 placement sweep is measured in this regime —
  /// its single-node point exceeds the NIC's 25 GB/s, which is only
  /// possible when t_FW is communication time).
  bool comm_only = false;
  /// Model the predecessor-carrying schedule: kPred companion broadcasts
  /// for the diag block and row panel (int64 per element — the row-panel
  /// volume roughly triples for float words), classic DiagUpdate flops
  /// (log-squaring loses the argmin chain), and the offload pipeline's
  /// extra Xpred transfers/hostUpdate passes. Mirrors what
  /// dist::parallel_fw executes when a pred matrix is attached, so
  /// `--variant auto` tunes paths runs against their true cost.
  bool track_paths = false;
};

/// A built skeleton: per-process op lists plus the node map covering any
/// auxiliary "NIC agent" processes the schedule added (background relays).
struct BuiltProgram {
  std::vector<RankProgram> programs;
  std::vector<int> node_of;  ///< sized to programs (ranks + agents)
};

/// Build the per-rank programs for one FW run on the given grid/placement.
/// `node_of[w]` maps world ranks to nodes (NIC domains).
BuiltProgram build_fw_program(const MachineConfig& m, const FwProblem& prob,
                              const dist::GridSpec& grid,
                              const std::vector<int>& node_of);

/// Standalone broadcast programs (for the ring-vs-tree DES experiments).
std::vector<RankProgram> build_bcast_program(const MachineConfig& m, int ranks,
                                             std::int64_t bytes, bool ring,
                                             const std::vector<int>& node_of);

/// Wire-level traffic a built program would generate, summed over its
/// kSend ops — directly comparable to the TrafficStats mpisim accounts
/// when the real interpreter executes the same schedule (the DES-vs-real
/// cross-validation tests rely on this).
struct WireTotals {
  std::int64_t bytes_total = 0;
  std::int64_t bytes_internode = 0;
  std::uint64_t sends = 0;
};
WireTotals program_traffic(const std::vector<RankProgram>& programs,
                           const std::vector<int>& node_of);

}  // namespace parfw::perf
