// Blocked Floyd-Warshall with predecessor tracking.
//
// Same schedule as blocked_floyd_warshall, but every SRGEMM is the
// argmin-tracking variant: whenever a distance improves through
// intermediate vertex t, pred(i,j) is rewritten to pred(t,j). This
// implements the "distributed shortest path generation" extension the
// paper lists as future work (§7), at blocked-kernel granularity.
#pragma once

#include <cstdint>

#include "core/blocked_fw.hpp"
#include "core/floyd_warshall.hpp"

namespace parfw {

namespace detail {

/// Scalar reference for C ← C ⊕ A ⊗ B with predecessor propagation.
/// The production path is srgemm::multiply_with_pred (the SIMD-dispatched
/// fused kernel); this triple loop stays as the oracle the kernel tests
/// diff against and the baseline the bench_paths speedup gate measures.
/// On non-aliased operands the two are bit-identical (each (i,j) is the
/// same ascending-t first-strict-improvement scan).
template <typename S>
void srgemm_with_pred(MatrixView<const typename S::value_type> A,
                      MatrixView<const typename S::value_type> B,
                      MatrixView<typename S::value_type> C,
                      MatrixView<const std::int64_t> predB,
                      MatrixView<std::int64_t> predC) {
  using T = typename S::value_type;
  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      T best = C(i, j);
      std::int64_t bp = predC(i, j);
      for (std::size_t t = 0; t < k; ++t) {
        const T cand = S::mul(A(i, t), B(t, j));
        if (S::less_add(cand, best)) {
          best = cand;
          bp = predB(t, j);
        }
      }
      C(i, j) = best;
      predC(i, j) = bp;
    }
  }
}

}  // namespace detail

/// DiagUpdate with path tracking: classic in-place FW over the pivot block
/// (log-squaring loses the argmin chain structure, so the paths pipeline
/// always uses classic for the diagonal). Shared verbatim by the
/// single-node blocked solver and the distributed interpreter — part of
/// what keeps their predecessor matrices bit-identical.
template <typename S>
void diag_update_with_pred(MatrixView<typename S::value_type> dk,
                           MatrixView<std::int64_t> pk) {
  using T = typename S::value_type;
  const std::size_t bk = dk.rows();
  for (std::size_t t = 0; t < bk; ++t)
    for (std::size_t i = 0; i < bk; ++i) {
      const T dit = dk(i, t);
      if (dit == S::zero()) continue;
      for (std::size_t j = 0; j < bk; ++j) {
        const T cand = S::mul(dit, dk(t, j));
        if (S::less_add(cand, dk(i, j))) {
          dk(i, j) = cand;
          pk(i, j) = pk(t, j);
        }
      }
    }
}

/// Blocked FW computing both distances and predecessors in place.
/// pred must be initialised with init_predecessors. Every panel/outer
/// update goes through srgemm::multiply_with_pred — the SAME kernel the
/// distributed interpreter binds, which is what makes the distributed
/// pred matrix bit-identical to this single-node result.
template <typename S>
void blocked_floyd_warshall_paths(MatrixView<typename S::value_type> a,
                                  MatrixView<std::int64_t> pred,
                                  std::size_t block_size = 64,
                                  const srgemm::Config& gemm = {}) {
  static_assert(is_idempotent<S>(), "blocked FW requires idempotent semiring");
  PARFW_CHECK(a.rows() == a.cols());
  PARFW_CHECK(pred.rows() == a.rows() && pred.cols() == a.cols());
  PARFW_CHECK(block_size > 0);
  const std::size_t n = a.rows();
  const std::size_t b = block_size;
  const std::size_t nb = (n + b - 1) / b;

  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t k0 = k * b;
    const std::size_t bk = std::min(n, k0 + b) - k0;

    diag_update_with_pred<S>(a.sub(k0, k0, bk, bk), pred.sub(k0, k0, bk, bk));

    auto update = [&](std::size_t r0, std::size_t nr, std::size_t c0,
                      std::size_t nc) {
      if (nr == 0 || nc == 0) return;
      srgemm::multiply_with_pred<S>(a.sub(r0, k0, nr, bk),
                                    a.sub(k0, c0, bk, nc),
                                    a.sub(r0, c0, nr, nc),
                                    pred.sub(k0, c0, bk, nc),
                                    pred.sub(r0, c0, nr, nc), gemm);
    };

    // PanelUpdate (row then column), then MinPlusOuter quadrants.
    const std::size_t after0 = k0 + bk;
    const std::size_t after_n = n - after0;
    update(k0, bk, 0, k0);
    update(k0, bk, after0, after_n);
    update(0, k0, k0, bk);
    update(after0, after_n, k0, bk);
    update(0, k0, 0, k0);
    update(0, k0, after0, after_n);
    update(after0, after_n, 0, k0);
    update(after0, after_n, after0, after_n);
  }
}

}  // namespace parfw
