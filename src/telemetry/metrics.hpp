// Telemetry — low-overhead, thread-safe metrics registry (DESIGN.md §4.8).
//
// The trace seam (sched::TraceSink) answers "what happened when"; this
// registry answers "how much, how fast, how full" — monotonic counters,
// gauges and log-bucketed histograms, labelled by rank/phase/variant and
// exported as JSON, Prometheus text or a human table (export.hpp).
//
// Design points:
//   * Handles are stable: Registry::counter/gauge/histogram return a
//     reference that lives as long as the registry, so hot paths resolve
//     the (name, labels) key once and then touch only atomics.
//   * Recording is lock-free: counters and histogram buckets are relaxed
//     atomics; the registry mutex guards only handle creation/snapshot.
//   * Histograms are log-bucketed (4 sub-buckets per power of two,
//     covering ~1e-9 .. 4e12), so p50/p95/p99 come back within one bucket
//     width (≤ ~19% relative error) at 2.3 KB per histogram.
//   * Global gating: instrumentation that is not explicitly plumbed a
//     registry pointer (srgemm dispatch, the thread pool) records into
//     Registry::global() only when telemetry::enabled() — which the
//     PARFW_METRICS environment knob (README "Metrics") switches on — so
//     an untelemetered run pays one relaxed atomic load per call site.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace parfw::telemetry {

// --- metric primitives -------------------------------------------------------

/// Monotonic counter (events, bytes, flops). Relaxed atomic increments;
/// exact under any interleaving.
class Counter {
 public:
  void add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (queue depth, buffer occupancy, watermark).
/// set/add/update_max are individually atomic (CAS loops for the doubles).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  /// Raise the gauge to v if v is larger (high-watermark semantics).
  void update_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Summary of a histogram at one point in time (what exporters emit).
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Log-bucketed histogram over positive doubles (seconds, bytes, GF/s).
/// Buckets are 2^(kMinExp + i/sub) for i in [0, bucket_count()); values
/// below or above the range land in saturating edge buckets. Quantiles
/// return the geometric midpoint of the covering bucket — accurate to one
/// bucket width: 2^(1/sub) relative, i.e. ≈ 1.19x at the default 4
/// sub-buckets per octave. Latency series that must resolve
/// sub-millisecond tails (the serving tier's cache-hit path is ~µs) pass
/// a finer `sub_per_octave` — 8 halves the log-width to ≈ 1.09x for twice
/// the footprint. The resolution is fixed at construction; the default
/// static bucket_of/bucket_lower helpers describe the default geometry.
class Histogram {
 public:
  static constexpr int kMinExp = -30;  ///< 2^-30 ≈ 9.3e-10
  static constexpr int kMaxExp = 42;   ///< 2^42  ≈ 4.4e12
  static constexpr int kSub = 4;       ///< default sub-buckets per octave
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSub;

  explicit Histogram(int sub_per_octave = kSub);

  /// Sub-buckets per power of two this instance was built with.
  int sub_per_octave() const { return sub_; }
  /// Total bucket count of this instance.
  int bucket_count() const { return static_cast<int>(buckets_.size()); }

  /// Index of the default-geometry bucket covering v (clamped to the edge
  /// buckets). Instance lookups go through index_of, which honours the
  /// configured resolution.
  static int bucket_of(double v) { return index_of(v, kSub, kBuckets); }
  /// Inclusive lower bound of default-geometry bucket i.
  static double bucket_lower(int i) {
    return std::exp2(kMinExp + static_cast<double>(i) / kSub);
  }

  void observe(double v) {
    buckets_[static_cast<std::size_t>(index_of(v, sub_, bucket_count()))]
        .fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_, v);
    atomic_min(min_, v);
    atomic_max(max_, v);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate for q in [0, 1]; 0 when the histogram is empty.
  double quantile(double q) const;

  HistogramSummary summary() const;

 private:
  /// Bucket index for v under a given geometry (clamped to the edges).
  static int index_of(double v, int sub, int buckets) {
    if (!(v > 0.0)) return 0;
    const double l = std::log2(v);
    const double i = std::floor((l - kMinExp) * sub);
    if (i < 0.0) return 0;
    if (i >= buckets) return buckets - 1;
    return static_cast<int>(i);
  }

  static void atomic_add(std::atomic<double>& a, double d) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int sub_ = kSub;
  // Value-initialised vector of atomics: sized once in the ctor, never
  // resized, so concurrent observe() never races a reallocation.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// --- registry ----------------------------------------------------------------

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One metric resolved for export (see Registry::snapshot).
struct MetricRow {
  std::string name;    ///< dotted metric name, e.g. "fw.phase.seconds"
  std::string labels;  ///< "k=v,k=v" (may be empty)
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       ///< counter / gauge value
  HistogramSummary hist{};  ///< histogram summary
};

/// Thread-safe metric registry. Metric identity is (name, labels) with
/// labels a comma-separated "k=v" list — by convention the keys used
/// across the codebase are rank, phase, variant, kernel, micro, coll and
/// scope. Lookup takes the registry mutex; the returned handle is stable
/// for the registry's lifetime, so resolve once and record lock-free.
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& labels = "");
  /// Histogram with an explicit bucket resolution (sub-buckets per octave).
  /// The resolution is applied on first registration; later lookups of the
  /// same (name, labels) return the existing instance unchanged, whatever
  /// resolution they ask for.
  Histogram& histogram(const std::string& name, const std::string& labels,
                       int sub_per_octave);

  /// All metrics, sorted by (name, labels) — the exporters' input. The
  /// rows are a consistent-enough snapshot for reporting: each metric is
  /// read atomically, but the set is not a global atomic cut.
  std::vector<MetricRow> snapshot() const;

  /// Number of registered metrics.
  std::size_t size() const;

  /// Drop every metric (tests; between benchmark repetitions). Invalidates
  /// all handles — callers must re-resolve.
  void clear();

  /// The process-wide default registry (what PARFW_METRICS exports).
  static Registry& global();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };
  Entry& entry(const std::string& name, const std::string& labels,
               MetricKind kind, int hist_sub = Histogram::kSub);

  mutable std::mutex mu_;
  // Key "name\x1flabels" -> entry; std::map keeps snapshots sorted.
  std::map<std::string, Entry> entries_;
};

// --- global gating -----------------------------------------------------------

/// True when ambient instrumentation (srgemm dispatch, thread pool) should
/// record into Registry::global(). Seeded from the PARFW_METRICS
/// environment variable; flip programmatically with set_enabled.
bool enabled();
void set_enabled(bool on);

/// RAII timer: observes its lifetime in seconds into a histogram.
/// A null histogram makes it a no-op (so call sites need no branches).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (h_ != nullptr) h_->observe(t_.seconds());
  }
  /// Elapsed seconds so far (for call sites that also derive rates).
  double seconds() const { return t_.seconds(); }

 private:
  Histogram* h_;
  Timer t_;
};

}  // namespace parfw::telemetry
