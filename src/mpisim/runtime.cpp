#include "mpisim/runtime.hpp"

#include <exception>
#include <thread>

#include "mpisim/communicator.hpp"
#include "util/check.hpp"

namespace parfw::mpi {

NodeModel NodeModel::contiguous(int world_size, int ranks_per_node) {
  PARFW_CHECK(ranks_per_node > 0);
  NodeModel m;
  m.node_of.resize(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r)
    m.node_of[static_cast<std::size_t>(r)] = r / ranks_per_node;
  return m;
}

World::World(int size, NodeModel node_model, sched::TraceSink* trace)
    : size_(size), node_model_(std::move(node_model)), trace_(trace) {
  PARFW_CHECK(size_ > 0);
  if (!node_model_.node_of.empty())
    PARFW_CHECK_MSG(node_model_.node_of.size() ==
                        static_cast<std::size_t>(size_),
                    "node model size mismatch");
  mailboxes_.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());

  int nodes = 0;
  for (int r = 0; r < size_; ++r) nodes = std::max(nodes, node_model_.node(r) + 1);
  traffic_.nic_bytes.assign(static_cast<std::size_t>(nodes), 0);
}

void World::deliver(const MatchKey& key, rank_t dst, Message msg) {
  PARFW_DCHECK(dst >= 0 && dst < size_);
  {
    std::lock_guard<std::mutex> lock(traffic_mu_);
    ++traffic_.messages;
    traffic_.bytes_total += msg.payload.size();
    const int sn = node_model_.node(key.src);
    const int dn = node_model_.node(dst);
    if (sn != dn) {
      traffic_.bytes_internode += msg.payload.size();
      traffic_.nic_bytes[static_cast<std::size_t>(sn)] += msg.payload.size();
      traffic_.nic_bytes[static_cast<std::size_t>(dn)] += msg.payload.size();
    }
  }
  if (trace_) {
    sched::TraceEvent e;
    e.rank = key.src;
    e.name = "msg";
    e.t_begin = e.t_end = sched::now_seconds();
    e.bytes = static_cast<std::int64_t>(msg.payload.size());
    trace_->record(e);
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queues[key].push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message World::await(const MatchKey& key, rank_t dst) {
  PARFW_DCHECK(dst >= 0 && dst < size_);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto it = box.queues.find(key);
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) box.queues.erase(it);
  return msg;
}

void World::barrier() { group_barrier(/*context=*/0, size_); }

void World::group_barrier(std::uint64_t context, int group_size) {
  std::unique_lock<std::mutex> lock(group_mu_);
  GroupBarrier& gb = group_barriers_[context];
  const std::uint64_t my_gen = gb.gen;
  if (++gb.count == group_size) {
    gb.count = 0;
    ++gb.gen;
    group_cv_.notify_all();
    return;
  }
  group_cv_.wait(lock, [&] { return gb.gen != my_gen; });
}

TrafficStats World::traffic() const {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  TrafficStats out = traffic_;
  out.max_nic_bytes = 0;
  for (std::uint64_t b : out.nic_bytes)
    out.max_nic_bytes = std::max(out.max_nic_bytes, b);
  return out;
}

TrafficStats Runtime::run(int world_size, const std::function<void(Comm&)>& fn,
                          const RuntimeOptions& opt) {
  World world(world_size, opt.node_model, opt.trace);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&world, &fn, r, &err_mu, &first_error] {
      try {
        Comm comm(&world, r);
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return world.traffic();
}

}  // namespace parfw::mpi
