// Measured-vs-modelled reconciliation (DESIGN.md §4.8).
//
// The schedule IR has two interpreters — the data-carrying distributed
// runtime and the metadata-costing DES — and both report through the
// trace seam. This module cross-checks one run of each over the SAME
// schedule and states, in one table, how far the model is from the
// measurement:
//
//   * compute phases: op counts and flop totals must match EXACTLY (both
//     sides replay the same per-rank op sequences — any difference is a
//     bug, and the report flags it);
//   * wire bytes: the mpisim TrafficStats total must equal the DES
//     program_traffic prediction EXACTLY (the cross-validation invariant
//     the sched tests pin; reconcile() re-checks it on every report);
//   * time: absolute durations are NOT comparable (the DES models the
//     paper's Summit GPUs; the measurement runs on the host CPU
//     substrate), so the report compares each phase's SHARE of total
//     phase time and flags phases whose measured and modelled shares
//     diverge by more than a stated band.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/trace.hpp"

namespace parfw::telemetry {

/// One phase (op name) in the reconciliation table.
struct PhaseDelta {
  std::string phase;
  sched::StatsTraceSink::OpStats measured;
  sched::StatsTraceSink::OpStats modelled;
  double measured_share = 0.0;  ///< fraction of Σ measured phase seconds
  double modelled_share = 0.0;  ///< fraction of Σ modelled phase seconds
  bool compute = true;  ///< compute phase (count/flops checked exactly)
};

struct ReconcileReport {
  std::vector<PhaseDelta> phases;  ///< sorted by phase name
  std::int64_t measured_wire_bytes = 0;
  std::int64_t modelled_wire_bytes = 0;
  double share_band = 0.25;  ///< max |measured - modelled| phase share

  bool bytes_match() const {
    return measured_wire_bytes == modelled_wire_bytes;
  }
  /// Compute phases whose op count or flop total differ (must be empty
  /// for two faithful interpreters of one schedule).
  std::vector<std::string> exact_mismatches() const;
  /// Phases whose time share diverges by more than share_band.
  std::vector<std::string> out_of_band() const;
  /// All three checks: exact byte match, exact compute counts, shares in
  /// band.
  bool ok() const {
    return bytes_match() && exact_mismatches().empty() && out_of_band().empty();
  }

  /// Human-readable side-by-side table (util/table) plus the wire-byte
  /// verdict line.
  std::string table() const;
};

/// Build the report from the two per-phase trace aggregations (real run
/// and DES run of the same schedule) plus the two wire-byte totals.
/// `measured`/`modelled` are StatsTraceSink::table() snapshots; non-phase
/// event names (message instants "msg", fault markers, "oogHost") are
/// folded out of the share computation but kept in the table when both
/// sides carry them.
ReconcileReport reconcile(
    const std::map<std::string, sched::StatsTraceSink::OpStats>& measured,
    const std::map<std::string, sched::StatsTraceSink::OpStats>& modelled,
    std::int64_t measured_wire_bytes, std::int64_t modelled_wire_bytes,
    double share_band = 0.25);

}  // namespace parfw::telemetry
