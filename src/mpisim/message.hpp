// Message envelope and matching key for the in-process runtime.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace parfw::mpi {

using rank_t = int;
using tag_t = int;

/// A buffered (eager) message. The runtime always copies on send, so the
/// sender's buffer is reusable immediately — matching MPI's buffered-send
/// semantics, which is what the distributed FW variants assume.
struct Message {
  std::vector<std::uint8_t> payload;
  /// Reliability envelope (populated only when a FaultPlan is active):
  /// per-(MatchKey, dst) flow sequence number — the receiver delivers
  /// strictly in seq order, discards stale duplicates, and re-drives
  /// dropped seqs on timeout.
  std::uint64_t seq = 0;
  /// Retransmission attempts already spent on this message (bounded by
  /// RuntimeOptions::max_retries).
  std::uint32_t attempt = 0;
  /// Delay injection: the receiver may not consume this before then.
  /// Default-constructed (clock epoch) = deliverable immediately.
  std::chrono::steady_clock::time_point not_before{};
};

/// Matching key: messages are matched by (context, source, tag) in FIFO
/// order, exactly like MPI point-to-point within a communicator.
struct MatchKey {
  std::uint64_t context;  ///< communicator context id
  rank_t src;             ///< GLOBAL rank of the sender
  tag_t tag;

  bool operator==(const MatchKey&) const = default;
};

struct MatchKeyHash {
  std::size_t operator()(const MatchKey& k) const noexcept {
    std::uint64_t h = k.context * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.src)) *
         0xff51afd7ed558ccdull;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.tag)) *
         0xc4ceb9fe1a85ec53ull;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

}  // namespace parfw::mpi
