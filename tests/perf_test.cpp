// Performance-model and DES tests: closed forms, feasibility walls,
// simulator sanity (ordering of variants, scaling trends, agreement with
// the analytic model in limiting regimes).
#include <gtest/gtest.h>

#include "perf/cost_model.hpp"
#include "perf/des.hpp"
#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "perf/schedule.hpp"

namespace parfw::perf {
namespace {

const MachineConfig kSummit = MachineConfig::summit();

TEST(CostModel, FwFlops) { EXPECT_DOUBLE_EQ(fw_flops(100), 2e6); }

TEST(CostModel, ComputeTimeScalesInversely) {
  const double t1 = model_compute_time(kSummit, 1e5, 192);
  const double t2 = model_compute_time(kSummit, 1e5, 384);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(CostModel, NodeVolumeSquareBeatsSkewed) {
  GridShape square{24, 32, 3, 4};   // K = 8x8
  GridShape skewed{8, 96, 1, 12};   // K = 8x8 nodes but 1x12 intranode -> K=8x8? qr=1,qc=12: kr=8,kc=8
  // Same node count; make the skew at the NODE grid instead:
  GridShape skewed_nodes{4, 192, 2, 6};  // kr=2, kc=32
  const double v_sq = model_node_volume(kSummit, 196608, square);
  const double v_sk = model_node_volume(kSummit, 196608, skewed_nodes);
  EXPECT_LT(v_sq, v_sk);
}

TEST(CostModel, MinNodeVolumeIsSquareFactorisation) {
  const double n = 196608;
  const double v64 = min_node_volume(kSummit, n, 64);
  GridShape sq{8, 8, 1, 1};
  EXPECT_DOUBLE_EQ(v64, model_node_volume(kSummit, n, sq));
  // Volume shrinks with more nodes.
  EXPECT_LT(v64, min_node_volume(kSummit, n, 16));
}

TEST(CostModel, ComputeBoundThresholdNear120kOn64Nodes) {
  // Paper §5.2.2: "on 64 nodes, 120k is the theoretical estimate of the
  // smallest problem size when FW becomes compute-bound".
  // Our overlap-aware model puts the crossover somewhat below the
  // paper's rough estimate; same order of magnitude.
  const double n = compute_bound_threshold(kSummit, 64);
  EXPECT_GT(n, 3e4);
  EXPECT_LT(n, 2.2e5);
}

TEST(CostModel, GpuMemoryWallNear524kOn64Nodes) {
  // Paper §5.4: every non-offload variant dies beyond 524,288 vertices on
  // 64 nodes (the calibration target for gpu_mem_usable_frac).
  const double wall = max_in_gpu_vertices(kSummit, 64);
  EXPECT_GT(wall, 450e3);
  EXPECT_LT(wall, 700e3);
  // And the offload (host memory) wall admits the 1.66M-vertex run.
  EXPECT_GT(max_in_host_vertices(kSummit, 64), 1.66e6);
}

TEST(CostModel, Eq5MinimumBlockNear624) {
  // Paper §5.3.1: predicted minimum block size ≈ 624 for NVLink at
  // 50 GB/s and 7.8 TF/s. Our defaults use the measured 6.8 TF/s rate,
  // so the bound lands slightly lower but in the same regime.
  MachineConfig m = kSummit;
  m.srgemm_flops = 7.8e12;
  const double k = min_offload_block(m);
  EXPECT_GT(k, 200.0);
  EXPECT_LT(k, 700.0);
}

TEST(CostModel, OogCostOverlapRegimes) {
  const OogCost c{3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(c.total(1), 6.0);
  EXPECT_DOUBLE_EQ(c.total(2), 3.0);  // max(t0, t1+t2) = 3
  EXPECT_DOUBLE_EQ(c.total(3), 3.0);  // max of all
  const OogCost d{1.0, 2.0, 1.5};
  EXPECT_DOUBLE_EQ(d.total(3), 2.0);
  EXPECT_LE(d.total(3), d.total(2));
  EXPECT_LE(d.total(2), d.total(1));
}

TEST(CostModel, OogRateApproachesPeakForLargeBlocks) {
  // Figure 5's shape: small blocks transfer-bound, large blocks near peak.
  const double r128 = model_oog_rate(kSummit, 32768, 2048, 128, 3);
  const double r768 = model_oog_rate(kSummit, 32768, 2048, 768, 3);
  EXPECT_LT(r128, 0.75 * kSummit.srgemm_flops);
  EXPECT_GT(r768, 0.9 * kSummit.srgemm_flops);
  EXPECT_LT(r768, kSummit.srgemm_flops * 1.0001);
}

// --- DES -------------------------------------------------------------------

TEST(Des, SingleRankComputeOnly) {
  std::vector<RankProgram> prog(1);
  prog[0].push_back(Op{Op::Kind::kComp, 2.5, -1, 0, 0});
  prog[0].push_back(Op{Op::Kind::kComp, 1.5, -1, 0, 0});
  const SimStats s = simulate(prog, {0}, kSummit);
  EXPECT_DOUBLE_EQ(s.makespan, 4.0);
  EXPECT_EQ(s.ops_executed, 2u);
}

TEST(Des, GpuSharingSerialises) {
  // Two ranks on one GPU: their compute serialises; on two GPUs it doesn't.
  MachineConfig m = kSummit;
  m.ranks_per_gpu = 2;
  std::vector<RankProgram> prog(2);
  prog[0].push_back(Op{Op::Kind::kComp, 1.0, -1, 0, 0});
  prog[1].push_back(Op{Op::Kind::kComp, 1.0, -1, 0, 0});
  EXPECT_DOUBLE_EQ(simulate(prog, {0, 0}, m).makespan, 2.0);
  m.ranks_per_gpu = 1;
  EXPECT_DOUBLE_EQ(simulate(prog, {0, 0}, m).makespan, 1.0);
}

TEST(Des, MessageLatencyAndBandwidth) {
  MachineConfig m = kSummit;
  std::vector<RankProgram> prog(2);
  const std::int64_t bytes = 250'000'000;  // 10 ms at 25 GB/s
  prog[0].push_back(Op{Op::Kind::kSend, 0, 1, bytes, 7});
  prog[1].push_back(Op{Op::Kind::kRecv, 0, 0, 0, 7});
  const SimStats s = simulate(prog, {0, 1}, m);  // internode
  EXPECT_NEAR(s.makespan, 0.01 + m.wire_latency, 1e-6);
  EXPECT_DOUBLE_EQ(s.internode_bytes, static_cast<double>(bytes));

  const SimStats intra = simulate(prog, {0, 0}, m);  // same node
  EXPECT_NEAR(intra.makespan, bytes / m.intranode_bw + m.intranode_latency,
              1e-6);
  EXPECT_DOUBLE_EQ(intra.internode_bytes, 0.0);
}

TEST(Des, RecvBeforeSendBlocksThenCompletes) {
  std::vector<RankProgram> prog(2);
  prog[0].push_back(Op{Op::Kind::kRecv, 0, 1, 0, 3});
  prog[1].push_back(Op{Op::Kind::kComp, 5.0, -1, 0, 0});
  prog[1].push_back(Op{Op::Kind::kSend, 0, 0, 1000, 3});
  const SimStats s = simulate(prog, {0, 1}, kSummit);
  EXPECT_GT(s.makespan, 5.0);
}

TEST(Des, DeadlockDetected) {
  std::vector<RankProgram> prog(2);
  prog[0].push_back(Op{Op::Kind::kRecv, 0, 1, 0, 1});
  prog[1].push_back(Op{Op::Kind::kRecv, 0, 0, 0, 2});
  EXPECT_THROW(simulate(prog, {0, 1}, kSummit), check_error);
}

TEST(Des, NicContentionSerialisesEgress) {
  // Two ranks on node 0 each send 10ms worth of data to node 1: the
  // shared egress NIC must serialise them (~20 ms total).
  MachineConfig m = kSummit;
  std::vector<RankProgram> prog(4);
  const std::int64_t bytes = 250'000'000;
  prog[0].push_back(Op{Op::Kind::kSend, 0, 2, bytes, 1});
  prog[1].push_back(Op{Op::Kind::kSend, 0, 3, bytes, 2});
  prog[2].push_back(Op{Op::Kind::kRecv, 0, 0, 0, 1});
  prog[3].push_back(Op{Op::Kind::kRecv, 0, 1, 0, 2});
  const SimStats s = simulate(prog, {0, 0, 1, 1}, m);
  EXPECT_GT(s.makespan, 0.019);
}

// --- Experiment drivers -------------------------------------------------------

TEST(Experiments, BalancedFactors) {
  EXPECT_EQ(balanced_factors(64), (std::pair<int, int>{8, 8}));
  EXPECT_EQ(balanced_factors(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(balanced_factors(7), (std::pair<int, int>{1, 7}));
  EXPECT_EQ(balanced_factors(1), (std::pair<int, int>{1, 1}));
}

TEST(Experiments, LegendsMatchPaper) {
  const auto legends = paper_legends();
  ASSERT_EQ(legends.size(), 5u);
  EXPECT_EQ(legends[0].name, "baseline");
  EXPECT_EQ(legends[3].name, "+async");
  EXPECT_TRUE(legends[3].reordered);
  EXPECT_FALSE(legends[0].reordered);
}

TEST(Experiments, VariantOrderingAtScale) {
  // On 64 nodes at a communication-sensitive size, each optimisation must
  // help: baseline >= pipelined >= +reordering >= +async (time).
  const auto legends = paper_legends();
  const double n = 131072, b = 768;
  double prev = 1e30;
  for (std::size_t i = 0; i < 4; ++i) {
    const RunPoint p = simulate_fw(kSummit, legends[i], 64, n, b);
    EXPECT_LE(p.seconds, prev * 1.02)
        << legends[i].name << " slower than its predecessor";
    prev = p.seconds;
  }
}

TEST(Experiments, AsyncNearComputeBoundAtLargeN) {
  // Large problems are compute-bound: the optimised variant must land
  // close to the pure-compute floor, baseline further away.
  const Legend async = paper_legends()[3];
  const double n = 524288, b = 768;
  const RunPoint p = simulate_fw(kSummit, async, 64, n, b);
  const double floor_t = model_compute_time(kSummit, n, 64 * 12);
  EXPECT_GT(p.seconds, floor_t * 0.99);
  EXPECT_LT(p.seconds, floor_t * 1.35);
}

TEST(Experiments, StrongScalingSpeedsUp) {
  const Legend async = paper_legends()[3];
  const double n = 300000, b = 768;
  const RunPoint p16 = simulate_fw(kSummit, async, 16, n, b);
  const RunPoint p64 = simulate_fw(kSummit, async, 64, n, b);
  const RunPoint p256 = simulate_fw(kSummit, async, 256, n, b);
  EXPECT_LT(p64.seconds, p16.seconds);
  EXPECT_LT(p256.seconds, p64.seconds);
  // Parallel efficiency at 256 nodes should be meaningful (paper: ~45-80%).
  const double eff = (p16.seconds / p256.seconds) / 16.0;
  EXPECT_GT(eff, 0.3);
}

TEST(Experiments, OffloadCloseToInGpuVariant) {
  // Paper §5.4: well-tuned Me-ParallelFw reaches ~80% of Co-ParallelFw.
  const double n = 300000, b = 768;
  const RunPoint off = simulate_fw(kSummit, paper_legends()[4], 64, n, b);
  const RunPoint async = simulate_fw(kSummit, paper_legends()[3], 64, n, b);
  EXPECT_GT(async.pflops / off.pflops, 1.0);
  EXPECT_LT(async.pflops / off.pflops, 2.0);
}

TEST(Experiments, BackgroundRelaysNeverSlowTheSchedule) {
  // With NIC-agent relays the ring's forwarding no longer sits in the
  // ranks' programs: the async makespan must be <= the host-driven one.
  const Legend async = paper_legends()[3];
  const GridSetup setup = make_grid(kSummit, 16, async.reordered);
  FwProblem prob;
  prob.variant = async.variant;
  prob.n = 98304;
  prob.b = 768;
  prob.background_relays = true;
  const BuiltProgram bg = build_fw_program(kSummit, prob, setup.grid, setup.node_of);
  prob.background_relays = false;
  const BuiltProgram fg = build_fw_program(kSummit, prob, setup.grid, setup.node_of);
  const double t_bg = simulate(bg.programs, bg.node_of, kSummit).makespan;
  const double t_fg = simulate(fg.programs, fg.node_of, kSummit).makespan;
  EXPECT_LE(t_bg, t_fg * 1.001);
  // Agents triple the process count but move identical internode volume.
  EXPECT_EQ(bg.programs.size(), 3 * fg.programs.size());
  const double v_bg = simulate(bg.programs, bg.node_of, kSummit).internode_bytes;
  const double v_fg = simulate(fg.programs, fg.node_of, kSummit).internode_bytes;
  EXPECT_NEAR(v_bg, v_fg, 0.01 * v_fg);
}

TEST(Experiments, BackgroundRelaysAbsorbNetworkJitter) {
  // §3.3: link noise must not propagate into the async schedule.
  const Legend async = paper_legends()[3];
  const Legend base = paper_legends()[0];
  const double n = 98304, b = 768;
  auto run = [&](const Legend& l, double jitter) {
    MachineConfig m = kSummit;
    m.net_jitter = jitter;
    const GridSetup setup = make_grid(m, 16, l.reordered);
    FwProblem prob;
    prob.variant = l.variant;
    prob.n = n;
    prob.b = b;
    const BuiltProgram built = build_fw_program(m, prob, setup.grid, setup.node_of);
    return simulate(built.programs, built.node_of, m).makespan;
  };
  const double async_added = run(async, 1.0) - run(async, 0.0);
  const double base_added = run(base, 1.0) - run(base, 0.0);
  EXPECT_LT(async_added, 0.25 * base_added);
}

TEST(Des, NetworkJitterInflatesTransfers) {
  MachineConfig m = kSummit;
  m.net_jitter = 1.0;
  std::vector<RankProgram> prog(2);
  const std::int64_t bytes = 250'000'000;
  prog[0].push_back(Op{Op::Kind::kSend, 0, 1, bytes, 7});
  prog[1].push_back(Op{Op::Kind::kRecv, 0, 0, 0, 7});
  const double noisy = simulate(prog, {0, 1}, m).makespan;
  m.net_jitter = 0.0;
  const double clean = simulate(prog, {0, 1}, m).makespan;
  EXPECT_GT(noisy, clean);
  EXPECT_LT(noisy, clean * 2.1);
}

TEST(Experiments, BcastProgramsRingVsTree) {
  // Ring total volume equals tree volume, but the ring pipelines: for a
  // large payload over many ranks the ring must finish sooner.
  MachineConfig m = kSummit;
  std::vector<int> node_of(16);
  for (int i = 0; i < 16; ++i) node_of[static_cast<std::size_t>(i)] = i;  // one rank per node
  const std::int64_t bytes = 64 << 20;
  const auto tree = build_bcast_program(m, 16, bytes, false, node_of);
  const auto ring = build_bcast_program(m, 16, bytes, true, node_of);
  const double t_tree = simulate(tree, node_of, m).makespan;
  const double t_ring = simulate(ring, node_of, m).makespan;
  EXPECT_LT(t_ring, t_tree);
}

}  // namespace
}  // namespace parfw::perf
