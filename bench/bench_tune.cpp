// Schedule autotuner on the reference causal workload (DESIGN.md §4.10).
//
// BENCH_cp.json's finding: the default distributed schedule — async,
// naive 6x8 grid, b=768 on 4 Summit nodes at n=49152 — spends ~80% of
// its critical path STALLED. This bench closes the loop: it runs the
// full causal-feedback tuner over variant × placement × block × offload
// depth and reports the winning schedule next to the default, with the
// blame split that drove the search.
//
// The claim gated by BENCH_tune.json (scripts/check.sh --bench):
//   * the tuned schedule's DES makespan is <= the default's, and
//   * its critical-path stall SHARE is cut by >= 20% relative —
// i.e. the tuner finds schedules that are faster because they overlap,
// not because they gamble more of the path on stall.
//
// PARFW_BENCH_JSON=FILE writes the tune/* rows this baseline pins.
#include <cstdio>

#include "fig_common.hpp"
#include "tune/tune.hpp"
#include "util/table.hpp"

using namespace parfw;

int main() {
  std::printf(
      "== schedule autotuner: causal-feedback search (reference workload) "
      "==\n"
      "Workload of BENCH_cp.json: n=49152 on 4 Summit nodes (48 ranks, "
      "12/node).\n"
      "Objective: makespan + 1.0 x critical-path stall seconds.\n\n");

  tune::Workload w;
  w.n = 49152;
  w.ranks = 48;
  w.ranks_per_node = 12;

  tune::TuneOptions topt;
  tune::Tuner tuner(w, topt);
  const tune::TuneReport r = tuner.run();
  std::fputs(r.summary().c_str(), stdout);

  Table t({"schedule", "config", "makespan s", "stall %", "comm %",
           "compute %", "floor s"});
  const auto row = [&t](const char* label, const tune::Candidate& c,
                        const tune::Eval& e) {
    t.add_row({label, c.name(), Table::num(e.makespan, 6),
               Table::num(100.0 * e.stall_share, 1),
               Table::num(100.0 * e.comm_share, 1),
               Table::num(100.0 * e.compute_share, 1),
               Table::num(e.structural_floor, 6)});
  };
  row("default", r.seed, r.seed_eval);
  row("tuned", r.winner, r.winner_eval);
  std::printf("\n%s", t.str().c_str());

  const double cut =
      r.seed_eval.stall_share > 0.0
          ? 1.0 - r.winner_eval.stall_share / r.seed_eval.stall_share
          : 0.0;
  std::printf(
      "\nchecks:\n"
      "  tuned makespan <= default        %s (%.6f vs %.6f)\n"
      "  stall share cut >= 20%% relative  %s (%.1f%%)\n",
      r.winner_eval.makespan <= r.seed_eval.makespan ? "yes" : "NO",
      r.winner_eval.makespan, r.seed_eval.makespan, cut >= 0.20 ? "yes" : "NO",
      100.0 * cut);

  bench::BenchJson json;
  json.add("tune/makespan_default", r.seed_eval.makespan, "share", 1.0);
  json.add("tune/makespan_tuned", r.winner_eval.makespan, "share",
           r.winner_eval.makespan / r.seed_eval.makespan);
  json.add("tune/stall_default",
           r.seed_eval.makespan * r.seed_eval.stall_share, "share",
           r.seed_eval.stall_share);
  json.add("tune/stall_tuned",
           r.winner_eval.makespan * r.winner_eval.stall_share, "share",
           r.winner_eval.stall_share);
  return 0;
}
