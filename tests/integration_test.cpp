// Cross-module integration tests: integer semirings through the full
// solver stack, alternative semirings through the distributed runtime,
// DES traffic against the closed-form volume model, and an end-to-end
// "huge graph" pipeline at miniature scale.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/apsp.hpp"
#include "core/floyd_warshall.hpp"
#include "dist/driver.hpp"
#include "dist/solve.hpp"
#include "graph/generators.hpp"
#include "perf/experiments.hpp"
#include "sssp/sssp.hpp"

namespace parfw {
namespace {

// --- integer-weight solves through every engine -----------------------------

TEST(IntegerWeights, Int32MatchesDoubleOracle) {
  using Si = MinPlus<std::int32_t>;
  using Sd = MinPlus<double>;
  const auto g = gen::erdos_renyi(60, 0.15, 901, 1.0, 1000.0, /*integral=*/true);

  auto di = g.distance_matrix<Si>();
  blocked_floyd_warshall<Si>(di.view(), {{.block_size = 16}});
  auto dd = g.distance_matrix<Sd>();
  floyd_warshall<Sd>(dd.view());

  for (std::size_t i = 0; i < 60; ++i)
    for (std::size_t j = 0; j < 60; ++j) {
      if (value_traits<double>::is_inf(dd(i, j))) {
        EXPECT_TRUE(value_traits<std::int32_t>::is_inf(di(i, j)));
      } else {
        EXPECT_EQ(static_cast<double>(di(i, j)), dd(i, j));
      }
    }
}

TEST(IntegerWeights, Int64LargeWeightsNoOverflow) {
  using S64 = MinPlus<std::int64_t>;
  // Weights near 2^40: sums of up to n of them stay well below the
  // saturation sentinel; unreachable pairs must stay exactly "infinite".
  Graph g(20);
  Rng rng(17);
  for (vertex_t i = 0; i + 1 < 20; ++i)
    g.add_edge(i, i + 1,
               static_cast<double>((std::int64_t{1} << 40) +
                                   static_cast<std::int64_t>(rng.next_below(1000))));
  auto d = g.distance_matrix<S64>();
  blocked_floyd_warshall<S64>(d.view(), {{.block_size = 4}});
  EXPECT_GT(d(0, 19), std::int64_t{19} << 40);
  EXPECT_FALSE(value_traits<std::int64_t>::is_inf(d(0, 19)));
  EXPECT_TRUE(value_traits<std::int64_t>::is_inf(d(19, 0)));
}

TEST(IntegerWeights, Int32SaturationOnLongPaths) {
  using S32 = MinPlus<std::int32_t>;
  // A chain whose total weight exceeds int32 "infinity"/2: the saturating
  // ⊗ must clamp instead of wrapping negative.
  Graph g(10);
  for (vertex_t i = 0; i + 1 < 10; ++i) g.add_edge(i, i + 1, 2.0e8);
  auto d = g.distance_matrix<S32>();
  floyd_warshall<S32>(d.view());
  // 9 hops x 2e8 = 1.8e9 > inf sentinel (~1.07e9): clamps to "infinite".
  EXPECT_TRUE(value_traits<std::int32_t>::is_inf(d(0, 9)));
  EXPECT_EQ(d(0, 2), 400000000);
}

// --- alternative semirings through the distributed runtime --------------------

TEST(DistSemirings, MaxMinWidestPathDistributed) {
  using W = MaxMin<float>;
  const std::size_t n = 32, b = 8;
  DenseEntryGen<float> gen(777, 0.6, 1.0f, 100.0f, /*integral=*/true);

  auto expected = Matrix<float>(n, n, W::zero());
  for (std::size_t i = 0; i < n; ++i) expected(i, i) = W::one();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float w = gen(static_cast<vertex_t>(i), static_cast<vertex_t>(j));
      if (!value_traits<float>::is_inf(w)) expected(i, j) = w;
    }
  auto init = expected.clone();
  floyd_warshall<W>(expected.view());

  const auto grid = dist::GridSpec::row_major(2, 2);
  Matrix<float> gathered;
  mpi::Runtime::run(4, [&](mpi::Comm& world) {
    dist::BlockCyclicMatrix<float> local(n, b, grid,
                                         grid.coord_of(world.rank()));
    local.load(init.view());
    dist::DistFwOptions opt;
    opt.variant = dist::Variant::kAsync;
    opt.block_size = b;
    dist::parallel_fw<W>(world, local, opt);
    auto out = local.gather(world);
    if (world.rank() == 0) gathered = std::move(out);
  });
  EXPECT_EQ(max_abs_diff<float>(expected.view(), gathered.view()), 0.0);
}

TEST(DistSemirings, TransitiveClosureDistributed) {
  using B = BoolOrAnd;
  const std::size_t n = 32, b = 8;
  const auto g = gen::erdos_renyi(static_cast<vertex_t>(n), 0.06, 611);

  Matrix<std::uint8_t> init(n, n, B::zero());
  for (std::size_t v = 0; v < n; ++v) init(v, v) = B::one();
  for (const Edge& e : g.edges()) init(e.src, e.dst) = B::one();
  auto expected = init.clone();
  floyd_warshall<B>(expected.view());

  const auto grid = dist::GridSpec::row_major(2, 2);
  Matrix<std::uint8_t> gathered;
  mpi::Runtime::run(4, [&](mpi::Comm& world) {
    dist::BlockCyclicMatrix<std::uint8_t> local(n, b, grid,
                                                grid.coord_of(world.rank()));
    local.load(init.view());
    dist::DistFwOptions opt;
    opt.variant = dist::Variant::kPipelined;
    opt.block_size = b;
    dist::parallel_fw<B>(world, local, opt);
    auto out = local.gather(world);
    if (world.rank() == 0) gathered = std::move(out);
  });
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(gathered(i, j), expected(i, j)) << i << "," << j;
}

// --- DES traffic vs the closed-form volume model -------------------------------

TEST(DesVolume, InternodeBytesTrackTheModel) {
  // The node-aware collectives deliver each panel to each node once, so
  // the DES's total internode volume must sit close to
  // nodes x model_node_volume (diag broadcasts add a little).
  using namespace perf;
  const MachineConfig m = MachineConfig::summit();
  for (int nodes : {4, 16}) {
    const double n = 49152, b = 768;
    const GridSetup setup = make_grid(m, nodes, /*reordered=*/true);
    GridShape shape{setup.grid.rows(), setup.grid.cols(), setup.grid.qr(),
                    setup.grid.qc()};
    const double model = model_node_volume(m, n, shape) * nodes;

    // Ring panel broadcasts (kAsync) are volume-minimal: each node
    // receives each panel exactly once, so the DES total must sit right
    // on the model (diag broadcasts add a few percent).
    FwProblem prob;
    prob.variant = dist::Variant::kAsync;
    prob.n = n;
    prob.b = b;
    const BuiltProgram built_ring =
        build_fw_program(m, prob, setup.grid, setup.node_of);
    const SimStats ring = simulate(built_ring.programs, built_ring.node_of, m);
    EXPECT_GT(ring.internode_bytes, 0.95 * model) << nodes << " nodes";
    EXPECT_LT(ring.internode_bytes, 1.15 * model) << nodes << " nodes";

    // Binomial trees (kBaseline) duplicate some internode hops; they may
    // exceed the bound but only by a small constant factor.
    prob.variant = dist::Variant::kBaseline;
    const BuiltProgram built_tree =
        build_fw_program(m, prob, setup.grid, setup.node_of);
    const SimStats tree = simulate(built_tree.programs, built_tree.node_of, m);
    EXPECT_GE(tree.internode_bytes, ring.internode_bytes) << nodes << " nodes";
    EXPECT_LT(tree.internode_bytes, 2.0 * model) << nodes << " nodes";
  }
}

TEST(DesVolume, ReorderedPlacementMovesFewerBytes) {
  using namespace perf;
  const MachineConfig m = MachineConfig::summit();
  const double n = 49152, b = 768;
  const int nodes = 16;
  double vols[2];
  int i = 0;
  for (bool reordered : {false, true}) {
    const GridSetup setup = make_grid(m, nodes, reordered);
    FwProblem prob;
    prob.variant = dist::Variant::kPipelined;
    prob.n = n;
    prob.b = b;
    const BuiltProgram built =
        build_fw_program(m, prob, setup.grid, setup.node_of);
    vols[i++] = simulate(built.programs, built.node_of, m).internode_bytes;
  }
  EXPECT_LT(vols[1], vols[0]);
}

// --- end-to-end miniature pipeline ---------------------------------------------

TEST(Pipeline, DistributedPathsAgreeWithDijkstra) {
  // Generate -> distribute -> solve with paths -> gather -> reconstruct
  // routes -> validate against Dijkstra, the full production flow.
  using S = MinPlus<float>;
  const std::size_t n = 36, b = 6;
  DenseEntryGen<float> gen(2024, 0.35, 1.0f, 50.0f, /*integral=*/true);
  const auto grid = dist::GridSpec::tiled(1, 3, 2, 1);  // 2x3 ranks

  Matrix<float> dist_m;
  Matrix<std::int64_t> pred_m;
  mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
    dist::BlockCyclicMatrix<float> local(n, b, grid,
                                         grid.coord_of(world.rank()));
    dist::BlockCyclicMatrix<std::int64_t> plocal(n, b, grid,
                                                 grid.coord_of(world.rank()));
    local.fill(gen);
    dist::init_predecessors_dist<S>(local, plocal);
    dist::DistFwOptions opt;
    opt.block_size = b;
    dist::parallel_fw<S>(world, local, plocal, opt);
    auto d = local.gather(world);
    auto p = plocal.gather(world);
    if (world.rank() == 0) {
      dist_m = std::move(d);
      pred_m = std::move(p);
    }
  });

  // Dijkstra oracle built from the same generator.
  Graph g(static_cast<vertex_t>(n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float w = gen(static_cast<vertex_t>(i), static_cast<vertex_t>(j));
      if (!value_traits<float>::is_inf(w))
        g.add_edge(static_cast<vertex_t>(i), static_cast<vertex_t>(j),
                   static_cast<double>(w));
    }
  for (vertex_t src : {0, 17, 35}) {
    const auto oracle = sssp::dijkstra(g, src);
    for (std::size_t t = 0; t < n; ++t) {
      if (oracle.dist[t] == sssp::kInf) {
        EXPECT_TRUE(value_traits<float>::is_inf(dist_m(src, t)));
        continue;
      }
      EXPECT_EQ(static_cast<double>(dist_m(src, t)), oracle.dist[t]);
      if (static_cast<std::size_t>(src) == t) continue;
      const auto path = reconstruct_path(pred_m.view(), src,
                                         static_cast<std::int64_t>(t));
      ASSERT_GE(path.size(), 2u);
      EXPECT_EQ(path.front(), src);
      EXPECT_EQ(path.back(), static_cast<std::int64_t>(t));
    }
  }
}

TEST(Pipeline, AutoVariantPathsBitIdenticalToBlockedOracle) {
  // `--variant auto` with paths: the tuner resolves the schedule against
  // the paths cost model, then the resolved run's pred matrix must still
  // be bit-identical to the single-node blocked oracle AT THE WINNING
  // BLOCK SIZE (resolve_auto is deterministic, so querying it up front
  // sees the same winner solve() will use).
  using S = MinPlus<float>;
  const vertex_t n = 36;
  const auto g = gen::erdos_renyi(n, 0.3, 4242, 1.0, 50.0, /*integral=*/true);

  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kDistributed;
  opt.track_paths = true;
  opt.dist.variant = sched::Variant::kAuto;
  opt.dist.grid_rows = 2;
  opt.dist.grid_cols = 2;
  opt.dist.ranks_per_node = 2;

  const tune::ManifestEntry entry = resolve_auto(
      opt.dist, static_cast<std::size_t>(n), sizeof(float),
      /*track_paths=*/true);
  EXPECT_TRUE(entry.workload.track_paths);

  const auto result = solve<S>(g, opt);
  ASSERT_TRUE(result.pred.has_value());

  ApspOptions sopt;
  sopt.algorithm = ApspAlgorithm::kBlocked;
  sopt.track_paths = true;
  sopt.block_size = entry.winner.block;
  const auto oracle = apsp<S>(g, sopt);
  ASSERT_TRUE(oracle.pred.has_value());

  EXPECT_EQ(max_abs_diff<float>(oracle.dist.view(), result.dist.view()), 0.0);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i)
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
      if ((*result.pred)(i, j) != (*oracle.pred)(i, j)) ++mismatches;
  EXPECT_EQ(mismatches, 0u) << "winner block=" << entry.winner.block;
}

}  // namespace
}  // namespace parfw
