// Unified path-query surface.
//
// One request/response vocabulary shared by every layer that answers
// "what is the shortest path from s to t?":
//
//   * ApspResult<T>::query/answer — in-memory results (core/apsp.hpp)
//   * serve::PathService          — tile-backed serving (serve/path_service.hpp)
//   * tools/apsp_cli              — the --query flag (batched, repeatable)
//
// A QueryResult always carries the closed semiring distance; the path
// field is meaningful only when status == kFound AND the batch asked for
// paths. The three-way status replaces the old ApspResult::path contract,
// which returned an empty vector for both "unreachable" and "paths were
// never tracked" — indistinguishable to callers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace parfw {

enum class PathStatus : std::uint8_t {
  kFound = 0,        ///< dst reachable; path populated when requested
  kUnreachable = 1,  ///< no path exists (distance is the semiring zero)
  kNotTracked = 2,   ///< solve ran without track_paths; distance only
};

inline const char* path_status_name(PathStatus s) {
  switch (s) {
    case PathStatus::kFound: return "found";
    case PathStatus::kUnreachable: return "unreachable";
    case PathStatus::kNotTracked: return "not-tracked";
  }
  return "?";
}

struct PathQuery {
  std::int64_t src = 0;
  std::int64_t dst = 0;
};

/// A batch of point-to-point queries. One-to-many is expressed as many
/// pairs sharing a source — answerers exploit the shared source tiles
/// through their caches, not through a special request shape.
struct QueryBatch {
  std::vector<PathQuery> pairs;
  /// When false, answerers skip path reconstruction (status + distance
  /// only). This is what lets distance queries run against values-only
  /// manifests that never tracked predecessors.
  bool want_paths = true;

  void add(std::int64_t src, std::int64_t dst) { pairs.push_back({src, dst}); }
  void add_one_to_many(std::int64_t src, std::span<const std::int64_t> dsts) {
    pairs.reserve(pairs.size() + dsts.size());
    for (std::int64_t d : dsts) pairs.push_back({src, d});
  }
  static QueryBatch one_to_all(std::int64_t src, std::int64_t n) {
    QueryBatch b;
    b.pairs.reserve(static_cast<std::size_t>(n));
    for (std::int64_t d = 0; d < n; ++d) b.pairs.push_back({src, d});
    return b;
  }
  std::size_t size() const { return pairs.size(); }
  bool empty() const { return pairs.empty(); }
};

template <typename T>
struct QueryResult {
  PathStatus status = PathStatus::kNotTracked;
  /// Closed semiring distance dist(src, dst); always valid (the semiring
  /// zero when unreachable).
  T distance{};
  /// Vertex ids src..dst inclusive ({src} when src == dst). Empty unless
  /// status == kFound and the batch requested paths.
  std::vector<std::int64_t> path;
};

}  // namespace parfw
