// 2-D block-cyclic distribution of the distance matrix (paper §2.5.1).
//
// Global block (I, J) of size b x b lives on the rank at grid coordinate
// (I mod P_r, J mod P_c). A rank's blocks are stored packed into ONE local
// row-major matrix of shape (nlr·b) x (nlc·b), where nlr/nlc are the
// counts of owned block rows/columns: local block (il, jl) is the
// sub-view at (il·b, jl·b). Packing the blocks lets PanelUpdate and
// OuterUpdate run as single strip-level SRGEMM calls over the whole local
// matrix — the same reason the paper's implementation stores the local
// matrix contiguously on the GPU.
//
// The global matrix dimension must be a multiple of the block size (the
// paper's configurations all satisfy this; padding is the caller's job).
#pragma once

#include <cstdint>
#include <vector>

#include "dist/grid.hpp"
#include "graph/graph.hpp"
#include "mpisim/communicator.hpp"
#include "util/matrix.hpp"

namespace parfw::dist {

template <typename T>
class BlockCyclicMatrix {
 public:
  /// Layout for dimension n, block size b, on `grid`, as seen by the rank
  /// at grid coordinate `me`.
  BlockCyclicMatrix(std::size_t n, std::size_t b, const GridSpec& grid,
                    GridCoord me)
      : n_(n), b_(b), nb_(n / b), grid_(grid), me_(me) {
    PARFW_CHECK_MSG(n % b == 0, "matrix dim " << n
                                              << " not a multiple of block "
                                              << b);
    nlr_ = count_owned(nb_, me_.row, grid_.rows());
    nlc_ = count_owned(nb_, me_.col, grid_.cols());
    local_ = Matrix<T>(nlr_ * b_, nlc_ * b_);
  }

  std::size_t n() const { return n_; }
  std::size_t block_size() const { return b_; }
  std::size_t num_blocks() const { return nb_; }         ///< per dimension
  std::size_t local_block_rows() const { return nlr_; }
  std::size_t local_block_cols() const { return nlc_; }
  GridCoord coord() const { return me_; }
  const GridSpec& grid() const { return grid_; }

  Matrix<T>& local() { return local_; }
  const Matrix<T>& local() const { return local_; }

  bool owns_block_row(std::size_t gI) const {
    return static_cast<int>(gI % static_cast<std::size_t>(grid_.rows())) ==
           me_.row;
  }
  bool owns_block_col(std::size_t gJ) const {
    return static_cast<int>(gJ % static_cast<std::size_t>(grid_.cols())) ==
           me_.col;
  }
  bool owns_block(std::size_t gI, std::size_t gJ) const {
    return owns_block_row(gI) && owns_block_col(gJ);
  }
  /// Local block-row index of global block-row gI (must be owned).
  std::size_t local_row(std::size_t gI) const {
    PARFW_DCHECK(owns_block_row(gI));
    return gI / static_cast<std::size_t>(grid_.rows());
  }
  std::size_t local_col(std::size_t gJ) const {
    PARFW_DCHECK(owns_block_col(gJ));
    return gJ / static_cast<std::size_t>(grid_.cols());
  }
  /// Global block-row index of local block-row il.
  std::size_t global_row(std::size_t il) const {
    return il * static_cast<std::size_t>(grid_.rows()) +
           static_cast<std::size_t>(me_.row);
  }
  std::size_t global_col(std::size_t jl) const {
    return jl * static_cast<std::size_t>(grid_.cols()) +
           static_cast<std::size_t>(me_.col);
  }

  MatrixView<T> block(std::size_t il, std::size_t jl) {
    return local_.sub(il * b_, jl * b_, b_, b_);
  }

  /// Fill every owned entry from a deterministic per-entry generator —
  /// no communication, identical to the sequential oracle's matrix.
  void fill(const DenseEntryGen<T>& gen) {
    for (std::size_t il = 0; il < nlr_; ++il)
      for (std::size_t jl = 0; jl < nlc_; ++jl)
        gen.fill_block(static_cast<vertex_t>(global_row(il) * b_),
                       static_cast<vertex_t>(global_col(jl) * b_),
                       block(il, jl));
  }

  /// Scatter-free load from a full matrix (each rank copies its blocks).
  void load(MatrixView<const T> full) {
    PARFW_CHECK(full.rows() == n_ && full.cols() == n_);
    for (std::size_t il = 0; il < nlr_; ++il)
      for (std::size_t jl = 0; jl < nlc_; ++jl)
        block(il, jl).copy_from(
            full.sub(global_row(il) * b_, global_col(jl) * b_, b_, b_));
  }

  /// Gather the distributed matrix to world rank 0 (returns an empty
  /// matrix elsewhere). Collective over `world`.
  Matrix<T> gather(mpi::Comm& world) const {
    const mpi::tag_t kTag = 100;
    if (world.rank() != 0) {
      world.send(std::span<const T>(local_.data(), local_.size()), 0, kTag);
      return {};
    }
    Matrix<T> full(n_, n_);
    for (int r = 0; r < world.size(); ++r) {
      const GridCoord rc = grid_.coord_of(r);
      BlockCyclicMatrix<T> peer(n_, b_, grid_, rc);
      if (r == 0)
        peer.local_ = local_.clone();
      else
        world.recv(std::span<T>(peer.local_.data(), peer.local_.size()), r,
                   kTag);
      for (std::size_t il = 0; il < peer.nlr_; ++il)
        for (std::size_t jl = 0; jl < peer.nlc_; ++jl)
          full.sub(peer.global_row(il) * b_, peer.global_col(jl) * b_, b_, b_)
              .copy_from(peer.block(il, jl));
    }
    return full;
  }

 private:
  static std::size_t count_owned(std::size_t nb, int mine, int p) {
    // Blocks {mine, mine+p, mine+2p, ...} below nb.
    const std::size_t m = static_cast<std::size_t>(mine);
    const std::size_t ps = static_cast<std::size_t>(p);
    return m >= nb ? 0 : (nb - m - 1) / ps + 1;
  }

  std::size_t n_, b_, nb_;
  GridSpec grid_;
  GridCoord me_;
  std::size_t nlr_ = 0, nlc_ = 0;
  Matrix<T> local_;
};

}  // namespace parfw::dist
