// Checkpoint/restart for long APSP runs.
//
// A 1.66M-vertex FW run on 64 Summit nodes takes hours; leadership
// systems require applications to survive node failures. Blocked FW is
// naturally checkpointable: after iteration k the matrix state fully
// determines the remaining work, so a checkpoint is (header, k, matrix)
// and restart is "run the block loop from k".
//
// Format v2: the fixed 40-byte v1 header (magic, version, element size,
// n, next block iteration, block size) followed by a 40-byte extension
// (schedule position: variant + sched op index; distribution: grid shape,
// grid coordinate, per-rank tile manifest length), the tile manifest
// (tile_count pairs of global block coordinates) and the raw row-major
// matrix payload — the full matrix for single-node blobs (tile_count = 0),
// a rank's packed local matrix for distributed blobs (dist/checkpoint.hpp).
// v1 blobs (bare header + full matrix) still load.
//
// Blobs travel through any std::iostream or, preferably, through a
// CheckpointStore key (checkpoint_store.hpp) — the sink/source the
// distributed resilience layer and the examples use.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "core/blocked_fw.hpp"
#include "core/checkpoint_store.hpp"
#include "util/matrix.hpp"

namespace parfw {

struct CheckpointHeader {
  static constexpr std::uint64_t kMagic = 0x50464b43'50415246ull;  // "PARFWCKP"
  static constexpr std::uint32_t kVersion = 2;
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t elem_size = 0;
  std::uint64_t n = 0;
  std::uint64_t next_block = 0;  ///< first UNfinished block iteration
  std::uint64_t block_size = 0;
};

/// v2 extension, immediately after the header. Single-node blobs leave
/// everything at the defaults (1x1 "grid", full matrix, no manifest).
struct CheckpointExtV2 {
  std::uint32_t variant = 0;     ///< sched::Variant of the producing run
  std::uint32_t grid_rows = 1;   ///< process grid shape
  std::uint32_t grid_cols = 1;
  std::int32_t coord_row = 0;    ///< producing rank's grid coordinate
  std::int32_t coord_col = 0;
  /// sizeof one predecessor id when the blob carries a pred payload after
  /// the value payload (paths runs); 0 = values only. Occupies the v2
  /// format's former reserved word, which every existing producer wrote
  /// as 0 — old blobs load as "no predecessors" with no format bump.
  std::uint32_t pred_elem_size = 0;
  std::uint64_t sched_op_index = 0;  ///< schedule position within the run
  std::uint64_t tile_count = 0;  ///< manifest entries (0 = full matrix)
};
static_assert(sizeof(CheckpointHeader) == 40 && sizeof(CheckpointExtV2) == 40,
              "checkpoint blob layout is part of the on-disk format");

/// One manifest entry: the global block coordinate of a local tile, in
/// the row-major order the tiles appear in the payload.
struct CheckpointTileRef {
  std::uint64_t block_row = 0;
  std::uint64_t block_col = 0;
};

/// Write a v2 checkpoint of an in-progress (or finished) single-node
/// blocked FW run: full matrix, empty manifest.
template <typename T>
void save_checkpoint(std::ostream& out, MatrixView<const T> dist,
                     std::size_t next_block, std::size_t block_size,
                     const CheckpointExtV2& ext = {}) {
  PARFW_CHECK(dist.rows() == dist.cols());
  CheckpointHeader h;
  h.elem_size = sizeof(T);
  h.n = dist.rows();
  h.next_block = next_block;
  h.block_size = block_size;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  CheckpointExtV2 e = ext;
  e.tile_count = 0;
  out.write(reinterpret_cast<const char*>(&e), sizeof(e));
  for (std::size_t i = 0; i < dist.rows(); ++i)
    out.write(reinterpret_cast<const char*>(dist.data() + i * dist.ld()),
              static_cast<std::streamsize>(dist.cols() * sizeof(T)));
  PARFW_CHECK_MSG(out.good(), "checkpoint write failed");
}

/// Result of load_checkpoint: the matrix plus where to resume.
template <typename T>
struct LoadedCheckpoint {
  Matrix<T> dist;
  std::size_t next_block = 0;
  std::size_t block_size = 0;
  CheckpointExtV2 ext{};  ///< defaults for v1 blobs
};

/// Read the common header and validate magic/version/element size.
/// Returns the header; v2 blobs additionally fill `ext`.
template <typename T>
CheckpointHeader read_checkpoint_header(std::istream& in,
                                        CheckpointExtV2& ext) {
  CheckpointHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  PARFW_CHECK_MSG(in.good() && h.magic == CheckpointHeader::kMagic,
                  "not a parallelfw checkpoint");
  PARFW_CHECK_MSG(h.version == 1 || h.version == 2,
                  "unsupported checkpoint version " << h.version);
  PARFW_CHECK_MSG(h.elem_size == sizeof(T),
                  "checkpoint element size " << h.elem_size
                                             << " != requested " << sizeof(T));
  ext = CheckpointExtV2{};
  if (h.version >= 2) {
    in.read(reinterpret_cast<char*>(&ext), sizeof(ext));
    PARFW_CHECK_MSG(in.good(), "checkpoint extension truncated");
  }
  return h;
}

/// Load a single-matrix checkpoint (v1, or v2 with an empty manifest).
/// Distributed per-rank blobs load through dist::load_rank_checkpoint.
template <typename T>
LoadedCheckpoint<T> load_checkpoint(std::istream& in) {
  LoadedCheckpoint<T> out;
  const CheckpointHeader h = read_checkpoint_header<T>(in, out.ext);
  PARFW_CHECK_MSG(out.ext.tile_count == 0,
                  "per-rank tile checkpoint; use dist::load_rank_checkpoint");
  out.dist = Matrix<T>(static_cast<std::size_t>(h.n),
                       static_cast<std::size_t>(h.n));
  in.read(reinterpret_cast<char*>(out.dist.data()),
          static_cast<std::streamsize>(h.n * h.n * sizeof(T)));
  PARFW_CHECK_MSG(in.good(), "checkpoint payload truncated");
  out.next_block = static_cast<std::size_t>(h.next_block);
  out.block_size = static_cast<std::size_t>(h.block_size);
  return out;
}

// --- CheckpointStore plumbing --------------------------------------------

/// Store a serialised blob under `key`. Returns the blob size in bytes.
inline std::size_t put_blob(CheckpointStore& store, const std::string& key,
                            const std::string& blob) {
  store.put(key, std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(blob.data()),
                     blob.size()));
  return blob.size();
}

/// Save a single-matrix checkpoint into a store.
template <typename T>
std::size_t save_checkpoint(CheckpointStore& store, const std::string& key,
                            MatrixView<const T> dist, std::size_t next_block,
                            std::size_t block_size,
                            const CheckpointExtV2& ext = {}) {
  std::ostringstream out(std::ios::binary);
  save_checkpoint<T>(out, dist, next_block, block_size, ext);
  return put_blob(store, key, std::move(out).str());
}

/// Load a single-matrix checkpoint from a store key.
template <typename T>
LoadedCheckpoint<T> load_checkpoint(const CheckpointStore& store,
                                    const std::string& key) {
  auto blob = store.get(key);
  PARFW_CHECK_MSG(blob.has_value(), "no checkpoint under key '" << key << "'");
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob->data()), blob->size()),
      std::ios::binary);
  return load_checkpoint<T>(in);
}

}  // namespace parfw
