file(REMOVE_RECURSE
  "../bench/bench_fig3_rank_placement"
  "../bench/bench_fig3_rank_placement.pdb"
  "CMakeFiles/bench_fig3_rank_placement.dir/bench_fig3_rank_placement.cpp.o"
  "CMakeFiles/bench_fig3_rank_placement.dir/bench_fig3_rank_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rank_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
