#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace parfw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  PARFW_CHECK_MSG(cells.size() == header_.size(),
                  "row width " << cells.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace parfw
