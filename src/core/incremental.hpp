// Incremental Floyd-Warshall (paper §7 future work).
//
// After a full APSP closure, an edge-weight decrease (or new edge) can be
// folded in with an O(n²) pass instead of an O(n³) recompute:
//     Dist[i,j] ← Dist[i,j] ⊕ Dist[i,u] ⊗ w' ⊗ Dist[v,j]
// Weight *increases* invalidate paths and require recomputation; the API
// reports which case applied.
#pragma once

#include <cstdint>
#include <span>

#include "semiring/semiring.hpp"
#include "util/matrix.hpp"

namespace parfw {

struct EdgeUpdate {
  std::int64_t src;
  std::int64_t dst;
  double new_weight;
};

enum class IncrementalOutcome {
  kApplied,         ///< folded in with the O(n²) rule
  kNoEffect,        ///< new weight does not beat the current closure
  kNeedsRecompute,  ///< weight increase on a potentially-used edge
};

/// Apply a single edge update to a closed distance matrix.
template <typename S>
IncrementalOutcome incremental_update(MatrixView<typename S::value_type> dist,
                                      const EdgeUpdate& u) {
  static_assert(is_idempotent<S>());
  using T = typename S::value_type;
  PARFW_CHECK(dist.rows() == dist.cols());
  const std::size_t n = dist.rows();
  PARFW_CHECK(u.src >= 0 && u.dst >= 0 &&
              static_cast<std::size_t>(u.src) < n &&
              static_cast<std::size_t>(u.dst) < n);
  const T w = static_cast<T>(u.new_weight);
  const T cur = dist(u.src, u.dst);

  if (!S::less_add(w, cur)) {
    // Not an improvement. If the old closure value could have routed
    // through the edge at a now-stale weight we cannot tell locally —
    // conservatively report recompute only when the weight strictly
    // worsens an existing direct optimal value.
    return S::less_add(cur, w) ? IncrementalOutcome::kNeedsRecompute
                               : IncrementalOutcome::kNoEffect;
  }

  // Dist[i,j] ⊕= Dist[i,src] ⊗ w ⊗ Dist[dst,j].
  for (std::size_t i = 0; i < n; ++i) {
    const T head = S::mul(dist(i, u.src), w);
    if (head == S::zero()) continue;
    for (std::size_t j = 0; j < n; ++j)
      dist(i, j) = S::add(dist(i, j), S::mul(head, dist(u.dst, j)));
  }
  return IncrementalOutcome::kApplied;
}

/// Grow a CLOSED distance matrix by one vertex in O(n²) instead of
/// recomputing the closure. `out_edges[j]` is the new vertex's edge weight
/// to j (semiring zero if absent); `in_edges[i]` the weight from i.
/// Steps: close the new row/column through existing paths, then relax all
/// old pairs through the new vertex.
template <typename S>
Matrix<typename S::value_type> insert_vertex(
    MatrixView<const typename S::value_type> closed,
    std::span<const typename S::value_type> in_edges,
    std::span<const typename S::value_type> out_edges) {
  static_assert(is_idempotent<S>());
  using T = typename S::value_type;
  PARFW_CHECK(closed.rows() == closed.cols());
  const std::size_t n = closed.rows();
  PARFW_CHECK(in_edges.size() == n && out_edges.size() == n);

  Matrix<T> out(n + 1, n + 1);
  out.sub(0, 0, n, n).copy_from(closed);
  out(n, n) = S::one();

  // New row: dist(v, j) = ⊕_u out_edges[u] ⊗ closed(u, j); new column
  // symmetric. (The direct edge is the u = j / i = u term since
  // closed(j, j) = one.)
  for (std::size_t j = 0; j < n; ++j) {
    T best = S::zero();
    for (std::size_t u = 0; u < n; ++u)
      best = S::add(best, S::mul(out_edges[u], closed(u, j)));
    out(n, j) = best;
  }
  for (std::size_t i = 0; i < n; ++i) {
    T best = S::zero();
    for (std::size_t u = 0; u < n; ++u)
      best = S::add(best, S::mul(closed(i, u), in_edges[u]));
    out(i, n) = best;
  }
  // Close the new vertex against itself (a cycle through v).
  out(n, n) = S::add(out(n, n), [&] {
    T best = S::zero();
    for (std::size_t u = 0; u < n; ++u)
      best = S::add(best, S::mul(out_edges[u], out(u, n)));
    return best;
  }());

  // Relax every old pair through the new vertex.
  for (std::size_t i = 0; i < n; ++i) {
    const T head = out(i, n);
    if (head == S::zero()) continue;
    for (std::size_t j = 0; j < n; ++j)
      out(i, j) = S::add(out(i, j), S::mul(head, out(n, j)));
  }
  return out;
}

/// Apply a batch of decreases; returns the number folded in. Any update
/// reporting kNeedsRecompute aborts and returns immediately with
/// `needs_recompute = true` so the caller can rerun the full solver.
template <typename S>
std::size_t incremental_update_batch(MatrixView<typename S::value_type> dist,
                                     std::span<const EdgeUpdate> updates,
                                     bool* needs_recompute) {
  std::size_t applied = 0;
  if (needs_recompute != nullptr) *needs_recompute = false;
  for (const EdgeUpdate& u : updates) {
    const IncrementalOutcome out = incremental_update<S>(dist, u);
    if (out == IncrementalOutcome::kApplied) ++applied;
    if (out == IncrementalOutcome::kNeedsRecompute) {
      if (needs_recompute != nullptr) *needs_recompute = true;
      return applied;
    }
  }
  return applied;
}

}  // namespace parfw
