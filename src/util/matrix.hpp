// Dense row-major matrix storage and non-owning views.
//
// The distance matrix, every block of the block-cyclic layout, and every
// staging buffer in the offload engine are Matrix<T> / MatrixView<T>.
// Views carry an explicit leading dimension so kernels can operate on
// sub-blocks of a larger allocation without copying — the same convention
// as BLAS.
#pragma once

#include <cstddef>
#include <utility>

#include "util/aligned_buffer.hpp"
#include "util/check.hpp"

namespace parfw {

/// Non-owning mutable view of an m x n row-major block with leading
/// dimension ld (ld >= n).
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::size_t rows, std::size_t cols, std::size_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    PARFW_DCHECK(ld >= cols);
  }

  T* data() const noexcept { return data_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t ld() const noexcept { return ld_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  T& operator()(std::size_t i, std::size_t j) const noexcept {
    PARFW_DCHECK(i < rows_ && j < cols_);
    return data_[i * ld_ + j];
  }

  /// Sub-block [r0, r0+nr) x [c0, c0+nc).
  MatrixView sub(std::size_t r0, std::size_t c0, std::size_t nr,
                 std::size_t nc) const {
    PARFW_DCHECK(r0 + nr <= rows_ && c0 + nc <= cols_);
    return MatrixView(data_ + r0 * ld_ + c0, nr, nc, ld_);
  }

  void fill(const T& v) const {
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) data_[i * ld_ + j] = v;
  }

  /// Copy `src` into this view (dimensions must match).
  void copy_from(MatrixView<const T> src) const {
    PARFW_CHECK(src.rows() == rows_ && src.cols() == cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j)
        data_[i * ld_ + j] = src(i, j);
  }

  operator MatrixView<const T>() const noexcept {
    return MatrixView<const T>(data_, rows_, cols_, ld_);
  }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Owning dense row-major matrix (contiguous: ld == cols).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : buf_(rows * cols), rows_(rows), cols_(cols) {}
  Matrix(std::size_t rows, std::size_t cols, const T& init) : Matrix(rows, cols) {
    view().fill(init);
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Deep copy must be requested explicitly (these can be gigabytes).
  Matrix clone() const {
    Matrix out(rows_, cols_);
    out.view().copy_from(view());
    return out;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  T* data() noexcept { return buf_.data(); }
  const T* data() const noexcept { return buf_.data(); }

  T& operator()(std::size_t i, std::size_t j) noexcept {
    PARFW_DCHECK(i < rows_ && j < cols_);
    return buf_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const noexcept {
    PARFW_DCHECK(i < rows_ && j < cols_);
    return buf_[i * cols_ + j];
  }

  MatrixView<T> view() noexcept {
    return MatrixView<T>(buf_.data(), rows_, cols_, cols_);
  }
  MatrixView<const T> view() const noexcept {
    return MatrixView<const T>(buf_.data(), rows_, cols_, cols_);
  }
  MatrixView<T> sub(std::size_t r0, std::size_t c0, std::size_t nr,
                    std::size_t nc) {
    return view().sub(r0, c0, nr, nc);
  }
  MatrixView<const T> sub(std::size_t r0, std::size_t c0, std::size_t nr,
                          std::size_t nc) const {
    return view().sub(r0, c0, nr, nc);
  }

 private:
  AlignedBuffer<T> buf_;
  std::size_t rows_ = 0, cols_ = 0;
};

/// Max |a-b| over two equally-shaped views; used by tests and the
/// end-to-end output validation the paper describes in §5.1.
template <typename T>
double max_abs_diff(MatrixView<const T> a, MatrixView<const T> b) {
  PARFW_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double d = static_cast<double>(a(i, j)) - static_cast<double>(b(i, j));
      worst = std::max(worst, d < 0 ? -d : d);
    }
  return worst;
}

}  // namespace parfw
