# Empty compiler generated dependencies file for parfw_sssp.
# This may be replaced when dependencies are built.
