// Fault-tolerant APSP: checkpoint/restart around a simulated crash.
//
// Leadership-class runs (the paper's 1.66M-vertex solve occupies 64 nodes
// for hours) must survive node failures. Blocked FW's state after any
// completed block iteration fully determines the remainder, so a
// checkpoint is just (matrix, next-iteration) — this example takes
// periodic checkpoints, "crashes" mid-run, restarts from the snapshot,
// and proves the result is bit-identical to an uninterrupted solve.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

using namespace parfw;
using S = MinPlus<float>;

int main() {
  const std::size_t n = 768, b = 64, nb = n / b;
  const std::size_t checkpoint_every = 3;  // iterations
  DenseEntryGen<float> gen(8086, 1.0, 1.0f, 75.0f, /*integral=*/true);
  std::printf("problem: n=%zu, %zu block iterations, checkpoint every %zu\n",
              n, nb, checkpoint_every);

  // Reference: uninterrupted run.
  auto reference = gen.full(static_cast<vertex_t>(n));
  Timer t_ref;
  blocked_floyd_warshall<S>(reference.view(), {.block_size = b});
  std::printf("uninterrupted solve: %.0f ms\n", t_ref.millis());

  // Run with periodic checkpoints; crash (exception) after iteration 7.
  const std::string ckpt_path = "/tmp/parfw_demo.ckpt";
  struct SimulatedCrash {};
  auto work = gen.full(static_cast<vertex_t>(n));
  Timer t_crash;
  try {
    blocked_floyd_warshall_range<S>(
        work.view(), 0, {.block_size = b},
        [&](std::size_t k_done, MatrixView<float> view) {
          if (k_done % checkpoint_every == 0) {
            std::ofstream out(ckpt_path, std::ios::binary);
            save_checkpoint<float>(out, MatrixView<const float>(view), k_done,
                                   b);
          }
          if (k_done == 7) throw SimulatedCrash{};
        });
  } catch (const SimulatedCrash&) {
    std::printf("crash injected after iteration 7 (%.0f ms in); last "
                "checkpoint at iteration 6\n",
                t_crash.millis());
  }

  // Restart: load the snapshot and resume.
  std::ifstream in(ckpt_path, std::ios::binary);
  auto restored = load_checkpoint<float>(in);
  std::printf("restart from iteration %zu\n", restored.next_block);
  Timer t_resume;
  blocked_floyd_warshall_range<S>(restored.dist.view(), restored.next_block,
                                  {.block_size = restored.block_size});
  std::printf("resumed solve: %.0f ms for the remaining %zu iterations\n",
              t_resume.millis(), nb - restored.next_block);

  const double diff =
      max_abs_diff<float>(reference.view(), restored.dist.view());
  std::printf("bitwise match with the uninterrupted run: %s (max |diff| = %g)\n",
              diff == 0.0 ? "yes" : "NO", diff);
  std::remove(ckpt_path.c_str());
  return diff == 0.0 ? 0 : 1;
}
