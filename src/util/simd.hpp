// Portable fixed-width SIMD layer for the SRGEMM micro-kernels.
//
// The paper's kernel reaches its rate by making the min-plus inner loop
// explicitly vector-shaped (CUTLASS tile iterators over warp fragments);
// this is the CPU analogue: a Vec<T, W> wrapper over the GCC/Clang vector
// extensions with the handful of lane-wise ops the semirings need
// (load/store/broadcast, add/mul/min/max/or/and and a mask blend). Every
// op lowers to one instruction on SSE2/AVX2/AVX-512/NEON; on compilers
// without vector extensions the same API falls back to scalar arrays that
// the autovectorizer can still chew on, so kernel code is written once.
//
// Width policy: kNativeBytes is the widest vector the target ISA supports
// (64 on AVX-512, 32 on AVX, 16 on SSE2/NEON, sizeof(T) otherwise) and
// native_lanes<T>() is the lane count the micro-kernels are stamped out
// with. Loads and stores are unaligned (memcpy-based) so kernels can walk
// arbitrary leading dimensions; packing buffers are 64-byte aligned anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace parfw::simd {

#if defined(__GNUC__) || defined(__clang__)
#define PARFW_SIMD_VECTOR_EXT 1
#else
#define PARFW_SIMD_VECTOR_EXT 0
#endif

#if PARFW_SIMD_VECTOR_EXT && defined(__AVX512F__)
inline constexpr std::size_t kNativeBytes = 64;
#elif PARFW_SIMD_VECTOR_EXT && defined(__AVX__)
inline constexpr std::size_t kNativeBytes = 32;
#elif PARFW_SIMD_VECTOR_EXT && \
    (defined(__SSE2__) || defined(__ARM_NEON) || defined(__aarch64__))
inline constexpr std::size_t kNativeBytes = 16;
#else
inline constexpr std::size_t kNativeBytes = 0;  // scalar fallback
#endif

/// Lanes per native vector for element type T (>= 1; 4 in scalar fallback
/// so the micro-kernels still get an unrollable shape).
template <typename T>
constexpr std::size_t native_lanes() {
  return kNativeBytes == 0 ? 4 : kNativeBytes / sizeof(T);
}

/// Signed integer type as wide as Bytes — the lane type of comparison
/// masks (vector comparisons yield same-width integer lanes, all-ones on
/// true).
template <std::size_t Bytes>
struct int_of_size;
template <>
struct int_of_size<1> {
  using type = std::int8_t;
};
template <>
struct int_of_size<2> {
  using type = std::int16_t;
};
template <>
struct int_of_size<4> {
  using type = std::int32_t;
};
template <>
struct int_of_size<8> {
  using type = std::int64_t;
};

/// Mask lane type matching T's width.
template <typename T>
using mask_t = typename int_of_size<sizeof(T)>::type;

/// Fixed-width vector of W lanes of T. Trivially copyable; all ops are
/// free functions so the type stays a plain register-sized value.
template <typename T, std::size_t W>
struct Vec {
#if PARFW_SIMD_VECTOR_EXT
  typedef T native __attribute__((vector_size(W * sizeof(T))));
  native v;
#else
  T v[W];
#endif
};

template <typename T, std::size_t W>
inline Vec<T, W> load(const T* p) {
  Vec<T, W> r;
  std::memcpy(&r.v, p, W * sizeof(T));  // unaligned load
  return r;
}

template <typename T, std::size_t W>
inline void store(T* p, Vec<T, W> a) {
  std::memcpy(p, &a.v, W * sizeof(T));  // unaligned store
}

template <typename T, std::size_t W>
inline Vec<T, W> broadcast(T x) {
  Vec<T, W> r;
#if PARFW_SIMD_VECTOR_EXT
  r.v = x - typename Vec<T, W>::native{};  // splat via vector-scalar op
#else
  for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
#endif
  return r;
}

#if PARFW_SIMD_VECTOR_EXT

template <typename T, std::size_t W>
inline Vec<T, W> vadd(Vec<T, W> a, Vec<T, W> b) {
  return {a.v + b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vmul(Vec<T, W> a, Vec<T, W> b) {
  return {a.v * b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vmin(Vec<T, W> a, Vec<T, W> b) {
  return {a.v < b.v ? a.v : b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vmax(Vec<T, W> a, Vec<T, W> b) {
  return {a.v > b.v ? a.v : b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vor(Vec<T, W> a, Vec<T, W> b) {
  return {a.v | b.v};
}
template <typename T, std::size_t W>
inline Vec<T, W> vand(Vec<T, W> a, Vec<T, W> b) {
  return {a.v & b.v};
}
/// Lanes where either operand is >= limit become limit; the rest take
/// min(a + b, limit). This is the integer tropical ⊗ (saturating add with
/// an absorbing "no path" sentinel) in three vector ops: both inputs are
/// clamped to limit first, so the lane-wise sum cannot overflow even when
/// callers feed values above the sentinel.
template <typename T, std::size_t W>
inline Vec<T, W> vsat_add(Vec<T, W> a, Vec<T, W> b, Vec<T, W> limit) {
  auto ac = a.v < limit.v ? a.v : limit.v;
  auto bc = b.v < limit.v ? b.v : limit.v;
  auto s = ac + bc;
  s = s < limit.v ? s : limit.v;
  // "No path" absorbs even negative weights: any lane with an infinite
  // operand is pinned to limit regardless of the sum.
  return {((a.v >= limit.v) | (b.v >= limit.v)) ? limit.v : s};
}

/// Lane-wise a < b as an all-ones/all-zeros mask of T-width integer lanes.
template <typename T, std::size_t W>
inline Vec<mask_t<T>, W> vcmp_lt(Vec<T, W> a, Vec<T, W> b) {
  Vec<mask_t<T>, W> r;
  // The builtin comparison already yields same-width signed lanes; the
  // convertvector pins down the exact lane type (int vs long spelling).
  r.v = __builtin_convertvector(a.v < b.v,
                                typename Vec<mask_t<T>, W>::native);
  return r;
}
template <typename T, std::size_t W>
inline Vec<mask_t<T>, W> vcmp_gt(Vec<T, W> a, Vec<T, W> b) {
  Vec<mask_t<T>, W> r;
  r.v = __builtin_convertvector(a.v > b.v,
                                typename Vec<mask_t<T>, W>::native);
  return r;
}
/// Lanes where the mask is nonzero take x, the rest keep y.
template <typename M, typename T, std::size_t W>
inline Vec<T, W> vselect(Vec<M, W> m, Vec<T, W> x, Vec<T, W> y) {
  static_assert(sizeof(M) == sizeof(T), "mask lanes must match value lanes");
  return {m.v ? x.v : y.v};
}
/// Sign-extend (or narrow) a mask to To-width lanes, e.g. an int32 float
/// mask to the int64 lanes of a predecessor vector.
template <typename To, typename M, std::size_t W>
inline Vec<To, W> vmask_cast(Vec<M, W> m) {
  Vec<To, W> r;
  r.v = __builtin_convertvector(m.v, typename Vec<To, W>::native);
  return r;
}

#else  // scalar fallback: same API, lane loops

#define PARFW_SIMD_LANEWISE(name, expr)                     \
  template <typename T, std::size_t W>                      \
  inline Vec<T, W> name(Vec<T, W> a, Vec<T, W> b) {         \
    Vec<T, W> r;                                            \
    for (std::size_t i = 0; i < W; ++i) r.v[i] = (expr);    \
    return r;                                               \
  }
PARFW_SIMD_LANEWISE(vadd, a.v[i] + b.v[i])
PARFW_SIMD_LANEWISE(vmul, a.v[i] * b.v[i])
PARFW_SIMD_LANEWISE(vmin, a.v[i] < b.v[i] ? a.v[i] : b.v[i])
PARFW_SIMD_LANEWISE(vmax, a.v[i] > b.v[i] ? a.v[i] : b.v[i])
PARFW_SIMD_LANEWISE(vor, a.v[i] | b.v[i])
PARFW_SIMD_LANEWISE(vand, a.v[i] & b.v[i])
#undef PARFW_SIMD_LANEWISE

template <typename T, std::size_t W>
inline Vec<T, W> vsat_add(Vec<T, W> a, Vec<T, W> b, Vec<T, W> limit) {
  Vec<T, W> r;
  for (std::size_t i = 0; i < W; ++i) {
    if (a.v[i] >= limit.v[i] || b.v[i] >= limit.v[i]) {
      r.v[i] = limit.v[i];
      continue;
    }
    const T s = a.v[i] + b.v[i];
    r.v[i] = s < limit.v[i] ? s : limit.v[i];
  }
  return r;
}

template <typename T, std::size_t W>
inline Vec<mask_t<T>, W> vcmp_lt(Vec<T, W> a, Vec<T, W> b) {
  Vec<mask_t<T>, W> r;
  for (std::size_t i = 0; i < W; ++i)
    r.v[i] = a.v[i] < b.v[i] ? mask_t<T>(-1) : mask_t<T>(0);
  return r;
}
template <typename T, std::size_t W>
inline Vec<mask_t<T>, W> vcmp_gt(Vec<T, W> a, Vec<T, W> b) {
  Vec<mask_t<T>, W> r;
  for (std::size_t i = 0; i < W; ++i)
    r.v[i] = a.v[i] > b.v[i] ? mask_t<T>(-1) : mask_t<T>(0);
  return r;
}
template <typename M, typename T, std::size_t W>
inline Vec<T, W> vselect(Vec<M, W> m, Vec<T, W> x, Vec<T, W> y) {
  static_assert(sizeof(M) == sizeof(T), "mask lanes must match value lanes");
  Vec<T, W> r;
  for (std::size_t i = 0; i < W; ++i) r.v[i] = m.v[i] ? x.v[i] : y.v[i];
  return r;
}
template <typename To, typename M, std::size_t W>
inline Vec<To, W> vmask_cast(Vec<M, W> m) {
  Vec<To, W> r;
  for (std::size_t i = 0; i < W; ++i) r.v[i] = static_cast<To>(m.v[i]);
  return r;
}

#endif  // PARFW_SIMD_VECTOR_EXT

/// Half of a vector (Half = 0 low, 1 high) as a half-width value. The
/// memcpy lowers to a register extract; it exists so wide logical vectors
/// can be processed at native register width (see vblend_ids).
template <std::size_t Half, typename T, std::size_t W>
inline Vec<T, W / 2> vhalf(Vec<T, W> a) {
  static_assert(Half < 2 && W % 2 == 0);
  Vec<T, W / 2> r;
  std::memcpy(&r.v,
              reinterpret_cast<const unsigned char*>(&a.v) +
                  Half * (W / 2) * sizeof(T),
              (W / 2) * sizeof(T));
  return r;
}

/// True iff any lane of a comparison mask is set (log2(W) OR folds).
template <typename M, std::size_t W>
inline bool vany(Vec<M, W> m) {
  if constexpr (W == 1) {
    return m.v[0] != 0;
  } else {
    return vany(vor(vhalf<0>(m), vhalf<1>(m)));
  }
}

/// Masked predecessor blend: lanes where the value-width mask is set take
/// src, the rest keep dst — W int64 id lanes driven by a W-lane mask of
/// sizeof(M)-byte lanes. When sizeof(M) < 8 the widened mask would be a
/// 2x-native vector, and compilers scalarize selects on oversized generic
/// vectors (GCC emits a per-lane extract/cmove storm that is slower than
/// the scalar loop), so the widen + blend runs in two native-width halves.
template <typename M, std::size_t W>
inline void vblend_ids(Vec<M, W> m, const std::int64_t* src,
                       std::int64_t* dst) {
  if constexpr (sizeof(M) == sizeof(std::int64_t)) {
    store<std::int64_t, W>(
        dst, vselect(vmask_cast<std::int64_t>(m), load<std::int64_t, W>(src),
                     load<std::int64_t, W>(dst)));
  } else {
    constexpr std::size_t H = W / 2;
    store<std::int64_t, H>(
        dst, vselect(vmask_cast<std::int64_t>(vhalf<0>(m)),
                     load<std::int64_t, H>(src), load<std::int64_t, H>(dst)));
    store<std::int64_t, H>(
        dst + H,
        vselect(vmask_cast<std::int64_t>(vhalf<1>(m)),
                load<std::int64_t, H>(src + H), load<std::int64_t, H>(dst + H)));
  }
}

}  // namespace parfw::simd
