// Shared helpers for the figure-reproduction benches.
//
// Every bench prints: what the paper's figure shows, the regenerated
// series (simulated on the Summit machine model and/or measured on the
// CPU substrate), and the qualitative checks that tie the two together.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "util/table.hpp"

namespace parfw::bench {

inline void header(const std::string& title, const std::string& paper_note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("----------------------------------------------------------------\n");
  std::printf("%s\n\n", paper_note.c_str());
}

inline void footer(const std::string& check) {
  std::printf("\nshape check: %s\n\n", check.c_str());
}

/// The paper's Figure 4/7 vertex sweep (×~1.26 per step).
inline std::vector<double> paper_vertex_sweep(double lo, double hi) {
  // Paper values: 16384, 20643, 26008, 32768, 41285, 52016, 65536, ...
  // Each step multiplies by 2^(1/3).
  std::vector<double> out;
  double v = 16384;
  while (v <= hi * 1.001) {
    if (v >= lo * 0.999) out.push_back(std::round(v));
    v *= 1.2599210498948732;  // 2^(1/3)
  }
  return out;
}

}  // namespace parfw::bench
