// §3.3 ablation — ring vs tree broadcast.
//
// Paper: the library (tree) broadcast is latency-optimal but its critical
// path re-sends the full payload log p times; the ring broadcast is
// bandwidth-optimal (every rank sends/receives the payload once) and
// asynchronous. The paper uses the tree for the small DiagBcast and the
// ring for the large PanelBcast.
//
// Two measurements:
//  (1) REAL wall time on the in-process runtime (threads relay actual
//      bytes), sweeping payload size at fixed rank count;
//  (2) the Summit DES model at paper scale.
#include <cstdio>
#include <vector>

#include "fig_common.hpp"
#include "mpisim/communicator.hpp"
#include "mpisim/runtime.hpp"
#include "util/timer.hpp"

using namespace parfw;

namespace {

double run_real(int ranks, std::size_t bytes, bool ring, int reps) {
  Timer t;
  mpi::Runtime::run(ranks, [&](mpi::Comm& c) {
    std::vector<std::uint8_t> buf(bytes, 1);
    for (int rep = 0; rep < reps; ++rep) {
      if (ring)
        c.ring_bcast_bytes(buf, /*root=*/rep % ranks, 100 + rep);
      else
        c.bcast_bytes(buf, rep % ranks, 100 + rep);
    }
  });
  return t.seconds() / reps;
}

}  // namespace

int main() {
  bench::header(
      "Ring vs tree broadcast (paper §3.3 ablation)",
      "paper: ring is bandwidth-optimal (payload crosses each link once)\n"
      "but pays p-1 latency hops; tree is latency-optimal but its root\n"
      "path re-sends the payload log2(p) times.");

  std::printf("[a] measured on the in-process runtime (8 ranks, memcpy-bound)\n\n");
  Table real({"payload KiB", "tree ms", "ring ms", "tree/ring"});
  for (std::size_t kib : {4u, 64u, 512u, 4096u, 16384u}) {
    const double tt = run_real(8, kib << 10, false, 5) * 1e3;
    const double tr = run_real(8, kib << 10, true, 5) * 1e3;
    real.add_row({std::to_string(kib), Table::num(tt, 3), Table::num(tr, 3),
                  Table::num(tt / tr, 2)});
  }
  std::printf("%s", real.str().c_str());

  std::printf("\n[b] Summit model, 24 ranks on 24 nodes (one PanelBcast chain)\n\n");
  const perf::MachineConfig m = perf::MachineConfig::summit();
  std::vector<int> node_of(24);
  for (int i = 0; i < 24; ++i) node_of[static_cast<std::size_t>(i)] = i;
  Table model({"payload MiB", "tree ms", "ring ms", "tree/ring"});
  for (std::int64_t mib : {1, 4, 16, 64}) {
    const auto tree =
        perf::build_bcast_program(m, 24, mib << 20, false, node_of);
    const auto ring = perf::build_bcast_program(m, 24, mib << 20, true, node_of);
    const double tt = perf::simulate(tree, node_of, m).makespan * 1e3;
    const double tr = perf::simulate(ring, node_of, m).makespan * 1e3;
    model.add_row({std::to_string(mib), Table::num(tt, 3), Table::num(tr, 3),
                   Table::num(tt / tr, 2)});
  }
  std::printf("%s", model.str().c_str());

  bench::footer(
      "expect: tree/ring < 1 for tiny payloads (latency-bound: tree wins,\n"
      "hence DiagBcast uses it) and > 1 for large payloads (bandwidth-\n"
      "bound: ring wins, hence PanelBcast uses it).");
  return 0;
}
