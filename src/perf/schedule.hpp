// Skeleton schedule generation for the discrete-event simulator.
//
// For each ParallelFw variant, build_fw_program() emits per-rank ordered
// op lists (compute / send / recv) that mirror the control flow of
// dist::parallel_fw exactly — same phases, same look-ahead, same
// tree/ring broadcast expansions with the same node-aware relay orders —
// but carry only metadata (flop counts and byte counts), no matrix data.
// This is what lets the simulator replay a 256-node, n = 1.6M run on one
// core (DESIGN.md §1, last row of the substitution table).
#pragma once

#include <cstdint>
#include <vector>

#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/cost_model.hpp"
#include "perf/machine.hpp"

namespace parfw::perf {

struct Op {
  enum class Kind : std::uint8_t { kComp, kSend, kRecv };
  Kind kind = Kind::kComp;
  double seconds = 0.0;      ///< kComp: duration on this rank's GPU
  int peer = -1;             ///< kSend: dst world rank; kRecv: src world rank
  std::int64_t bytes = 0;    ///< kSend: payload size
  std::int32_t tag = 0;      ///< kSend/kRecv: match key
};

using RankProgram = std::vector<Op>;

struct FwProblem {
  double n = 0;          ///< vertices
  double b = 768;        ///< block size
  dist::Variant variant = dist::Variant::kAsync;
  /// ooGSrGemm chunk size for the offload variant (m_x = n_x).
  double offload_mx = 4096;
  /// Model MPI's asynchronous progression of the ring broadcast: panel
  /// segments are relayed by per-rank NIC "agent" processes instead of the
  /// rank's own program, so a rank busy computing does not stall the chain
  /// (§3.3's asynchrony). Only affects the kAsync variant.
  bool background_relays = true;
  /// OS-noise / straggler model: each compute op's duration is inflated
  /// by a deterministic pseudo-random factor in [0, comp_jitter]
  /// (hashed from rank and op index). §3.3 argues the asynchronous ring
  /// decouples ranks so one straggler's delay does not propagate; the
  /// straggler ablation bench measures exactly that.
  double comp_jitter = 0.0;
  /// Zero out all compute durations: isolates the communication schedule
  /// (the paper's Figure 3 placement sweep is measured in this regime —
  /// its single-node point exceeds the NIC's 25 GB/s, which is only
  /// possible when t_FW is communication time).
  bool comm_only = false;
};

/// A built skeleton: per-process op lists plus the node map covering any
/// auxiliary "NIC agent" processes the schedule added (background relays).
struct BuiltProgram {
  std::vector<RankProgram> programs;
  std::vector<int> node_of;  ///< sized to programs (ranks + agents)
};

/// Build the per-rank programs for one FW run on the given grid/placement.
/// `node_of[w]` maps world ranks to nodes (NIC domains).
BuiltProgram build_fw_program(const MachineConfig& m, const FwProblem& prob,
                              const dist::GridSpec& grid,
                              const std::vector<int>& node_of);

/// Standalone broadcast programs (for the ring-vs-tree DES experiments).
std::vector<RankProgram> build_bcast_program(const MachineConfig& m, int ranks,
                                             std::int64_t bytes, bool ring,
                                             const std::vector<int>& node_of);

}  // namespace parfw::perf
