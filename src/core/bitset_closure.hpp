// Bit-packed transitive closure: boolean Floyd-Warshall at 64 edges per
// machine word.
//
// Over the (∨, ∧) semiring the FW inner loop degenerates to
//     row(i) |= row(k)    whenever  A(i,k)
// which vectorises as word-wise OR — a 64x density improvement over the
// byte-per-entry BoolOrAnd path. This is the specialised-semiring
// optimisation the GraphBLAS discussion in paper §6 alludes to.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace parfw {

/// Dense bit matrix: row-major, 64 columns per word.
class BitMatrix {
 public:
  explicit BitMatrix(std::size_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

  std::size_t size() const { return n_; }

  bool get(std::size_t i, std::size_t j) const {
    PARFW_DCHECK(i < n_ && j < n_);
    return (bits_[i * words_ + j / 64] >> (j % 64)) & 1u;
  }
  void set(std::size_t i, std::size_t j) {
    PARFW_DCHECK(i < n_ && j < n_);
    bits_[i * words_ + j / 64] |= std::uint64_t{1} << (j % 64);
  }

  /// row(i) |= row(k) — the FW update, one cache-friendly sweep.
  void or_row(std::size_t i, std::size_t k) {
    std::uint64_t* dst = bits_.data() + i * words_;
    const std::uint64_t* src = bits_.data() + k * words_;
    for (std::size_t w = 0; w < words_; ++w) dst[w] |= src[w];
  }

  std::size_t count() const {
    std::size_t total = 0;
    for (std::uint64_t w : bits_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

 private:
  std::size_t n_, words_;
  std::vector<std::uint64_t> bits_;
};

/// Reflexive-transitive closure of a graph's reachability relation.
inline BitMatrix transitive_closure(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  BitMatrix reach(n);
  for (std::size_t v = 0; v < n; ++v) reach.set(v, v);
  for (const Edge& e : g.edges())
    reach.set(static_cast<std::size_t>(e.src), static_cast<std::size_t>(e.dst));
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i)
      if (reach.get(i, k)) reach.or_row(i, k);
  return reach;
}

}  // namespace parfw
