#include "causal/trace_io.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace parfw::causal {

namespace {

// Recursive-descent JSON parser over the whole document. Tracks the byte
// position so truncated or malformed input yields an actionable offset.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      *error = err_ + " at byte " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      *error = "trailing garbage at byte " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool parse_value(JsonValue* out) {
    if (depth_ > 64) return fail("nesting too deep");
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return parse_string(&out->str);
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return fail("unterminated escape");
        const char e = s_[pos_ + 1];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            // Pass \uXXXX through verbatim — trace names are ASCII.
            if (pos_ + 5 >= s_.size()) return fail("truncated \\u escape");
            out->append(s_, pos_, 6);
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
        pos_ += 2;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue* out) {
    out->type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue* out) {
    out->type = JsonValue::Type::kNull;
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue* out) {
    out->type = JsonValue::Type::kNumber;
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(begin, &end);
    if (end == begin) return fail("expected a value");
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

double num_or(const JsonValue& obj, const std::string& key, double dflt) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->type == JsonValue::Type::kNumber) ? v->number
                                                               : dflt;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text).parse(out, error);
}

LoadResult load_chrome_trace(const std::string& text) {
  LoadResult out;
  JsonValue doc;
  if (!parse_json(text, &doc, &out.error)) return out;
  if (doc.type != JsonValue::Type::kObject) {
    out.error = "top-level value is not an object";
    return out;
  }
  const JsonValue* evs = doc.find("traceEvents");
  if (evs == nullptr || evs->type != JsonValue::Type::kArray) {
    out.error = "missing \"traceEvents\" array";
    return out;
  }

  std::map<std::string, const char*> interned;
  auto intern = [&](const std::string& name) -> const char* {
    auto it = interned.find(name);
    if (it != interned.end()) return it->second;
    out.names.push_back(name);
    return interned.emplace(name, out.names.back().c_str()).first->second;
  };

  for (std::size_t i = 0; i < evs->arr.size(); ++i) {
    const JsonValue& row = evs->arr[i];
    auto bad = [&](const std::string& what) {
      out.error = "traceEvents[" + std::to_string(i) + "]: " + what;
      out.events.clear();
      return out;
    };
    if (row.type != JsonValue::Type::kObject) return bad("not an object");
    const JsonValue* ph = row.find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString)
      return bad("missing \"ph\"");
    // Presentation rows: flow arrows, metadata, counters.
    if (ph->str == "s" || ph->str == "f" || ph->str == "t" ||
        ph->str == "M" || ph->str == "C")
      continue;
    if (ph->str != "X" && ph->str != "i" && ph->str != "I")
      return bad("unsupported ph \"" + ph->str + "\"");
    const JsonValue* name = row.find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString)
      return bad("missing \"name\"");
    const JsonValue* ts = row.find("ts");
    if (ts == nullptr || ts->type != JsonValue::Type::kNumber)
      return bad("missing \"ts\"");

    sched::TraceEvent e;
    e.name = intern(name->str);
    e.rank = static_cast<int>(num_or(row, "tid", 0.0));
    e.t_begin = ts->number * 1e-6;
    e.t_end = e.t_begin;
    if (ph->str == "X") {
      const JsonValue* dur = row.find("dur");
      if (dur == nullptr || dur->type != JsonValue::Type::kNumber)
        return bad("ph \"X\" without \"dur\"");
      if (dur->number < 0.0) return bad("negative \"dur\"");
      e.t_end = e.t_begin + dur->number * 1e-6;
    }
    if (const JsonValue* args = row.find("args");
        args != nullptr && args->type == JsonValue::Type::kObject) {
      e.k = static_cast<std::uint32_t>(num_or(*args, "k", 0.0));
      e.bytes = static_cast<std::int64_t>(num_or(*args, "bytes", 0.0));
      e.flops = num_or(*args, "flops", 0.0);
      const double ek = num_or(*args, "ek", 0.0);
      if (ek < 0.0 || ek > 2.0) return bad("args.ek out of range");
      e.ek = static_cast<sched::EventKind>(static_cast<int>(ek));
      e.peer = static_cast<std::int32_t>(num_or(*args, "peer", -1.0));
      e.tag = static_cast<std::int32_t>(num_or(*args, "tag", 0.0));
      e.seq = static_cast<std::uint64_t>(num_or(*args, "seq", 0.0));
      e.ctx = static_cast<std::uint64_t>(num_or(*args, "ctx", 0.0));
      e.attempt = static_cast<std::uint32_t>(num_or(*args, "att", 0.0));
    }
    out.events.push_back(e);
  }
  out.ok = true;
  return out;
}

LoadResult load_chrome_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    LoadResult out;
    out.error = "cannot open '" + path + "'";
    return out;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  LoadResult out = load_chrome_trace(ss.str());
  if (!out.ok) out.error = path + ": " + out.error;
  return out;
}

}  // namespace parfw::causal
