// Plain-text table formatting for the benchmark harness.
//
// Every figure-reproduction bench prints its series as an aligned text
// table (paper reference column included), so the harness output is
// self-describing without plotting dependencies.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace parfw {

/// Column-aligned text table. Usage:
///   Table t({"n", "variant", "GB/s"});
///   t.add_row({"26008", "baseline", "1.9"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

  /// Format a double with `prec` significant decimal places.
  static std::string num(double v, int prec = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parfw
