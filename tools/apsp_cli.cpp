// apsp — command-line all-pairs shortest paths.
//
// Usage:
//   apsp --input graph.el [--format el|gr] [--algorithm seq|blocked|parallel]
//        [--semiring minplus|maxmin] [--block N] [--paths]
//        [--components] [--query S,T ...] [--output dists.txt]
//   apsp --gen er --n 500 --p 0.1 --seed 1 ...
//   apsp --gen ... --paths --publish DIR [--publish-grid PRxPC] --query 0,42
//   apsp --serve DIR [--paths] --query 0,42 --query 0,7 [--cache-mb N]
//
// Reads an edge-list ("n m" header then "src dst w" lines) or DIMACS .gr
// file, or generates a random graph; solves APSP; answers point queries
// and/or dumps the full matrix. --publish shards the solved result into a
// served tile manifest under DIR; --serve answers the queries from such a
// manifest through serve::PathService — no solve, no full-matrix load.
// All queries flow through the one batched query API (core/query.hpp).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/apsp.hpp"
#include "core/component_apsp.hpp"
#include "dist/solve.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "monitor/monitor.hpp"
#include "sched/trace.hpp"
#include "serve/path_service.hpp"
#include "serve/publish.hpp"
#include "serve/slo.hpp"
#include "telemetry/export.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace parfw;

namespace {

void print_usage() {
  std::puts(
      "apsp - all-pairs shortest paths\n"
      "  --input FILE        edge-list or DIMACS graph\n"
      "  --format el|gr      input format (default el)\n"
      "  --gen er|grid|pa    generate instead of reading\n"
      "  --n N --p P --seed S   generator parameters\n"
      "  --algorithm seq|blocked|parallel|dist   (default parallel)\n"
      "  --semiring minplus|maxmin          (default minplus)\n"
      "  --block N           block size (default 64)\n"
      "  --dist PRxPC        process grid for --algorithm dist (default 2x2;\n"
      "                      requires n divisible by --block)\n"
      "  --variant baseline|pipelined|async|offload|auto   dist schedule\n"
      "                      (default async; auto tunes variant, placement,\n"
      "                      block and offload depth through the DES — the\n"
      "                      grid then only fixes the rank count; set\n"
      "                      PARFW_TUNE_CACHE=FILE to persist/reuse winners)\n"
      "  --rpn N             ranks per node for dist (NIC accounting and the\n"
      "                      auto tuner's placement space; default 1)\n"
      "  --paths             track predecessors (enables path queries);\n"
      "                      composes with every algorithm, including dist\n"
      "                      (any variant or auto) and checkpoint/restart\n"
      "  --components        solve per connected component\n"
      "  --query S,T         answer dist (and path) for the pair; repeatable\n"
      "                      — all pairs go through one batched query\n"
      "  --output FILE       write the full distance matrix\n"
      "  --publish DIR       after solving, publish the result as a served\n"
      "                      tile manifest under DIR (checkpoint-v2 blobs)\n"
      "  --publish-grid PRxPC   serving grid for --publish (default 1x1)\n"
      "  --serve DIR         answer --query from a published manifest in DIR\n"
      "                      (no solve; --paths needs a manifest published\n"
      "                      from a paths run)\n"
      "  --cache-mb N        --serve tile-cache byte budget (default 64)\n"
      "  --serve-trace FILE  write per-query span trees as a Chrome trace\n"
      "                      (inspect with trace_analyze --mode serve)\n"
      "  --monitor[=SECS]    live progress/ETA lines on stderr every SECS\n"
      "                      (default 1.0) plus anomaly triggers (overrun,\n"
      "                      straggler, retransmit storm, SLO burn); stdout\n"
      "                      stays byte-identical. dist and --serve only\n"
      "  --flight-recorder PATH   always-on bounded trace ring; the final\n"
      "                      window lands at PATH (Chrome trace) and each\n"
      "                      anomaly dumps PATH.incident-N.trace.json plus\n"
      "                      a PATH.incidents.jsonl blame record (load with\n"
      "                      trace_analyze --incidents)\n"
      "  --slo-p99-ms MS     p99 latency target: prints the SLO report\n"
      "                      (rolling p50/p99, violations, burn rate)\n"
      "  --slow-log N        keep the N most recent over-target queries\n"
      "                      with full stage breakdowns (default off)\n");
}

/// Parse every --query occurrence into one batch; exits via check_error
/// on a malformed pair.
QueryBatch parse_queries(const CliArgs& args, bool want_paths) {
  QueryBatch batch;
  batch.want_paths = want_paths;
  for (const std::string& spec : args.get_all("query")) {
    long long s = 0, d = 0;
    char comma = 0;
    std::istringstream in(spec);
    PARFW_CHECK_MSG(in >> s >> comma >> d && comma == ',',
                    "bad --query '" << spec << "' (expected S,T)");
    batch.add(s, d);
  }
  return batch;
}

template <typename T>
void print_results(const QueryBatch& batch,
                   const std::vector<QueryResult<T>>& results) {
  for (std::size_t i = 0; i < batch.pairs.size(); ++i) {
    const PathQuery& q = batch.pairs[i];
    const QueryResult<T>& r = results[i];
    std::printf("dist(%lld, %lld) = %g\n", static_cast<long long>(q.src),
                static_cast<long long>(q.dst),
                static_cast<double>(r.distance));
    if (!batch.want_paths) continue;
    if (r.status == PathStatus::kUnreachable) {
      std::printf("path: unreachable\n");
    } else if (r.status == PathStatus::kFound) {
      std::printf("path:");
      for (auto v : r.path) std::printf(" %lld", static_cast<long long>(v));
      std::printf("\n");
    }
  }
}

template <typename S>
int serve_queries(const CliArgs& args) {
  FileCheckpointStore store(args.get("serve", ""));
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes =
      static_cast<std::size_t>(args.get_int("cache-mb", 64)) << 20;

  // Serve metrics always flow through a telemetry registry: the global
  // one when PARFW_METRICS is set (dump_env exports it in the requested
  // format at exit), a local one otherwise — whose table rendering IS the
  // stderr cache summary.
  telemetry::Registry local;
  sopt.metrics =
      telemetry::enabled() ? &telemetry::Registry::global() : &local;

  // Flight recorder: qtrace events also land in a bounded ring, and the
  // SLO burn alert below dumps its window as an incident.
  std::optional<sched::RingTraceSink> ring;
  std::optional<monitor::IncidentLog> incidents;
  const std::string fr_path = args.get("flight-recorder", "");
  if (args.has("monitor") || !fr_path.empty()) {
    ring.emplace();
    monitor::IncidentConfig icfg;
    icfg.path_prefix = fr_path;
    icfg.log_out = stderr;
    incidents.emplace(icfg, &*ring);
  }

  sched::ChromeTraceSink trace;
  sched::TeeTraceSink tee;
  if (args.has("serve-trace")) tee.add(&trace);
  if (ring.has_value()) tee.add(&*ring);
  if (args.has("serve-trace") || ring.has_value()) sopt.trace = &tee;

  serve::SloMonitor* slo = nullptr;
  serve::SloMonitor slo_storage;
  const double p99_ms = args.get_double("slo-p99-ms", 0.0);
  const auto slow_log = args.get_int("slow-log", 0);
  if (p99_ms > 0.0 || slow_log > 0) {
    serve::SloConfig scfg;
    scfg.p99_target_s = p99_ms * 1e-3;
    if (slow_log > 0)
      scfg.slow_log_capacity = static_cast<std::size_t>(slow_log);
    if (incidents.has_value()) {
      monitor::IncidentLog* ilog = &*incidents;
      scfg.on_burn_alert = [ilog](const serve::SloReport& r) {
        std::ostringstream d;
        d << "burn rate " << r.burn_rate << " over " << r.window_count
          << "-query window (p99 " << r.p99 * 1e3 << " ms vs "
          << r.p99_target * 1e3 << " ms target)";
        ilog->fire("slo_burn", sched::now_seconds(), -1, d.str());
      };
    }
    slo_storage = serve::SloMonitor(scfg);
    slo = &slo_storage;
    sopt.slo = slo;
  }

  serve::PathService<S> service(store, sopt);
  const QueryBatch batch = parse_queries(args, args.get_bool("paths"));
  const auto results = service.answer(batch);
  print_results(batch, results);

  if (!telemetry::enabled())
    std::fputs(telemetry::to_table(local).c_str(), stderr);
  if (slo != nullptr) {
    slo->publish(*sopt.metrics);
    std::fputs(serve::format_slo_report(slo->report()).c_str(), stderr);
    if (slow_log > 0)
      std::fputs(serve::format_slow_log(*slo).c_str(), stderr);
  }
  if (args.has("serve-trace")) {
    const std::string path = args.get("serve-trace", "");
    std::ofstream os(path);
    PARFW_CHECK_MSG(os.good(), "cannot open --serve-trace " << path);
    trace.write(os);
    std::fprintf(stderr, "wrote %zu serve trace events to %s\n", trace.size(),
                 path.c_str());
  }
  if (ring.has_value() && !fr_path.empty()) {
    std::ofstream os(fr_path);
    PARFW_CHECK_MSG(os.good(), "cannot open --flight-recorder " << fr_path);
    ring->write_chrome(os);
    std::fprintf(stderr,
                 "[monitor] flight recorder: %zu events (%llu dropped) -> %s\n",
                 ring->size(), static_cast<unsigned long long>(ring->dropped()),
                 fr_path.c_str());
  }
  return 0;
}

template <typename S>
int run(const Graph& g, const CliArgs& args) {
  if (args.has("serve")) return serve_queries<S>(args);

  ApspOptions opt;
  const std::string alg =
      args.get("algorithm", args.has("dist") ? "dist" : "parallel");
  if (alg == "seq")
    opt.algorithm = ApspAlgorithm::kSequential;
  else if (alg == "blocked")
    opt.algorithm = ApspAlgorithm::kBlocked;
  else if (alg == "parallel")
    opt.algorithm = ApspAlgorithm::kBlockedParallel;
  else if (alg == "dist")
    opt.algorithm = ApspAlgorithm::kDistributed;
  else {
    std::fprintf(stderr, "unknown --algorithm '%s'\n", alg.c_str());
    return 2;
  }
  opt.block_size = static_cast<std::size_t>(args.get_int("block", 64));
  opt.track_paths = args.get_bool("paths");

  // Live monitoring + flight recorder ride the dist interpreter's
  // TraceSink/ScheduleObserver seams; everything prints to stderr so
  // stdout stays byte-identical to an unmonitored run.
  std::optional<sched::RingTraceSink> ring;
  std::optional<monitor::IncidentLog> incidents;
  std::optional<monitor::RunMonitor> mon;
  const std::string fr_path = args.get("flight-recorder", "");
  const bool want_monitor = args.has("monitor");
  if ((want_monitor || !fr_path.empty()) &&
      opt.algorithm != ApspAlgorithm::kDistributed)
    std::fprintf(stderr,
                 "[monitor] --monitor/--flight-recorder require "
                 "--algorithm dist; ignored\n");

  if (opt.algorithm == ApspAlgorithm::kDistributed) {
    int pr = 2, pc = 2;
    char x = 0;
    std::istringstream ds(args.get("dist", "2x2"));
    if (!(ds >> pr >> x >> pc) || x != 'x' || pr < 1 || pc < 1) {
      std::fprintf(stderr, "bad --dist (expected PRxPC, e.g. 2x2)\n");
      return 2;
    }
    opt.dist.grid_rows = pr;
    opt.dist.grid_cols = pc;
    const int rpn = args.get_int("rpn", 1);
    if (rpn < 1 || (pr * pc) % rpn != 0) {
      std::fprintf(stderr, "bad --rpn '%d' (must divide the %d ranks)\n", rpn,
                   pr * pc);
      return 2;
    }
    opt.dist.ranks_per_node = rpn;
    const std::string variant = args.get("variant", "async");
    if (!sched::variant_from_name(variant, &opt.dist.variant,
                                  /*allow_auto=*/true)) {
      std::fprintf(stderr,
                   "unknown --variant '%s' (valid: %s); see apsp --help\n",
                   variant.c_str(),
                   sched::variant_names(/*with_auto=*/true).c_str());
      return 2;
    }
    // tune.* (auto resolution) and fw.phase.* series land in the global
    // registry, so PARFW_METRICS=json|prom|table surfaces them below.
    if (telemetry::enabled())
      opt.dist.metrics = &telemetry::Registry::global();

    if (want_monitor || !fr_path.empty()) {
      ring.emplace();
      monitor::IncidentConfig icfg;
      icfg.path_prefix = fr_path;  // empty: incidents stay in memory
      icfg.log_out = stderr;
      incidents.emplace(icfg, &*ring);
      if (want_monitor) {
        monitor::MonitorConfig mcfg;
        const std::string interval = args.get("monitor", "");
        if (!interval.empty())
          mcfg.progress_interval_s = args.get_double("monitor", 1.0);
        mcfg.progress_out = stderr;
        if (telemetry::enabled())
          mcfg.metrics = &telemetry::Registry::global();
        mon.emplace(mcfg, &*ring, &*incidents);
        opt.dist.trace = &*mon;
        opt.dist.schedule_observer = &*mon;
      } else {
        opt.dist.trace = &*ring;  // recorder only, zero extra bookkeeping
      }
    }
  }

  Timer t;
  const auto result = args.get_bool("components")
                          ? component_apsp<S>(g, opt)
                          : solve<S>(g, opt);
  std::fprintf(stderr, "solved %lld vertices in %.3f s (%s)\n",
               static_cast<long long>(g.num_vertices()), t.seconds(),
               alg.c_str());

  if (mon.has_value()) mon->finish();
  if (ring.has_value() && !fr_path.empty()) {
    std::ofstream os(fr_path);
    PARFW_CHECK_MSG(os.good(), "cannot open --flight-recorder " << fr_path);
    ring->write_chrome(os);
    std::fprintf(stderr,
                 "[monitor] flight recorder: %zu events (%llu dropped) -> %s\n",
                 ring->size(), static_cast<unsigned long long>(ring->dropped()),
                 fr_path.c_str());
  }

  if (args.has("publish")) {
    int pr = 1, pc = 1;
    char x = 0;
    std::istringstream gs(args.get("publish-grid", "1x1"));
    if (!(gs >> pr >> x >> pc) || x != 'x' || pr < 1 || pc < 1) {
      std::fprintf(stderr, "bad --publish-grid (expected PRxPC)\n");
      return 2;
    }
    FileCheckpointStore store(args.get("publish", ""));
    serve::publish_result(store, result, opt.block_size, pr, pc);
    std::fprintf(stderr, "published %dx%d manifest to %s\n", pr, pc,
                 args.get("publish", "").c_str());
  }

  const QueryBatch batch = parse_queries(args, opt.track_paths);
  if (!batch.empty()) print_results(batch, result.answer(batch));

  if (args.has("output")) {
    std::ofstream out(args.get("output", ""));
    PARFW_CHECK_MSG(out.good(), "cannot open output file");
    const auto& m = result.dist;
    out << m.rows() << '\n';
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j)
        out << static_cast<double>(m(i, j)) << (j + 1 < m.cols() ? ' ' : '\n');
    }
    std::fprintf(stderr, "wrote %zux%zu matrix to %s\n", m.rows(), m.cols(),
                 args.get("output", "").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"input", "format", "gen", "n", "p", "seed",
                        "algorithm", "semiring", "block", "paths",
                        "components", "query", "output", "dist", "variant",
                        "rpn", "publish", "publish-grid", "serve", "cache-mb",
                        "serve-trace", "slo-p99-ms", "slow-log", "monitor",
                        "flight-recorder", "help"});
    if (args.get_bool("help") || argc == 1) {
      print_usage();
      return argc == 1 ? 2 : 0;
    }

    Graph g(0);
    if (args.has("serve")) {
      // Serving needs no graph: the manifest is the data.
    } else if (args.has("input")) {
      const std::string path = args.get("input", "");
      if (args.get("format", "el") == "gr") {
        std::ifstream in(path);
        PARFW_CHECK_MSG(in.good(), "cannot open " << path);
        g = io::read_dimacs(in);
      } else {
        g = io::read_edge_list_file(path);
      }
    } else if (args.has("gen")) {
      const auto n = args.get_int("n", 200);
      const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      const std::string kind = args.get("gen", "er");
      if (kind == "er")
        g = gen::erdos_renyi(n, args.get_double("p", 0.1), seed);
      else if (kind == "grid")
        g = gen::grid2d(static_cast<vertex_t>(std::max<std::int64_t>(1, n / 2)),
                        2, seed);
      else if (kind == "pa")
        g = gen::preferential_attachment(n, 3, seed);
      else {
        std::fprintf(stderr, "unknown --gen '%s'\n", kind.c_str());
        return 2;
      }
    } else {
      print_usage();
      return 2;
    }

    const std::string semiring = args.get("semiring", "minplus");
    int rc = 2;
    if (semiring == "minplus") {
      rc = run<MinPlus<double>>(g, args);
    } else if (semiring == "maxmin") {
      rc = run<MaxMin<double>>(g, args);
    } else {
      std::fprintf(stderr, "unknown --semiring '%s'\n", semiring.c_str());
    }
    // PARFW_METRICS=json|prom|table dumps the ambient telemetry series
    // (SRGEMM kernel dispatch) gathered during the solve.
    telemetry::dump_env(std::cerr);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
