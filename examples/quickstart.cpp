// Quickstart: build a graph, run APSP, query distances and paths.
//
//   $ ./quickstart
//
// Demonstrates the high-level apsp() API on a small road-like grid:
// solve, read distances, reconstruct an explicit shortest path, and
// re-solve incrementally after an edge improvement.
#include <cstdio>

#include "core/apsp.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"

int main() {
  using S = parfw::MinPlus<double>;

  // A 12x12 grid "road network" with random congestion weights.
  const parfw::Graph g = parfw::gen::grid2d(12, 12, /*seed=*/2026);
  std::printf("graph: %lld vertices, %zu edges\n",
              static_cast<long long>(g.num_vertices()), g.num_edges());

  // Solve all-pairs shortest paths with the blocked parallel engine and
  // path tracking enabled.
  parfw::ApspOptions opt;
  opt.algorithm = parfw::ApspAlgorithm::kBlocked;
  opt.block_size = 32;
  opt.track_paths = true;
  const auto result = parfw::apsp<S>(g, opt);

  const std::int64_t src = 0, dst = 143;  // opposite corners
  std::printf("dist(%lld -> %lld) = %.3f\n", static_cast<long long>(src),
              static_cast<long long>(dst), result.dist(src, dst));

  const auto path = result.query(src, dst).path;
  std::printf("shortest path (%zu hops):", path.size() - 1);
  for (const auto v : path) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\n");

  // Incremental repair: a new expressway between two interior vertices.
  auto dist = result.dist.clone();
  const parfw::EdgeUpdate expressway{14, 130, 0.5};
  const auto outcome =
      parfw::incremental_update<S>(dist.view(), expressway);
  std::printf("after adding expressway 14->130 (w=0.5): dist(0 -> 143) = %.3f"
              " (update %s)\n",
              dist(src, dst),
              outcome == parfw::IncrementalOutcome::kApplied ? "applied"
                                                             : "skipped");
  return 0;
}
