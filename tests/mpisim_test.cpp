// Message-passing runtime tests: p2p matching, nonblocking ops,
// collectives (tree + ring), communicator split, barriers, NIC traffic
// accounting under the node model.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mpisim/communicator.hpp"
#include "mpisim/runtime.hpp"

namespace parfw::mpi {
namespace {

TEST(P2p, SendRecvRoundTrip) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4};
      c.send(std::span<const int>(data.data(), data.size()), 1, 5);
      const int echoed = c.recv_value<int>(1, 6);
      EXPECT_EQ(echoed, 10);
    } else {
      std::vector<int> data(4);
      c.recv(std::span<int>(data.data(), data.size()), 0, 5);
      EXPECT_EQ(data, (std::vector<int>{1, 2, 3, 4}));
      c.send_value(std::accumulate(data.begin(), data.end(), 0), 0, 6);
    }
  });
}

TEST(P2p, TagsKeepMessagesApart) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(111, 1, /*tag=*/1);
      c.send_value<int>(222, 1, /*tag=*/2);
    } else {
      // Receive in the opposite order of sending: matching is by tag.
      EXPECT_EQ(c.recv_value<int>(0, 2), 222);
      EXPECT_EQ(c.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(P2p, FifoWithinKey) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) c.send_value(i, 1, 9);
    } else {
      for (int i = 0; i < 20; ++i) EXPECT_EQ(c.recv_value<int>(0, 9), i);
    }
  });
}

TEST(P2p, SizeMismatchThrows) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& c) {
                              if (c.rank() == 0) {
                                c.send_value<std::int64_t>(1, 1, 3);
                              } else {
                                (void)c.recv_value<std::int32_t>(0, 3);
                              }
                            }),
               check_error);
}

TEST(P2p, NonblockingIrecvCompletesAtWait) {
  Runtime::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<double>(2.5, 1, 4);
    } else {
      double slot = 0.0;
      Request r = c.irecv(std::span<double>(&slot, 1), 0, 4);
      EXPECT_TRUE(r.pending());
      r.wait();
      EXPECT_FALSE(r.pending());
      EXPECT_EQ(slot, 2.5);
    }
  });
}

class BcastSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};
// (world size, payload bytes)

TEST_P(BcastSizes, TreeBcastDeliversEverywhere) {
  const auto [p, bytes] = GetParam();
  Runtime::run(p, [bytes = bytes, p = p](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes));
      if (c.rank() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<std::uint8_t>((i + static_cast<std::size_t>(root)) & 0xff);
      c.bcast_bytes(buf, root, /*tag=*/-10 - root);
      for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i],
                  static_cast<std::uint8_t>((i + static_cast<std::size_t>(root)) & 0xff));
    }
  });
}

TEST_P(BcastSizes, RingBcastDeliversEverywhere) {
  const auto [p, bytes] = GetParam();
  Runtime::run(p, [bytes = bytes, p = p](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(bytes));
      if (c.rank() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<std::uint8_t>((i * 3 + static_cast<std::size_t>(root)) & 0xff);
      c.ring_bcast_bytes(buf, root, /*tag=*/-20 - root);
      for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i],
                  static_cast<std::uint8_t>((i * 3 + static_cast<std::size_t>(root)) & 0xff));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BcastSizes,
    ::testing::Values(std::tuple{1, 64}, std::tuple{2, 100},
                      std::tuple{3, 1000}, std::tuple{4, 0},
                      std::tuple{7, 200000},  // > ring segment size
                      std::tuple{8, 4096}, std::tuple{13, 77777}));

TEST(Collectives, RingBandwidthOptimal) {
  // Every non-root rank receives the payload once and every rank except
  // the tail sends it once: total bytes on the wire = (p-1) * payload.
  const int p = 6;
  const std::size_t payload = 96 << 10;
  const auto traffic = Runtime::run(p, [&](Comm& c) {
    std::vector<std::uint8_t> buf(payload, 1);
    c.ring_bcast_bytes(buf, 0, -30);
  });
  EXPECT_EQ(traffic.bytes_total, static_cast<std::uint64_t>(p - 1) * payload);
}

TEST(Collectives, TreeBcastAlsoMovesMinimalVolume) {
  // A binomial tree also sends exactly p-1 copies in total (but its
  // critical path is log p serial sends of the FULL payload).
  const int p = 8;
  const std::size_t payload = 10000;
  const auto traffic = Runtime::run(p, [&](Comm& c) {
    std::vector<std::uint8_t> buf(payload, 2);
    c.bcast_bytes(buf, 3, -31);
  });
  EXPECT_EQ(traffic.bytes_total, static_cast<std::uint64_t>(p - 1) * payload);
}

TEST(Collectives, Allreduce) {
  for (int p : {1, 2, 3, 5, 8}) {
    Runtime::run(p, [p](Comm& c) {
      std::vector<int> v{c.rank(), 10 * c.rank()};
      c.allreduce(std::span<int>(v.data(), v.size()),
                  [](int a, int b) { return a + b; });
      const int sum = p * (p - 1) / 2;
      EXPECT_EQ(v[0], sum);
      EXPECT_EQ(v[1], 10 * sum);
    });
  }
}

TEST(Collectives, ReduceToEveryRoot) {
  const int p = 6;
  Runtime::run(p, [p](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> v{c.rank() + 1, 100};
      c.reduce(std::span<int>(v.data(), v.size()),
               [](int a, int b) { return a + b; }, root);
      if (c.rank() == root) {
        EXPECT_EQ(v[0], p * (p + 1) / 2);
        EXPECT_EQ(v[1], 100 * p);
      }
    }
  });
}

TEST(Collectives, ReduceMaxOp) {
  Runtime::run(5, [](Comm& c) {
    int v = (c.rank() * 7) % 5;
    c.reduce(std::span<int>(&v, 1), [](int a, int b) { return std::max(a, b); },
             2);
    if (c.rank() == 2) EXPECT_EQ(v, 4);
  });
}

TEST(Collectives, Scatter) {
  Runtime::run(4, [](Comm& c) {
    std::vector<double> all;
    if (c.rank() == 1)
      for (int i = 0; i < 8; ++i) all.push_back(i * 1.5);
    std::array<double, 2> mine{};
    c.scatter(std::span<const double>(all.data(), all.size()),
              std::span<double>(mine.data(), 2), 1);
    EXPECT_EQ(mine[0], c.rank() * 2 * 1.5);
    EXPECT_EQ(mine[1], (c.rank() * 2 + 1) * 1.5);
  });
}

TEST(Collectives, AllToAll) {
  const int p = 5;
  Runtime::run(p, [p](Comm& c) {
    // rank r sends value 100*r + j to rank j.
    std::vector<int> send(static_cast<std::size_t>(p));
    std::vector<int> recv(static_cast<std::size_t>(p), -1);
    for (int j = 0; j < p; ++j)
      send[static_cast<std::size_t>(j)] = 100 * c.rank() + j;
    c.alltoall(std::span<const int>(send.data(), send.size()),
               std::span<int>(recv.data(), recv.size()), 1);
    for (int i = 0; i < p; ++i)
      EXPECT_EQ(recv[static_cast<std::size_t>(i)], 100 * i + c.rank());
  });
}

TEST(Collectives, Gather) {
  Runtime::run(5, [](Comm& c) {
    const std::array<int, 2> mine{c.rank(), c.rank() * c.rank()};
    std::vector<int> all(c.rank() == 2 ? 10 : 0);
    c.gather(std::span<const int>(mine.data(), 2),
             std::span<int>(all.data(), all.size()), 2);
    if (c.rank() == 2) {
      for (int r = 0; r < 5; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * r);
      }
    }
  });
}

TEST(Collectives, Barrier) {
  const int p = 6;
  Runtime::run(p, [](Comm& c) {
    static std::atomic<int> phase_count{0};
    for (int phase = 0; phase < 10; ++phase) {
      phase_count.fetch_add(1);
      c.barrier();
      // After the barrier everyone must observe all increments of this phase.
      EXPECT_GE(phase_count.load(), (phase + 1) * c.size());
      c.barrier();
    }
  });
  }

TEST(Split, GridRowsAndColumns) {
  // 6 ranks as a 2x3 grid; split into row and column communicators and
  // check ranks and sizes — the exact pattern parallel_fw uses.
  Runtime::run(6, [](Comm& world) {
    const int row = world.rank() / 3, col = world.rank() % 3;
    Comm row_comm = world.split(row, col);
    Comm col_comm = world.split(100 + col, row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.rank(), row);
    // Sub-communicator p2p must be isolated from world traffic.
    if (col == 0)
      row_comm.send_value(world.rank(), 1, 77);
    else if (col == 1)
      EXPECT_EQ(row_comm.recv_value<int>(0, 77), row * 3);
  });
}

TEST(Split, SubCommunicatorCollectives) {
  Runtime::run(8, [](Comm& world) {
    Comm half = world.split(world.rank() % 2, world.rank());
    int v = half.rank() == 0 ? 42 + (world.rank() % 2) : -1;
    half.bcast(std::span<int>(&v, 1), 0);
    EXPECT_EQ(v, 42 + world.rank() % 2);
    half.barrier();
  });
}

TEST(Traffic, NodeModelCountsOnlyInternodeBytes) {
  RuntimeOptions opt;
  opt.node_model = NodeModel::contiguous(4, 2);  // nodes {0,1}, {2,3}
  const auto traffic = Runtime::run(
      4,
      [](Comm& c) {
        std::uint8_t byte[100] = {};
        if (c.rank() == 0) c.send_bytes(byte, 1, 1);       // intra-node
        if (c.rank() == 1) c.recv_bytes(byte, 0, 1);
        if (c.rank() == 0) c.send_bytes(byte, 2, 2);       // inter-node
        if (c.rank() == 2) c.recv_bytes(byte, 0, 2);
      },
      opt);
  EXPECT_EQ(traffic.bytes_total, 200u);
  EXPECT_EQ(traffic.bytes_internode, 100u);
  EXPECT_EQ(traffic.nic_bytes[0], 100u);
  EXPECT_EQ(traffic.nic_bytes[1], 100u);
  EXPECT_EQ(traffic.max_nic_bytes, 100u);
}

TEST(Traffic, MessageCount) {
  const auto traffic = Runtime::run(3, [](Comm& c) {
    if (c.rank() != 0) c.send_value(c.rank(), 0, 1);
    if (c.rank() == 0) {
      (void)c.recv_value<int>(1, 1);
      (void)c.recv_value<int>(2, 1);
    }
  });
  EXPECT_EQ(traffic.messages, 2u);
}

TEST(Runtime, RankExceptionPropagates) {
  EXPECT_THROW(Runtime::run(3,
                            [](Comm& c) {
                              if (c.rank() == 1) PARFW_CHECK(false);
                            }),
               check_error);
}

}  // namespace
}  // namespace parfw::mpi
