file(REMOVE_RECURSE
  "CMakeFiles/graphgen_cli.dir/graphgen_cli.cpp.o"
  "CMakeFiles/graphgen_cli.dir/graphgen_cli.cpp.o.d"
  "graphgen"
  "graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphgen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
