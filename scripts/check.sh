#!/usr/bin/env bash
# Tier-1 verification + SRGEMM bench smoke — the gate every PR must pass.
#
#   scripts/check.sh [build-dir]
#   scripts/check.sh --san address|thread|undefined [build-dir]
#   scripts/check.sh --faults [build-dir]
#   scripts/check.sh --bench [build-dir]
#   scripts/check.sh --tune [build-dir]
#   scripts/check.sh --paths [build-dir]
#   scripts/check.sh --serve [build-dir]
#   scripts/check.sh --monitor [build-dir]
#
# 1. Configure + build (Release, all warnings).
# 2. Run the full ctest suite.
# 3. Run a ~2 s SRGEMM micro-bench smoke so kernel-dispatch regressions
#    (e.g. SIMD silently falling back to scalar) show up as a number, not
#    just as green tests.
#
# --san builds a separate instrumented tree (-DPARFW_SAN=<san>) and runs
# the concurrency-heavy suites under it — mpisim ranks are real OS
# threads, so `--san thread` is the data-race gate for the runtime and
# the trace sinks.
#
# --faults is the resilience gate: the fault-injection matrix and the
# crash-restart suites under AddressSanitizer, so recovery paths
# (retransmission, world abort/unwind, checkpoint replay) are exercised
# with full leak/overflow checking.
#
# --bench is the perf-regression gate: it reruns the SRGEMM micro-bench
# and the (deterministic) Figure 7 DES sweep and diffs both against the
# committed baselines (BENCH_srgemm.json / BENCH_dist.json) with
# scripts/bench_compare.py, failing on a >15% throughput regression. It
# also runs trace_dump --mode metrics on every variant, which both
# asserts measured wire bytes == the DES prediction and leaves metric
# snapshots (JSON + Prometheus) under <build>/metrics/ for CI artifacts.
#
# --bench also runs the causal trace-analysis smoke: it captures a real
# mpisim trace, validates it (trace_dump --mode check), extracts the
# critical path + blame report with trace_analyze, checks the blame
# shares against the committed bands (BENCH_cp_band.json — tight on the
# deterministic DES reference, loose sanity on the noisy real run), and
# diffs the DES cp/* shares two-sidedly against BENCH_cp.json so
# attribution drift fails the gate in either direction.
#
# --bench additionally runs the full schedule autotuner on the reference
# workload (bench_tune) and diffs the tune/* rows against BENCH_tune.json
# twice: two-sided on the stall SHARES (the winner's attribution must not
# drift) and one-sided on real_time (the tuned makespan must not regress).
#
# --tune is the autotuner smoke: a tiny-n search through the sched_tune
# CLI with a manifest round-trip (fresh search persists the winner, the
# re-run must answer from the manifest) plus the real-runtime wire-byte
# cross-check (--validate), and an apsp --variant auto end-to-end run that
# must be bit-identical to explicitly running the winning schedule.
#
# --paths is the path-tracking gate: bench_paths (argmin-SIMD kernel vs
# the scalar oracle, plus the end-to-end paths overhead of a distributed
# solve) diffed against BENCH_paths.json, the >= 5x fused-kernel speedup
# acceptance enforced from the fresh JSON, and an apsp --paths
# end-to-end run (distributed) that must answer a path query.
#
# --serve is the serving-tier gate (DESIGN.md §4.12-4.13): the
# test_serve and test_cli suites, bench_serve diffed against
# BENCH_serve.json three times (one-sided loose on the wall-clock
# p50/p99 latency rows, two-sided tight on the deterministic hit-rate
# rows, two-sided on the per-stage latency-attribution shares), and an
# apsp CLI round trip — solve + --publish answering repeated --query
# flags, then --serve answering the same batch from the manifest with
# byte-identical stdout while ALSO capturing a per-query Chrome trace
# and an SLO report; trace_analyze --mode serve must reassemble that
# trace into gapless span trees. Plus the values-only negative: a
# manifest published without --paths must hard-error on a path query and
# still serve distances.
#
# --monitor is the observability gate (DESIGN.md §4.14): the monitor and
# CLI suites, bench_monitor's flight-recorder overhead gated under the
# ABSOLUTE 3% always-on budget (bench_compare.py --ceiling — the relative
# diff vs BENCH_monitor.json is deliberately loose, ns-scale record costs
# drift with the machine), and the acceptance smoke: an apsp run with an
# injected straggler under --monitor + --flight-recorder must emit live
# progress/ETA lines on stderr, fire exactly ONE incident dump blaming
# the slow rank, keep stdout byte-identical to the unmonitored run, and
# produce an incident report that trace_analyze --incidents loads and
# re-analyzes cleanly.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

san=""
faults=0
bench=0
tune=0
paths=0
serve=0
monitor=0
if [[ "${1:-}" == "--faults" ]]; then
  faults=1
  shift
elif [[ "${1:-}" == "--bench" ]]; then
  bench=1
  shift
elif [[ "${1:-}" == "--tune" ]]; then
  tune=1
  shift
elif [[ "${1:-}" == "--paths" ]]; then
  paths=1
  shift
elif [[ "${1:-}" == "--serve" ]]; then
  serve=1
  shift
elif [[ "${1:-}" == "--monitor" ]]; then
  monitor=1
  shift
elif [[ "${1:-}" == "--san" ]]; then
  san="${2:?usage: check.sh --san address|thread|undefined [build-dir]}"
  shift 2
fi

if [[ "$bench" == 1 ]]; then
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" \
    --target bench_srgemm_micro bench_fig7_64node_perf \
             bench_fig10_phase_breakdown trace_dump_cli trace_analyze_cli
  out_dir="$build_dir/metrics"
  mkdir -p "$out_dir"

  echo "== SRGEMM micro-bench vs BENCH_srgemm.json =="
  "$build_dir/bench/bench_srgemm_micro" \
    --benchmark_min_time=0.1 \
    --benchmark_out="$out_dir/srgemm_fresh.json" \
    --benchmark_out_format=json
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_srgemm.json" "$out_dir/srgemm_fresh.json"

  echo "== Figure 7 DES sweep vs BENCH_dist.json =="
  PARFW_BENCH_JSON="$out_dir/dist_fresh.json" \
    "$build_dir/bench/bench_fig7_64node_perf" > /dev/null
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_dist.json" "$out_dir/dist_fresh.json"

  echo "== phase breakdown (measured vs modelled) =="
  "$build_dir/bench/bench_fig10_phase_breakdown"

  echo "== reconciliation + metric snapshots =="
  for v in baseline pipelined async offload; do
    "$build_dir/tools/trace_dump" --mode metrics --variant "$v" \
      --metrics-json "$out_dir/metrics_$v.json" \
      --metrics-prom "$out_dir/metrics_$v.prom"
  done

  echo "== causal trace-analysis smoke =="
  # Real run: capture -> validate -> blame, against the loose sanity band.
  "$build_dir/tools/trace_dump" --mode real --variant async \
    --pr 2 --pc 2 --n 256 --block 32 --out "$out_dir/real_trace.json"
  "$build_dir/tools/trace_dump" --mode check --in "$out_dir/real_trace.json"
  "$build_dir/tools/trace_analyze" --trace "$out_dir/real_trace.json" \
    --critical-path --blame \
    --band-file "$repo_root/BENCH_cp_band.json" --band-set real \
    --metrics-json "$out_dir/cp_real_metrics.json" \
    | tee "$out_dir/blame_real.txt"
  # Deterministic DES reference: exact critical-path == makespan check is
  # built into trace_analyze --des --critical-path; the shares must stay
  # inside the tight band AND within 5% (two-sided) of BENCH_cp.json.
  "$build_dir/tools/trace_analyze" --des --variant async --nodes 4 \
    --n 49152 --block 768 --critical-path --blame --what-if comm=2 \
    --band-file "$repo_root/BENCH_cp_band.json" --band-set des \
    --bench-json "$out_dir/cp_fresh.json" \
    --metrics-json "$out_dir/cp_des_metrics.json" \
    | tee "$out_dir/blame_des.txt"
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_cp.json" "$out_dir/cp_fresh.json" \
    --metric share --two-sided --tolerance 0.05

  echo "== schedule autotuner vs BENCH_tune.json =="
  cmake --build "$build_dir" -j"$(nproc)" --target bench_tune
  PARFW_BENCH_JSON="$out_dir/tune_fresh.json" \
    "$build_dir/bench/bench_tune" | tee "$out_dir/tune_report.txt"
  # Two-sided on the stall shares: the winner's attribution must not
  # drift. One-sided on real_time: the tuned makespan must not regress.
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_tune.json" "$out_dir/tune_fresh.json" \
    --metric share --two-sided --tolerance 0.05
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_tune.json" "$out_dir/tune_fresh.json" \
    --tolerance 0.05

  echo "check.sh --bench: OK (snapshots in $out_dir)"
  exit 0
fi

if [[ "$tune" == 1 ]]; then
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" --target sched_tune_cli apsp_cli
  out_dir="$build_dir/tune-smoke"
  mkdir -p "$out_dir"
  rm -f "$out_dir/manifest.json"

  echo "== tiny-n tuner + manifest round-trip + real-run validation =="
  "$build_dir/tools/sched_tune" --n 256 --ranks 4 --rpn 2 \
    --manifest "$out_dir/manifest.json" --validate
  # Re-run: must answer from the manifest, not search again.
  "$build_dir/tools/sched_tune" --n 256 --ranks 4 --rpn 2 \
    --manifest "$out_dir/manifest.json" | grep -q "manifest hit" \
    || { echo "manifest round-trip failed: no hit on re-run"; exit 1; }

  echo "== apsp --variant auto: bit-identical to the explicit winner =="
  rm -f "$out_dir/cache.json"
  PARFW_TUNE_CACHE="$out_dir/cache.json" \
    "$build_dir/tools/apsp" --gen er --n 240 --p 0.2 --seed 7 \
    --algorithm dist --dist 2x2 --rpn 2 --variant auto \
    --output "$out_dir/auto.txt"
  win_args=$(python3 - "$out_dir/cache.json" <<'EOF'
import json, sys
e = json.load(open(sys.argv[1]))["entries"][0]
# --dist PRxPC only expresses naive placements; on this workload the
# winner is naive (deterministic search). Fail loudly if that shifts.
assert not e["tiled"], "winner went tiled; express it via the tune API test"
grid = f"{e['pr']}x{e['pc']}"
print(f"--variant {e['variant']} --dist {grid} --block {e['block']}")
EOF
)
  # shellcheck disable=SC2086
  "$build_dir/tools/apsp" --gen er --n 240 --p 0.2 --seed 7 \
    --algorithm dist --rpn 2 $win_args --output "$out_dir/explicit.txt"
  cmp "$out_dir/auto.txt" "$out_dir/explicit.txt" \
    || { echo "auto result differs from the explicit winner"; exit 1; }

  echo "check.sh --tune: OK"
  exit 0
fi

if [[ "$paths" == 1 ]]; then
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" \
    --target bench_paths apsp_cli test_dist test_resilience
  out_dir="$build_dir/paths-smoke"
  mkdir -p "$out_dir"

  echo "== paths bit-identity + crash-restart suites =="
  "$build_dir/tests/test_dist" --gtest_filter='*DistPaths*'
  "$build_dir/tests/test_resilience" \
    --gtest_filter='*CrashRestartPaths*:CheckpointFormat.PredPayload*'

  echo "== paths bench vs BENCH_paths.json =="
  "$build_dir/bench/bench_paths" \
    --benchmark_min_time=0.1 \
    --benchmark_out="$out_dir/paths_fresh.json" \
    --benchmark_out_format=json
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_paths.json" "$out_dir/paths_fresh.json"

  echo "== argmin-SIMD kernel speedup acceptance (>= 5x scalar, n=512) =="
  python3 - "$out_dir/paths_fresh.json" <<'EOF'
import json, sys
rows = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]
        if b.get("run_type", "iteration") == "iteration"}
ratio = rows["BM_PredFused/512"]["GFLOP/s"] / rows["BM_PredScalar/512"]["GFLOP/s"]
print(f"fused/scalar argmin speedup at n=512: {ratio:.1f}x")
assert ratio >= 5.0, f"argmin SIMD kernel below 5x scalar ({ratio:.2f}x)"
EOF

  echo "== apsp --paths end-to-end (distributed, path query) =="
  "$build_dir/tools/apsp" --gen er --n 240 --p 0.2 --seed 7 \
    --algorithm dist --dist 2x2 --rpn 2 --block 48 --paths --query 0,199 \
    | tee "$out_dir/paths_query.txt"
  grep -q "^path:" "$out_dir/paths_query.txt" \
    || { echo "apsp --paths did not print a path"; exit 1; }

  echo "== apsp --paths --variant auto (tuner prices the paths schedule) =="
  rm -f "$out_dir/cache.json"
  PARFW_TUNE_CACHE="$out_dir/cache.json" \
    "$build_dir/tools/apsp" --gen er --n 240 --p 0.2 --seed 7 \
    --algorithm dist --dist 2x2 --rpn 2 --variant auto --paths \
    --query 0,199 | tee "$out_dir/paths_auto.txt"
  grep -q "^path:" "$out_dir/paths_auto.txt" \
    || { echo "apsp --paths --variant auto did not print a path"; exit 1; }
  python3 - "$out_dir/cache.json" <<'EOF'
import json, sys
entries = json.load(open(sys.argv[1]))["entries"]
assert any(e["track_paths"] for e in entries), \
    "tuner cache has no paths workload entry"
EOF

  echo "check.sh --paths: OK"
  exit 0
fi

if [[ "$serve" == 1 ]]; then
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" \
    --target test_serve test_cli bench_serve apsp_cli trace_analyze_cli
  out_dir="$build_dir/serve-smoke"
  mkdir -p "$out_dir"

  echo "== serving-tier + query-API suites =="
  "$build_dir/tests/test_serve"
  "$build_dir/tests/test_cli"

  echo "== serve bench vs BENCH_serve.json =="
  PARFW_BENCH_JSON="$out_dir/serve_fresh.json" \
    "$build_dir/bench/bench_serve" | tee "$out_dir/serve_report.txt"
  # One-sided loose on the latency rows: p50/p99 are wall-clock on shared
  # CI hardware, only a gross regression should fail. Two-sided tight on
  # the hit rates: cache decisions are deterministic under the fixed
  # workload seed, so any drift is a policy change, not noise.
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_serve.json" "$out_dir/serve_fresh.json" \
    --tolerance 0.50
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_serve.json" "$out_dir/serve_fresh.json" \
    --metric hit_rate --two-sided --tolerance 0.02
  # Per-stage latency attribution shares (DESIGN.md §4.13): two-sided —
  # a stage silently swallowing (or shedding) most of the query window is
  # an accounting bug even when the wall clock looks fine. Loose band:
  # the io/walk balance moves with the machine's disk-vs-CPU ratio.
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_serve.json" "$out_dir/serve_fresh.json" \
    --metric share --two-sided --tolerance 0.75

  echo "== apsp solve + publish -> serve round trip (CLI) =="
  rm -rf "$out_dir/manifest" "$out_dir/manifest_values"
  "$build_dir/tools/apsp" --gen er --n 240 --p 0.2 --seed 7 \
    --algorithm dist --dist 2x2 --rpn 2 --block 48 --paths \
    --publish "$out_dir/manifest" \
    --query 0,199 --query 17,42 --query 199,0 \
    > "$out_dir/solve_answers.txt"
  [[ "$(grep -c '^dist(' "$out_dir/solve_answers.txt")" == 3 ]] \
    || { echo "repeated --query flags did not all get answered"; exit 1; }
  # The observability flags must not perturb stdout: the byte-identical
  # comparison below runs WITH tracing + SLO monitoring enabled.
  "$build_dir/tools/apsp" --serve "$out_dir/manifest" --paths --cache-mb 1 \
    --query 0,199 --query 17,42 --query 199,0 \
    --serve-trace "$out_dir/serve_trace.json" --slo-p99-ms 50 --slow-log 5 \
    > "$out_dir/serve_answers.txt" 2> "$out_dir/serve_stderr.txt"
  cmp "$out_dir/solve_answers.txt" "$out_dir/serve_answers.txt" \
    || { echo "served answers differ from the in-memory solve"; exit 1; }
  grep -q "SLO:" "$out_dir/serve_stderr.txt" \
    || { echo "--slo-p99-ms produced no SLO report"; exit 1; }
  grep -q "serve.cache.hits" "$out_dir/serve_stderr.txt" \
    || { echo "serve cache stats missing from the telemetry table"; exit 1; }

  echo "== trace_analyze --mode serve on the captured query trace =="
  "$build_dir/tools/trace_analyze" --trace "$out_dir/serve_trace.json" \
    --mode serve | tee "$out_dir/serve_trace_report.txt"
  grep -q "serve trace: 3 queries" "$out_dir/serve_trace_report.txt" \
    || { echo "serve trace did not reassemble into 3 query span trees"; \
         exit 1; }

  echo "== values-only manifest: path queries must hard-error =="
  "$build_dir/tools/apsp" --gen er --n 240 --p 0.2 --seed 7 \
    --algorithm dist --dist 2x2 --rpn 2 --block 48 \
    --publish "$out_dir/manifest_values" > /dev/null
  if "$build_dir/tools/apsp" --serve "$out_dir/manifest_values" --paths \
      --query 0,199 > /dev/null 2> "$out_dir/values_only_err.txt"; then
    echo "path query against a values-only manifest did not fail"
    exit 1
  fi
  grep -q "values-only manifest" "$out_dir/values_only_err.txt" \
    || { echo "values-only failure lacks the diagnostic"; exit 1; }
  "$build_dir/tools/apsp" --serve "$out_dir/manifest_values" --query 0,199 \
    | grep -q "^dist(0, 199)" \
    || { echo "distance-only serve from a values-only manifest failed"; \
         exit 1; }

  echo "check.sh --serve: OK"
  exit 0
fi

if [[ "$monitor" == 1 ]]; then
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j"$(nproc)" \
    --target test_monitor test_cli bench_monitor apsp_cli trace_analyze_cli
  out_dir="$build_dir/monitor-smoke"
  mkdir -p "$out_dir"

  echo "== monitor + CLI suites =="
  "$build_dir/tests/test_monitor"
  "$build_dir/tests/test_cli"

  echo "== flight-recorder overhead vs the 3% always-on budget =="
  PARFW_BENCH_JSON="$out_dir/monitor_fresh.json" \
    "$build_dir/bench/bench_monitor" | tee "$out_dir/monitor_report.txt"
  # The ceiling is the gate; the relative tolerance is loose on purpose
  # (the ns-scale record cost moves with the CI machine).
  python3 "$repo_root/scripts/bench_compare.py" \
    "$repo_root/BENCH_monitor.json" "$out_dir/monitor_fresh.json" \
    --metric overhead --tolerance 10 --ceiling 0.03

  echo "== live monitor smoke: injected straggler -> one blamed incident =="
  rm -f "$out_dir"/fr.json*
  apsp_args=(--gen er --n 240 --p 0.2 --seed 7 --algorithm dist \
             --dist 2x2 --rpn 2 --block 48 --query 0,199)
  # Reference stdout: same workload and injected fault, no monitoring.
  PARFW_SLOW_RANK=3 PARFW_SLOW_OP_MS=150 \
    "$build_dir/tools/apsp" "${apsp_args[@]}" > "$out_dir/plain_stdout.txt"
  PARFW_SLOW_RANK=3 PARFW_SLOW_OP_MS=150 \
    "$build_dir/tools/apsp" "${apsp_args[@]}" --monitor=0.01 \
    --flight-recorder "$out_dir/fr.json" \
    > "$out_dir/mon_stdout.txt" 2> "$out_dir/mon_stderr.txt"
  grep -q '^\[monitor\].*eta' "$out_dir/mon_stderr.txt" \
    || { echo "--monitor produced no live progress/ETA line"; exit 1; }
  cmp "$out_dir/plain_stdout.txt" "$out_dir/mon_stdout.txt" \
    || { echo "--monitor perturbed stdout"; exit 1; }
  [[ -s "$out_dir/fr.json" ]] \
    || { echo "--flight-recorder wrote no trace"; exit 1; }
  [[ "$(grep -c . "$out_dir/fr.json.incidents.jsonl")" == 1 ]] \
    || { echo "straggler run did not fire exactly one incident"; exit 1; }
  grep -q '"blamed_rank":3' "$out_dir/fr.json.incidents.jsonl" \
    || { echo "incident does not blame the injected slow rank 3"; exit 1; }

  echo "== trace_analyze --incidents on the dump =="
  "$build_dir/tools/trace_analyze" \
    --incidents "$out_dir/fr.json.incidents.jsonl" \
    | tee "$out_dir/incident_report.txt"

  echo "check.sh --monitor: OK"
  exit 0
fi

if [[ "$faults" == 1 ]]; then
  build_dir="${1:-$repo_root/build-faults}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARFW_SAN=address -DPARFW_BUILD_BENCH=OFF -DPARFW_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j"$(nproc)" \
    --target test_mpisim_stress test_resilience
  "$build_dir/tests/test_mpisim_stress" --gtest_filter='FaultMatrix.*'
  "$build_dir/tests/test_resilience"
  echo "check.sh --faults: OK"
  exit 0
fi

if [[ -n "$san" ]]; then
  build_dir="${1:-$repo_root/build-san-$san}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARFW_SAN="$san" -DPARFW_BUILD_BENCH=OFF -DPARFW_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j"$(nproc)" \
    --target test_mpisim_stress test_mpisim test_sched test_telemetry
  "$build_dir/tests/test_mpisim_stress"
  "$build_dir/tests/test_mpisim"
  "$build_dir/tests/test_sched"
  "$build_dir/tests/test_telemetry"
  echo "check.sh --san $san: OK"
  exit 0
fi

build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "== SRGEMM bench smoke (scalar tiled vs SIMD, n=512) =="
# Unsuffixed min_time: the "0.2s" form is rejected by google-benchmark
# < 1.8 (deprecation warning on newer versions, which still accept it).
"$build_dir/bench/bench_srgemm_micro" \
  --benchmark_filter='BM_Srgemm(TiledScalar|Simd)/512$' \
  --benchmark_min_time=0.2

echo "check.sh: OK"
