// R-Kleene: recursive divide-and-conquer APSP (the communication-avoiding
// formulation the paper's §6 attributes to Solomonik et al.'s 2.5D work;
// the recursion itself is D'Alberto & Nicolau's cache-oblivious R-Kleene).
//
// Partition A = [A11 A12; A21 A22] and compute the closure A* by
//
//   A11 ← A11*                      (recurse)
//   A12 ← A11 ⊗ A12                 (paths entering the top-left block)
//   A21 ← A21 ⊗ A11
//   A22 ← A22 ⊕ A21 ⊗ A12           (Schur-style update)
//   A22 ← A22*                      (recurse)
//   A12 ← A12 ⊗ A22
//   A21 ← A22 ⊗ A21
//   A11 ← A11 ⊕ A12 ⊗ A21           (paths detouring through the bottom)
//
// All heavy work is SRGEMM, giving the same kernel-bound profile as
// blocked FW but with a cache-oblivious recursion instead of a fixed
// block size — the divide-and-conquer alternative evaluated in the
// related work. Unlike blocked FW the panel products here are NOT
// accumulating closures (A12 ← A11 ⊗ A12 REPLACES A12 with min(A12,
// A11⊗A12) only because A11* has a unit diagonal), so correctness leans
// on the closed diagonal blocks exactly as the algorithm prescribes.
#pragma once

#include <cstddef>

#include "core/floyd_warshall.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "util/matrix.hpp"

namespace parfw {

struct RKleeneOptions {
  /// Recursion cutoff: blocks at or below this size use sequential FW.
  std::size_t base_size = 64;
  srgemm::Config gemm{};
};

namespace detail {

template <typename S>
void rkleene_rec(MatrixView<typename S::value_type> a,
                 const RKleeneOptions& opt) {
  const std::size_t n = a.rows();
  if (n <= opt.base_size) {
    floyd_warshall<S>(a);
    return;
  }
  const std::size_t h = n / 2;
  auto a11 = a.sub(0, 0, h, h);
  auto a12 = a.sub(0, h, h, n - h);
  auto a21 = a.sub(h, 0, n - h, h);
  auto a22 = a.sub(h, h, n - h, n - h);

  rkleene_rec<S>(a11, opt);
  // In-place closure-multiply: safe for idempotent semirings with closed
  // A11 (same argument as blocked FW's PanelUpdate).
  srgemm::multiply<S>(a11, a12, a12, opt.gemm);
  srgemm::multiply<S>(a21, a11, a21, opt.gemm);
  srgemm::multiply<S>(a21, a12, a22, opt.gemm);
  rkleene_rec<S>(a22, opt);
  srgemm::multiply<S>(a12, a22, a12, opt.gemm);
  srgemm::multiply<S>(a22, a21, a21, opt.gemm);
  srgemm::multiply<S>(a12, a21, a11, opt.gemm);
}

}  // namespace detail

/// In-place APSP closure via the recursive Kleene algorithm.
template <typename S>
void rkleene_apsp(MatrixView<typename S::value_type> a,
                  const RKleeneOptions& opt = {}) {
  static_assert(is_idempotent<S>(), "R-Kleene requires an idempotent semiring");
  PARFW_CHECK(a.rows() == a.cols());
  PARFW_CHECK(opt.base_size > 0);
  if (a.rows() == 0) return;
  detail::rkleene_rec<S>(a, opt);
}

}  // namespace parfw
