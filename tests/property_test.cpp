// Property-based tests: invariants every correct APSP closure must
// satisfy, checked across randomised graphs, solvers and semirings.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/apsp.hpp"
#include "core/blocked_fw.hpp"
#include "core/rkleene.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace parfw {
namespace {

using S = MinPlus<double>;

class ClosureProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClosureProperties, TriangleInequalityHolds) {
  const auto g = gen::erdos_renyi(45, 0.15, GetParam());
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kBlocked;
  opt.block_size = 16;
  const auto r = apsp<S>(g, opt);
  const auto& d = r.dist;
  for (std::size_t i = 0; i < 45; ++i)
    for (std::size_t k = 0; k < 45; ++k)
      for (std::size_t j = 0; j < 45; ++j)
        EXPECT_LE(d(i, j), d(i, k) + d(k, j) + 1e-9);
}

TEST_P(ClosureProperties, ClosureIsAFixpoint) {
  // Running FW again on a closed matrix must change nothing.
  const auto g = gen::erdos_renyi(40, 0.2, GetParam(), 1.0, 100.0, true);
  auto d = g.distance_matrix<S>();
  floyd_warshall<S>(d.view());
  auto again = d.clone();
  floyd_warshall<S>(again.view());
  EXPECT_EQ(max_abs_diff<double>(d.view(), again.view()), 0.0);
  blocked_floyd_warshall<S>(again.view(), {{.block_size = 8}});
  EXPECT_EQ(max_abs_diff<double>(d.view(), again.view()), 0.0);
}

TEST_P(ClosureProperties, ClosureDominatedByEdgesAndOneStepExpansion) {
  // d(i,j) <= w(i,j), and d(i,j) == min over u of w(i,u) + d(u,j) for
  // reachable pairs (Bellman optimality).
  const auto g = gen::erdos_renyi(35, 0.2, GetParam() + 5000, 1.0, 100.0, true);
  const auto w = g.distance_matrix<S>();
  auto d = w.clone();
  floyd_warshall<S>(d.view());
  const std::size_t n = 35;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_LE(d(i, j), w(i, j));
      if (i == j || value_traits<double>::is_inf(d(i, j))) continue;
      double best = value_traits<double>::infinity();
      for (std::size_t u = 0; u < n; ++u)
        best = std::min(best, w(i, u) + d(u, j));
      EXPECT_EQ(d(i, j), best) << i << "->" << j;
    }
}

TEST_P(ClosureProperties, MonotoneInEdgeWeights) {
  // Lowering any single edge weight can only lower (or keep) distances.
  auto g = gen::erdos_renyi(30, 0.25, GetParam() + 9000, 2.0, 100.0, true);
  auto before = g.distance_matrix<S>();
  floyd_warshall<S>(before.view());
  Rng rng(GetParam());
  const auto& e = g.edges()[rng.next_below(g.num_edges())];
  g.add_edge(e.src, e.dst, 1.0);  // strictly better duplicate
  auto after = g.distance_matrix<S>();
  floyd_warshall<S>(after.view());
  for (std::size_t i = 0; i < 30; ++i)
    for (std::size_t j = 0; j < 30; ++j)
      EXPECT_LE(after(i, j), before(i, j));
}

TEST_P(ClosureProperties, SolverFamilyAgreesBitwise) {
  // Sequential FW, blocked FW (two block sizes), and R-Kleene must agree
  // exactly on integral weights.
  const auto g = gen::erdos_renyi(52, 0.2, GetParam() + 12000, 1.0, 90.0, true);
  auto seq = g.distance_matrix<S>();
  floyd_warshall<S>(seq.view());

  auto blocked = g.distance_matrix<S>();
  blocked_floyd_warshall<S>(blocked.view(), {{.block_size = 13}});
  EXPECT_EQ(max_abs_diff<double>(seq.view(), blocked.view()), 0.0);

  auto rk = g.distance_matrix<S>();
  rkleene_apsp<S>(rk.view(), {.base_size = 8});
  EXPECT_EQ(max_abs_diff<double>(seq.view(), rk.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- R-Kleene specifics -------------------------------------------------------

TEST(RKleene, OddSizesAndTinyBases) {
  for (int n : {1, 2, 3, 17, 33, 65}) {
    const auto g = gen::erdos_renyi(n, 0.3, 700 + n, 1.0, 50.0, true);
    auto seq = g.distance_matrix<S>();
    floyd_warshall<S>(seq.view());
    auto rk = g.distance_matrix<S>();
    rkleene_apsp<S>(rk.view(), {.base_size = 2});
    EXPECT_EQ(max_abs_diff<double>(seq.view(), rk.view()), 0.0) << "n=" << n;
  }
}

TEST(RKleene, MaxMinSemiring) {
  using W = MaxMin<float>;
  DenseEntryGen<float> gen(71, 0.5, 1.0f, 100.0f, true);
  const std::size_t n = 48;
  Matrix<float> a(n, n, W::zero());
  for (std::size_t i = 0; i < n; ++i) a(i, i) = W::one();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const float w = gen(static_cast<vertex_t>(i), static_cast<vertex_t>(j));
      if (!value_traits<float>::is_inf(w)) a(i, j) = w;
    }
  auto expected = a.clone();
  floyd_warshall<W>(expected.view());
  rkleene_apsp<W>(a.view(), {.base_size = 8});
  EXPECT_EQ(max_abs_diff<float>(expected.view(), a.view()), 0.0);
}

TEST(RKleene, EmptyAndDegenerate) {
  Matrix<double> empty(0, 0);
  rkleene_apsp<S>(empty.view());  // must not crash
  Matrix<double> one(1, 1, 0.0);
  rkleene_apsp<S>(one.view());
  EXPECT_EQ(one(0, 0), 0.0);
}

}  // namespace
}  // namespace parfw
