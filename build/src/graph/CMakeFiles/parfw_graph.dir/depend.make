# Empty dependencies file for parfw_graph.
# This may be replaced when dependencies are built.
