// Fault-tolerant APSP: checkpoint/restart around simulated failures.
//
// Leadership-class runs (the paper's 1.66M-vertex solve occupies 64 nodes
// for hours) must survive node failures. Blocked FW's state after any
// completed block iteration fully determines the remainder, so a
// checkpoint is just (matrix, next-iteration). This example shows both
// resilience layers:
//
//   1. single node — periodic snapshots into a CheckpointStore, a
//      "crash", and a restart from the last snapshot;
//   2. distributed — the supervision loop of dist::run_parallel_fw
//      recovering from an injected rank crash via the coordinated
//      checkpoint cuts the schedule emits, under a flaky network.
//
// Set PARFW_CKPT_DIR to keep the snapshots on disk (FileCheckpointStore,
// survives process death); unset, an in-memory store is used.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "dist/driver.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

using namespace parfw;
using S = MinPlus<float>;

namespace {

std::unique_ptr<CheckpointStore> make_store() {
  if (const char* dir = std::getenv("PARFW_CKPT_DIR")) {
    std::printf("checkpoint store: %s (PARFW_CKPT_DIR)\n", dir);
    return std::make_unique<FileCheckpointStore>(dir);
  }
  std::printf("checkpoint store: in-memory (set PARFW_CKPT_DIR for disk)\n");
  return std::make_unique<MemoryCheckpointStore>();
}

}  // namespace

int main() {
  const std::size_t n = 768, b = 64, nb = n / b;
  const std::size_t checkpoint_every = 3;  // iterations
  DenseEntryGen<float> gen(8086, 1.0, 1.0f, 75.0f, /*integral=*/true);
  std::printf("problem: n=%zu, %zu block iterations, checkpoint every %zu\n",
              n, nb, checkpoint_every);
  auto store = make_store();

  // Reference: uninterrupted run.
  auto reference = gen.full(static_cast<vertex_t>(n));
  Timer t_ref;
  blocked_floyd_warshall<S>(reference.view(), {{.block_size = b}});
  std::printf("uninterrupted solve: %.0f ms\n\n", t_ref.millis());

  // --- 1. single node: snapshot into the store, crash, restart ------------
  struct SimulatedCrash {};
  auto work = gen.full(static_cast<vertex_t>(n));
  Timer t_crash;
  try {
    blocked_floyd_warshall_range<S>(
        work.view(), 0, {{.block_size = b}},
        [&](std::size_t k_done, MatrixView<float> view) {
          if (k_done % checkpoint_every == 0)
            save_checkpoint<float>(*store, "single-node",
                                   MatrixView<const float>(view), k_done, b);
          if (k_done == 7) throw SimulatedCrash{};
        });
  } catch (const SimulatedCrash&) {
    std::printf("crash injected after iteration 7 (%.0f ms in); last "
                "checkpoint at iteration 6\n",
                t_crash.millis());
  }

  auto restored = load_checkpoint<float>(*store, "single-node");
  std::printf("restart from iteration %zu\n", restored.next_block);
  Timer t_resume;
  blocked_floyd_warshall_range<S>(restored.dist.view(), restored.next_block,
                                  {{.block_size = restored.block_size}});
  std::printf("resumed solve: %.0f ms for the remaining %zu iterations\n",
              t_resume.millis(), nb - restored.next_block);
  const double diff =
      max_abs_diff<float>(reference.view(), restored.dist.view());
  std::printf("bitwise match with the uninterrupted run: %s\n\n",
              diff == 0.0 ? "yes" : "NO");
  store->erase("single-node");

  // --- 2. distributed: rank crash + flaky network, supervised restart -----
  // A 2x2 grid solves the same matrix; rank 2 is killed mid-schedule and
  // 1% of messages are dropped (re-driven by the retry envelope). The
  // driver restarts the world from the last coordinated checkpoint cut.
  dist::DistFwOptions opt;
  opt.block_size = b;
  opt.variant = sched::Variant::kAsync;
  opt.resilience.checkpoint_every = checkpoint_every;
  opt.resilience.store = store.get();
  opt.faults.seed = 42;
  opt.faults.drop_prob = 0.01;
  opt.faults.crash_rank = 2;
  opt.faults.crash_at_op = 200;
  opt.resilience.send_timeout = 0.002;

  Timer t_dist;
  const auto res = dist::run_parallel_fw<S>(
      n, gen, dist::GridSpec::row_major(2, 2), /*ranks_per_node=*/2, opt);
  const double ddiff = max_abs_diff<float>(reference.view(), res.dist.view());
  std::printf("distributed 2x2 under faults: %.0f ms, %d restart(s)\n",
              t_dist.millis(), res.restarts);
  std::printf("  drops injected: %llu, retries: %llu (%llu bytes resent)\n",
              static_cast<unsigned long long>(res.traffic.drops_injected),
              static_cast<unsigned long long>(res.traffic.retries),
              static_cast<unsigned long long>(res.traffic.retry_bytes));
  std::printf("  checkpoints: %llu snapshots, %.1f MiB, %.1f ms\n",
              static_cast<unsigned long long>(res.traffic.checkpoints),
              static_cast<double>(res.traffic.checkpoint_bytes) / (1 << 20),
              res.traffic.checkpoint_seconds * 1e3);
  std::printf("  bitwise match with the uninterrupted run: %s\n",
              ddiff == 0.0 ? "yes" : "NO");
  return (diff == 0.0 && ddiff == 0.0) ? 0 : 1;
}
