#include "tune/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "causal/trace_io.hpp"

namespace parfw::tune {

namespace {

bool same_key(const ManifestEntry& e, const Workload& w, double sw) {
  return e.workload == w && e.stall_weight == sw;
}

void append_number(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

bool get_number(const causal::JsonValue& obj, const char* key, double* out,
                std::string* error) {
  const causal::JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != causal::JsonValue::Type::kNumber) {
    *error = std::string("manifest entry missing numeric field \"") + key +
             "\"";
    return false;
  }
  *out = v->number;
  return true;
}

bool get_bool(const causal::JsonValue& obj, const char* key, bool* out,
              std::string* error) {
  const causal::JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != causal::JsonValue::Type::kBool) {
    *error =
        std::string("manifest entry missing boolean field \"") + key + "\"";
    return false;
  }
  *out = v->boolean;
  return true;
}

}  // namespace

const ManifestEntry* Manifest::find(const Workload& w,
                                    double stall_weight) const {
  for (const ManifestEntry& e : entries)
    if (same_key(e, w, stall_weight)) return &e;
  return nullptr;
}

void Manifest::put(const ManifestEntry& e) {
  for (ManifestEntry& old : entries)
    if (same_key(old, e.workload, e.stall_weight)) {
      old = e;
      return;
    }
  entries.push_back(e);
}

ManifestEntry to_entry(const TuneReport& r, double stall_weight) {
  ManifestEntry e;
  e.workload = r.workload;
  e.stall_weight = stall_weight;
  e.winner = r.winner.canonical();
  e.predicted_makespan = r.winner_eval.makespan;
  e.predicted_stall_share = r.winner_eval.stall_share;
  e.default_makespan = r.seed_eval.makespan;
  e.default_stall_share = r.seed_eval.stall_share;
  return e;
}

std::string write_manifest(const Manifest& m) {
  std::string out = "{\n  \"version\": 1,\n  \"entries\": [";
  bool first = true;
  for (const ManifestEntry& e : m.entries) {
    out += first ? "\n" : ",\n";
    first = false;
    char head[512];
    std::snprintf(head, sizeof head,
                  "    { \"n\": %zu, \"ranks\": %d, \"ranks_per_node\": %d, "
                  "\"word_bytes\": %zu, \"track_paths\": %s,\n"
                  "      \"stall_weight\": ",
                  e.workload.n, e.workload.ranks, e.workload.ranks_per_node,
                  e.workload.word_bytes,
                  e.workload.track_paths ? "true" : "false");
    out += head;
    append_number(&out, e.stall_weight);
    char body[512];
    const Candidate c = e.winner.canonical();
    std::snprintf(body, sizeof body,
                  ",\n      \"variant\": \"%s\", \"tiled\": %s, "
                  "\"pr\": %d, \"pc\": %d, \"kr\": %d, \"kc\": %d, "
                  "\"block\": %zu, \"streams\": %d,\n"
                  "      \"predicted_makespan\": ",
                  sched::variant_name(c.variant),
                  c.placement.tiled ? "true" : "false", c.placement.pr,
                  c.placement.pc, c.placement.kr, c.placement.kc, c.block,
                  c.streams);
    out += body;
    append_number(&out, e.predicted_makespan);
    out += ", \"predicted_stall_share\": ";
    append_number(&out, e.predicted_stall_share);
    out += ",\n      \"default_makespan\": ";
    append_number(&out, e.default_makespan);
    out += ", \"default_stall_share\": ";
    append_number(&out, e.default_stall_share);
    out += " }";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool read_manifest(const std::string& text, Manifest* out,
                   std::string* error) {
  out->entries.clear();
  causal::JsonValue doc;
  if (!causal::parse_json(text, &doc, error)) return false;
  if (doc.type != causal::JsonValue::Type::kObject) {
    *error = "manifest root must be an object";
    return false;
  }
  const causal::JsonValue* ver = doc.find("version");
  if (ver == nullptr || ver->type != causal::JsonValue::Type::kNumber ||
      ver->number != 1.0) {
    *error = "manifest version missing or unsupported (want 1)";
    return false;
  }
  const causal::JsonValue* entries = doc.find("entries");
  if (entries == nullptr ||
      entries->type != causal::JsonValue::Type::kArray) {
    *error = "manifest \"entries\" must be an array";
    return false;
  }
  for (const causal::JsonValue& row : entries->arr) {
    if (row.type != causal::JsonValue::Type::kObject) {
      *error = "manifest entry must be an object";
      return false;
    }
    ManifestEntry e;
    double n = 0, ranks = 0, rpn = 0, wb = 0, blk = 0, streams = 0;
    double pr = 0, pc = 0, kr = 0, kc = 0;
    if (!get_number(row, "n", &n, error) ||
        !get_number(row, "ranks", &ranks, error) ||
        !get_number(row, "ranks_per_node", &rpn, error) ||
        !get_number(row, "word_bytes", &wb, error) ||
        !get_number(row, "stall_weight", &e.stall_weight, error) ||
        !get_number(row, "pr", &pr, error) ||
        !get_number(row, "pc", &pc, error) ||
        !get_number(row, "kr", &kr, error) ||
        !get_number(row, "kc", &kc, error) ||
        !get_number(row, "block", &blk, error) ||
        !get_number(row, "streams", &streams, error) ||
        !get_number(row, "predicted_makespan", &e.predicted_makespan,
                    error) ||
        !get_number(row, "predicted_stall_share", &e.predicted_stall_share,
                    error) ||
        !get_number(row, "default_makespan", &e.default_makespan, error) ||
        !get_number(row, "default_stall_share", &e.default_stall_share,
                    error))
      return false;
    if (!get_bool(row, "tiled", &e.winner.placement.tiled, error))
      return false;
    // "track_paths" joined the key after version-1 manifests shipped; a
    // missing field reads as false (a value-schedule row), so pre-paths
    // caches stay valid without a version bump.
    if (const causal::JsonValue* tp = row.find("track_paths");
        tp != nullptr) {
      if (tp->type != causal::JsonValue::Type::kBool) {
        *error = "manifest entry \"track_paths\" must be a boolean";
        return false;
      }
      e.workload.track_paths = tp->boolean;
    }
    const causal::JsonValue* var = row.find("variant");
    if (var == nullptr || var->type != causal::JsonValue::Type::kString ||
        !sched::variant_from_name(var->str, &e.winner.variant,
                                  /*allow_auto=*/false)) {
      *error = "manifest entry has a missing or unknown \"variant\"";
      return false;
    }
    e.workload.n = static_cast<std::size_t>(n);
    e.workload.ranks = static_cast<int>(ranks);
    e.workload.ranks_per_node = static_cast<int>(rpn);
    e.workload.word_bytes = static_cast<std::size_t>(wb);
    e.winner.placement.pr = static_cast<int>(pr);
    e.winner.placement.pc = static_cast<int>(pc);
    e.winner.placement.kr = static_cast<int>(kr);
    e.winner.placement.kc = static_cast<int>(kc);
    e.winner.block = static_cast<std::size_t>(blk);
    e.winner.streams = static_cast<int>(streams);
    e.winner = e.winner.canonical();
    out->put(e);
  }
  return true;
}

bool read_manifest_file(const std::string& path, Manifest* out,
                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open manifest file: " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!read_manifest(ss.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool write_manifest_file(const std::string& path, const Manifest& m,
                         std::string* error) {
  std::ofstream of(path, std::ios::binary | std::ios::trunc);
  if (!of) {
    *error = "cannot open manifest file for writing: " + path;
    return false;
  }
  of << write_manifest(m);
  of.flush();
  if (!of) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace parfw::tune
