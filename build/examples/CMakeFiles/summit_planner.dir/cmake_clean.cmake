file(REMOVE_RECURSE
  "CMakeFiles/summit_planner.dir/summit_planner.cpp.o"
  "CMakeFiles/summit_planner.dir/summit_planner.cpp.o.d"
  "summit_planner"
  "summit_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summit_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
