// Figure 9 — weak scaling: constant n³/P work per node.
//
// Paper: start at n = 300,000 on 16 nodes and scale n with the cube root
// of the node count up to 256 nodes; runtime in seconds. Findings:
// Co-ParallelFw (+async, and +reordering) stays flat — perfect weak
// scaling; Baseline and Offload grow steeply because they do not hide the
// (growing) communication.
#include <cmath>
#include <cstdio>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  bench::header(
      "Figure 9: weak scaling from n = 300,000 on 16 nodes (n ~ P^(1/3))",
      "paper: +async/+reordering flat (~perfect weak scaling); baseline\n"
      "and offload runtimes grow steadily with the node count.");

  const MachineConfig m = MachineConfig::summit();
  const double b = 768;
  const auto legends = paper_legends();
  bench::FigTrace trace;  // PARFW_TRACE=<file> records the first run

  Table t({"nodes", "vertices", "offload s", "baseline s", "pipelined s",
           "+reorder s", "+async s"});
  double async16 = 0, async256 = 0, base16 = 0, base256 = 0;
  for (int nodes : {16, 32, 64, 128, 256}) {
    const double n = 300000.0 * std::cbrt(nodes / 16.0);
    std::vector<double> secs;
    for (const auto& legend :
         {legends[4], legends[0], legends[1], legends[2], legends[3]}) {
      secs.push_back(
          simulate_fw(m, legend, nodes, n, b, trace.sink()).seconds);
    }
    if (nodes == 16) {
      async16 = secs[4];
      base16 = secs[1];
    }
    if (nodes == 256) {
      async256 = secs[4];
      base256 = secs[1];
    }
    t.add_row({std::to_string(nodes), Table::num(n, 0), Table::num(secs[0], 1),
               Table::num(secs[1], 1), Table::num(secs[2], 1),
               Table::num(secs[3], 1), Table::num(secs[4], 1)});
  }
  std::printf("%s", t.str().c_str());

  std::printf("\nruntime growth 16->256 nodes: +async %.2fx (paper: ~flat), "
              "baseline %.2fx (paper: grows steadily)\n",
              async256 / async16, base256 / base16);

  bench::footer(
      "expect: the +async column approximately constant across node\n"
      "counts; baseline/offload columns grow — the paper's Figure 9 split\n"
      "between communication-hiding and non-hiding variants.");
  return 0;
}
