// Tests for the run monitor + incident layer (src/monitor/,
// DESIGN.md §4.14): deterministic progress/ETA from event timestamps,
// anomaly triggers, and the end-to-end flight-recorder incident path —
// an injected straggler must produce exactly ONE incident dump whose
// window loads through the causal layer and blames the slow rank.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "causal/graph.hpp"
#include "causal/trace_io.hpp"
#include "core/diag_update.hpp"
#include "dist/driver.hpp"
#include "dist/parallel_fw.hpp"
#include "monitor/incident.hpp"
#include "monitor/monitor.hpp"
#include "sched/ir.hpp"
#include "sched/trace.hpp"

namespace parfw {
namespace {

using sched::OpKind;
using sched::Variant;

sched::Schedule make_schedule(Variant v, const dist::GridSpec& grid,
                              std::size_t nb, std::size_t b) {
  sched::ScheduleParams sp;
  sp.variant = v;
  sp.nb = nb;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.diag_flops = diag_update_flops(b, DiagStrategy::kClassic);
  return sched::build_schedule(grid, sp);
}

/// Replay a schedule into a monitor as synthetic trace events with FIXED
/// timestamps (a deterministic function of the step index) — no clocks.
void replay_schedule(const sched::Schedule& s, monitor::RunMonitor& mon) {
  mon.on_schedule(s);
  double t = 0.0;
  for (const sched::Step& st : s.steps) {
    sched::TraceEvent e;
    e.rank = st.rank;
    e.name = sched::op_name(st.op.kind);
    e.k = static_cast<std::uint32_t>(st.op.k);
    e.t_begin = t;
    t += 0.001 + 0.0001 * (st.rank + 1);  // rank-dependent, reproducible
    e.t_end = t;
    e.bytes = st.op.bytes;
    e.flops = st.op.flops;
    mon.record(e);
  }
}

TEST(Monitor, EtaDeterministicUnderIdenticalEventStreams) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  const sched::Schedule s = make_schedule(Variant::kAsync, grid, 4, 16);

  monitor::MonitorConfig cfg;
  cfg.progress_interval_s = 0.0;  // sample at every op event
  monitor::RunMonitor a(cfg), b(cfg);
  replay_schedule(s, a);
  replay_schedule(s, b);

  const auto ha = a.history(), hb = b.history();
  ASSERT_FALSE(ha.empty());
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].t, hb[i].t);
    EXPECT_EQ(ha[i].progress, hb[i].progress);
    EXPECT_EQ(ha[i].eta_s, hb[i].eta_s);
    EXPECT_EQ(ha[i].slowdown, hb[i].slowdown);
    EXPECT_EQ(ha[i].skew, hb[i].skew);
    EXPECT_EQ(ha[i].ops_done, hb[i].ops_done);
  }
  // The full replay ends at 100% with nothing left to predict.
  const auto done = a.progress();
  EXPECT_DOUBLE_EQ(done.progress, 1.0);
  EXPECT_DOUBLE_EQ(done.eta_s, 0.0);
  EXPECT_EQ(done.ops_done, done.ops_total);
  EXPECT_EQ(a.format_summary(), b.format_summary());
}

TEST(Monitor, ProgressAdvancesMonotonically) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  const sched::Schedule s = make_schedule(Variant::kBaseline, grid, 3, 8);
  monitor::MonitorConfig cfg;
  cfg.progress_interval_s = 0.0;
  monitor::RunMonitor mon(cfg);
  replay_schedule(s, mon);
  const auto h = mon.history();
  ASSERT_GT(h.size(), 1u);
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_GE(h[i].progress, h[i - 1].progress);
    EXPECT_GE(h[i].ops_done, h[i - 1].ops_done);
  }
}

TEST(Incidents, CooldownAndCapSuppressRepeatFires) {
  monitor::IncidentConfig cfg;
  cfg.cooldown_s = 10.0;
  cfg.max_incidents = 2;
  monitor::IncidentLog log(cfg);
  EXPECT_TRUE(log.fire("op_overrun", 0.0, 1, "first"));
  EXPECT_FALSE(log.fire("op_overrun", 5.0, 1, "inside cooldown"));
  EXPECT_TRUE(log.fire("op_overrun", 20.0, 2, "after cooldown"));
  EXPECT_FALSE(log.fire("op_overrun", 100.0, 3, "over the cap"));
  EXPECT_EQ(log.count(), 2u);
  EXPECT_EQ(log.incidents()[1].hint_rank, 2);
}

TEST(Incidents, RetransmitStormFiresOnceOverTheWindow) {
  monitor::IncidentConfig icfg;
  icfg.cooldown_s = 1000.0;
  monitor::IncidentLog log(icfg);
  monitor::MonitorConfig cfg;
  cfg.retransmit_threshold = 4;
  cfg.retransmit_window_s = 1.0;
  monitor::RunMonitor mon(cfg, nullptr, &log);
  for (int i = 0; i < 16; ++i) {
    sched::TraceEvent e;
    e.rank = 2;
    e.name = "retry";
    e.t_begin = e.t_end = 0.01 * i;
    mon.record(e);
  }
  EXPECT_EQ(log.count(), 1u);
  EXPECT_EQ(log.incidents()[0].kind, "retransmit_storm");
  EXPECT_EQ(log.incidents()[0].hint_rank, 2);
}

// The acceptance scenario, in-process: a 2x2 run with rank 3 sleeping
// 30 ms inside every op must produce exactly one incident whose ring
// window round-trips through the causal loader and whose blame lands on
// the injected straggler.
TEST(Incidents, InjectedStragglerFiresOneBlamedDump) {
  using S = MinPlus<float>;
  const std::string prefix = "monitor_test_fr";
  std::remove((prefix + ".incidents.jsonl").c_str());
  std::remove((prefix + ".incident-0.trace.json").c_str());

  sched::RingTraceSink ring;
  monitor::IncidentConfig icfg;
  icfg.path_prefix = prefix;
  monitor::IncidentLog incidents(icfg, &ring);
  monitor::MonitorConfig mcfg;
  mcfg.overrun_factor = 4.0;
  mcfg.min_overrun_s = 0.005;
  monitor::RunMonitor mon(mcfg, &ring, &incidents);

  const std::size_t n = 96, b = 24;
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.variant = Variant::kAsync;
  opt.block_size = b;
  opt.trace = &mon;
  opt.schedule_observer = &mon;
  opt.faults.slow_rank = 3;
  opt.faults.slow_op_seconds = 0.030;
  DenseEntryGen<float> gen(17, 0.9, 1.0f, 80.0f, /*integral=*/true);
  dist::run_parallel_fw<S>(n, gen, grid, 2, opt);

  // Exactly one incident (cooldown absorbs every later overrun), blamed
  // on the injected rank by the causal analysis of the window.
  ASSERT_EQ(incidents.count(), 1u);
  const monitor::Incident inc = incidents.incidents()[0];
  EXPECT_EQ(inc.kind, "op_overrun");
  EXPECT_EQ(inc.hint_rank, 3);
  EXPECT_EQ(inc.blamed_rank, 3);
  EXPECT_GT(inc.window_events, 0u);

  // The JSONL report holds exactly that one record.
  std::ifstream jf(incidents.report_path());
  ASSERT_TRUE(jf.good());
  std::string line;
  std::size_t lines = 0;
  std::string first;
  while (std::getline(jf, line))
    if (!line.empty()) {
      if (lines == 0) first = line;
      ++lines;
    }
  EXPECT_EQ(lines, 1u);
  EXPECT_NE(first.find("\"blamed_rank\":3"), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"op_overrun\""), std::string::npos);

  // The dumped window loads through the causal layer and analyses clean.
  ASSERT_FALSE(inc.trace_path.empty());
  const causal::LoadResult lr = causal::load_chrome_trace_file(inc.trace_path);
  ASSERT_TRUE(lr.ok) << lr.error;
  EXPECT_EQ(lr.events.size(), inc.window_events + (inc.ring_dropped > 0));
  causal::BuildStats bstats;
  const causal::Graph g = causal::build_graph(lr.events, &bstats);
  causal::BlameReport report;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &report, &err)) << err;
  EXPECT_GT(report.span, 0.0);

  std::remove((prefix + ".incidents.jsonl").c_str());
  std::remove(inc.trace_path.c_str());
}

TEST(Monitor, FinishExportsGaugesAndRingDropCount) {
  const auto grid = dist::GridSpec::row_major(2, 2);
  const sched::Schedule s = make_schedule(Variant::kAsync, grid, 3, 8);
  telemetry::Registry reg;
  sched::RingTraceSink ring(/*capacity_bytes=*/sizeof(sched::TraceEvent) * 4);
  monitor::MonitorConfig cfg;
  cfg.metrics = &reg;
  monitor::RunMonitor mon(cfg, &ring);
  replay_schedule(s, mon);
  mon.finish();
  EXPECT_DOUBLE_EQ(reg.gauge("monitor.progress").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("monitor.eta_seconds").value(), 0.0);
  // Far more events than the 4-slot ring holds: drops must be exported.
  EXPECT_GT(reg.gauge("trace.ring.dropped").value(), 0.0);
}

}  // namespace
}  // namespace parfw
