// CheckpointStore — the sink/source abstraction checkpoints flow through.
//
// A store maps string keys to opaque blobs. The distributed resilience
// layer writes one blob per rank per checkpoint cut plus a small commit
// record (see dist/checkpoint.hpp); the single-node path writes one blob.
// Two implementations:
//
//   * MemoryCheckpointStore — thread-safe in-process map. Used by tests
//     and by the supervision loop's default "survive an injected crash
//     within one process" mode.
//   * FileCheckpointStore  — one file per key under a directory
//     (tmp-write + atomic rename), the durable choice for real runs;
//     examples honour PARFW_CKPT_DIR to select it.
//
// Stores must be thread-safe: mpisim ranks are threads and all snapshot
// concurrently at a checkpoint cut.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace parfw {

/// One contiguous slice of a blob, for gathered partial reads.
struct ByteRange {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;
  /// Store `blob` under `key`, replacing any previous value atomically
  /// (readers see the old blob or the new one, never a torn write).
  virtual void put(const std::string& key,
                   std::span<const std::uint8_t> blob) = 0;
  /// Fetch the blob stored under `key`; nullopt if absent.
  virtual std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const = 0;
  virtual void erase(const std::string& key) = 0;
  /// All present keys, sorted (tests + garbage collection).
  virtual std::vector<std::string> keys() const = 0;

  /// Gathered ranged read: copy ranges[0], ranges[1], ... of the blob
  /// under `key` into `out`, back to back. Returns false iff the key is
  /// absent; a range past the end of the blob throws (that is a corrupt
  /// manifest, not a missing checkpoint). The base implementation fetches
  /// the whole blob; concrete stores override with positioned reads so the
  /// serving tier (src/serve/) can pull single tiles out of multi-MB rank
  /// blobs without materialising them.
  virtual bool get_ranges(const std::string& key,
                          std::span<const ByteRange> ranges,
                          std::uint8_t* out) const {
    auto blob = get(key);
    if (!blob.has_value()) return false;
    for (const ByteRange& r : ranges) {
      PARFW_CHECK_MSG(r.offset + r.length <= blob->size(),
                      "range [" << r.offset << ", +" << r.length
                                << ") past end of blob '" << key << "' ("
                                << blob->size() << " bytes)");
      std::memcpy(out, blob->data() + r.offset,
                  static_cast<std::size_t>(r.length));
      out += r.length;
    }
    return true;
  }
};

class MemoryCheckpointStore final : public CheckpointStore {
 public:
  void put(const std::string& key,
           std::span<const std::uint8_t> blob) override {
    std::lock_guard<std::mutex> lock(mu_);
    blobs_[key].assign(blob.begin(), blob.end());
  }
  std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blobs_.find(key);
    if (it == blobs_.end()) return std::nullopt;
    return it->second;
  }
  void erase(const std::string& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    blobs_.erase(key);
  }
  std::vector<std::string> keys() const override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(blobs_.size());
    for (const auto& [k, v] : blobs_) out.push_back(k);
    return out;  // std::map iterates sorted
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    blobs_.clear();
  }
  bool get_ranges(const std::string& key, std::span<const ByteRange> ranges,
                  std::uint8_t* out) const override {
    // Copy the requested slices under the lock — no whole-blob copy.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blobs_.find(key);
    if (it == blobs_.end()) return false;
    const auto& blob = it->second;
    for (const ByteRange& r : ranges) {
      PARFW_CHECK_MSG(r.offset + r.length <= blob.size(),
                      "range [" << r.offset << ", +" << r.length
                                << ") past end of blob '" << key << "' ("
                                << blob.size() << " bytes)");
      std::memcpy(out, blob.data() + r.offset,
                  static_cast<std::size_t>(r.length));
      out += r.length;
    }
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::uint8_t>> blobs_;
};

class FileCheckpointStore final : public CheckpointStore {
 public:
  explicit FileCheckpointStore(std::filesystem::path dir)
      : dir_(std::move(dir)) {
    std::filesystem::create_directories(dir_);
  }
  const std::filesystem::path& dir() const { return dir_; }

  void put(const std::string& key,
           std::span<const std::uint8_t> blob) override {
    const auto path = path_of(key);
    const auto tmp = path.string() + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      PARFW_CHECK_MSG(out.good(), "cannot open " << tmp);
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
      PARFW_CHECK_MSG(out.good(), "checkpoint write failed: " << tmp);
    }
    std::filesystem::rename(tmp, path);  // atomic replace
  }
  std::optional<std::vector<std::uint8_t>> get(
      const std::string& key) const override {
    std::ifstream in(path_of(key), std::ios::binary | std::ios::ate);
    if (!in.good()) return std::nullopt;
    const auto size = static_cast<std::size_t>(in.tellg());
    std::vector<std::uint8_t> blob(size);
    in.seekg(0);
    in.read(reinterpret_cast<char*>(blob.data()),
            static_cast<std::streamsize>(size));
    PARFW_CHECK_MSG(in.good(), "checkpoint read failed: " << key);
    return blob;
  }
  void erase(const std::string& key) override {
    std::error_code ec;
    std::filesystem::remove(path_of(key), ec);
  }
  std::vector<std::string> keys() const override {
    std::vector<std::string> out;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      if (!e.is_regular_file()) continue;
      const auto name = e.path().filename().string();
      if (name.ends_with(".ckpt")) out.push_back(name.substr(0, name.size() - 5));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  bool get_ranges(const std::string& key, std::span<const ByteRange> ranges,
                  std::uint8_t* out) const override {
    // One open, one seek+read per range — the tile-fetch fast path.
    std::ifstream in(path_of(key), std::ios::binary | std::ios::ate);
    if (!in.good()) return false;
    const auto size = static_cast<std::uint64_t>(in.tellg());
    for (const ByteRange& r : ranges) {
      PARFW_CHECK_MSG(r.offset + r.length <= size,
                      "range [" << r.offset << ", +" << r.length
                                << ") past end of blob '" << key << "' ("
                                << size << " bytes)");
      in.seekg(static_cast<std::streamoff>(r.offset));
      in.read(reinterpret_cast<char*>(out),
              static_cast<std::streamsize>(r.length));
      PARFW_CHECK_MSG(in.good(), "ranged checkpoint read failed: " << key);
      out += r.length;
    }
    return true;
  }

 private:
  std::filesystem::path path_of(const std::string& key) const {
    // Keys are generated by this library ([A-Za-z0-9._-]); refuse anything
    // that could escape the directory.
    PARFW_CHECK_MSG(key.find('/') == std::string::npos &&
                        key.find("..") == std::string::npos && !key.empty(),
                    "bad checkpoint key: " << key);
    return dir_ / (key + ".ckpt");
  }

  std::filesystem::path dir_;
};

/// Resilience knobs carried by the solver options (one struct so the
/// front door can thread them through to both the checkpoint layer and
/// the runtime's reliability envelope).
struct ResilienceOptions {
  /// Snapshot every N pivot iterations at coordinated cuts (0 = never).
  std::size_t checkpoint_every = 0;
  /// Where snapshots go / come from. nullptr disables checkpointing AND
  /// restart (the supervision loop then restarts failed runs from
  /// scratch). Not owned; must outlive the run.
  CheckpointStore* store = nullptr;
  /// Per-message retransmission budget of the runtime envelope.
  int max_retries = 6;
  /// Initial retransmission timeout, seconds (exponential backoff, 8x cap).
  double send_timeout = 0.01;
  /// Supervision loop: give up after this many world restarts.
  int max_restarts = 3;
};

}  // namespace parfw
