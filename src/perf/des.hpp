// Discrete-event simulator for skeleton programs (DESIGN.md §1).
//
// Replays the per-rank op lists from schedule.hpp over a modelled
// cluster:
//   * each rank has a virtual clock;
//   * ranks sharing a GPU serialise their compute ops on it;
//   * internode messages serialise on the source node's NIC egress and
//     the destination node's NIC ingress at nic_bw, plus wire latency;
//   * intranode messages run at intranode_bw without touching a NIC;
//   * receives block until the matching send's payload has arrived
//     (matching by (src, dst, tag), FIFO within a key).
//
// Ranks are advanced in virtual-time order (a min-heap on rank clocks),
// so resource contention resolves in the order it would physically occur.
#pragma once

#include <vector>

#include "perf/machine.hpp"
#include "perf/schedule.hpp"
#include "sched/trace.hpp"

namespace parfw::perf {

struct SimStats {
  double makespan = 0.0;          ///< latest rank finish time, s
  double total_comp_seconds = 0;  ///< Σ comp durations (for utilisation)
  double internode_bytes = 0;
  double max_nic_bytes = 0;       ///< max per-node NIC bytes (in + out)
  std::size_t ops_executed = 0;
};

/// Run the simulation. node_of[w] = node of world rank w; ranks_per_gpu
/// and all rates come from the machine config. When `trace` is set every
/// executed op is recorded on the VIRTUAL timeline (compute ops as
/// durations, sends as instants), labelled with the originating schedule
/// op's name where the program carries one — directly comparable to the
/// trace a real run of the same schedule emits.
SimStats simulate(const std::vector<RankProgram>& programs,
                  const std::vector<int>& node_of, const MachineConfig& m,
                  sched::TraceSink* trace = nullptr);

}  // namespace parfw::perf
