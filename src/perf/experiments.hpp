// Shared experiment drivers for the figure-reproduction benches.
//
// Each paper legend (Baseline / Pipelined / +Reordering / +Async /
// Offload, §5.1.2) maps to a (schedule variant, placement) pair; this
// module builds the grid for a node count, runs the DES, and converts the
// makespan into the paper's metrics (PFLOP/s, effective bandwidth).
#pragma once

#include <string>
#include <vector>

#include "dist/grid.hpp"
#include "perf/cost_model.hpp"
#include "perf/des.hpp"

namespace parfw::perf {

/// The paper's five plot legends (§5.1.2).
struct Legend {
  std::string name;
  dist::Variant variant;
  bool reordered;  ///< tiled placement (§3.4) vs naive row-major
};
std::vector<Legend> paper_legends();

/// (a, b) with a*b == x and a <= b, a as large as possible.
std::pair<int, int> balanced_factors(int x);

/// Build the process grid + node map for `nodes` Summit nodes.
/// reordered=true gives the Figure 1 placement (square node grid, square
/// intranode grid); false gives the naive contiguous row-major packing.
struct GridSetup {
  dist::GridSpec grid;
  std::vector<int> node_of;
};
GridSetup make_grid(const MachineConfig& m, int nodes, bool reordered);

/// As above but with every placement parameter explicit (Figure 3 sweep).
GridSetup make_grid_explicit(int kr, int kc, int qr, int qc, bool reordered);

/// One simulated FW run and its derived metrics.
struct RunPoint {
  double seconds = 0;
  double pflops = 0;        ///< 2n³ / t / 1e15
  double frac_peak = 0;     ///< vs nodes · 6 GPUs · srgemm_peak
  double eff_bw = 0;        ///< §5.1.3 effective bandwidth, bytes/s
  double internode_bytes = 0;
  double max_nic_bytes = 0;
};

/// `trace`, when set, receives the DES's virtual-timeline events
/// (see perf::simulate).
RunPoint simulate_fw(const MachineConfig& m, const Legend& legend, int nodes,
                     double n, double b, sched::TraceSink* trace = nullptr);

/// Figure 3 helper: simulate one explicit placement; returns eff. bw.
/// comm_only zeroes compute (the Figure 3 measurement regime).
RunPoint simulate_fw_placement(const MachineConfig& m, dist::Variant variant,
                               const GridSetup& setup, int nodes, double n,
                               double b, bool comm_only = false,
                               sched::TraceSink* trace = nullptr);

}  // namespace parfw::perf
