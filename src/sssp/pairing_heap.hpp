// Pairing heap with decrease-key — the priority queue behind the
// decrease-key Dijkstra variant (paper §6 discusses Dijkstra with a
// Fibonacci heap inside Johnson's algorithm; pairing heaps match its
// practical performance with far simpler invariants).
//
// Intrusive-by-index: nodes are identified by a dense id in [0, n), so
// the SSSP caller indexes directly by vertex. O(1) insert/meld/
// decrease-key (amortised o(log n)), O(log n) amortised pop.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace parfw::sssp {

class PairingHeap {
  static constexpr std::int32_t kNil = -1;

 public:
  explicit PairingHeap(std::size_t n)
      : key_(n, std::numeric_limits<double>::infinity()),
        child_(n, kNil), sibling_(n, kNil), prev_(n, kNil),
        in_heap_(n, false) {}

  bool empty() const { return root_ == kNil; }
  bool contains(std::size_t id) const { return in_heap_[id]; }
  double key(std::size_t id) const { return key_[id]; }
  std::size_t top() const {
    PARFW_DCHECK(root_ != kNil);
    return static_cast<std::size_t>(root_);
  }

  void push(std::size_t id, double key) {
    PARFW_CHECK_MSG(!in_heap_[id], "push of an id already in the heap");
    key_[id] = key;
    child_[id] = sibling_[id] = prev_[id] = kNil;
    in_heap_[id] = true;
    root_ = root_ == kNil ? static_cast<std::int32_t>(id)
                          : meld(root_, static_cast<std::int32_t>(id));
  }

  /// Lower id's key (no-op if new_key is not smaller).
  void decrease_key(std::size_t id, double new_key) {
    PARFW_CHECK_MSG(in_heap_[id], "decrease_key of an id not in the heap");
    if (new_key >= key_[id]) return;
    key_[id] = new_key;
    const std::int32_t node = static_cast<std::int32_t>(id);
    if (node == root_) return;
    cut(node);
    root_ = meld(root_, node);
  }

  std::size_t pop() {
    PARFW_CHECK_MSG(root_ != kNil, "pop from empty heap");
    const std::int32_t old = root_;
    in_heap_[static_cast<std::size_t>(old)] = false;
    root_ = two_pass_merge(child_[old]);
    if (root_ != kNil) prev_[root_] = kNil;
    child_[old] = sibling_[old] = prev_[old] = kNil;
    return static_cast<std::size_t>(old);
  }

 private:
  /// Detach `node` from its parent/sibling chain.
  void cut(std::int32_t node) {
    const std::int32_t p = prev_[node];
    PARFW_DCHECK(p != kNil);
    if (child_[p] == node)
      child_[p] = sibling_[node];
    else
      sibling_[p] = sibling_[node];
    if (sibling_[node] != kNil) prev_[sibling_[node]] = p;
    sibling_[node] = kNil;
    prev_[node] = kNil;
  }

  std::int32_t meld(std::int32_t a, std::int32_t b) {
    if (a == kNil) return b;
    if (b == kNil) return a;
    if (key_[static_cast<std::size_t>(b)] < key_[static_cast<std::size_t>(a)])
      std::swap(a, b);
    // b becomes a's first child.
    sibling_[b] = child_[a];
    if (child_[a] != kNil) prev_[child_[a]] = b;
    child_[a] = b;
    prev_[b] = a;
    return a;
  }

  std::int32_t two_pass_merge(std::int32_t first) {
    if (first == kNil || sibling_[first] == kNil) return first;
    // Pass 1: meld pairs left to right; pass 2: meld results right to left.
    std::vector<std::int32_t> pairs;
    std::int32_t cur = first;
    while (cur != kNil) {
      std::int32_t a = cur;
      std::int32_t b = sibling_[a];
      cur = b == kNil ? kNil : sibling_[b];
      sibling_[a] = kNil;
      if (b != kNil) sibling_[b] = kNil;
      pairs.push_back(meld(a, b));
    }
    std::int32_t result = pairs.back();
    for (std::size_t i = pairs.size() - 1; i-- > 0;)
      result = meld(pairs[i], result);
    return result;
  }

  std::vector<double> key_;
  std::vector<std::int32_t> child_, sibling_, prev_;
  std::vector<bool> in_heap_;
  std::int32_t root_ = kNil;
};

}  // namespace parfw::sssp
