// Phase breakdown — per-phase time attribution, measured vs modelled.
//
// The paper attributes every figure to phases (diagonal closure, panel
// updates, outer update, the two panel broadcasts) but never prints the
// breakdown itself; this harness regenerates it as a companion figure.
// For each ParallelFw variant it runs BOTH interpreters of the same
// schedule IR — the data-carrying distributed runtime on the in-process
// mpisim substrate, and the DES costing the Summit machine model — and
// tabulates each phase's share of total phase time side by side
// (telemetry/reconcile.hpp). Wire bytes must agree EXACTLY between the
// two interpreters for every variant; the harness exits non-zero when
// they do not.
//
// Expected shape: at this tiny size the in-GPU variants sit in the
// paper's bandwidth-bound regime (the broadcasts dominate both
// columns); the offload variant is compute-dominated because every
// outer update runs through the host staging path. "Overlap hides the
// copies" becomes a number instead of an eyeballed Chrome trace.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "dist/block_cyclic.hpp"
#include "dist/driver.hpp"
#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "fig_common.hpp"
#include "perf/des.hpp"
#include "perf/schedule.hpp"
#include "telemetry/reconcile.hpp"
#include "util/table.hpp"

using namespace parfw;

namespace {

struct VariantBreakdown {
  dist::Variant variant;
  telemetry::ReconcileReport report;
};

VariantBreakdown run_variant(dist::Variant variant, std::size_t n,
                             std::size_t b, int pr, int pc) {
  using S = MinPlus<float>;
  const auto grid = dist::GridSpec::row_major(pr, pc);
  const int ranks_per_node = std::max(1, grid.size() / 2);

  sched::StatsTraceSink measured;
  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  opt.diag = DiagStrategy::kLogSquaring;  // match the DES costing
  opt.trace = &measured;
  if (variant == dist::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }

  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);
  ropt.trace = &measured;

  DenseEntryGen<float> gen(7, 0.85, 1.0f, 90.0f, /*integral=*/true);
  const mpi::TrafficStats full = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        world.barrier();
        dist::parallel_fw<S>(world, local, opt);
      },
      ropt);
  mpi::RuntimeOptions sropt;
  sropt.node_model = ropt.node_model;
  const mpi::TrafficStats split_only = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) { (void)dist::make_row_col_comms(world, grid); },
      sropt);

  perf::FwProblem prob;
  prob.variant = variant;
  prob.n = static_cast<double>(n);
  prob.b = static_cast<double>(b);
  prob.offload_mx = static_cast<double>(2 * b);
  std::vector<int> node_of(static_cast<std::size_t>(grid.size()));
  for (int w = 0; w < grid.size(); ++w)
    node_of[static_cast<std::size_t>(w)] = ropt.node_model.node(w);
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const perf::BuiltProgram built =
      perf::build_fw_program(m, prob, grid, node_of);
  sched::StatsTraceSink modelled;
  (void)perf::simulate(built.programs, built.node_of, m, &modelled);
  const perf::WireTotals wire =
      perf::program_traffic(built.programs, built.node_of);

  return {variant,
          telemetry::reconcile(
              measured.table(), modelled.table(),
              static_cast<std::int64_t>(full.bytes_total -
                                        split_only.bytes_total),
              wire.bytes_total)};
}

std::string pct(double share) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * share);
  return buf;
}

}  // namespace

int main() {
  bench::header(
      "Phase breakdown: per-phase time share, measured vs modelled",
      "companion to Figs. 3-9: both interpreters of one schedule IR.\n"
      "'meas' = distributed runtime on the mpisim substrate (this host);\n"
      "'model' = DES on the Summit machine model. Wire bytes must match\n"
      "exactly; time shares differ where the substrates genuinely do.");

  const std::size_t n = 96, b = 8;
  const int pr = 2, pc = 2;
  std::printf("n=%zu, block=%zu, %dx%d grid\n\n", n, b, pr, pc);

  std::vector<VariantBreakdown> runs;
  for (dist::Variant v :
       {dist::Variant::kBaseline, dist::Variant::kPipelined,
        dist::Variant::kAsync, dist::Variant::kOffload})
    runs.push_back(run_variant(v, n, b, pr, pc));

  // Union of phase names over all variants (offload adds none at the
  // phase level; comm phases appear everywhere).
  std::vector<std::string> phase_names;
  for (const auto& r : runs)
    for (const auto& p : r.report.phases)
      if (std::find(phase_names.begin(), phase_names.end(), p.phase) ==
          phase_names.end())
        phase_names.push_back(p.phase);
  std::sort(phase_names.begin(), phase_names.end());

  std::vector<std::string> cols{"phase"};
  for (const auto& r : runs) {
    cols.push_back(std::string(dist::variant_name(r.variant)) + " meas");
    cols.push_back(std::string(dist::variant_name(r.variant)) + " model");
  }
  Table t(cols);
  for (const std::string& name : phase_names) {
    std::vector<std::string> row{name};
    for (const auto& r : runs) {
      const auto it =
          std::find_if(r.report.phases.begin(), r.report.phases.end(),
                       [&](const telemetry::PhaseDelta& p) {
                         return p.phase == name;
                       });
      if (it == r.report.phases.end()) {
        row.push_back("-");
        row.push_back("-");
      } else {
        row.push_back(pct(it->measured_share));
        row.push_back(pct(it->modelled_share));
      }
    }
    t.add_row(row);
  }
  std::printf("%s", t.str().c_str());

  bool ok = true;
  std::printf("\nwire bytes (measured == modelled required):\n");
  for (const auto& r : runs) {
    const bool match = r.report.bytes_match();
    ok = ok && match && r.report.exact_mismatches().empty();
    std::printf("  %-9s %lld vs %lld %s\n", dist::variant_name(r.variant),
                static_cast<long long>(r.report.measured_wire_bytes),
                static_cast<long long>(r.report.modelled_wire_bytes),
                match ? "OK" : "MISMATCH");
  }

  bench::footer(
      "expect: broadcasts dominate the in-GPU variants at this tiny,\n"
      "bandwidth-bound size (the paper's small-n regime); OuterUpdate\n"
      "dominates offload (host staging); every wire-byte row reads OK.");
  return ok ? 0 : 1;
}
