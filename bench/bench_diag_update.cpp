// §4.2 ablation — DiagUpdate strategies.
//
// Paper: DiagUpdate is the semiring matrix "inversion"; expressing it as
// ⌈log₂ b⌉ SRGEMM squarings (Eq. 4) raises the flop count by log b but
// runs at SRGEMM rate, which wins on a device whose GEMM rate is far
// above its scalar rate. This bench measures both strategies for real on
// the CPU (where tiled SRGEMM vs scalar FW plays the role of GPU vs CPU)
// and prints the Summit-model crossover.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/diag_update.hpp"
#include "graph/graph.hpp"
#include "perf/machine.hpp"

namespace {

using S = parfw::MinPlus<float>;

parfw::Matrix<float> block(std::size_t b, std::uint64_t seed) {
  parfw::DenseEntryGen<float> gen(seed, 1.0, 1.0f, 50.0f);
  parfw::Matrix<float> m(b, b);
  gen.fill_block(0, 0, m.view());
  return m;
}

void BM_DiagClassic(benchmark::State& state) {
  const std::size_t b = static_cast<std::size_t>(state.range(0));
  const auto src = block(b, 1);
  parfw::Matrix<float> work(b, b);
  for (auto _ : state) {
    work.view().copy_from(src.view());
    parfw::diag_update<S>(work.view(), parfw::DiagStrategy::kClassic);
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::diag_update_flops(b, parfw::DiagStrategy::kClassic) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiagClassic)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_DiagLogSquaring(benchmark::State& state) {
  const std::size_t b = static_cast<std::size_t>(state.range(0));
  const auto src = block(b, 1);
  parfw::Matrix<float> work(b, b), scratch(b, b);
  for (auto _ : state) {
    work.view().copy_from(src.view());
    parfw::diag_update<S>(work.view(), parfw::DiagStrategy::kLogSquaring,
                          scratch.view());
    benchmark::DoNotOptimize(work.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::diag_update_flops(b, parfw::DiagStrategy::kLogSquaring) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DiagLogSquaring)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "== DiagUpdate ablation (paper §4.2 / Eq. 4) ==\n"
      "Log-squaring does ceil(log2 b) SRGEMM squarings instead of scalar\n"
      "FW: log(b)-times more flops, but every flop at GEMM rate.\n"
      "On Summit (model): scalar FW on the host runs at %.0f GF/s while\n"
      "SRGEMM on the GPU runs at %.0f GF/s, so log-squaring wins whenever\n"
      "log2(b) < %.0f — i.e. always in practice. Below: both strategies\n"
      "measured on this host, where tiled SRGEMM vs scalar FW shows the\n"
      "same effect (compare TIME, not GFLOP/s — log-squaring does\n"
      "log2(b) x the flops).\n\n",
      parfw::perf::MachineConfig::summit().scalar_flops / 1e9,
      parfw::perf::MachineConfig::summit().srgemm_flops / 1e9,
      parfw::perf::MachineConfig::summit().srgemm_flops /
          parfw::perf::MachineConfig::summit().scalar_flops);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
