# Empty dependencies file for bench_fig5_oog_blocksize.
# This may be replaced when dependencies are built.
