// Metric exporters — JSON snapshot, Prometheus text format, human table.
//
// All three render the same Registry::snapshot(), so every consumer (the
// PARFW_METRICS env knob, trace_dump --mode metrics, the bench harness,
// CI artifact upload) goes through one export path. Output is
// deterministic for a deterministic registry: rows are sorted by
// (name, labels) and numbers are printed with a fixed format — the
// golden-file tests pin the exact bytes.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/metrics.hpp"

namespace parfw::telemetry {

/// JSON document: {"metrics":[{"name":...,"labels":{...},"type":...,...}]}.
/// Counters print as integers; histograms as
/// {count,sum,min,max,p50,p95,p99}.
void to_json(const Registry& r, std::ostream& os);

/// Prometheus text exposition format. Metric names are sanitised
/// (non-alphanumerics -> '_') and prefixed "parfw_"; histograms are
/// emitted as summaries (quantile series plus _sum/_count).
void to_prometheus(const Registry& r, std::ostream& os);

/// Column-aligned human table (util/table), one row per metric.
std::string to_table(const Registry& r);

/// Export formats selectable via the PARFW_METRICS env knob.
enum class ExportFormat : std::uint8_t { kNone, kJson, kProm, kTable };

/// Parse PARFW_METRICS (json|prom|table; any other non-empty value means
/// "enabled, table format"); kNone when unset/empty.
ExportFormat env_format();

/// Render in the given format (kNone writes nothing).
void dump(const Registry& r, ExportFormat f, std::ostream& os);

/// Convenience for tools/benches: when PARFW_METRICS is set, dump the
/// global registry to `os` in the requested format. Returns true if
/// anything was written.
bool dump_env(std::ostream& os);

}  // namespace parfw::telemetry
