// parfw::solve — the ONE front door over every execution strategy.
//
// core/apsp.hpp's apsp() covers the single-node strategies but cannot see
// the distributed engine (core must not depend on the runtime); this
// header closes the loop: solve() dispatches kDistributed to the dist
// driver (materialising the GridSpec from ApspOptions::dist and threading
// the shared SolveCommon + ResilienceOptions through) and everything else
// to apsp(). Examples/tools/tests call this and pick a strategy with an
// enum instead of choosing between two entry points with different shapes.
//
// DistStrategy::variant == kAuto additionally closes the CAUSAL loop:
// before running, solve() resolves the whole schedule configuration —
// variant, placement, block size, offload depth — through the autotuner
// (src/tune/), or through the PARFW_TUNE_CACHE manifest when that env var
// names a file holding a winner for this exact workload. The resolved
// schedule replaces the DistStrategy shape knobs and block_size; the data
// path below it is untouched, so an auto run is bit-identical to an
// explicit run of the winning configuration.
#pragma once

#include <cstdlib>
#include <fstream>

#include "core/apsp.hpp"
#include "dist/driver.hpp"
#include "telemetry/metrics.hpp"
#include "tune/manifest.hpp"
#include "tune/tune.hpp"
#include "util/timer.hpp"

namespace parfw {

/// Materialise the process grid described by a DistStrategy.
inline dist::GridSpec grid_of(const DistStrategy& ds) {
  if (!ds.tiled) return dist::GridSpec::row_major(ds.grid_rows, ds.grid_cols);
  PARFW_CHECK_MSG(ds.node_rows > 0 && ds.node_cols > 0 &&
                      ds.grid_rows % ds.node_rows == 0 &&
                      ds.grid_cols % ds.node_cols == 0,
                  "tiled placement: node grid must divide the process grid");
  return dist::GridSpec::tiled(ds.node_rows, ds.node_cols,
                               ds.grid_rows / ds.node_rows,
                               ds.grid_cols / ds.node_cols);
}

/// The tuner workload a kAuto DistStrategy describes for an n-vertex
/// solve: the grid shape only pins the rank count, the placement itself
/// is part of the search space.
inline tune::Workload auto_workload(const DistStrategy& ds, std::size_t n,
                                    std::size_t word_bytes,
                                    bool track_paths = false) {
  tune::Workload w;
  w.n = n;
  w.ranks = ds.grid_rows * ds.grid_cols;
  w.ranks_per_node =
      ds.tiled ? (ds.grid_rows / ds.node_rows) * (ds.grid_cols / ds.node_cols)
               : ds.ranks_per_node;
  w.word_bytes = word_bytes;
  w.track_paths = track_paths;
  return w;
}

/// Resolve a kAuto strategy to the concrete winning schedule: consult the
/// PARFW_TUNE_CACHE manifest first (exact workload + stall_weight key),
/// otherwise run the tuner — and, when the env var is set, persist the
/// fresh winner back so the next run is a cache hit. Publishes the tune.*
/// series into `metrics` when set.
inline tune::ManifestEntry resolve_auto(const DistStrategy& ds, std::size_t n,
                                        std::size_t word_bytes,
                                        bool track_paths = false) {
  const tune::Workload w = auto_workload(ds, n, word_bytes, track_paths);
  const char* cache_path = std::getenv("PARFW_TUNE_CACHE");

  tune::Manifest manifest;
  bool have_file = false;
  if (cache_path != nullptr && *cache_path != '\0') {
    if (std::ifstream probe(cache_path); probe.good()) {
      std::string err;
      // A present-but-malformed cache is a hard error: silently
      // re-tuning would leave the corrupt file masking every future run.
      PARFW_CHECK_MSG(tune::read_manifest_file(cache_path, &manifest, &err),
                      "PARFW_TUNE_CACHE: " << err);
      have_file = true;
    }
  }

  if (const tune::ManifestEntry* hit =
          manifest.find(w, ds.tune_stall_weight)) {
    if (ds.metrics != nullptr) {
      ds.metrics->counter("tune.manifest_hits").add(1);
      ds.metrics->gauge("tune.predicted_makespan")
          .set(hit->predicted_makespan);
      ds.metrics->gauge("tune.default_makespan").set(hit->default_makespan);
      ds.metrics->gauge("tune.stall_share", "schedule=default")
          .set(hit->default_stall_share);
      ds.metrics->gauge("tune.stall_share", "schedule=tuned")
          .set(hit->predicted_stall_share);
    }
    return *hit;
  }

  tune::TuneOptions topt;
  topt.stall_weight = ds.tune_stall_weight;
  topt.metrics = ds.metrics;
  tune::Tuner tuner(w, topt);
  const tune::TuneReport report = tuner.run();
  const tune::ManifestEntry entry =
      tune::to_entry(report, ds.tune_stall_weight);

  if (cache_path != nullptr && *cache_path != '\0') {
    manifest.put(entry);
    std::string err;
    PARFW_CHECK_MSG(tune::write_manifest_file(cache_path, manifest, &err),
                    "PARFW_TUNE_CACHE: " << err);
    (void)have_file;
  }
  return entry;
}

/// The concrete DistStrategy a resolved winner prescribes (metrics,
/// resilience and the objective weight carry over verbatim).
inline DistStrategy apply_winner(const DistStrategy& ds,
                                 const tune::Candidate& winner) {
  DistStrategy out = ds;
  out.variant = winner.variant;
  out.grid_rows = winner.placement.pr;
  out.grid_cols = winner.placement.pc;
  out.tiled = winner.placement.tiled;
  out.node_rows = winner.placement.tiled ? winner.placement.kr : 1;
  out.node_cols = winner.placement.tiled ? winner.placement.kc : 1;
  return out;
}

/// Solve APSP on a graph over semiring S with any strategy, including the
/// distributed ones. Back-compat: apsp() and dist::run_parallel_fw keep
/// working; this is sugar gluing them behind one option struct.
template <typename S>
ApspResult<typename S::value_type> solve(const Graph& g,
                                         const ApspOptions& opt = {}) {
  if (opt.algorithm != ApspAlgorithm::kDistributed) return apsp<S>(g, opt);

  using T = typename S::value_type;
  ApspOptions resolved = opt;
  if (opt.dist.variant == sched::Variant::kAuto) {
    // Paths runs tune against the paths schedule (pred broadcasts,
    // classic diagonal, pred offload transfers) — a value-schedule winner
    // is not assumed to carry over.
    const tune::ManifestEntry entry = resolve_auto(
        opt.dist, static_cast<std::size_t>(g.num_vertices()), sizeof(T),
        opt.track_paths);
    resolved.dist = apply_winner(opt.dist, entry.winner);
    resolved.block_size = entry.winner.block;
    resolved.dist.oog_streams = static_cast<std::size_t>(entry.winner.streams);
  }

  const DistStrategy& ds = resolved.dist;
  const dist::GridSpec grid = grid_of(ds);
  const int rpn = ds.tiled ? grid.qr() * grid.qc() : ds.ranks_per_node;

  dist::DistFwOptions dopt;
  static_cast<SolveCommon&>(dopt) = resolved;  // block_size / diag, verbatim
  dopt.variant = ds.variant;
  dopt.resilience = ds.resilience;
  dopt.oog.num_streams = ds.oog_streams;
  dopt.metrics = ds.metrics;
  dopt.trace = ds.trace;
  dopt.schedule_observer = ds.schedule_observer;
  dopt.publish_store = ds.publish_store;

  // Environment straggler injection (the live monitor's reference fault,
  // check.sh --monitor): PARFW_SLOW_RANK=R [PARFW_SLOW_OP_MS=M] makes
  // rank R sleep M ms (default 5) inside every schedule op it executes.
  // Timing-only — results stay bit-identical.
  if (const char* sr = std::getenv("PARFW_SLOW_RANK");
      sr != nullptr && *sr != '\0') {
    dopt.faults.slow_rank = std::atoi(sr);
    const char* ms = std::getenv("PARFW_SLOW_OP_MS");
    dopt.faults.slow_op_seconds =
        (ms != nullptr && *ms != '\0' ? std::atof(ms) : 5.0) * 1e-3;
  }

  Timer wall;
  ApspResult<T> result = dist::run_parallel_fw<S>(
      g, grid, rpn, dopt, resolved.track_paths);
  if (ds.metrics != nullptr && opt.dist.variant == sched::Variant::kAuto) {
    // Predicted is DES-virtual Summit seconds, achieved is mpisim wall
    // seconds on this host — the pair reports the loop closing, the DES
    // band test (perf_test) owns the accuracy claim.
    ds.metrics->gauge("tune.achieved_seconds").set(wall.seconds());
  }
  if (resolved.reject_negative_cycles) {
    PARFW_CHECK_MSG(!has_negative_cycle<S>(result.dist.view()),
                    "input graph contains a negative cycle");
  }
  return result;
}

}  // namespace parfw
