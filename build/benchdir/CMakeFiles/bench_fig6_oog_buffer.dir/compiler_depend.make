# Empty compiler generated dependencies file for bench_fig6_oog_buffer.
# This may be replaced when dependencies are built.
