// Weighted directed graph container (edge list + CSR) and conversion to
// the dense distance matrix Floyd-Warshall operates on (paper §2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "semiring/semiring.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace parfw {

using vertex_t = std::int64_t;

struct Edge {
  vertex_t src = 0;
  vertex_t dst = 0;
  double weight = 0.0;
};

/// Directed weighted graph. Mutable edge list with an on-demand CSR index
/// for the SSSP algorithms; duplicate edges keep the minimum weight when
/// converted to a distance matrix (min-plus semantics).
class Graph {
 public:
  Graph() = default;
  explicit Graph(vertex_t n) : n_(n) {}
  Graph(vertex_t n, std::vector<Edge> edges);

  vertex_t num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Append edge; vertices must be in [0, n).
  void add_edge(vertex_t src, vertex_t dst, double w);

  /// Append both (u,v,w) and (v,u,w).
  void add_undirected_edge(vertex_t u, vertex_t v, double w);

  /// CSR adjacency built lazily; invalidated by add_edge.
  struct Csr {
    std::vector<std::size_t> offsets;  // n+1
    std::vector<vertex_t> targets;     // m
    std::vector<double> weights;       // m
  };
  const Csr& csr() const;

  /// Dense distance-matrix initialisation (Algorithm 1's first step):
  /// Dist[i][j] = w(i,j) if (i,j) in E else semiring zero; the diagonal is
  /// the semiring one unless a better self-loop exists.
  template <typename S>
  Matrix<typename S::value_type> distance_matrix() const {
    using T = typename S::value_type;
    Matrix<T> d(static_cast<std::size_t>(n_), static_cast<std::size_t>(n_),
                S::zero());
    for (vertex_t v = 0; v < n_; ++v) d(v, v) = S::one();
    for (const Edge& e : edges_) {
      T& slot = d(e.src, e.dst);
      slot = S::add(slot, static_cast<T>(e.weight));
    }
    return d;
  }

 private:
  vertex_t n_ = 0;
  std::vector<Edge> edges_;
  mutable Csr csr_;
  mutable bool csr_valid_ = false;
};

/// Deterministic per-entry weight function: lets every MPI rank (and the
/// sequential oracle) materialise exactly the same dense matrix without
/// any communication. Entry (i,j) depends only on (seed, i, j).
template <typename T>
class DenseEntryGen {
 public:
  /// density in (0,1]: probability an off-diagonal entry is a finite edge.
  /// Weights are uniform in [w_min, w_max). With `integral`, weights are
  /// floored to whole numbers — path sums are then exact in float/double,
  /// so results of differently-scheduled solvers can be compared bitwise
  /// (the validation mode the tests use).
  DenseEntryGen(std::uint64_t seed, double density = 1.0, T w_min = T{1},
                T w_max = T{100}, bool integral = false)
      : seed_(seed), density_(density), w_min_(w_min), w_max_(w_max),
        integral_(integral) {}

  T operator()(vertex_t i, vertex_t j) const {
    if (i == j) return S_one();
    std::uint64_t h = seed_;
    h ^= 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(i) * 0xff51afd7ed558ccdull;
    h ^= 0x94d049bb133111ebull + static_cast<std::uint64_t>(j) * 0xc4ceb9fe1a85ec53ull;
    std::uint64_t r1 = splitmix64(h);
    const double u = static_cast<double>(r1 >> 11) * 0x1.0p-53;
    if (u >= density_) return value_traits<T>::infinity();
    std::uint64_t r2 = splitmix64(h);
    const double w = static_cast<double>(r2 >> 11) * 0x1.0p-53;
    double value = static_cast<double>(w_min_) +
                   w * (static_cast<double>(w_max_) -
                        static_cast<double>(w_min_));
    if (integral_) value = static_cast<double>(static_cast<long long>(value));
    return static_cast<T>(value);
  }

  /// Materialise a (rows x cols) block whose top-left corner is global
  /// index (r0, c0) — the building block of distributed generation.
  void fill_block(vertex_t r0, vertex_t c0, MatrixView<T> block) const {
    for (std::size_t i = 0; i < block.rows(); ++i)
      for (std::size_t j = 0; j < block.cols(); ++j)
        block(i, j) = (*this)(r0 + static_cast<vertex_t>(i),
                              c0 + static_cast<vertex_t>(j));
  }

  /// Materialise the full n x n matrix (the sequential oracle's input).
  Matrix<T> full(vertex_t n) const {
    Matrix<T> m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    fill_block(0, 0, m.view());
    return m;
  }

 private:
  static constexpr T S_one() { return T{0}; }
  std::uint64_t seed_;
  double density_;
  T w_min_, w_max_;
  bool integral_;
};

}  // namespace parfw
