// Figure 4 — Effect of the communication optimisations.
//
// Paper: 64 nodes, n from 26k to 524k; effective per-node bandwidth for
// Baseline / Pipelined / +Rank-Reordering / +Async. Findings: each
// optimisation raises effective bandwidth in the communication-bound
// regime; the fully optimised variant reaches ~4x the baseline; beyond
// ~120k vertices execution turns compute-bound and the variants converge.
#include <cstdio>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  bench::header(
      "Figure 4: effective bandwidth of the communication strategies (64 nodes)",
      "paper: vertices 26k..524k; ordering baseline < pipelined <\n"
      "+reordering < +async with up to ~4x between the extremes in the\n"
      "bandwidth-bound regime; compute-bound convergence past ~120k\n"
      "(their estimate; see EXPERIMENTS.md).");

  const MachineConfig m = MachineConfig::summit();
  const int nodes = 64;
  const double b = 768;
  const auto legends = paper_legends();  // first four are the comm variants
  bench::FigTrace trace;  // PARFW_TRACE=<file> records the first run

  Table t({"vertices", "baseline", "pipelined", "+reorder", "+async",
           "async/base"});
  double best_gain = 0;
  for (double n : bench::paper_vertex_sweep(26008, 524288)) {
    std::vector<double> bw;
    for (std::size_t i = 0; i < 4; ++i) {
      const RunPoint p = simulate_fw(m, legends[i], nodes, n, b, trace.sink());
      bw.push_back(p.eff_bw / 1e9);
    }
    const double gain = bw[3] / bw[0];
    best_gain = std::max(best_gain, gain);
    t.add_row({Table::num(n, 0), Table::num(bw[0], 2), Table::num(bw[1], 2),
               Table::num(bw[2], 2), Table::num(bw[3], 2),
               Table::num(gain, 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\ncompute-bound threshold (model): n ~= %.0f\n",
              compute_bound_threshold(m, nodes));
  std::printf("best +async / baseline effective-bandwidth gain: %.2fx "
              "(paper: ~4x)\n",
              best_gain);

  bench::footer(
      "expect: columns increase left to right at small n; the gain column\n"
      "is largest in the bandwidth-bound regime and shrinks toward 1 as n\n"
      "grows past the compute-bound threshold.");
  return 0;
}
