file(REMOVE_RECURSE
  "../bench/bench_srgemm_pack"
  "../bench/bench_srgemm_pack.pdb"
  "CMakeFiles/bench_srgemm_pack.dir/bench_srgemm_pack.cpp.o"
  "CMakeFiles/bench_srgemm_pack.dir/bench_srgemm_pack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srgemm_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
