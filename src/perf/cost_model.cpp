#include "perf/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace parfw::perf {

double fw_flops(double n) { return 2.0 * n * n * n; }

double model_compute_time(const MachineConfig& m, double n, int ranks) {
  return fw_flops(n) / (static_cast<double>(ranks) * m.rank_flops());
}

double model_fw_time(const MachineConfig& m, double n, double b,
                     const GridShape& g) {
  // t_w is the effective cost per word leaving a rank. With Q ranks per
  // node sharing one NIC, the per-rank share is nic_bw * (rank's NIC
  // fraction); equivalently the volume term scales by Q_r/P_r + Q_c/P_c
  // (§3.4.1). We model the bandwidth term at node granularity directly.
  const double t_comp = model_compute_time(m, n, g.ranks());
  const double t_lat =
      2.0 * (n / b) * m.wire_latency * std::ceil(std::log2(std::max(2, g.pr)));
  const double volume = model_node_volume(m, n, g);  // bytes per node
  const double t_bw = volume / m.nic_bw;
  return t_comp + t_lat + t_bw;
}

double model_node_volume(const MachineConfig& m, double n, const GridShape& g) {
  const double kr = std::max(1, g.kr());
  const double kc = std::max(1, g.kc());
  // Per node and per run, the row panels a node must receive span its
  // columns (n/K_c wide) in the (1 - 1/K_r) of iterations where the panel
  // row lives on another node; symmetrically for column panels. This is
  // the exact form of the paper's §3.4.1 bound n²(Q_r/P_r + Q_c/P_c),
  // which it approaches for large K_r, K_c.
  const double words =
      n * n * ((1.0 - 1.0 / kr) / kc + (1.0 - 1.0 / kc) / kr);
  return words * m.word_bytes;
}

double min_node_volume(const MachineConfig& m, double n, int nodes) {
  PARFW_CHECK(nodes >= 1);
  double best = -1.0;
  for (int kr = 1; kr <= nodes; ++kr) {
    if (nodes % kr != 0) continue;
    GridShape g;
    g.pr = kr;
    g.pc = nodes / kr;
    g.qr = g.qc = 1;
    const double v = model_node_volume(m, n, g);
    if (best < 0 || v < best) best = v;
  }
  return best;
}

double effective_bandwidth(const MachineConfig& m, double n, int nodes,
                           double t_fw) {
  // For a single node every transfer is intranode; the paper still reports
  // the volume over time (which is why the 1-node point exceeds the NIC
  // limit in Figure 3). We use the 2-node-equivalent volume there.
  double w_min = min_node_volume(m, n, nodes);
  if (nodes == 1) w_min = 2.0 * n * n * m.word_bytes;
  return w_min / t_fw;
}

double compute_bound_threshold(const MachineConfig& m, int nodes) {
  // Compute time scales as n³, NIC time as n²: equality at
  //   2n³/(P·f) = 2n²·word/(√K·nic_bw)  =>  n = P·f·word/(√K·nic_bw)
  const double ranks = static_cast<double>(nodes) * m.ranks_per_node();
  const double k_sqrt = std::sqrt(static_cast<double>(nodes));
  return ranks * m.rank_flops() * m.word_bytes / (k_sqrt * m.nic_bw);
}

double max_in_gpu_vertices(const MachineConfig& m, int nodes) {
  const double aggregate =
      static_cast<double>(nodes) * m.gpus_per_node * m.gpu_mem_bytes;
  return std::sqrt(aggregate * m.gpu_mem_usable_frac / m.word_bytes);
}

double max_in_host_vertices(const MachineConfig& m, int nodes) {
  const double aggregate = static_cast<double>(nodes) * m.host_mem_bytes;
  // Offload keeps one copy of the matrix plus O(b·n) working panels.
  return std::sqrt(aggregate * 0.8 / m.word_bytes);
}

double OogCost::total(int streams) const {
  if (streams <= 1) return t0 + t1 + t2;
  if (streams == 2) {
    // Overlap the best pair (§4.5: min over pairings of max{ti, tj+tk}).
    const double a = std::max(t0, t1 + t2);
    const double b = std::max(t1, t0 + t2);
    const double c = std::max(t2, t0 + t1);
    return std::min({a, b, c});
  }
  return std::max({t0, t1, t2});
}

OogCost model_oog_cost(const MachineConfig& m, double mm, double nn,
                       double kk) {
  OogCost c;
  c.t0 = 2.0 * mm * nn * kk / m.srgemm_flops;
  c.t1 = (mm * nn + (mm + nn) * kk) * m.word_bytes / m.hd_bw;
  c.t2 = 3.0 * mm * nn * m.word_bytes / m.dram_bw;
  return c;
}

double min_offload_block(const MachineConfig& m) {
  const double tf = 1.0 / m.srgemm_flops;
  const double thd = m.word_bytes / m.hd_bw;  // per word moved
  const double tm = m.word_bytes / m.dram_bw;
  return std::max(thd / (2.0 * tf), 3.0 * tm / (2.0 * tf));
}

double model_oog_rate(const MachineConfig& m, double n, double mx, double k,
                      int streams) {
  PARFW_CHECK(mx > 0 && k > 0 && n >= mx);
  // Whole-operation phase totals. The A_i/B_j panels are uploaded once
  // and reused across the chunk row/column (§4.4), so their volume is
  // amortised over all chunks rather than charged per chunk.
  const OogCost whole = model_oog_cost(m, n, n, k);
  const double steady = whole.total(streams);
  // Pipeline fill/drain: roughly one chunk's worth of the non-overlapped
  // phases, which is what penalises large chunks on small operands
  // (Figure 6's bottom-right corner).
  const double chunks = (n / mx) * (n / mx);
  const double fill =
      streams > 1 ? (whole.t0 + whole.t1 + whole.t2 - steady) / chunks : 0.0;
  const double time = steady + fill;
  return 2.0 * n * n * k / time;
}

}  // namespace parfw::perf
