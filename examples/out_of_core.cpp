// Out-of-core APSP: a distance matrix larger than accelerator memory
// (the paper's Me-ParallelFw / ooGSrGemm machinery, §4.3-4.4).
//
// The host matrix here is 16 MiB while the simulated device gets only
// 3 MiB — the same 5x ratio as the paper's 10 TB problem on 4 TB of
// aggregate GPU memory. The offload engine closes the matrix by cycling
// panels and result chunks through the device with a 3-stream pipeline.
#include <cstdio>

#include "core/floyd_warshall.hpp"
#include "devsim/device.hpp"
#include "graph/graph.hpp"
#include "offload/offload_fw.hpp"
#include "util/timer.hpp"

using namespace parfw;

int main() {
  const std::size_t n = 2048;  // 2048^2 floats = 16 MiB
  const std::size_t b = 128;
  DenseEntryGen<float> gen(/*seed=*/99, 1.0, 1.0f, 60.0f);
  auto dist = gen.full(static_cast<vertex_t>(n));
  const double host_mb = n * n * sizeof(float) / 1048576.0;

  dev::DeviceConfig dc;
  dc.memory_bytes = 6 << 20;  // 6 MiB "GPU" vs a 16 MiB problem
  dev::Device device(dc);
  std::printf("host matrix: %.0f MiB; device memory: %.0f MiB (%.1fx smaller)\n",
              host_mb, dc.memory_bytes / 1048576.0,
              host_mb * 1048576.0 / dc.memory_bytes);

  offload::OffloadFwOptions opt;
  opt.block_size = b;
  opt.oog.mx = opt.oog.nx = 256;
  opt.oog.num_streams = 3;
  opt.diag = DiagStrategy::kLogSquaring;

  Timer t;
  const auto stats = offload::offload_blocked_fw<MinPlus<float>>(
      device, dist.view(), opt);
  device.synchronize();
  const double secs = t.seconds();

  const auto c = device.counters();
  std::printf("closed in %.2f s over %zu block iterations\n", secs,
              stats.iterations);
  std::printf("device traffic: %.1f MiB h2d, %.1f MiB d2h, %llu kernels, "
              "peak residency %.2f MiB\n",
              c.bytes_h2d / 1048576.0, c.bytes_d2h / 1048576.0,
              static_cast<unsigned long long>(c.kernels_launched),
              c.peak_bytes_in_use / 1048576.0);
  std::printf("ooGSrGemm chunks processed: %zu\n", stats.oog_blocks);

  // Spot-validate a few entries against sequential FW on a sub-problem is
  // impractical at this size; instead verify the triangle inequality and
  // diagonal invariants on samples.
  Rng rng(5);
  std::size_t violations = 0;
  for (int s = 0; s < 100000; ++s) {
    const auto i = rng.next_below(n), j = rng.next_below(n),
               k = rng.next_below(n);
    if (dist(i, j) > dist(i, k) + dist(k, j) + 1e-3f) ++violations;
  }
  for (std::size_t v = 0; v < n; ++v)
    if (dist(v, v) != 0.0f) ++violations;
  std::printf("invariant check (100k sampled triangles + diagonal): %zu "
              "violations\n",
              violations);
  return violations == 0 ? 0 : 1;
}
