// slo — rolling-window SLO monitoring for the serving tier
// (DESIGN.md §4.13).
//
// Consumes the per-query breakdowns the QueryTracer measures and keeps
// the three things an operator actually pages on:
//   * rolling-window p50/p99 against configurable latency targets,
//   * error-budget burn rate — the fraction of recent queries over the
//     p99 target, divided by the budgeted violation fraction (burn > 1
//     means the budget is being consumed faster than provisioned),
//   * a bounded slow-query log holding the FULL stage breakdown of the
//     most recent over-threshold queries, so a tail regression arrives
//     with its own attribution attached instead of just a number.
//
// Single-threaded per rank, like the tracer that feeds it: the sharded
// tier runs one monitor per rank and aggregates via telemetry labels.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "serve/qtrace.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::serve {

struct SloReport;

struct SloConfig {
  double p50_target_s = 0.0;  ///< 0 = no p50 target
  double p99_target_s = 0.0;  ///< 0 = no p99 target (disables burn rate)
  /// Rolling window, in queries (count-based: the serve tier is batch
  /// driven, so a wall-clock window would alias on batch boundaries).
  std::size_t window = 4096;
  /// Queries slower than this land in the slow log; 0 derives it from
  /// p99_target_s (a query over target IS the interesting event).
  double slow_threshold_s = 0.0;
  std::size_t slow_log_capacity = 32;
  /// Budgeted violation fraction: burn_rate = violation share / budget.
  double budget = 0.01;
  /// Edge-triggered burn alert: on_burn_alert fires once when the burn
  /// rate crosses this threshold upward, and re-arms when it drops back
  /// under — so a sustained breach produces one alert, not one per query.
  /// The live monitor glues this to an incident dump. Requires a p99
  /// target (burn is undefined without one).
  double burn_alert_threshold = 1.0;
  std::function<void(const SloReport&)> on_burn_alert;

  double slow_threshold() const {
    return slow_threshold_s > 0.0 ? slow_threshold_s : p99_target_s;
  }
};

struct SloReport {
  std::uint64_t total = 0;         ///< queries recorded all-time
  std::size_t window_count = 0;    ///< queries in the rolling window
  double p50 = 0.0;                ///< window quantiles, seconds
  double p99 = 0.0;
  double p50_target = 0.0;
  double p99_target = 0.0;
  bool p50_ok = true;              ///< true when no target or under it
  bool p99_ok = true;
  std::uint64_t violations = 0;    ///< all-time queries over p99 target
  /// (window violation fraction) / budget; 0 without a p99 target.
  double burn_rate = 0.0;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig cfg = {});

  void record(const QueryStats& q);

  SloReport report() const;

  /// Most recent over-threshold queries, oldest first, bounded by
  /// slow_log_capacity.
  const std::deque<QueryStats>& slow_log() const { return slow_log_; }
  const SloConfig& config() const { return cfg_; }

  /// Publish serve.slo.{p50,p99,burn_rate,violations} gauges.
  void publish(telemetry::Registry& reg, const std::string& labels = "") const;

 private:
  SloConfig cfg_;
  std::uint64_t total_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<double> ring_;       ///< window of query totals
  std::size_t ring_next_ = 0;      ///< insertion cursor
  std::uint64_t window_violations_ = 0;
  std::vector<bool> ring_violated_;
  std::deque<QueryStats> slow_log_;
  bool burning_ = false;  ///< burn alert latch (edge triggering)
};

/// Human-readable SLO status line(s).
std::string format_slo_report(const SloReport& r);

/// Human-readable slow-query log with per-stage breakdowns.
std::string format_slow_log(const SloMonitor& m);

}  // namespace parfw::serve
