// A fixed-size work-stealing-free thread pool with a shared queue.
//
// Used as the execution engine behind the CPU SRGEMM kernels, the simulated
// accelerator worker, and the mpisim rank threads' helpers. The pool is
// deliberately simple: tasks are type-erased std::function<void()> pushed to
// a mutex-protected deque. For the kernel sizes this library runs (tiles of
// >= 64x64), enqueue overhead is negligible relative to task cost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace parfw {

/// Observability seam for ThreadPool. util sits at the bottom of the
/// library graph (telemetry links util), so the pool cannot call the
/// metrics registry directly — instead the telemetry layer implements
/// this interface (telemetry/pool_metrics.hpp) and installs it with
/// ThreadPool::set_observer. Methods are called outside the pool's lock
/// and from many threads concurrently; implementations must be
/// thread-safe and cheap. The observer must outlive the pool (or be
/// detached with set_observer(nullptr) first).
class PoolObserver {
 public:
  virtual ~PoolObserver() = default;
  /// Queue depth immediately after a push (submit) or pop (worker).
  virtual void on_queue_depth(std::size_t depth) = 0;
  /// Per-task latency: seconds spent queued, then seconds spent running.
  /// Inline-executed tasks (a 0-worker pool) report wait_seconds == 0.
  virtual void on_task(double wait_seconds, double run_seconds) = 0;
};

/// Fixed-size thread pool. Threads are created in the constructor and
/// joined in the destructor (RAII); submit() is thread-safe.
class ThreadPool {
 public:
  /// Create a pool with `n_threads` workers. n_threads == 0 creates a pool
  /// that executes submitted tasks inline on the caller's thread, which is
  /// useful for deterministic unit tests.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means inline execution).
  std::size_t size() const noexcept { return threads_.size(); }

  /// Install (or clear, with nullptr) the metrics observer. Takes effect
  /// for tasks submitted after the call; tasks already queued report with
  /// whatever observer is installed when they run.
  void set_observer(PoolObserver* obs) {
    observer_.store(obs, std::memory_order_release);
  }
  PoolObserver* observer() const {
    return observer_.load(std::memory_order_acquire);
  }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    PoolObserver* obs = observer();
    if (threads_.empty()) {
      if (obs == nullptr) {
        (*task)();
      } else {
        const auto t0 = std::chrono::steady_clock::now();
        (*task)();
        obs->on_task(0.0, seconds_since(t0));
      }
      return fut;
    }
    std::function<void()> wrapped;
    if (obs == nullptr) {
      wrapped = [task] { (*task)(); };
    } else {
      // Timestamp at enqueue so the worker can split wait from run time.
      const auto t_enq = std::chrono::steady_clock::now();
      wrapped = [this, task, t_enq] {
        const auto t_run = std::chrono::steady_clock::now();
        (*task)();
        if (PoolObserver* o = observer()) {
          o->on_task(std::chrono::duration<double>(t_run - t_enq).count(),
                     seconds_since(t_run));
        }
      };
    }
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(wrapped));
      depth = queue_.size();
    }
    if (obs != nullptr) obs->on_queue_depth(depth);
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Work is divided into contiguous chunks, one per worker, which matches
  /// the row-panel decomposition the SRGEMM driver uses.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// A process-wide default pool sized to the hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  static double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<PoolObserver*> observer_{nullptr};
};

}  // namespace parfw
