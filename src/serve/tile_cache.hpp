// Byte-budgeted tile cache for the serving tier (DESIGN.md §4.12).
//
// PathService fetches b x b value/pred tiles out of checkpoint blobs on
// demand; this cache keeps the hot ones resident under a strict byte
// budget. Policy: CLOCK (second-chance) eviction, optionally guarded by a
// 2Q-style "second touch" admission filter — a tile enters the cache only
// on its second miss within the ghost window, so a pure scan (each tile
// touched once) cannot wash out the hot set that a Zipf-skewed query
// stream builds up.
//
// The cache is single-threaded by design: the sharded serving tier runs
// one PathService (and thus one cache) per rank, and mpisim ranks are
// threads with no shared services. Everything is deterministic under a
// fixed request stream — no clocks, no randomness — so tests can assert
// exact hit/miss/eviction counts.
//
// INVARIANT (tested): bytes_resident <= budget_bytes after every
// operation. A tile larger than the whole budget is never admitted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace parfw::serve {

enum class TileKind : std::uint8_t {
  kValue = 0,  ///< b x b distance entries
  kPred = 1,   ///< b x b predecessor ids
};

struct TileKey {
  TileKind kind = TileKind::kValue;
  std::uint32_t block_row = 0;
  std::uint32_t block_col = 0;
  bool operator==(const TileKey&) const = default;
};

struct TileKeyHash {
  std::size_t operator()(const TileKey& k) const {
    // Mix the three fields through splitmix64-style finalisation.
    std::uint64_t h = (static_cast<std::uint64_t>(k.block_row) << 33) ^
                      (static_cast<std::uint64_t>(k.block_col) << 1) ^
                      static_cast<std::uint64_t>(k.kind);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

enum class CacheAdmission : std::uint8_t {
  kAlways,       ///< classic CLOCK: admit every miss
  kSecondTouch,  ///< 2Q-style: admit only keys seen in the ghost window
};

struct TileCacheConfig {
  std::size_t budget_bytes = std::size_t{64} << 20;
  CacheAdmission admission = CacheAdmission::kAlways;
  /// kSecondTouch ghost window: how many recently-missed keys to remember.
  std::size_t ghost_capacity = 4096;
};

struct TileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t admitted = 0;  ///< misses whose tile entered the cache
  std::uint64_t bypassed = 0;  ///< misses filtered out by admission
  /// kSecondTouch admissions that came from a ghost-window second touch
  /// (as opposed to kAlways admissions). The admission tuner reads this to
  /// tell "the ghost filter is promoting a real hot set" apart from "every
  /// miss sails straight in" — a plain miss count can't distinguish them.
  std::uint64_t ghost_hits = 0;
  std::uint64_t rejected = 0;  ///< tiles larger than the whole budget
  std::uint64_t bytes_resident = 0;
  std::uint64_t bytes_peak = 0;
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class TileCache {
 public:
  explicit TileCache(TileCacheConfig cfg = {});

  /// Lookup. Counts a hit (and sets the CLOCK reference bit) or a miss.
  /// The returned pointer is stable until the next insert().
  const std::vector<std::uint8_t>* find(const TileKey& key);

  /// Offer the freshly fetched tile after a miss. On admission the bytes
  /// are moved in and a stable pointer to the resident copy is returned;
  /// on bypass/reject `bytes` is left untouched and nullptr is returned
  /// (the caller serves from its own buffer). Evicts under CLOCK until
  /// the tile fits — the byte budget is never exceeded.
  const std::vector<std::uint8_t>* insert(const TileKey& key,
                                          std::vector<std::uint8_t>& bytes);

  const TileCacheStats& stats() const { return stats_; }
  std::size_t budget_bytes() const { return cfg_.budget_bytes; }

 private:
  struct Frame {
    TileKey key;
    std::vector<std::uint8_t> bytes;
    bool referenced = false;
    bool live = false;
  };

  void evict_one();
  bool ghost_second_touch(const TileKey& key);

  TileCacheConfig cfg_;
  TileCacheStats stats_;
  std::vector<Frame> frames_;
  std::vector<std::size_t> free_frames_;
  std::unordered_map<TileKey, std::size_t, TileKeyHash> index_;
  std::size_t hand_ = 0;
  // kSecondTouch ghost list: FIFO of recently missed (or evicted) keys.
  std::unordered_set<TileKey, TileKeyHash> ghost_;
  std::deque<TileKey> ghost_fifo_;
};

}  // namespace parfw::serve
