// Decrease-key Dijkstra on the pairing heap — the Johnson's-algorithm
// inner loop at its theoretically efficient shape (paper §6: Dijkstra
// with a Fibonacci-class heap gives Johnson's O(mn + n² log n)).
#include "sssp/pairing_heap.hpp"
#include "sssp/sssp.hpp"
#include "util/check.hpp"

namespace parfw::sssp {

SsspResult dijkstra_decrease_key(const Graph& g, vertex_t source) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PARFW_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);
  const Graph::Csr& csr = g.csr();

  SsspResult r;
  r.dist.assign(n, kInf);
  r.parent.assign(n, -1);
  r.dist[static_cast<std::size_t>(source)] = 0.0;

  PairingHeap heap(n);
  heap.push(static_cast<std::size_t>(source), 0.0);

  while (!heap.empty()) {
    const std::size_t u = heap.pop();
    const double du = r.dist[u];
    for (std::size_t e = csr.offsets[u]; e < csr.offsets[u + 1]; ++e) {
      const double w = csr.weights[e];
      PARFW_CHECK_MSG(w >= 0.0, "Dijkstra requires non-negative weights");
      const std::size_t v = static_cast<std::size_t>(csr.targets[e]);
      const double nd = du + w;
      if (nd < r.dist[v]) {
        r.dist[v] = nd;
        r.parent[v] = static_cast<vertex_t>(u);
        if (heap.contains(v))
          heap.decrease_key(v, nd);
        else
          heap.push(v, nd);
      }
    }
  }
  return r;
}

}  // namespace parfw::sssp
