// Seidel's algorithm for APSP on unweighted undirected graphs (paper §6:
// "Seidel showed a way to use fast matrix multiplication algorithms ...
// by embedding the semiring into a ring").
//
// Recursion: let A be the boolean adjacency matrix of a CONNECTED graph.
//   B = (A ∨ A²)        — reachability within two hops
//   if B is all-ones off the diagonal:  D = 2B - A  (base case)
//   T = Seidel(B)        — distances in the "squared" graph: T = ⌈D/2⌉
//   X = T · A (integer product); deg(j) = Σ_t A(t,j)
//   D(i,j) = 2·T(i,j) - [ X(i,j) < T(i,j)·deg(j) ]
//
// The products are ordinary (+,×) matrix multiplications, so this runs on
// the same SRGEMM kernels as FW via the PlusTimes semiring — the paper's
// point about ring embedding. Values stay ≤ n³, exact in double.
#pragma once

#include <vector>

#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "graph/graph.hpp"
#include "util/matrix.hpp"

namespace parfw {

namespace detail {

/// Boolean matrix "square with union": OUT = A ∨ (A ⊗or-and A), diag = 0.
inline Matrix<double> bool_square(const Matrix<double>& a,
                                  const srgemm::Config& cfg) {
  const std::size_t n = a.rows();
  Matrix<double> prod(n, n, 0.0);
  srgemm::multiply<PlusTimes<double>>(a.view(), a.view(), prod.view(), cfg);
  Matrix<double> out(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out(i, j) = (i != j && (a(i, j) > 0.0 || prod(i, j) > 0.0)) ? 1.0 : 0.0;
  return out;
}

inline bool complete_offdiag(const Matrix<double>& a) {
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j && a(i, j) == 0.0) return false;
  return true;
}

inline Matrix<double> seidel_rec(const Matrix<double>& a,
                                 const srgemm::Config& cfg) {
  const std::size_t n = a.rows();
  if (complete_offdiag(a)) {
    Matrix<double> d(n, n, 1.0);
    for (std::size_t i = 0; i < n; ++i) d(i, i) = 0.0;
    return d;
  }
  const Matrix<double> b = bool_square(a, cfg);
  // Fixpoint without completeness = disconnected graph: the recursion
  // would never bottom out.
  PARFW_CHECK_MSG(max_abs_diff<double>(a.view(), b.view()) != 0.0 ||
                      complete_offdiag(b),
                  "Seidel requires a connected graph");
  if (complete_offdiag(b)) {
    // Distances are 1 (edge) or 2 (two hops): D = 2B - A off-diagonal.
    Matrix<double> d(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (i != j) d(i, j) = 2.0 * b(i, j) - a(i, j);
    return d;
  }
  const Matrix<double> t = seidel_rec(b, cfg);

  // X = T · A and column degrees.
  Matrix<double> x(n, n, 0.0);
  srgemm::multiply<PlusTimes<double>>(t.view(), a.view(), x.view(), cfg);
  std::vector<double> deg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) deg[j] += a(i, j);

  Matrix<double> d(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double correction = x(i, j) < t(i, j) * deg[j] ? 1.0 : 0.0;
      d(i, j) = 2.0 * t(i, j) - correction;
    }
  return d;
}

}  // namespace detail

/// APSP hop distances for a CONNECTED, undirected, unweighted graph
/// (every edge must appear in both directions). Throws check_error on a
/// vertex with no edges (disconnected); use component_apsp-style
/// partitioning for general inputs.
inline Matrix<double> seidel_apsp(const Graph& g,
                                  const srgemm::Config& cfg = {}) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PARFW_CHECK(n > 0);
  Matrix<double> a(n, n, 0.0);
  for (const Edge& e : g.edges()) {
    a(e.src, e.dst) = 1.0;
  }
  // Validate symmetry (undirected requirement).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      PARFW_CHECK_MSG(a(i, j) == a(j, i),
                      "Seidel requires an undirected graph; edge ("
                          << i << "," << j << ") is one-directional");
  return detail::seidel_rec(a, cfg);
}

}  // namespace parfw
