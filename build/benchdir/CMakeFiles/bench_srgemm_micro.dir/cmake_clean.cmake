file(REMOVE_RECURSE
  "../bench/bench_srgemm_micro"
  "../bench/bench_srgemm_micro.pdb"
  "CMakeFiles/bench_srgemm_micro.dir/bench_srgemm_micro.cpp.o"
  "CMakeFiles/bench_srgemm_micro.dir/bench_srgemm_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_srgemm_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
