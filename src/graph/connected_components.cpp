#include "graph/connected_components.hpp"

#include <algorithm>
#include <numeric>

namespace parfw {

namespace {
/// Union-find with path halving + union by size.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};
}  // namespace

std::vector<vertex_t> connected_components(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  DisjointSets ds(n);
  for (const Edge& e : g.edges())
    ds.unite(static_cast<std::size_t>(e.src), static_cast<std::size_t>(e.dst));

  std::vector<vertex_t> labels(n, -1);
  vertex_t next = 0;
  std::vector<vertex_t> root_label(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t r = ds.find(v);
    if (root_label[r] < 0) root_label[r] = next++;
    labels[v] = root_label[r];
  }
  return labels;
}

vertex_t num_components(const std::vector<vertex_t>& labels) {
  vertex_t mx = -1;
  for (vertex_t l : labels) mx = std::max(mx, l);
  return mx + 1;
}

}  // namespace parfw
