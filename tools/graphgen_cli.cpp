// graphgen — write synthetic benchmark graphs to disk.
//
// Usage:
//   graphgen --kind er|dense|grid|ring|pa|multi --n N [--p P] [--seed S]
//            [--wmin W] [--wmax W] [--integral] [--format el|gr]
//            --output FILE
#include <cstdio>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"

using namespace parfw;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"kind", "n", "p", "seed", "wmin", "wmax", "integral",
                        "format", "output", "rows", "cols", "parts", "help"});
    if (args.get_bool("help") || !args.has("output")) {
      std::puts(
          "graphgen - synthetic graph generator\n"
          "  --kind er|dense|grid|ring|pa|multi   (default er)\n"
          "  --n N --p P --seed S --wmin W --wmax W --integral\n"
          "  --rows R --cols C   (grid)  --parts K (multi)\n"
          "  --format el|gr --output FILE");
      return args.get_bool("help") ? 0 : 2;
    }

    const auto n = args.get_int("n", 100);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const double p = args.get_double("p", 0.1);
    const double wmin = args.get_double("wmin", 1.0);
    const double wmax = args.get_double("wmax", 100.0);
    const bool integral = args.get_bool("integral");
    const std::string kind = args.get("kind", "er");

    Graph g(0);
    if (kind == "er")
      g = gen::erdos_renyi(n, p, seed, wmin, wmax, integral);
    else if (kind == "dense")
      g = gen::dense_uniform(n, seed, wmin, wmax, integral);
    else if (kind == "grid")
      g = gen::grid2d(args.get_int("rows", 10), args.get_int("cols", 10), seed,
                      wmin, wmax);
    else if (kind == "ring")
      g = gen::ring(n);
    else if (kind == "pa")
      g = gen::preferential_attachment(n, 3, seed, wmin, wmax);
    else if (kind == "multi")
      g = gen::multi_component(args.get_int("parts", 4),
                               n / std::max<std::int64_t>(1, args.get_int("parts", 4)),
                               p, seed);
    else {
      std::fprintf(stderr, "unknown --kind '%s'\n", kind.c_str());
      return 2;
    }

    std::ofstream out(args.get("output", ""));
    PARFW_CHECK_MSG(out.good(), "cannot open output file");
    if (args.get("format", "el") == "gr")
      io::write_dimacs(g, out);
    else
      io::write_edge_list(g, out);
    std::fprintf(stderr, "wrote %lld vertices, %zu edges to %s\n",
                 static_cast<long long>(g.num_vertices()), g.num_edges(),
                 args.get("output", "").c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
