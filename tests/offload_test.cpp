// Offload engine tests: ooGSrGemm correctness vs in-core SRGEMM across
// chunk geometries and stream counts, transfer-volume accounting against
// the §4.5 cost model, and the full offload blocked FW vs sequential FW.
#include <gtest/gtest.h>

#include <tuple>

#include "core/floyd_warshall.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "offload/offload_fw.hpp"
#include "offload/oog_srgemm.hpp"
#include "semiring/semiring.hpp"

namespace parfw {
namespace {

using S = MinPlus<float>;

Matrix<float> random_panel(std::size_t r, std::size_t c, std::uint64_t seed) {
  DenseEntryGen<float> gen(seed, 0.95, 1.0f, 60.0f, /*integral=*/true);
  Matrix<float> m(r, c);
  gen.fill_block(0, 0, m.view());
  return m;
}

class OogGeometry : public ::testing::TestWithParam<
                        std::tuple<int, int, int, int, int>> {};
// (m, n, k, chunk, streams)

TEST_P(OogGeometry, MatchesInCoreSrgemm) {
  const auto [m, n, k, chunk, streams] = GetParam();
  auto A = random_panel(m, k, 1);
  auto B = random_panel(k, n, 2);
  auto C0 = random_panel(m, n, 3);
  auto C1 = C0.clone();
  srgemm::multiply<S>(A.view(), B.view(), C0.view());

  dev::Device device;
  offload::OogConfig cfg;
  cfg.mx = static_cast<std::size_t>(chunk);
  cfg.nx = static_cast<std::size_t>(chunk);
  cfg.num_streams = static_cast<std::size_t>(streams);
  const auto stats =
      offload::oog_srgemm<S>(device, A.view(), B.view(), C1.view(), cfg);
  device.synchronize();
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
  // §4.5 volume terms: uploads (m+n)k, downloads m·n.
  EXPECT_EQ(stats.elems_h2d, static_cast<std::size_t>(m + n) *
                                 static_cast<std::size_t>(k));
  EXPECT_EQ(stats.elems_d2h,
            static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, OogGeometry,
    ::testing::Values(std::tuple{64, 64, 16, 32, 1},
                      std::tuple{64, 64, 16, 32, 2},
                      std::tuple{64, 64, 16, 32, 3},
                      std::tuple{100, 80, 24, 32, 4},
                      std::tuple{97, 61, 13, 30, 3},   // ragged chunks
                      std::tuple{128, 128, 32, 128, 3},  // single chunk
                      std::tuple{40, 200, 8, 64, 5},
                      std::tuple{256, 256, 64, 64, 3}));

TEST(OogSrgemm, PanelsUploadedExactlyOnce) {
  // Panel caching (§4.4): bytes_h2d counted by the device must equal the
  // logical volume — uploading a panel twice would double it.
  const std::size_t m = 96, n = 96, k = 16;
  auto A = random_panel(m, k, 7);
  auto B = random_panel(k, n, 8);
  auto C = random_panel(m, n, 9);
  dev::Device device;
  offload::OogConfig cfg;
  cfg.mx = cfg.nx = 32;  // 3x3 chunk grid: each panel reused 3 times
  cfg.num_streams = 3;
  offload::oog_srgemm<S>(device, A.view(), B.view(), C.view(), cfg);
  device.synchronize();
  EXPECT_EQ(device.counters().bytes_h2d, (m + n) * k * sizeof(float));
}

TEST(OogSrgemm, RespectsDeviceCapacity) {
  // Working set: dA(m·k) + dB(k·n) + s·mx·nx floats must fit; beyond that
  // the allocation throws.
  const std::size_t m = 64, n = 64, k = 16;
  auto A = random_panel(m, k, 11);
  auto B = random_panel(k, n, 12);
  auto C = random_panel(m, n, 13);
  offload::OogConfig cfg;
  cfg.mx = cfg.nx = 32;
  cfg.num_streams = 2;
  const std::size_t need =
      (m * k + k * n + 2 * cfg.mx * cfg.nx) * sizeof(float);
  {
    dev::DeviceConfig dc;
    dc.memory_bytes = need;
    dev::Device device(dc);
    EXPECT_NO_THROW(
        offload::oog_srgemm<S>(device, A.view(), B.view(), C.view(), cfg));
    device.synchronize();
  }
  {
    dev::DeviceConfig dc;
    dc.memory_bytes = need - 64;
    dev::Device device(dc);
    auto C2 = random_panel(m, n, 13);
    EXPECT_THROW(
        offload::oog_srgemm<S>(device, A.view(), B.view(), C2.view(), cfg),
        dev::DeviceOutOfMemory);
    device.synchronize();
  }
}

TEST(OogSrgemm, WorksOnSubViews) {
  // The offload FW passes strided sub-views of the big host matrix.
  auto big = random_panel(120, 120, 21);
  auto expected = big.clone();
  auto A = big.sub(0, 0, 80, 16);
  auto B = big.sub(0, 0, 16, 70);
  srgemm::multiply<S>(expected.sub(0, 0, 80, 16), expected.sub(0, 0, 16, 70),
                      expected.sub(30, 30, 80, 70));
  dev::Device device;
  offload::OogConfig cfg;
  cfg.mx = cfg.nx = 32;
  offload::oog_srgemm<S>(device, A, B, big.sub(30, 30, 80, 70), cfg);
  device.synchronize();
  EXPECT_EQ(max_abs_diff<float>(expected.view(), big.view()), 0.0);
}

TEST(OogSrgemmDevice, MatchesHostPanelsVariant) {
  // Upload panels manually, then run the device-resident variant; the
  // result must match the uploading variant and move zero h2d bytes.
  const std::size_t m = 96, n = 80, k = 16;
  auto A = random_panel(m, k, 31);
  auto B = random_panel(k, n, 32);
  auto C0 = random_panel(m, n, 33);
  auto C1 = C0.clone();

  dev::Device device;
  offload::OogConfig cfg;
  cfg.mx = cfg.nx = 32;
  cfg.num_streams = 3;
  offload::oog_srgemm<S>(device, A.view(), B.view(), C0.view(), cfg);
  device.synchronize();

  auto dA = device.alloc<float>(m * k);
  auto dB = device.alloc<float>(k * n);
  {
    auto st = device.create_stream();
    device.memcpy_h2d(*st, dA.data(), A.data(), m * k * sizeof(float));
    device.memcpy_h2d(*st, dB.data(), B.data(), k * n * sizeof(float));
    st->synchronize();
  }
  device.reset_counters();
  const auto stats = offload::oog_srgemm_device<S>(
      device, dA.data(), k, dB.data(), n, m, n, k, C1.view(), cfg);
  device.synchronize();
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
  EXPECT_EQ(stats.elems_h2d, 0u);
  EXPECT_EQ(device.counters().bytes_h2d, 0u);
  EXPECT_EQ(stats.elems_d2h, m * n);
}

TEST(OogSrgemmDevice, StridedPanelViews) {
  // Quadrant slicing: dA/dB address sub-blocks of larger device images
  // via leading dimensions, exactly how offload FW carves its panels.
  const std::size_t big_n = 64, bk = 8;
  auto col_panel = random_panel(big_n, bk, 41);  // n x b image
  auto row_panel = random_panel(bk, big_n, 42);  // b x n image
  auto C0 = random_panel(24, 40, 43);
  auto C1 = C0.clone();

  // Host reference: quadrant rows [16,40) x cols [8,48).
  srgemm::multiply<S>(col_panel.sub(16, 0, 24, bk), row_panel.sub(0, 8, bk, 40),
                      C0.view());

  dev::Device device;
  auto d_col = device.alloc<float>(big_n * bk);
  auto d_row = device.alloc<float>(bk * big_n);
  {
    auto st = device.create_stream();
    device.memcpy_h2d(*st, d_col.data(), col_panel.data(),
                      big_n * bk * sizeof(float));
    device.memcpy_h2d(*st, d_row.data(), row_panel.data(),
                      bk * big_n * sizeof(float));
    st->synchronize();
  }
  offload::OogConfig cfg;
  cfg.mx = cfg.nx = 16;
  offload::oog_srgemm_device<S>(device, d_col.data() + 16 * bk, bk,
                                d_row.data() + 8, big_n, 24, 40, bk,
                                C1.view(), cfg);
  device.synchronize();
  EXPECT_EQ(max_abs_diff<float>(C0.view(), C1.view()), 0.0);
}

class OffloadFwParam : public ::testing::TestWithParam<std::tuple<int, int>> {};
// (n, block_size)

TEST_P(OffloadFwParam, MatchesSequentialFw) {
  const auto [n, b] = GetParam();
  DenseEntryGen<float> gen(500 + n, 0.9, 1.0f, 80.0f, /*integral=*/true);
  auto expected = gen.full(n);
  floyd_warshall<S>(expected.view());

  auto m = gen.full(n);
  dev::Device device;
  offload::OffloadFwOptions opt;
  opt.block_size = static_cast<std::size_t>(b);
  opt.oog.mx = opt.oog.nx = 32;
  opt.oog.num_streams = 3;
  const auto stats = offload::offload_blocked_fw<S>(device, m.view(), opt);
  device.synchronize();
  EXPECT_EQ(max_abs_diff<float>(expected.view(), m.view()), 0.0)
      << "n=" << n << " b=" << b;
  EXPECT_EQ(stats.iterations, (static_cast<std::size_t>(n) + b - 1) / b);
  // Panels are uploaded exactly once per iteration (§4.4): total h2d =
  // Σ_k (b_k² + 2·n·b_k); the outer update streams results only.
  std::size_t expected_h2d = 0;
  const std::size_t ns = static_cast<std::size_t>(n);
  for (std::size_t k0 = 0; k0 < ns; k0 += b) {
    const std::size_t bk = std::min<std::size_t>(b, ns - k0);
    expected_h2d += bk * bk + 2 * ns * bk;
  }
  EXPECT_EQ(stats.elems_h2d, expected_h2d);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OffloadFwParam,
                         ::testing::Values(std::tuple{32, 8},
                                           std::tuple{64, 16},
                                           std::tuple{96, 32},
                                           std::tuple{100, 30},
                                           std::tuple{128, 64}));

TEST(OffloadFw, ClassicDiagStrategyAlsoCorrect) {
  const int n = 80;
  DenseEntryGen<float> gen(901, 1.0, 1.0f, 40.0f, /*integral=*/true);
  auto expected = gen.full(n);
  floyd_warshall<S>(expected.view());
  auto m = gen.full(n);
  dev::Device device;
  offload::OffloadFwOptions opt;
  opt.block_size = 20;
  opt.diag = DiagStrategy::kClassic;
  opt.oog.mx = opt.oog.nx = 40;
  offload::offload_blocked_fw<S>(device, m.view(), opt);
  device.synchronize();
  EXPECT_EQ(max_abs_diff<float>(expected.view(), m.view()), 0.0);
}

TEST(OffloadFw, HostMatrixLargerThanDeviceMemory) {
  // The headline property: close a matrix whose footprint exceeds device
  // capacity. n=128 floats = 64 KiB host matrix; device gets 24 KiB.
  const std::size_t n = 128, b = 16;
  DenseEntryGen<float> gen(903, 1.0, 1.0f, 25.0f, /*integral=*/true);
  auto expected = gen.full(static_cast<vertex_t>(n));
  floyd_warshall<S>(expected.view());
  auto m = gen.full(static_cast<vertex_t>(n));
  dev::DeviceConfig dc;
  dc.memory_bytes = 40 << 10;  // 40 KiB device vs a 64 KiB host matrix
  dev::Device device(dc);
  offload::OffloadFwOptions opt;
  opt.block_size = b;
  opt.oog.mx = opt.oog.nx = 16;
  opt.oog.num_streams = 2;
  offload::offload_blocked_fw<S>(device, m.view(), opt);
  device.synchronize();
  EXPECT_LT(device.counters().peak_bytes_in_use, n * n * sizeof(float));
  EXPECT_EQ(max_abs_diff<float>(expected.view(), m.view()), 0.0);
}

}  // namespace
}  // namespace parfw
