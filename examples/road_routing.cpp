// Traffic routing on a road-like grid network (paper §1: "traffic routing
// and simulation" application).
//
// Demonstrates: APSP with path reconstruction on a weighted grid,
// incremental re-planning after congestion changes, and comparing the FW
// engine against Johnson's algorithm (the sparse-graph comparator of
// paper §6) on the same network.
#include <cstdio>

#include "core/apsp.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"
#include "util/timer.hpp"

using namespace parfw;

int main() {
  const vertex_t rows = 16, cols = 16;
  Graph roads = gen::grid2d(rows, cols, /*seed=*/7, 1.0, 8.0);
  const vertex_t n = roads.num_vertices();
  std::printf("road network: %lldx%lld grid, %zu directed segments\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              roads.num_edges());

  // Full routing table with explicit paths.
  Timer t_fw;
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kBlocked;
  opt.block_size = 32;
  opt.track_paths = true;
  const auto table = apsp<MinPlus<double>>(roads, opt);
  std::printf("routing table built in %.1f ms (blocked FW + paths)\n",
              t_fw.millis());

  // Cross-check against Johnson's algorithm.
  Timer t_j;
  const auto johnson = sssp::johnson_apsp(roads);
  std::printf("johnson's APSP on the same network: %.1f ms, max |diff| = %.2e\n",
              t_j.millis(),
              max_abs_diff<double>(table.dist.view(), johnson.view()));

  const vertex_t src = 0, dst = n - 1;
  auto show_route = [&](const std::vector<std::int64_t>& p, double d) {
    std::printf("route %lld -> %lld: length %.2f, %zu hops:",
                static_cast<long long>(src), static_cast<long long>(dst), d,
                p.size() - 1);
    for (std::size_t i = 0; i < p.size(); ++i)
      std::printf("%s%lld", i ? " > " : " ", static_cast<long long>(p[i]));
    std::printf("\n");
  };
  show_route(table.query(src, dst).path, table.dist(src, dst));

  // Congestion clears on a cross-town artery: fold the improvements in
  // incrementally (O(n^2) per edge) instead of recomputing (O(n^3)).
  auto live = table.dist.clone();
  const vertex_t mid = (rows / 2) * cols;
  std::vector<EdgeUpdate> clearings;
  for (vertex_t c = 0; c + 1 < cols; ++c)
    clearings.push_back({mid + c, mid + c + 1, 0.25});
  Timer t_inc;
  bool needs_recompute = false;
  const std::size_t applied = incremental_update_batch<MinPlus<double>>(
      live.view(), clearings, &needs_recompute);
  std::printf("\nafter clearing %zu artery segments (%.1f ms incremental):\n",
              applied, t_inc.millis());
  std::printf("  dist %lld -> %lld: %.2f (was %.2f)\n",
              static_cast<long long>(src), static_cast<long long>(dst),
              live(src, dst), table.dist(src, dst));

  // Validate the incremental result against a fresh solve.
  for (const auto& u : clearings) roads.add_edge(u.src, u.dst, u.new_weight);
  ApspOptions fresh_opt;
  fresh_opt.algorithm = ApspAlgorithm::kBlocked;
  fresh_opt.block_size = 32;
  const auto fresh = apsp<MinPlus<double>>(roads, fresh_opt);
  std::printf("  incremental vs full recompute: max |diff| = %.2e\n",
              max_abs_diff<double>(live.view(), fresh.dist.view()));
  return 0;
}
