# Empty dependencies file for test_core_ext.
# This may be replaced when dependencies are built.
