// Shared helpers for the figure-reproduction benches.
//
// Every bench prints: what the paper's figure shows, the regenerated
// series (simulated on the Summit machine model and/or measured on the
// CPU substrate), and the qualitative checks that tie the two together.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "sched/trace.hpp"
#include "util/table.hpp"

namespace parfw::bench {

/// Opt-in Chrome-trace capture for the figure benches: when the
/// PARFW_TRACE environment variable names a file, the first run that asks
/// for `sink()` records its schedule events there; the JSON is written at
/// scope exit (load in chrome://tracing or https://ui.perfetto.dev).
class FigTrace {
 public:
  FigTrace() = default;
  FigTrace(const FigTrace&) = delete;
  FigTrace& operator=(const FigTrace&) = delete;
  ~FigTrace() {
    if (path_.empty() || sink_.size() == 0) return;
    std::ofstream os(path_);
    sink_.write(os);
    std::fprintf(stderr, "[trace] wrote %zu events to %s", sink_.size(),
                 path_.c_str());
    if (sink_.truncated() > 0)
      std::fprintf(stderr, " (TRUNCATED: %llu more events dropped at cap)",
                   static_cast<unsigned long long>(sink_.truncated()));
    std::fprintf(stderr, "\n");
  }

  /// Sink for the run to record, or nullptr (tracing off, or a run was
  /// already captured — one clean timeline per file).
  sched::TraceSink* sink() {
    if (path_.empty() || used_) return nullptr;
    used_ = true;
    return &sink_;
  }

 private:
  static std::string env_path() {
    const char* p = std::getenv("PARFW_TRACE");
    return p == nullptr ? "" : p;
  }
  /// Cap on captured events (PARFW_TRACE_MAX_EVENTS overrides): a trace
  /// of an unexpectedly large run truncates with an explicit marker
  /// instead of exhausting memory. ~2M events ≈ 200 MB resident.
  static std::size_t env_max_events() {
    const char* p = std::getenv("PARFW_TRACE_MAX_EVENTS");
    if (p == nullptr || *p == '\0') return 2'000'000;
    return static_cast<std::size_t>(std::strtoull(p, nullptr, 10));
  }
  std::string path_ = env_path();
  sched::ChromeTraceSink sink_{env_max_events()};
  bool used_ = false;
};

/// Opt-in machine-readable output for the figure benches: when the
/// PARFW_BENCH_JSON environment variable names a file, every datapoint
/// recorded through `add()` is written there at scope exit in the
/// google-benchmark JSON layout ({"benchmarks": [{"name", counters}]}),
/// so scripts/bench_compare.py diffs figure benches and google-benchmark
/// binaries with the same code path. The DES datapoints are
/// deterministic, which is what makes a committed baseline
/// (BENCH_dist.json) a meaningful regression gate.
class BenchJson {
 public:
  BenchJson() = default;
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() {
    if (path_.empty() || rows_.empty()) return;
    std::ofstream os(path_);
    os << "{\n  \"context\": {\"source\": \"parfw figure bench\"},\n"
       << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                    "\"real_time\": %.17g, \"time_unit\": \"s\", "
                    "\"%s\": %.17g}%s\n",
                    r.name.c_str(), r.seconds, r.counter.c_str(), r.value,
                    i + 1 < rows_.size() ? "," : "");
      os << buf;
    }
    os << "  ]\n}\n";
    std::fprintf(stderr, "[bench-json] wrote %zu datapoints to %s\n",
                 rows_.size(), path_.c_str());
  }

  bool enabled() const { return !path_.empty(); }

  /// Record one datapoint: `name` keys the comparison (keep it stable
  /// across runs), `seconds` is the modelled/measured duration, and
  /// `counter`/`value` is the throughput figure (e.g. "PFLOP/s").
  void add(const std::string& name, double seconds,
           const std::string& counter, double value) {
    if (enabled()) rows_.push_back({name, seconds, counter, value});
  }

 private:
  struct Row {
    std::string name;
    double seconds;
    std::string counter;
    double value;
  };
  static std::string env_path() {
    const char* p = std::getenv("PARFW_BENCH_JSON");
    return p == nullptr ? "" : p;
  }
  std::string path_ = env_path();
  std::vector<Row> rows_;
};

inline void header(const std::string& title, const std::string& paper_note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("----------------------------------------------------------------\n");
  std::printf("%s\n\n", paper_note.c_str());
}

inline void footer(const std::string& check) {
  std::printf("\nshape check: %s\n\n", check.c_str());
}

/// The paper's Figure 4/7 vertex sweep (×~1.26 per step).
inline std::vector<double> paper_vertex_sweep(double lo, double hi) {
  // Paper values: 16384, 20643, 26008, 32768, 41285, 52016, 65536, ...
  // Each step multiplies by 2^(1/3).
  std::vector<double> out;
  double v = 16384;
  while (v <= hi * 1.001) {
    if (v >= lo * 0.999) out.push_back(std::round(v));
    v *= 1.2599210498948732;  // 2^(1/3)
  }
  return out;
}

}  // namespace parfw::bench
