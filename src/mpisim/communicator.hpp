// Communicator: a rank's handle onto a process group (MPI_Comm analogue).
//
// Each communicator has a context id so that traffic in different
// communicators (world, process-row, process-column) can never be
// cross-matched — the property the 2-D grid algorithms rely on.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "mpisim/runtime.hpp"
#include "util/check.hpp"

namespace parfw::mpi {

/// Handle for a nonblocking operation. wait() must be called exactly once
/// before destruction for receives; sends complete eagerly.
class Request {
 public:
  Request() = default;
  void wait() {
    if (fulfil_) {
      fulfil_();
      fulfil_ = nullptr;
    }
  }
  bool pending() const { return static_cast<bool>(fulfil_); }

 private:
  friend class Comm;
  explicit Request(std::function<void()> f) : fulfil_(std::move(f)) {}
  std::function<void()> fulfil_;
};

class Comm {
 public:
  /// World communicator (context 0 is reserved for it).
  Comm(World* world, rank_t my_global_rank);

  int rank() const { return my_rank_; }
  int size() const { return static_cast<int>(group_.size()); }
  World& world() const { return *world_; }
  std::uint64_t context() const { return context_; }
  /// Global (world) rank of a member of this communicator.
  rank_t global_rank(rank_t local) const {
    PARFW_DCHECK(local >= 0 && local < size());
    return group_[static_cast<std::size_t>(local)];
  }

  // --- blocking point-to-point ------------------------------------------

  void send_bytes(std::span<const std::uint8_t> data, rank_t dst, tag_t tag);
  void recv_bytes(std::span<std::uint8_t> data, rank_t src, tag_t tag);

  template <typename T>
  void send(std::span<const T> data, rank_t dst, tag_t tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes({reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size_bytes()},
               dst, tag);
  }
  template <typename T>
  void recv(std::span<T> data, rank_t src, tag_t tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes({reinterpret_cast<std::uint8_t*>(data.data()),
                data.size_bytes()},
               src, tag);
  }
  template <typename T>
  void send_value(const T& v, rank_t dst, tag_t tag) {
    send(std::span<const T>(&v, 1), dst, tag);
  }
  template <typename T>
  T recv_value(rank_t src, tag_t tag) {
    T v{};
    recv(std::span<T>(&v, 1), src, tag);
    return v;
  }

  // --- nonblocking point-to-point ----------------------------------------

  /// Eager nonblocking send: the payload is copied before returning, so
  /// the returned request is already complete (MPI buffered-send model).
  Request isend_bytes(std::span<const std::uint8_t> data, rank_t dst,
                      tag_t tag);
  /// Nonblocking receive; the payload lands in `data` at wait().
  Request irecv_bytes(std::span<std::uint8_t> data, rank_t src, tag_t tag);

  template <typename T>
  Request isend(std::span<const T> data, rank_t dst, tag_t tag) {
    return isend_bytes({reinterpret_cast<const std::uint8_t*>(data.data()),
                        data.size_bytes()},
                       dst, tag);
  }
  template <typename T>
  Request irecv(std::span<T> data, rank_t src, tag_t tag) {
    return irecv_bytes({reinterpret_cast<std::uint8_t*>(data.data()),
                        data.size_bytes()},
                       src, tag);
  }

  // --- collectives (implemented in collectives.cpp) -----------------------

  /// Synchronise all members of this communicator.
  void barrier();

  /// Binomial-tree broadcast — latency-optimal; the "library broadcast"
  /// the paper uses for DiagBcast (§3.3).
  void bcast_bytes(std::span<std::uint8_t> data, rank_t root, tag_t tag = -1);

  /// Ring broadcast — bandwidth-optimal and asynchronous; the paper's
  /// custom collective for PanelBcast (§3.3). Rank ordering of the relay
  /// chain starts at root and proceeds cyclically, so root+1 receives
  /// first (the property the pipelined schedule exploits).
  void ring_bcast_bytes(std::span<std::uint8_t> data, rank_t root,
                        tag_t tag = -2);

  template <typename T>
  void bcast(std::span<T> data, rank_t root) {
    bcast_bytes({reinterpret_cast<std::uint8_t*>(data.data()),
                 data.size_bytes()},
                root);
  }
  template <typename T>
  void ring_bcast(std::span<T> data, rank_t root) {
    ring_bcast_bytes({reinterpret_cast<std::uint8_t*>(data.data()),
                      data.size_bytes()},
                     root);
  }

  /// Element-wise all-reduce with a binary op (tree reduce + tree bcast).
  template <typename T, typename Op>
  void allreduce(std::span<T> data, Op op);

  /// Element-wise reduce to `root` (binomial tree). `data` is combined in
  /// place at the root; other ranks' buffers are unspecified afterwards.
  template <typename T, typename Op>
  void reduce(std::span<T> data, Op op, rank_t root);

  /// Root gathers size()*count elements; others contribute count each.
  template <typename T>
  void gather(std::span<const T> mine, std::span<T> all, rank_t root);

  /// Root distributes size()*count elements; each rank receives count.
  template <typename T>
  void scatter(std::span<const T> all, std::span<T> mine, rank_t root);

  /// Personalised all-to-all: send_buf[j*count..] goes to rank j,
  /// recv_buf[i*count..] comes from rank i.
  template <typename T>
  void alltoall(std::span<const T> send_buf, std::span<T> recv_buf,
                std::size_t count);

  // --- communicator management -------------------------------------------

  /// Collective over ALL members: ranks with equal `color` land in the
  /// same sub-communicator, ordered by `key` (ties by old rank) —
  /// MPI_Comm_split semantics. Used to build process rows/columns.
  Comm split(int color, int key);

  /// Node-aware member ordering used by both broadcasts: root first, then
  /// the rest of the root's node, then the other nodes in cyclic order
  /// (deterministic — every member computes the same list).
  std::vector<rank_t> relay_order(rank_t root) const;

 private:
  Comm(World* world, std::uint64_t context, std::vector<rank_t> group,
       rank_t my_rank);

  MatchKey key_for(rank_t global_src, tag_t tag) const {
    return MatchKey{context_, global_src, tag};
  }

  World* world_;
  std::uint64_t context_;
  std::vector<rank_t> group_;  ///< local rank -> global rank
  rank_t my_rank_;             ///< my local rank within group_
};

template <typename T, typename Op>
void Comm::allreduce(std::span<T> data, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Binomial reduce to rank 0, then broadcast.
  const int p = size();
  std::vector<T> incoming(data.size());
  for (int step = 1; step < p; step *= 2) {
    if ((rank() & step) != 0) {
      send(std::span<const T>(data.data(), data.size()), rank() - step, -3);
      break;
    }
    if (rank() + step < p) {
      recv(std::span<T>(incoming.data(), incoming.size()), rank() + step, -3);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = op(data[i], incoming[i]);
    }
  }
  bcast_bytes({reinterpret_cast<std::uint8_t*>(data.data()), data.size_bytes()},
              0, -4);
}

template <typename T, typename Op>
void Comm::reduce(std::span<T> data, Op op, rank_t root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  const int vrank = (rank() - root + p) % p;
  std::vector<T> incoming(data.size());
  for (int step = 1; step < p; step *= 2) {
    if ((vrank & step) != 0) {
      send(std::span<const T>(data.data(), data.size()),
           ((vrank - step) + root) % p, -7);
      return;
    }
    if (vrank + step < p) {
      recv(std::span<T>(incoming.data(), incoming.size()),
           (vrank + step + root) % p, -7);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = op(data[i], incoming[i]);
    }
  }
}

template <typename T>
void Comm::scatter(std::span<const T> all, std::span<T> mine, rank_t root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank() == root) {
    PARFW_CHECK(all.size() >= mine.size() * static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const T* src = all.data() + static_cast<std::size_t>(r) * mine.size();
      if (r == rank())
        std::memcpy(mine.data(), src, mine.size_bytes());
      else
        send(std::span<const T>(src, mine.size()), r, -8);
    }
  } else {
    recv(mine, root, -8);
  }
}

template <typename T>
void Comm::alltoall(std::span<const T> send_buf, std::span<T> recv_buf,
                    std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t p = static_cast<std::size_t>(size());
  PARFW_CHECK(send_buf.size() >= p * count && recv_buf.size() >= p * count);
  // Eager sends cannot deadlock: everyone sends everything, then receives.
  for (int j = 0; j < size(); ++j) {
    const T* src = send_buf.data() + static_cast<std::size_t>(j) * count;
    if (j == rank())
      std::memcpy(recv_buf.data() + static_cast<std::size_t>(rank()) * count,
                  src, count * sizeof(T));
    else
      send(std::span<const T>(src, count), j, -9);
  }
  for (int i = 0; i < size(); ++i) {
    if (i == rank()) continue;
    recv(std::span<T>(recv_buf.data() + static_cast<std::size_t>(i) * count,
                      count),
         i, -9);
  }
}

template <typename T>
void Comm::gather(std::span<const T> mine, std::span<T> all, rank_t root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank() == root) {
    PARFW_CHECK(all.size() >= mine.size() * static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      T* dst = all.data() + static_cast<std::size_t>(r) * mine.size();
      if (r == rank())
        std::memcpy(dst, mine.data(), mine.size_bytes());
      else
        recv(std::span<T>(dst, mine.size()), r, -5);
    }
  } else {
    send(mine, root, -5);
  }
}

}  // namespace parfw::mpi
