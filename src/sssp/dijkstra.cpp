#include <queue>
#include <utility>

#include "sssp/sssp.hpp"
#include "util/check.hpp"

namespace parfw::sssp {

SsspResult dijkstra(const Graph& g, vertex_t source) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  PARFW_CHECK(source >= 0 && static_cast<std::size_t>(source) < n);
  const Graph::Csr& csr = g.csr();

  SsspResult r;
  r.dist.assign(n, kInf);
  r.parent.assign(n, -1);
  r.dist[static_cast<std::size_t>(source)] = 0.0;

  using Item = std::pair<double, vertex_t>;  // (dist, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.emplace(0.0, source);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    const std::size_t ui = static_cast<std::size_t>(u);
    if (d > r.dist[ui]) continue;  // stale entry
    for (std::size_t e = csr.offsets[ui]; e < csr.offsets[ui + 1]; ++e) {
      const double w = csr.weights[e];
      PARFW_CHECK_MSG(w >= 0.0, "Dijkstra requires non-negative weights");
      const vertex_t v = csr.targets[e];
      const std::size_t vi = static_cast<std::size_t>(v);
      const double nd = d + w;
      if (nd < r.dist[vi]) {
        r.dist[vi] = nd;
        r.parent[vi] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return r;
}

Matrix<double> dijkstra_apsp(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  Matrix<double> out(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    const SsspResult r = dijkstra(g, static_cast<vertex_t>(s));
    for (std::size_t v = 0; v < n; ++v) out(s, v) = r.dist[v];
  }
  return out;
}

}  // namespace parfw::sssp
