// Distributed APSP end to end on the in-process runtime.
//
// Runs the same problem through all four ParallelFw schedule variants on
// a 2-D process grid (threads as ranks), validates every output against
// the sequential solver, and reports the communication profile — the
// miniature version of the paper's §5 experiment campaign, runnable on a
// laptop.
#include <cstdio>

#include "core/floyd_warshall.hpp"
#include "dist/driver.hpp"
#include "util/table.hpp"

using namespace parfw;
using namespace parfw::dist;

int main() {
  const std::size_t n = 240, b = 16;
  const int ranks_per_node = 4;
  DenseEntryGen<float> gen(/*seed=*/20260704, /*density=*/0.9, 1.0f, 99.0f,
                           /*integral=*/true);

  std::printf("distributed APSP: n=%zu, block=%zu, grid=4x4 ranks "
              "(%d \"nodes\" x %d ranks)\n\n",
              n, b, 16 / ranks_per_node, ranks_per_node);

  // Sequential oracle.
  auto expected = gen.full(static_cast<vertex_t>(n));
  floyd_warshall<MinPlus<float>>(expected.view());

  // The paper's placement (Figure 1): 2x2 node grid, 2x2 intranode grid.
  const GridSpec tiled = GridSpec::tiled(2, 2, 2, 2);
  const GridSpec naive = GridSpec::row_major(4, 4);

  Table t({"variant", "placement", "wall ms", "internode MB", "max NIC MB",
           "valid"});
  for (const auto& [variant, grid, pname] :
       {std::tuple{Variant::kBaseline, &naive, "row-major"},
        std::tuple{Variant::kBaseline, &tiled, "tiled"},
        std::tuple{Variant::kPipelined, &tiled, "tiled"},
        std::tuple{Variant::kAsync, &tiled, "tiled"},
        std::tuple{Variant::kOffload, &tiled, "tiled"}}) {
    DistFwOptions opt;
    opt.variant = variant;
    opt.block_size = b;
    if (variant == Variant::kOffload) {
      opt.oog.mx = opt.oog.nx = 32;
      opt.oog.num_streams = 3;
      opt.device_memory_bytes = 1 << 20;  // 1 MiB per-rank device
    }
    const auto r =
        run_parallel_fw<MinPlus<float>>(n, gen, *grid, ranks_per_node, opt);
    const bool ok = max_abs_diff<float>(expected.view(), r.dist.view()) == 0.0;
    t.add_row({variant_name(variant), pname, Table::num(r.seconds * 1e3, 1),
               Table::num(r.traffic.bytes_internode / 1e6, 3),
               Table::num(r.traffic.max_nic_bytes / 1e6, 3),
               ok ? "yes" : "NO"});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nNote: on this machine ranks are threads sharing one CPU, so\n"
              "wall times show overhead, not speedup; the placement effect\n"
              "shows up in the internode/NIC columns (tiled < row-major),\n"
              "and the paper-scale timing lives in the DES benches.\n");
  return 0;
}
