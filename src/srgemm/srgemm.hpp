// SRGEMM — semiring general matrix-matrix multiply (paper §2.6, §4.1).
//
// Computes the accumulating product
//     C ← C ⊕ (A ⊗ B),   C: m x n,  A: m x k,  B: k x n
// over an arbitrary semiring. For MinPlus this is the min-plus product
//     C[i,j] = min(C[i,j], min_k (A[i,k] + B[k,j]))
// which is the workhorse of blocked Floyd-Warshall: PanelUpdate and
// OuterUpdate are both SRGEMM calls.
//
// The paper's kernel is a CUTLASS-derived CUDA kernel (6.8 TF/s on V100);
// this is its CPU substitute with the same blocked structure: an L2-sized
// macro tile, a k-panel loop, and a register-blocked micro-kernel. The
// multi-threaded driver partitions C by row panels across a thread pool,
// mirroring how a GPU partitions C across thread blocks.
#pragma once

#include <cstddef>

#include "semiring/semiring.hpp"
#include "srgemm/srgemm_kernels.hpp"
#include "util/matrix.hpp"
#include "util/thread_pool.hpp"

namespace parfw::srgemm {

/// Kernel selection and tiling parameters. Defaults are tuned for a
/// ~1 MiB L2: 64x256 C macro-tiles with 256-deep k panels.
struct Config {
  std::size_t tile_m = 64;
  std::size_t tile_n = 256;
  std::size_t tile_k = 256;
  /// Pack A/B tiles into contiguous scratch before the register sweep
  /// (GotoBLAS-style); wins on strided panel views (see bench_srgemm_pack).
  bool pack = false;
  /// Pool used to parallelise over C row panels; nullptr = sequential.
  ThreadPool* pool = nullptr;
};

/// C ← C ⊕ A ⊗ B. Dimensions are validated; views may alias only if
/// the semiring is idempotent AND the caller understands blocked-FW
/// in-place semantics (PanelUpdate aliases A or B with C deliberately,
/// exactly as Algorithm 2 does).
template <typename S>
void multiply(MatrixView<const typename S::value_type> A,
              MatrixView<const typename S::value_type> B,
              MatrixView<typename S::value_type> C, const Config& cfg = {}) {
  PARFW_CHECK_MSG(A.rows() == C.rows() && B.cols() == C.cols() &&
                      A.cols() == B.rows(),
                  "srgemm shape mismatch: C(" << C.rows() << "x" << C.cols()
                      << ") += A(" << A.rows() << "x" << A.cols() << ") * B("
                      << B.rows() << "x" << B.cols() << ")");
  if (C.empty() || A.cols() == 0) return;

  const std::size_t m = C.rows();
  if (cfg.pool != nullptr && cfg.pool->size() > 1 && m >= 2 * cfg.tile_m) {
    // Row-panel parallelism: each worker owns disjoint rows of C, so no
    // synchronisation is needed inside the kernel.
    const std::size_t panels = (m + cfg.tile_m - 1) / cfg.tile_m;
    cfg.pool->parallel_for(panels, [&](std::size_t p) {
      const std::size_t r0 = p * cfg.tile_m;
      const std::size_t nr = std::min(cfg.tile_m, m - r0);
      if (cfg.pack)
        detail::tiled_kernel_packed<S>(A.sub(r0, 0, nr, A.cols()), B,
                                       C.sub(r0, 0, nr, C.cols()), cfg.tile_m,
                                       cfg.tile_n, cfg.tile_k);
      else
        detail::tiled_kernel<S>(A.sub(r0, 0, nr, A.cols()), B,
                                C.sub(r0, 0, nr, C.cols()), cfg.tile_m,
                                cfg.tile_n, cfg.tile_k);
    });
  } else if (cfg.pack) {
    detail::tiled_kernel_packed<S>(A, B, C, cfg.tile_m, cfg.tile_n, cfg.tile_k);
  } else {
    detail::tiled_kernel<S>(A, B, C, cfg.tile_m, cfg.tile_n, cfg.tile_k);
  }
}

/// Reference implementation (naive triple loop) — the oracle the tiled
/// kernel is validated against, and the fallback for exotic semirings.
template <typename S>
void multiply_reference(MatrixView<const typename S::value_type> A,
                        MatrixView<const typename S::value_type> B,
                        MatrixView<typename S::value_type> C) {
  PARFW_CHECK(A.rows() == C.rows() && B.cols() == C.cols() &&
              A.cols() == B.rows());
  detail::naive_kernel<S>(A, B, C);
}

/// Argmin-tracking SRGEMM for path reconstruction:
///     where C[i,j] improves via index t, set Arg[i,j] = t + arg_offset.
/// `arg_offset` converts the local k index into a global vertex id.
/// Used by the predecessor-tracking blocked FW (DESIGN.md §6).
template <typename S>
void multiply_argmin(MatrixView<const typename S::value_type> A,
                     MatrixView<const typename S::value_type> B,
                     MatrixView<typename S::value_type> C,
                     MatrixView<std::int64_t> Arg, std::int64_t arg_offset) {
  PARFW_CHECK(A.rows() == C.rows() && B.cols() == C.cols() &&
              A.cols() == B.rows());
  PARFW_CHECK(Arg.rows() == C.rows() && Arg.cols() == C.cols());
  detail::argmin_kernel<S>(A, B, C, Arg, arg_offset);
}

/// Element-wise accumulate C ← C ⊕ X (the offload engine's hostUpdate).
template <typename S>
void ewise_add(MatrixView<const typename S::value_type> X,
               MatrixView<typename S::value_type> C) {
  PARFW_CHECK(X.rows() == C.rows() && X.cols() == C.cols());
  using T = typename S::value_type;
  for (std::size_t i = 0; i < C.rows(); ++i) {
    const T* x = X.data() + i * X.ld();
    T* c = C.data() + i * C.ld();
    for (std::size_t j = 0; j < C.cols(); ++j) c[j] = S::add(c[j], x[j]);
  }
}

/// FLOP count convention used throughout (matches the paper): an SRGEMM of
/// shape (m,n,k) performs 2·m·n·k flops (one ⊕ and one ⊗ per MAC).
inline double flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace parfw::srgemm
